(* Dedup-under-faults smoke: drive a non-idempotent counter through each
   stack (Rex, SMR, Eve) from retrying clients while the network drops
   messages and the leader is killed mid-run, then check the exactly-once
   contract: every acknowledged request executed once, so the responses
   of n "INC" requests are a permutation of 1..n and the final counter is
   exactly n on every surviving replica.

   Prints one row per stack (requests, retry hops, dup_hits, evictions,
   sessions, final count) and exits non-zero on any double execution,
   lost request, or divergence — CI runs `dedup --quick`. *)

open Sim
module R = Rex_core

(* The counter must be guarded by a Rex lock: on the Rex stack requests
   execute concurrently and the recorded lock order is what makes replay
   (and hence the response values) deterministic.  SMR and Eve run the
   same factory through the native synchronization path. *)
let counter_factory () : R.App.factory =
 fun api ->
  let n = ref 0 in
  let lock = R.Api.lock api "ctr" in
  {
    R.App.name = "ctr";
    execute =
      (fun ~request:_ ->
        Rexsync.Lock.with_lock lock (fun () ->
            incr n;
            string_of_int !n));
    query = (fun ~request:_ -> string_of_int !n);
    write_checkpoint = (fun sink -> Codec.write_uvarint sink !n);
    read_checkpoint = (fun src -> n := Codec.read_uvarint src);
    digest = (fun () -> string_of_int !n);
  }

type row = {
  stack : string;
  total : int;
  completed : int;
  exactly_once : bool;
  dup_hits : int;
  evictions : int;
  sessions : int;
  final : string;
}

let mk_row ~stack ~total ~results ~dup_hits ~evictions ~sessions ~final =
  let values =
    List.filter_map (Option.map int_of_string) !results |> List.sort compare
  in
  let exactly_once =
    List.length !results = total
    && values = List.init total (fun i -> i + 1)
    && final = string_of_int total
  in
  {
    stack;
    total;
    completed = List.length values;
    exactly_once;
    dup_hits = dup_hits ();
    evictions = evictions ();
    sessions = sessions ();
    final;
  }

(* Four fibers share one client (and thus one session identity) and
   drain the request list with generous retries.  With [history] the
   calls are recorded for the linearizability check (--check). *)
let drive ~eng ~node ~cl ?history ~total () =
  let results = ref [] and remaining = ref total in
  let pending = ref (List.init total (fun i -> i)) in
  let call () =
    match history with
    | None -> R.Client.call ~retries:2000 cl "INC"
    | Some h ->
      Check.History.record h ~client:(R.Client.client_id cl) ~request:"INC"
        (fun () -> R.Client.call ~retries:2000 cl "INC")
  in
  for _ = 1 to 4 do
    ignore
      (Engine.spawn eng ~node ~name:"dedup-client" (fun () ->
           let rec loop () =
             match !pending with
             | [] -> ()
             | _ :: rest ->
               pending := rest;
               let resp = call () in
               results := resp :: !results;
               decr remaining;
               loop ()
           in
           loop ()))
  done;
  (results, remaining)

(* The --check verdict: the recorded history must linearize against the
   counter spec.  The dedup smoke's own permutation check looks at final
   values only; this one also constrains every intermediate response. *)
let lin_verdict ~stack h =
  Check.History.resolve h;
  let res = Check.Lin.check Check.Spec.counter (Check.History.entries h) in
  (match res.Check.Lin.verdict with
  | Check.Lin.Linearizable -> ()
  | Check.Lin.Non_linearizable w ->
    Harness.fail "dedup --check (%s): history NOT linearizable: %s" stack
      (String.concat "; " w)
  | Check.Lin.Limit ->
    Harness.fail "dedup --check (%s): checker ran out of budget" stack);
  Printf.printf "   %-6s %s\n%!" stack
    (Format.asprintf "%a" Check.Lin.pp_result res)

let pump eng remaining ~deadline =
  let rec go () =
    Engine.run ~until:(Engine.clock eng +. 0.5) eng;
    if !remaining > 0 && Engine.clock eng < deadline then go ()
  in
  go ()

let rex_run ~total ~seed ~check =
  let cluster =
    R.Cluster.create ~seed
      (R.Config.make ~workers:4 ~replicas:[ 0; 1; 2 ] ())
      (counter_factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let net = R.Cluster.net cluster in
  let history =
    if not check then None
    else begin
      let h = Check.History.create eng in
      Array.iter
        (fun s -> Check.History.wire h [ R.Server.frontend s ])
        (R.Cluster.servers cluster);
      Some h
    end
  in
  Net.set_drop_probability net 0.08;
  let results, remaining =
    drive ~eng ~node:(R.Cluster.client_node cluster)
      ~cl:(R.Cluster.client cluster) ?history ~total ()
  in
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  R.Cluster.crash cluster (R.Server.node primary);
  pump eng remaining ~deadline:(Engine.clock eng +. 180.);
  Net.set_drop_probability net 0.;
  pump eng remaining ~deadline:(Engine.clock eng +. 90.);
  R.Cluster.check_no_divergence cluster;
  R.Cluster.run_for cluster 1.0;
  let servers = Array.to_list (R.Cluster.servers cluster) in
  let live =
    List.filter (fun s -> Engine.node_alive eng (R.Server.node s)) servers
  in
  Option.iter (fun h -> lin_verdict ~stack:"rex" h) history;
  let sum f = List.fold_left (fun a s -> a + f (R.Server.session_table s)) 0 in
  mk_row ~stack:"rex" ~total ~results
    ~dup_hits:(fun () -> sum R.Session.Table.dup_hits servers)
    ~evictions:(fun () -> sum R.Session.Table.evictions servers)
    ~sessions:(fun () ->
      List.fold_left
        (fun a s -> max a (R.Session.Table.sessions (R.Server.session_table s)))
        0 servers)
    ~final:
      (match live with
      | s :: _ -> R.Server.query s "GET"
      | [] -> "no-live-replica")

let smr_run ~total ~seed ~check =
  let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let config = R.Config.make ~workers:1 ~replicas:[ 0; 1; 2 ] () in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc config ~node:i ~paxos_store:(Paxos.Store.create ())
          (counter_factory ()))
  in
  let history =
    if not check then None
    else begin
      let h = Check.History.create eng in
      Check.History.wire h (List.map Smr.frontend (Array.to_list servers));
      Some h
    end
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  let leader =
    match Array.find_opt Smr.is_primary servers with
    | Some s -> s
    | None -> failwith "smr: no leader elected"
  in
  Net.set_drop_probability net 0.08;
  let cl = R.Client.create rpc ~me:3 ~replicas:[ 0; 1; 2 ] in
  let results, remaining = drive ~eng ~node:3 ~cl ?history ~total () in
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  Engine.crash_node eng (Smr.node leader);
  pump eng remaining ~deadline:(Engine.clock eng +. 180.);
  Net.set_drop_probability net 0.;
  pump eng remaining ~deadline:(Engine.clock eng +. 90.);
  Engine.run ~until:(Engine.clock eng +. 2.) eng;
  let all = Array.to_list servers in
  let live = List.filter (fun s -> Engine.node_alive eng (Smr.node s)) all in
  Option.iter (fun h -> lin_verdict ~stack:"smr" h) history;
  let sum f = List.fold_left (fun a s -> a + f (Smr.session_table s)) 0 in
  mk_row ~stack:"smr" ~total ~results
    ~dup_hits:(fun () -> sum R.Session.Table.dup_hits all)
    ~evictions:(fun () -> sum R.Session.Table.evictions all)
    ~sessions:(fun () ->
      List.fold_left
        (fun a s -> max a (R.Session.Table.sessions (Smr.session_table s)))
        0 all)
    ~final:
      (match live with
      | s :: _ -> Smr.query s "GET"
      | [] -> "no-live-replica")

let eve_run ~total ~seed ~check =
  let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = Eve.default_config ~workers:4 ~replicas:[ 0; 1; 2 ] () in
  let servers =
    Array.init 3 (fun i ->
        Eve.create net rpc cfg ~node:i ~paxos_store:(Paxos.Store.create ())
          ~conflict_keys:(fun _ -> [ "k" ])
          (counter_factory ()))
  in
  let history =
    if not check then None
    else begin
      let h = Check.History.create eng in
      Check.History.wire h (List.map Eve.frontend (Array.to_list servers));
      Some h
    end
  in
  Array.iter Eve.start servers;
  Engine.run ~until:1.0 eng;
  let leader =
    match Array.find_opt Eve.is_primary servers with
    | Some s -> s
    | None -> failwith "eve: no leader elected"
  in
  Net.set_drop_probability net 0.08;
  let cl = R.Client.create rpc ~me:3 ~replicas:[ 0; 1; 2 ] in
  let results, remaining = drive ~eng ~node:3 ~cl ?history ~total () in
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  Engine.crash_node eng (Eve.node leader);
  pump eng remaining ~deadline:(Engine.clock eng +. 180.);
  Net.set_drop_probability net 0.;
  pump eng remaining ~deadline:(Engine.clock eng +. 90.);
  Engine.run ~until:(Engine.clock eng +. 2.) eng;
  let all = Array.to_list servers in
  let live = List.filter (fun s -> Engine.node_alive eng (Eve.node s)) all in
  Option.iter (fun h -> lin_verdict ~stack:"eve" h) history;
  let sum f = List.fold_left (fun a s -> a + f (Eve.session_table s)) 0 all in
  mk_row ~stack:"eve" ~total ~results
    ~dup_hits:(fun () -> sum R.Session.Table.dup_hits)
    ~evictions:(fun () -> sum R.Session.Table.evictions)
    ~sessions:(fun () ->
      List.fold_left
        (fun a s -> max a (R.Session.Table.sessions (Eve.session_table s)))
        0 all)
    ~final:
      (match live with
      | s :: _ -> Eve.query s "GET"
      | [] -> "no-live-replica")

let run ?(quick = false) ?(check = false) () =
  let total = if quick then 40 else 200 in
  print_endline "";
  print_endline
    "== Exactly-once under faults (8% drops + leader kill, retrying \
     clients) ==";
  if check then
    print_endline "   (--check: histories recorded, linearizability asserted)";
  Printf.printf "%-6s %9s %10s %9s %10s %9s %8s  %s\n" "stack" "requests"
    "completed" "dup_hits" "evictions" "sessions" "final" "verdict";
  let rows =
    [
      rex_run ~total ~seed:4242 ~check;
      smr_run ~total ~seed:4243 ~check;
      eve_run ~total ~seed:4244 ~check;
    ]
  in
  let ok = ref true in
  List.iter
    (fun r ->
      if not r.exactly_once then ok := false;
      if r.dup_hits = 0 then ok := false;
      Printf.printf "%-6s %9d %10d %9d %10d %9d %8s  %s\n" r.stack r.total
        r.completed r.dup_hits r.evictions r.sessions r.final
        (if r.exactly_once && r.dup_hits > 0 then "exactly-once"
         else "DOUBLE-EXECUTION"))
    rows;
  if not !ok then
    Harness.fail
      "dedup smoke FAILED: a retried request was re-executed (or no \
       duplicate was ever produced to intercept)"
