(* Ablations of the design choices DESIGN.md calls out:
   1. causal-edge reduction on/off (trace size, throughput);
   2. partial-order vs total-order recording for readers-writer locks
      (replay parallelism — paper Fig. 4's motivation);
   3. flow-control window;
   4. proposal pacing (the single-active-instance design);
   5. pipelining; 6. acceptor fsync cost;
   7. trace compaction: resident trace size stays bounded under a
      checkpointing workload (exits non-zero if it does not, so CI can
      run it as a smoke test with --only compaction). *)

module R = Rex_core

let threads = 16

let kv_gen read_ratio () = Workload.Mix.kv ~read_ratio ()

let rex_with cfg factory gen ~warmup ~measure =
  Harness.run_rex ~threads ~config:cfg ~factory ~gen ~warmup ~measure ()

let scale quick n = if quick then n / 4 else n

let run_reduction ~quick () =
  let warmup = scale quick 1000 and measure = scale quick 4000 in
  Printf.printf "\n== Ablation 1: causal-edge reduction (lock server) ==\n";
  Printf.printf "reduction\tRex/s\tedges/req\ttrace_B/req\n%!";
  List.iter
    (fun reduce ->
      let cfg = Harness.rex_config ~reduce_edges:reduce ~threads () in
      let r =
        rex_with cfg
          (Apps.Lock_server.factory ())
          (Workload.Mix.lock_server ~n_files:100_000)
          ~warmup ~measure
      in
      Printf.printf "%s\t%.0f\t%.1f\t%.0f\n%!"
        (if reduce then "on" else "off")
        r.Harness.throughput r.Harness.edges_per_req r.Harness.trace_bytes_per_req)
    [ true; false ]

let run_partial_order ~quick () =
  let warmup = scale quick 1000 and measure = scale quick 4000 in
  Printf.printf
    "\n== Ablation 2: partial-order vs total-order recording (kyoto, 90%% reads) ==\n";
  Printf.printf "recording\tRex/s\twaited/s\tedges/req\ttrace_B/req\n%!";
  List.iter
    (fun partial ->
      let cfg = Harness.rex_config ~partial_order:partial ~threads () in
      (* Few slices make concurrent reads of one slice common, which is
         exactly where total-order recording destroys replay parallelism
         (Fig. 4). *)
      let r =
        rex_with cfg
          (Apps.Kyoto.factory ~slices:2 ())
          (kv_gen 0.9 ()) ~warmup ~measure
      in
      Printf.printf "%s\t%.0f\t%.0f\t%.1f\t%.0f\n%!"
        (if partial then "partial-order" else "total-order")
        r.Harness.throughput r.Harness.waited_per_sec r.Harness.edges_per_req
        r.Harness.trace_bytes_per_req)
    [ true; false ]

let run_flow ~quick () =
  let warmup = scale quick 1000 and measure = scale quick 4000 in
  Printf.printf "\n== Ablation 3: flow-control window (lock server) ==\n";
  Printf.printf "window(events)\tRex/s\n%!";
  List.iter
    (fun w ->
      let cfg = Harness.rex_config ~flow_window:w ~threads () in
      let r =
        rex_with cfg
          (Apps.Lock_server.factory ())
          (Workload.Mix.lock_server ~n_files:100_000)
          ~warmup ~measure
      in
      Printf.printf "%d\t%.0f\n%!" w r.Harness.throughput)
    [ 500; 2000; 20000; 200000 ]

(* Ablation 5: pipelining (§3.1 piggyback) — one vs several open
   consensus instances, across network latencies.  With one instance,
   reply latency is bounded below by a full commit round per delta;
   pipelining overlaps them. *)
let run_pipeline ~quick () =
  let warmup = if quick then 300 else 1000 in
  let measure = if quick then 1000 else 4000 in
  Printf.printf "\n== Ablation 5: pipeline depth x network latency (lock server) ==\n";
  Printf.printf "net_latency(us)\tdepth\tRex/s\tmean_lat(us)\tp99_lat(us)\n%!";
  List.iter
    (fun net_latency ->
      List.iter
        (fun depth ->
          let cfg =
            R.Cluster.config ~workers:threads ~propose_interval:2e-4
              ~pipeline_depth:depth ()
          in
          let r =
            Harness.run_rex ~net_latency ~min_window:0.03 ~threads ~config:cfg
              ~factory:(Apps.Lock_server.factory ())
              ~gen:(Workload.Mix.lock_server ~n_files:100_000)
              ~warmup ~measure ()
          in
          Printf.printf "%.0f\t%d\t%.0f\t%.0f\t%.0f\n%!" (net_latency *. 1e6)
            depth r.Harness.throughput
            (r.Harness.mean_latency *. 1e6)
            (r.Harness.p99_latency *. 1e6))
        [ 1; 4 ])
    [ 50e-6; 500e-6; 2e-3 ]

(* Ablation 6: acceptor stable storage — a real Paxos must fsync its
   promises and accepts; batching amortizes the cost, pipelining hides
   part of the latency. *)
let run_sync_latency ~quick () =
  let warmup = if quick then 300 else 1000 in
  let measure = if quick then 1000 else 4000 in
  Printf.printf "\n== Ablation 6: acceptor fsync cost (lock server) ==\n";
  Printf.printf "fsync(us)\tdepth\tRex/s\tmean_lat(us)\n%!";
  List.iter
    (fun sync ->
      List.iter
        (fun depth ->
          let cfg =
            R.Cluster.config ~workers:threads ~propose_interval:2e-4
              ~pipeline_depth:depth ~paxos_sync_latency:sync ()
          in
          let r =
            Harness.run_rex ~min_window:0.03 ~threads ~config:cfg
              ~factory:(Apps.Lock_server.factory ())
              ~gen:(Workload.Mix.lock_server ~n_files:100_000)
              ~warmup ~measure ()
          in
          Printf.printf "%.0f\t%d\t%.0f\t%.0f\n%!" (sync *. 1e6) depth
            r.Harness.throughput
            (r.Harness.mean_latency *. 1e6))
        [ 1; 4 ])
    [ 0.; 100e-6; 1e-3 ]

let run_pacing ~quick () =
  let warmup = scale quick 1000 and measure = scale quick 4000 in
  Printf.printf "\n== Ablation 4: proposal pacing (lock server) ==\n";
  Printf.printf "propose_interval(us)\tRex/s\n%!";
  List.iter
    (fun interval ->
      let cfg =
        R.Cluster.config ~workers:threads ~propose_interval:interval ()
      in
      let r =
        rex_with cfg
          (Apps.Lock_server.factory ())
          (Workload.Mix.lock_server ~n_files:100_000)
          ~warmup ~measure
      in
      Printf.printf "%.0f\t%.0f\n%!" (interval *. 1e6) r.Harness.throughput)
    [ 1e-4; 5e-4; 1e-3; 5e-3 ]

(* Ablation 7: trace compaction under periodic checkpointing.  Runs a
   lock-server cluster long enough for many checkpoints, sampling each
   node's resident trace every interval.  Without in-place compaction
   resident events grow linearly with recorded events; with it they
   plateau at O(window between checkpoints).  Fails the process when the
   resident peak is not clearly separated from the cumulative total, so
   this doubles as the CI memory-bound smoke test. *)
let run_compaction ~quick () =
  Printf.printf "\n== Ablation 7: trace compaction (lock server, periodic checkpoints) ==\n";
  let cfg =
    R.Cluster.config ~workers:8 ~propose_interval:2e-4
      ~checkpoint_interval:(Some (if quick then 0.02 else 0.05))
      ()
  in
  let cluster =
    R.Cluster.launch ~seed:7 ~cores_per_node:16 cfg (Apps.Lock_server.factory ())
  in
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let gen = Workload.Mix.lock_server ~n_files:100_000 in
  let rng = Sim.Rng.create 59 in
  ignore
    (Sim.Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         while true do
           while R.Server.queue_length primary < 1024 do
             R.Server.submit primary (gen rng) (fun _ -> ())
           done;
           Sim.Engine.sleep 1e-4
         done));
  Printf.printf "t(s)\tres_events\tres_edges\tincoming\tcompactions\trecorded_total\n%!";
  let rounds = if quick then 12 else 24 in
  let step = if quick then 0.025 else 0.05 in
  let peak = ref 0 in
  for _ = 1 to rounds do
    Sim.Engine.run ~until:(Sim.Engine.clock eng +. step) eng;
    let rt = R.Server.runtime primary in
    let tr = Rexsync.Runtime.trace rt in
    peak := max !peak (Trace.event_count tr);
    Printf.printf "%.3f\t%d\t%d\t%d\t%d\t%d\n%!" (Sim.Engine.clock eng)
      (Trace.event_count tr) (Trace.edge_count tr)
      (Trace.incoming_entries tr) (Trace.compactions tr)
      (Rexsync.Runtime.stats rt).Rexsync.Runtime.events_recorded
  done;
  let rt = R.Server.runtime primary in
  let tr = Rexsync.Runtime.trace rt in
  let total = (Rexsync.Runtime.stats rt).Rexsync.Runtime.events_recorded in
  let compactions = Trace.compactions tr in
  Printf.printf "peak resident %d of %d recorded, %d compactions\n%!" !peak
    total compactions;
  if compactions = 0 then Harness.fail "FAIL: no trace compaction happened";
  if 2 * !peak >= total then
    Harness.fail "FAIL: resident trace not bounded (peak %d vs %d recorded)"
      !peak total;
  Printf.printf "OK: resident trace bounded by checkpoint window\n%!"

let sections ~quick =
  [
    ("reduction", run_reduction ~quick);
    ("partial-order", run_partial_order ~quick);
    ("flow", run_flow ~quick);
    ("pacing", run_pacing ~quick);
    ("pipeline", run_pipeline ~quick);
    ("fsync", run_sync_latency ~quick);
    ("compaction", run_compaction ~quick);
  ]

let section_names = List.map fst (sections ~quick:false)
(* the CLI validates --only against this list at parse time *)

let run ?(quick = false) ?only () =
  let secs = sections ~quick in
  match only with
  | None -> List.iter (fun (_, f) -> f ()) secs
  | Some name -> (
    match List.assoc_opt name secs with
    | Some f -> f ()
    | None ->
      Printf.printf "unknown ablation %S; available: %s\n%!" name
        (String.concat ", " (List.map fst secs));
      exit 2)
