(* `par`: the execution stage of one replica on the real-parallel
   domains backend (lib/par), side by side with the same workload on the
   deterministic simulator.

   The domains backend has no network and no fault injection, so what it
   can rerun is the paper's Fig. 8 question — how fast worker threads
   record (or natively run) the synchronization-heavy execution stage —
   with real OCaml 5 domains and wall-clock time where the simulator
   charges virtual time.  Three sweeps:

     - scaling:    workers 1..8, fixed contention (Fig. 8 x-axis)
     - null-exec:  empty critical sections — pure record-path overhead
     - contention: lock-pool size 1..64 at fixed workers (Fig. 8b shape)

   Every domains point asserts its per-lock counters equal the simulator
   run's (the lock index is drawn from a per-worker seeded rng, and the
   counters commute, so the totals are interleaving-independent).

   Wall-clock numbers depend on the machine; on a single hardware core
   the domains sweep measures oversubscription overhead, not speedup —
   the harness prints the core count so the output is honest. *)

open Sim

(* Workload shared by both backends: each request spins [compute]
   seconds of Engine.work, a [frac] fraction of it inside one lock drawn
   from a pool of [locks] (contention probability 1/locks), mirroring
   bench/fig8.ml's micro app without the surrounding cluster. *)

type point = {
  throughput : float;  (* requests per (wall | virtual) second *)
  elapsed : float;
  events_per_req : float;  (* recorded sync events per request *)
  counters : int array;  (* per-lock totals, for cross-backend equality *)
}

let worker_body rt pool counters ~rng ~ops ~locks ~frac ~compute ~slot =
  (match slot with
  | Some s -> Rexsync.Runtime.bind_slot rt s
  | None -> ());
  for _ = 1 to ops do
    let i = Rng.int rng locks in
    Engine.work (compute *. (1. -. frac));
    Rexsync.Lock.with_lock pool.(i) (fun () ->
        Engine.work (compute *. frac);
        counters.(i) <- counters.(i) + 1)
  done;
  match slot with Some _ -> Rexsync.Runtime.unbind_slot rt | None -> ()

let make_locks rt locks =
  Array.init locks (fun i -> Rexsync.Lock.create rt (Printf.sprintf "micro%d" i))

(* One point on the domains backend.  [record] binds each worker to a
   slot (record path); without it the fibers stay unbound and take the
   native path through the same Par.Sync mutexes. *)
let domains_point ?(seed = 42) ?(record = true) ~domains ~workers ~locks ~frac
    ~compute ~ops ~label () =
  let d = Par.Domains.create ~seed ~domains () in
  let rt = Rexsync.Runtime.create (Par.Domains.backend d) ~node:0 ~slots:workers in
  let pool = make_locks rt locks in
  let counters = Array.make locks 0 in
  let t0 = Par.Domains.now d in
  for w = 0 to workers - 1 do
    Par.Domains.spawn d ~node:0 ~name:(Printf.sprintf "worker%d" w) (fun () ->
        let rng = Rng.create (seed + (w * 7919)) in
        worker_body rt pool counters ~rng ~ops ~locks ~frac ~compute
          ~slot:(if record then Some w else None))
  done;
  Par.Domains.join d;
  let dt = Par.Domains.now d -. t0 in
  let stats = Rexsync.Runtime.stats rt in
  Harness.note_run_obs ~label ~time:(Par.Domains.now d) (Par.Domains.obs d);
  Par.Domains.shutdown d;
  let total = workers * ops in
  if Array.fold_left ( + ) 0 counters <> total then
    Harness.fail "par %s: lost increments (%d/%d)" label
      (Array.fold_left ( + ) 0 counters)
      total;
  {
    throughput = float_of_int total /. dt;
    elapsed = dt;
    events_per_req =
      float_of_int stats.Rexsync.Runtime.events_recorded /. float_of_int total;
    counters;
  }

(* The identical workload on the simulator (virtual time). *)
let sim_point ?(seed = 42) ?(record = true) ~workers ~locks ~frac ~compute ~ops
    ~label () =
  let eng = Engine.create ~seed ~cores_per_node:workers ~num_nodes:1 () in
  let rt = Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:workers in
  let pool = make_locks rt locks in
  let counters = Array.make locks 0 in
  let finished = ref 0 in
  let t0 = Engine.clock eng in
  for w = 0 to workers - 1 do
    ignore
      (Engine.spawn eng ~node:0 ~name:(Printf.sprintf "worker%d" w) (fun () ->
           let rng = Rng.create (seed + (w * 7919)) in
           worker_body rt pool counters ~rng ~ops ~locks ~frac ~compute
             ~slot:(if record then Some w else None);
           incr finished))
  done;
  if
    not
      (Harness.pump eng ~done_p:(fun () -> !finished = workers)
         ~virtual_deadline:3600.)
  then Harness.fail "par %s: simulator run did not finish" label;
  let dt = Engine.clock eng -. t0 in
  let stats = Rexsync.Runtime.stats rt in
  Harness.note_run ~label eng;
  let total = workers * ops in
  {
    throughput = float_of_int total /. dt;
    elapsed = dt;
    events_per_req =
      float_of_int stats.Rexsync.Runtime.events_recorded /. float_of_int total;
    counters;
  }

let check_equal ~label (dom : point) (sim : point) =
  if dom.counters <> sim.counters then
    Harness.fail
      "par %s: domains and simulator disagree on per-lock counters" label

(* Pool-level metrics of the most recent domains run, read back from its
   registry before shutdown.  Re-created per call because each backend
   owns a fresh Obs.t. *)
let pool_metrics d =
  let obs = Par.Domains.obs d in
  let tasks =
    Obs.Metric.value (Obs.counter obs ~subsystem:"par" "pool_tasks")
  in
  let depth_max =
    Obs.Metric.get (Obs.gauge obs ~subsystem:"par" "queue_depth_max")
  in
  let busy = ref 0. in
  for i = 0 to Par.Domains.domains d - 1 do
    busy :=
      !busy
      +. Obs.Metric.get
           (Obs.gauge obs ~subsystem:"par"
              ~labels:[ ("domain", string_of_int i) ]
              "domain_busy")
  done;
  (tasks, depth_max, !busy)

let fmt_units r =
  if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r

let hw_cores () = Domain.recommended_domain_count ()

let run ?(quick = false) () =
  let cores = hw_cores () in
  Printf.printf
    "\n== par: execution stage on real domains vs the simulator ==\n";
  Printf.printf
    "machine: %d hardware core%s; domains numbers are wall-clock, sim \
     numbers are virtual time\n%!"
    cores
    (if cores = 1 then " (sweep measures oversubscription, not speedup)"
     else "s");
  let compute = if quick then 50e-6 else 100e-6 in
  let ops = if quick then 100 else 400 in

  (* --- Fig. 8-style worker scaling --- *)
  let sweep = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  Printf.printf
    "\n-- scaling: %d ops/worker, %.0f us/req, 10%%/req in 1-of-16 locks --\n"
    ops (compute *. 1e6);
  Printf.printf "workers\tdomains\twall_s\tsim\tvirt_s\tevents/req\n%!";
  List.iter
    (fun w ->
      let label = Printf.sprintf "par-scale-w%d" w in
      let dom =
        domains_point ~domains:(min w cores) ~workers:w ~locks:16 ~frac:0.1
          ~compute ~ops ~label:(label ^ "-domains") ()
      in
      let sim =
        sim_point ~workers:w ~locks:16 ~frac:0.1 ~compute ~ops
          ~label:(label ^ "-sim") ()
      in
      check_equal ~label dom sim;
      Printf.printf "%d\t%s\t%.3f\t%s\t%.3f\t%.1f\n%!" w
        (fmt_units dom.throughput) dom.elapsed (fmt_units sim.throughput)
        sim.elapsed dom.events_per_req)
    sweep;

  (* --- Null execution: record-path overhead with empty sections --- *)
  let nops = if quick then 2_000 else 10_000 in
  Printf.printf
    "\n-- null-exec: %d lock/unlock pairs, no compute (record-path cost) --\n"
    nops;
  Printf.printf "mode\tdomains\tsim\n%!";
  List.iter
    (fun (mode, record) ->
      let dom =
        domains_point ~record ~domains:1 ~workers:1 ~locks:1 ~frac:1.0
          ~compute:0. ~ops:nops
          ~label:(Printf.sprintf "par-null-%s-domains" mode)
          ()
      in
      let sim =
        sim_point ~record ~workers:1 ~locks:1 ~frac:1.0 ~compute:0. ~ops:nops
          ~label:(Printf.sprintf "par-null-%s-sim" mode)
          ()
      in
      check_equal ~label:("null-" ^ mode) dom sim;
      Printf.printf "%s\t%s/s\t%s/s\n%!" mode (fmt_units dom.throughput)
        (fmt_units sim.throughput))
    [ ("native", false); ("record", true) ];

  (* --- Lock contention at fixed workers (Fig. 8b shape) --- *)
  let workers = 4 in
  let cops = if quick then 100 else 300 in
  Printf.printf
    "\n-- contention: %d workers, 50%% of %.0f us/req inside 1-of-L locks --\n"
    workers (compute *. 1e6);
  Printf.printf "locks\tp\tdomains\tsim\tevents/req\n%!";
  List.iter
    (fun locks ->
      let label = Printf.sprintf "par-cont-l%d" locks in
      let dom =
        domains_point ~domains:(min workers cores) ~workers ~locks ~frac:0.5
          ~compute ~ops:cops ~label:(label ^ "-domains") ()
      in
      let sim =
        sim_point ~workers ~locks ~frac:0.5 ~compute ~ops:cops
          ~label:(label ^ "-sim") ()
      in
      check_equal ~label dom sim;
      Printf.printf "%d\t%.3f\t%s\t%s\t%.1f\n%!" locks
        (1. /. float_of_int locks)
        (fmt_units dom.throughput) (fmt_units sim.throughput)
        dom.events_per_req)
    [ 1; 4; 16; 64 ];

  (* --- Pool utilization of one instrumented run --- *)
  let d = Par.Domains.create ~seed:42 ~domains:(min 4 (max 2 cores)) () in
  let rt = Rexsync.Runtime.create (Par.Domains.backend d) ~node:0 ~slots:4 in
  let pool = make_locks rt 16 in
  let counters = Array.make 16 0 in
  let t0 = Par.Domains.now d in
  for w = 0 to 3 do
    Par.Domains.spawn d ~node:0 ~name:(Printf.sprintf "util%d" w) (fun () ->
        let rng = Rng.create (42 + (w * 7919)) in
        worker_body rt pool counters ~rng ~ops ~locks:16 ~frac:0.1 ~compute
          ~slot:(Some w))
  done;
  Par.Domains.join d;
  let dt = Par.Domains.now d -. t0 in
  let tasks, depth_max, busy = pool_metrics d in
  Harness.note_run_obs ~label:"par-util" ~time:(Par.Domains.now d)
    (Par.Domains.obs d);
  Par.Domains.shutdown d;
  Printf.printf
    "\n-- pool: %d domains, %d tasks, max queue depth %.0f, busy %.3fs \
     over %.3fs wall => utilization %.0f%%\n%!"
    (Par.Domains.domains d) tasks depth_max busy dt
    (100. *. busy /. (dt *. float_of_int (Par.Domains.domains d)))

(* --- Fig. 8 grids rerun on the domains backend (--backend domains).

   The full Fig. 8 runs a replicated Rex cluster, which needs the
   simulated network; the domains variants rerun the same
   contention-grid workload for the execution stage only (record mode,
   no consensus), with compute scaled from the paper's 10 ms to 100 us
   so a grid point costs milliseconds of real CPU, not seconds. --- *)

let fig8_compute = 100e-6

let fig8_domains_point ~quick ~frac ~locks ~record () =
  let cores = hw_cores () in
  let workers = 4 in
  let ops = if quick then 60 else 200 in
  let dom =
    domains_point ~record ~domains:(min workers cores) ~workers ~locks ~frac
      ~compute:fig8_compute ~ops
      ~label:
        (Printf.sprintf "fig8-domains-f%g-l%d-%s" frac locks
           (if record then "record" else "native"))
      ()
  in
  dom.throughput

let run_a_domains ?(quick = false) () =
  Printf.printf
    "\n== Fig. 8(a) on domains: record-mode throughput vs contention ==\n";
  Printf.printf
    "(execution stage only, %d hw cores, compute scaled to %.0f us)\n"
    (hw_cores ()) (fig8_compute *. 1e6);
  Printf.printf "contention_p\tf=10%%\tf=60%%\tf=80%%\tf=100%%\n%!";
  List.iter
    (fun p ->
      let locks = max 1 (int_of_float (1. /. p)) in
      let row =
        List.map
          (fun frac ->
            Harness.fmt_rate
              (fig8_domains_point ~quick ~frac ~locks ~record:true ()))
          [ 0.1; 0.6; 0.8; 1.0 ]
      in
      Printf.printf "%g\t%s\n%!" p (String.concat "\t" row))
    [ 0.001; 0.01; 0.05; 0.1 ]

let run_b_domains ?(quick = false) () =
  Printf.printf
    "\n== Fig. 8(b) on domains: native vs record, 10%% of compute in locks \
     ==\n";
  Printf.printf
    "(execution stage only, %d hw cores, compute scaled to %.0f us)\n"
    (hw_cores ()) (fig8_compute *. 1e6);
  Printf.printf "contention_p\tnative\trecord\n%!";
  List.iter
    (fun p ->
      let locks = max 1 (int_of_float (1. /. p)) in
      let native = fig8_domains_point ~quick ~frac:0.1 ~locks ~record:false () in
      let record = fig8_domains_point ~quick ~frac:0.1 ~locks ~record:true () in
      Printf.printf "%g\t%s\t%s\n%!" p (Harness.fmt_rate native)
        (Harness.fmt_rate record))
    [ 0.001; 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ]
