(* `bench/main.exe check`: the Jepsen-style correctness sweep.

   For each (stack, app, nemesis) combination, runs N seeded
   fault-schedule explorations inside the deterministic simulator
   (lib/check.Runner): a recorded client workload runs while the nemesis
   plays a seeded schedule of crashes / leader kills / partitions /
   message loss / latency skew; after healing, the history is checked
   for linearizability against the app's sequential spec and the
   replicas for convergence and liveness.  Any failing seed is shrunk to
   a minimal reproducing schedule (faults dropped one at a time, replays
   by seed) and the reproducer is written to --repro-out for CI to
   upload.

   --dedup-off injects a harness-level bug — retries mint fresh request
   identities, so replicas cannot deduplicate — and asserts the checker
   *does* flag the resulting double executions; it is the canary that
   proves the oracle can see a real exactly-once violation.

   --reads routes the workload's read-only ops through the lease/quorum
   read fast path (Client.query) instead of the ordered client path;
   the sweep must stay linearizable with leases on.

   --lease-unsafe is the fast path's own canary, mirroring --dedup-off:
   fencing is disabled on every replica and a Stale_leader fault slows
   the leader's clock beyond the drift bound while partitioning it from
   the other replicas (client links stay up), so it keeps serving local
   reads against state the rest of the group has moved past.  The
   canary workload is read-heavy (read_ratio 0.85) so clients stay
   parked on the stale leader — its reads still answer, and only a
   failed write would rotate them away.  The checker must flag at least
   one seed as non-linearizable — proof the oracle can see a stale
   read. *)

module N = Check.Nemesis
module Runner = Check.Runner

let expand_stacks = function
  | "all" ->
    [
      Runner.Rex;
      Runner.Smr;
      Runner.Eve;
      Runner.Sharded;
      Runner.Cbase;
      Runner.Early;
    ]
  | s -> (
    match Runner.stack_of_string s with
    | Some st -> [ st ]
    | None -> Harness.fail "check: unknown stack %S" s)

let expand_apps = function
  | "all" -> [ Runner.Kv; Runner.Counter ]
  | s -> (
    match Runner.app_of_string s with
    | Some a -> [ a ]
    | None -> Harness.fail "check: unknown app %S" s)

let expand_nemeses = function
  | "all" -> List.map snd N.profiles
  | s -> (
    match N.profile_of_string s with
    | Some p -> [ p ]
    | None -> Harness.fail "check: unknown nemesis %S" s)

let verdict_cell (o : Runner.outcome) =
  match o.result.Check.Lin.verdict with
  | Check.Lin.Linearizable when Runner.passed o -> "ok"
  | Check.Lin.Linearizable when not o.converged -> "DIVERGED"
  | Check.Lin.Linearizable -> "WEDGED"
  | Check.Lin.Non_linearizable _ -> "NON-LIN"
  | Check.Lin.Limit -> "LIMIT"

let write_repro path (seed : int) (o : Runner.outcome) =
  let oc = open_out path in
  output_string oc
    (String.concat "\n"
       (Printf.sprintf "minimal reproducer (seed %d)" seed
        :: Runner.describe_outcome o
       @ ("" :: "history:" :: o.history_lines)
       @ [ "" ]));
  close_out oc;
  Printf.printf "   reproducer written to %s\n%!" path

(* One (stack, app, nemesis) row: sweep seeds, shrink failures. *)
let sweep_one ~stack ~app ~nemesis ~seeds ~base_seed ~dedup_off ~reads ~quick
    ~repro_out =
  let base =
    Runner.default_config
      ~clients:(if quick then 2 else 3)
      ~ops_per_client:(if quick then 6 else 8)
      ~dedup_off ~reads_via_query:reads ~stack ~app ~nemesis ~seed:base_seed
      ()
  in
  let t0 = Sys.time () in
  let sweep =
    Runner.sweep
      ~progress:(fun seed o ->
        if not (Runner.passed o) then
          Printf.printf "   seed %d: %s\n%!" seed (verdict_cell o))
      ~base ~seeds ()
  in
  let dt = Sys.time () -. t0 in
  Printf.printf "%-6s %-8s %-10s %5d seeds  %4d failed  %6.1fs\n%!"
    (Runner.stack_name stack) (Runner.app_name app) (N.profile_name nemesis)
    sweep.Runner.runs
    (List.length sweep.Runner.failed)
    dt;
  List.iter
    (fun (seed, (o : Runner.outcome)) ->
      Printf.printf "   seed %d shrank to %d fault(s):\n%!" seed
        (List.length o.schedule.N.faults);
      List.iter (fun l -> Printf.printf "     %s\n%!" l)
        (Runner.describe_outcome o);
      Option.iter (fun p -> write_repro p seed o) repro_out)
    sweep.Runner.failed;
  sweep.Runner.failed

(* Determinism self-check: the same seed must replay byte-identically —
   the property every shrink/replay above leans on. *)
let determinism_check ~stack ~app ~nemesis ~seed =
  let cfg =
    Runner.default_config ~clients:2 ~ops_per_client:4 ~stack ~app ~nemesis
      ~seed ()
  in
  let a = (Runner.run_one cfg).Runner.history_lines in
  let b = (Runner.run_one cfg).Runner.history_lines in
  if a <> b then
    Harness.fail
      "check: NON-DETERMINISTIC replay (seed %d, %s/%s/%s): two runs \
       disagree"
      seed (Runner.stack_name stack) (Runner.app_name app)
      (N.profile_name nemesis)

(* The lease-unsafe canary: a fixed beyond-bound Stale_leader schedule,
   replayed over consecutive workload seeds, with fencing disabled and
   reads on the (now unguarded) local path.  At least one seed must be
   flagged NON-LINEARIZABLE — a stale read the checker saw. *)
let lease_canary ~stack ~seeds ~base_seed ~quick =
  let stacks = expand_stacks stack in
  let horizon = 3.0 in
  let schedule =
    {
      N.horizon;
      faults =
        [
          (* Rate 0.25 is far outside the 0.2 drift bound; the long
             window gives the healthy majority time to elect and commit
             past the stale leader. *)
          { N.kind = N.Stale_leader { rate = 0.25 }; at = 0.5; dur = 2.2 };
        ];
    }
  in
  let seeds = if quick then min seeds 5 else seeds in
  Printf.printf
    "\n== Lease canary: fencing OFF + beyond-bound skew (%s, %d seeds) ==\n%!"
    stack seeds;
  let flagged = ref 0 in
  List.iter
    (fun stack ->
      for i = 0 to seeds - 1 do
        let cfg =
          Runner.default_config ~clients:3
            ~ops_per_client:(if quick then 12 else 16)
            ~reads_via_query:true ~lease_unsafe:true ~read_ratio:0.85 ~stack
            ~app:Runner.Kv ~nemesis:N.Leases ~seed:(base_seed + i) ~horizon ()
        in
        let o = Runner.run_one ~schedule cfg in
        Printf.printf "   %s seed %d: %s\n%!" (Runner.stack_name stack)
          (base_seed + i) (verdict_cell o);
        match o.Runner.result.Check.Lin.verdict with
        | Check.Lin.Non_linearizable w ->
          incr flagged;
          Printf.printf "      %s\n%!" (String.concat "; " w)
        | Check.Lin.Linearizable | Check.Lin.Limit -> ()
      done)
    stacks;
  if !flagged = 0 then
    Harness.fail
      "check --lease-unsafe: no seed was flagged — the oracle is blind to \
       stale leader-local reads";
  Printf.printf
    "OK: lease canary flagged %d seed(s) as non-linearizable\n%!" !flagged

let run ?(quick = false) ?(stack = "rex") ?(app = "kv") ?(nemesis = "mixed")
    ?(seeds = 10) ?(base_seed = 1000) ?(dedup_off = false) ?(reads = false)
    ?(lease_unsafe = false) ?repro_out () =
  if lease_unsafe then lease_canary ~stack ~seeds ~base_seed ~quick
  else begin
  let stacks = expand_stacks stack in
  let apps = expand_apps app in
  let nemeses = expand_nemeses nemesis in
  Printf.printf
    "\n== Fault-schedule explorer: %s x %s x %s, %d seeds from %d%s%s ==\n%!"
    stack app nemesis seeds base_seed
    (if dedup_off then " (DEDUP OFF: expecting violations)" else "")
    (if reads then " (reads via fast path)" else "");
  determinism_check ~stack:(List.hd stacks) ~app:(List.hd apps)
    ~nemesis:(List.hd nemeses) ~seed:base_seed;
  let failures = ref [] in
  List.iter
    (fun stack ->
      List.iter
        (fun app ->
          if not (stack = Runner.Sharded && app = Runner.Counter) then
            List.iter
              (fun nemesis ->
                let f =
                  sweep_one ~stack ~app ~nemesis ~seeds ~base_seed ~dedup_off
                    ~reads ~quick ~repro_out
                in
                List.iter
                  (fun (seed, o) -> failures := (stack, app, seed, o) :: !failures)
                  f)
              nemeses)
        apps)
    stacks;
  if dedup_off then begin
    (* The canary must trip: a run whose client defeats dedup is
       genuinely at-least-once, and the checker has to see it. *)
    if !failures = [] then
      Harness.fail
        "check --dedup-off: no seed was flagged — the oracle is blind to \
         double execution";
    let max_faults =
      List.fold_left
        (fun acc (_, _, _, (o : Runner.outcome)) ->
          max acc (List.length o.schedule.N.faults))
        0 !failures
    in
    Printf.printf
      "OK: dedup-off flagged %d seed(s), minimal reproducers have <= %d \
       fault(s)\n%!"
      (List.length !failures) max_faults;
    if max_faults > 3 then
      Harness.fail
        "check --dedup-off: a reproducer kept %d faults (expected <= 3)"
        max_faults
  end
  else if !failures <> [] then
    Harness.fail "check: %d seed(s) failed (reproducers above)"
      (List.length !failures)
  else Printf.printf "OK: every seed linearizable, converged and live\n%!"
  end
