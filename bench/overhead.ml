(* The §6.3 overhead numbers: record overhead on the primary (paper: within
   5% of native), the replay-bound end-to-end gap (up to 25%), causal-edge
   reduction (58–99%), trace bytes per synchronization event (~16 B), and
   the log-size overhead of synchronization events relative to shipped
   client requests (0–70%). *)

open Sim
module R = Rex_core

let threads = 16

(* Measure the PRIMARY's execution rate with secondaries detached from
   flow control, isolating recording overhead from replay speed.  Rates
   here can exceed 1M req/s of virtual time, so measure over a fixed
   virtual-time window rather than a request count. *)
let run_record_only ~factory ~gen ~warmup:_ ~measure:_ =
  let cfg =
    R.Config.make ~workers:threads ~propose_interval:2e-4
      ~flow_window:max_int ~replicas:[ 0; 1; 2 ] ()
  in
  let cluster = R.Cluster.create ~seed:42 ~cores_per_node:16 cfg factory in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let executed () = (R.Server.stats primary).R.Server.requests_executed in
  let rng = Rng.create 59 in
  (* Top up the run queue on a timer, independent of commit latency: the
     workers must never starve. *)
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         while true do
           while R.Server.queue_length primary < 4096 do
             R.Server.submit primary (gen rng) (fun _ -> ())
           done;
           Engine.sleep 1e-4
         done));
  let warm_window = 5e-3 and window = 20e-3 in
  Engine.run ~until:(Engine.clock eng +. warm_window) eng;
  let t0 = Engine.clock eng and c0 = executed () in
  Engine.run ~until:(t0 +. window) eng;
  float_of_int (executed () - c0) /. (Engine.clock eng -. t0)

let apps_to_measure =
  [
    ( "lockserver",
      (fun () -> Apps.Lock_server.factory ()),
      (fun () -> Workload.Mix.lock_server ~n_files:100_000),
      1000, 6000 );
    ( "leveldb",
      (fun () -> Apps.Leveldb.factory ()),
      (fun () -> Workload.Mix.kv ~read_ratio:0.5 ()),
      4000, 20000 );
    ( "kyoto",
      (fun () -> Apps.Kyoto.factory ()),
      (fun () -> Workload.Mix.kv ~read_ratio:0.5 ()),
      4000, 20000 );
  ]

let run ?(quick = false) () =
  Printf.printf "\n== §6.3 overhead breakdown (16 threads) ==\n";
  Printf.printf
    "app\tnative/s\trecord/s\trec_ovh%%\trex/s\treplay_gap%%\tevents/req\t\
     edges/req\treduced%%\tB/event\tlog_ovh%%\tres_events\tres_edges\n%!";
  List.iter
    (fun (name, factory, gen, warmup, measure) ->
      let warmup = if quick then warmup / 2 else warmup in
      let measure = if quick then measure / 2 else measure in
      let native =
        Harness.run_native ~cores:16 ~threads ~factory:(factory ())
          ~gen:(gen ()) ~warmup ~measure ()
      in
      let record_rate =
        run_record_only ~factory:(factory ()) ~gen:(gen ()) ~warmup ~measure
      in
      let rex =
        Harness.run_rex ~threads ~factory:(factory ()) ~gen:(gen ()) ~warmup
          ~measure ()
      in
      let pct a b = 100. *. (1. -. (a /. b)) in
      let sync_bytes =
        rex.Harness.trace_bytes_per_req -. rex.Harness.request_bytes_per_req
      in
      let bytes_per_event =
        if rex.Harness.events_per_req > 0. then
          sync_bytes /. rex.Harness.events_per_req
        else 0.
      in
      let log_overhead =
        if rex.Harness.request_bytes_per_req > 0. then
          100. *. sync_bytes /. rex.Harness.request_bytes_per_req
        else 0.
      in
      Printf.printf
        "%s\t%.0f\t%.0f\t%.1f\t%.0f\t%.1f\t%.1f\t%.1f\t%.0f\t%.1f\t%.0f\t%d\t\
         %d\n%!"
        name native.Harness.throughput record_rate
        (pct record_rate native.Harness.throughput)
        rex.Harness.throughput
        (pct rex.Harness.throughput record_rate)
        rex.Harness.events_per_req rex.Harness.edges_per_req
        (100. *. rex.Harness.reduced_fraction)
        bytes_per_event log_overhead rex.Harness.resident_events
        rex.Harness.resident_edges)
    apps_to_measure
