(* YCSB core workloads on the replicated key/value stores: standard
   cloud-serving mixes exercising the same Rex machinery with different
   read/write balances, skew, scans and read-modify-writes.

   --read-ratio R,R,... swaps the core-workload table for a read-ratio
   sweep that routes reads through the client read fast path
   (Client.query: leader lease or quorum read) and reports the
   fast-path hit rate from the frontend obs counters. *)

let threads = 16

let run_read_ratio ~quick ratios =
  let clients = 8 in
  let ops = if quick then 60 else 200 in
  Printf.printf
    "\n== YCSB read-ratio sweep: reads via the fast path (Rex, %d \
     clients) ==\n"
    clients;
  Printf.printf "read_ratio\treq/s\tlease\tquorum\tfallback\thit%%\n%!";
  List.iter
    (fun ratio ->
      let p = Reads_bench.rex_point ~ratio ~fast:true ~clients ~ops () in
      Printf.printf "%.2f\t%s\t%d\t%d\t%d\t%.0f%%\n%!" ratio
        (Harness.fmt_rate p.Reads_bench.throughput)
        p.Reads_bench.fast_lease p.Reads_bench.fast_quorum
        p.Reads_bench.ordered_falls
        (Reads_bench.hit_rate p))
    ratios

let stores :
    (string * (unit -> Rex_core.App.factory)) list =
  [
    ("leveldb", fun () -> Apps.Leveldb.factory ());
    ("kyoto", fun () -> Apps.Kyoto.factory ());
  ]

let run ?(quick = false) ?read_ratio () =
  match read_ratio with
  | Some ratios -> run_read_ratio ~quick ratios
  | None ->
  let warmup = if quick then 500 else 2000 in
  let measure = if quick then 2000 else 8000 in
  Printf.printf "\n== YCSB core workloads under Rex (16 threads, req/s) ==\n";
  Printf.printf "workload\t%s\n%!"
    (String.concat "\t" (List.map fst stores));
  List.iter
    (fun w ->
      let row =
        List.map
          (fun (_, factory) ->
            let r =
              Harness.run_rex ~threads ~factory:(factory ())
                ~gen:(Workload.Mix.ycsb ~n_keys:100_000 w)
                ~warmup ~measure ()
            in
            Harness.fmt_rate r.Harness.throughput)
          stores
      in
      Printf.printf "%-22s\t%s\n%!" (Workload.Mix.ycsb_name w)
        (String.concat "\t" row))
    [ Workload.Mix.A; B; C; D; E; F ]
