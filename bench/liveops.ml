(* Live-operations timeline: a 2-group fleet under continuous keyed
   traffic while the control plane replaces a replica, splits a shard
   off, merges it back and rolls an upgrade across every group — the
   req/s-over-time + update-lag + failover-timeline measurement of live
   reconfiguration (cf. Redis-Cluster-style live-patching studies).

   Each enabled phase is book-ended with timeline marks; the per-bucket
   rows expose the throughput dip and latency spike each operation
   costs, and the shard/router counters give the migration lag (keys
   moved, migration wall-time, router remaps and requests parked on a
   frozen key range). *)

open Sim
module R = Rex_core
module Map_ = Shard.Shard_map
module Fleet = Shard.Fleet
module Router = Shard.Router

type phases = {
  reconfig : bool;  (* replace one replica of group 0 through the log *)
  split : bool;  (* live split a third group off *)
  merge : bool;  (* merge it back out (needs [split]) *)
  upgrade : bool;  (* rolling restart of every active group *)
}

let phase_count p =
  List.length (List.filter Fun.id [ p.reconfig; p.split; p.merge; p.upgrade ])

let run ?(quick = false) ?(phases = { reconfig = true; split = true;
                                      merge = true; upgrade = true })
    ?(bucket = 1.0) () =
  if phases.merge && not phases.split then
    Harness.fail "liveops: --merge on requires --split on";
  let fleet =
    Fleet.create ~seed:42 ~groups:2 (fun ~map ~group ->
        Shard.Partition.factory ~map ~group (Apps.Memcache.factory ()))
  in
  let eng = Fleet.engine fleet in
  let obs = Engine.obs eng in
  Fleet.start fleet;
  Fleet.await_primaries fleet;
  let router = Fleet.router fleet in
  let tl =
    match Harness.arm_timeline ~bucket () with
    | Some tl -> tl
    | None -> Obs.Timeline.create ~bucket ()
  in
  (* Continuous keyed traffic for the whole timeline: [fibers] open
     loops, each recording completion time + latency per reply. *)
  let fibers = if quick then 4 else 8 in
  let completed = ref 0 and failed = ref 0 in
  let stop = ref false in
  let gen = Workload.Mix.kv_keyed ~n_keys:400 ~read_ratio:0.2 () in
  for w = 0 to fibers - 1 do
    ignore
      (Engine.spawn eng ~node:(Fleet.client_node fleet)
         ~name:(Printf.sprintf "liveops-client%d" w)
         (fun () ->
           let rng = Rng.create (1000 + (w * 7919)) in
           while not !stop do
             let key, request = gen rng in
             let t0 = Engine.clock eng in
             match Router.call router ~key request with
             | Some _ ->
               incr completed;
               Obs.Timeline.record tl ~latency:(Engine.clock eng -. t0)
                 (Engine.clock eng)
             | None -> incr failed
           done))
  done;
  let quiet = if quick then 2.0 else 4.0 in
  Fleet.run_for fleet quiet;
  let baseline = !completed in
  (* Each phase: mark, run the operation (it pumps the simulation itself
     — traffic keeps completing inside), mark again, then a quiet gap so
     the recovery is visible as its own buckets. *)
  let phase name op =
    let t0 = Engine.clock eng in
    Obs.Timeline.mark tl t0 (name ^ ":start");
    op ();
    let t1 = Engine.clock eng in
    Obs.Timeline.mark tl t1 (name ^ ":done");
    Printf.printf "  %-10s t=%6.2f..%6.2f (%.2fs)\n%!" name t0 t1 (t1 -. t0);
    Fleet.run_for fleet quiet
  in
  if phases.reconfig then
    phase "reconfig" (fun () -> ignore (Fleet.reconfig_group fleet 0));
  let split_group = ref None in
  if phases.split then
    phase "split" (fun () -> split_group := Some (Fleet.split fleet));
  if phases.merge then
    phase "merge" (fun () -> Fleet.merge fleet (Option.get !split_group));
  if phases.upgrade then phase "upgrade" (fun () -> Fleet.rolling_upgrade fleet);
  Fleet.run_for fleet quiet;
  stop := true;
  Fleet.run_for fleet 1.0;
  (* --- Report: req/s over time with the control-plane marks --- *)
  Harness.print_header "liveops: req/s over the control-plane timeline"
    [ "t"; "req/s"; "lat_mean(ms)"; "lat_max(ms)"; "event" ];
  List.iter
    (fun (r : Obs.Timeline.row) ->
      Printf.printf "%.1f\t%s\t%.3f\t%.3f\t%s\n" r.Obs.Timeline.t0
        (Harness.fmt_rate r.Obs.Timeline.rate)
        (1e3 *. r.Obs.Timeline.lat_mean)
        (1e3 *. r.Obs.Timeline.lat_max)
        (String.concat ";" r.Obs.Timeline.row_marks))
    (Obs.Timeline.rows tl);
  (* --- Migration lag + failover info from the obs registry --- *)
  let c name = Obs.Metric.value (Obs.counter obs ~subsystem:"shard" name) in
  let h = Obs.histogram obs ~subsystem:"shard" "migration_duration" in
  Printf.printf
    "\nmigrations=%d keys_moved=%d migration_time mean=%.2fs max=%.2fs\n"
    (c "migrations") (c "migrated_keys") (Obs.Histogram.mean h)
    (Obs.Histogram.max_seen h);
  Printf.printf
    "reconfigs=%d rolling_upgrades=%d router_remaps=%d migration_waits=%d \
     epoch=%.0f\n"
    (c "group_reconfigs") (c "rolling_upgrades") (c "router_remaps")
    (c "migration_waits")
    (Obs.Metric.get (Obs.gauge obs ~subsystem:"shard" "fleet_epoch"));
  Printf.printf "requests: %d completed, %d failed\n" !completed !failed;
  (* --- Smoke assertions --- *)
  (* A rolling upgrade restarts leaders, so a handful of in-flight
     requests may time out at the router — an availability blip, not
     data loss (dedup makes the retry path safe).  Anything beyond a
     sliver means a migration stranded a key range. *)
  if float_of_int !failed > 0.005 *. float_of_int (max 1 !completed) then
    Harness.fail "liveops: %d of %d request(s) failed (> 0.5%%)" !failed
      !completed;
  if !completed <= baseline then
    Harness.fail "liveops: no traffic completed after the quiet period";
  let expect_migrations =
    (if phases.split then 1 else 0) + if phases.merge then 1 else 0
  in
  if c "migrations" <> expect_migrations then
    Harness.fail "liveops: expected %d migration(s), observed %d"
      expect_migrations (c "migrations");
  if phases.reconfig && c "group_reconfigs" <> 1 then
    Harness.fail "liveops: replica replacement not recorded";
  if phases.upgrade && c "rolling_upgrades" = 0 then
    Harness.fail "liveops: rolling upgrade not recorded";
  if expect_migrations > 0 && c "migrated_keys" = 0 then
    Harness.fail "liveops: migrations moved no keys";
  let expected_epoch = float_of_int expect_migrations in
  let epoch = Obs.Metric.get (Obs.gauge obs ~subsystem:"shard" "fleet_epoch") in
  if epoch <> expected_epoch then
    Harness.fail "liveops: fleet epoch %.0f, expected %.0f" epoch
      expected_epoch;
  if phase_count phases > 0 && Obs.Timeline.marks tl = [] then
    Harness.fail "liveops: timeline recorded no phase marks";
  Fleet.check_no_divergence fleet;
  if not (Fleet.converged fleet) then
    Harness.fail "liveops: groups diverged after the timeline";
  Harness.note_run ~label:"liveops" eng;
  print_endline
    "OK: traffic survived every enabled live operation; groups converged"
