(* Figure 10: failover timeline of the thumbnail server (paper §6.6).
   Two checkpoints early on, the primary killed, restarted 20 units
   later; per-bucket throughput shows the checkpoint dips, the
   election gap, and the long rejoin dip caused by aggressive flow
   control.  [scale] compresses the paper's 140-second timeline. *)

open Sim
module R = Rex_core

let run ?(scale = 0.1) () =
  let s = scale in
  let total = 140. *. s in
  let bucket = 1.0 *. s in
  let ckpt1 = 10. *. s and ckpt2 = 60. *. s in
  let kill_at = 71. *. s and restart_at = 91. *. s in
  let cfg =
    R.Cluster.config ~workers:8 ~propose_interval:2e-4
      ~election_timeout:(2.0 *. s) ~heartbeat_period:(0.4 *. s)
      ~flow_staleness:(2.0 *. s) ~flow_window:4000
      ~ckpt_byte_cost:(4e-7 *. s) ()
  in
  let cluster =
    R.Cluster.launch ~seed:101 ~cores_per_node:16 cfg
      (Apps.Thumbnail.factory ~compute_cost:(3e-3 *. s) ())
  in
  let eng = R.Cluster.engine cluster in
  let t0 = Engine.clock eng in
  (* Saturating driver that follows the primary across failovers. *)
  let outstanding = ref 0 in
  let window = 64 in
  let gen = Workload.Mix.thumbnail ~n_images:1_000_000 in
  let rng = Rng.create 3 in
  ignore
    (Engine.spawn eng ~node:3 ~name:"fig10-driver" (fun () ->
         while Engine.now () -. t0 < total do
           (match R.Cluster.primary cluster with
           | Some p when !outstanding < window ->
             incr outstanding;
             R.Server.submit p (gen rng) (fun _ -> decr outstanding)
           | Some _ | None -> Engine.sleep (bucket /. 20.));
           if !outstanding >= window then Engine.sleep (bucket /. 50.)
         done));
  (* Scripted events. *)
  let primary_node () =
    match R.Cluster.primary cluster with
    | Some p -> Some (R.Server.node p)
    | None -> None
  in
  Engine.schedule eng ~at:(t0 +. ckpt1) (fun () ->
      Option.iter
        (fun n -> R.Server.request_checkpoint (R.Cluster.server cluster n))
        (primary_node ()));
  Engine.schedule eng ~at:(t0 +. ckpt2) (fun () ->
      Option.iter
        (fun n -> R.Server.request_checkpoint (R.Cluster.server cluster n))
        (primary_node ()));
  let killed = ref (-1) in
  Engine.schedule eng ~at:(t0 +. kill_at) (fun () ->
      match primary_node () with
      | Some n ->
        killed := n;
        R.Cluster.crash cluster n
      | None -> ());
  Engine.schedule eng ~at:(t0 +. restart_at) (fun () ->
      if !killed >= 0 then R.Cluster.restart cluster !killed);
  (* Sample replies per bucket, robust to server-object replacement. *)
  Printf.printf
    "\n== Fig. 10: thumbnail failover timeline (scale %.2fx; ckpt @%.1f/%.1f, \
     kill @%.1f, restart @%.1f) ==\n"
    s ckpt1 ckpt2 kill_at restart_at;
  Printf.printf "t\tthroughput(req/s)\tevent\n%!";
  let prev = Array.make 3 0 in
  let prev_srv : R.Server.t option array = Array.make 3 None in
  let steps = int_of_float (Float.round (total /. bucket)) in
  for step = 1 to steps do
    Engine.run ~until:(t0 +. (float_of_int step *. bucket)) eng;
    let replies = ref 0 in
    for n = 0 to 2 do
      let srv = R.Cluster.server cluster n in
      let now_count = (R.Server.stats srv).R.Server.replies_sent in
      let base =
        match prev_srv.(n) with
        | Some old when old == srv -> prev.(n)
        | _ -> 0 (* server was rebuilt; counters restarted *)
      in
      replies := !replies + max 0 (now_count - base);
      prev.(n) <- now_count;
      prev_srv.(n) <- Some srv
    done;
    let t = float_of_int step *. bucket in
    let annotate =
      if Float.abs (t -. ckpt1) < bucket /. 2. then "<- checkpoint 1"
      else if Float.abs (t -. ckpt2) < bucket /. 2. then "<- checkpoint 2"
      else if Float.abs (t -. kill_at) < bucket /. 2. then "<- primary killed"
      else if Float.abs (t -. restart_at) < bucket /. 2. then "<- replica rejoins"
      else ""
    in
    Printf.printf "%.1f\t%.0f\t%s\n%!" t
      (float_of_int !replies /. bucket)
      annotate
  done
