(* Open-loop load: a fleet of sessions drives each replicated stack
   through the shared frontend at a rate the servers do not control,
   with frontend admission shedding what cannot be served and a
   bounded-memory sampled checker watching correctness the whole time.

   `bench load` runs, in order:
   - a ramp across the five stacks (rex, smr, eve, cbase, early) with a
     per-stack goodput/latency/shed table (and, with --check, a sampled
     linearizability verdict per stack);
   - an admission ON/OFF A/B on rex at the same offered overload: ON
     must shed explicitly while keeping the queue and the SLO burn
     bounded, OFF must exhibit the unbounded-queue / timeout collapse;
   - a dedup-off canary: an at-least-once client under reply drops must
     be flagged by the sampled checker (double commit);
   - a domains smoke: the same generator config replayed on the real
     OCaml 5 domains backend must produce a byte-identical arrival/key
     trace (cross-backend determinism witness).

   Every assertion raises Harness.Failed, so the suite doubles as a
   tier-1 smoke via `bench load --quick`.  --timeline-out writes one CSV
   with a `# stack=<name>` section per ramp run. *)

open Sim
module R = Rex_core
module L = Load

type stack = SRex | SSmr | SEve | SCbase | SEarly

let stack_name = function
  | SRex -> "rex"
  | SSmr -> "smr"
  | SEve -> "eve"
  | SCbase -> "cbase"
  | SEarly -> "early"

let all_stacks = [ SRex; SSmr; SEve; SCbase; SEarly ]
let stack_names = List.map stack_name all_stacks

let stack_of_string s =
  List.find_opt (fun st -> stack_name st = s) all_stacks

(* The app under load: striped counters keyed by the request's first
   argument, wire-compatible with Check.Spec.keyed_counter.  The stripes
   are Rex locks so that on the Rex stack the recorded lock order makes
   replay — and hence every response value — deterministic; the other
   stacks run the same factory through their native serial paths. *)
let stripes = 32

let keyed_factory () : R.App.factory =
 fun api ->
  let counts : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let locks =
    Array.init stripes (fun i -> R.Api.lock api (Printf.sprintf "s%d" i))
  in
  let stripe k = Hashtbl.hash k mod stripes in
  let get k = Option.value (Hashtbl.find_opt counts k) ~default:0 in
  let bindings () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] |> List.sort compare
  in
  {
    R.App.name = "keyed-counter";
    execute =
      (fun ~request ->
        match Check.Spec.words request with
        | "INC" :: k :: _ ->
          Rexsync.Lock.with_lock locks.(stripe k) (fun () ->
              let v = get k + 1 in
              Hashtbl.replace counts k v;
              string_of_int v)
        | [ "GET"; k ] ->
          Rexsync.Lock.with_lock locks.(stripe k) (fun () ->
              string_of_int (get k))
        | _ -> "ERR:bad-request");
    query =
      (fun ~request ->
        match Check.Spec.words request with
        | [ "GET"; k ] -> string_of_int (get k)
        | _ -> "ERR:bad-query");
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b (k, v) ->
            Codec.write_string b k;
            Codec.write_uvarint b v)
          (bindings ()));
    read_checkpoint =
      (fun src ->
        Hashtbl.reset counts;
        List.iter
          (fun (k, v) -> Hashtbl.replace counts k v)
          (Codec.read_list src (fun s ->
               let k = Codec.read_string s in
               (k, Codec.read_uvarint s))));
    digest = (fun () -> string_of_int (Hashtbl.hash (bindings ())));
  }

(* Conflict oracle for the sched stacks and Eve: ops conflict iff they
   touch the same counter key. *)
let conflict req =
  match Check.Spec.words req with
  | "INC" :: k :: _ | [ "GET"; k ] -> [ k ]
  | _ -> [ "*" ]

(* ---------------------------------------------------------------- *)
(* Deployment: one of the five stacks, 3 replicas on nodes 0-2 and the
   session fleet on the client node, with admission knobs threaded into
   the stack's own config. *)

type admit = { ad_global : int; ad_per_client : int; ad_soft : int; ad_hard : int }

let no_admit = { ad_global = 0; ad_per_client = 0; ad_soft = 0; ad_hard = 0 }

type deployed = {
  dp_eng : Engine.t;
  dp_net : Net.t;
  dp_rpc : Rpc.t;
  dp_node : int;  (* where the load engine and its clients live *)
  dp_fronts : R.Frontend.t list;
}

let replicas = [ 0; 1; 2 ]

let deploy ?record_cost ~seed ~admit stack =
  let { ad_global; ad_per_client; ad_soft; ad_hard } = admit in
  let cfg =
    R.Config.make ~workers:4 ?record_cost ~admit_global:ad_global
      ~admit_per_client:ad_per_client ~admit_queue_soft:ad_soft
      ~admit_queue_hard:ad_hard ~replicas ()
  in
  match stack with
  | SRex ->
    let cluster = R.Cluster.create ~seed cfg (keyed_factory ()) in
    R.Cluster.start cluster;
    ignore (R.Cluster.await_primary cluster);
    {
      dp_eng = R.Cluster.engine cluster;
      dp_net = R.Cluster.net cluster;
      dp_rpc = R.Cluster.rpc cluster;
      dp_node = R.Cluster.client_node cluster;
      dp_fronts =
        Array.to_list (R.Cluster.servers cluster)
        |> List.map R.Server.frontend;
    }
  | SSmr | SEve | SCbase | SEarly ->
    let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:4 () in
    let net = Net.create eng in
    let rpc = Rpc.create net in
    let fronts =
      match stack with
      | SSmr ->
        let servers =
          Array.init 3 (fun i ->
              Smr.create net rpc cfg ~node:i
                ~paxos_store:(Paxos.Store.create ())
                (keyed_factory ()))
        in
        Array.iter Smr.start servers;
        Array.to_list servers |> List.map Smr.frontend
      | SEve ->
        let ecfg =
          Eve.default_config ~workers:4 ~admit_global:ad_global
            ~admit_per_client:ad_per_client ~admit_queue_soft:ad_soft
            ~admit_queue_hard:ad_hard ~replicas ()
        in
        let servers =
          Array.init 3 (fun i ->
              Eve.create net rpc ecfg ~node:i
                ~paxos_store:(Paxos.Store.create ())
                ~conflict_keys:conflict (keyed_factory ()))
        in
        Array.iter Eve.start servers;
        Array.to_list servers |> List.map Eve.frontend
      | SCbase | SEarly ->
        let mode =
          if stack = SCbase then Sched.Exec.Cbase else Sched.Exec.Early
        in
        let servers =
          Array.init 3 (fun i ->
              Sched.Server.create net rpc cfg ~node:i
                ~paxos_store:(Paxos.Store.create ())
                ~mode ~conflict (keyed_factory ()))
        in
        Array.iter Sched.Server.start servers;
        Array.to_list servers |> List.map Sched.Server.frontend
      | SRex -> assert false
    in
    Engine.run ~until:1.0 eng;
    if Engine.clock eng < 1.0 then Engine.run ~until:3.0 eng;
    { dp_eng = eng; dp_net = net; dp_rpc = rpc; dp_node = 3; dp_fronts = fronts }

(* ---------------------------------------------------------------- *)
(* The target: the blocking call one arrival performs.  Clients are
   created lazily per session (each gets its own session identity, so
   the replicas' dedup tables see the real fleet).  With [sample] every
   op is recorded into the bounded-memory checker; a [Shed] outcome is
   certified never-executed by the client, which is exactly what
   Sample.reject's must-never-commit watch needs. *)

let make_target ~eng ~rpc ~node ?sample () =
  let clients : (int, R.Client.t) Hashtbl.t = Hashtbl.create 4096 in
  let client s =
    match Hashtbl.find_opt clients s with
    | Some c -> c
    | None ->
      let c = R.Client.create rpc ~me:node ~replicas in
      Hashtbl.add clients s c;
      c
  in
  let now () = Engine.clock eng in
  let inv ~session req =
    match sample with
    | None -> -1
    | Some sm -> Check.Sample.invoke sm ~now:(now ()) ~client:session ~request:req
  in
  let fin id resp =
    Option.iter (fun sm -> Check.Sample.finish sm ~now:(now ()) id resp) sample
  in
  let rej id =
    Option.iter (fun sm -> Check.Sample.reject sm ~now:(now ()) id) sample
  in
  fun ~session ~seq ~key ~read ->
    let cl = client session in
    if read then begin
      let req = Printf.sprintf "GET k%d" key in
      let id = inv ~session req in
      match R.Client.query ~retries:4 cl req with
      | Some _ as r ->
        fin id r;
        L.Engine.Done
      | None ->
        fin id None;
        L.Engine.Timeout
    end
    else begin
      (* The trailing token makes every payload unique, so the checker's
         rejected-payload watch cannot collide across sessions. *)
      let req = Printf.sprintf "INC k%d t%d.%d" key session seq in
      let id = inv ~session req in
      match R.Client.call_outcome ~retries:6 cl req with
      | R.Client.Reply r ->
        fin id (Some r);
        L.Engine.Done
      | R.Client.Shed ->
        rej id;
        L.Engine.Rejected
      | R.Client.Gave_up ->
        fin id None;
        L.Engine.Timeout
    end

(* Run the load engine inside the simulation: spawn the runner fiber on
   the client node and pump the engine until it reports. *)
let exec ~dp ?timeline ~target cfg =
  let result = ref None in
  ignore
    (Engine.spawn dp.dp_eng ~node:dp.dp_node ~name:"load-run" (fun () ->
         result :=
           Some
             (L.Engine.run
                (Par.Backend.of_sim dp.dp_eng)
                ~node:dp.dp_node ?timeline ~target cfg)));
  let deadline = Engine.clock dp.dp_eng +. cfg.L.Engine.duration +. 600. in
  while !result = None && Engine.clock dp.dp_eng < deadline do
    Engine.run ~until:(Engine.clock dp.dp_eng +. 1.0) dp.dp_eng
  done;
  match !result with
  | None ->
    Harness.fail "load: run not drained %.0fs past the horizon"
      (deadline -. cfg.L.Engine.duration)
  | Some st ->
    (* Let stragglers (commit taps, duplicate replies) settle before the
       checker closes its books. *)
    Engine.run ~until:(Engine.clock dp.dp_eng +. 1.0) dp.dp_eng;
    st

(* The engine's books must balance: every generated arrival is either
   shed engine-side or admitted, and every admitted call ends in exactly
   one outcome bucket. *)
let check_accounting ~label (st : L.Engine.stats) =
  if st.generated <> st.admitted + st.shed_session + st.shed_queue then
    Harness.fail "load %s: generated %d <> admitted %d + shed %d/%d" label
      st.generated st.admitted st.shed_session st.shed_queue;
  if st.admitted <> st.ok + st.busy + st.timeouts + st.errors then
    Harness.fail "load %s: admitted %d <> ok %d + busy %d + to %d + err %d"
      label st.admitted st.ok st.busy st.timeouts st.errors;
  if st.errors > 0 then Harness.fail "load %s: %d errors" label st.errors

let finalize_sample ~label sm =
  Check.Sample.finalize sm;
  let stats = Check.Sample.stats sm in
  Printf.printf "   %-6s %s\n%!" label
    (Format.asprintf "%a" Check.Sample.pp_stats stats);
  (stats, Check.Sample.violations sm)

let assert_sample_ok ~label sm =
  let _, viols = finalize_sample ~label sm in
  (match viols with
  | [] -> ()
  | v :: _ ->
    Harness.fail "load --check (%s): %d violation(s); first: %s %s [%s]" label
      (List.length viols) v.Check.Sample.v_kind v.Check.Sample.v_key
      v.Check.Sample.v_detail);
  if not (Check.Sample.ok sm) then
    Harness.fail "load --check (%s): a window tripped its search budget" label

(* ---------------------------------------------------------------- *)
(* 1. Ramp across the five stacks. *)

let ramp ~quick ~check ~stacks =
  let sessions = if quick then 20_000 else 100_000 in
  let duration = if quick then 3.0 else 8.0 in
  let lo = if quick then 200. else 300. in
  let hi = if quick then 800. else 1500. in
  Printf.printf
    "\n== Open-loop ramp: %d sessions, %.0f -> %.0f req/s over %.0fs ==\n"
    sessions lo hi duration;
  if check then
    print_endline "   (--check: sampled windowed linearizability asserted)";
  Printf.printf "%-6s %9s %9s %7s %7s %7s %8s %8s %8s %9s %7s\n" "stack"
    "generated" "ok" "shed" "busy" "tmout" "p50ms" "p99ms" "p999ms" "goodput/s"
    "maxq";
  let timelines = ref [] in
  List.iter
    (fun stack ->
      let name = stack_name stack in
      let admit =
        { ad_global = 512; ad_per_client = 8; ad_soft = 768; ad_hard = 1536 }
      in
      let dp = deploy ~seed:(9100 + Hashtbl.hash name mod 97) ~admit stack in
      let sample =
        if not check then None
        else begin
          let sm =
            Check.Sample.create ~keys_cap:48 ~window_cap:512 ~seed:31
              Check.Spec.keyed_counter
          in
          Check.Sample.wire sm dp.dp_fronts;
          Some sm
        end
      in
      let cfg =
        L.Engine.config ~keys:256 ~theta:0.99 ~read_ratio:0.5 ~queue_cap:8192
          ~callers:64 ~slo:0.05 ~sessions
          ~profile:(L.Arrivals.Ramp { lo; hi; over = duration })
          ~duration ~seed:4242 ()
      in
      let tl =
        if !Harness.timeline_path = None then None
        else Some (Obs.Timeline.create ())
      in
      let target = make_target ~eng:dp.dp_eng ~rpc:dp.dp_rpc ~node:dp.dp_node ?sample () in
      let st = exec ~dp ?timeline:tl ~target cfg in
      Harness.note_run ~label:("load-" ^ name) dp.dp_eng;
      check_accounting ~label:name st;
      if st.ok = 0 then Harness.fail "load %s: no request ever completed" name;
      if st.ok * 10 < st.generated * 8 then
        Harness.fail "load %s: goodput collapsed (%d ok of %d) under a ramp \
                      the stack should absorb" name st.ok st.generated;
      Option.iter (fun tl -> timelines := (name, tl) :: !timelines) tl;
      Printf.printf "%-6s %9d %9d %7d %7d %7d %8.2f %8.2f %8.2f %9.0f %7d\n%!"
        name st.generated st.ok
        (st.shed_session + st.shed_queue)
        st.busy st.timeouts (1e3 *. st.p50) (1e3 *. st.p99) (1e3 *. st.p999)
        (float_of_int st.ok /. duration)
        st.max_queue;
      Option.iter (fun sm -> assert_sample_ok ~label:name sm) sample)
    stacks;
  (* One CSV, a section per stack, written directly (the harness sink
     only keeps the most recent run's timeline). *)
  match !Harness.timeline_path with
  | Some path when !timelines <> [] ->
    let buf = Buffer.create 4096 in
    List.iter
      (fun (name, tl) ->
        Buffer.add_string buf (Printf.sprintf "# stack=%s\n" name);
        Buffer.add_string buf (Obs.Timeline.to_csv tl))
      (List.rev !timelines);
    Obs.Export.to_file ~path (Buffer.contents buf);
    (* Disarm the path: flush_outputs would otherwise overwrite the
       multi-stack file with a header-only CSV (no harness sink armed). *)
    Harness.timeline_path := None;
    Printf.printf "   timeline CSV (%d stacks) -> %s\n%!"
      (List.length !timelines) path
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* 2. Admission ON/OFF A/B on rex at the same offered overload.  The
   record-cost model makes service capacity finite (~2k req/s across 4
   workers), so the offered 2.5k/s is a genuine overload.  ON must shed
   explicitly (Busy + engine queue bound) and keep goodput and the SLO
   burn healthy; OFF must show the collapse: queue growth bounded only
   by the run length, timeouts instead of rejections. *)

let overload_ab ~quick =
  let sessions = if quick then 6_000 else 20_000 in
  let duration = if quick then 2.0 else 4.0 in
  let rate = 2_500. in
  Printf.printf
    "\n== Overload A/B (rex): %.0f req/s offered, ~2k req/s capacity ==\n" rate;
  let go ~label ~admit ~queue_cap =
    let dp = deploy ~record_cost:2e-3 ~seed:551 ~admit SRex in
    (* 256 callers and inflight 8 keep the load engine out of the way:
       the full offered rate reaches the frontend, where the contrast
       under test lives. *)
    let cfg =
      L.Engine.config ~keys:64 ~read_ratio:0.2 ~session_inflight:8 ~queue_cap
        ~callers:256 ~slo:0.05 ~sessions ~profile:(L.Arrivals.Steady rate)
        ~duration ~seed:1717 ()
    in
    let target = make_target ~eng:dp.dp_eng ~rpc:dp.dp_rpc ~node:dp.dp_node () in
    let st = exec ~dp ~target cfg in
    Harness.note_run ~label:("load-ab-" ^ label) dp.dp_eng;
    check_accounting ~label:("ab-" ^ label) st;
    Printf.printf
      "%-4s %9d %9d %7d %7d %7d %8.1f %8.1f %9d %9d\n%!" label st.generated
      st.ok (L.Engine.shed st) st.busy st.timeouts (1e3 *. st.p50)
      (1e3 *. st.p99) st.max_queue st.slo_breach;
    st
  in
  Printf.printf "%-4s %9s %9s %7s %7s %7s %8s %8s %9s %9s\n" "mode" "generated"
    "ok" "shed" "busy" "tmout" "p50ms" "p99ms" "maxq" "sloburn";
  let on =
    go ~label:"on"
      ~admit:{ ad_global = 256; ad_per_client = 8; ad_soft = 96; ad_hard = 192 }
      ~queue_cap:2048
  in
  let off = go ~label:"off" ~admit:no_admit ~queue_cap:1_000_000 in
  if on.busy = 0 then
    Harness.fail "overload A/B: admission ON never shed (busy = 0)";
  if L.Engine.shed on = 0 then
    Harness.fail "overload A/B: admission ON shed nothing";
  if off.max_queue < 4 * max on.max_queue 1 then
    Harness.fail
      "overload A/B: OFF queue high-water %d not >> ON %d — overload control \
       made no difference"
      off.max_queue on.max_queue;
  (* Both runs are capacity-bound, so goodput cannot rise; admission's
     win is turning slow timeouts into fast explicit rejections without
     giving any goodput back. *)
  if on.ok * 10 < off.ok * 9 then
    Harness.fail "overload A/B: admission cost goodput (%d ok vs %d without)"
      on.ok off.ok;
  if on.timeouts >= off.timeouts then
    Harness.fail
      "overload A/B: ON timeouts %d not below OFF %d — shedding did not \
       replace client-burned time"
      on.timeouts off.timeouts;
  if 2 * on.slo_breach >= off.slo_breach then
    Harness.fail "overload A/B: SLO burn ON (%d) not well under OFF (%d)"
      on.slo_breach off.slo_breach;
  if on.p99 > duration then
    Harness.fail "overload A/B: ON p99 %.3fs unbounded (run was %.0fs)"
      on.p99 duration;
  print_endline
    "   admission ON: explicit shed, bounded queue + p99; OFF: collapse. ok"

(* ---------------------------------------------------------------- *)
(* 3. Dedup-off canary: an at-least-once client (fresh envelope per
   retry, same payload) under reply drops re-executes lost-reply
   requests; the sampled checker must notice — a second commit for a
   live payload is the double-commit signature, and the value skew is
   non-linearizable. *)

let canary ~quick =
  print_endline
    "\n== Canary: at-least-once client under 6% drops (must be flagged) ==";
  let admit =
    { ad_global = 512; ad_per_client = 16; ad_soft = 768; ad_hard = 1536 }
  in
  let dp = deploy ~seed:909 ~admit SRex in
  Net.set_drop_probability dp.dp_net 0.06;
  let sm =
    Check.Sample.create ~keys_cap:16 ~window_cap:256 ~seed:5
      Check.Spec.keyed_counter
  in
  Check.Sample.wire sm dp.dp_fronts;
  let clients : (int, R.Client.t) Hashtbl.t = Hashtbl.create 256 in
  let client s =
    match Hashtbl.find_opt clients s with
    | Some c -> c
    | None ->
      let c = R.Client.create dp.dp_rpc ~me:dp.dp_node ~replicas in
      Hashtbl.add clients s c;
      c
  in
  let now () = Engine.clock dp.dp_eng in
  let target ~session ~seq ~key ~read =
    let cl = client session in
    if read then begin
      let req = Printf.sprintf "GET k%d" key in
      let id = Check.Sample.invoke sm ~now:(now ()) ~client:session ~request:req in
      match R.Client.query ~retries:4 cl req with
      | Some _ as r ->
        Check.Sample.finish sm ~now:(now ()) id r;
        L.Engine.Done
      | None ->
        Check.Sample.finish sm ~now:(now ()) id None;
        L.Engine.Timeout
    end
    else begin
      let req = Printf.sprintf "INC k%d t%d.%d" key session seq in
      let id = Check.Sample.invoke sm ~now:(now ()) ~client:session ~request:req in
      (* At-least-once, deliberately: a timed-out attempt is re-sent as a
         NEW envelope with the same payload, so a lost reply means double
         execution.  This is the bug the checker exists to catch. *)
      let resp =
        match R.Client.call ~retries:1 ~timeout:0.08 cl req with
        | Some r -> Some r
        | None -> R.Client.call ~retries:4 cl req
      in
      Check.Sample.finish sm ~now:(now ()) id resp;
      match resp with Some _ -> L.Engine.Done | None -> L.Engine.Timeout
    end
  in
  let cfg =
    L.Engine.config ~keys:8 ~read_ratio:0.3 ~callers:16 ~queue_cap:4096
      ~sessions:128
      ~profile:(L.Arrivals.Steady (if quick then 100. else 160.))
      ~duration:2.0 ~seed:2024 ()
  in
  let st = exec ~dp ~target cfg in
  Net.set_drop_probability dp.dp_net 0.;
  Engine.run ~until:(Engine.clock dp.dp_eng +. 1.0) dp.dp_eng;
  let _, viols = finalize_sample ~label:"canary" sm in
  let flagged =
    List.exists
      (fun v ->
        v.Check.Sample.v_kind = "double-commit"
        || v.Check.Sample.v_kind = "non-linearizable"
        || v.Check.Sample.v_kind = "unresolved-commit")
      viols
  in
  if not flagged then
    Harness.fail
      "canary NOT flagged: %d ops under drops produced no double-commit / \
       non-linearizable violation — the sampled checker is blind"
      st.generated;
  let v = List.hd viols in
  Printf.printf "   flagged as expected: %s on %s (%s)\n%!"
    v.Check.Sample.v_kind v.Check.Sample.v_key v.Check.Sample.v_detail

(* ---------------------------------------------------------------- *)
(* 4. Domains smoke: the generator is pure, so the same config must
   yield a byte-identical (time, session, key) trace on the sim backend
   and on real OCaml 5 domains (where the dispatcher paces against the
   wall clock).  null_target keeps this a generator/engine test, not a
   replication test. *)

let domains_smoke ~quick =
  print_endline "\n== Domains smoke: cross-backend trace determinism ==";
  let cfg =
    L.Engine.config ~keys:128 ~trace_cap:400
      ~sessions:(if quick then 10_000 else 50_000)
      ~profile:(L.Arrivals.Steady 1500.)
      ~duration:(if quick then 0.4 else 1.0)
      ~seed:77 ()
  in
  let sim_stats =
    let eng = Engine.create ~seed:77 ~num_nodes:2 () in
    let result = ref None in
    ignore
      (Engine.spawn eng ~node:0 ~name:"load-sim" (fun () ->
           result :=
             Some
               (L.Engine.run (Par.Backend.of_sim eng) ~node:0
                  ~target:L.Engine.null_target cfg)));
    Engine.run ~until:(cfg.L.Engine.duration +. 30.) eng;
    match !result with
    | Some st -> st
    | None -> Harness.fail "domains smoke: sim run did not finish"
  in
  let dom_stats =
    let d = Par.Domains.create ~seed:77 () in
    let result = Atomic.make None in
    Par.Domains.spawn d ~node:0 ~name:"load-dom" (fun () ->
        Atomic.set result
          (Some
             (L.Engine.run (Par.Domains.backend d) ~node:0
                ~target:L.Engine.null_target cfg)));
    Par.Domains.join d;
    Harness.note_run_obs ~label:"load-domains" ~time:(Par.Domains.now d)
      (Par.Domains.obs d);
    Par.Domains.shutdown d;
    match Atomic.get result with
    | Some st -> st
    | None -> Harness.fail "domains smoke: domains run did not finish"
  in
  check_accounting ~label:"domains" dom_stats;
  if sim_stats.generated <> dom_stats.generated then
    Harness.fail "domains smoke: generated %d (sim) <> %d (domains)"
      sim_stats.generated dom_stats.generated;
  if sim_stats.trace <> dom_stats.trace then begin
    let n = min (Array.length sim_stats.trace) (Array.length dom_stats.trace) in
    let i = ref 0 in
    while !i < n && sim_stats.trace.(!i) = dom_stats.trace.(!i) do incr i done;
    Harness.fail
      "domains smoke: traces diverge at event %d of %d/%d — the generator \
       leaked backend state"
      !i
      (Array.length sim_stats.trace)
      (Array.length dom_stats.trace)
  end;
  Printf.printf
    "   %d arrivals, trace witness (%d events) identical on sim and domains. ok\n%!"
    dom_stats.generated
    (Array.length dom_stats.trace)

(* ---------------------------------------------------------------- *)

let run ?(quick = false) ?(check = false) ?stack () =
  let stacks =
    match stack with
    | None -> all_stacks
    | Some s -> (
      match stack_of_string s with
      | Some st -> [ st ]
      | None ->
        Harness.fail "unknown stack %S (expected one of %s)" s
          (String.concat ", " stack_names))
  in
  ramp ~quick ~check ~stacks;
  if stack = None then begin
    overload_ab ~quick;
    canary ~quick;
    domains_smoke ~quick
  end;
  Harness.flush_outputs ()

(* `check --open-loop`: the checker-first entry point — sampled windowed
   verdicts across every stack plus the seeded canary that proves the
   checker can still see a real bug. *)
let open_loop_check ?(quick = false) () =
  ramp ~quick ~check:true ~stacks:all_stacks;
  canary ~quick;
  Harness.flush_outputs ()
