(* Benchmark harness entry point: one subcommand per table/figure of the
   paper's evaluation (§6), plus overhead, ablations and wall-clock
   micro-benchmarks.  `all` regenerates everything.

   Every subcommand takes --metrics-out FILE (per-run metrics registry as
   a JSON array), --trace-out FILE (Chrome trace_event JSON of the last
   traced run, viewable in chrome://tracing or ui.perfetto.dev) and
   --timeline-out FILE (windowed req/s + latency CSV of the most recent
   run). *)

open Cmdliner
open Bench_lib

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Run scaled-down workloads.")

let app_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "app" ]
        ~doc:
          "Only this application (thumbnail, lockserver, leveldb, kyoto, \
           filesys, memcache).")

let scale_arg =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ]
        ~doc:"Timeline compression for fig10 (1.0 = the paper's 140 s).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write each run's metrics registry to $(docv) as JSON.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Collect tracing spans and write a Chrome trace_event file to \
           $(docv).")

let timeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline-out" ] ~docv:"FILE"
        ~doc:
          "Write a windowed req/s + latency time series (CSV) of the most \
           recent run to $(docv).")

(* Wrap a thunk-valued term so that the metrics/trace/timeline sinks are
   armed before the benchmark runs and flushed after it finishes.  A
   smoke assertion failure (Harness.Failed) prints and exits non-zero —
   the same assertions raise so `dune runtest` can catch them
   in-process. *)
let instrumented (term : (unit -> unit) Term.t) =
  let wrap metrics trace timeline run =
    Harness.set_outputs ~metrics ~trace ~timeline;
    (try run ()
     with Harness.Failed msg ->
       Harness.flush_outputs ();
       prerr_endline msg;
       exit 1);
    Harness.flush_outputs ()
  in
  Term.(const wrap $ metrics_arg $ trace_arg $ timeline_arg $ term)

let fig7_cmd =
  let run quick app () = Fig7.run ~quick ?app () in
  Cmd.v (Cmd.info "fig7" ~doc:"Fig. 7: application throughput vs threads")
    (instrumented Term.(const run $ quick_arg $ app_arg))

(* Validated at parse time (Arg.enum): an unknown backend is a usage
   error.  `sim` replays the figure on the deterministic simulator;
   `domains` reruns the execution-stage grid on real OCaml 5 domains
   (lib/par) with wall-clock timing. *)
let backend_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("domains", `Domains) ]) `Sim
    & info [ "backend" ]
        ~doc:
          "Execution backend: $(b,sim) (virtual time, replicated cluster) \
           or $(b,domains) (real OCaml 5 domains, execution stage only).")

let fig8a_cmd =
  let run quick backend () =
    match backend with
    | `Sim -> Fig8.run_a ~quick ()
    | `Domains -> Par_bench.run_a_domains ~quick ()
  in
  Cmd.v (Cmd.info "fig8a" ~doc:"Fig. 8a: lock granularity")
    (instrumented Term.(const run $ quick_arg $ backend_arg))

let fig8b_cmd =
  let run quick backend () =
    match backend with
    | `Sim -> Fig8.run_b ~quick ()
    | `Domains -> Par_bench.run_b_domains ~quick ()
  in
  Cmd.v (Cmd.info "fig8b" ~doc:"Fig. 8b: lock contention, native vs Rex")
    (instrumented Term.(const run $ quick_arg $ backend_arg))

let par_cmd =
  Cmd.v
    (Cmd.info "par"
       ~doc:
         "Execution stage on the real-parallel domains backend vs the \
          simulator: worker scaling, null-exec record overhead, lock \
          contention, pool utilization")
    (instrumented
       Term.(const (fun quick () -> Par_bench.run ~quick ()) $ quick_arg))

let fig9_cmd =
  Cmd.v (Cmd.info "fig9" ~doc:"Fig. 9: query semantics")
    (instrumented Term.(const (fun quick () -> Fig9.run ~quick ()) $ quick_arg))

let fig10_cmd =
  Cmd.v (Cmd.info "fig10" ~doc:"Fig. 10: failover timeline")
    (instrumented Term.(const (fun scale () -> Fig10.run ~scale ()) $ scale_arg))

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Table 1: primitives per app")
    (instrumented Term.(const (fun () () -> Table1.run ()) $ const ()))

let overhead_cmd =
  Cmd.v (Cmd.info "overhead" ~doc:"§6.3 overhead breakdown")
    (instrumented
       Term.(const (fun quick () -> Overhead.run ~quick ()) $ quick_arg))

(* Validated at parse time: an unknown section name is a usage error
   (non-zero exit) instead of silently running nothing. *)
let only_arg =
  let section = Arg.enum (List.map (fun s -> (s, s)) Ablate.section_names) in
  Arg.(
    value
    & opt (some section) None
    & info [ "only" ]
        ~doc:
          (Printf.sprintf "Run a single ablation section, one of %s."
             (String.concat ", " Ablate.section_names)))

let ablate_cmd =
  Cmd.v (Cmd.info "ablate" ~doc:"Design-choice ablations")
    (instrumented
       Term.(
         const (fun quick only () -> Ablate.run ~quick ?only ())
         $ quick_arg $ only_arg))

(* Shard-sweep values are validated at parse time too: a malformed or
   out-of-range count exits non-zero with usage. *)
let shard_list_conv =
  let parse s =
    let parts = String.split_on_char ',' s in
    let counts =
      List.filter_map
        (fun p ->
          match int_of_string_opt (String.trim p) with
          | Some v when v >= 1 && v <= 64 -> Some v
          | Some _ | None -> None)
        parts
    in
    if List.length counts = List.length parts && counts <> [] then Ok counts
    else
      Error
        (`Msg
           (Printf.sprintf
              "invalid shard sweep %S (expected comma-separated counts in \
               1..64, e.g. 1,2,4,8)"
              s))
  in
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
  in
  Arg.conv (parse, print)

let shards_arg =
  Arg.(
    value
    & opt shard_list_conv [ 1; 2; 4; 8 ]
    & info [ "shards" ] ~docv:"N,N,..."
        ~doc:"Shard counts to sweep (default 1,2,4,8).")

let shard_app_arg =
  Arg.(
    value
    & opt (enum (List.map (fun s -> (s, s)) Shard_bench.app_names)) "leveldb"
    & info [ "a"; "app" ]
        ~doc:
          (Printf.sprintf "Key/value application to shard, one of %s."
             (String.concat ", " Shard_bench.app_names)))

(* --check records every client call and asserts the resulting history
   is linearizable (lib/check), on top of the benchmark's own checks. *)
let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Record client histories and assert linearizability (lib/check).")

let shard_cmd =
  let run quick shards app check () =
    Shard_bench.run ~quick ~shards ~app ~check ()
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Scale-out: shard count x key skew sweep, plus shard failover")
    (instrumented
       Term.(const run $ quick_arg $ shards_arg $ shard_app_arg $ check_flag))

let ratio_list_conv =
  let parse s =
    let parts = String.split_on_char ',' s in
    let ratios =
      List.filter_map
        (fun p ->
          match float_of_string_opt (String.trim p) with
          | Some v when v >= 0. && v <= 1. -> Some v
          | Some _ | None -> None)
        parts
    in
    if List.length ratios = List.length parts && ratios <> [] then Ok ratios
    else
      Error
        (`Msg
           (Printf.sprintf
              "invalid read-ratio sweep %S (expected comma-separated ratios \
               in 0..1, e.g. 0.5,0.9,0.99)"
              s))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (String.concat "," (List.map string_of_float l))
  in
  Arg.conv (parse, print)

let read_ratio_arg =
  Arg.(
    value
    & opt (some ratio_list_conv) None
    & info [ "read-ratio" ] ~docv:"R,R,..."
        ~doc:
          "Replace the core-workload table with a read-ratio sweep that \
           routes reads through the lease/quorum fast path.")

let ycsb_cmd =
  Cmd.v (Cmd.info "ycsb" ~doc:"YCSB core workloads on the KV stores")
    (instrumented
       Term.(
         const (fun quick read_ratio () -> Ycsb.run ~quick ?read_ratio ())
         $ quick_arg $ read_ratio_arg))

let reads_cmd =
  Cmd.v
    (Cmd.info "reads"
       ~doc:
         "Read fast path (leader leases + quorum reads) vs the ordered \
          path: read ratio x stack on sim, execution-stage read mix on \
          domains")
    (instrumented
       Term.(
         const (fun quick backend () -> Reads_bench.run ~quick ~backend ())
         $ quick_arg $ backend_arg))

(* `--workers` / `--conflict-rate` follow the `--shards` convention:
   comma-separated sweeps, validated at parse time (malformed or
   out-of-range values exit non-zero with usage). *)
let workers_arg =
  Arg.(
    value
    & opt shard_list_conv [ 1; 2; 4; 8 ]
    & info [ "workers" ] ~docv:"N,N,..."
        ~doc:"Worker-pool sizes to sweep (default 1,2,4,8).")

let conflict_rate_arg =
  Arg.(
    value
    & opt ratio_list_conv [ 0.; 0.1; 0.5 ]
    & info [ "conflict-rate" ] ~docv:"R,R,..."
        ~doc:
          "Hot-key write fractions to sweep, each in 0..1 (default \
           0,0.1,0.5).")

let sched_cmd =
  let run quick backend workers conflict_rates () =
    Sched_bench.run ~quick ~backend ~workers ~conflict_rates ()
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "Conflict-aware parallel SMR (cbase DAG dispatch + early \
          scheduling) vs Rex trace-replay: conflict rate x workers x \
          stack on sim, execution stage on domains, plus a sharded \
          sched-per-group smoke")
    (instrumented
       Term.(
         const run $ quick_arg $ backend_arg $ workers_arg
         $ conflict_rate_arg))

let eve_cmd =
  Cmd.v
    (Cmd.info "eve" ~doc:"Rex vs execute-verify (Eve-style) comparison (§5)")
    (instrumented
       Term.(const (fun quick () -> Eve_bench.run ~quick ()) $ quick_arg))

let chain_cmd =
  Cmd.v (Cmd.info "chain" ~doc:"Paxos vs chain replication agree stage (§7)")
    (instrumented
       Term.(const (fun quick () -> Chain_bench.run ~quick ()) $ quick_arg))

let dedup_cmd =
  Cmd.v
    (Cmd.info "dedup"
       ~doc:
         "Exactly-once smoke: retried requests under faults on all three \
          stacks")
    (instrumented
       Term.(
         const (fun quick check () -> Dedup_smoke.run ~quick ~check ())
         $ quick_arg $ check_flag))

(* --- `liveops`: the control-plane timeline bench. ---

   Phase selectors follow the `--backend` convention: Arg.enum, so an
   unknown value is a usage error at parse time, as is a non-positive
   --bucket. *)

let off_on_arg name doc =
  Arg.(
    value
    & opt (enum [ ("off", false); ("on", true) ]) true
    & info [ name ] ~doc)

let reconfig_arg =
  Arg.(
    value
    & opt (enum [ ("off", false); ("replace", true) ]) true
    & info [ "reconfig" ]
        ~doc:
          "$(b,replace) one replica of group 0 through the replicated log, \
           or $(b,off).")

let split_arg =
  off_on_arg "split" "Live-split a third group off ($(b,on)/$(b,off))."

let merge_arg =
  off_on_arg "merge"
    "Merge the split group back out ($(b,on)/$(b,off)); requires --split on."

let upgrade_arg =
  Arg.(
    value
    & opt (enum [ ("off", false); ("rolling", true) ]) true
    & info [ "upgrade" ]
        ~doc:
          "$(b,rolling) restart of every active group's replicas, or \
           $(b,off).")

let bucket_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && Float.is_finite v -> Ok v
    | Some _ | None ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid bucket width %S (expected a positive number of \
               virtual seconds, e.g. 0.5)"
              s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let bucket_arg =
  Arg.(
    value
    & opt bucket_conv 1.0
    & info [ "bucket" ] ~docv:"SECONDS"
        ~doc:"Timeline window width in virtual seconds (default 1.0).")

let liveops_cmd =
  let run quick reconfig split merge upgrade bucket () =
    Liveops.run ~quick
      ~phases:{ Liveops.reconfig; split; merge; upgrade }
      ~bucket ()
  in
  Cmd.v
    (Cmd.info "liveops"
       ~doc:
         "Control-plane timeline: req/s over time while a fleet is \
          reconfigured, split, merged and upgraded under traffic, with \
          migration lag and failover info from the metrics registry")
    (instrumented
       Term.(
         const run $ quick_arg $ reconfig_arg $ split_arg $ merge_arg
         $ upgrade_arg $ bucket_arg))

(* --- `check`: the fault-schedule explorer + linearizability sweep. --- *)

let check_cmd =
  let stack_arg =
    Arg.(
      value & opt string "rex"
      & info [ "stack" ]
          ~doc:
            "Stack under test: rex, smr, eve, shard, cbase, early, or all.")
  in
  let capp_arg =
    Arg.(
      value & opt string "kv"
      & info [ "a"; "app" ] ~doc:"Application spec: kv, counter, or all.")
  in
  let nemesis_arg =
    Arg.(
      value & opt string "mixed"
      & info [ "nemesis" ]
          ~doc:
            "Fault profile: crash, partition, drop, skew, leader, lease, \
             mixed, reconfig, split, upgrade, or all.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~doc:"Number of seeded schedules per combination.")
  in
  let base_seed_arg =
    Arg.(
      value & opt int 1000
      & info [ "seed" ] ~doc:"First seed of the sweep (seeds are consecutive).")
  in
  let dedup_off_arg =
    Arg.(
      value & flag
      & info [ "dedup-off" ]
          ~doc:
            "Defeat request dedup in the client (retries mint fresh request \
             ids) and assert the checker catches the double executions.")
  in
  let repro_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-out" ] ~docv:"FILE"
          ~doc:"Write the minimal reproducer of the first failure to $(docv).")
  in
  let reads_arg =
    Arg.(
      value & flag
      & info [ "reads" ]
          ~doc:
            "Route read-only ops through the lease/quorum read fast path \
             (Client.query) instead of the ordered client path.")
  in
  let lease_unsafe_arg =
    Arg.(
      value & flag
      & info [ "lease-unsafe" ]
          ~doc:
            "Canary: disable lease fencing and inject a beyond-bound \
             stale-leader fault, asserting the checker flags the stale \
             reads.")
  in
  let open_loop_arg =
    Arg.(
      value & flag
      & info [ "open-loop" ]
          ~doc:
            "Run the open-loop load ramp instead of the fault explorer: \
             sampled windowed linearizability across every stack plus the \
             at-least-once canary the checker must flag.")
  in
  let run quick stack app nemesis seeds base_seed dedup_off reads lease_unsafe
      repro_out open_loop () =
    if open_loop then Load_bench.open_loop_check ~quick ()
    else
      Check_bench.run ~quick ~stack ~app ~nemesis ~seeds ~base_seed ~dedup_off
        ~reads ~lease_unsafe ?repro_out ()
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Fault-schedule explorer: seeded nemesis schedules + linearizability \
          checker over the recorded client histories")
    (instrumented
       Term.(
         const run $ quick_arg $ stack_arg $ capp_arg $ nemesis_arg $ seeds_arg
         $ base_seed_arg $ dedup_off_arg $ reads_arg $ lease_unsafe_arg
         $ repro_out_arg $ open_loop_arg))

(* --- `load`: the open-loop session-fleet engine + overload control. --- *)

let load_cmd =
  let lstack_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stack" ]
          ~doc:
            "Ramp only this stack (rex, smr, eve, cbase, early); default \
             runs all five plus the overload A/B, canary and domains smoke.")
  in
  let lcheck_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Record every op into the bounded-memory sampled checker and \
             assert windowed linearizability per stack.")
  in
  let run quick check stack () = Load_bench.run ~quick ~check ?stack () in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop load: 10^5-session fleet, Poisson/burst/ramp arrivals, \
          frontend admission control, sampled linearizability under way")
    (instrumented Term.(const run $ quick_arg $ lcheck_arg $ lstack_arg))

let bechamel_cmd =
  Cmd.v (Cmd.info "bechamel" ~doc:"Wall-clock micro-benchmarks")
    Term.(const Bechamel_suite.run $ const ())

let all ~quick () =
  Table1.run ();
  Fig7.run ~quick ();
  Fig8.run_a ~quick ();
  Fig8.run_b ~quick ();
  Fig9.run ~quick ();
  Fig10.run ~scale:(if quick then 0.05 else 0.1) ();
  Overhead.run ~quick ();
  Ablate.run ~quick ();
  Eve_bench.run ~quick ();
  Ycsb.run ~quick ();
  Chain_bench.run ~quick ();
  Shard_bench.run ~quick ();
  Dedup_smoke.run ~quick ();
  Liveops.run ~quick ();
  Par_bench.run ~quick ();
  Sched_bench.run ~quick ();
  Load_bench.run ~quick ();
  Bechamel_suite.run ()

let all_term = instrumented Term.(const (fun quick () -> all ~quick ()) $ quick_arg)

let all_cmd = Cmd.v (Cmd.info "all" ~doc:"Every table and figure") all_term

let default = all_term

let () =
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "rex-bench" ~version:"1.0"
             ~doc:"Regenerate the tables and figures of the Rex paper")
          [
            fig7_cmd;
            fig8a_cmd;
            fig8b_cmd;
            fig9_cmd;
            fig10_cmd;
            table1_cmd;
            overhead_cmd;
            ablate_cmd;
            eve_cmd;
            ycsb_cmd;
            reads_cmd;
            chain_cmd;
            shard_cmd;
            dedup_cmd;
            liveops_cmd;
            check_cmd;
            par_cmd;
            sched_cmd;
            load_cmd;
            bechamel_cmd;
            all_cmd;
          ]))
