(* Shared benchmark machinery: run one experiment point in one of three
   modes (native single machine, Rex replication, standard RSM) and
   measure steady-state throughput over a request-count window, plus the
   paper's auxiliary metrics (waited events, trace bytes, edge counts). *)

open Sim
module R = Rex_core

exception Failed of string
(* A smoke assertion inside a bench failed.  Raised (not [exit 1]) so the
   same assertions run under `dune runtest` as tier-1 tests; the CLI
   entry point catches it and exits non-zero. *)

let fail fmt = Printf.ksprintf (fun s -> raise (Failed s)) fmt

type mode = Native | Rex | Rsm

let mode_name = function Native -> "native" | Rex -> "Rex" | Rsm -> "RSM"

(* --- Metrics / trace export sinks (--metrics-out / --trace-out) ---

   Every run_* call builds a fresh Engine, so the registry is per-run;
   we snapshot each run's metrics into a JSON document and write them
   all out as one array when the subcommand finishes.  The trace file
   holds the span stream of the most recent traced run (a whole
   subcommand's worth of runs in one Chrome timeline would overlap). *)

let metrics_path : string option ref = ref None
let trace_path : string option ref = ref None
let timeline_path : string option ref = ref None
let run_docs : string list ref = ref []
let last_trace : Obs.Span.collector option ref = ref None

(* Like the trace sink, the timeline CSV holds the most recent run that
   armed one: each run_* (and the liveops bench) calls [arm_timeline]
   and records completions into the handle it gets back. *)
let timeline_sink : Obs.Timeline.t option ref = ref None

let set_outputs ~metrics ~trace ~timeline =
  metrics_path := metrics;
  trace_path := trace;
  timeline_path := timeline;
  run_docs := [];
  last_trace := None;
  timeline_sink := None

let tracing_requested () = !trace_path <> None

let arm_timeline ?bucket () =
  match !timeline_path with
  | None -> None
  | Some _ ->
    let tl = Obs.Timeline.create ?bucket () in
    timeline_sink := Some tl;
    Some tl

let tl_record tl ?latency now =
  Option.iter (fun tl -> Obs.Timeline.record tl ?latency now) tl

(* Enable span collection on a fresh engine when --trace-out was given. *)
let arm_tracing eng =
  if tracing_requested () then Obs.enable_tracing (Engine.obs eng) true

(* Generalized over (obs, time) so the domains backend — which has no
   engine, only a wall clock — can export runs through the same sink. *)
let note_run_obs ~label ~time obs =
  if !metrics_path <> None then
    run_docs :=
      Printf.sprintf "{\"run\":%S,\"time\":%.9g,\"metrics\":%s}" label time
        (Obs.Export.metrics_json (Obs.registry obs))
      :: !run_docs;
  if Obs.tracing obs && Obs.Span.length (Obs.spans obs) > 0 then
    last_trace := Some (Obs.spans obs)

let note_run ~label eng =
  note_run_obs ~label ~time:(Engine.clock eng) (Engine.obs eng)

let flush_outputs () =
  (match !metrics_path with
  | None -> ()
  | Some path ->
    Obs.Export.to_file ~path
      ("[\n" ^ String.concat ",\n" (List.rev !run_docs) ^ "\n]\n"));
  (match (!trace_path, !last_trace) with
  | Some path, Some col ->
    Obs.Export.to_file ~path (Obs.Export.chrome_trace col)
  | Some path, None ->
    (* No traced run happened: still emit a valid (empty) trace file. *)
    Obs.Export.to_file ~path "{\"traceEvents\":[]}\n"
  | None, _ -> ());
  match !timeline_path with
  | None -> ()
  | Some path ->
    (* Header-only when no run recorded samples: still a valid CSV. *)
    let body =
      match !timeline_sink with
      | Some tl -> Obs.Timeline.to_csv tl
      | None -> Obs.Timeline.csv_header ^ "\n"
    in
    Obs.Export.to_file ~path body

type result = {
  mode : mode;
  threads : int;
  throughput : float;  (* requests committed (or executed) per second *)
  waited_per_sec : float;  (* secondary replay waits per second (Fig. 7) *)
  events_per_req : float;  (* recorded sync events per request *)
  edges_per_req : float;
  reduced_fraction : float;  (* edges removed by §4.2 reduction *)
  trace_bytes_per_req : float;  (* consensus payload per request *)
  request_bytes_per_req : float;  (* client payload inside those bytes *)
  mean_latency : float;  (* submit -> committed reply, seconds *)
  p99_latency : float;
  resident_events : int;  (* events held in the primary's trace at the end *)
  resident_edges : int;
  compactions : int;  (* times the primary's trace was compacted *)
}

let zero_result mode threads =
  {
    mode;
    threads;
    throughput = 0.;
    waited_per_sec = 0.;
    events_per_req = 0.;
    edges_per_req = 0.;
    reduced_fraction = 0.;
    trace_bytes_per_req = 0.;
    request_bytes_per_req = 0.;
    mean_latency = 0.;
    p99_latency = 0.;
    resident_events = 0;
    resident_edges = 0;
    compactions = 0;
  }

(* Pump the engine until [done_p] or the wall-deadline; returns false on
   timeout. *)
let pump eng ~done_p ~virtual_deadline =
  let rec go () =
    Engine.run ~until:(Engine.clock eng +. 0.2) eng;
    if done_p () then true
    else if Engine.clock eng > virtual_deadline then false
    else go ()
  in
  go ()

(* --- Native: the unreplicated multi-threaded application. --- *)

let run_native ?(seed = 42) ~cores ~threads ~factory ~gen ~warmup ~measure () =
  let eng = Engine.create ~seed ~cores_per_node:cores ~num_nodes:1 () in
  arm_tracing eng;
  let tl = arm_timeline () in
  let rt = Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let api = R.Api.make rt in
  let app : R.App.t = factory api in
  let timers = R.Api.seal api in
  List.iter
    (fun (spec : R.Api.timer_spec) ->
      ignore
        (Engine.spawn eng ~node:0 ~name:spec.t_name (fun () ->
             while true do
               Engine.sleep spec.t_interval;
               spec.t_callback ()
             done)))
    timers;
  let total = warmup + measure in
  let completed = ref 0 in
  let t_warm = ref 0. and t_end = ref 0. in
  let note_completion () =
    incr completed;
    tl_record tl (Engine.now ());
    if !completed = warmup then t_warm := Engine.now ();
    if !completed = total then t_end := Engine.now ()
  in
  let stop = ref false in
  for w = 0 to threads - 1 do
    ignore
      (Engine.spawn eng ~node:0
         ~name:(Printf.sprintf "native-worker%d" w)
         (fun () ->
           let rng = Rng.create (seed + (w * 7919)) in
           while not !stop do
             ignore (app.R.App.execute ~request:(gen rng));
             note_completion ()
           done))
  done;
  let ok = pump eng ~done_p:(fun () -> !completed >= total) ~virtual_deadline:3600. in
  stop := true;
  note_run ~label:(Printf.sprintf "native-t%d" threads) eng;
  if not ok then zero_result Native threads
  else
    {
      (zero_result Native threads) with
      throughput = float_of_int measure /. (!t_end -. !t_warm);
    }

(* --- Rex: 3-replica cluster, measuring committed replies. --- *)

let rex_config ?checkpoint_interval ?reduce_edges ?partial_order ?flow_window
    ~threads () =
  R.Cluster.config ~workers:threads ~propose_interval:2e-4
    ?checkpoint_interval ?reduce_edges ?partial_order ?flow_window ()

let run_rex ?(seed = 42) ?(cores = 16) ?net_latency ?(min_window = 0.)
    ?agreement ?config ~threads ~factory ~gen ~warmup ~measure () =
  let cfg =
    match config with Some c -> c | None -> rex_config ~threads ()
  in
  let cluster =
    R.Cluster.launch ~seed ~cores_per_node:cores ?net_latency ?agreement
      ~before_start:(fun c -> arm_tracing (R.Cluster.engine c))
      cfg factory
  in
  let eng = R.Cluster.engine cluster in
  let tl = arm_timeline () in
  let primary = R.Cluster.await_primary cluster in
  let secondary =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find (fun s -> R.Server.node s <> R.Server.node primary)
  in
  let total = warmup + measure in
  let completed = ref 0 in
  let t_warm = ref 0. and t_end = ref 0. in
  let warm_sec_stats = ref (R.Server.runtime_stats secondary) in
  let warm_primary_stats = ref (R.Server.stats primary) in
  let warm_primary_rt = ref (R.Server.runtime_stats primary) in
  let launched = ref 0 in
  let rng = Rng.create (seed + 17) in
  (* Open-loop-ish driving: keep enough requests outstanding that the
     commit latency never starves the workers (the paper uses "enough
     clients submitting requests so that the machines are fully
     loaded"). *)
  let window = max 512 (64 * threads) in
  (* With a minimum time window the driver must keep the pipeline full
     past [total]. *)
  let launch_cap = if min_window > 0. then max_int else total + window in
  let latencies = ref [] in
  let rec submit_one () =
    if !launched < launch_cap then begin
      incr launched;
      let submitted_at = Engine.clock eng in
      R.Server.submit primary (gen rng) (fun _ ->
          incr completed;
          tl_record tl
            ~latency:(Engine.clock eng -. submitted_at)
            (Engine.clock eng);
          if !completed > warmup && !completed <= total then
            latencies := (Engine.clock eng -. submitted_at) :: !latencies;
          if !completed = warmup then begin
            t_warm := Engine.clock eng;
            warm_sec_stats := R.Server.runtime_stats secondary;
            warm_primary_stats := R.Server.stats primary;
            warm_primary_rt := R.Server.runtime_stats primary
          end;
          if !completed = total then t_end := Engine.clock eng;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to window do
           submit_one ()
         done));
  (* Replies release in per-commit batches; when they are coarser than the
     request-count window, measure over a fixed time window instead. *)
  let ok, dt, windowed_replies =
    if min_window > 0. then begin
      let ok =
        pump eng ~done_p:(fun () -> !completed >= warmup) ~virtual_deadline:3600.
      in
      if not ok then (false, 0., 0)
      else begin
        let t0 = Engine.clock eng in
        let r0 = (R.Server.stats primary).R.Server.replies_sent in
        warm_sec_stats := R.Server.runtime_stats secondary;
        warm_primary_stats := R.Server.stats primary;
        warm_primary_rt := R.Server.runtime_stats primary;
        t_warm := t0;
        Engine.run ~until:(t0 +. min_window) eng;
        let dt = Engine.clock eng -. t0 in
        (dt > 0., dt, (R.Server.stats primary).R.Server.replies_sent - r0)
      end
    end
    else begin
      let ok =
        pump eng ~done_p:(fun () -> !completed >= total) ~virtual_deadline:3600.
      in
      (ok, !t_end -. !t_warm, 0)
    end
  in
  note_run ~label:(Printf.sprintf "rex-t%d" threads) eng;
  if not ok then zero_result Rex threads
  else begin
    let sec_stats = R.Server.runtime_stats secondary in
    let pri_stats = R.Server.stats primary in
    let pri_rt = R.Server.runtime_stats primary in
    let d_waited =
      sec_stats.Rexsync.Runtime.waited_events
      - !warm_sec_stats.Rexsync.Runtime.waited_events
    in
    let d_replies =
      pri_stats.R.Server.replies_sent - !warm_primary_stats.R.Server.replies_sent
    in
    let d_bytes =
      pri_stats.R.Server.proposal_bytes
      - !warm_primary_stats.R.Server.proposal_bytes
    in
    let d_req_bytes =
      pri_stats.R.Server.request_payload_bytes
      - !warm_primary_stats.R.Server.request_payload_bytes
    in
    let per_req n = float_of_int n /. float_of_int (max 1 d_replies) in
    let d_events =
      pri_rt.Rexsync.Runtime.events_recorded
      - !warm_primary_rt.Rexsync.Runtime.events_recorded
    in
    let d_edges =
      pri_rt.Rexsync.Runtime.edges_recorded
      - !warm_primary_rt.Rexsync.Runtime.edges_recorded
    in
    let d_reduced =
      pri_rt.Rexsync.Runtime.edges_reduced
      - !warm_primary_rt.Rexsync.Runtime.edges_reduced
    in
    let reduced =
      if d_edges + d_reduced = 0 then 0.
      else float_of_int d_reduced /. float_of_int (d_edges + d_reduced)
    in
    let lat = Array.of_list !latencies in
    Array.sort compare lat;
    let mean_latency =
      if Array.length lat = 0 then 0.
      else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
    in
    let p99_latency =
      if Array.length lat = 0 then 0.
      else lat.(min (Array.length lat - 1) (Array.length lat * 99 / 100))
    in
    let primary_trace = Rexsync.Runtime.trace (R.Server.runtime primary) in
    {
      mode = Rex;
      threads;
      throughput =
        (if min_window > 0. then float_of_int windowed_replies /. dt
         else float_of_int measure /. dt);
      mean_latency;
      p99_latency;
      resident_events = Trace.event_count primary_trace;
      resident_edges = Trace.edge_count primary_trace;
      compactions = Trace.compactions primary_trace;
      waited_per_sec = float_of_int d_waited /. dt;
      events_per_req = per_req d_events;
      edges_per_req = per_req d_edges;
      reduced_fraction = reduced;
      trace_bytes_per_req = per_req d_bytes;
      request_bytes_per_req = per_req d_req_bytes;
    }
  end

(* --- RSM: same Paxos, sequential execution. --- *)

let run_rsm ?(seed = 42) ?(cores = 16) ~factory ~gen ~warmup ~measure () =
  let eng = Engine.create ~seed ~cores_per_node:cores ~num_nodes:4 () in
  arm_tracing eng;
  let tl = arm_timeline () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = R.Config.make ~propose_interval:2e-4 ~replicas:[ 0; 1; 2 ] () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc cfg ~node:i ~paxos_store:stores.(i) factory)
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  let primary =
    match Array.find_opt Smr.is_primary servers with
    | Some s -> s
    | None ->
      Engine.run ~until:5.0 eng;
      Option.get (Array.find_opt Smr.is_primary servers)
  in
  let total = warmup + measure in
  let completed = ref 0 in
  let t_warm = ref 0. and t_end = ref 0. in
  let launched = ref 0 in
  let rng = Rng.create (seed + 17) in
  let rec submit_one () =
    if !launched < total + 512 then begin
      incr launched;
      Smr.submit primary (gen rng) (fun _ ->
          incr completed;
          tl_record tl (Engine.clock eng);
          if !completed = warmup then t_warm := Engine.clock eng;
          if !completed = total then t_end := Engine.clock eng;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(Smr.node primary) (fun () ->
         for _ = 1 to 512 do
           submit_one ()
         done));
  let ok = pump eng ~done_p:(fun () -> !completed >= total) ~virtual_deadline:3600. in
  note_run ~label:"rsm" eng;
  if not ok then zero_result Rsm 1
  else
    {
      (zero_result Rsm 1) with
      throughput = float_of_int measure /. (!t_end -. !t_warm);
    }

(* --- Pretty-printing helpers --- *)

let print_header title columns =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (String.concat "\t" columns)

let fmt_rate r = Printf.sprintf "%.0f" r
