(* Wall-clock micro-benchmarks (Bechamel): the constant factors of this
   OCaml implementation — one Test.make per core operation underlying the
   paper's tables and figures (trace recording for Fig. 7's record
   overhead, delta codec for the §6.3 byte counts, scoreboard and vclock
   ops for replay cost, Paxos message codec for the agree stage).

   The trace-size series (1k/10k/100k) document the bounded-memory
   claims: window extraction via a cursor and the steady-state
   propose+compact cycle must not scale with accumulated history. *)

open Bechamel
open Toolkit

let mk_event slot clock : Event.t =
  {
    id = { slot; clock };
    kind = Event.Acquire;
    resource = 42;
    version = clock;
    payload = "";
  }

(* Round-robin events over 4 slots, one cross-slot edge per round. *)
let build_trace n_events =
  let t = Trace.create ~slots:4 () in
  for c = 1 to n_events / 4 do
    for s = 0 to 3 do
      Trace.append t (mk_event s c)
    done;
    if c > 1 then
      Trace.add_edge t ~src:{ slot = 0; clock = c - 1 } ~dst:{ slot = 1; clock = c }
  done;
  t

let sizes = [ 1_000; 10_000; 100_000 ]

let test_event_encode =
  Test.make ~name:"event encode (16B target)"
    (Staged.stage (fun () ->
         let b = Codec.sink ~initial_capacity:32 () in
         Event.write b (mk_event 3 123456)))

let encoded_event =
  let b = Codec.sink () in
  Event.write b (mk_event 3 123456);
  Codec.contents b

let test_event_decode =
  Test.make ~name:"event decode"
    (Staged.stage (fun () -> ignore (Event.read (Codec.source encoded_event))))

let test_trace_append =
  Test.make ~name:"trace append 1k events + edges"
    (Staged.stage (fun () -> ignore (build_trace 1_000)))

let big_trace = build_trace 1_000

let test_delta_roundtrip =
  Test.make ~name:"delta extract+encode+decode (1k events)"
    (Staged.stage (fun () ->
         let d = Trace.Delta.extract big_trace ~base:(Trace.Cut.zero ~slots:4) in
         let b = Codec.sink () in
         Trace.Delta.write b d;
         ignore (Trace.Delta.read (Codec.source (Codec.contents b)))))

let test_vclock =
  Test.make ~name:"vclock join+dominates (32 slots)"
    (Staged.stage
       (let a = Vclock.create ~slots:32 and b = Vclock.create ~slots:32 in
        fun () ->
          Vclock.join a b;
          ignore (Vclock.dominates a { slot = 7; clock = 3 })))

let test_paxos_msg =
  Test.make ~name:"paxos accept encode+decode"
    (Staged.stage (fun () ->
         let m =
           Paxos.Msg.Accept
             {
               ballot = { round = 7; replica = 2 };
               instance = 123456;
               value = String.make 256 'x';
               prior = [];
             }
         in
         ignore (Paxos.Msg.decode (Paxos.Msg.encode m))))

(* --- Trace-size series --- *)

let tests_last_consistent =
  List.map
    (fun n ->
      let t = build_trace n in
      Test.make
        ~name:(Printf.sprintf "last_consistent cut (%dk events)" (n / 1000))
        (Staged.stage (fun () ->
             ignore (Trace.last_consistent t (Trace.end_cut t)))))
    sizes

(* Extract a 100-event tail window from traces of increasing history:
   the per-call binary search is the only history-dependent part. *)
let window = 100

let tail_base t =
  let e = Trace.Cut.to_array (Trace.end_cut t) in
  Trace.Cut.of_array (Array.map (fun w -> max 0 (w - (window / 4))) e)

let tests_extract_tail =
  List.map
    (fun n ->
      let t = build_trace n in
      let base = tail_base t in
      Test.make
        ~name:
          (Printf.sprintf "delta extract %d-event tail of %dk" window
             (n / 1000))
        (Staged.stage (fun () -> ignore (Trace.Delta.extract t ~base))))
    sizes

(* Apply the same tail window onto a fresh checkpoint-based receiver:
   the replica-side cost of one committed delta. *)
let tests_apply_window =
  List.map
    (fun n ->
      let t = build_trace n in
      let base = tail_base t in
      let d = Trace.Delta.extract t ~base in
      Test.make
        ~name:
          (Printf.sprintf "delta apply %d-event window (from %dk)" window
             (n / 1000))
        (Staged.stage (fun () ->
             let recv = Trace.create ~base ~slots:4 () in
             match Trace.Delta.apply recv d with
             | Ok () -> ()
             | Error msg -> failwith msg)))
    sizes

(* The primary's steady-state cycle: append a window, extract it through
   the cursor, encode it, and compact behind the last "checkpoint".  The
   trace stays bounded, so ns/run measures the per-window cost the
   proposer actually pays — independent of how long the run has gone. *)
let test_steady_state =
  let t = build_trace 1_000 in
  let cursor = Trace.Delta.cursor t ~base:(Trace.end_cut t) in
  Test.make ~name:(Printf.sprintf "steady state: append %d + extract_next + compact" window)
    (Staged.stage (fun () ->
         let start = Trace.Cut.to_array (Trace.end_cut t) in
         for i = 1 to window / 4 do
           for s = 0 to 3 do
             Trace.append t (mk_event s (start.(s) + i))
           done;
           Trace.add_edge t
             ~src:{ slot = 0; clock = start.(0) + i }
             ~dst:{ slot = 1; clock = start.(1) + i }
         done;
         let d = Trace.Delta.extract_next t cursor in
         let b = Codec.counting_sink () in
         Trace.Delta.write b d;
         Trace.compact t ~upto:d.Trace.Delta.base))

(* --- Open-loop load engine series (EXPERIMENTS.md §14) --- *)

(* The timer-queue comparison behind the fleet-size claim: seed n timers
   spread over 10 s and drain them all.  ns/run divided by n is the
   per-event cost — flat for the hierarchical wheel (amortized O(1)),
   growing with log n (and a worse constant) for the binary heap.  One
   deterministic rng stream so both structures get identical times. *)
let wheel_sizes = [ 1_000; 10_000; 100_000; 1_000_000 ]

let timer_times n =
  let rng = Sim.Rng.create 7 in
  Array.init n (fun _ -> Sim.Rng.float rng 10.0)

let tests_wheel_drain =
  List.map
    (fun n ->
      let times = timer_times n in
      Test.make
        ~name:(Printf.sprintf "wheel add+drain %dk timers" (n / 1000))
        (Staged.stage (fun () ->
             let w = Load.Wheel.create ~now:0. () in
             Array.iter (fun at -> Load.Wheel.add w ~at ()) times;
             let fired = ref 0 in
             for tick = 1 to 100 do
               fired :=
                 !fired
                 + Load.Wheel.pop_until w
                     ~now:(0.1 *. float_of_int tick)
                     (fun _ () -> ())
             done;
             assert (!fired = n))))
    wheel_sizes

let tests_pqueue_drain =
  List.map
    (fun n ->
      let times = timer_times n in
      Test.make
        ~name:(Printf.sprintf "pqueue add+drain %dk timers" (n / 1000))
        (Staged.stage (fun () ->
             let q = Sim.Pqueue.create () in
             Array.iter (fun at -> Sim.Pqueue.add q ~priority:at ()) times;
             let fired = ref 0 in
             while Sim.Pqueue.pop q <> None do incr fired done;
             assert (!fired = n))))
    wheel_sizes

(* The zipf CDF-rebuild fix: [create] memoizes the table per (n, theta),
   [create_uncached] is the old behavior — the per-instantiation cost the
   load engine used to pay on every generator. *)
let zipf_n = 100_000

let test_zipf_create_cached =
  ignore (Workload.Zipf.create ~n:zipf_n ~theta:0.99);
  Test.make ~name:"zipf create 100k ranks (cached)"
    (Staged.stage (fun () ->
         ignore (Workload.Zipf.create ~n:zipf_n ~theta:0.99)))

let test_zipf_create_uncached =
  Test.make ~name:"zipf create 100k ranks (uncached)"
    (Staged.stage (fun () ->
         ignore (Workload.Zipf.create_uncached ~n:zipf_n ~theta:0.99)))

let test_zipf_sample =
  let z = Workload.Zipf.create ~n:zipf_n ~theta:0.99 in
  let rng = Sim.Rng.create 11 in
  Test.make ~name:"zipf sample (100k ranks)"
    (Staged.stage (fun () -> ignore (Workload.Zipf.sample z rng)))

let tests =
  [
    test_event_encode;
    test_event_decode;
    test_trace_append;
    test_delta_roundtrip;
    test_vclock;
    test_paxos_msg;
  ]
  @ tests_last_consistent @ tests_extract_tail @ tests_apply_window
  @ [ test_steady_state ] @ tests_wheel_drain @ tests_pqueue_drain
  @ [ test_zipf_create_cached; test_zipf_create_uncached; test_zipf_sample ]

let run () =
  Printf.printf "\n== Bechamel wall-clock micro-benchmarks ==\n%!";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-45s (no estimate)\n%!" name)
        stats)
    tests
