(* `sched`: the conflict-aware parallel SMR stacks (lib/sched) measured
   against Rex's trace-replay on identical request mixes.

   Sim sweep (replicated, virtual time): a kv workload with a tunable
   conflict rate — fraction of writes hitting one shared hot key, the
   rest hitting per-request unique keys, plus a thin MGET slice that
   spans two keys (multi-class requests: DAG fan-in for cbase, worker
   rendezvous for early) — runs closed-loop against three-replica
   cbase, early and Rex clusters built from the same seed and paced by
   the same propose interval.  Every point cross-checks replica
   convergence, and the final kv digests must agree across all three
   stacks (same log prefix, conflict-equivalent execution).  The smoke
   assertion is the ISSUE's acceptance bar: on the zero-conflict mix,
   cbase — which skips all record/replay work — must not lose to Rex.

   Domains sweep (execution stage, wall clock): the same mix feeds
   Sched.Exec directly on real OCaml 5 domains, mode x workers x
   conflict rate, with the final state digest checked against a serial
   replay.

   Sharded smoke: a 2-group fleet wired by hand — group 0 runs cbase,
   group 1 early — behind Shard.Router; writes and lease reads route by
   key, groups must converge internally. *)

open Sim
module R = Rex_core

(* --- workload ---------------------------------------------------- *)

let mget_slice = 0.05

let gen rng ~conflict_rate i =
  let r = Rng.float rng 1.0 in
  if r < conflict_rate then Printf.sprintf "SET hot v%d" i
  else if r < conflict_rate +. mget_slice && i > 0 then
    Printf.sprintf "MGET u%d u%d" (Rng.int rng i) (Rng.int rng i)
  else Printf.sprintf "SET u%d v%d" i i

(* --- sim: replicated closed-loop throughput ----------------------- *)

(* The propose interval is dropped well below the 1 ms default so the
   sweep measures the execution stage, not the batcher's pacing: at
   1 ms a 64-request batch caps every stack at the same agreement rate
   and the worker axis goes flat. *)
let propose_interval = 1e-4
let outstanding = 512

type rrun = {
  eng : Engine.t;
  submit : string -> (string option -> unit) -> unit;
  digests : unit -> string list;
  extras : unit -> string;
}

let make_sched ~seed ~mode ~workers () =
  let eng = Engine.create ~seed ~cores_per_node:16 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg =
    R.Config.make ~workers ~propose_interval ~replicas:[ 0; 1; 2 ] ()
  in
  let servers =
    Array.init 3 (fun i ->
        Sched.Server.create net rpc cfg ~node:i
          ~paxos_store:(Paxos.Store.create ()) ~mode
          ~conflict:Sched.Conflict.kv
          (Apps.Kyoto.factory ()))
  in
  Array.iter Sched.Server.start servers;
  Engine.run ~until:1.0 eng;
  let primary =
    match Array.find_opt Sched.Server.is_primary servers with
    | Some p -> p
    | None ->
      Engine.run ~until:5.0 eng;
      Option.get (Array.find_opt Sched.Server.is_primary servers)
  in
  {
    eng;
    submit = Sched.Server.submit primary;
    digests =
      (fun () ->
        Array.to_list servers |> List.map Sched.Server.app_digest);
    extras =
      (fun () ->
        let s = (Sched.Server.stats primary).Sched.Server.exec in
        Printf.sprintf "graph<=%d ready<=%d stalls=%d" s.Sched.Exec.graph_max
          s.Sched.Exec.ready_max s.Sched.Exec.barrier_stalls);
  }

let make_rex ~seed ~workers () =
  let ccfg = R.Cluster.config ~workers ~propose_interval () in
  let cluster =
    R.Cluster.create ~seed ~cores_per_node:16 ccfg (Apps.Kyoto.factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  {
    eng = R.Cluster.engine cluster;
    submit = R.Server.submit primary;
    digests =
      (fun () ->
        R.Cluster.servers cluster |> Array.to_list
        |> List.map R.Server.app_digest);
    extras = (fun () -> "");
  }

(* Drive [warmup + measure] requests closed-loop (256 outstanding) and
   report the measure window's throughput in requests per virtual
   second; then let the followers drain and return the converged
   digest. *)
let closed_loop run ~seed ~conflict_rate ~warmup ~measure ~label =
  let eng = run.eng in
  let total = warmup + measure in
  let completed = ref 0 and failed = ref 0 and launched = ref 0 in
  let t_warm = ref 0. and t_end = ref 0. in
  let rng = Rng.create (seed + 17) in
  let rec submit_one () =
    if !launched < total + outstanding then begin
      let i = !launched in
      incr launched;
      run.submit
        (gen rng ~conflict_rate i)
        (fun resp ->
          if resp = None then incr failed;
          incr completed;
          if !completed = warmup then t_warm := Engine.clock eng;
          if !completed = total then t_end := Engine.clock eng;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         for _ = 1 to outstanding do
           submit_one ()
         done));
  if
    not
      (Harness.pump eng ~done_p:(fun () -> !completed >= total)
         ~virtual_deadline:(Engine.clock eng +. 600.))
  then Harness.fail "sched %s: run did not finish" label;
  if !failed > 0 then
    Harness.fail "sched %s: %d submissions failed (leader lost?)" label
      !failed;
  (* Drain followers to the same log prefix before comparing digests. *)
  let digest = ref [] and deadline = Engine.clock eng +. 5. in
  let converged () =
    digest := run.digests ();
    match !digest with [] -> false | d :: rest -> List.for_all (( = ) d) rest
  in
  while (not (converged ())) && Engine.clock eng < deadline do
    Engine.run ~until:(Engine.clock eng +. 0.05) eng
  done;
  if not (converged ()) then
    Harness.fail "sched %s: replicas did not converge" label;
  Harness.note_run ~label eng;
  let throughput = float_of_int measure /. (!t_end -. !t_warm) in
  (throughput, List.hd !digest, run.extras ())

let sim_sweep ~quick ~workers_list ~rates () =
  let warmup = if quick then 100 else 300 in
  let measure = if quick then 400 else 1500 in
  let seed = 42 in
  Printf.printf
    "\n== sched (sim): conflict rate x workers x stack, kv closed-loop ==\n";
  Printf.printf
    "(3 replicas, kyoto, %d+%d reqs, %d outstanding, propose %gus; \
     req/virtual-second)\n"
    warmup measure outstanding (propose_interval *. 1e6);
  Printf.printf "conflict\tworkers\tcbase\tearly\trex\tcbase_extras\n%!";
  List.iter
    (fun conflict_rate ->
      List.iter
        (fun workers ->
          let point stack make =
            let label =
              Printf.sprintf "sched-sim-%s-c%g-w%d" stack conflict_rate
                workers
            in
            closed_loop (make ()) ~seed ~conflict_rate ~warmup ~measure
              ~label
          in
          let cb_tp, cb_dig, cb_x =
            point "cbase" (make_sched ~seed ~mode:Sched.Exec.Cbase ~workers)
          in
          let ea_tp, ea_dig, _ =
            point "early" (make_sched ~seed ~mode:Sched.Exec.Early ~workers)
          in
          let rx_tp, rx_dig, _ = point "rex" (make_rex ~seed ~workers) in
          (* Same seed => same request stream.  cbase and early both
             execute conflicting writes in log order, so their final
             states must match at every conflict rate.  Rex is
             execute-agree: the canonical order of hot-key writes is
             the primary's lock-acquisition order, not the log order,
             so its final hot value may legitimately differ — compare
             against Rex only on the commutative zero-conflict mix. *)
          if cb_dig <> ea_dig then
            Harness.fail
              "sched sim c=%g w=%d: cbase and early diverged (%s / %s)"
              conflict_rate workers cb_dig ea_dig;
          if conflict_rate = 0. && cb_dig <> rx_dig then
            Harness.fail
              "sched sim w=%d: sched stacks diverged from Rex on the \
               zero-conflict mix (%s / %s)"
              workers cb_dig rx_dig;
          if conflict_rate = 0. && cb_tp < 0.95 *. rx_tp then
            Harness.fail
              "sched sim w=%d: cbase (%.0f/s) lost to Rex (%.0f/s) on the \
               zero-conflict mix"
              workers cb_tp rx_tp;
          Printf.printf "%g\t%d\t%.0f\t%.0f\t%.0f\t%s\n%!" conflict_rate
            workers cb_tp ea_tp rx_tp cb_x)
        workers_list)
    rates

(* --- domains: execution stage on real cores ----------------------- *)

(* A sliced kv store over backend-native locks (unbound fibers take the
   native path), [op_cost] seconds of Engine.work per op — the app body
   both backends of the Exec digest tests share, here timed for real. *)
let domains_op_cost = 20e-6
let n_slices = 256

let make_kv backend =
  let rt = Rexsync.Runtime.create backend ~node:0 ~slots:1 in
  let locks =
    Array.init n_slices (fun i ->
        Rexsync.Lock.create rt (Printf.sprintf "slice%d" i))
  in
  let tables : (string, string) Hashtbl.t array =
    Array.init n_slices (fun _ -> Hashtbl.create 64)
  in
  let slice k = Hashtbl.hash k mod n_slices in
  let get k =
    let i = slice k in
    Rexsync.Lock.with_lock locks.(i) (fun () ->
        Engine.work domains_op_cost;
        Option.value (Hashtbl.find_opt tables.(i) k) ~default:"NOTFOUND")
  in
  let execute req =
    match Apps.Util.words req with
    | [ "SET"; k; v ] ->
      let i = slice k in
      Rexsync.Lock.with_lock locks.(i) (fun () ->
          Engine.work domains_op_cost;
          Hashtbl.replace tables.(i) k v);
      "OK"
    | [ "GET"; k ] -> get k
    | "MGET" :: keys -> String.concat "," (List.map get keys)
    | _ -> "ERR:bad-request"
  in
  let digest () =
    Array.to_list tables
    |> List.concat_map (fun t ->
           Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])
    |> List.sort compare |> Hashtbl.hash |> string_of_int
  in
  (execute, digest)

(* Serial replay of the same stream on plain state: the reference
   digest every parallel run must reproduce. *)
let serial_digest reqs =
  let t = Hashtbl.create 1024 in
  Array.iter
    (fun req ->
      match Apps.Util.words req with
      | [ "SET"; k; v ] -> Hashtbl.replace t k v
      | _ -> ())
    reqs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort compare |> Hashtbl.hash |> string_of_int

let domains_point ~seed ~mode ~workers ~conflict_rate ~ops ~label () =
  let cores = Domain.recommended_domain_count () in
  let d = Par.Domains.create ~seed ~domains:(min workers cores) () in
  let backend = Par.Domains.backend d in
  let execute, digest = make_kv backend in
  let exec =
    Sched.Exec.create backend ~node:0 ~mode ~workers
      ~conflict:Sched.Conflict.kv ~execute
  in
  let rng = Rng.create (seed + 17) in
  let reqs = Array.init ops (fun i -> gen rng ~conflict_rate i) in
  let t0 = Par.Domains.now d in
  Par.Domains.spawn d ~node:0 ~name:"sched.driver" (fun () ->
      Array.iter (fun req -> Sched.Exec.admit exec req ignore) reqs;
      Sched.Exec.drain exec;
      Sched.Exec.shutdown exec);
  Par.Domains.join d;
  let dt = Par.Domains.now d -. t0 in
  let stats = Sched.Exec.stats exec in
  Harness.note_run_obs ~label ~time:(Par.Domains.now d) (Par.Domains.obs d);
  Par.Domains.shutdown d;
  if stats.Sched.Exec.executed <> ops then
    Harness.fail "sched %s: executed %d of %d" label
      stats.Sched.Exec.executed ops;
  if digest () <> serial_digest reqs then
    Harness.fail "sched %s: parallel state diverged from serial replay"
      label;
  (float_of_int ops /. dt, stats)

let domains_sweep ~quick ~workers_list ~rates () =
  let cores = Domain.recommended_domain_count () in
  let ops = if quick then 600 else 2000 in
  Printf.printf
    "\n== sched (domains): execution stage on real cores, wall clock ==\n";
  Printf.printf
    "(machine: %d hw cores; %d ops, %.0f us/op; digest checked against \
     serial replay)\n"
    cores ops (domains_op_cost *. 1e6);
  Printf.printf "conflict\tworkers\tcbase\tearly\tstalls\tgraph<=\n%!";
  List.iter
    (fun conflict_rate ->
      List.iter
        (fun workers ->
          let cb_tp, cb_st =
            domains_point ~seed:42 ~mode:Sched.Exec.Cbase ~workers
              ~conflict_rate ~ops
              ~label:
                (Printf.sprintf "sched-dom-cbase-c%g-w%d" conflict_rate
                   workers)
              ()
          in
          let ea_tp, ea_st =
            domains_point ~seed:42 ~mode:Sched.Exec.Early ~workers
              ~conflict_rate ~ops
              ~label:
                (Printf.sprintf "sched-dom-early-c%g-w%d" conflict_rate
                   workers)
              ()
          in
          Printf.printf "%g\t%d\t%s\t%s\t%d\t%d\n%!" conflict_rate workers
            (Par_bench.fmt_units cb_tp) (Par_bench.fmt_units ea_tp)
            ea_st.Sched.Exec.barrier_stalls cb_st.Sched.Exec.graph_max)
        workers_list)
    rates

(* --- sharded fleet running a sched stack per group ----------------- *)

let sharded_smoke ~quick () =
  let seed = 42 in
  let n = if quick then 60 else 150 in
  Printf.printf
    "\n== sched (sharded): 2 groups behind Shard.Router — group 0 cbase, \
     group 1 early ==\n%!";
  let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:7 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let map = Shard.Shard_map.create ~groups:[ 0; 1 ] () in
  let groups = [ (0, [ 0; 1; 2 ]); (1, [ 3; 4; 5 ]) ] in
  let make_group (group, replicas) =
    let cfg = R.Config.make ~workers:4 ~replicas () in
    let mode =
      if group = 0 then Sched.Exec.Cbase else Sched.Exec.Early
    in
    Array.of_list
      (List.map
         (fun node ->
           Sched.Server.create net rpc cfg ~node
             ~paxos_store:(Paxos.Store.create ()) ~mode
             ~conflict:Sched.Conflict.kv
             (Shard.Partition.factory ~map ~group (Apps.Kyoto.factory ())))
         replicas)
  in
  let fleet = List.map (fun g -> (fst g, make_group g)) groups in
  List.iter (fun (_, servers) -> Array.iter Sched.Server.start servers) fleet;
  let leaders () =
    List.for_all
      (fun (_, servers) -> Array.exists Sched.Server.is_primary servers)
      fleet
  in
  Engine.run ~until:1.0 eng;
  if not (leaders ()) then Engine.run ~until:5.0 eng;
  if not (leaders ()) then Harness.fail "sched shard: no leaders elected";
  let router = Shard.Router.create net rpc ~me:6 ~map ~groups in
  let ok_writes = ref 0 and ok_reads = ref 0 and finished = ref false in
  ignore
    (Engine.spawn eng ~node:6 ~name:"sched.shard.client" (fun () ->
         for i = 0 to n - 1 do
           let key = Printf.sprintf "s%d" i in
           match
             Shard.Router.call router ~key
               (Printf.sprintf "SET %s v%d" key i)
           with
           | Some "OK" -> incr ok_writes
           | Some _ | None -> ()
         done;
         (* lease reads through the sched read path (parked behind any
            in-flight conflicting write) *)
         for i = 0 to (n / 4) - 1 do
           let key = Printf.sprintf "s%d" i in
           match
             Shard.Router.query router ~key (Printf.sprintf "GET %s" key)
           with
           | Some v when v = Printf.sprintf "v%d" i -> incr ok_reads
           | Some _ | None -> ()
         done;
         finished := true));
  if
    not
      (Harness.pump eng ~done_p:(fun () -> !finished)
         ~virtual_deadline:(Engine.clock eng +. 120.))
  then Harness.fail "sched shard: client did not finish";
  if !ok_writes <> n then
    Harness.fail "sched shard: %d of %d writes routed ok" !ok_writes n;
  if !ok_reads <> n / 4 then
    Harness.fail "sched shard: %d of %d lease reads returned the written \
                  value" !ok_reads (n / 4);
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  List.iter
    (fun (group, servers) ->
      let ds = Array.to_list servers |> List.map Sched.Server.app_digest in
      match ds with
      | d :: rest when List.for_all (( = ) d) rest -> ()
      | _ -> Harness.fail "sched shard: group %d replicas diverged" group)
    fleet;
  let st = Shard.Router.stats router in
  Harness.note_run ~label:"sched-shard" eng;
  Printf.printf
    "OK: %d writes + %d lease reads routed, groups converged (%d hops, %d \
     redirects, imbalance %.2f)\n%!"
    !ok_writes !ok_reads st.Shard.Router.hops st.Shard.Router.redirects
    (Shard.Router.imbalance router)

(* --- entry point --------------------------------------------------- *)

let default_workers = [ 1; 2; 4; 8 ]
let default_rates = [ 0.; 0.1; 0.5 ]

let run ?(quick = false) ?(backend = `Sim) ?(workers = default_workers)
    ?(conflict_rates = default_rates) () =
  match backend with
  | `Sim ->
    sim_sweep ~quick ~workers_list:workers ~rates:conflict_rates ();
    sharded_smoke ~quick ()
  | `Domains ->
    domains_sweep ~quick ~workers_list:workers ~rates:conflict_rates ()
