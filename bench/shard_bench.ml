(* Scale-out benchmark for the sharded fleet (lib/shard).

   Sweeps shard count x key skew over a key/value application: each
   point builds a fleet of independent 3-replica Rex groups behind the
   consistent-hash router and drives it closed-loop from a shared pool
   of client fibers.  Uniform keys should scale committed throughput
   near-linearly with shard count; a zipf hotspot collapses the load
   onto few shards and the imbalance column shows it.  A second section
   kills one shard's primary mid-run and prints a per-shard timeline:
   the victim shard dips through its leader election while the others
   are untouched (one virtual clock, so "untouched" is exact, not
   statistical).

   Exits non-zero if any shard commits nothing, so CI can run
   `shard --quick --shards 2` as a smoke test. *)

open Sim
module R = Rex_core
module Fleet = Shard.Fleet
module Router = Shard.Router
module Shard_map = Shard.Shard_map

let app_names = [ "leveldb"; "kyoto"; "memcache" ]

(* Raise per-op execution cost so that a single 8-worker group
   saturates at a few thousand req/s and the agreement stage is not the
   bottleneck — scaling the execute stage is the point of sharding. *)
let factory_of = function
  | "leveldb" -> fun () -> Apps.Leveldb.factory ~op_cost:1.5e-3 ()
  | "kyoto" -> fun () -> Apps.Kyoto.factory ~op_cost:1.5e-3 ()
  | "memcache" -> fun () -> Apps.Memcache.factory ~op_cost:1.5e-3 ()
  | other ->
    invalid_arg
      (Printf.sprintf "shard bench: unknown app %S (choose from %s)" other
         (String.concat ", " app_names))

let config ~group:_ ~replicas =
  R.Config.make ~workers:8 ~propose_interval:2e-4 ~replicas ()

(* The failover fleet checkpoints periodically so a restarted replica
   rejoins off a recent checkpoint instead of replaying the whole log
   (which would hold the shard in its flow-control stall for the rest
   of the timeline). *)
let failover_config ~group:_ ~replicas =
  R.Config.make ~workers:8 ~propose_interval:2e-4
    ~checkpoint_interval:(Some 0.4) ~replicas ()

let make_fleet ?(config = config) ~app ~shards ~seed () =
  let factory = factory_of app in
  let fleet =
    Fleet.create ~seed ~groups:shards ~config (fun ~map ~group ->
        Shard.Partition.factory ~map ~group (factory ()))
  in
  Harness.arm_tracing (Fleet.engine fleet);
  Fleet.start fleet;
  Fleet.await_primaries fleet;
  fleet

type point = {
  shards : int;
  throughput : float;
  imbalance : float;
  redirects : int;
  retries : int;
  dropped : int;
  per_shard : int array;  (* replies over the whole run *)
}

let run_point ~quick ~app ~shards ~theta ~seed ~check =
  let fleet = make_fleet ~app ~shards ~seed () in
  let eng = Fleet.engine fleet in
  let router = Fleet.router fleet in
  let history =
    if not check then None
    else begin
      let h = Check.History.create eng in
      Array.iter
        (fun c ->
          Array.iter
            (fun s -> Check.History.wire h [ R.Server.frontend s ])
            (R.Cluster.servers c))
        (Fleet.clusters fleet);
      Some h
    end
  in
  let gen = Workload.Mix.kv_keyed ~n_keys:20_000 ~read_ratio:0.5 ~theta () in
  let rng = Rng.create (seed + 17) in
  let n = (if quick then 1200 else 5000) * shards in
  let warmup = n / 5 in
  let completed = ref 0 and dropped = ref 0 and launched = ref 0 in
  let t_warm = ref 0. and t_end = ref 0. in
  let warm_hit = ref false in
  let note_done () =
    let fin = !completed + !dropped in
    if fin = warmup then begin
      t_warm := Engine.clock eng;
      warm_hit := true
    end;
    if fin = n then t_end := Engine.clock eng
  in
  (* One shared driver pool, large enough to keep 8 shards saturated;
     using the same pool size at every shard count keeps the offered
     load comparable across the sweep. *)
  for d = 0 to 127 do
    ignore
      (Engine.spawn eng ~node:(Fleet.client_node fleet)
         ~name:(Printf.sprintf "driver%d" d)
         (fun () ->
           while !launched < n do
             incr launched;
             let key, request = gen rng in
             let call () = Router.call router ~key request in
             let resp =
               match history with
               | None -> call ()
               | Some h ->
                 Check.History.record h ~client:d ~request call
             in
             (match resp with
             | Some _ -> incr completed
             | None -> incr dropped);
             note_done ()
           done))
  done;
  let deadline = Engine.clock eng +. 600. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed + !dropped < n && Engine.clock eng < deadline then pump ()
  in
  pump ();
  Harness.note_run
    ~label:(Printf.sprintf "shard-%s-s%d-z%.2f" app shards theta)
    eng;
  if !completed + !dropped < n || not !warm_hit then
    Harness.fail
      "FAIL: shard sweep point (%d shards, theta %.2f) timed out (%d/%d done)"
      shards theta (!completed + !dropped) n;
  let per_shard = Array.init shards (Fleet.replies fleet) in
  Array.iteri
    (fun g r ->
      if r = 0 then
        Harness.fail "FAIL: shard %d committed nothing (%d shards, theta %.2f)"
          g shards theta)
    per_shard;
  Fleet.run_for fleet 1.0;
  Fleet.check_no_divergence fleet;
  if not (Fleet.converged fleet) then
    Harness.fail "FAIL: a shard's replicas did not converge";
  Option.iter
    (fun h ->
      Check.History.resolve h;
      let res =
        Check.Lin.check Check.Spec.register (Check.History.entries h)
      in
      match res.Check.Lin.verdict with
      | Check.Lin.Linearizable ->
        Printf.printf "   check: %s\n%!"
          (Format.asprintf "%a" Check.Lin.pp_result res)
      | Check.Lin.Non_linearizable w ->
        Harness.fail "shard --check: history NOT linearizable: %s"
          (String.concat "; " w)
      | Check.Lin.Limit ->
        Harness.fail "shard --check: checker ran out of budget")
    history;
  let st = Router.stats router in
  {
    shards;
    throughput = float_of_int (n - warmup - !dropped) /. (!t_end -. !t_warm);
    imbalance = Router.imbalance router;
    redirects = st.Router.redirects;
    retries = st.Router.retries;
    dropped = !dropped;
    per_shard;
  }

let print_sweep ~quick ~app ~shards ~theta ~seed ~check =
  Printf.printf "\n-- key skew: %s (zipf theta %.2f) --\n"
    (if theta = 0. then "uniform" else "hotspot")
    theta;
  Printf.printf
    "shards\tRex/s\tspeedup\timbalance\tredirects\tretries\tdropped\n%!";
  let base = ref None in
  List.iter
    (fun s ->
      let p = run_point ~quick ~app ~shards:s ~theta ~seed ~check in
      let speedup =
        match !base with
        | None ->
          base := Some p.throughput;
          1.0
        | Some b -> p.throughput /. b
      in
      Printf.printf "%d\t%.0f\t%.2fx\t%.2f\t%d\t%d\t%d\n%!" p.shards
        p.throughput speedup p.imbalance p.redirects p.retries p.dropped)
    shards

(* --- Failover timeline: kill one shard's primary, watch the rest. --- *)

let run_failover ~quick ~app ~shards ~seed =
  let bucket = 0.1 in
  let total = if quick then 2.4 else 4.0 in
  let kill_at = Float.round (0.4 *. total /. bucket) *. bucket in
  let restart_at = Float.round (0.7 *. total /. bucket) *. bucket in
  Printf.printf
    "\n== Failover: %d shards, kill shard 0's primary @%.1fs, restart @%.1fs \
     ==\n"
    shards kill_at restart_at;
  let fleet = make_fleet ~config:failover_config ~app ~shards ~seed () in
  let eng = Fleet.engine fleet in
  let router = Fleet.router fleet in
  let gen = Workload.Mix.kv_keyed ~n_keys:20_000 ~read_ratio:0.5 () in
  let rng = Rng.create (seed + 17) in
  let stop = ref false in
  (* Dedicated drivers per shard, each rejection-sampling keys that route
     to its group.  A shared pool would let requests stuck retrying
     against the electing shard starve the others of drivers — a client
     artifact that would mask the server-side isolation being measured. *)
  for d = 0 to (16 * shards) - 1 do
    let my_group = List.nth (Shard_map.groups (Fleet.map fleet)) (d mod shards) in
    ignore
      (Engine.spawn eng ~node:(Fleet.client_node fleet)
         ~name:(Printf.sprintf "driver%d" d)
         (fun () ->
           while not !stop do
             let key, request = gen rng in
             if Router.group_of router key = my_group then
               ignore (Router.call router ~key request)
           done))
  done;
  let t0 = Engine.clock eng in
  let prev = Array.init shards (Fleet.replies fleet) in
  let header =
    String.concat "\t"
      (List.init shards (fun g -> Printf.sprintf "shard%d(req/s)" g))
  in
  Printf.printf "t\t%s\tevent\n%!" header;
  let victim = ref None in
  let steps = int_of_float (Float.round (total /. bucket)) in
  let others_min = ref infinity in
  for step = 1 to steps do
    let t = float_of_int step *. bucket in
    (* Scripted chaos, between buckets so the timeline annotates it. *)
    if Float.abs (t -. bucket -. kill_at) < bucket /. 2. && !victim = None
    then victim := Fleet.crash_primary fleet 0;
    if Float.abs (t -. bucket -. restart_at) < bucket /. 2. then
      Option.iter (Fleet.restart fleet) !victim;
    Engine.run ~until:(t0 +. t) eng;
    let cells =
      List.init shards (fun g ->
          let now = Fleet.replies fleet g in
          let d = now - prev.(g) in
          prev.(g) <- now;
          let rate = float_of_int d /. bucket in
          (* Track the slowest non-victim shard during the outage. *)
          if g > 0 && t > kill_at +. bucket && t <= restart_at then
            others_min := Float.min !others_min rate;
          Printf.sprintf "%.0f" rate)
    in
    let annotate =
      if Float.abs (t -. bucket -. kill_at) < bucket /. 2. then
        "<- shard 0 primary killed"
      else if Float.abs (t -. bucket -. restart_at) < bucket /. 2. then
        "<- replica rejoins"
      else ""
    in
    Printf.printf "%.1f\t%s\t%s\n%!" t (String.concat "\t" cells) annotate
  done;
  stop := true;
  Fleet.run_for fleet 1.0;
  Harness.note_run ~label:(Printf.sprintf "shard-failover-%s" app) eng;
  Fleet.check_no_divergence fleet;
  let st = Router.stats router in
  Printf.printf
    "router during failover: %d requests, %d redirects, %d retries, %d \
     failures\n"
    st.Router.requests st.Router.redirects st.Router.retries st.Router.failures;
  if !others_min <= 0. then
    Harness.fail "FAIL: a surviving shard stalled while shard 0 was electing";
  Printf.printf
    "OK: surviving shards stayed above %.0f req/s through the outage\n%!"
    !others_min

let run ?(quick = false) ?(shards = [ 1; 2; 4; 8 ]) ?(app = "leveldb")
    ?(check = false) () =
  let seed = 7 in
  if check && app = "memcache" then
    Harness.fail
      "shard --check: memcache is not register-conformant (STORED/DELETED \
       responses, eviction) — use leveldb or kyoto";
  Printf.printf
    "\n== Shard scale-out: %s over %s shards, 3 replicas each, 128 closed-loop \
     clients ==\n"
    app
    (String.concat "/" (List.map string_of_int shards));
  if check then
    print_endline "   (--check: histories recorded, linearizability asserted)";
  List.iter (fun theta -> print_sweep ~quick ~app ~shards ~theta ~seed ~check)
    [ 0.0; 0.99 ];
  let max_shards = List.fold_left max 1 shards in
  if max_shards < 2 then
    Printf.printf "\n(failover timeline skipped: needs >= 2 shards)\n"
  else run_failover ~quick ~app ~shards:(min 4 max_shards) ~seed
