(* `bench reads`: the linearizable read fast path (leader leases +
   quorum reads) against the ordered read path, swept over read ratio x
   stack on the simulator, plus a domains-backend read mix for the
   execution stage.

   "ordered" routes every request — reads included — through the normal
   client path (consensus slot, commit, reply); "fast" routes reads
   through Client.query, which the frontend serves locally under a live
   lease, via a majority read-index round otherwise.  The obs counters
   under subsystem `frontend` break down which route each read took, so
   the table can prove the fast path actually ran (and the smoke
   assertion demands it beats ordered on a >=90%-read mix). *)

open Sim
module R = Rex_core

type point = {
  throughput : float;
  reads : int;
  fast_lease : int;
  fast_quorum : int;
  ordered_falls : int;
}

let n_keys = 16

let frontend_total obs ~nodes name =
  List.fold_left
    (fun acc n ->
      acc
      + Obs.Metric.value
          (Obs.counter obs ~subsystem:"frontend"
             ~labels:[ ("node", string_of_int n) ]
             name))
    0 nodes

(* Closed-loop clients on the client node: each op is one completed
   round trip (call for writes and ordered reads, query for fast
   reads).  The callbacks get the fiber's index so each fiber can own
   its client handle.  Returns once every client finished its ops. *)
let drive eng ~node ~clients ~ops ~ratio ~seed
    ~(read : int -> string -> unit) ~(write : int -> string -> unit) =
  let finished = ref 0 in
  let t_end = ref 0. in
  let t0 = Engine.clock eng in
  for c = 0 to clients - 1 do
    ignore
      (Engine.spawn eng ~node ~name:(Printf.sprintf "reads-client%d" c)
         (fun () ->
           let rng = Rng.create (seed + (c * 7919) + 1) in
           for i = 0 to ops - 1 do
             let key = Printf.sprintf "k%d" (Rng.int rng n_keys) in
             if Rng.float rng 1.0 < ratio then read c ("GET " ^ key)
             else write c (Printf.sprintf "SET %s v%d.%d" key c i)
           done;
           incr finished;
           (* dt is the last completion, not the pump's slice size *)
           if !finished = clients then t_end := Engine.clock eng))
  done;
  if
    not
      (Harness.pump eng
         ~done_p:(fun () -> !finished = clients)
         ~virtual_deadline:3600.)
  then Harness.fail "reads: run did not finish";
  !t_end -. t0

let mk_point obs ~nodes ~total ~dt ~reads =
  {
    throughput = float_of_int total /. dt;
    reads;
    fast_lease = frontend_total obs ~nodes "reads_fast_lease";
    fast_quorum = frontend_total obs ~nodes "reads_fast_quorum";
    ordered_falls = frontend_total obs ~nodes "reads_ordered_fallback";
  }

let rex_point ?(seed = 42) ~ratio ~fast ~clients ~ops () =
  let cfg = R.Cluster.config ~workers:4 ~propose_interval:2e-4 () in
  let cluster = R.Cluster.launch ~seed cfg (Apps.Kyoto.factory ()) in
  let eng = R.Cluster.engine cluster in
  let nodes = R.Cluster.replica_nodes cluster in
  let reads = ref 0 in
  let cl = Array.init clients (fun _ -> R.Cluster.client cluster) in
  let dt =
    drive eng
      ~node:(R.Cluster.client_node cluster)
      ~clients ~ops ~ratio ~seed
      ~read:(fun c req ->
        incr reads;
        ignore
          (if fast then R.Client.query cl.(c) req
           else R.Client.call cl.(c) req))
      ~write:(fun c req -> ignore (R.Client.call cl.(c) req))
  in
  mk_point (Engine.obs eng) ~nodes ~total:(clients * ops) ~dt ~reads:!reads

let smr_point ?(seed = 42) ~ratio ~fast ~clients ~ops () =
  let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let replicas = [ 0; 1; 2 ] in
  let cfg = R.Config.make ~workers:1 ~propose_interval:2e-4 ~replicas () in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc cfg ~node:i ~paxos_store:(Paxos.Store.create ())
          (Apps.Kyoto.factory ()))
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  if not (Array.exists Smr.is_primary servers) then Engine.run ~until:5.0 eng;
  let cl = Array.init clients (fun _ -> R.Client.create rpc ~me:3 ~replicas) in
  let reads = ref 0 in
  let dt =
    drive eng ~node:3 ~clients ~ops ~ratio ~seed
      ~read:(fun c req ->
        incr reads;
        ignore
          (if fast then R.Client.query cl.(c) req
           else R.Client.call cl.(c) req))
      ~write:(fun c req -> ignore (R.Client.call cl.(c) req))
  in
  mk_point (Engine.obs eng) ~nodes:replicas ~total:(clients * ops) ~dt
    ~reads:!reads

let fast_hits p = p.fast_lease + p.fast_quorum

let hit_rate p =
  if p.reads = 0 then 0.
  else 100. *. float_of_int (fast_hits p) /. float_of_int p.reads

(* --- Domains backend: the execution-stage analogue.

   There is no replicated cluster on real domains (lib/par has no
   network), so the domains sweep measures what the fast path saves at
   the execution stage: reads that skip the lock/record machinery
   (served from local state, nothing recorded) vs reads pushed through
   the recorded ordered path like any write. *)

let domains_point ~record_reads ~ratio ~ops ~label () =
  let workers = 4 in
  let cores = Domain.recommended_domain_count () in
  let d = Par.Domains.create ~seed:42 ~domains:(min workers cores) () in
  let rt =
    Rexsync.Runtime.create (Par.Domains.backend d) ~node:0 ~slots:workers
  in
  let locks =
    Array.init n_keys (fun i ->
        Rexsync.Lock.create rt (Printf.sprintf "kv%d" i))
  in
  let cells = Array.make n_keys 0 in
  let t0 = Par.Domains.now d in
  for w = 0 to workers - 1 do
    Par.Domains.spawn d ~node:0 ~name:(Printf.sprintf "reads%d" w) (fun () ->
        Rexsync.Runtime.bind_slot rt w;
        let rng = Rng.create (42 + (w * 7919)) in
        for _ = 1 to ops do
          let i = Rng.int rng n_keys in
          if Rng.float rng 1.0 < ratio then
            if record_reads then
              Rexsync.Lock.with_lock locks.(i) (fun () ->
                  ignore (Sys.opaque_identity cells.(i)))
            else ignore (Sys.opaque_identity cells.(i))
          else
            Rexsync.Lock.with_lock locks.(i) (fun () ->
                cells.(i) <- cells.(i) + 1)
        done;
        Rexsync.Runtime.unbind_slot rt)
  done;
  Par.Domains.join d;
  let dt = Par.Domains.now d -. t0 in
  Harness.note_run_obs ~label ~time:(Par.Domains.now d) (Par.Domains.obs d);
  Par.Domains.shutdown d;
  float_of_int (workers * ops) /. dt

let run_domains ?(quick = false) () =
  let ops = if quick then 3_000 else 15_000 in
  Printf.printf
    "\n== reads on domains: execution stage, %d hw cores (wall-clock) ==\n"
    (Domain.recommended_domain_count ());
  Printf.printf "read_ratio\tordered\tfast\tspeedup\n%!";
  List.iter
    (fun ratio ->
      let ordered =
        domains_point ~record_reads:true ~ratio ~ops
          ~label:(Printf.sprintf "reads-domains-ordered-r%g" ratio)
          ()
      in
      let fast =
        domains_point ~record_reads:false ~ratio ~ops
          ~label:(Printf.sprintf "reads-domains-fast-r%g" ratio)
          ()
      in
      Printf.printf "%.2f\t%s\t%s\t%.2fx\n%!" ratio (Harness.fmt_rate ordered)
        (Harness.fmt_rate fast) (fast /. ordered))
    [ 0.5; 0.9; 0.99 ]

let run_sim ?(quick = false) () =
  let clients = 8 in
  let ops = if quick then 60 else 200 in
  let ratios = [ 0.5; 0.9; 0.99 ] in
  Printf.printf
    "\n== reads on sim: fast path (leases + quorum reads) vs ordered ==\n";
  Printf.printf
    "stack\tread_ratio\tordered\tfast\tspeedup\tlease\tquorum\tfallback\thit%%\n%!";
  let at_90 = ref [] in
  List.iter
    (fun (name, point) ->
      List.iter
        (fun ratio ->
          let ordered = point ~ratio ~fast:false ~clients ~ops () in
          let fast = point ~ratio ~fast:true ~clients ~ops () in
          Printf.printf "%s\t%.2f\t%s\t%s\t%.2fx\t%d\t%d\t%d\t%.0f%%\n%!" name
            ratio
            (Harness.fmt_rate ordered.throughput)
            (Harness.fmt_rate fast.throughput)
            (fast.throughput /. ordered.throughput)
            fast.fast_lease fast.fast_quorum fast.ordered_falls
            (hit_rate fast);
          if ratio >= 0.9 && ratio < 0.95 then
            at_90 := (name, ordered, fast) :: !at_90)
        ratios)
    [
      ("rex", fun ~ratio ~fast ~clients ~ops () ->
        rex_point ~ratio ~fast ~clients ~ops ());
      ("smr", fun ~ratio ~fast ~clients ~ops () ->
        smr_point ~ratio ~fast ~clients ~ops ());
    ];
  (* Smoke: on the 90%-read mix the fast path must actually engage (obs
     confirms) and must beat the ordered path. *)
  List.iter
    (fun (name, (ordered : point), (fast : point)) ->
      if fast_hits fast = 0 then
        Harness.fail
          "reads %s: no read took the fast path at 90%% reads (lease=%d \
           quorum=%d)"
          name fast.fast_lease fast.fast_quorum;
      if fast.throughput <= ordered.throughput then
        Harness.fail
          "reads %s: fast path (%.0f/s) did not beat ordered (%.0f/s) at \
           90%% reads"
          name fast.throughput ordered.throughput)
    !at_90

let run ?(quick = false) ?(backend = `Sim) () =
  match backend with
  | `Sim -> run_sim ~quick ()
  | `Domains -> run_domains ~quick ()
