(** Zipfian rank sampling (rejection-inversion-free, precomputed CDF) for
    skewed key popularity in the key/value workloads. *)

type t

val create : n:int -> theta:float -> t
(** Ranks [0 .. n-1]; [theta = 0] is uniform, [theta ~ 0.99] is the
    classic YCSB skew.  The O(n) CDF table is memoized per (n, theta)
    process-wide (mutex-guarded, immutable after publication), so
    instantiating a sampler per session is O(1) after the first — the
    million-session load engine depends on this. *)

val create_uncached : n:int -> theta:float -> t
(** Always rebuilds the table; the bechamel before/after baseline for the
    memoization, and an escape hatch if a caller ever mutates nothing but
    still wants isolation. *)

val n : t -> int

val pmf : t -> int -> float
(** Analytic probability of rank [i], from adjacent CDF entries; the
    reference distribution for the chi-square goodness-of-fit test. *)

val sample : t -> Sim.Rng.t -> int
