type t = { cdf : float array }

let build ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  cdf

let create_uncached ~n ~theta = { cdf = build ~n ~theta }

(* The CDF table is O(n) to build but immutable once built, and samplers
   are instantiated per client fiber / per load-engine generator — a
   million-session fleet must not pay O(keyspace) a million times.  The
   cache is keyed by the full (n, theta) parameterization and guarded by a
   stdlib mutex so domains-backend callers can share it; the arrays
   themselves are never written after publication. *)
let cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let cache_lock = Mutex.create ()
let max_cached = 64

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create";
  let key = (n, theta) in
  Mutex.lock cache_lock;
  let cdf =
    match Hashtbl.find_opt cache key with
    | Some cdf -> cdf
    | None ->
      Mutex.unlock cache_lock;
      let cdf = build ~n ~theta in
      Mutex.lock cache_lock;
      (match Hashtbl.find_opt cache key with
      | Some cdf -> cdf (* lost the race; keep the published table *)
      | None ->
        if Hashtbl.length cache < max_cached then Hashtbl.add cache key cdf;
        cdf)
  in
  Mutex.unlock cache_lock;
  { cdf }

let n t = Array.length t.cdf

let pmf t i =
  if i < 0 || i >= Array.length t.cdf then invalid_arg "Zipf.pmf";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

let sample t rng =
  let u = Sim.Rng.float rng 1.0 in
  (* binary search for the first index with cdf >= u *)
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bs lo mid else bs (mid + 1) hi
  in
  bs 0 (Array.length t.cdf - 1)
