type gen = Sim.Rng.t -> string

let thumbnail ~n_images rng =
  let img = Sim.Rng.int rng n_images in
  let dim = 64 + (16 * Sim.Rng.int rng 4) in
  Printf.sprintf "THUMB %d %d" img dim

let lock_server ~n_files rng =
  let file = Keygen.path (Sim.Rng.int rng n_files) in
  let r = Sim.Rng.int rng 100 in
  if r < 90 then Printf.sprintf "RENEW %s" file
  else begin
    (* 100 B – 5 KB of file contents travel in the request, as in the
       paper (the shipped log contains client requests). *)
    let size = 100 + Sim.Rng.int rng 4900 in
    let payload = String.make size 'x' in
    if r < 95 then Printf.sprintf "CREATE %s %d %s" file size payload
    else Printf.sprintf "UPDATE %s %d %s" file size payload
  end

let filesystem ~n_files rng =
  let file = Sim.Rng.int rng n_files in
  let block = 16384 in
  let max_off = (128 * 1024 * 1024 / block) - 1 in
  let off = Sim.Rng.int rng max_off * block in
  if Sim.Rng.int rng 5 = 0 then Printf.sprintf "READ %d %d %d" file off block
  else Printf.sprintf "WRITE %d %d %d" file off block

let kv ?(n_keys = 1_000_000) ?(value_len = 100) ?(read_ratio = 0.5)
    ?(theta = 0.5) () =
  let zipf = Zipf.create ~n:n_keys ~theta in
  fun rng ->
    let k = Keygen.key (Zipf.sample zipf rng) in
    if Sim.Rng.float rng 1.0 < read_ratio then Printf.sprintf "GET %s" k
    else Printf.sprintf "SET %s %s" k (Keygen.value rng value_len)

let kv_keyed ?(n_keys = 1_000_000) ?(value_len = 100) ?(read_ratio = 0.5)
    ?(theta = 0.5) () =
  let zipf = Zipf.create ~n:n_keys ~theta in
  fun rng ->
    let k = Keygen.key (Zipf.sample zipf rng) in
    if Sim.Rng.float rng 1.0 < read_ratio then (k, Printf.sprintf "GET %s" k)
    else (k, Printf.sprintf "SET %s %s" k (Keygen.value rng value_len))

let kv_read_only ?(n_keys = 1_000_000) ?(theta = 0.5) () =
  let zipf = Zipf.create ~n:n_keys ~theta in
  fun rng -> Printf.sprintf "GET %s" (Keygen.key (Zipf.sample zipf rng))

type ycsb = A | B | C | D | E | F

let ycsb_name = function
  | A -> "A (update heavy)"
  | B -> "B (read mostly)"
  | C -> "C (read only)"
  | D -> "D (read latest)"
  | E -> "E (short scans)"
  | F -> "F (read-modify-write)"

let ycsb ?(n_keys = 1_000_000) w =
  let zipf = Zipf.create ~n:n_keys ~theta:0.99 in
  let inserted = ref n_keys in
  let key_of rng = Keygen.key (Zipf.sample zipf rng) in
  fun rng ->
    match w with
    | A ->
      if Sim.Rng.bool rng then Printf.sprintf "GET %s" (key_of rng)
      else Printf.sprintf "SET %s %s" (key_of rng) (Keygen.value rng 100)
    | B ->
      if Sim.Rng.int rng 100 < 95 then Printf.sprintf "GET %s" (key_of rng)
      else Printf.sprintf "SET %s %s" (key_of rng) (Keygen.value rng 100)
    | C -> Printf.sprintf "GET %s" (key_of rng)
    | D ->
      (* read-latest: 5% inserts, reads skewed to the newest keys *)
      if Sim.Rng.int rng 100 < 5 then begin
        incr inserted;
        Printf.sprintf "SET %s %s" (Keygen.key !inserted) (Keygen.value rng 100)
      end
      else
        Printf.sprintf "GET %s"
          (Keygen.key (max 0 (!inserted - Zipf.sample zipf rng)))
    | E ->
      (* short scan: a run of adjacent keys, sent as one multi-get *)
      let start = Zipf.sample zipf rng in
      let len = 1 + Sim.Rng.int rng 8 in
      let keys = List.init len (fun i -> Keygen.key (start + i)) in
      Printf.sprintf "MGET %s" (String.concat " " keys)
    | F ->
      (* read-modify-write on one key *)
      Printf.sprintf "RMW %s %s" (key_of rng) (Keygen.value rng 100)
