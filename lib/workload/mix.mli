(** Request-mix generators: one per application in the paper's evaluation
    (§6.3), producing the request strings the [Apps] handlers parse.  All
    generators are deterministic functions of the supplied {!Sim.Rng.t}. *)

type gen = Sim.Rng.t -> string

val thumbnail : n_images:int -> gen
(** "THUMB <img> <dim>": compute and cache a thumbnail. *)

val lock_server : n_files:int -> gen
(** 90% lease renewals, 10% create/update with 100 B – 5 KB payloads
    (paper §6.3, modeled on the Chubby workload). *)

val filesystem : n_files:int -> gen
(** 16 KB reads/writes over 64 × 128 MB files, read:write = 1:4. *)

val kv :
  ?n_keys:int -> ?value_len:int -> ?read_ratio:float -> ?theta:float -> unit ->
  gen
(** "SET <key> <value>" / "GET <key>" over 16 B keys and 100 B values
    (defaults: 1 M keys, 50% reads, mild zipf skew). *)

val kv_keyed :
  ?n_keys:int -> ?value_len:int -> ?read_ratio:float -> ?theta:float -> unit ->
  Sim.Rng.t -> string * string
(** Like {!kv} but returns [(key, request)], so a sharded router can
    place the request without parsing it.  [theta = 0.] gives uniform
    keys, [theta ~ 0.99] the classic YCSB hotspot. *)

val kv_read_only : ?n_keys:int -> ?theta:float -> unit -> gen

(** {1 YCSB-style core workloads}

    The standard cloud-serving mixes, over the paper's 16 B keys and
    100 B values, for the key/value applications. *)

type ycsb = A | B | C | D | E | F

val ycsb_name : ycsb -> string
val ycsb : ?n_keys:int -> ycsb -> gen
(** A: 50/50 read/update; B: 95/5; C: read-only; D: read-latest (inserts +
    reads skewed to recent keys); E: short scans (rendered as multi-GETs);
    F: read-modify-write. *)
