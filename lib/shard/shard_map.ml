type t = {
  epoch : int;
  vnodes : int;
  groups : int list; (* sorted, distinct *)
  ring : (int * int) array; (* (point, group), sorted by point *)
}

(* FNV-1a over 64 bits, then a murmur3-style finalizer, folded to a
   non-negative OCaml int.  Stable across runs and platforms (unlike
   [Hashtbl.hash] it is specified here), which keeps shard placement
   part of the deterministic-seed contract.  The finalizer matters: raw
   FNV-1a only avalanches a byte's entropy into the low ~48 bits, and
   ring placement compares hashes from the top bits down, so without it
   the near-identical vnode labels cluster and the ring splits the key
   space wildly unevenly. *)
let hash s =
  let prime = 0x100000001b3L in
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  Int64.to_int (Int64.shift_right_logical (mix !h) 1)

let point ~group ~vnode = hash (Printf.sprintf "shard-%d#%d" group vnode)

let build_ring ~vnodes groups =
  let ring =
    List.concat_map
      (fun g -> List.init vnodes (fun v -> (point ~group:g ~vnode:v, g)))
      groups
    |> Array.of_list
  in
  Array.sort compare ring;
  ring

let create ?(vnodes = 64) ~groups () =
  if groups = [] then invalid_arg "Shard_map.create: no groups";
  if vnodes <= 0 then invalid_arg "Shard_map.create: vnodes";
  let groups = List.sort_uniq compare groups in
  { epoch = 0; vnodes; groups; ring = build_ring ~vnodes groups }

let epoch t = t.epoch
let vnodes t = t.vnodes
let groups t = t.groups
let n_groups t = List.length t.groups
let ring_size t = Array.length t.ring

let contains t g = List.mem g t.groups

(* First ring point at or after the key's hash, wrapping. *)
let group_of t key =
  let h = hash key in
  let ring = t.ring in
  let n = Array.length ring in
  (* binary search: smallest i with fst ring.(i) >= h *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) >= h then hi := mid else lo := mid + 1
  done;
  snd ring.(if !lo = n then 0 else !lo)

let add_group t g =
  if contains t g then invalid_arg "Shard_map.add_group: group exists";
  let groups = List.sort_uniq compare (g :: t.groups) in
  { epoch = t.epoch + 1; vnodes = t.vnodes; groups;
    ring = build_ring ~vnodes:t.vnodes groups }

let remove_group t g =
  if not (contains t g) then invalid_arg "Shard_map.remove_group: no such group";
  let groups = List.filter (fun x -> x <> g) t.groups in
  if groups = [] then invalid_arg "Shard_map.remove_group: last group";
  { epoch = t.epoch + 1; vnodes = t.vnodes; groups;
    ring = build_ring ~vnodes:t.vnodes groups }

(* Wire spec: everything needed to reconstruct the map — including the
   epoch, which ring geometry alone cannot carry.  Attached to shard
   redirect replies so a stale router can refresh without a directory
   service. *)
let encode_spec t =
  Printf.sprintf "e%dv%dg%s" t.epoch t.vnodes
    (String.concat "," (List.map string_of_int t.groups))

let decode_spec s =
  let parse_int str = int_of_string_opt str in
  match String.index_opt s 'v' with
  | Some vi when String.length s > 0 && s.[0] = 'e' -> (
    match String.index_from_opt s vi 'g' with
    | Some gi -> (
      let epoch = parse_int (String.sub s 1 (vi - 1)) in
      let vnodes = parse_int (String.sub s (vi + 1) (gi - vi - 1)) in
      let groups =
        String.sub s (gi + 1) (String.length s - gi - 1)
        |> String.split_on_char ','
        |> List.map parse_int
      in
      match (epoch, vnodes) with
      | Some epoch, Some vnodes
        when epoch >= 0 && vnodes > 0
             && groups <> []
             && List.for_all (function Some g -> g >= 0 | None -> false) groups
        ->
        let groups = List.sort_uniq compare (List.filter_map Fun.id groups) in
        Some { epoch; vnodes; groups; ring = build_ring ~vnodes groups }
      | _ -> None)
    | None -> None)
  | _ -> None

let shares t keys =
  let counts = Hashtbl.create 8 in
  List.iter (fun g -> Hashtbl.replace counts g 0) t.groups;
  List.iter
    (fun k ->
      let g = group_of t k in
      Hashtbl.replace counts g (Hashtbl.find counts g + 1))
    keys;
  List.map (fun g -> (g, Hashtbl.find counts g)) t.groups
