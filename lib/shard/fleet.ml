open Sim
module R = Rex_core

type t = {
  eng : Engine.t;
  net_ : Net.t;
  rpc_ : Rpc.t;
  mutable map_ : Shard_map.t;
  mutable clusters_ : R.Cluster.t array;
      (* every group ever created, indexed by group id; a merged-away
         group's cluster stays up as a redirect server *)
  client_node_ : int;
  mutable router_ : Router.t option;
  rpg_ : int;
  config_ : group:int -> replicas:int list -> R.Config.t;
  factory_ : map:Shard_map.t -> group:int -> R.App.factory;
  c_migrations : Obs.Metric.counter;
  c_migrated_keys : Obs.Metric.counter;
  c_reconfigs : Obs.Metric.counter;
  c_upgrades : Obs.Metric.counter;
  h_migration : Obs.Histogram.t;
  g_epoch : Obs.Metric.gauge;
}

let default_config ~group:_ ~replicas =
  R.Config.make ~workers:8 ~propose_interval:2e-4 ~replicas ()

let create ?(seed = 7) ?(cores_per_node = 16) ?(net_latency = 50e-6)
    ?(vnodes = 64) ?(replicas_per_group = 3) ?(extra_nodes = 1)
    ?(config = default_config) ~groups:n_groups make_factory =
  if n_groups <= 0 then invalid_arg "Fleet.create: groups";
  if replicas_per_group <= 0 then invalid_arg "Fleet.create: replicas_per_group";
  if extra_nodes < 1 then invalid_arg "Fleet.create: extra_nodes";
  let n_replica_nodes = n_groups * replicas_per_group in
  let eng =
    Engine.create ~seed ~cores_per_node
      ~num_nodes:(n_replica_nodes + extra_nodes) ()
  in
  let net_ = Net.create ~base_latency:net_latency eng in
  let rpc_ = Rpc.create net_ in
  let client_node_ = n_replica_nodes in
  let map_ = Shard_map.create ~vnodes ~groups:(List.init n_groups Fun.id) () in
  let clusters_ =
    Array.init n_groups (fun g ->
        (* disjoint node-id ranges: group g owns
           [g*r .. g*r + r-1] of the shared engine *)
        let replicas =
          List.init replicas_per_group (fun i -> (g * replicas_per_group) + i)
        in
        let cfg = config ~group:g ~replicas in
        if cfg.R.Config.replicas <> replicas then
          invalid_arg "Fleet.create: config must keep the assigned replicas";
        R.Cluster.create_in ~client_node:client_node_ net_ rpc_ cfg
          (make_factory ~map:map_ ~group:g))
  in
  let obs = Engine.obs eng in
  {
    eng;
    net_;
    rpc_;
    map_;
    clusters_;
    client_node_;
    router_ = None;
    rpg_ = replicas_per_group;
    config_ = config;
    factory_ = make_factory;
    c_migrations = Obs.counter obs ~subsystem:"shard" "migrations";
    c_migrated_keys = Obs.counter obs ~subsystem:"shard" "migrated_keys";
    c_reconfigs = Obs.counter obs ~subsystem:"shard" "group_reconfigs";
    c_upgrades = Obs.counter obs ~subsystem:"shard" "rolling_upgrades";
    h_migration = Obs.histogram obs ~subsystem:"shard" "migration_duration";
    g_epoch = Obs.gauge obs ~subsystem:"shard" "fleet_epoch";
  }

let engine t = t.eng
let net t = t.net_
let rpc t = t.rpc_
let map t = t.map_
let n_groups t = Array.length t.clusters_
let active_groups t = Shard_map.groups t.map_
let clusters t = t.clusters_

let cluster t g =
  if g < 0 || g >= Array.length t.clusters_ then
    invalid_arg (Printf.sprintf "Fleet.cluster: no group %d" g);
  t.clusters_.(g)

let client_node t = t.client_node_
let start t = Array.iter R.Cluster.start t.clusters_
let run ?until t = Engine.run ?until t.eng
let run_for t d = Engine.run ~until:(Engine.clock t.eng +. d) t.eng

let primary t g = R.Cluster.primary (cluster t g)

let await_primaries ?(limit = 30.) t =
  let deadline = Engine.clock t.eng +. limit in
  let all_led () =
    Array.for_all (fun c -> R.Cluster.primary c <> None) t.clusters_
  in
  while not (all_led ()) do
    if Engine.clock t.eng >= deadline then
      failwith "Fleet.await_primaries: a group has no primary";
    run_for t 0.05
  done

let router t =
  match t.router_ with
  | Some r -> r
  | None ->
    let groups =
      Array.to_list t.clusters_
      |> List.mapi (fun g c -> (g, R.Cluster.members c))
    in
    let r =
      Router.create t.net_ t.rpc_ ~me:t.client_node_ ~map:t.map_ ~groups
    in
    t.router_ <- Some r;
    r

let crash_primary t g =
  match primary t g with
  | None -> None
  | Some s ->
    let node = R.Server.node s in
    R.Cluster.crash (cluster t g) node;
    Some node

let group_of_node t node =
  let found = ref None in
  Array.iteri
    (fun g c ->
      if !found = None && List.mem node (R.Cluster.replica_nodes c) then
        found := Some g)
    t.clusters_;
  match !found with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Fleet.group_of_node: node %d" node)

let restart t node = R.Cluster.restart (cluster t (group_of_node t node)) node

(* Replies sent by the group so far: the committed-throughput series the
   scale-out bench samples.  Registry-backed counters survive server
   rebuilds, so the sum is monotone across crash/restart. *)
let replies t g =
  Array.fold_left
    (fun acc s -> acc + (R.Server.stats s).R.Server.replies_sent)
    0
    (R.Cluster.servers (cluster t g))

let total_replies t =
  let acc = ref 0 in
  for g = 0 to n_groups t - 1 do
    acc := !acc + replies t g
  done;
  !acc

let check_no_divergence t = Array.iter R.Cluster.check_no_divergence t.clusters_

let digests t g =
  Array.to_list (R.Cluster.servers (cluster t g))
  |> List.filter (fun s -> Engine.node_alive t.eng (R.Server.node s))
  |> List.map R.Server.app_digest

let converged t =
  let ok g =
    match digests t g with [] -> false | d :: rest -> List.for_all (( = ) d) rest
  in
  let rec go g = g >= n_groups t || (ok g && go (g + 1)) in
  go 0

(* --- Live topology: split / merge / reconfig / rolling upgrade --- *)

(* Drive one idempotent SHARD control op to success, retrying across
   leader failovers until the deadline. *)
let ctl t r ~deadline ~group request =
  let rec go () =
    if Engine.clock t.eng >= deadline then
      failwith
        (Printf.sprintf "Fleet.migrate: group %d did not answer %S" group
           (List.nth (String.split_on_char ' ' request) 1))
    else
      match Router.call_group r ~group request with
      | Some resp when String.length resp >= 2 && String.sub resp 0 2 = "OK" ->
        resp
      | Some _ | None ->
        Engine.sleep 0.01;
        go ()
  in
  go ()

(* Migrate the fleet to [target] under traffic: drain-then-cutover.
   PREPARE freezes and dumps the moving keys on every losing group,
   INSTALL imports and cuts the gaining groups over, COMMIT retires the
   old map on the rest.  Every step is an ordinary replicated write, so
   a group that fails over mid-migration resumes consistently; every
   step is idempotent, so the orchestrator retries freely. *)
let migrate ?(limit = 60.) t target =
  let old = t.map_ in
  if Shard_map.epoch target <= Shard_map.epoch old then
    invalid_arg "Fleet.migrate: target epoch must be newer";
  let r = router t in
  List.iter
    (fun g ->
      if g < Array.length t.clusters_ then
        Router.add_group r ~group:g ~nodes:(R.Cluster.members t.clusters_.(g)))
    (Shard_map.groups target);
  let spec = Shard_map.encode_spec target in
  let t0 = Engine.clock t.eng in
  let deadline = t0 +. limit in
  let finished = ref false and failed = ref None in
  let moved = ref 0 in
  ignore
    (Engine.spawn t.eng ~node:t.client_node_ ~name:"fleet.migrate" (fun () ->
         (try
            let dumps =
              List.map
                (fun g ->
                  let resp = ctl t r ~deadline ~group:g ("SHARD PREPARE " ^ spec) in
                  match Partition.parse_prepare_reply resp with
                  | Some entries -> entries
                  | None ->
                    failwith
                      (Printf.sprintf "Fleet.migrate: bad PREPARE reply %S" resp))
                (Shard_map.groups old)
            in
            let entries = List.concat dumps in
            moved := List.length entries;
            List.iter
              (fun g ->
                let mine =
                  List.filter (fun (k, _) -> Shard_map.group_of target k = g)
                    entries
                in
                ignore
                  (ctl t r ~deadline ~group:g
                     ("SHARD INSTALL " ^ spec ^ " "
                     ^ Partition.encode_entries mine)))
              (Shard_map.groups target);
            List.iter
              (fun g -> ignore (ctl t r ~deadline ~group:g ("SHARD COMMIT " ^ spec)))
              (Shard_map.groups old)
          with Failure msg -> failed := Some msg);
         finished := true));
  while (not !finished) && Engine.clock t.eng < deadline +. 1. do
    run_for t 0.02
  done;
  (match !failed with Some msg -> failwith msg | None -> ());
  if not !finished then failwith "Fleet.migrate: orchestrator stalled";
  t.map_ <- target;
  Router.set_map r target;
  Obs.Metric.incr t.c_migrations;
  Obs.Metric.add t.c_migrated_keys !moved;
  Obs.Histogram.observe t.h_migration (Engine.clock t.eng -. t0);
  Obs.Metric.set t.g_epoch (float_of_int (Shard_map.epoch target))

let split ?limit t =
  let g = Array.length t.clusters_ in
  let replicas = List.init t.rpg_ (fun _ -> Engine.add_node t.eng) in
  List.iter (fun node -> Rpc.attach_node t.rpc_ ~node) replicas;
  let cfg = t.config_ ~group:g ~replicas in
  if cfg.R.Config.replicas <> replicas then
    invalid_arg "Fleet.split: config must keep the assigned replicas";
  (* The newcomer starts under the *current* map, which it is not part
     of: it rejects everything until its INSTALL cuts it over, so no key
     is served by two groups. *)
  let c =
    R.Cluster.create_in ~client_node:t.client_node_ t.net_ t.rpc_ cfg
      (t.factory_ ~map:t.map_ ~group:g)
  in
  t.clusters_ <- Array.append t.clusters_ [| c |];
  R.Cluster.start c;
  ignore (R.Cluster.await_primary c);
  (match t.router_ with
  | Some r -> Router.add_group r ~group:g ~nodes:(R.Cluster.members c)
  | None -> ());
  migrate ?limit t (Shard_map.add_group t.map_ g);
  g

let merge ?limit t g =
  if not (Shard_map.contains t.map_ g) then
    invalid_arg (Printf.sprintf "Fleet.merge: group %d not in the map" g);
  (* The victim's cluster stays up after the cutover, answering
     wrong-shard redirects for stragglers still holding the old map. *)
  migrate ?limit t (Shard_map.remove_group t.map_ g)

let reconfig_group ?limit t g =
  let c = cluster t g in
  let primary_node =
    match primary t g with Some s -> Some (R.Server.node s) | None -> None
  in
  let victim =
    match
      List.find_opt (fun n -> Some n <> primary_node) (R.Cluster.members c)
    with
    | Some n -> n
    | None -> List.hd (R.Cluster.members c)
  in
  let fresh = R.Cluster.replace_replica ?limit c victim in
  (match t.router_ with
  | Some r -> Router.set_group_nodes r ~group:g ~nodes:(R.Cluster.members c)
  | None -> ());
  Obs.Metric.incr t.c_reconfigs;
  fresh

let rolling_upgrade ?pause t =
  List.iter
    (fun g ->
      if g < Array.length t.clusters_ then begin
        R.Cluster.rolling_restart ?pause t.clusters_.(g);
        Obs.Metric.incr t.c_upgrades
      end)
    (active_groups t)
