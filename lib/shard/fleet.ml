open Sim
module R = Rex_core

type t = {
  eng : Engine.t;
  net_ : Net.t;
  rpc_ : Rpc.t;
  map_ : Shard_map.t;
  clusters_ : R.Cluster.t array;
  client_node_ : int;
  mutable router_ : Router.t option;
}

let default_config ~group:_ ~replicas =
  R.Config.make ~workers:8 ~propose_interval:2e-4 ~replicas ()

let create ?(seed = 7) ?(cores_per_node = 16) ?(net_latency = 50e-6)
    ?(vnodes = 64) ?(replicas_per_group = 3) ?(extra_nodes = 1)
    ?(config = default_config) ~groups:n_groups make_factory =
  if n_groups <= 0 then invalid_arg "Fleet.create: groups";
  if replicas_per_group <= 0 then invalid_arg "Fleet.create: replicas_per_group";
  if extra_nodes < 1 then invalid_arg "Fleet.create: extra_nodes";
  let n_replica_nodes = n_groups * replicas_per_group in
  let eng =
    Engine.create ~seed ~cores_per_node
      ~num_nodes:(n_replica_nodes + extra_nodes) ()
  in
  let net_ = Net.create ~base_latency:net_latency eng in
  let rpc_ = Rpc.create net_ in
  let client_node_ = n_replica_nodes in
  let map_ = Shard_map.create ~vnodes ~groups:(List.init n_groups Fun.id) () in
  let clusters_ =
    Array.init n_groups (fun g ->
        (* disjoint node-id ranges: group g owns
           [g*r .. g*r + r-1] of the shared engine *)
        let replicas =
          List.init replicas_per_group (fun i -> (g * replicas_per_group) + i)
        in
        let cfg = config ~group:g ~replicas in
        if cfg.R.Config.replicas <> replicas then
          invalid_arg "Fleet.create: config must keep the assigned replicas";
        R.Cluster.create_in ~client_node:client_node_ net_ rpc_ cfg
          (make_factory ~map:map_ ~group:g))
  in
  { eng; net_; rpc_; map_; clusters_; client_node_; router_ = None }

let engine t = t.eng
let net t = t.net_
let rpc t = t.rpc_
let map t = t.map_
let n_groups t = Array.length t.clusters_
let clusters t = t.clusters_

let cluster t g =
  if g < 0 || g >= Array.length t.clusters_ then
    invalid_arg (Printf.sprintf "Fleet.cluster: no group %d" g);
  t.clusters_.(g)

let client_node t = t.client_node_
let start t = Array.iter R.Cluster.start t.clusters_
let run ?until t = Engine.run ?until t.eng
let run_for t d = Engine.run ~until:(Engine.clock t.eng +. d) t.eng

let primary t g = R.Cluster.primary (cluster t g)

let await_primaries ?(limit = 30.) t =
  let deadline = Engine.clock t.eng +. limit in
  let all_led () =
    Array.for_all (fun c -> R.Cluster.primary c <> None) t.clusters_
  in
  while not (all_led ()) do
    if Engine.clock t.eng >= deadline then
      failwith "Fleet.await_primaries: a group has no primary";
    run_for t 0.05
  done

let router t =
  match t.router_ with
  | Some r -> r
  | None ->
    let groups =
      Array.to_list t.clusters_
      |> List.mapi (fun g c -> (g, R.Cluster.replica_nodes c))
    in
    let r =
      Router.create t.net_ t.rpc_ ~me:t.client_node_ ~map:t.map_ ~groups
    in
    t.router_ <- Some r;
    r

let crash_primary t g =
  match primary t g with
  | None -> None
  | Some s ->
    let node = R.Server.node s in
    R.Cluster.crash (cluster t g) node;
    Some node

let group_of_node t node =
  let r =
    match t.clusters_ with
    | [||] -> invalid_arg "Fleet.group_of_node: empty fleet"
    | cs -> List.length (R.Cluster.replica_nodes cs.(0))
  in
  let g = node / r in
  if g < 0 || g >= Array.length t.clusters_ then
    invalid_arg (Printf.sprintf "Fleet.group_of_node: node %d" node);
  g

let restart t node = R.Cluster.restart (cluster t (group_of_node t node)) node

(* Replies sent by the group so far: the committed-throughput series the
   scale-out bench samples.  Registry-backed counters survive server
   rebuilds, so the sum is monotone across crash/restart. *)
let replies t g =
  Array.fold_left
    (fun acc s -> acc + (R.Server.stats s).R.Server.replies_sent)
    0
    (R.Cluster.servers (cluster t g))

let total_replies t =
  let acc = ref 0 in
  for g = 0 to n_groups t - 1 do
    acc := !acc + replies t g
  done;
  !acc

let check_no_divergence t = Array.iter R.Cluster.check_no_divergence t.clusters_

let digests t g =
  Array.to_list (R.Cluster.servers (cluster t g))
  |> List.filter (fun s -> Engine.node_alive t.eng (R.Server.node s))
  |> List.map R.Server.app_digest

let converged t =
  let ok g =
    match digests t g with [] -> false | d :: rest -> List.for_all (( = ) d) rest
  in
  let rec go g = g >= n_groups t || (ok g && go (g + 1)) in
  go 0
