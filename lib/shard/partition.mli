(** Key-partitioned application adapter with live migration.

    Wraps any {!Rex_core.App.factory} for use inside one shard of a
    fleet.  Static behaviour: requests whose key does not route to this
    group (by the group's current {!Shard_map}) are rejected with
    ["ERR:wrong-shard <spec>"] — the responder's current map spec rides
    along so a stale router can refresh in one hop — and counted on the
    ["shard"/"misrouted"] counter.

    Live behaviour: the wrapper hosts a replicated control grammar, sent
    through the ordinary write path so every replica of the group
    transitions identically and the state survives failover:

    - ["SHARD PREPARE <spec>"] — begin migrating to the (strictly
      newer-epoch) target map.  Keys owned here but not under the target
      {e freeze}: reads and writes answer ["ERR:migrating <spec>"] until
      cutover, so no key is ever writable in two groups at once.
      Replies ["OK <entries>"] with the frozen keys' current values.
    - ["SHARD INSTALL <spec> <entries>"] — import the entries owned by
      this group under the target map, then cut over to it.
    - ["SHARD COMMIT <spec>"] — cut over without importing (the losing
      side's retirement).  All three are idempotent: a spec whose epoch
      is not newer than the current map answers ["OK"] unchanged.
    - ["SHARD EPOCH"] — current spec probe (also served as a query).

    The wrapper's map/target state rides in the checkpoint stream and in
    the digest, so crash/rejoin, demotion rollback and divergence
    detection all see the shard view move in lockstep with base state. *)

val default_key_of : string -> string option
(** Second whitespace-separated token — the key position of every
    request grammar in [lib/apps]. *)

val wrong_shard : string
(** Rejection prefix, ["ERR:wrong-shard"] (followed by the spec). *)

val migrating : string
(** Freeze rejection prefix, ["ERR:migrating"] (followed by the spec). *)

val classify :
  string ->
  [ `Wrong_shard of Shard_map.t option
  | `Migrating of Shard_map.t option
  | `App ]
(** Sort a reply for routing purposes, decoding the attached spec when
    present.  [`App] means an ordinary application response. *)

val encode_entries : (string * string) list -> string
(** Hex-armoured key/value blob as carried by PREPARE replies and
    INSTALL requests (space-free, so request tokenizers stay happy). *)

val decode_entries : string -> (string * string) list option

val parse_prepare_reply : string -> (string * string) list option
(** Extract the migration entries from a ["OK <entries>"] PREPARE
    reply; [None] if the reply is not a successful PREPARE. *)

val factory :
  ?key_of:(string -> string option) ->
  ?fmt_get:(string -> string) ->
  ?fmt_set:(string -> string -> string) ->
  map:Shard_map.t ->
  group:int ->
  Rex_core.App.factory ->
  Rex_core.App.factory
(** [map] is the group's {e initial} map; SHARD control requests move it.
    [fmt_get]/[fmt_set] render the base app's read/write grammar for
    migration export/import (defaults ["GET k"] / ["SET k v"], the
    [lib/apps] convention). *)
