(** Key-partitioned application adapter.

    Wraps any {!Rex_core.App.factory} for use inside one shard of a
    fleet: requests whose key does not route to this group (by the
    fleet's {!Shard_map}) are rejected with ["ERR:wrong-shard"] and
    counted on the ["shard"/"misrouted"] counter instead of silently
    polluting the replica state.  With well-behaved routers the counter
    stays at zero; it is the observability net that catches a stale or
    disagreeing map. *)

val default_key_of : string -> string option
(** Second whitespace-separated token — the key position of every
    request grammar in [lib/apps]. *)

val wrong_shard : string
(** The rejection response, ["ERR:wrong-shard"]. *)

val factory :
  ?key_of:(string -> string option) ->
  map:Shard_map.t ->
  group:int ->
  Rex_core.App.factory ->
  Rex_core.App.factory
