(** A fleet of independent Rex replica groups in one simulation.

    N {!Rex_core.Cluster}s share a single {!Sim.Engine} (one virtual
    clock, one seed), a network and an RPC fabric, with disjoint node-id
    ranges: group [g] owns nodes [g*r .. g*r + r - 1], the client/router
    node comes after every replica.  Cross-shard load, key skew and
    per-shard failover therefore compose deterministically — kill one
    group's primary and the other groups' virtual-time throughput is
    untouched while that group elects a new leader.

    Each group runs the application factory wrapped however the caller
    chooses (typically {!Partition.factory}); routing happens in
    {!Router}. *)

type t

val create :
  ?seed:int ->
  ?cores_per_node:int ->
  ?net_latency:float ->
  ?vnodes:int ->
  ?replicas_per_group:int ->
  ?extra_nodes:int ->
  ?config:(group:int -> replicas:int list -> Rex_core.Config.t) ->
  groups:int ->
  (map:Shard_map.t -> group:int -> Rex_core.App.factory) ->
  t
(** Defaults: 3 replicas per group, 64 virtual nodes per group on the
    ring, 1 extra (client) node.  [config] may tune each group's
    {!Rex_core.Config.t} but must keep the replica list it is given. *)

val engine : t -> Sim.Engine.t
val net : t -> Sim.Net.t
val rpc : t -> Sim.Rpc.t
val map : t -> Shard_map.t
val n_groups : t -> int
val cluster : t -> int -> Rex_core.Cluster.t
val clusters : t -> Rex_core.Cluster.t array
val client_node : t -> int

val start : t -> unit
val run : ?until:float -> t -> unit
val run_for : t -> float -> unit

val await_primaries : ?limit:float -> t -> unit
(** Run until every group has a primary (raises [Failure] after [limit]
    virtual seconds, default 30). *)

val router : t -> Router.t
(** The fleet's routing client, homed on {!client_node} (created on
    first use, then shared). *)

val primary : t -> int -> Rex_core.Server.t option

val crash_primary : t -> int -> int option
(** Crash group [g]'s current primary; returns the node id killed. *)

val restart : t -> int -> unit
(** Restart a crashed replica node (its group is inferred). *)

val replies : t -> int -> int
(** Committed replies sent by group [g] so far (monotone across
    crash/restart). *)

val total_replies : t -> int
val check_no_divergence : t -> unit

val digests : t -> int -> string list
(** App digests of group [g]'s live replicas. *)

val converged : t -> bool
(** Every group's live replicas agree on their digest. *)

(** {1 Live topology}

    All four operations run the system {e under traffic}: they pump the
    simulation from driver context (like {!Rex_core.Cluster.restart})
    while client fibers keep issuing requests.  Counters under
    subsystem ["shard"]: [migrations], [migrated_keys],
    [group_reconfigs], [rolling_upgrades], a [migration_duration]
    histogram and a [fleet_epoch] gauge. *)

val active_groups : t -> int list
(** Groups in the current map ({!n_groups} counts every group ever
    created, including merged-away redirect servers). *)

val migrate : ?limit:float -> t -> Shard_map.t -> unit
(** Drive the fleet to a strictly newer-epoch map: SHARD PREPARE on
    every losing group (freeze + dump), INSTALL on every gaining group
    (import + cutover), COMMIT on the rest — all as ordinary replicated
    writes, idempotent and retried across failovers until [limit]
    virtual seconds (default 60).  Raises [Failure] on deadline. *)

val split : ?limit:float -> t -> int
(** Live split: create a new replica group on fresh engine nodes, then
    {!migrate} to the map with that group added (it takes ~1/(N+1) of
    the key space).  Returns the new group id. *)

val merge : ?limit:float -> t -> int -> unit
(** Live merge: {!migrate} to the map with group [g] removed; its keys
    spread across the survivors.  The victim's cluster stays up as a
    redirect server for stale routers. *)

val reconfig_group : ?limit:float -> t -> int -> int
(** Replace one (preferably non-primary) replica of group [g] through
    the group's replicated log; returns the new node id and updates the
    fleet router's view of the group. *)

val rolling_upgrade : ?pause:float -> t -> unit
(** {!Rex_core.Cluster.rolling_restart} over every active group. *)
