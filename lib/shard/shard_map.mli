(** Consistent-hash shard map: keys to replica groups.

    A ring of [vnodes] virtual points per group (S-SMR-style state
    partitioning — Marandi et al., "Rethinking State-Machine Replication
    for Parallelism").  Virtual nodes keep per-group key shares balanced;
    consistent hashing makes membership changes minimal: growing from N
    to N+1 groups remaps ~1/(N+1) of the keys, all of them {e to} the new
    group, and removing a group remaps only that group's keys.

    Maps are immutable; every membership change returns a new map with a
    bumped {!epoch}, so routers and fleets can compare versions. *)

type t

val create : ?vnodes:int -> groups:int list -> unit -> t
(** Default 64 virtual nodes per group. *)

val epoch : t -> int
(** 0 at creation, +1 per {!add_group}/{!remove_group}. *)

val vnodes : t -> int
val groups : t -> int list
val n_groups : t -> int

val ring_size : t -> int
(** [n_groups * vnodes] — every group gets its full vnode complement. *)

val contains : t -> int -> bool

val group_of : t -> string -> int
(** Deterministic: depends only on the key bytes and the membership. *)

val add_group : t -> int -> t
val remove_group : t -> int -> t

val encode_spec : t -> string
(** Compact wire form carrying epoch, vnode count and group set — enough
    to reconstruct the map on the other side.  Attached to shard
    redirect replies so stale routers refresh without a directory
    service. *)

val decode_spec : string -> t option
(** Inverse of {!encode_spec}; [None] on malformed input. *)

val shares : t -> string list -> (int * int) list
(** Keys-per-group histogram of a key sample, for balance checks. *)

val hash : string -> int
(** The stable (FNV-1a 64) key hash the ring is built on. *)
