open Sim
module R = Rex_core

type group_state = {
  g_id : int;
  mutable nodes : int array;
  mutable guess : int; (* index into nodes: believed leader *)
  c_routed : Obs.Metric.counter;
  c_redirects : Obs.Metric.counter;
  c_retries : Obs.Metric.counter;
  c_failures : Obs.Metric.counter;
  h_latency : Obs.Histogram.t;
  mutable routed_ok : int;
}

type t = {
  eng : Engine.t;
  rpc : Rpc.t;
  me : int;
  uid : int;  (* session identity, shared across all groups *)
  mutable next_seq : int;
  mutable map : Shard_map.t;
  groups : (int, group_state) Hashtbl.t;
  obs : Obs.t;
  c_requests : Obs.Metric.counter;
  c_hops : Obs.Metric.counter;
  c_remaps : Obs.Metric.counter;
  c_migration_waits : Obs.Metric.counter;
  g_epoch : Obs.Metric.gauge;
  g_imbalance : Obs.Metric.gauge;
  mutable since_gauge : int;
}

type stats = {
  requests : int;
  hops : int;
  redirects : int;
  retries : int;
  failures : int;
}

let mk_group_state obs g_id nodes =
  if nodes = [] then invalid_arg "Router: empty group";
  let labels = [ ("group", string_of_int g_id) ] in
  {
    g_id;
    nodes = Array.of_list nodes;
    guess = 0;
    c_routed = Obs.counter obs ~subsystem:"shard" ~labels "routed";
    c_redirects = Obs.counter obs ~subsystem:"shard" ~labels "redirects";
    c_retries = Obs.counter obs ~subsystem:"shard" ~labels "retries";
    c_failures = Obs.counter obs ~subsystem:"shard" ~labels "failures";
    h_latency = Obs.histogram obs ~subsystem:"shard" ~labels "request_latency";
    routed_ok = 0;
  }

let create net rpc ~me ~map ~groups =
  let eng = Net.engine net in
  let obs = Engine.obs eng in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (g_id, nodes) -> Hashtbl.replace tbl g_id (mk_group_state obs g_id nodes))
    groups;
  List.iter
    (fun g ->
      if not (Hashtbl.mem tbl g) then
        invalid_arg (Printf.sprintf "Router.create: map group %d has no replicas" g))
    (Shard_map.groups map);
  let t =
    {
      eng;
      rpc;
      me;
      uid = Engine.fresh_uid eng;
      next_seq = 0;
      map;
      groups = tbl;
      obs;
      c_requests = Obs.counter obs ~subsystem:"shard" "router_requests";
      c_hops = Obs.counter obs ~subsystem:"shard" "router_hops";
      c_remaps = Obs.counter obs ~subsystem:"shard" "router_remaps";
      c_migration_waits = Obs.counter obs ~subsystem:"shard" "migration_waits";
      g_epoch = Obs.gauge obs ~subsystem:"shard" "router_epoch";
      g_imbalance = Obs.gauge obs ~subsystem:"shard" "imbalance_milli";
      since_gauge = 0;
    }
  in
  Obs.Metric.set t.g_epoch (float_of_int (Shard_map.epoch map));
  t

let map t = t.map

let add_group t ~group ~nodes =
  match Hashtbl.find_opt t.groups group with
  | Some g -> g.nodes <- Array.of_list nodes
  | None -> Hashtbl.replace t.groups group (mk_group_state t.obs group nodes)

let set_group_nodes t ~group ~nodes =
  match Hashtbl.find_opt t.groups group with
  | None -> invalid_arg (Printf.sprintf "Router.set_group_nodes: no group %d" group)
  | Some g ->
    g.nodes <- Array.of_list nodes;
    g.guess <- 0

let set_map t m =
  List.iter
    (fun g ->
      if not (Hashtbl.mem t.groups g) then
        invalid_arg (Printf.sprintf "Router.set_map: group %d has no replicas" g))
    (Shard_map.groups m);
  t.map <- m;
  Obs.Metric.set t.g_epoch (float_of_int (Shard_map.epoch m))

(* A redirect carried a map spec: adopt it when it is strictly newer and
   we know replicas for every group in it (a split announces the new
   group's nodes to the router out of band, before traffic moves). *)
let maybe_refresh t = function
  | Some m
    when Shard_map.epoch m > Shard_map.epoch t.map
         && List.for_all (Hashtbl.mem t.groups) (Shard_map.groups m) ->
    Obs.Metric.incr t.c_remaps;
    t.map <- m;
    Obs.Metric.set t.g_epoch (float_of_int (Shard_map.epoch m));
    true
  | Some _ | None -> false

let group_of t key = Shard_map.group_of t.map key

let state t group =
  match Hashtbl.find_opt t.groups group with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Router: unknown group %d" group)

let leader_hint t ~group =
  let g = state t group in
  g.nodes.(g.guess)

let routed_ok t ~group = (state t group).routed_ok

(* max/mean of successfully routed requests across groups; 1.0 = even. *)
let imbalance t =
  let n = Hashtbl.length t.groups in
  if n = 0 then 1.0
  else begin
    let total = ref 0 and worst = ref 0 in
    Hashtbl.iter
      (fun _ g ->
        total := !total + g.routed_ok;
        worst := max !worst g.routed_ok)
      t.groups;
    if !total = 0 then 1.0
    else float_of_int (!worst * n) /. float_of_int !total
  end

let note_success t g dt =
  g.routed_ok <- g.routed_ok + 1;
  Obs.Histogram.observe g.h_latency dt;
  t.since_gauge <- t.since_gauge + 1;
  if t.since_gauge >= 64 then begin
    t.since_gauge <- 0;
    Obs.Metric.set t.g_imbalance (1000. *. imbalance t)
  end

let rotate g = g.guess <- (g.guess + 1) mod Array.length g.nodes

let point_at g node =
  Array.iteri (fun i n -> if n = node then g.guess <- i) g.nodes

(* Backoff between attempts: give elections a moment instead of
   hammering the next guess; doubles up to a cap. *)
let backoff0 = 2e-3
let backoff_cap = 40e-3

let call_group ?(retries = 8) ?(timeout = 0.1) t ~group request =
  let g = state t group in
  Obs.Metric.incr t.c_requests;
  Obs.Metric.incr g.c_routed;
  (* One session identity per logical request, reused verbatim on every
     retry below: the group's replicas deduplicate on it (exactly-once
     for acknowledged requests).  The seq counter is shared across
     groups; per-group gaps are fine — the session table tracks seqs,
     not contiguity. *)
  let envelope =
    R.Session.Envelope.encode
      {
        R.Session.Envelope.client = t.uid;
        seq =
          (let s = t.next_seq in
           t.next_seq <- s + 1;
           s);
        payload = request;
      }
  in
  let t0 = Engine.clock t.eng in
  let rec go tries backoff =
    if tries = 0 then begin
      Obs.Metric.incr g.c_failures;
      None
    end
    else begin
      Obs.Metric.incr t.c_hops;
      match
        Rpc.call t.rpc ~src:t.me ~dst:g.nodes.(g.guess)
          ~port:R.Client.client_port ~timeout envelope
      with
      | None ->
        (* timeout: dead node or stalled group *)
        Obs.Metric.incr g.c_retries;
        rotate g;
        Engine.sleep backoff;
        go (tries - 1) (Float.min (2. *. backoff) backoff_cap)
      | Some reply -> (
        match R.Client.decode_reply reply with
        | R.Client.Ok_reply resp ->
          note_success t g (Engine.clock t.eng -. t0);
          Some resp
        | R.Client.Dropped ->
          Obs.Metric.incr g.c_retries;
          rotate g;
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap)
        | R.Client.Not_leader hint ->
          Obs.Metric.incr g.c_redirects;
          (match hint with Some h -> point_at g h | None -> rotate g);
          Engine.sleep backoff0;
          go (tries - 1) backoff
        | R.Client.Busy ->
          (* Overloaded, not misrouted: back off on the same leader and
             resend the same envelope (idempotent via session table). *)
          Obs.Metric.incr g.c_retries;
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap))
    end
  in
  go retries backoff0

(* Keyed calls re-resolve the group on every attempt and obey shard
   redirects: a wrong-shard reply refreshes the map from the attached
   spec, a migrating reply backs off until the cutover lands.  Each
   re-issue is a fresh [call_group], hence a fresh session seq — safe
   because the shard layer rejected the request before it touched app
   state, so the retry cannot double-execute. *)
let shard_retries = 10

let call ?retries ?timeout t ~key request =
  let rec go tries backoff =
    if tries = 0 then None
    else
      match call_group ?retries ?timeout t ~group:(group_of t key) request with
      | None -> None
      | Some resp -> (
        match Partition.classify resp with
        | `App -> Some resp
        | `Wrong_shard spec ->
          ignore (maybe_refresh t spec);
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap)
        | `Migrating spec ->
          Obs.Metric.incr t.c_migration_waits;
          (* The spec names the *target* map: do not adopt it early — the
             destination group only serves these keys once INSTALL lands.
             Just wait for the cutover and re-route. *)
          ignore spec;
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap))
  in
  go shard_retries backoff0

(* Reads follow the same discovery loop as [call_group] — redirects move
   the guess, timeouts and drops rotate it with backoff — but carry no
   envelope: any replica with a valid lease or a quorum round can answer,
   and a [Not_leader] just means this one chose not to. *)
let query_group ?(retries = 8) ?(timeout = 0.1) t ~group request =
  let g = state t group in
  let rec go tries backoff =
    if tries = 0 then begin
      Obs.Metric.incr g.c_failures;
      None
    end
    else
      match
        Rpc.call t.rpc ~src:t.me ~dst:g.nodes.(g.guess)
          ~port:R.Client.query_port ~timeout request
      with
      | None ->
        Obs.Metric.incr g.c_retries;
        rotate g;
        Engine.sleep backoff;
        go (tries - 1) (Float.min (2. *. backoff) backoff_cap)
      | Some reply -> (
        match R.Client.decode_reply reply with
        | R.Client.Ok_reply resp -> Some resp
        | R.Client.Dropped ->
          Obs.Metric.incr g.c_retries;
          rotate g;
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap)
        | R.Client.Not_leader hint ->
          Obs.Metric.incr g.c_redirects;
          (match hint with Some h -> point_at g h | None -> rotate g);
          Engine.sleep backoff0;
          go (tries - 1) backoff
        | R.Client.Busy ->
          Obs.Metric.incr g.c_retries;
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap))
  in
  go retries backoff0

let query ?retries ?timeout t ~key request =
  let rec go tries backoff =
    if tries = 0 then None
    else
      match query_group ?retries ?timeout t ~group:(group_of t key) request with
      | None -> None
      | Some resp -> (
        match Partition.classify resp with
        | `App -> Some resp
        | `Wrong_shard spec ->
          ignore (maybe_refresh t spec);
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap)
        | `Migrating _ ->
          Obs.Metric.incr t.c_migration_waits;
          Engine.sleep backoff;
          go (tries - 1) (Float.min (2. *. backoff) backoff_cap))
  in
  go shard_retries backoff0

(* --- Scatter-gather multi-key fan-out --- *)

type outcome = Reply of string | Failed of { group : int }

type multi = {
  outcomes : (string * outcome) array; (* input order: (key, outcome) *)
  failed_groups : int list; (* sorted, distinct *)
}

let multi_ok m =
  Array.for_all (function _, Reply _ -> true | _ -> false) m.outcomes

let multi_call ?retries ?timeout t reqs =
  match reqs with
  | [] -> { outcomes = [||]; failed_groups = [] }
  | _ ->
    let reqs = Array.of_list reqs in
    (* Partition the batch by target group, preserving input order
       within each group (per-group requests stay FIFO on one fiber). *)
    let by_group = Hashtbl.create 8 in
    Array.iteri
      (fun i (key, req) ->
        let g = group_of t key in
        let prev = Option.value (Hashtbl.find_opt by_group g) ~default:[] in
        Hashtbl.replace by_group g ((i, req) :: prev))
      reqs;
    let outcomes =
      Array.map (fun (key, _) -> (key, Failed { group = group_of t key })) reqs
    in
    let remaining = ref (Hashtbl.length by_group) in
    let parent = ref None in
    Hashtbl.iter
      (fun _g items ->
        let items = List.rev items in
        ignore
          (Engine.spawn t.eng ~node:t.me ~name:"shard.fanout" (fun () ->
               List.iter
                 (fun (i, req) ->
                   (* Keyed call: follows shard redirects if the map
                      moved after the batch was partitioned. *)
                   match call ?retries ?timeout t ~key:(fst reqs.(i)) req with
                   | Some resp ->
                     outcomes.(i) <- (fst outcomes.(i), Reply resp)
                   | None -> ())
                 items;
               decr remaining;
               if !remaining = 0 then
                 match !parent with Some w -> Engine.wake w | None -> ())))
      by_group;
    while !remaining > 0 do
      Engine.park (fun w -> parent := Some w)
    done;
    let failed_groups =
      Array.to_list outcomes
      |> List.filter_map (function
           | _, Failed { group } -> Some group
           | _, Reply _ -> None)
      |> List.sort_uniq compare
    in
    { outcomes; failed_groups }

let stats t =
  let redirects = ref 0 and retries = ref 0 and failures = ref 0 in
  Hashtbl.iter
    (fun _ g ->
      redirects := !redirects + Obs.Metric.value g.c_redirects;
      retries := !retries + Obs.Metric.value g.c_retries;
      failures := !failures + Obs.Metric.value g.c_failures)
    t.groups;
  {
    requests = Obs.Metric.value t.c_requests;
    hops = Obs.Metric.value t.c_hops;
    redirects = !redirects;
    retries = !retries;
    failures = !failures;
  }
