(** Routing client for a sharded Rex fleet.

    Hashes keys through a {!Shard_map} to a replica group, tracks a
    believed leader per group (refreshed from [Not_leader] redirect
    hints), retries with exponential backoff across timeouts and
    failovers, and fans multi-key batches out to their groups
    concurrently with partial-failure reporting.

    Everything is instrumented under subsystem ["shard"]: total requests
    and RPC hops, per-group routed/redirect/retry/failure counters, a
    per-group request-latency histogram, and an [imbalance_milli] gauge
    (1000 x max/mean of per-group routed requests). *)

type t

val create :
  Sim.Net.t ->
  Sim.Rpc.t ->
  me:int ->
  map:Shard_map.t ->
  groups:(int * int list) list ->
  t
(** [groups] lists each group's replica node ids; every group in [map]
    must be present. *)

val map : t -> Shard_map.t
val set_map : t -> Shard_map.t -> unit
(** Install a newer epoch (the groups must already be known). *)

val add_group : t -> group:int -> nodes:int list -> unit
(** Teach the router a (new) group's replica nodes — required before a
    map naming that group can be installed or adopted from a redirect.
    Idempotent: an existing group's nodes are replaced. *)

val set_group_nodes : t -> group:int -> nodes:int list -> unit
(** Replace an existing group's replica nodes (after a reconfiguration
    changed its membership) and reset the leader guess. *)

val group_of : t -> string -> int

val leader_hint : t -> group:int -> int
(** The node the router currently believes leads the group. *)

val call :
  ?retries:int -> ?timeout:float -> t -> key:string -> string -> string option
(** Route an update request by key.  Follows leader hints, sleeps with
    exponential backoff between attempts, and gives up after [retries]
    (default 8) per routing attempt — [None] inherits the client
    library's at-least-once caveat.  Shard redirects are obeyed across
    up to 10 routing attempts: a wrong-shard reply refreshes the map
    from the attached spec (counted on [shard/router_remaps]), a
    migrating reply backs off until the cutover lands (counted on
    [shard/migration_waits]).  Each re-route re-issues with a fresh
    session identity, which is safe because the shard layer rejected
    the original before it touched app state. *)

val call_group :
  ?retries:int -> ?timeout:float -> t -> group:int -> string -> string option

val query :
  ?retries:int -> ?timeout:float -> t -> key:string -> string -> string option
(** Read-only request on the key's group.  Follows the same leader-hint /
    rotate-with-backoff discovery loop as {!call} (default 8 retries);
    with the lease/quorum fast path any live replica can answer, so a
    redirect only moves the guess. *)

val query_group :
  ?retries:int -> ?timeout:float -> t -> group:int -> string -> string option

(** {1 Scatter-gather} *)

type outcome = Reply of string | Failed of { group : int }

type multi = {
  outcomes : (string * outcome) array;  (** input order: (key, outcome) *)
  failed_groups : int list;  (** sorted, distinct *)
}

val multi_call :
  ?retries:int -> ?timeout:float -> t -> (string * string) list -> multi
(** Fan a [(key, request)] batch out to its groups concurrently (one
    fiber per group, FIFO within a group); must run inside a fiber.
    Keys whose group exhausted retries come back [Failed], the rest
    [Reply] — one slow or dead shard does not sink the batch. *)

val multi_ok : multi -> bool

(** {1 Introspection} *)

type stats = {
  requests : int;
  hops : int;  (** individual RPC attempts, >= requests *)
  redirects : int;
  retries : int;
  failures : int;
}

val stats : t -> stats

val routed_ok : t -> group:int -> int
(** Successfully routed requests for one group. *)

val imbalance : t -> float
(** max/mean of per-group routed requests (1.0 = perfectly even). *)
