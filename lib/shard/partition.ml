module R = Rex_core

(* Key = second whitespace-separated token, which holds for every
   request grammar in lib/apps ("SET <key> ...", "GET <key>",
   "THUMB <img> ...", "RENEW <file>", "WRITE <file> ..."). *)
let default_key_of request =
  match String.index_opt request ' ' with
  | None -> None
  | Some i -> (
    let rest = String.sub request (i + 1) (String.length request - i - 1) in
    match String.index_opt rest ' ' with
    | None -> if rest = "" then None else Some rest
    | Some j -> Some (String.sub rest 0 j))

let wrong_shard = "ERR:wrong-shard"

let factory ?(key_of = default_key_of) ~map ~group (base : R.App.factory) :
    R.App.factory =
 fun api ->
  let app = base api in
  let obs = Par.Backend.obs (Rexsync.Runtime.backend (R.Api.runtime api)) in
  let c_misrouted =
    Obs.counter obs ~subsystem:"shard"
      ~labels:[ ("group", string_of_int group) ]
      "misrouted"
  in
  let owned request =
    match key_of request with
    | None -> true (* unkeyed requests are legal everywhere *)
    | Some key -> Shard_map.group_of map key = group
  in
  let execute ~request =
    if owned request then app.R.App.execute ~request
    else begin
      Obs.Metric.incr c_misrouted;
      wrong_shard
    end
  in
  let query ~request =
    if owned request then app.R.App.query ~request
    else begin
      Obs.Metric.incr c_misrouted;
      wrong_shard
    end
  in
  {
    app with
    R.App.name = Printf.sprintf "%s@shard%d" app.R.App.name group;
    execute;
    query;
  }
