module R = Rex_core

(* Key = second whitespace-separated token, which holds for every
   request grammar in lib/apps ("SET <key> ...", "GET <key>",
   "THUMB <img> ...", "RENEW <file>", "WRITE <file> ..."). *)
let default_key_of request =
  match String.index_opt request ' ' with
  | None -> None
  | Some i -> (
    let rest = String.sub request (i + 1) (String.length request - i - 1) in
    match String.index_opt rest ' ' with
    | None -> if rest = "" then None else Some rest
    | Some j -> Some (String.sub rest 0 j))

let default_fmt_get key = "GET " ^ key
let default_fmt_set key value = Printf.sprintf "SET %s %s" key value
let wrong_shard = "ERR:wrong-shard"
let migrating = "ERR:migrating"
let ctl_prefix = "SHARD "

(* --- Wire helpers --- *)

(* Migration entries ride inside request strings, which the key parser
   splits on spaces: hex keeps the blob opaque and space-free. *)
let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length s / 2)
           (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

let encode_entries entries =
  let b = Codec.sink () in
  Codec.write_list b
    (fun b (k, v) ->
      Codec.write_string b k;
      Codec.write_string b v)
    entries;
  to_hex (Codec.contents b)

let decode_entries hex =
  match of_hex hex with
  | None -> None
  | Some data -> (
    try
      let s = Codec.source data in
      Some
        (Codec.read_list s (fun s ->
             let k = Codec.read_string s in
             let v = Codec.read_string s in
             (k, v)))
    with Codec.Decode_error _ -> None)

let parse_prepare_reply resp =
  match String.split_on_char ' ' resp with
  | [ "OK"; hex ] -> decode_entries hex
  | [ "OK" ] -> Some []
  | _ -> None

(* Classify a reply for routers: shard redirects carry the responder's
   current (or target) spec so a stale router refreshes in one hop. *)
let classify resp =
  let tail prefix =
    let n = String.length prefix in
    if String.length resp >= n && String.sub resp 0 n = prefix then
      Some
        (if String.length resp > n + 1 && resp.[n] = ' ' then
           Shard_map.decode_spec
             (String.sub resp (n + 1) (String.length resp - n - 1))
         else None)
    else None
  in
  match tail wrong_shard with
  | Some spec -> `Wrong_shard spec
  | None -> (
    match tail migrating with
    | Some spec -> `Migrating spec
    | None -> `App)

(* --- The adapter --- *)

type state = {
  mutable map : Shard_map.t;
  mutable target : Shard_map.t option;
      (* [Some m] between PREPARE and COMMIT on a group that loses keys:
         keys owned here but not under [m] are frozen. *)
  present : (string, unit) Hashtbl.t;
      (* keys this group has seen requests for; the PREPARE dump source.
         May hold extras from rolled-back speculation — harmless, they
         export their default value. *)
}

let factory ?(key_of = default_key_of) ?(fmt_get = default_fmt_get)
    ?(fmt_set = default_fmt_set) ~map ~group (base : R.App.factory) :
    R.App.factory =
 fun api ->
  let app = base api in
  let st = { map; target = None; present = Hashtbl.create 256 } in
  (* One shared lock serializes the wrapper: ownership decisions, map
     transitions and the PREPARE dump must interleave identically under
     record and replay, and the dump additionally needs a quiescent base
     state.  This trades intra-group parallelism for cross-group
     scaling, which is the point of a sharded fleet. *)
  let meta = R.Api.lock api "shard.meta" in
  let obs = Par.Backend.obs (Rexsync.Runtime.backend (R.Api.runtime api)) in
  let labels = [ ("group", string_of_int group) ] in
  let c_misrouted = Obs.counter obs ~subsystem:"shard" ~labels "misrouted" in
  let c_frozen = Obs.counter obs ~subsystem:"shard" ~labels "frozen_rejects" in
  let c_imported = Obs.counter obs ~subsystem:"shard" ~labels "imported_keys" in
  let g_epoch = Obs.gauge obs ~subsystem:"shard" ~labels "epoch" in
  let g_migrating = Obs.gauge obs ~subsystem:"shard" ~labels "migrating" in
  let owned_by m key = Shard_map.group_of m key = group in
  let owned key = owned_by st.map key in
  let frozen key =
    match st.target with
    | Some m -> owned key && not (owned_by m key)
    | None -> false
  in
  let note_gauges () =
    Obs.Metric.set g_epoch (float_of_int (Shard_map.epoch st.map));
    Obs.Metric.set g_migrating (if st.target = None then 0. else 1.)
  in
  note_gauges ();
  let wrong_shard_reply () =
    Obs.Metric.incr c_misrouted;
    wrong_shard ^ " " ^ Shard_map.encode_spec st.map
  in
  let migrating_reply m =
    Obs.Metric.incr c_frozen;
    migrating ^ " " ^ Shard_map.encode_spec m
  in
  (* The PREPARE dump: keys this group owns now but not under [target],
     sorted for determinism, valued from base state.  Requires the meta
     lock (no base execution in flight). *)
  let dump target =
    Hashtbl.fold (fun k () acc -> k :: acc) st.present []
    |> List.filter (fun k -> owned k && not (owned_by target k))
    |> List.sort_uniq compare
    |> List.map (fun k -> (k, app.R.App.query ~request:(fmt_get k)))
  in
  let install m =
    st.map <- m;
    (match st.target with
    | Some tgt when Shard_map.epoch tgt <= Shard_map.epoch m -> st.target <- None
    | Some _ | None -> ());
    (* Forget keys that moved away so later dumps stay bounded. *)
    let stale =
      Hashtbl.fold (fun k () acc -> if owned k then acc else k :: acc) st.present []
    in
    List.iter (Hashtbl.remove st.present) stale;
    note_gauges ()
  in
  let handle_ctl request =
    match String.split_on_char ' ' request with
    | [ "SHARD"; "EPOCH" ] -> "OK " ^ Shard_map.encode_spec st.map
    | [ "SHARD"; "PREPARE"; spec ] -> (
      match Shard_map.decode_spec spec with
      | None -> "ERR:bad-spec"
      | Some m when Shard_map.epoch m <= Shard_map.epoch st.map ->
        "OK" (* this transition already cut over here *)
      | Some m ->
        st.target <- Some m;
        note_gauges ();
        "OK " ^ encode_entries (dump m))
    | [ "SHARD"; "INSTALL"; spec; hex ] -> (
      match (Shard_map.decode_spec spec, decode_entries hex) with
      | None, _ | _, None -> "ERR:bad-spec"
      | Some m, _ when Shard_map.epoch m <= Shard_map.epoch st.map ->
        "OK" (* duplicate cutover *)
      | Some m, Some entries ->
        (* Import first, then switch maps: nothing is served under the
           new map until its keys are in base state. *)
        List.iter
          (fun (k, v) ->
            if owned_by m k then begin
              ignore (app.R.App.execute ~request:(fmt_set k v));
              Hashtbl.replace st.present k ();
              Obs.Metric.incr c_imported
            end)
          entries;
        install m;
        "OK")
    | [ "SHARD"; "COMMIT"; spec ] -> (
      match Shard_map.decode_spec spec with
      | None -> "ERR:bad-spec"
      | Some m when Shard_map.epoch m <= Shard_map.epoch st.map -> "OK"
      | Some m ->
        install m;
        "OK")
    | _ -> "ERR:bad-request"
  in
  let is_ctl request =
    String.length request >= String.length ctl_prefix
    && String.sub request 0 (String.length ctl_prefix) = ctl_prefix
  in
  let execute ~request =
    Rexsync.Lock.lock meta;
    Fun.protect
      ~finally:(fun () -> Rexsync.Lock.unlock meta)
      (fun () ->
        if is_ctl request then handle_ctl request
        else
          match key_of request with
          | None -> app.R.App.execute ~request
          | Some key ->
            if not (owned key) then wrong_shard_reply ()
            else if frozen key then migrating_reply (Option.get st.target)
            else begin
              Hashtbl.replace st.present key ();
              app.R.App.execute ~request
            end)
  in
  (* Queries are not replicated, so no lock or [present] tracking: the
     fencing decision only needs an atomic view of the maps, which plain
     OCaml code between effect points already has. *)
  let query ~request =
    if is_ctl request then
      match String.split_on_char ' ' request with
      | [ "SHARD"; "EPOCH" ] -> "OK " ^ Shard_map.encode_spec st.map
      | _ -> "ERR:bad-query"
    else
      match key_of request with
      | None -> app.R.App.query ~request
      | Some key ->
        if not (owned key) then wrong_shard_reply ()
        else if frozen key then migrating_reply (Option.get st.target)
        else app.R.App.query ~request
  in
  (* Wrapper state rides in the checkpoint so crash/rejoin and demotion
     rollback restore the shard view in lockstep with base state. *)
  let write_checkpoint sink =
    Codec.write_string sink (Shard_map.encode_spec st.map);
    Codec.write_option sink
      (fun b m -> Codec.write_string b (Shard_map.encode_spec m))
      st.target;
    Codec.write_list sink Codec.write_string
      (Hashtbl.fold (fun k () acc -> k :: acc) st.present [] |> List.sort compare);
    app.R.App.write_checkpoint sink
  in
  let read_checkpoint src =
    let spec = Codec.read_string src in
    let target =
      Codec.read_option src (fun s -> Codec.read_string s)
    in
    let keys = Codec.read_list src Codec.read_string in
    (match Shard_map.decode_spec spec with
    | Some m -> st.map <- m
    | None -> raise (Codec.Decode_error "Partition: bad map spec in checkpoint"));
    st.target <-
      (match target with
      | None -> None
      | Some s -> (
        match Shard_map.decode_spec s with
        | Some m -> Some m
        | None ->
          raise (Codec.Decode_error "Partition: bad target spec in checkpoint")));
    Hashtbl.reset st.present;
    List.iter (fun k -> Hashtbl.replace st.present k ()) keys;
    note_gauges ();
    app.R.App.read_checkpoint src
  in
  (* [present] stays out of the digest: the primary's table can hold
     extras from rolled-back speculation that secondaries never saw.
     Map and target are log-driven, hence digest-worthy. *)
  let digest () =
    Printf.sprintf "%s#%s%s" (app.R.App.digest ())
      (Shard_map.encode_spec st.map)
      (match st.target with
      | None -> ""
      | Some m -> "->" ^ Shard_map.encode_spec m)
  in
  {
    R.App.name = Printf.sprintf "%s@shard%d" app.R.App.name group;
    execute;
    query;
    write_checkpoint;
    read_checkpoint;
    digest;
  }
