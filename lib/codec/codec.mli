(** Compact binary wire format used for traces, RPC payloads and
    checkpoints.

    Integers use LEB128-style varint encoding so that the dominant trace
    payload (event ids, logical clocks, edge endpoints) stays small — this
    is what lets the harness reproduce the paper's "each synchronization
    event adds around 16 bytes to the trace" measurement.  All encoders
    append to a growable {!sink}; decoders consume a {!source} cursor and
    raise {!Decode_error} on malformed input. *)

exception Decode_error of string

(** {1 Encoding} *)

type sink

val sink : ?initial_capacity:int -> unit -> sink

val counting_sink : unit -> sink
(** A sink that only counts bytes: run any encoder against it and read the
    would-be wire size back with {!length}, without allocating the encoded
    string.  {!contents} raises [Invalid_argument] on a counting sink. *)

val contents : sink -> string
val length : sink -> int
val clear : sink -> unit

val write_byte : sink -> int -> unit
val write_bool : sink -> bool -> unit

val write_uvarint : sink -> int -> unit
(** Unsigned varint; the argument must be non-negative. *)

val write_varint : sink -> int -> unit
(** Signed varint (zig-zag). *)

val write_float : sink -> float -> unit
(** IEEE-754 double, 8 bytes, little endian. *)

val write_string : sink -> string -> unit
(** Length-prefixed. *)

val write_list : sink -> (sink -> 'a -> unit) -> 'a list -> unit
val write_array : sink -> (sink -> 'a -> unit) -> 'a array -> unit
val write_option : sink -> (sink -> 'a -> unit) -> 'a option -> unit
val write_pair :
  sink -> (sink -> 'a -> unit) -> (sink -> 'b -> unit) -> 'a * 'b -> unit

(** {1 Decoding} *)

type source

val source : string -> source
val source_of_substring : string -> pos:int -> len:int -> source
val remaining : source -> int
val at_end : source -> bool

val read_byte : source -> int

val peek_byte : source -> int
(** {!read_byte} without consuming — used for versioned-format dispatch. *)

val read_bool : source -> bool
val read_uvarint : source -> int
val read_varint : source -> int
val read_float : source -> float
val read_string : source -> string
val read_list : source -> (source -> 'a) -> 'a list
val read_array : source -> (source -> 'a) -> 'a array
val read_option : source -> (source -> 'a) -> 'a option
val read_pair : source -> (source -> 'a) -> (source -> 'b) -> 'a * 'b

(** {1 Whole-value helpers} *)

val encode : ('a -> sink -> unit) -> 'a -> string
val decode : (source -> 'a) -> string -> 'a
(** [decode reader s] runs [reader] and checks the input was fully
    consumed. *)
