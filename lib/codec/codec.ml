exception Decode_error of string

let decode_error fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

(* A sink is either a real buffer or a byte counter: encoders written
   against the sink API can be replayed in counting mode to compute a
   wire size without allocating (or copying) the encoded string. *)
type sink = Buf of Buffer.t | Count of { mutable n : int }

let sink ?(initial_capacity = 256) () = Buf (Buffer.create initial_capacity)
let counting_sink () = Count { n = 0 }

let contents = function
  | Buf b -> Buffer.contents b
  | Count _ -> invalid_arg "Codec.contents: counting sink"

let length = function Buf b -> Buffer.length b | Count c -> c.n
let clear = function Buf b -> Buffer.clear b | Count c -> c.n <- 0

let write_byte t n =
  match t with
  | Buf b -> Buffer.add_char b (Char.chr (n land 0xff))
  | Count c -> c.n <- c.n + 1

let write_bool b v = write_byte b (if v then 1 else 0)

let rec uvarint_size n = if n < 0x80 then 1 else 1 + uvarint_size (n lsr 7)

let rec write_uvarint b n =
  assert (n >= 0);
  match b with
  | Count c -> c.n <- c.n + uvarint_size n
  | Buf _ ->
    if n < 0x80 then write_byte b n
    else begin
      write_byte b (0x80 lor (n land 0x7f));
      write_uvarint b (n lsr 7)
    end

(* Zig-zag maps small negative ints to small unsigned ints. *)
let write_varint b n = write_uvarint b ((n lsl 1) lxor (n asr 62))

let write_float b f =
  match b with
  | Count c -> c.n <- c.n + 8
  | Buf _ ->
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      write_byte b (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
    done

let write_string b s =
  write_uvarint b (String.length s);
  match b with
  | Buf buf -> Buffer.add_string buf s
  | Count c -> c.n <- c.n + String.length s

let write_list b f l =
  write_uvarint b (List.length l);
  List.iter (f b) l

let write_array b f a =
  write_uvarint b (Array.length a);
  Array.iter (f b) a

let write_option b f = function
  | None -> write_bool b false
  | Some v ->
    write_bool b true;
    f b v

let write_pair b fa fb (a, v) =
  fa b a;
  fb b v

type source = { data : string; limit : int; mutable pos : int }

let source data = { data; limit = String.length data; pos = 0 }

let source_of_substring data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Codec.source_of_substring";
  { data; limit = pos + len; pos }

let remaining s = s.limit - s.pos
let at_end s = s.pos >= s.limit

let read_byte s =
  if s.pos >= s.limit then decode_error "read_byte: end of input";
  let c = Char.code s.data.[s.pos] in
  s.pos <- s.pos + 1;
  c

let peek_byte s =
  if s.pos >= s.limit then decode_error "peek_byte: end of input";
  Char.code s.data.[s.pos]

let read_bool s =
  match read_byte s with
  | 0 -> false
  | 1 -> true
  | n -> decode_error "read_bool: invalid byte %d" n

let read_uvarint s =
  (* OCaml ints carry 62 value bits: 8 full 7-bit groups plus a final
     6-bit group.  Reject anything that would spill into the sign bit. *)
  let rec loop shift acc =
    if shift > 56 then decode_error "read_uvarint: overflow";
    let c = read_byte s in
    if shift = 56 && c > 0x3f then decode_error "read_uvarint: overflow";
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_varint s =
  let n = read_uvarint s in
  (n lsr 1) lxor (-(n land 1))

let read_float s =
  let bits = ref 0L in
  for i = 0 to 7 do
    let c = read_byte s in
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int c) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_string s =
  let n = read_uvarint s in
  if n < 0 || n > remaining s then
    decode_error "read_string: truncated (%d bytes)" n;
  let r = String.sub s.data s.pos n in
  s.pos <- s.pos + n;
  r

(* [List.init]/[Array.init] have unspecified evaluation order, so elements
   are read with explicit left-to-right loops. *)
let read_list s f =
  let n = read_uvarint s in
  if n > remaining s then decode_error "read_list: length %d too large" n;
  let rec loop i acc = if i = n then List.rev acc else loop (i + 1) (f s :: acc) in
  loop 0 []

let read_array s f =
  let n = read_uvarint s in
  if n > remaining s then decode_error "read_array: length %d too large" n;
  if n = 0 then [||]
  else begin
    let first = f s in
    let a = Array.make n first in
    for i = 1 to n - 1 do
      a.(i) <- f s
    done;
    a
  end

let read_option s f = if read_bool s then Some (f s) else None

let read_pair s fa fb =
  let a = fa s in
  let b = fb s in
  (a, b)

let encode writer v =
  let b = sink () in
  writer v b;
  contents b

let decode reader data =
  let s = source data in
  let v = reader s in
  if not (at_end s) then
    decode_error "decode: %d trailing bytes" (remaining s);
  v
