(** Multi-instance Paxos replica with leader election (paper §3.1).

    The interface mirrors Rex's extended Paxos API: [propose] submits a
    value for the next instance, [on_committed] fires — in instance order,
    exactly once per instance per replica lifetime — when a value commits,
    and leadership changes surface through [on_become_leader] /
    [on_new_leader].

    Two Rex design decisions are enforced here: at most one consensus
    instance is active at a time (a proposal is admitted only when no
    instance is in flight, so the prefix condition is easy to maintain
    upstream), and the leader is the only proposer (co-located with the
    Rex primary).

    Safety notes: acceptor state lives in a {!Store.t} the caller keeps
    across crash/restart cycles, modelling stable storage; a new leader
    first catches up on the committed prefix and re-proposes any value
    that might have been chosen before announcing leadership. *)

type callbacks = {
  on_committed : int -> string -> unit;
      (** invoked in a fiber on this node, in instance order *)
  on_become_leader : unit -> unit;
  on_new_leader : int -> unit;
      (** a higher ballot owned by the given replica was observed *)
}

type config = {
  me : int;  (** this replica's node id *)
  peers : int list;  (** all replica node ids, including [me] *)
  heartbeat_period : float;
  election_timeout : float;
      (** base timeout; each campaign randomizes in [[t, 2t]] *)
  max_inflight : int;
      (** concurrent open instances: 1 = Rex's single-active-instance
          design; >1 pipelines, with earlier open proposals piggybacked
          on each Accept (§3.1) *)
  sync_latency : float;
      (** modeled stable-storage write (fsync) before answering a Prepare
          or Accept; 0 disables *)
  lease_duration : float;
      (** leader-lease length, counted on each follower's own clock from
          heartbeat receipt; [<= 0.] disables leases entirely *)
  lease_drift_bound : float;
      (** assumed clock-rate error bound [d]: every clock runs within
          [[1-d, 1+d]] × true time.  The lease is safe iff real clocks
          respect this (the skew nemesis in lib/check probes both
          sides). *)
}

val default_config :
  ?max_inflight:int -> ?sync_latency:float -> ?lease_duration:float ->
  ?lease_drift_bound:float -> me:int -> peers:int list ->
  unit -> config
(** 5 ms heartbeats, 30 ms election timeout, [max_inflight] 1, no modeled
    fsync, 20 ms leases under a 0.2 drift bound. *)

type t

val create : Sim.Net.t -> config -> Store.t -> callbacks -> t
(** Registers the network handler.  Call {!start} to spawn the election
    and heartbeat fibers. *)

val start : t -> unit
val stop : t -> unit
(** Stops fibers and ignores further messages (a clean local halt; the
    node itself may stay alive). *)

val propose : t -> string -> bool
(** Propose a value for the next free instance.  Returns [false] if this
    replica is not the leader, [max_inflight] instances are open, or a
    reconfiguration is in flight. *)

val propose_reconfig : t -> int list -> bool
(** Propose a new membership through the replicated log.  The entry
    commits under the {e old} config's majority and takes effect on each
    replica when delivered, so old-config quorums are retired only after
    the new config commits and the change survives leader failure like
    any other log entry.  Constraints enforced here: the leader only, no
    app entry in flight (barrier), and the new list must differ from the
    current membership by exactly one replica (add XOR remove — adjacent
    configs then always share a majority; replace = add, then remove).
    Returns [false] when any constraint fails.  Application callbacks
    never see config entries ({!committed_value} yields [None] for
    them). *)

val reconfig_pending : t -> bool
(** A config entry proposed here has not been delivered yet. *)

val peers : t -> int list
(** Current membership: the constructed [config.peers] (or the store's
    persisted group after a restart) until a delivered config entry
    replaces it. *)

val is_member : t -> bool
(** Whether this replica is part of {!peers}.  A replica configured out
    of the group stops campaigning but keeps serving Learn requests. *)

val can_propose : t -> bool

val is_leader : t -> bool

val holds_lease : t -> bool
(** Leader-side lease validity: [me] plus the peers whose newest grant is
    still live — each counted for [(1-d)/(1+d) × lease_duration] from the
    granted heartbeat's {e send} time on the leader's clock — form a
    majority.  While true, every lease member refuses foreign Prepares,
    so no other leader can commit: reading local committed state is
    linearizable.  Always false when leases are disabled. *)

val read_index : t -> int
(** This replica's contribution to a quorum read: the highest instance
    that could already be chosen from its point of view
    (max of the committed prefix, out-of-order commits, and accepted
    proposals).  A majority of these, maxed, upper-bounds every write
    acknowledged before the probe. *)

val leader_hint : t -> int option
val current_ballot : t -> Ballot.t
val committed_upto : t -> int
val next_instance : t -> int
val committed_value : t -> int -> string option
val in_flight : t -> bool
val store : t -> Store.t

val replay_committed : Store.t -> (int -> string -> unit) -> unit
(** Feed every committed {e application} entry to [f] in instance order
    (config entries are skipped, gaps subsumed by a checkpoint are
    silent).  A replica created over an existing store never re-delivers
    the committed prefix through [on_committed]; stacks that rebuild
    execution state across a same-store restart — the rolling-upgrade
    path — call this between [create] and [start]. *)
