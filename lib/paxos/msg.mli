(** Paxos wire messages. *)

type t =
  | Prepare of { ballot : Ballot.t }  (** phase 1a, covers all open instances *)
  | Promise of {
      ballot : Ballot.t;
      accepted : (int * Ballot.t * string) list;
          (** accepted-but-uncommitted proposals above the committed prefix *)
      committed_upto : int;
    }  (** phase 1b *)
  | Nack of { ballot : Ballot.t }  (** a higher ballot exists *)
  | Accept of {
      ballot : Ballot.t;
      instance : int;
      value : string;
      prior : (int * string) list;
          (** piggybacked not-yet-committed proposals from earlier
              instances (Rex §3.1): an acceptor that missed them accepts
              them first, preserving the no-holes invariant *)
    }  (** 2a *)
  | Accepted of { ballot : Ballot.t; instance : int }  (** 2b *)
  | Commit of { instance : int; value : string }
  | Heartbeat of { ballot : Ballot.t; committed_upto : int; hb_seq : int }
      (** [hb_seq] is a leader-local heartbeat sequence number, echoed in
          {!Lease_grant} so the leader can date a grant from the
          heartbeat's send time on its own clock *)
  | Learn of { from_instance : int }  (** catch-up request *)
  | Learn_reply of { entries : (int * string) list }
  | Lease_grant of { ballot : Ballot.t; hb_seq : int }
      (** follower → leader: "I will promise no higher ballot for
          [lease_duration] on my clock from when I received heartbeat
          [hb_seq]" *)

val encode : t -> string
val decode : string -> t
val pp : t Fmt.t
