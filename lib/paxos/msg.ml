type t =
  | Prepare of { ballot : Ballot.t }
  | Promise of {
      ballot : Ballot.t;
      accepted : (int * Ballot.t * string) list;
      committed_upto : int;
    }
  | Nack of { ballot : Ballot.t }
  | Accept of {
      ballot : Ballot.t;
      instance : int;
      value : string;
      prior : (int * string) list;
    }
  | Accepted of { ballot : Ballot.t; instance : int }
  | Commit of { instance : int; value : string }
  | Heartbeat of { ballot : Ballot.t; committed_upto : int; hb_seq : int }
  | Learn of { from_instance : int }
  | Learn_reply of { entries : (int * string) list }
  | Lease_grant of { ballot : Ballot.t; hb_seq : int }
      (* a follower's lease extension for the heartbeat numbered [hb_seq];
         echoing the sequence number lets the leader anchor the grant
         window at the heartbeat's *send* time on its own clock *)

let write b = function
  | Prepare { ballot } ->
    Codec.write_byte b 0;
    Ballot.write b ballot
  | Promise { ballot; accepted; committed_upto } ->
    Codec.write_byte b 1;
    Ballot.write b ballot;
    Codec.write_list b
      (fun b (i, bal, v) ->
        Codec.write_uvarint b i;
        Ballot.write b bal;
        Codec.write_string b v)
      accepted;
    Codec.write_uvarint b committed_upto
  | Nack { ballot } ->
    Codec.write_byte b 2;
    Ballot.write b ballot
  | Accept { ballot; instance; value; prior } ->
    Codec.write_byte b 3;
    Ballot.write b ballot;
    Codec.write_uvarint b instance;
    Codec.write_string b value;
    Codec.write_list b
      (fun b (i, v) ->
        Codec.write_uvarint b i;
        Codec.write_string b v)
      prior
  | Accepted { ballot; instance } ->
    Codec.write_byte b 4;
    Ballot.write b ballot;
    Codec.write_uvarint b instance
  | Commit { instance; value } ->
    Codec.write_byte b 5;
    Codec.write_uvarint b instance;
    Codec.write_string b value
  | Heartbeat { ballot; committed_upto; hb_seq } ->
    Codec.write_byte b 6;
    Ballot.write b ballot;
    Codec.write_uvarint b committed_upto;
    Codec.write_uvarint b hb_seq
  | Lease_grant { ballot; hb_seq } ->
    Codec.write_byte b 9;
    Ballot.write b ballot;
    Codec.write_uvarint b hb_seq
  | Learn { from_instance } ->
    Codec.write_byte b 7;
    Codec.write_uvarint b from_instance
  | Learn_reply { entries } ->
    Codec.write_byte b 8;
    Codec.write_list b
      (fun b (i, v) ->
        Codec.write_uvarint b i;
        Codec.write_string b v)
      entries

let read s =
  match Codec.read_byte s with
  | 0 -> Prepare { ballot = Ballot.read s }
  | 1 ->
    let ballot = Ballot.read s in
    let accepted =
      Codec.read_list s (fun s ->
          let i = Codec.read_uvarint s in
          let bal = Ballot.read s in
          let v = Codec.read_string s in
          (i, bal, v))
    in
    let committed_upto = Codec.read_uvarint s in
    Promise { ballot; accepted; committed_upto }
  | 2 -> Nack { ballot = Ballot.read s }
  | 3 ->
    let ballot = Ballot.read s in
    let instance = Codec.read_uvarint s in
    let value = Codec.read_string s in
    let prior =
      Codec.read_list s (fun s ->
          let i = Codec.read_uvarint s in
          let v = Codec.read_string s in
          (i, v))
    in
    Accept { ballot; instance; value; prior }
  | 4 ->
    let ballot = Ballot.read s in
    let instance = Codec.read_uvarint s in
    Accepted { ballot; instance }
  | 5 ->
    let instance = Codec.read_uvarint s in
    let value = Codec.read_string s in
    Commit { instance; value }
  | 6 ->
    let ballot = Ballot.read s in
    let committed_upto = Codec.read_uvarint s in
    let hb_seq = Codec.read_uvarint s in
    Heartbeat { ballot; committed_upto; hb_seq }
  | 7 -> Learn { from_instance = Codec.read_uvarint s }
  | 9 ->
    let ballot = Ballot.read s in
    let hb_seq = Codec.read_uvarint s in
    Lease_grant { ballot; hb_seq }
  | 8 ->
    Learn_reply
      {
        entries =
          Codec.read_list s (fun s ->
              let i = Codec.read_uvarint s in
              let v = Codec.read_string s in
              (i, v));
      }
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad paxos msg tag %d" n))

let encode m = Codec.encode (Fun.flip write) m
let decode s = Codec.decode read s

let pp ppf = function
  | Prepare { ballot } -> Fmt.pf ppf "prepare(%a)" Ballot.pp ballot
  | Promise { ballot; accepted; committed_upto } ->
    Fmt.pf ppf "promise(%a,%d acc,upto %d)" Ballot.pp ballot
      (List.length accepted) committed_upto
  | Nack { ballot } -> Fmt.pf ppf "nack(%a)" Ballot.pp ballot
  | Accept { ballot; instance; prior; _ } ->
    Fmt.pf ppf "accept(%a,i%d,+%d prior)" Ballot.pp ballot instance
      (List.length prior)
  | Accepted { ballot; instance } ->
    Fmt.pf ppf "accepted(%a,i%d)" Ballot.pp ballot instance
  | Commit { instance; _ } -> Fmt.pf ppf "commit(i%d)" instance
  | Heartbeat { ballot; committed_upto; hb_seq } ->
    Fmt.pf ppf "heartbeat(%a,upto %d,#%d)" Ballot.pp ballot committed_upto
      hb_seq
  | Lease_grant { ballot; hb_seq } ->
    Fmt.pf ppf "lease_grant(%a,#%d)" Ballot.pp ballot hb_seq
  | Learn { from_instance } -> Fmt.pf ppf "learn(from %d)" from_instance
  | Learn_reply { entries } -> Fmt.pf ppf "learn_reply(%d)" (List.length entries)
