type t = {
  mutable promised_b : Ballot.t;
  accepted_tbl : (int, Ballot.t * string) Hashtbl.t;
  committed_tbl : (int, string) Hashtbl.t;
  mutable upto : int;
  mutable max_committed_i : int;
      (* commits can land out of order under pipelining; a proposer must
         never reuse an instance above the contiguous prefix *)
  mutable group : int list option;
      (* latest committed replica-group membership, if a reconfiguration
         ever committed; survives restart like promises do *)
}

let create () =
  {
    promised_b = Ballot.zero;
    accepted_tbl = Hashtbl.create 16;
    committed_tbl = Hashtbl.create 64;
    upto = 0;
    max_committed_i = 0;
    group = None;
  }

let group t = t.group
let set_group t peers = t.group <- Some peers

let promised t = t.promised_b

let set_promised t b =
  if Ballot.compare b t.promised_b > 0 then t.promised_b <- b

let accepted t i = Hashtbl.find_opt t.accepted_tbl i
let set_accepted t i b v = Hashtbl.replace t.accepted_tbl i (b, v)

let accepted_above t floor =
  Hashtbl.fold
    (fun i (b, v) acc -> if i > floor then (i, b, v) :: acc else acc)
    t.accepted_tbl []
  |> List.sort (fun (i, _, _) (j, _, _) -> compare i j)

let committed t i = Hashtbl.find_opt t.committed_tbl i

let commit t i v =
  (match Hashtbl.find_opt t.committed_tbl i with
  | Some v' when v' <> v ->
    invalid_arg
      (Printf.sprintf "Paxos safety violation at instance %d (have %d, got %d)"
         i (Hashtbl.hash v') (Hashtbl.hash v))
  | Some _ | None -> ());
  Hashtbl.replace t.committed_tbl i v;
  if i > t.max_committed_i then t.max_committed_i <- i;
  while Hashtbl.mem t.committed_tbl (t.upto + 1) do
    t.upto <- t.upto + 1
  done

let committed_upto t = t.upto
let max_committed t = t.max_committed_i

let fast_forward t i =
  (* A checkpoint subsumes everything at or below its instance: treat the
     prefix as committed even though the values are gone. *)
  if i > t.upto then begin
    t.upto <- i;
    if i > t.max_committed_i then t.max_committed_i <- i;
    while Hashtbl.mem t.committed_tbl (t.upto + 1) do
      t.upto <- t.upto + 1
    done
  end

let committed_range t ~from_i ~upto =
  let rec go i acc =
    if i < from_i then acc
    else
      match Hashtbl.find_opt t.committed_tbl i with
      | None -> go (i - 1) acc
      | Some v -> go (i - 1) ((i, v) :: acc)
  in
  go upto []

let truncate_below t floor =
  Hashtbl.iter
    (fun i _ -> if i < floor then Hashtbl.remove t.committed_tbl i)
    (Hashtbl.copy t.committed_tbl);
  Hashtbl.iter
    (fun i _ -> if i < floor then Hashtbl.remove t.accepted_tbl i)
    (Hashtbl.copy t.accepted_tbl)
