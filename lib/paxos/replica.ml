open Sim

let port = "paxos"
let learn_batch = 64

type callbacks = {
  on_committed : int -> string -> unit;
  on_become_leader : unit -> unit;
  on_new_leader : int -> unit;
}

type config = {
  me : int;
  peers : int list;
  heartbeat_period : float;
  election_timeout : float;
  max_inflight : int;
      (* how many consensus instances may be open concurrently; 1 is
         Rex's single-active-instance design, >1 enables the §3.1
         piggyback pipelining *)
  sync_latency : float;
      (* modeled stable-storage write before an acceptor answers a
         Prepare or Accept (real Paxos must fsync its promises) *)
  lease_duration : float;
      (* how long a follower's lease grant lasts on the follower's own
         clock, counted from heartbeat receipt; <= 0 disables leases *)
  lease_drift_bound : float;
      (* assumed bound on clock rate error: every clock's rate is within
         [1-d, 1+d] of true time.  The leader shrinks its view of each
         grant by (1-d)/(1+d) so a fast follower clock can never expire
         a grant before the leader stops trusting it *)
}

let default_config ?(max_inflight = 1) ?(sync_latency = 0.)
    ?(lease_duration = 20e-3) ?(lease_drift_bound = 0.2) ~me ~peers () =
  {
    me;
    peers;
    heartbeat_period = 5e-3;
    election_timeout = 30e-3;
    max_inflight;
    sync_latency;
    lease_duration;
    lease_drift_bound;
  }

type role = Follower | Candidate | Leader

(* Reconfiguration rides the replicated log as ordinary values carrying
   this sentinel prefix.  Config entries are invisible to the
   application ([deliver] applies them internally; {!committed_value}
   hides them), and each entry may change membership by at most one
   replica, so consecutive configs always share a majority — the quorum
   intersection argument for one-at-a-time membership change. *)
let cfg_sentinel = "\xff\x00rexcfg\x01"

let encode_cfg peers =
  cfg_sentinel ^ String.concat "," (List.map string_of_int peers)

let is_cfg_value v =
  let n = String.length cfg_sentinel in
  String.length v >= n && String.sub v 0 n = cfg_sentinel

let decode_cfg v =
  let body =
    String.sub v
      (String.length cfg_sentinel)
      (String.length v - String.length cfg_sentinel)
  in
  String.split_on_char ',' body |> List.filter_map int_of_string_opt

(* A replica created over an existing store starts with
   [delivered = committed_upto]: the committed prefix is never
   re-delivered through [on_committed].  Stacks that rebuild execution
   state across a restart (rolling upgrades) replay it explicitly. *)
let replay_committed st f =
  for i = 1 to Store.committed_upto st do
    match Store.committed st i with
    | Some v when is_cfg_value v -> ()
    | Some v -> f i v
    | None -> () (* subsumed by a checkpoint fast-forward *)
  done

type inflight = {
  fi_instance : int;
  fi_ballot : Ballot.t;
  fi_value : string;
  fi_started : float;  (* proposal time, for the commit-latency histogram *)
  mutable fi_acks : int list;
  fi_recovery : bool;  (* re-proposal during leader takeover *)
}

type t = {
  net : Net.t;
  cfg : config;
  st : Store.t;
  cbs : callbacks;
  rng : Rng.t;
  mutable peers : int list;
      (* current membership: [cfg.peers] (or the store's persisted group)
         until a committed config entry replaces it *)
  mutable reconfig_at : int;
      (* instance of our in-flight config proposal; proposals are barred
         while it is above the delivered prefix (0 = none) *)
  mutable role : role;
  mutable ballot : Ballot.t;  (* highest ballot this replica has seen *)
  mutable announced : Ballot.t;  (* last foreign ballot reported via on_new_leader *)
  mutable leader : int option;
  mutable last_contact : float;
  mutable campaign_promises : (int * (int * Ballot.t * string) list * int) list;
      (* (from, accepted entries, committed_upto) for the current campaign *)
  mutable campaign_open : bool;
  mutable lead_after_catchup : int option;
      (* becoming leader is deferred until our committed prefix reaches
         this instance (learned from the promise majority) *)
  mutable recovery_queue : (int * string) list;
      (* uncommitted proposals to re-drive before leading *)
  inflight : (int, inflight) Hashtbl.t;
  mutable delivered : int;
  mutable stopped : bool;
  (* lease state, follower side: one outstanding grant at a time *)
  mutable grant_ballot : Ballot.t;  (* whose heartbeats we granted to *)
  mutable grant_until : float;  (* local-clock expiry of that grant *)
  (* lease state, leader side *)
  mutable hb_seq : int;
  hb_sent : (int, float) Hashtbl.t;  (* hb_seq -> local send time *)
  grants : (int, float) Hashtbl.t;
      (* peer -> local send time of the newest heartbeat it granted *)
  mutable lease_was_valid : bool;  (* edge detector for the expiry counter *)
  obs : Obs.t;
  c_proposals : Obs.Metric.counter;
  c_commits : Obs.Metric.counter;
  c_acks : Obs.Metric.counter;
  c_campaigns : Obs.Metric.counter;
  c_lease_grants : Obs.Metric.counter;
  c_lease_renewals : Obs.Metric.counter;
  c_lease_expiries : Obs.Metric.counter;
  h_commit : Obs.Histogram.t;
}

let majority t = (List.length t.peers / 2) + 1
let peers t = t.peers
let is_member t = List.mem t.cfg.me t.peers
let reconfig_pending t = t.reconfig_at > t.delivered
let is_leader t = t.role = Leader
let leader_hint t = t.leader
let current_ballot t = t.ballot
let committed_upto t = Store.committed_upto t.st

let next_instance t =
  (* Never reuse an instance: account for open proposals AND commits that
     landed above the contiguous prefix (out-of-order quorums). *)
  let m =
    Hashtbl.fold (fun i _ acc -> max i acc) t.inflight
      (max (Store.committed_upto t.st) (Store.max_committed t.st))
  in
  m + 1

let in_flight t = Hashtbl.length t.inflight > 0
let can_propose t =
  t.role = Leader
  && Hashtbl.length t.inflight < t.cfg.max_inflight
  (* Proposal barrier: while a config entry is in flight, no app values
     may pipeline behind it — the entry's commit changes the quorum the
     followers would be acked against. *)
  && not (reconfig_pending t)
let store t = t.st
let now t = Engine.clock (Net.engine t.net)

(* Lease timing runs on the node's own (possibly skewed) clock: a lease
   may only rely on what real clocks guarantee — bounded drift — so it
   must never read true virtual time. *)
let local_now t = Engine.local_clock (Net.engine t.net) t.cfg.me
let lease_on t = t.cfg.lease_duration > 0.

(* Follower side: an unexpired promise to refuse foreign Prepares. *)
let grant_active t =
  lease_on t
  && Ballot.compare t.grant_ballot Ballot.zero > 0
  && local_now t < t.grant_until

(* The leader counts a grant for (1-d)/(1+d) x duration from the
   heartbeat's *send* time on its own clock.  Send <= receive, and for
   clock rates within the drift bound the shrunk window always ends (in
   true time) no later than the follower's own expiry — see DESIGN §11. *)
let lease_margin t =
  (1. -. t.cfg.lease_drift_bound) /. (1. +. t.cfg.lease_drift_bound)

let reset_leader_lease t =
  Hashtbl.reset t.hb_sent;
  Hashtbl.reset t.grants;
  t.lease_was_valid <- false

let holds_lease t =
  let ok =
    lease_on t && t.role = Leader
    &&
    let ln = local_now t in
    let window = t.cfg.lease_duration *. lease_margin t in
    let live =
      List.fold_left
        (fun acc p ->
          if p = t.cfg.me then acc + 1
          else
            match Hashtbl.find_opt t.grants p with
            | Some sent when sent +. window > ln -> acc + 1
            | Some _ | None -> acc)
        0 t.peers
    in
    live >= majority t
  in
  if t.lease_was_valid && not ok then Obs.Metric.incr t.c_lease_expiries;
  t.lease_was_valid <- ok;
  ok

(* The newest instance that could already be chosen: a committed write
   was accepted by a majority, so any probe majority intersects it at a
   node whose [read_index] covers the write (accepted if not yet
   committed there; [committed_upto] survives log truncation). *)
let read_index t =
  List.fold_left
    (fun m (i, _, _) -> max m i)
    (max (Store.committed_upto t.st) (Store.max_committed t.st))
    (Store.accepted_above t.st (Store.committed_upto t.st))

let send t dst msg =
  if dst = t.cfg.me then ()
  else Net.send t.net ~src:t.cfg.me ~dst ~port (Msg.encode msg)

let broadcast t msg =
  List.iter (fun p -> send t p msg) t.peers

(* A committed config entry takes effect when it is delivered — i.e. the
   old config's quorums are retired only after the new config commits.
   A replica configured out of the group demotes itself and stops
   campaigning (it keeps answering Learn so stragglers can catch up). *)
let apply_config t new_peers =
  t.peers <- new_peers;
  Store.set_group t.st new_peers;
  if not (List.mem t.cfg.me new_peers) && t.role <> Follower then begin
    t.role <- Follower;
    t.leader <- None;
    Hashtbl.reset t.inflight;
    t.recovery_queue <- [];
    t.campaign_open <- false;
    t.lead_after_catchup <- None;
    reset_leader_lease t
  end

let deliver t =
  while t.delivered < Store.committed_upto t.st do
    let i = t.delivered + 1 in
    t.delivered <- i;
    match Store.committed t.st i with
    | Some v when is_cfg_value v -> apply_config t (decode_cfg v)
    | Some v -> t.cbs.on_committed i v
    | None -> () (* subsumed by a checkpoint fast-forward *)
  done

(* Observing a higher ballot owned by someone else demotes us and, once
   per ballot, surfaces the new leader upstream. *)
let observe_ballot t (b : Ballot.t) =
  if Ballot.compare b t.ballot > 0 then begin
    t.ballot <- b;
    if b.Ballot.replica <> t.cfg.me then begin
      if t.role <> Follower then begin
        t.role <- Follower;
        Hashtbl.reset t.inflight;
        t.recovery_queue <- [];
        t.campaign_open <- false;
        t.lead_after_catchup <- None;
        reset_leader_lease t
      end;
      t.leader <- Some b.Ballot.replica;
      if Ballot.compare b t.announced > 0 then begin
        t.announced <- b;
        t.cbs.on_new_leader b.Ballot.replica
      end
    end
  end

let request_catch_up t from upto =
  if Store.committed_upto t.st < upto then
    send t from (Msg.Learn { from_instance = Store.committed_upto t.st + 1 })

(* --- Leadership --- *)

let rec drive_next_proposal t =
  match t.recovery_queue with
  | [] ->
    if t.role = Candidate then begin
      t.role <- Leader;
      t.leader <- Some t.cfg.me;
      t.cbs.on_become_leader ()
    end
  | (instance, value) :: rest ->
    if instance <= Store.committed_upto t.st then begin
      (* Got committed behind our back (e.g. learned during catch-up). *)
      t.recovery_queue <- rest;
      drive_next_proposal t
    end
    else start_accept t ~instance ~value ~recovery:true

and start_accept t ~instance ~value ~recovery =
  Store.set_accepted t.st instance t.ballot value;
  Obs.Metric.incr t.c_proposals;
  Hashtbl.replace t.inflight instance
    {
      fi_instance = instance;
      fi_ballot = t.ballot;
      fi_value = value;
      fi_started = now t;
      fi_acks = [ t.cfg.me ];
      fi_recovery = recovery;
    };
  (* Piggyback the open instances below this one (§3.1): a follower that
     missed an earlier Accept can still take the whole chain. *)
  let prior =
    Hashtbl.fold
      (fun i fi acc -> if i < instance then (i, fi.fi_value) :: acc else acc)
      t.inflight []
    |> List.sort compare
  in
  broadcast t (Msg.Accept { ballot = t.ballot; instance; value; prior });
  check_quorum t instance

and check_quorum t instance =
  match Hashtbl.find_opt t.inflight instance with
  | Some fi when List.length fi.fi_acks >= majority t ->
    Hashtbl.remove t.inflight instance;
    Obs.Metric.incr t.c_commits;
    let lat = now t -. fi.fi_started in
    Obs.Histogram.observe t.h_commit lat;
    let sp = Obs.spans t.obs in
    if Obs.Span.enabled sp then
      Obs.Span.complete sp ~cat:"paxos" ~pid:t.cfg.me ~name:"commit"
        ~ts:fi.fi_started ~dur:lat ();
    Store.commit t.st fi.fi_instance fi.fi_value;
    broadcast t (Msg.Commit { instance = fi.fi_instance; value = fi.fi_value });
    if fi.fi_recovery then begin
      t.recovery_queue <-
        List.filter (fun (i, _) -> i <> fi.fi_instance) t.recovery_queue;
      deliver t;
      drive_next_proposal t
    end
    else deliver t
  | Some _ | None -> ()

let campaign t =
  Obs.Metric.incr t.c_campaigns;
  t.role <- Candidate;
  t.leader <- None;
  Hashtbl.reset t.inflight;
  t.recovery_queue <- [];
  reset_leader_lease t;
  let b = Ballot.next t.ballot ~me:t.cfg.me in
  t.ballot <- b;
  Store.set_promised t.st b;
  t.campaign_promises <-
    [
      ( t.cfg.me,
        Store.accepted_above t.st (Store.committed_upto t.st),
        Store.committed_upto t.st );
    ];
  t.campaign_open <- true;
  broadcast t (Msg.Prepare { ballot = b })

let tally_promises t =
  if t.campaign_open && List.length t.campaign_promises >= majority t then begin
    t.campaign_open <- false;
    (* Catch up to the most advanced committed prefix we heard of. *)
    let max_upto =
      List.fold_left (fun m (_, _, u) -> max m u) 0 t.campaign_promises
    in
    (* Collect the highest-ballot accepted value per open instance: those
       may have been chosen and must be re-proposed, preserving the prefix
       condition. *)
    let best = Hashtbl.create 4 in
    List.iter
      (fun (_, entries, _) ->
        List.iter
          (fun (i, b, v) ->
            match Hashtbl.find_opt best i with
            | Some (b', _) when Ballot.compare b' b >= 0 -> ()
            | Some _ | None -> Hashtbl.replace best i (b, v))
          entries)
      t.campaign_promises;
    let queue =
      Hashtbl.fold (fun i (_, v) acc -> (i, v) :: acc) best []
      |> List.sort (fun (i, _) (j, _) -> compare i j)
    in
    t.recovery_queue <- queue;
    (* Leading before learning every committed instance would let us
       propose a fresh value at an already-decided instance: defer until
       our committed prefix reaches the majority's. *)
    if Store.committed_upto t.st >= max_upto then begin
      t.campaign_promises <- [];
      drive_next_proposal t
    end
    else begin
      t.lead_after_catchup <- Some max_upto;
      (match
         List.find_opt (fun (_, _, u) -> u = max_upto) t.campaign_promises
       with
      | Some (from, _, _) when from <> t.cfg.me ->
        request_catch_up t from max_upto
      | Some _ | None -> ());
      t.campaign_promises <- []
    end
  end

(* --- Message handling --- *)

let handle t ~src msg =
  if not t.stopped then begin
    match msg with
    | Msg.Prepare { ballot } ->
      (* Lease fencing: every member counted in a live lease quorum must
         refuse foreign candidates, or a new leader could commit writes
         while the old one still serves lease-protected local reads.  A
         follower with an active grant Nacks anyone but the grant holder;
         a leader holding the lease Nacks everyone (its implicit grant to
         itself).  Quorum intersection then blocks any Prepare majority
         until the lease has provably expired. *)
      let fenced =
        (grant_active t
        && ballot.Ballot.replica <> t.grant_ballot.Ballot.replica)
        || (t.role = Leader && ballot.Ballot.replica <> t.cfg.me
           && holds_lease t)
      in
      if (not fenced) && Ballot.compare ballot (Store.promised t.st) > 0
      then begin
        (* Promising a new leader invalidates any stale grant record. *)
        if ballot.Ballot.replica <> t.grant_ballot.Ballot.replica then begin
          t.grant_ballot <- Ballot.zero;
          t.grant_until <- neg_infinity
        end;
        Store.set_promised t.st ballot;
        observe_ballot t ballot;
        t.last_contact <- now t;
        if t.cfg.sync_latency > 0. then Engine.sleep t.cfg.sync_latency;
        send t src
          (Msg.Promise
             {
               ballot;
               accepted = Store.accepted_above t.st (Store.committed_upto t.st);
               committed_upto = Store.committed_upto t.st;
             })
      end
      else send t src (Msg.Nack { ballot = Store.promised t.st })
    | Msg.Promise { ballot; accepted; committed_upto } ->
      if
        t.role = Candidate
        && Ballot.compare ballot t.ballot = 0
        && not (List.exists (fun (f, _, _) -> f = src) t.campaign_promises)
      then begin
        t.campaign_promises <-
          (src, accepted, committed_upto) :: t.campaign_promises;
        tally_promises t
      end
    | Msg.Nack { ballot } -> observe_ballot t ballot
    | Msg.Accept { ballot; instance; value; prior } ->
      if Ballot.compare ballot (Store.promised t.st) >= 0 then begin
        Store.set_promised t.st ballot;
        observe_ballot t ballot;
        t.last_contact <- now t;
        (* Take the piggybacked chain first, then the new instance, but
           never leave a hole: each instance needs its predecessor
           committed or accepted. *)
        let contiguous i =
          i <= Store.committed_upto t.st + 1 || Store.accepted t.st (i - 1) <> None
        in
        List.iter
          (fun (i, v) ->
            if
              Store.committed t.st i = None
              && Store.accepted t.st i = None
              && contiguous i
            then begin
              Store.set_accepted t.st i ballot v;
              send t src (Msg.Accepted { ballot; instance = i })
            end)
          (List.sort compare prior);
        if contiguous instance then begin
          Store.set_accepted t.st instance ballot value;
          if t.cfg.sync_latency > 0. then Engine.sleep t.cfg.sync_latency;
          send t src (Msg.Accepted { ballot; instance })
        end
      end
      else send t src (Msg.Nack { ballot = Store.promised t.st })
    | Msg.Accepted { ballot; instance } -> (
      match Hashtbl.find_opt t.inflight instance with
      | Some fi
        when Ballot.compare fi.fi_ballot ballot = 0
             && not (List.mem src fi.fi_acks) ->
        fi.fi_acks <- src :: fi.fi_acks;
        Obs.Metric.incr t.c_acks;
        check_quorum t instance
      | Some _ | None -> ())
    | Msg.Commit { instance; value } ->
      Store.commit t.st instance value;
      deliver t
    | Msg.Heartbeat { ballot; committed_upto; hb_seq } ->
      if Ballot.compare ballot (Store.promised t.st) >= 0 then begin
        Store.set_promised t.st ballot;
        observe_ballot t ballot;
        t.last_contact <- now t;
        if lease_on t then begin
          (* Grant (or renew) the lease: promise, on our clock, not to
             promise anyone else for [lease_duration] from receipt. *)
          t.grant_ballot <- ballot;
          t.grant_until <- local_now t +. t.cfg.lease_duration;
          Obs.Metric.incr t.c_lease_grants;
          send t src (Msg.Lease_grant { ballot; hb_seq })
        end;
        request_catch_up t src committed_upto
      end
      else send t src (Msg.Nack { ballot = Store.promised t.st })
    | Msg.Lease_grant { ballot; hb_seq } ->
      if t.role = Leader && Ballot.compare ballot t.ballot = 0 then begin
        match Hashtbl.find_opt t.hb_sent hb_seq with
        | Some sent ->
          Obs.Metric.incr t.c_lease_renewals;
          let newer =
            match Hashtbl.find_opt t.grants src with
            | Some cur -> sent > cur
            | None -> true
          in
          if newer then Hashtbl.replace t.grants src sent
        | None -> ()  (* send-time record already pruned: too old to use *)
      end
    | Msg.Learn { from_instance } ->
      let upto =
        min (Store.committed_upto t.st) (from_instance + learn_batch - 1)
      in
      if upto >= from_instance then
        send t src
          (Msg.Learn_reply
             { entries = Store.committed_range t.st ~from_i:from_instance ~upto })
    | Msg.Learn_reply { entries } ->
      List.iter (fun (i, v) -> Store.commit t.st i v) entries;
      deliver t;
      (match t.lead_after_catchup with
      | Some target when Store.committed_upto t.st >= target ->
        t.lead_after_catchup <- None;
        if t.role = Candidate then drive_next_proposal t
      | Some target ->
        (* keep pulling until we reach the target *)
        if entries <> [] then request_catch_up t src target
      | None ->
        (* There may be more to learn. *)
        if entries <> [] then
          request_catch_up t src (Store.committed_upto t.st + learn_batch))
  end

let create net cfg st cbs =
  let eng = Net.engine net in
  let obs = Engine.obs eng in
  let labels = [ ("node", string_of_int cfg.me) ] in
  let t =
    {
      net;
      cfg;
      st;
      cbs;
      rng = Rng.split (Engine.rng eng);
      role = Follower;
      ballot = Store.promised st;
      announced = Ballot.zero;
      leader = None;
      last_contact = Engine.clock eng;
      peers =
        (match Store.group st with Some g -> g | None -> cfg.peers);
      reconfig_at = 0;
      campaign_promises = [];
      campaign_open = false;
      lead_after_catchup = None;
      recovery_queue = [];
      inflight = Hashtbl.create 4;
      delivered = Store.committed_upto st;
      stopped = false;
      grant_ballot = Ballot.zero;
      grant_until = neg_infinity;
      hb_seq = 0;
      hb_sent = Hashtbl.create 16;
      grants = Hashtbl.create 4;
      lease_was_valid = false;
      obs;
      c_proposals = Obs.counter obs ~subsystem:"paxos" ~labels "proposals";
      c_commits = Obs.counter obs ~subsystem:"paxos" ~labels "commits";
      c_acks = Obs.counter obs ~subsystem:"paxos" ~labels "accept_acks";
      c_campaigns = Obs.counter obs ~subsystem:"paxos" ~labels "campaigns";
      c_lease_grants =
        Obs.counter obs ~subsystem:"paxos" ~labels "lease_grants";
      c_lease_renewals =
        Obs.counter obs ~subsystem:"paxos" ~labels "lease_renewals";
      c_lease_expiries =
        Obs.counter obs ~subsystem:"paxos" ~labels "lease_expiries";
      h_commit = Obs.histogram obs ~subsystem:"paxos" ~labels "commit_latency";
    }
  in
  Net.register net ~node:cfg.me ~port (fun ~src payload ->
      match Msg.decode payload with
      | msg -> handle t ~src msg
      | exception Codec.Decode_error _ -> ());
  t

let start t =
  let eng = Net.engine t.net in
  (* Election watchdog. *)
  ignore
    (Engine.spawn eng ~node:t.cfg.me ~name:"paxos.election" (fun () ->
         let timeout = ref (t.cfg.election_timeout *. (1. +. Rng.float t.rng 1.)) in
         while not t.stopped do
           Engine.sleep (t.cfg.election_timeout /. 3.);
           if
             (not t.stopped) && t.role <> Leader && is_member t
             && now t -. t.last_contact > !timeout
             (* an active grant is proof of recent leader contact: do not
                campaign against a lease we ourselves extended *)
             && not (grant_active t)
           then begin
             timeout := t.cfg.election_timeout *. (1. +. Rng.float t.rng 1.);
             t.last_contact <- now t;
             campaign t;
             (* A lone replica in a single-node group elects itself. *)
             tally_promises t
           end
         done));
  (* Leader heartbeats.  Also retransmits Accepts for instances that have
     been open longer than a heartbeat period: the initial broadcast is
     the only other send, so on a lossy network a dropped Accept (or
     Accepted ack) would otherwise wedge the instance forever — and with
     [max_inflight = 1] wedge the whole proposer behind it.  Acceptors
     treat a repeat Accept idempotently and re-ack; [fi_acks] dedups. *)
  ignore
    (Engine.spawn eng ~node:t.cfg.me ~name:"paxos.heartbeat" (fun () ->
         while not t.stopped do
           Engine.sleep t.cfg.heartbeat_period;
           if (not t.stopped) && t.role = Leader then begin
             t.hb_seq <- t.hb_seq + 1;
             Hashtbl.replace t.hb_sent t.hb_seq (local_now t);
             (* keep a bounded window of send-time records *)
             Hashtbl.remove t.hb_sent (t.hb_seq - 64);
             broadcast t
               (Msg.Heartbeat
                  {
                    ballot = t.ballot;
                    committed_upto = Store.committed_upto t.st;
                    hb_seq = t.hb_seq;
                  });
             Hashtbl.iter
               (fun _ fi ->
                 if now t -. fi.fi_started >= t.cfg.heartbeat_period then
                   broadcast t
                     (Msg.Accept
                        {
                          ballot = fi.fi_ballot;
                          instance = fi.fi_instance;
                          value = fi.fi_value;
                          prior = [];
                        }))
               t.inflight
           end
         done))

let stop t = t.stopped <- true

let propose t value =
  if t.stopped || not (can_propose t) then false
  else begin
    start_accept t ~instance:(next_instance t) ~value ~recovery:false;
    true
  end

(* One membership change at a time: the new list must differ from the
   current one by exactly one replica (an add XOR a remove), so the old
   and new majorities intersect and no two leaders of adjacent configs
   can commit independently.  Replace = add, then remove. *)
let valid_transition current proposed =
  let sorted_distinct l = List.sort_uniq compare l in
  let cur = sorted_distinct current and next = sorted_distinct proposed in
  List.length next = List.length proposed
  && next <> []
  &&
  let added = List.filter (fun p -> not (List.mem p cur)) next in
  let removed = List.filter (fun p -> not (List.mem p next)) cur in
  match (added, removed) with [ _ ], [] | [], [ _ ] -> true | _ -> false

let propose_reconfig t new_peers =
  if
    t.stopped
    || not (can_propose t)
    || in_flight t (* no app entry may straddle the config switch *)
    || not (valid_transition t.peers new_peers)
  then false
  else begin
    let instance = next_instance t in
    t.reconfig_at <- instance;
    start_accept t ~instance ~value:(encode_cfg new_peers) ~recovery:false;
    true
  end

let committed_value t i =
  match Store.committed t.st i with
  | Some v when is_cfg_value v -> None (* internal config entry *)
  | r -> r
