(** Acceptor/learner durable state.

    Models the stable storage a real Paxos acceptor must write before
    answering: the benchmark harness keeps this object across
    {!Sim.Engine.crash_node}/restart cycles, so a restarted replica
    remembers its promises and accepted values, as safety requires.
    Instances are numbered from 1. *)

type t

val create : unit -> t
val promised : t -> Ballot.t
val set_promised : t -> Ballot.t -> unit

val accepted : t -> int -> (Ballot.t * string) option
val set_accepted : t -> int -> Ballot.t -> string -> unit

val accepted_above : t -> int -> (int * Ballot.t * string) list
(** Accepted entries with instance strictly above the argument, ascending. *)

val committed : t -> int -> string option
val commit : t -> int -> string -> unit
val committed_upto : t -> int
(** Highest instance such that all instances [1..i] are committed. *)

val max_committed : t -> int
(** Highest instance committed at all — can exceed {!committed_upto} when
    pipelined commits land out of order. *)

val fast_forward : t -> int -> unit
(** Advance the committed prefix to at least the given instance without
    values — used when a checkpoint subsumes a GC'd prefix. *)

val group : t -> int list option
(** The replica-group membership as of the latest committed
    reconfiguration, or [None] if the group never changed.  Stored here
    so a restarted replica rejoins under the config it last applied, not
    the one it was constructed with. *)

val set_group : t -> int list -> unit

val committed_range : t -> from_i:int -> upto:int -> (int * string) list
val truncate_below : t -> int -> unit
(** Garbage-collect committed values below the given instance (kept by a
    checkpoint). *)
