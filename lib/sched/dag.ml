(* CBASE-style conflict DAG ("Rethinking State-Machine Replication for
   Parallelism", Marandi et al.): committed requests are inserted in log
   order; a request depends on the latest earlier uncompleted request
   claiming any of its conflict keys.  Chaining through per-key tails is
   enough — any two requests sharing a key sit on that key's chain, so
   transitivity gives the full conflict order.  Completed nodes are
   trimmed immediately: the resident graph is O(in-flight requests). *)

type 'a node = {
  id : int;
  keys : string list;
  payload : 'a;
  mutable deps : int;  (* uncompleted predecessors *)
  mutable succs : 'a node list;
  mutable state : [ `Waiting | `Ready | `Running | `Done ];
}

type 'a t = {
  mutable next_id : int;
  tails : (string, 'a node) Hashtbl.t;  (* per-key last inserted, live *)
  key_live : (string, int) Hashtbl.t;  (* uncompleted claims per key *)
  live : (int, 'a node) Hashtbl.t;  (* uncompleted nodes, for barriers *)
  ready : 'a node Queue.t;  (* FIFO among ready, in insertion order *)
  mutable barrier_tail : 'a node option;
  mutable n_ready : int;
}

let create () =
  {
    next_id = 0;
    tails = Hashtbl.create 64;
    key_live = Hashtbl.create 64;
    live = Hashtbl.create 64;
    ready = Queue.create ();
    barrier_tail = None;
    n_ready = 0;
  }

let payload n = n.payload
let size t = Hashtbl.length t.live
let ready_width t = t.n_ready

let mark_ready t n =
  n.state <- `Ready;
  Queue.push n t.ready;
  t.n_ready <- t.n_ready + 1

(* Add an edge [pred -> n] unless pred is done or already counted.
   Predecessor lists are tiny (one candidate per key), so the linear
   [succs] membership scan via [seen] stays cheap. *)
let add_dep seen n pred =
  if pred.state <> `Done && pred.id <> n.id && not (List.memq pred !seen)
  then begin
    seen := pred :: !seen;
    pred.succs <- n :: pred.succs;
    n.deps <- n.deps + 1
  end

let fresh t keys payload =
  let n =
    { id = t.next_id; keys; payload; deps = 0; succs = []; state = `Waiting }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.live n.id n;
  n

let insert t ~keys payload =
  let n = fresh t keys payload in
  let seen = ref [] in
  (match t.barrier_tail with
  | Some b -> add_dep seen n b
  | None -> ());
  List.iter
    (fun k ->
      (match Hashtbl.find_opt t.tails k with
      | Some tail -> add_dep seen n tail
      | None -> ());
      Hashtbl.replace t.tails k n;
      Hashtbl.replace t.key_live k
        (1 + Option.value (Hashtbl.find_opt t.key_live k) ~default:0))
    keys;
  if n.deps = 0 then mark_ready t n;
  n

(* A barrier conflicts with everything: it runs only after every earlier
   uncompleted node, and every later insert depends on it (directly via
   [barrier_tail]; per-key tails keep working across it because a
   later same-key node orders behind both its key tail and the
   barrier). *)
let insert_barrier t payload =
  let n = fresh t [] payload in
  let seen = ref [] in
  Hashtbl.iter (fun _ pred -> add_dep seen n pred) t.live;
  t.barrier_tail <- Some n;
  if n.deps = 0 then mark_ready t n;
  n

let take_ready t =
  match Queue.take_opt t.ready with
  | None -> None
  | Some n ->
    t.n_ready <- t.n_ready - 1;
    n.state <- `Running;
    Some n

let complete t n =
  if n.state = `Done then invalid_arg "Dag.complete: node already completed";
  n.state <- `Done;
  Hashtbl.remove t.live n.id;
  List.iter
    (fun k ->
      (match Hashtbl.find_opt t.tails k with
      | Some tail when tail == n -> Hashtbl.remove t.tails k
      | Some _ | None -> ());
      match Hashtbl.find_opt t.key_live k with
      | Some 1 -> Hashtbl.remove t.key_live k
      | Some c -> Hashtbl.replace t.key_live k (c - 1)
      | None -> ())
    n.keys;
  (match t.barrier_tail with
  | Some b when b == n -> t.barrier_tail <- None
  | Some _ | None -> ());
  let newly_ready =
    List.filter
      (fun s ->
        s.deps <- s.deps - 1;
        s.deps = 0 && s.state = `Waiting)
      n.succs
  in
  n.succs <- [];
  (* succs accumulated in reverse insertion order: restore log order so
     the ready queue stays FIFO-by-insertion among equals *)
  let newly_ready = List.sort (fun a b -> compare a.id b.id) newly_ready in
  List.iter (mark_ready t) newly_ready

let busy t keys =
  t.barrier_tail <> None
  || List.exists (fun k -> Hashtbl.mem t.key_live k) keys

let idle t = Hashtbl.length t.live = 0
