(** Per-application conflict-key oracles — the one source of truth
    shared by Eve's mixer, the check harness and both [lib/sched]
    execution stacks (DESIGN.md §12).

    An oracle maps a request {e payload} to the conflict keys it may
    touch; two requests conflict iff their key sets intersect.  An
    oracle must over-approximate: missing a real conflict breaks
    determinism (sched stacks) or costs a rollback (Eve), while an extra
    key only costs parallelism.  The empty list means "no known keys":
    {!Exec} treats such requests as conflicting with {e everything}
    (safe serialization), whereas Eve's optimistic mixer lets them into
    any batch and leans on its verify stage. *)

type oracle = string -> string list

val kv : oracle
(** SET/DEL/GET/RMW claim their key, MGET claims every key it reads;
    anything else claims nothing. *)

val counter : oracle
(** Every op claims {!counter_key}: a counter is one register. *)

val counter_key : string

val session_key : int -> string
(** The per-client ordering key ["\x00session:<client>"] prepended by
    {!with_session} (NUL-prefixed: application grammars are ASCII, so it
    can never collide with an app-level key). *)

val with_session :
  obs:Obs.t -> subsystem:string -> node:int -> oracle -> oracle
(** Wrap an app-level oracle with session-envelope handling: enveloped
    requests get {!session_key} prepended and their payload passed to
    the oracle; raw requests pass through.  A corrupt envelope (magic
    byte present, body undecodable) degrades to payload-only keys and
    bumps [<subsystem>/envelope_decode_errors] for the given node. *)
