(* A replicated conflict-aware parallel SMR stack: consensus-execute
   like [Smr] (leader batches, Paxos orders, all replicas execute), but
   the committed stream feeds {!Exec} — a conflict DAG ([Cbase]) or
   class-to-worker queues ([Early]) — instead of a single executor
   fiber.  No recording, no trace shipping: determinism comes from the
   conflict oracle alone (commuting requests may interleave freely;
   conflicting ones execute in log order on every replica).

   Structure deliberately mirrors [lib/smr/smr.ml]: same batcher, same
   timer-as-pseudo-request scheme (a timer tick becomes an {!Exec}
   barrier, so every replica flushes at the same log position), same
   frontend registration.  What changes is the execution stage and the
   read path: a lease/quorum read parks until no in-flight write claims
   one of its conflict keys. *)

open Sim
module R = Rex_core

(* Bigger than Smr's 64: with one instance in flight the agreement
   round-trip is paid per batch, and unlike record/replay nothing here
   grows with batch size, so large batches amortize the RTT and keep
   the worker pool fed. *)
let batch_max = 256
let timer_prefix = "\x00TIMER:"

type stats = {
  requests_executed : int;
  replies_sent : int;
  queries_served : int;
  proposals_sent : int;
  proposal_bytes : int;
  exec : Exec.stats;
}

type t = {
  eng : Engine.t;
  net : Net.t;
  cfg : R.Config.t;
  node_id : int;
  pstore : Paxos.Store.t;
  app : R.App.t;  (* session-wrapped: see [create] *)
  session : R.Session.Table.t;
  timers : R.Api.timer_spec array;
  exec : Exec.t;
  oracle : Conflict.oracle;  (* app-level, for read-key extraction *)
  mutable pax : Paxos.Replica.t option;
  mutable front : R.Frontend.t option;
  mutable leader : bool;
  mutable leader_epoch : int;
  queue : (string * (string option -> unit)) Queue.t;
  mutable inflight : (string * (string option -> unit) option list) option;
  exec_queue : (int * (string * (string option -> unit) option) list) Queue.t;
  mutable exec_waiters : Engine.waker list;
  applied_q : (int * int ref) Queue.t;  (* instance, requests left *)
  mutable applied : int;  (* highest instance fully executed locally *)
  mutable st_replies : int;
  mutable st_queries : int;
  mutable st_proposals : int;
  mutable st_proposal_bytes : int;
}

let node t = t.node_id
let is_primary t = t.leader
let session_table t = t.session
let exec t = t.exec

let frontend t =
  match t.front with
  | Some f -> f
  | None -> invalid_arg "Sched.Server.frontend: not registered"

let app_digest t = t.app.R.App.digest ()
let executed_requests t = (Exec.stats t.exec).Exec.executed

let stats t =
  {
    requests_executed = (Exec.stats t.exec).Exec.executed;
    replies_sent = t.st_replies;
    queries_served = t.st_queries;
    proposals_sent = t.st_proposals;
    proposal_bytes = t.st_proposal_bytes;
    exec = Exec.stats t.exec;
  }

let encode_batch = R.Frontend.encode_batch
let decode_batch = R.Frontend.decode_batch

let wake_dispatcher t =
  let ws = t.exec_waiters in
  t.exec_waiters <- [];
  List.iter Engine.wake ws

let is_timer request =
  String.length request > String.length timer_prefix
  && String.sub request 0 (String.length timer_prefix) = timer_prefix

(* Completions arrive out of order (that's the point — non-conflicting
   requests of consecutive batches overlap), but commits arrive in order
   ([max_inflight = 1]): each completion decrements its own instance's
   counter, and the applied index advances by draining fully-executed
   instances from the head of [applied_q]. *)
let advance_applied t =
  let rec advance () =
    match Queue.peek_opt t.applied_q with
    | Some (instance, remaining) when !remaining = 0 ->
      ignore (Queue.pop t.applied_q);
      if instance > t.applied then t.applied <- instance;
      advance ()
    | Some _ | None -> ()
  in
  advance ()

(* A single dispatcher fiber admits committed batches into the Exec
   stage strictly in log order (admission may park on the pool mutex;
   funnelling through one fiber keeps instance i fully admitted before
   i+1 regardless). *)
let dispatcher_loop t () =
  let rec next_batch () =
    match Queue.take_opt t.exec_queue with
    | Some b -> b
    | None ->
      Engine.park (fun w -> t.exec_waiters <- w :: t.exec_waiters);
      next_batch ()
  in
  let admit_one remaining (request, cb) =
    if is_timer request then begin
      let idx =
        int_of_string
          (String.sub request (String.length timer_prefix)
             (String.length request - String.length timer_prefix))
      in
      Exec.admit_barrier t.exec (fun () ->
          if idx >= 0 && idx < Array.length t.timers then
            t.timers.(idx).R.Api.t_callback ();
          decr remaining;
          advance_applied t)
    end
    else
      Exec.admit t.exec request (fun resp ->
          (match cb with
          | Some cb ->
            t.st_replies <- t.st_replies + 1;
            cb (Some resp)
          | None -> ());
          decr remaining;
          advance_applied t)
  in
  let rec loop () =
    let instance, batch = next_batch () in
    let n = List.length batch in
    if n = 0 then begin
      if instance > t.applied then t.applied <- instance
    end
    else begin
      let remaining = ref n in
      Queue.push (instance, remaining) t.applied_q;
      List.iter (admit_one remaining) batch
    end;
    loop ()
  in
  loop ()

let on_committed t instance value =
  match decode_batch value with
  | exception Codec.Decode_error _ -> ()
  | reqs ->
    let cbs =
      match t.inflight with
      | Some (enc, cbs) when enc = value ->
        t.inflight <- None;
        cbs
      | Some _ | None -> List.map (fun _ -> None) reqs
    in
    let cbs =
      if List.length cbs = List.length reqs then cbs
      else List.map (fun _ -> None) reqs
    in
    Queue.push (instance, List.combine reqs cbs) t.exec_queue;
    wake_dispatcher t

(* Rolling-upgrade support: a replacement server created over the old
   server's store re-admits the committed prefix through the scheduler
   to rebuild app and session state.  Call between [create] and
   [start]. *)
let replay t = Paxos.Replica.replay_committed t.pstore (on_committed t)

let spawn_leader_fibers t =
  t.leader_epoch <- t.leader_epoch + 1;
  let epoch = t.leader_epoch in
  let live () = t.leader && t.leader_epoch = epoch in
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"sched.batcher" (fun () ->
         while live () do
           Engine.sleep t.cfg.R.Config.propose_interval;
           if live () && t.inflight = None && not (Queue.is_empty t.queue) then begin
             let pax = Option.get t.pax in
             if Paxos.Replica.is_leader pax && not (Paxos.Replica.in_flight pax)
             then begin
               let rec drain k acc =
                 if k = 0 then List.rev acc
                 else
                   match Queue.take_opt t.queue with
                   | None -> List.rev acc
                   | Some r -> drain (k - 1) (r :: acc)
               in
               let items = drain batch_max [] in
               if items <> [] then begin
                 let reqs = List.map fst items in
                 let enc = encode_batch reqs in
                 if Paxos.Replica.propose pax enc then begin
                   t.inflight <- Some (enc, List.map (fun (_, cb) -> Some cb) items);
                   t.st_proposals <- t.st_proposals + 1;
                   t.st_proposal_bytes <- t.st_proposal_bytes + String.length enc
                 end
                 else List.iter (fun (_, cb) -> cb None) items
               end
             end
           end
         done));
  (* Timers become proposed pseudo-requests → Exec barriers: every
     replica runs the callback at the same log position, so e.g. kyoto's
     autosync flushes identical dirty sets everywhere. *)
  Array.iteri
    (fun idx spec ->
      ignore
        (Engine.spawn t.eng ~node:t.node_id
           ~name:("sched.timer." ^ spec.R.Api.t_name)
           (fun () ->
             while live () do
               Engine.sleep spec.R.Api.t_interval;
               if live () then
                 Queue.push
                   (Printf.sprintf "%s%d" timer_prefix idx, fun _ -> ())
                   t.queue
             done)))
    t.timers

let create net rpc cfg ~node ~paxos_store ~mode ~conflict factory =
  let eng = Net.engine net in
  let backend = Par.Backend.of_sim eng in
  (* Worker fibers are never bound to trace slots: the app's sync
     wrappers take the native path, exactly like [Smr]. *)
  let rt = Rexsync.Runtime.create backend ~node ~slots:1 in
  let api = R.Api.make rt in
  let stack = "sched-" ^ Exec.mode_name mode in
  let session = R.Session.Table.create (Engine.obs eng) ~stack ~node () in
  (* The session-wrapped oracle prepends the per-client ordering key, so
     one client's requests never execute concurrently with each other —
     that is what keeps the in-execute duplicate check deterministic
     under parallel execution. *)
  let app = R.Session.wrap ~table:session ~dedup_in_execute:true (factory api) in
  let timers = Array.of_list (R.Api.seal api) in
  let workers = max 1 cfg.R.Config.workers in
  let exec =
    Exec.create backend ~node ~mode ~workers
      ~conflict:
        (Conflict.with_session ~obs:(Engine.obs eng) ~subsystem:"sched" ~node
           conflict)
      ~execute:(fun request -> app.R.App.execute ~request)
  in
  let t =
    {
      eng;
      net;
      cfg;
      node_id = node;
      pstore = paxos_store;
      app;
      session;
      timers;
      exec;
      oracle = conflict;
      pax = None;
      front = None;
      leader = false;
      leader_epoch = 0;
      queue = Queue.create ();
      inflight = None;
      exec_queue = Queue.create ();
      exec_waiters = [];
      applied_q = Queue.create ();
      applied = 0;
      st_replies = 0;
      st_queries = 0;
      st_proposals = 0;
      st_proposal_bytes = 0;
    }
  in
  (* A read on keys K is served locally only after every in-flight write
     claiming a key in K has executed — both the lease fast path and the
     quorum path route through [r_read_local]. *)
  let read_local request cb =
    Exec.park_until_quiet t.exec (t.oracle request);
    t.st_queries <- t.st_queries + 1;
    cb (Some (t.app.R.App.query ~request))
  in
  t.front <-
    Some
      (R.Frontend.register rpc ~node ~table:session
         ?admission:
           (R.Config.admission cfg ~queue_depth:(fun () ->
                Queue.length t.queue))
         ~reads:
           {
             R.Frontend.r_peers =
               (fun () ->
                 match t.pax with
                 | Some p -> Paxos.Replica.peers p
                 | None -> cfg.R.Config.replicas);
             r_lease_valid =
               (fun () ->
                 t.leader
                 &&
                 match t.pax with
                 | Some p -> Paxos.Replica.holds_lease p
                 | None -> false);
             r_read_index =
               (fun () ->
                 match t.pax with
                 | Some p -> Paxos.Replica.read_index p
                 | None -> 0);
             r_applied_upto = (fun () -> t.applied);
             r_read_local = read_local;
             r_lease_unsafe = cfg.R.Config.lease_unsafe;
           }
         {
           R.Frontend.is_leader = (fun () -> t.leader);
           leader_hint =
             (fun () ->
               match t.pax with
               | Some p -> Paxos.Replica.leader_hint p
               | None -> None);
           enqueue = (fun request cb -> Queue.push (request, cb) t.queue);
           query =
             (fun request ->
               t.st_queries <- t.st_queries + 1;
               Some (t.app.R.App.query ~request));
         });
  t

let start t =
  let pax_cfg =
    {
      Paxos.Replica.me = t.node_id;
      peers = t.cfg.R.Config.replicas;
      heartbeat_period = t.cfg.R.Config.heartbeat_period;
      election_timeout = t.cfg.R.Config.election_timeout;
      max_inflight = 1;
      sync_latency = 0.;
      lease_duration = t.cfg.R.Config.lease_duration;
      lease_drift_bound = t.cfg.R.Config.lease_drift_bound;
    }
  in
  let cbs =
    {
      Paxos.Replica.on_committed = (fun i v -> on_committed t i v);
      on_become_leader =
        (fun () ->
          t.leader <- true;
          spawn_leader_fibers t);
      on_new_leader =
        (fun _ ->
          if t.leader then begin
            t.leader <- false;
            (match t.inflight with
            | Some (_, cbs) ->
              List.iter (function Some cb -> cb None | None -> ()) cbs
            | None -> ());
            t.inflight <- None;
            Queue.iter (fun (_, cb) -> cb None) t.queue;
            Queue.clear t.queue
          end);
    }
  in
  let pax = Paxos.Replica.create t.net pax_cfg t.pstore cbs in
  t.pax <- Some pax;
  Paxos.Replica.start pax;
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"sched.dispatcher"
       (dispatcher_loop t))

let submit t request cb =
  if not t.leader then cb None
  else Queue.push (request, cb) t.queue

let query t request =
  t.st_queries <- t.st_queries + 1;
  t.app.R.App.query ~request

(* Checkpoints ride the existing codec path: drain the execution stage
   to a quiescent cut (every admitted request executed — a consistent
   log prefix), then snapshot app + session table exactly like the other
   stacks.  Callable only from a fiber (draining parks). *)
let checkpoint t =
  Exec.drain t.exec;
  let sink = Codec.sink ~initial_capacity:4096 () in
  t.app.R.App.write_checkpoint sink;
  Codec.contents sink

let restore t snap =
  Exec.drain t.exec;
  t.app.R.App.read_checkpoint (Codec.source snap)
