(** The conflict-aware execution stage shared by both sched stacks
    (DESIGN.md §12): a pool of worker fibers on a {!Par.Backend.t} —
    deterministic fibers on the simulator, real domains on [Par.Domains]
    — executing an ordered request stream in parallel wherever the
    conflict oracle allows.

    [Cbase] dispatches from a conflict DAG ({!Dag}); [Early] maps
    conflict classes to workers at admission time, synchronizing
    multi-class requests with rendezvous barriers.  Requests whose
    oracle returns [[]] (no known keys) serialize against everything.

    Admission order is execution order wherever conflicts exist, so a
    serial replay of the same stream yields the same state. *)

type mode = Cbase | Early

val mode_name : mode -> string
val mode_of_string : string -> mode option

type t

val create :
  Par.Backend.t ->
  node:int ->
  mode:mode ->
  workers:int ->
  conflict:(string -> string list) ->
  execute:(string -> string) ->
  t
(** Spawns [workers] worker fibers on [backend] for [node].  [conflict]
    is the (session-wrapped) oracle; [execute] the app step function.
    Raises [Invalid_argument] when [workers <= 0]. *)

val admit : t -> string -> (string -> unit) -> unit
(** Admit the next committed request (call in log order).  The callback
    fires with the response on the executing worker fiber, after
    bookkeeping — safe to complete client RPCs from. *)

val admit_barrier : t -> (unit -> unit) -> unit
(** Admit a global barrier (timer tick): runs after everything admitted
    before it, before everything admitted after. *)

val park_until_quiet : t -> string list -> unit
(** Block the calling fiber until no admitted-but-uncompleted task
    claims any of [keys] ([[]] = until fully idle) — the read-routing
    gate parking lease/quorum reads behind in-flight conflicting
    writes. *)

val busy : t -> string list -> bool
val drain : t -> unit
(** Block until everything admitted so far has executed (checkpoint
    cut points). *)

val pending : t -> int
val mode : t -> mode

val shutdown : t -> unit
(** Ask idle workers to exit once the queues are empty (lets
    [Par.Domains.join] return in benches; unnecessary on sim). *)

type stats = {
  executed : int;
  barriers : int;
  barrier_stalls : int;
  graph_max : int;
  ready_max : int;
  busy_time : float;  (** summed worker-seconds spent executing *)
}

val stats : t -> stats
