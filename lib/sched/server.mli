(** Conflict-aware parallel SMR stacks behind the shared frontend
    (DESIGN.md §12): consensus-execute like {!Smr}, but committed
    requests feed {!Exec} — a CBASE-style conflict DAG ([Cbase]) or
    early class-to-worker scheduling ([Early]) — instead of a single
    sequential executor.  No record/replay: commuting requests
    interleave freely, conflicting ones execute in log order on every
    replica, so state stays identical without a trace.

    Background timers are proposed pseudo-requests executed as global
    barriers: every replica runs the callback at the same log position.
    Lease/quorum reads park until no in-flight write claims one of the
    read's conflict keys. *)

type t

type stats = {
  requests_executed : int;
  replies_sent : int;
  queries_served : int;
  proposals_sent : int;
  proposal_bytes : int;
  exec : Exec.stats;
}

val create :
  Sim.Net.t ->
  Sim.Rpc.t ->
  Rex_core.Config.t ->
  node:int ->
  paxos_store:Paxos.Store.t ->
  mode:Exec.mode ->
  conflict:Conflict.oracle ->
  Rex_core.App.factory ->
  t
(** [Config.workers] sizes the worker pool (min 1); [conflict] is the
    app-level oracle, wrapped with {!Conflict.with_session} internally.
    [propose_interval] paces batching, as in the other stacks. *)

val start : t -> unit

val replay : t -> unit
(** Queue the store's committed prefix for re-execution — the rolling
    upgrade path: a replacement server [create]d over the retired
    server's {!Paxos.Store.t} calls this before {!start} to rebuild app
    and session state (this stack has no checkpoint recovery). *)

val node : t -> int
val is_primary : t -> bool
val session_table : t -> Rex_core.Session.Table.t
val frontend : t -> Rex_core.Frontend.t
val exec : t -> Exec.t

val submit : t -> string -> (string option -> unit) -> unit
val query : t -> string -> string
val app_digest : t -> string
val stats : t -> stats
val executed_requests : t -> int

val checkpoint : t -> string
(** Drain the execution stage to a quiescent cut, then snapshot app +
    session table through the codec path.  Call from a fiber. *)

val restore : t -> string -> unit
