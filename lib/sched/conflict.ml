module R = Rex_core

type oracle = string -> string list

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* The kv grammar shared by every key/value store in lib/apps (kyoto,
   leveldb, memcache adapters all parse the same verbs).  MGET claims
   every key it touches; a request outside the grammar claims nothing —
   callers that need safety for unparseable requests must treat [] as
   "conflicts with everything" (Exec does; Eve's optimistic mixer lets
   them ride and relies on the verify stage). *)
let kv req =
  match words req with
  | "SET" :: k :: _ | "DEL" :: k :: _ | "GET" :: k :: _ | "RMW" :: k :: _ ->
    [ k ]
  | "MGET" :: keys -> keys
  | _ -> []

(* The INC/GET counter of the check harness and the dedup smoke: one
   logical register, every op conflicts with every other. *)
let counter_key = "ctr"
let counter _req = [ counter_key ]

let session_key client = "\x00session:" ^ string_of_int client

(* Session-envelope handling shared by Eve's mixer and both sched
   stacks: a decoded envelope prepends the per-client ordering key (a
   client's requests must never execute concurrently with each other —
   the in-execute duplicate check is only deterministic when a client's
   requests are totally ordered), then hands the payload to the
   app-level oracle.  A raw (un-enveloped) request passes straight
   through.  A request that *looks* enveloped (magic byte) but fails to
   decode degrades to payload-only keys — that silently drops the
   per-client ordering key, so the degradation is counted in
   [<subsystem>/envelope_decode_errors] instead of being swallowed. *)
let with_session ~obs ~subsystem ~node oracle =
  let c_decode_errors =
    Obs.counter obs ~subsystem
      ~labels:[ ("node", string_of_int node) ]
      "envelope_decode_errors"
  in
  fun req ->
    match R.Session.Envelope.decode req with
    | Some e ->
      session_key e.R.Session.Envelope.client
      :: oracle e.R.Session.Envelope.payload
    | None -> oracle req
    | exception Codec.Decode_error _ ->
      Obs.Metric.incr c_decode_errors;
      oracle req
