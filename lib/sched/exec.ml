(* The conflict-aware execution stage shared by both sched stacks,
   running on either Par backend (sim fibers or real domains):

   - [Cbase]: committed requests enter a conflict DAG ({!Dag}) in log
     order; a pool of worker fibers pulls ready nodes and trims them on
     completion (graph dispatch).
   - [Early]: requests are assigned to worker queues at ordering time
     from their conflict-key classes (class = key hash mod workers); a
     request spanning several classes becomes a rendezvous barrier — all
     involved workers meet at it, the last arrival executes, the rest
     stall (Alchieri et al., "Early Scheduling in Parallel SMR").

   Requests with no known conflict keys ([]) are serialized against
   everything (a DAG barrier / an all-workers rendezvous): safety for
   timer ticks and unparseable requests.

   One backend mutex guards all scheduler state; execution itself runs
   lock-free on the worker fiber.  Contextual ops (park inside cond
   waits, Engine.work in app code) are effects handled by whichever
   backend runs the fiber, so the same code is deterministic on the
   simulator and truly parallel on domains. *)

type mode = Cbase | Early

let mode_name = function Cbase -> "cbase" | Early -> "early"
let mode_of_string = function
  | "cbase" -> Some Cbase
  | "early" -> Some Early
  | _ -> None

type task = { t_keys : string list; t_run : unit -> unit }

type etask =
  | Single of task
  | Shared of shared

and shared = {
  s_task : task;
  s_owners : int;
  mutable s_arrived : int;
  mutable s_done : bool;
}

type t = {
  backend : Par.Backend.t;
  node : int;
  mode : mode;
  workers : int;
  conflict : string -> string list;
  execute : string -> string;
  m : Par.Backend.mutex;
  work_c : Par.Backend.cond;  (* workers: new work / newly-ready nodes *)
  quiet_c : Par.Backend.cond;  (* readers + drain: a task completed *)
  barrier_c : Par.Backend.cond;  (* early: rendezvous release *)
  dag : task Dag.t;  (* cbase *)
  queues : etask Queue.t array;  (* early: one per worker *)
  key_live : (string, int) Hashtbl.t;  (* in-flight claims per key *)
  mutable global_live : int;  (* in-flight no-key (global) tasks *)
  mutable in_flight : int;  (* admitted, not yet completed *)
  mutable busy_workers : int;
  mutable busy_time : float;
  mutable stopping : bool;
  (* observability: subsystem "sched", labelled node + stack *)
  c_executed : Obs.Metric.counter;
  c_barriers : Obs.Metric.counter;
  c_stalls : Obs.Metric.counter;
  g_graph : Obs.Metric.gauge;
  g_graph_max : Obs.Metric.gauge;
  g_ready : Obs.Metric.gauge;
  g_ready_max : Obs.Metric.gauge;
  g_busy : Obs.Metric.gauge;
  g_busy_time : Obs.Metric.gauge;
}

type stats = {
  executed : int;
  barriers : int;
  barrier_stalls : int;
  graph_max : int;
  ready_max : int;
  busy_time : float;
}

let stats t =
  {
    executed = Obs.Metric.value t.c_executed;
    barriers = Obs.Metric.value t.c_barriers;
    barrier_stalls = Obs.Metric.value t.c_stalls;
    graph_max = int_of_float (Obs.Metric.get t.g_graph_max);
    ready_max = int_of_float (Obs.Metric.get t.g_ready_max);
    busy_time = t.busy_time;
  }

let pending t = t.in_flight
let mode t = t.mode

let lock t = t.m.Par.Backend.m_lock ()
let unlock t = t.m.Par.Backend.m_unlock ()

let note_graph t =
  let s = float_of_int (Dag.size t.dag) in
  Obs.Metric.set t.g_graph s;
  Obs.Metric.set_max t.g_graph_max s;
  let r = float_of_int (Dag.ready_width t.dag) in
  Obs.Metric.set t.g_ready r;
  Obs.Metric.set_max t.g_ready_max r

(* Early: the worker class of a conflict key.  Deterministic across
   replicas (string hashing), so every replica builds the same queues
   from the same log. *)
let worker_of_key t k = Hashtbl.hash k mod t.workers

let owners_of_keys t keys =
  List.sort_uniq compare (List.map (worker_of_key t) keys)

(* --- completion bookkeeping (lock held) --- *)

let note_done t task =
  (match task.t_keys with
  | [] -> t.global_live <- t.global_live - 1
  | keys ->
    List.iter
      (fun k ->
        match Hashtbl.find_opt t.key_live k with
        | Some 1 -> Hashtbl.remove t.key_live k
        | Some c -> Hashtbl.replace t.key_live k (c - 1)
        | None -> ())
      keys);
  t.in_flight <- t.in_flight - 1;
  Obs.Metric.incr t.c_executed;
  t.quiet_c.Par.Backend.c_broadcast ()

(* Run a task's body with the busy gauge held; no lock across it. *)
let run_body t task =
  t.busy_workers <- t.busy_workers + 1;
  Obs.Metric.set t.g_busy (float_of_int t.busy_workers);
  unlock t;
  let t0 = Par.Backend.clock t.backend in
  (try task.t_run ()
   with e ->
     (* re-lock before re-raising so the invariant "worker holds the
        lock between tasks" survives; the fiber is dying anyway (sim
        node crash), so state past this point is moot *)
     lock t;
     t.busy_workers <- t.busy_workers - 1;
     raise e);
  let dt = Par.Backend.clock t.backend -. t0 in
  lock t;
  t.busy_time <- t.busy_time +. dt;
  Obs.Metric.set t.g_busy_time t.busy_time;
  t.busy_workers <- t.busy_workers - 1;
  Obs.Metric.set t.g_busy (float_of_int t.busy_workers)

(* --- cbase worker --- *)

let cbase_worker t () =
  lock t;
  let rec loop () =
    match Dag.take_ready t.dag with
    | None ->
      if t.stopping then unlock t
      else begin
        t.work_c.Par.Backend.c_wait t.m;
        loop ()
      end
    | Some node ->
      note_graph t;
      let task = Dag.payload node in
      run_body t task;
      Dag.complete t.dag node;
      note_graph t;
      note_done t task;
      (* completing may have promoted successors: offer them around *)
      t.work_c.Par.Backend.c_broadcast ();
      loop ()
  in
  loop ()

(* --- early worker --- *)

let early_worker t w () =
  lock t;
  let q = t.queues.(w) in
  let rec loop () =
    match Queue.take_opt q with
    | None ->
      if t.stopping then unlock t
      else begin
        t.work_c.Par.Backend.c_wait t.m;
        loop ()
      end
    | Some (Single task) ->
      run_body t task;
      note_done t task;
      loop ()
    | Some (Shared s) ->
      s.s_arrived <- s.s_arrived + 1;
      if s.s_arrived = s.s_owners then begin
        (* last to arrive executes on behalf of everyone *)
        run_body t s.s_task;
        s.s_done <- true;
        t.barrier_c.Par.Backend.c_broadcast ();
        note_done t s.s_task
      end
      else begin
        Obs.Metric.incr t.c_stalls;
        while not s.s_done do
          t.barrier_c.Par.Backend.c_wait t.m
        done
      end;
      loop ()
  in
  loop ()

let create backend ~node ~mode ~workers ~conflict ~execute =
  if workers <= 0 then invalid_arg "Exec.create: workers";
  let obs = Par.Backend.obs backend in
  let labels =
    [ ("node", string_of_int node); ("stack", mode_name mode) ]
  in
  let c name = Obs.counter obs ~subsystem:"sched" ~labels name in
  let g name = Obs.gauge obs ~subsystem:"sched" ~labels name in
  let t =
    {
      backend;
      node;
      mode;
      workers;
      conflict;
      execute;
      m = Par.Backend.mutex backend;
      work_c = Par.Backend.cond backend;
      quiet_c = Par.Backend.cond backend;
      barrier_c = Par.Backend.cond backend;
      dag = Dag.create ();
      queues = Array.init workers (fun _ -> Queue.create ());
      key_live = Hashtbl.create 64;
      global_live = 0;
      in_flight = 0;
      busy_workers = 0;
      busy_time = 0.;
      stopping = false;
      c_executed = c "requests_executed";
      c_barriers = c "barriers";
      c_stalls = c "barrier_stalls";
      g_graph = g "graph_size";
      g_graph_max = g "graph_size_max";
      g_ready = g "ready_width";
      g_ready_max = g "ready_width_max";
      g_busy = g "workers_busy";
      g_busy_time = g "busy_time_s";
    }
  in
  for w = 0 to workers - 1 do
    let name = Printf.sprintf "sched.%s.worker%d" (mode_name mode) w in
    match mode with
    | Cbase -> Par.Backend.spawn backend ~node ~name (cbase_worker t)
    | Early -> Par.Backend.spawn backend ~node ~name (early_worker t w)
  done;
  t

(* --- admission (log order; caller may be any fiber) --- *)

let add t ~keys ~run =
  lock t;
  t.in_flight <- t.in_flight + 1;
  (match keys with
  | [] ->
    t.global_live <- t.global_live + 1;
    Obs.Metric.incr t.c_barriers
  | _ ->
    List.iter
      (fun k ->
        Hashtbl.replace t.key_live k
          (1 + Option.value (Hashtbl.find_opt t.key_live k) ~default:0))
      keys);
  let task = { t_keys = keys; t_run = run } in
  (match t.mode with
  | Cbase ->
    (match keys with
    | [] -> ignore (Dag.insert_barrier t.dag task)
    | _ -> ignore (Dag.insert t.dag ~keys task));
    note_graph t
  | Early -> (
    match (if keys = [] then List.init t.workers Fun.id
           else owners_of_keys t keys)
    with
    | [ w ] -> Queue.push (Single task) t.queues.(w)
    | owners ->
      let s =
        { s_task = task; s_owners = List.length owners;
          s_arrived = 0; s_done = false }
      in
      List.iter (fun w -> Queue.push (Shared s) t.queues.(w)) owners));
  t.work_c.Par.Backend.c_broadcast ();
  unlock t

let admit t req cb =
  let keys = t.conflict req in
  add t ~keys ~run:(fun () ->
      let resp =
        try t.execute req with
        | Sim.Engine.Killed as e -> raise e
        | exn ->
          Logs.warn (fun m ->
              m "sched[%d]: handler raised %s" t.node (Printexc.to_string exn));
          "ERR:handler-exception"
      in
      cb resp)

let admit_barrier t f = add t ~keys:[] ~run:f

(* --- read routing / quiescence --- *)

let busy_locked t keys =
  t.global_live > 0
  || match keys with
     | [] -> t.in_flight > 0
     | keys -> List.exists (fun k -> Hashtbl.mem t.key_live k) keys

let busy t keys =
  lock t;
  let b = busy_locked t keys in
  unlock t;
  b

let park_until_quiet t keys =
  lock t;
  while busy_locked t keys do
    t.quiet_c.Par.Backend.c_wait t.m
  done;
  unlock t

let drain t =
  lock t;
  while t.in_flight > 0 do
    t.quiet_c.Par.Backend.c_wait t.m
  done;
  unlock t

let shutdown t =
  lock t;
  t.stopping <- true;
  t.work_c.Par.Backend.c_broadcast ();
  unlock t
