(** The CBASE conflict DAG: committed requests inserted in log order,
    with an edge from the latest earlier uncompleted request sharing any
    conflict key.  Ready nodes (no uncompleted predecessors) are handed
    out FIFO; completing a node trims it, so the resident graph is
    O(in-flight).  Not synchronized — {!Exec} serializes access under
    its pool lock. *)

type 'a t
type 'a node

val create : unit -> 'a t

val insert : 'a t -> keys:string list -> 'a -> 'a node
(** Insert the next request of the log.  [keys = []] means no known
    conflicts: the node still orders behind a live barrier, but not
    behind any key chain. *)

val insert_barrier : 'a t -> 'a -> 'a node
(** A node that conflicts with everything: runs after all currently
    uncompleted nodes, and everything inserted later runs after it
    (timer ticks, unparseable requests). *)

val payload : 'a node -> 'a

val take_ready : 'a t -> 'a node option
(** Next ready node in insertion order, marked running. *)

val complete : 'a t -> 'a node -> unit
(** Trim a finished node and promote newly-ready successors.  Raises
    [Invalid_argument] when called twice on the same node. *)

val size : 'a t -> int
(** Uncompleted (waiting + ready + running) nodes. *)

val ready_width : 'a t -> int
(** Ready, not yet taken — the dispatchable parallelism right now. *)

val busy : 'a t -> string list -> bool
(** Is any uncompleted node claiming one of [keys] (or a barrier live)?
    The read-routing gate: a lease/quorum read on [keys] parks while
    this holds. *)

val idle : 'a t -> bool
