open Sim
module R = Rex_core

let batch_max = 64
let timer_prefix = "\x00TIMER:"

type pending = string * (string option -> unit) option

type stats = {
  requests_executed : int;
  replies_sent : int;
  queries_served : int;
  proposals_sent : int;
  proposal_bytes : int;
}

type t = {
  eng : Engine.t;
  net : Net.t;
  cfg : R.Config.t;
  node_id : int;
  pstore : Paxos.Store.t;
  app : R.App.t;  (* session-wrapped: see [create] *)
  session : R.Session.Table.t;
  timers : R.Api.timer_spec array;
  mutable pax : Paxos.Replica.t option;
  mutable front : R.Frontend.t option;
  mutable leader : bool;
  mutable leader_epoch : int;
  queue : (string * (string option -> unit)) Queue.t;
  mutable inflight : (string * (string option -> unit) option list) option;
      (* encoded batch we proposed, and its callbacks in order *)
  exec_queue : (int * pending list) Queue.t;
  mutable exec_waiters : Engine.waker list;
  mutable applied : int;  (* highest instance fully executed locally *)
  mutable st_requests : int;
  mutable st_replies : int;
  mutable st_queries : int;
  mutable st_proposals : int;
  mutable st_proposal_bytes : int;
}

let node t = t.node_id
let is_primary t = t.leader
let session_table t = t.session

let frontend t =
  match t.front with
  | Some f -> f
  | None -> invalid_arg "Smr.frontend: not registered"
let app_digest t = t.app.R.App.digest ()
let executed_requests t = t.st_requests

let stats t =
  {
    requests_executed = t.st_requests;
    replies_sent = t.st_replies;
    queries_served = t.st_queries;
    proposals_sent = t.st_proposals;
    proposal_bytes = t.st_proposal_bytes;
  }

let encode_batch = R.Frontend.encode_batch
let decode_batch = R.Frontend.decode_batch

let wake_executor t =
  let ws = t.exec_waiters in
  t.exec_waiters <- [];
  List.iter Engine.wake ws

(* All replicas execute committed requests in order, one at a time: the
   sequential execution model of classic SMR. *)
let executor_loop t () =
  let rec next_batch () =
    match Queue.take_opt t.exec_queue with
    | Some b -> b
    | None ->
      Engine.park (fun w -> t.exec_waiters <- w :: t.exec_waiters);
      next_batch ()
  in
  let run_one (request, cb) =
    (if String.length request > String.length timer_prefix
        && String.sub request 0 (String.length timer_prefix) = timer_prefix
    then begin
      let idx =
        int_of_string
          (String.sub request (String.length timer_prefix)
             (String.length request - String.length timer_prefix))
      in
      if idx >= 0 && idx < Array.length t.timers then
        t.timers.(idx).R.Api.t_callback ()
    end
    else begin
      let resp =
        try t.app.R.App.execute ~request
        with exn ->
          Logs.warn (fun m ->
              m "smr[%d]: handler raised %s" t.node_id (Printexc.to_string exn));
          "ERR:handler-exception"
      in
      t.st_requests <- t.st_requests + 1;
      match cb with
      | Some cb ->
        t.st_replies <- t.st_replies + 1;
        cb (Some resp)
      | None -> ()
    end)
  in
  let rec loop () =
    let instance, batch = next_batch () in
    List.iter run_one batch;
    if instance > t.applied then t.applied <- instance;
    loop ()
  in
  loop ()

let on_committed t instance value =
  match decode_batch value with
  | exception Codec.Decode_error _ -> ()
  | reqs ->
    let cbs =
      match t.inflight with
      | Some (enc, cbs) when enc = value ->
        t.inflight <- None;
        cbs
      | Some _ | None -> List.map (fun _ -> None) reqs
    in
    let cbs =
      (* Defensive: lengths can differ if the commit is foreign. *)
      if List.length cbs = List.length reqs then cbs
      else List.map (fun _ -> None) reqs
    in
    Queue.push (instance, List.combine reqs cbs) t.exec_queue;
    wake_executor t

(* Rolling-upgrade support: a replacement server created over the old
   server's store re-executes the committed prefix to rebuild app and
   session state (this stack has no checkpoint recovery).  Call between
   [create] and [start]; the executor drains the queued batches in log
   order once it spawns. *)
let replay t = Paxos.Replica.replay_committed t.pstore (on_committed t)

let spawn_leader_fibers t =
  t.leader_epoch <- t.leader_epoch + 1;
  let epoch = t.leader_epoch in
  let live () = t.leader && t.leader_epoch = epoch in
  (* Batcher: drain the queue into proposals, one instance at a time. *)
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"smr.batcher" (fun () ->
         while live () do
           Engine.sleep t.cfg.R.Config.propose_interval;
           if live () && t.inflight = None && not (Queue.is_empty t.queue) then begin
             let pax = Option.get t.pax in
             if Paxos.Replica.is_leader pax && not (Paxos.Replica.in_flight pax)
             then begin
               let rec drain k acc =
                 if k = 0 then List.rev acc
                 else
                   match Queue.take_opt t.queue with
                   | None -> List.rev acc
                   | Some r -> drain (k - 1) (r :: acc)
               in
               let items = drain batch_max [] in
               if items <> [] then begin
                 let reqs = List.map fst items in
                 let enc = encode_batch reqs in
                 if Paxos.Replica.propose pax enc then begin
                   t.inflight <- Some (enc, List.map (fun (_, cb) -> Some cb) items);
                   t.st_proposals <- t.st_proposals + 1;
                   t.st_proposal_bytes <- t.st_proposal_bytes + String.length enc
                 end
                 else List.iter (fun (_, cb) -> cb None) items
               end
             end
           end
         done));
  (* Timers become proposed pseudo-requests, serialized like the rest. *)
  Array.iteri
    (fun idx spec ->
      ignore
        (Engine.spawn t.eng ~node:t.node_id
           ~name:("smr.timer." ^ spec.R.Api.t_name)
           (fun () ->
             while live () do
               Engine.sleep spec.R.Api.t_interval;
               if live () then
                 Queue.push
                   (Printf.sprintf "%s%d" timer_prefix idx, fun _ -> ())
                   t.queue
             done)))
    t.timers

let create net rpc cfg ~node ~paxos_store factory =
  let eng = Net.engine net in
  (* The app's wrappers run native: no fiber is ever bound to a slot. *)
  let rt = Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node ~slots:1 in
  let api = R.Api.make rt in
  let session =
    R.Session.Table.create (Engine.obs eng) ~stack:"smr" ~node ()
  in
  (* Serial execution is identical on every replica, so the in-execute
     duplicate check is deterministic here — it catches retries that
     slipped past intake on a freshly elected leader whose executor is
     still catching up on earlier instances. *)
  let app = R.Session.wrap ~table:session ~dedup_in_execute:true (factory api) in
  let timers = Array.of_list (R.Api.seal api) in
  let t =
    {
      eng;
      net;
      cfg;
      node_id = node;
      pstore = paxos_store;
      app;
      session;
      timers;
      pax = None;
      front = None;
      leader = false;
      leader_epoch = 0;
      queue = Queue.create ();
      inflight = None;
      exec_queue = Queue.create ();
      exec_waiters = [];
      applied = 0;
      st_requests = 0;
      st_replies = 0;
      st_queries = 0;
      st_proposals = 0;
      st_proposal_bytes = 0;
    }
  in
  t.front <-
    Some
      (R.Frontend.register rpc ~node ~table:session
         ?admission:
           (R.Config.admission cfg ~queue_depth:(fun () ->
                Queue.length t.queue))
         ~reads:
           {
             R.Frontend.r_peers =
               (fun () ->
                 match t.pax with
                 | Some p -> Paxos.Replica.peers p
                 | None -> cfg.R.Config.replicas);
             r_lease_valid =
               (fun () ->
                 t.leader
                 &&
                 match t.pax with
                 | Some p -> Paxos.Replica.holds_lease p
                 | None -> false);
             r_read_index =
               (fun () ->
                 match t.pax with
                 | Some p -> Paxos.Replica.read_index p
                 | None -> 0);
             (* The leader replies to a write only after executing it
                locally, so leader state always covers every acked write:
                both read paths can answer from [t.app] directly. *)
             r_applied_upto = (fun () -> t.applied);
             r_read_local =
               (fun request cb ->
                 t.st_queries <- t.st_queries + 1;
                 cb (Some (t.app.R.App.query ~request)));
             r_lease_unsafe = cfg.R.Config.lease_unsafe;
           }
         {
           R.Frontend.is_leader = (fun () -> t.leader);
           leader_hint =
             (fun () ->
               match t.pax with
               | Some p -> Paxos.Replica.leader_hint p
               | None -> None);
           enqueue = (fun request cb -> Queue.push (request, cb) t.queue);
           query =
             (fun request ->
               t.st_queries <- t.st_queries + 1;
               Some (t.app.R.App.query ~request));
         });
  t

let start t =
  let pax_cfg =
    {
      Paxos.Replica.me = t.node_id;
      peers = t.cfg.R.Config.replicas;
      heartbeat_period = t.cfg.R.Config.heartbeat_period;
      election_timeout = t.cfg.R.Config.election_timeout;
      max_inflight = 1;
      sync_latency = 0.;
      lease_duration = t.cfg.R.Config.lease_duration;
      lease_drift_bound = t.cfg.R.Config.lease_drift_bound;
    }
  in
  let cbs =
    {
      Paxos.Replica.on_committed = (fun i v -> on_committed t i v);
      on_become_leader =
        (fun () ->
          t.leader <- true;
          spawn_leader_fibers t);
      on_new_leader =
        (fun _ ->
          if t.leader then begin
            t.leader <- false;
            (match t.inflight with
            | Some (_, cbs) ->
              List.iter (function Some cb -> cb None | None -> ()) cbs
            | None -> ());
            t.inflight <- None;
            Queue.iter (fun (_, cb) -> cb None) t.queue;
            Queue.clear t.queue
          end);
    }
  in
  let pax = Paxos.Replica.create t.net pax_cfg t.pstore cbs in
  t.pax <- Some pax;
  Paxos.Replica.start pax;
  ignore (Engine.spawn t.eng ~node:t.node_id ~name:"smr.executor" (executor_loop t))

let submit t request cb =
  if not t.leader then cb None
  else Queue.push (request, cb) t.queue

let query t request =
  t.st_queries <- t.st_queries + 1;
  t.app.R.App.query ~request
