(** Standard replicated state machine — the baseline Rex is measured
    against (paper Fig. 1, left; "RSM mode" in Fig. 7).

    Consensus-execute: the leader batches incoming requests, drives each
    batch through a Paxos instance, and every replica executes committed
    requests {e sequentially} in a single executor fiber — the
    deterministic sequential execution model that wastes all but one core.
    Application background timers are serialized the same way: the leader
    proposes a timer-tick pseudo-request, so all replicas run the callback
    at the same point in the request order.

    The same {!Rex_core.App.factory} runs unchanged: its synchronization
    wrappers see unbound fibers and take the native path. *)

type t

type stats = {
  requests_executed : int;
  replies_sent : int;
  queries_served : int;
  proposals_sent : int;
  proposal_bytes : int;
}

val create :
  Sim.Net.t ->
  Sim.Rpc.t ->
  Rex_core.Config.t ->
  node:int ->
  paxos_store:Paxos.Store.t ->
  Rex_core.App.factory ->
  t
(** [Config.workers] is ignored: execution is sequential by design.
    [propose_interval] paces batching. *)

val start : t -> unit

val replay : t -> unit
(** Queue the store's committed prefix for re-execution — the rolling
    upgrade path: a replacement server [create]d over the retired
    server's {!Paxos.Store.t} calls this before {!start} to rebuild app
    and session state (this stack has no checkpoint recovery). *)

val node : t -> int
val is_primary : t -> bool

val session_table : t -> Rex_core.Session.Table.t
(** The replica's client-session table (see {!Rex_core.Session}). *)

val frontend : t -> Rex_core.Frontend.t
(** The replica's client-facing frontend, for history taps. *)

val submit : t -> string -> (string option -> unit) -> unit
val query : t -> string -> string
val app_digest : t -> string
val stats : t -> stats
val executed_requests : t -> int
