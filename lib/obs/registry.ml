type key = {
  subsystem : string;
  name : string;
  labels : (string * string) list;
}

type instrument =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Histogram.t

type t = { tbl : (key, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* Canonical label form: sorted by key; a duplicate key keeps the last
   binding the caller supplied (assoc-list update semantics). *)
let canon labels =
  let dedup =
    List.fold_left
      (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
      [] labels
  in
  List.sort compare dedup

let key ~subsystem ~labels name = { subsystem; name; labels = canon labels }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get t k ~make ~cast =
  match Hashtbl.find_opt t.tbl k with
  | Some inst -> (
    match cast inst with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s/%s already registered as a %s"
           k.subsystem k.name (kind_name inst)))
  | None ->
    let inst, v = make () in
    Hashtbl.replace t.tbl k inst;
    v

let counter t ~subsystem ?(labels = []) name =
  get t (key ~subsystem ~labels name)
    ~make:(fun () ->
      let c = Metric.counter () in
      (Counter c, c))
    ~cast:(function Counter c -> Some c | _ -> None)

let gauge t ~subsystem ?(labels = []) name =
  get t (key ~subsystem ~labels name)
    ~make:(fun () ->
      let g = Metric.gauge () in
      (Gauge g, g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let histogram t ~subsystem ?(labels = []) ?min_value ?growth ?buckets name =
  get t (key ~subsystem ~labels name)
    ~make:(fun () ->
      let h = Histogram.create ?min_value ?growth ?buckets () in
      (Histogram h, h))
    ~cast:(function Histogram h -> Some h | _ -> None)

let find t ~subsystem ?(labels = []) name =
  Hashtbl.find_opt t.tbl (key ~subsystem ~labels name)

let fold t ~init ~f =
  Hashtbl.fold (fun k inst acc -> (k, inst) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.fold_left (fun acc (k, inst) -> f acc k inst) init

let cardinality t = Hashtbl.length t.tbl
