module Metric = Metric
module Histogram = Histogram
module Registry = Registry
module Span = Span
module Export = Export
module Timeline = Timeline

type t = { reg : Registry.t; col : Span.collector }

let create ?clock () =
  { reg = Registry.create (); col = Span.create ?clock () }

let set_clock t clock = Span.set_clock t.col clock
let registry t = t.reg
let spans t = t.col
let enable_tracing t on = Span.set_enabled t.col on
let tracing t = Span.enabled t.col
let counter t = Registry.counter t.reg
let gauge t = Registry.gauge t.reg

let histogram t ~subsystem ?labels name =
  Registry.histogram t.reg ~subsystem ?labels name

let with_span t ?cat ?pid ?tid name f =
  if not (Span.enabled t.col) then f ()
  else begin
    let sp = Span.start t.col ?cat ?pid ?tid name in
    Fun.protect ~finally:(fun () -> Span.finish sp) f
  end
