type t = {
  bounds : float array;  (* bucket i covers [bounds.(i), bounds.(i+1)) *)
  counts : int array;
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

let create ?(min_value = 1e-9) ?(growth = 1.189207115002721) ?(buckets = 208)
    () =
  if min_value <= 0. then invalid_arg "Histogram.create: min_value";
  if growth <= 1. then invalid_arg "Histogram.create: growth";
  if buckets < 1 then invalid_arg "Histogram.create: buckets";
  {
    bounds = Array.init (buckets + 1) (fun i -> min_value *. (growth ** float_of_int i));
    counts = Array.make buckets 0;
    n = 0;
    total = 0.;
    lo = infinity;
    hi = neg_infinity;
  }

(* Largest i with bounds.(i) <= v, clamped to a valid bucket.  Using the
   same precomputed bounds for indexing and for quantile answers keeps the
   upper-bound guarantee exact (no log/exp round-trip mismatch). *)
let index t v =
  let n = Array.length t.counts in
  if not (v >= t.bounds.(0)) then 0
  else if v >= t.bounds.(n) then n - 1
  else begin
    let lo = ref 0 and hi = ref n in
    (* invariant: bounds.(!lo) <= v < bounds.(!hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) <= v then lo := mid else hi := mid
    done;
    !lo
  end

let observe t v =
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  if Float.is_finite v then begin
    t.total <- t.total +. v;
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v
  end

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
let min_seen t = if t.n = 0 || not (Float.is_finite t.lo) then 0. else t.lo
let max_seen t = if t.n = 0 || not (Float.is_finite t.hi) then 0. else t.hi

let quantile t q =
  if t.n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let buckets = Array.length t.counts in
    let i = ref 0 and seen = ref t.counts.(0) in
    while !seen < rank && !i < buckets - 1 do
      Stdlib.incr i;
      seen := !seen + t.counts.(!i)
    done;
    (* The top bucket also holds clamped outliers, whose nominal bound may
       undershoot; the recorded max is the only sound upper bound there. *)
    if !i = buckets - 1 then max_seen t
    else Float.min t.bounds.(!i + 1) (max_seen t)
  end

let p50 t = quantile t 0.5
let p90 t = quantile t 0.9
let p99 t = quantile t 0.99

let same_geometry a b =
  a.bounds == b.bounds
  || Array.length a.bounds = Array.length b.bounds
     && (let ok = ref true in
         Array.iteri (fun i v -> if v <> b.bounds.(i) then ok := false) a.bounds;
         !ok)

let merge dst src =
  if not (same_geometry dst src) then
    invalid_arg "Histogram.merge: bucket geometries differ";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.total <- dst.total +. src.total;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.total <- 0.;
  t.lo <- infinity;
  t.hi <- neg_infinity

let fold_buckets t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i c ->
      if c > 0 then acc := f !acc ~lo:t.bounds.(i) ~hi:t.bounds.(i + 1) c)
    t.counts;
  !acc
