(** Structured exporters: human-readable table, JSON (one document or one
    object per line), and Chrome [trace_event] JSON.

    The Chrome output loads directly in [chrome://tracing] or
    [https://ui.perfetto.dev]: one process track per simulated node, one
    thread track per slot/fiber, timestamps in virtual microseconds. *)

val table : Registry.t -> string
(** Aligned text table; histograms show count, mean, p50/p90/p99 and max. *)

val metrics_json : Registry.t -> string
(** A single JSON array of metric objects, e.g.
    [{"subsystem":"paxos","name":"commit_latency","labels":{"node":"0"},
      "type":"histogram","count":12,"p50":1.2e-3,...}]. *)

val metrics_jsonl : Registry.t -> string
(** The same objects, newline-delimited (one JSON document per metric). *)

val chrome_trace : Span.collector -> string
(** [{"traceEvents":[...],"displayTimeUnit":"ms"}] with ["X"] (complete)
    and ["i"] (instant) events plus process-name metadata. *)

val to_file : path:string -> string -> unit
(** Write [contents] to [path] (truncating), creating it if needed. *)
