(** Unified observability context: one {!Registry.t} of metrics plus one
    {!Span.collector} of virtual-time tracing spans, sharing a clock.

    One [Obs.t] exists per simulation ([Sim.Engine] owns it); every layer
    reaches it through its engine and registers instruments under its own
    subsystem, labelled by node.  See DESIGN.md §3 and the README's
    "Observability" section. *)

module Metric = Metric
module Histogram = Histogram
module Registry = Registry
module Span = Span
module Export = Export
module Timeline = Timeline

type t

val create : ?clock:(unit -> float) -> unit -> t
val set_clock : t -> (unit -> float) -> unit
(** Also re-clocks the span collector. *)

val registry : t -> Registry.t
val spans : t -> Span.collector

val enable_tracing : t -> bool -> unit
(** Span collection is off by default; metrics are always on. *)

val tracing : t -> bool

(** {1 Shortcuts} *)

val counter :
  t -> subsystem:string -> ?labels:(string * string) list -> string ->
  Metric.counter

val gauge :
  t -> subsystem:string -> ?labels:(string * string) list -> string ->
  Metric.gauge

val histogram :
  t -> subsystem:string -> ?labels:(string * string) list -> string ->
  Histogram.t

val with_span :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (finished even on exceptions). *)
