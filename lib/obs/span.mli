(** Virtual-time tracing spans, exportable as Chrome [trace_event] JSON.

    A collector accumulates completed spans and instant events stamped
    with the simulator's virtual clock.  Collection is {e off} by default:
    when disabled, {!start} returns a no-op handle and every other entry
    point is a single branch, so instrumented hot paths cost nothing in
    ordinary test and benchmark runs.

    Spans are nestable per fiber: callers tag events with [pid] (node) and
    [tid] (slot or fiber id); the Chrome viewer reconstructs nesting from
    containment of [ts, ts+dur] intervals on the same track, so handles
    may simply be held across inner spans. *)

type collector

val create : ?clock:(unit -> float) -> ?limit:int -> unit -> collector
(** [clock] returns virtual seconds (default: constant 0 until
    {!set_clock}).  [limit] (default 500_000) caps retained events; once
    full, further events are counted in {!dropped} instead of stored, so a
    long benchmark cannot exhaust memory. *)

val set_clock : collector -> (unit -> float) -> unit
val set_enabled : collector -> bool -> unit
val enabled : collector -> bool

(** {1 Recording} *)

type span

val start :
  collector -> ?cat:string -> ?pid:int -> ?tid:int -> string -> span
(** Begin a span named [name] at the current virtual time.  Returns a
    dummy when the collector is disabled. *)

val annotate : span -> string -> string -> unit
(** Attach a key/value argument (shown in the viewer's detail pane). *)

val finish : span -> unit
(** End the span at the current virtual time and retain it.  A span never
    finished is simply not exported; finishing twice is harmless. *)

val complete :
  collector -> ?cat:string -> ?pid:int -> ?tid:int ->
  ?args:(string * string) list -> name:string -> ts:float -> dur:float ->
  unit -> unit
(** Retain an already-measured interval (for call sites that know both
    endpoints, e.g. a simulated work quantum). *)

val instant :
  collector -> ?cat:string -> ?pid:int -> ?tid:int ->
  ?args:(string * string) list -> string -> unit
(** A zero-duration marker at the current virtual time. *)

(** {1 Reading (exporters)} *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_pid : int;
  ev_tid : int;
  ev_ts : float;  (** virtual seconds *)
  ev_dur : float;  (** seconds; 0. for instants *)
  ev_instant : bool;
  ev_args : (string * string) list;
}

val events : collector -> event list
(** In completion order (the order durations became known). *)

val length : collector -> int
val dropped : collector -> int
val clear : collector -> unit
