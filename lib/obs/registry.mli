(** Per-node metric registry keyed by [(subsystem, name, labels)].

    Every layer of the system asks the registry for its instruments once,
    at construction time, and then bumps the returned handles directly —
    the registry is never on a hot path.  Labels are canonicalized
    (sorted, deduplicated by key) so [counter ~labels:[a; b]] and
    [counter ~labels:[b; a]] return the same instrument; asking for an
    existing key with a different instrument kind is a programming error
    and raises [Invalid_argument]. *)

type t

type key = private {
  subsystem : string;
  name : string;
  labels : (string * string) list;  (** canonical: sorted by label key *)
}

type instrument =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Histogram.t

val create : unit -> t

val counter :
  t -> subsystem:string -> ?labels:(string * string) list -> string ->
  Metric.counter

val gauge :
  t -> subsystem:string -> ?labels:(string * string) list -> string ->
  Metric.gauge

val histogram :
  t -> subsystem:string -> ?labels:(string * string) list ->
  ?min_value:float -> ?growth:float -> ?buckets:int -> string ->
  Histogram.t
(** The bucket layout is fixed by whoever registers the histogram first;
    later callers get the existing instance. *)

val find : t -> subsystem:string -> ?labels:(string * string) list ->
  string -> instrument option

val fold : t -> init:'a -> f:('a -> key -> instrument -> 'a) -> 'a
(** Deterministic order: sorted by subsystem, then name, then labels. *)

val cardinality : t -> int
