type cell = {
  mutable n : int;
  mutable lat_n : int;
  mutable lat_sum : float;
  mutable lat_max : float;
  mutable shed : int;
  mutable lat_hist : Histogram.t option;
      (* allocated on first latency sample so latency-free timelines stay
         as cheap as before *)
}

type t = {
  bucket : float;
  cells : (int, cell) Hashtbl.t;
  mutable marks : (float * string) list;
}

let create ?(bucket = 1.0) () =
  if bucket <= 0. then invalid_arg "Obs.Timeline.create: bucket must be > 0";
  { bucket; cells = Hashtbl.create 64; marks = [] }

let bucket t = t.bucket
let index t now = int_of_float (Float.floor (now /. t.bucket))

let cell t now =
  let i = index t now in
  match Hashtbl.find_opt t.cells i with
  | Some c -> c
  | None ->
    let c =
      { n = 0; lat_n = 0; lat_sum = 0.; lat_max = 0.; shed = 0; lat_hist = None }
    in
    Hashtbl.add t.cells i c;
    c

let record t ?latency now =
  let c = cell t now in
  c.n <- c.n + 1;
  match latency with
  | None -> ()
  | Some l ->
    c.lat_n <- c.lat_n + 1;
    c.lat_sum <- c.lat_sum +. l;
    c.lat_max <- Float.max c.lat_max l;
    let h =
      match c.lat_hist with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        c.lat_hist <- Some h;
        h
    in
    Histogram.observe h l

let shed t now =
  let c = cell t now in
  c.shed <- c.shed + 1

let mark t now label = t.marks <- (now, label) :: t.marks
let marks t = List.rev t.marks

type row = {
  t0 : float;
  n : int;
  rate : float;
  lat_mean : float;
  lat_max : float;
  lat_p99 : float;
  shed : int;
  shed_rate : float;
  row_marks : string list;
}

let rows t =
  let lo = ref max_int and hi = ref min_int in
  let widen i =
    if i < !lo then lo := i;
    if i > !hi then hi := i
  in
  Hashtbl.iter (fun i _ -> widen i) t.cells;
  List.iter (fun (at, _) -> widen (index t at)) t.marks;
  if !lo > !hi then []
  else
    List.init
      (!hi - !lo + 1)
      (fun k ->
        let i = !lo + k in
        let n, lat_mean, lat_max, lat_p99, shed =
          match Hashtbl.find_opt t.cells i with
          | None -> (0, 0., 0., 0., 0)
          | Some c ->
            ( c.n,
              (if c.lat_n = 0 then 0. else c.lat_sum /. float_of_int c.lat_n),
              c.lat_max,
              (match c.lat_hist with None -> 0. | Some h -> Histogram.p99 h),
              c.shed )
        in
        let row_marks =
          List.rev_map snd
            (List.filter (fun (at, _) -> index t at = i) t.marks)
        in
        {
          t0 = float_of_int i *. t.bucket;
          n;
          rate = float_of_int n /. t.bucket;
          lat_mean;
          lat_max;
          lat_p99;
          shed;
          shed_rate = float_of_int shed /. t.bucket;
          row_marks;
        })

let csv_header = "t,requests,req_per_s,lat_mean,lat_max,lat_p99,shed,shed_per_s,marks"

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%.6g,%d,%.6g,%.6g,%.6g,%.6g,%d,%.6g,%s\n" r.t0 r.n
           r.rate r.lat_mean r.lat_max r.lat_p99 r.shed r.shed_rate
           (String.concat ";" r.row_marks)))
    (rows t);
  Buffer.contents buf
