(** Log-bucketed histograms for latency-like positive samples.

    Buckets grow geometrically ([growth] per bucket, default 2^¼ ≈ 1.19,
    i.e. ≤ 19% relative quantile error), so a fixed 208-bucket table spans
    nanoseconds to days.  Recording is O(log buckets) (a binary search
    over precomputed bounds) with no allocation; quantile queries walk the
    table.

    Quantiles are {e upper bounds}: [quantile h q] returns a value that is
    ≥ the true q-th sample quantile and ≤ growth × it (for samples inside
    the bucket range) — the property tested by qcheck in
    [test/test_obs.ml]. *)

type t

val create : ?min_value:float -> ?growth:float -> ?buckets:int -> unit -> t
(** Defaults: [min_value] 1e-9 (virtual seconds), [growth] 2^0.25,
    [buckets] 208.  Samples below [min_value] land in the first bucket;
    samples beyond the top bound are clamped into the last. *)

val observe : t -> float -> unit
(** Negative and non-finite samples are counted in the first bucket's
    population but never distort [max]/[sum]. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_seen : t -> float
(** 0. when empty. *)

val max_seen : t -> float

val quantile : t -> float -> float
(** [quantile h q] with [q] in [0,1]; 0. when empty.  Monotone in [q]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val merge : t -> t -> unit
(** [merge dst src] adds [src]'s population into [dst] bucket-wise.  Since
    both tables share the same precomputed bounds, merging then querying is
    {e exactly} equivalent to having observed the union of samples into one
    histogram (the commutativity property tested in [test/test_obs.ml]) —
    which is what makes per-shard / per-caller histograms safe to combine
    into fleet-wide percentiles.
    @raise Invalid_argument when the bucket geometries differ. *)

val reset : t -> unit

val fold_buckets : t -> init:'a -> f:('a -> lo:float -> hi:float -> int -> 'a) -> 'a
(** Fold over non-empty buckets in increasing order, for exporters. *)
