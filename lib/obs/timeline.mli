(** Windowed time-series over virtual time: request completions (with
    optional latency) bucketed into fixed-width windows, plus point
    annotations for control-plane events (failover, split, upgrade...).

    Feeds the benches' [--timeline-out] CSV export — req/s over time with
    per-bucket latency and the marks that explain the dips, à la the
    live-patching / Redis Cluster reconfiguration timelines. *)

type t

val create : ?bucket:float -> unit -> t
(** [bucket] is the window width in (virtual) seconds, default 1.0.
    @raise Invalid_argument when [bucket <= 0]. *)

val bucket : t -> float

val record : t -> ?latency:float -> float -> unit
(** [record t ~latency now]: one completed request at time [now]. *)

val mark : t -> float -> string -> unit
(** Annotate the point [now] with a label; labels land in the [marks]
    column of the row whose window contains them. *)

val marks : t -> (float * string) list
(** All marks in insertion order. *)

type row = {
  t0 : float;  (** window start *)
  n : int;  (** completions inside the window *)
  rate : float;  (** [n / bucket] *)
  lat_mean : float;  (** 0 when no latencies were recorded *)
  lat_max : float;
  row_marks : string list;
}

val rows : t -> row list
(** Contiguous rows from the first to the last touched window — gaps
    appear as zero rows, so a stall during a migration shows up as a
    visible dip rather than a missing line.  Empty when nothing was
    recorded. *)

val to_csv : t -> string
(** Header [t,requests,req_per_s,lat_mean,lat_max,marks]; marks within a
    row are [;]-joined. *)
