(** Windowed time-series over virtual time: request completions (with
    optional latency) bucketed into fixed-width windows, plus point
    annotations for control-plane events (failover, split, upgrade...).

    Feeds the benches' [--timeline-out] CSV export — req/s over time with
    per-bucket latency and the marks that explain the dips, à la the
    live-patching / Redis Cluster reconfiguration timelines.  The open-loop
    load engine additionally records {e shed} (admission-rejected) requests
    per window and per-window p99 latency, so a ramp plot shows goodput,
    tail latency and shed rate side by side. *)

type t

val create : ?bucket:float -> unit -> t
(** [bucket] is the window width in (virtual) seconds, default 1.0.
    @raise Invalid_argument when [bucket <= 0]. *)

val bucket : t -> float

val record : t -> ?latency:float -> float -> unit
(** [record t ~latency now]: one completed request at time [now].  When a
    latency is given it also feeds a per-window log-bucketed histogram
    backing the [lat_p99] column. *)

val shed : t -> float -> unit
(** One request rejected by admission control (or dropped at an engine-side
    cap) at time [now].  Shed requests do not count into [n]/[rate] — those
    columns stay goodput. *)

val mark : t -> float -> string -> unit
(** Annotate the point [now] with a label; labels land in the [marks]
    column of the row whose window contains them. *)

val marks : t -> (float * string) list
(** All marks in insertion order. *)

type row = {
  t0 : float;  (** window start *)
  n : int;  (** completions inside the window *)
  rate : float;  (** [n / bucket] *)
  lat_mean : float;  (** 0 when no latencies were recorded *)
  lat_max : float;
  lat_p99 : float;
      (** per-window p99 from a log-bucketed histogram (upper bound, see
          {!Histogram.quantile}); 0 when no latencies were recorded *)
  shed : int;  (** admission rejections inside the window *)
  shed_rate : float;  (** [shed / bucket] *)
  row_marks : string list;
}

val rows : t -> row list
(** Contiguous rows from the first to the last touched window — gaps
    appear as zero rows, so a stall during a migration shows up as a
    visible dip rather than a missing line.  Empty when nothing was
    recorded. *)

val csv_header : string

val to_csv : t -> string
(** Header [t,requests,req_per_s,lat_mean,lat_max,lat_p99,shed,shed_per_s,marks];
    marks within a row are [;]-joined. *)
