type event = {
  ev_name : string;
  ev_cat : string;
  ev_pid : int;
  ev_tid : int;
  ev_ts : float;
  ev_dur : float;
  ev_instant : bool;
  ev_args : (string * string) list;
}

type collector = {
  mutable on : bool;
  mutable clock : unit -> float;
  mutable events : event array;
  mutable len : int;
  limit : int;
  mutable dropped_ : int;
}

let dummy_event =
  {
    ev_name = "";
    ev_cat = "";
    ev_pid = 0;
    ev_tid = 0;
    ev_ts = 0.;
    ev_dur = 0.;
    ev_instant = false;
    ev_args = [];
  }

let create ?(clock = fun () -> 0.) ?(limit = 500_000) () =
  { on = false; clock; events = [||]; len = 0; limit; dropped_ = 0 }

let set_clock t clock = t.clock <- clock
let set_enabled t on = t.on <- on
let enabled t = t.on

let push t ev =
  if t.len >= t.limit then t.dropped_ <- t.dropped_ + 1
  else begin
    if t.len >= Array.length t.events then begin
      let cap = Stdlib.max 256 (Stdlib.min t.limit (2 * Array.length t.events)) in
      let grown = Array.make cap dummy_event in
      Array.blit t.events 0 grown 0 t.len;
      t.events <- grown
    end;
    t.events.(t.len) <- ev;
    t.len <- t.len + 1
  end

type span = {
  col : collector option;
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_ts : float;
  mutable sp_args : (string * string) list;
  mutable sp_done : bool;
}

let disabled_span =
  {
    col = None;
    sp_name = "";
    sp_cat = "";
    sp_pid = 0;
    sp_tid = 0;
    sp_ts = 0.;
    sp_args = [];
    sp_done = true;
  }

let start t ?(cat = "") ?(pid = 0) ?(tid = 0) name =
  if not t.on then disabled_span
  else
    {
      col = Some t;
      sp_name = name;
      sp_cat = cat;
      sp_pid = pid;
      sp_tid = tid;
      sp_ts = t.clock ();
      sp_args = [];
      sp_done = false;
    }

let annotate sp k v = if not sp.sp_done then sp.sp_args <- (k, v) :: sp.sp_args

let finish sp =
  match sp.col with
  | None -> ()
  | Some t ->
    if not sp.sp_done then begin
      sp.sp_done <- true;
      push t
        {
          ev_name = sp.sp_name;
          ev_cat = sp.sp_cat;
          ev_pid = sp.sp_pid;
          ev_tid = sp.sp_tid;
          ev_ts = sp.sp_ts;
          ev_dur = Float.max 0. (t.clock () -. sp.sp_ts);
          ev_instant = false;
          ev_args = List.rev sp.sp_args;
        }
    end

let complete t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ~name ~ts ~dur
    () =
  if t.on then
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_pid = pid;
        ev_tid = tid;
        ev_ts = ts;
        ev_dur = Float.max 0. dur;
        ev_instant = false;
        ev_args = args;
      }

let instant t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) name =
  if t.on then
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_pid = pid;
        ev_tid = tid;
        ev_ts = t.clock ();
        ev_dur = 0.;
        ev_instant = true;
        ev_args = args;
      }

let events t = Array.to_list (Array.sub t.events 0 t.len)
let length t = t.len
let dropped t = t.dropped_

let clear t =
  t.events <- [||];
  t.len <- 0;
  t.dropped_ <- 0
