(* --- Minimal JSON emission (no parser dependency in the image) --- *)

let json_escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "0"

let add_labels buf labels =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      json_escape buf k;
      Buffer.add_char buf ':';
      json_escape buf v)
    labels;
  Buffer.add_char buf '}'

let metric_object buf (k : Registry.key) inst =
  Buffer.add_string buf "{\"subsystem\":";
  json_escape buf k.Registry.subsystem;
  Buffer.add_string buf ",\"name\":";
  json_escape buf k.Registry.name;
  Buffer.add_string buf ",\"labels\":";
  add_labels buf k.Registry.labels;
  (match inst with
  | Registry.Counter c ->
    Buffer.add_string buf
      (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" (Metric.value c))
  | Registry.Gauge g ->
    Buffer.add_string buf
      (Printf.sprintf ",\"type\":\"gauge\",\"value\":%s"
         (json_float (Metric.get g)))
  | Registry.Histogram h ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s"
         (Histogram.count h)
         (json_float (Histogram.sum h))
         (json_float (Histogram.mean h))
         (json_float (Histogram.min_seen h))
         (json_float (Histogram.p50 h))
         (json_float (Histogram.p90 h))
         (json_float (Histogram.p99 h))
         (json_float (Histogram.max_seen h))));
  Buffer.add_char buf '}'

let metrics_json reg =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let _ =
    Registry.fold reg ~init:true ~f:(fun first k inst ->
        if not first then Buffer.add_string buf ",\n";
        metric_object buf k inst;
        false)
  in
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let metrics_jsonl reg =
  let buf = Buffer.create 4096 in
  Registry.fold reg ~init:() ~f:(fun () k inst ->
      metric_object buf k inst;
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* --- Human-readable table --- *)

let label_string labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let table reg =
  let rows =
    Registry.fold reg ~init:[] ~f:(fun acc k inst ->
        let name =
          Printf.sprintf "%s/%s%s" k.Registry.subsystem k.Registry.name
            (label_string k.Registry.labels)
        in
        let value =
          match inst with
          | Registry.Counter c -> Printf.sprintf "%d" (Metric.value c)
          | Registry.Gauge g -> Printf.sprintf "%g" (Metric.get g)
          | Registry.Histogram h ->
            Printf.sprintf
              "n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g"
              (Histogram.count h) (Histogram.mean h) (Histogram.p50 h)
              (Histogram.p90 h) (Histogram.p99 h) (Histogram.max_seen h)
        in
        (name, value) :: acc)
  in
  let rows = List.rev rows in
  let width =
    List.fold_left (fun w (n, _) -> Stdlib.max w (String.length n)) 0 rows
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf (Printf.sprintf "%-*s  %s\n" width n v))
    rows;
  Buffer.contents buf

(* --- Chrome trace_event --- *)

let chrome_trace col =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let evs = Span.events col in
  (* Process-name metadata so the viewer labels node tracks. *)
  let pids = List.sort_uniq compare (List.map (fun e -> e.Span.ev_pid) evs) in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  List.iter
    (fun pid ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"node %d\"}}"
           pid pid))
    pids;
  List.iter
    (fun (e : Span.event) ->
      sep ();
      Buffer.add_string buf "{\"name\":";
      json_escape buf e.Span.ev_name;
      if e.Span.ev_cat <> "" then begin
        Buffer.add_string buf ",\"cat\":";
        json_escape buf e.Span.ev_cat
      end;
      if e.Span.ev_instant then
        Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\""
      else
        Buffer.add_string buf
          (Printf.sprintf ",\"ph\":\"X\",\"dur\":%s"
             (json_float (e.Span.ev_dur *. 1e6)));
      Buffer.add_string buf
        (Printf.sprintf ",\"ts\":%s,\"pid\":%d,\"tid\":%d"
           (json_float (e.Span.ev_ts *. 1e6))
           e.Span.ev_pid e.Span.ev_tid);
      if e.Span.ev_args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        add_labels buf e.Span.ev_args
      end;
      Buffer.add_string buf "}")
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let to_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
