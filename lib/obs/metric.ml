type counter = { mutable c : int }

let counter () = { c = 0 }
let incr m = m.c <- m.c + 1
let add m n = m.c <- m.c + n
let value m = m.c
let reset m = m.c <- 0

type gauge = { mutable g : float }

let gauge () = { g = 0. }
let set m v = m.g <- v
let set_max m v = if v > m.g then m.g <- v
let get m = m.g
let reset_gauge m = m.g <- 0.
