(* Atomic cells so instruments stay coherent when bumped from several
   domains at once (the lib/par real-parallel backend); on the
   single-domain simulator an uncontended atomic costs within a few
   nanoseconds of the plain mutable field it replaces. *)

type counter = int Atomic.t

let counter () = Atomic.make 0
let incr m = Atomic.incr m
let add m n = ignore (Atomic.fetch_and_add m n)
let value m = Atomic.get m
let reset m = Atomic.set m 0

type gauge = float Atomic.t

let gauge () = Atomic.make 0.
let set m v = Atomic.set m v

let rec set_max m v =
  let cur = Atomic.get m in
  if v > cur && not (Atomic.compare_and_set m cur v) then set_max m v

let get m = Atomic.get m
let reset_gauge m = Atomic.set m 0.
