(** Scalar metrics: monotone counters and last-value gauges.

    These are single atomic cells — cheap enough that hot paths (one
    counter bump per recorded sync event) stay hot on the single-domain
    simulator, and coherent when bumped concurrently from the real
    OCaml 5 domains of the [lib/par] backend.  Identity and naming live
    in {!Registry}; a handle obtained once can be bumped forever without
    a lookup. *)

type counter
(** Monotone (except {!reset}) integer count of discrete occurrences. *)

val counter : unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset : counter -> unit

type gauge
(** Last-observed float value (queue depth, ratio, watermark). *)

val gauge : unit -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the maximum of the current and the new value (high-watermark). *)

val get : gauge -> float
val reset_gauge : gauge -> unit
