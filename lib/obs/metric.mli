(** Scalar metrics: monotone counters and last-value gauges.

    These are plain mutable cells — incrementing one costs the same as the
    ad-hoc [mutable st_foo : int] record fields they replace, so hot paths
    (one counter bump per recorded sync event) stay hot.  Identity and
    naming live in {!Registry}; a handle obtained once can be bumped
    forever without a lookup. *)

type counter
(** Monotone (except {!reset}) integer count of discrete occurrences. *)

val counter : unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset : counter -> unit

type gauge
(** Last-observed float value (queue depth, ratio, watermark). *)

val gauge : unit -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the maximum of the current and the new value (high-watermark). *)

val get : gauge -> float
val reset_gauge : gauge -> unit
