open Sim
module R = Rex_core

let digest_port = "eve.digest"
let verdict_port = "eve.verdict"

type config = {
  replicas : int list;
  workers : int;
  batch_max : int;
  mix_interval : float;
  miss_rate : float;
  heartbeat_period : float;
  election_timeout : float;
  lease_duration : float;
  lease_drift_bound : float;
  lease_unsafe : bool;
  admit_global : int;
  admit_per_client : int;
  admit_queue_soft : int;
  admit_queue_hard : int;
}

let default_config ?(workers = 8) ?(batch_max = 64) ?(miss_rate = 0.)
    ?(lease_duration = 20e-3) ?(lease_drift_bound = 0.2)
    ?(lease_unsafe = false) ?(admit_global = 0) ?(admit_per_client = 0)
    ?(admit_queue_soft = 0) ?(admit_queue_hard = 0) ~replicas () =
  {
    replicas;
    workers;
    batch_max;
    mix_interval = 2e-4;
    miss_rate;
    heartbeat_period = 5e-3;
    election_timeout = 50e-3;
    lease_duration;
    lease_drift_bound;
    lease_unsafe;
    admit_global;
    admit_per_client;
    admit_queue_soft;
    admit_queue_hard;
  }

type stats = {
  requests_executed : int;
  replies_sent : int;
  batches : int;
  rollbacks : int;
  avg_batch : float;
}

type verdict = Ok_batch | Rollback

type t = {
  eng : Engine.t;
  net : Net.t;
  cfg : config;
  node_id : int;
  pstore : Paxos.Store.t;
  app : R.App.t;  (* session-wrapped: see [create] *)
  session : R.Session.Table.t;
  conflict_keys : string -> string list;
  rng : Rng.t;
  mutable pax : Paxos.Replica.t option;
  mutable front : R.Frontend.t option;
  mutable leader : bool;
  (* leader: intake and per-batch callbacks *)
  pending : (string * (string option -> unit)) Queue.t;
  inflight_cbs : (int, (string option -> unit) array) Hashtbl.t;
      (* batch instance -> callbacks *)
  (* every replica: committed batches to execute, in order *)
  exec_queue : (int * string array) Queue.t;
  mutable exec_waiters : Engine.waker list;
  mutable applied : int;  (* highest verdict-final instance *)
  mutable executing : bool;  (* a batch is mid-execution / pre-verdict *)
  mutable read_waiters : Engine.waker list;
      (* reads parked until the state is verdict-final again: mid-batch
         parallel state may roll back and must never be observed *)
  (* leader: digest collection; every replica: decided verdicts *)
  collected : (int, (int * string) list) Hashtbl.t;
  verdicts : (int, verdict) Hashtbl.t;
  mutable verdict_waiters : Engine.waker list;
  (* observability (subsystem "eve", labelled by node) *)
  obs : Obs.t;
  c_requests : Obs.Metric.counter;
  c_replies : Obs.Metric.counter;
  c_batches : Obs.Metric.counter;
  c_rollbacks : Obs.Metric.counter;
  c_batched_reqs : Obs.Metric.counter;
  h_batch_size : Obs.Histogram.t;
}

let node t = t.node_id
let is_primary t = t.leader
let session_table t = t.session

let frontend t =
  match t.front with
  | Some f -> f
  | None -> invalid_arg "Eve.frontend: not registered"

let app_digest t = t.app.R.App.digest ()

let stats t =
  let batches = Obs.Metric.value t.c_batches in
  {
    requests_executed = Obs.Metric.value t.c_requests;
    replies_sent = Obs.Metric.value t.c_replies;
    batches;
    rollbacks = Obs.Metric.value t.c_rollbacks;
    avg_batch =
      (if batches = 0 then 0.
       else float_of_int (Obs.Metric.value t.c_batched_reqs) /. float_of_int batches);
  }

let encode_batch reqs = R.Frontend.encode_batch (Array.to_list reqs)
let decode_batch v = Array.of_list (R.Frontend.decode_batch v)

let wake_all ws = List.iter Engine.wake ws

let wake_executor t =
  let ws = t.exec_waiters in
  t.exec_waiters <- [];
  wake_all ws

let wake_verdicts t =
  let ws = t.verdict_waiters in
  t.verdict_waiters <- [];
  wake_all ws

let wake_readers t =
  let ws = t.read_waiters in
  t.read_waiters <- [];
  wake_all ws

let leader_hint t =
  match t.pax with
  | Some p -> (
    match Paxos.Replica.leader_hint p with
    | Some l -> l
    | None -> List.hd t.cfg.replicas)
  | None -> List.hd t.cfg.replicas

(* --- Leader: verdict decision --- *)

let decide t instance =
  if not (Hashtbl.mem t.verdicts instance) then begin
    let ds = Option.value (Hashtbl.find_opt t.collected instance) ~default:[] in
    let alive =
      List.filter (fun n -> Engine.node_alive t.eng n) t.cfg.replicas
    in
    if List.length ds >= List.length alive then begin
      let digests = List.map snd ds in
      let v =
        match digests with
        | [] -> Rollback
        | d :: rest -> if List.for_all (( = ) d) rest then Ok_batch else Rollback
      in
      Hashtbl.replace t.verdicts instance v;
      let payload =
        Codec.encode
          (fun (i, ok) b ->
            Codec.write_uvarint b i;
            Codec.write_bool b ok)
          (instance, v = Ok_batch)
      in
      List.iter
        (fun peer ->
          if peer <> t.node_id then
            Net.send t.net ~src:t.node_id ~dst:peer ~port:verdict_port payload)
        t.cfg.replicas;
      wake_verdicts t
    end
  end

let on_digest t ~src payload =
  let i, d =
    Codec.decode
      (fun s ->
        let i = Codec.read_uvarint s in
        let d = Codec.read_string s in
        (i, d))
      payload
  in
  (match Hashtbl.find_opt t.verdicts i with
  | Some v ->
    (* already decided: re-send the verdict to the (late) asker *)
    let payload =
      Codec.encode
        (fun (i, ok) b ->
          Codec.write_uvarint b i;
          Codec.write_bool b ok)
        (i, v = Ok_batch)
    in
    if src <> t.node_id then
      Net.send t.net ~src:t.node_id ~dst:src ~port:verdict_port payload
  | None ->
    let prev = Option.value (Hashtbl.find_opt t.collected i) ~default:[] in
    if not (List.mem_assoc src prev) then
      Hashtbl.replace t.collected i ((src, d) :: prev);
    decide t i)

let on_verdict t payload =
  let i, ok =
    Codec.decode
      (fun s ->
        let i = Codec.read_uvarint s in
        let ok = Codec.read_bool s in
        (i, ok))
      payload
  in
  if not (Hashtbl.mem t.verdicts i) then begin
    Hashtbl.replace t.verdicts i (if ok then Ok_batch else Rollback);
    wake_verdicts t
  end

(* Report our digest for a batch and park until the verdict arrives,
   re-reporting periodically in case the leader changed. *)
let await_verdict t instance digest =
  let payload =
    Codec.encode
      (fun (i, d) b ->
        Codec.write_uvarint b i;
        Codec.write_string b d)
      (instance, digest)
  in
  let send () =
    let l = leader_hint t in
    if l = t.node_id then on_digest t ~src:t.node_id payload
    else Net.send t.net ~src:t.node_id ~dst:l ~port:digest_port payload
  in
  send ();
  let rec wait tries =
    match Hashtbl.find_opt t.verdicts instance with
    | Some v -> v
    | None ->
      Engine.park (fun w ->
          t.verdict_waiters <- w :: t.verdict_waiters;
          Engine.schedule t.eng
            ~at:(Engine.clock t.eng +. 0.02)
            (fun () -> Engine.wake w));
      if tries > 0 && not (Hashtbl.mem t.verdicts instance) then send ();
      wait (tries + 1)
  in
  wait 0

(* --- Execution --- *)

(* Run the batch's requests concurrently on [workers] executor fibers;
   whole requests are the unit of parallelism. *)
let execute_parallel t (reqs : string array) =
  let n = Array.length reqs in
  if n = 0 then [||]
  else
  let responses = Array.make n "" in
  let next = ref 0 in
  let remaining = ref n in
  let finished = ref None in
  Engine.park (fun w ->
      finished := Some w;
      for _ = 1 to min t.cfg.workers n do
        ignore
          (Engine.spawn t.eng ~node:t.node_id ~name:"eve.exec" (fun () ->
               let rec work () =
                 if !next < n then begin
                   let i = !next in
                   incr next;
                   responses.(i) <-
                     (try t.app.R.App.execute ~request:reqs.(i) with
                     | Engine.Killed as e -> raise e
                     | _ -> "ERR:handler-exception");
                   Obs.Metric.incr t.c_requests;
                   decr remaining;
                   if !remaining = 0 then Engine.wake w;
                   work ()
                 end
               in
               work ()))
      done);
  responses

let execute_serial t (reqs : string array) =
  Array.map
    (fun request ->
      let r =
        try t.app.R.App.execute ~request with
        | Engine.Killed as e -> raise e
        | _ -> "ERR:handler-exception"
      in
      Obs.Metric.incr t.c_requests;
      r)
    reqs

let process_batch t (instance, reqs) =
  t.executing <- true;
  Obs.Metric.incr t.c_batches;
  Obs.Metric.add t.c_batched_reqs (Array.length reqs);
  Obs.Histogram.observe t.h_batch_size (float_of_int (Array.length reqs));
  let batch_start = Engine.now () in
  (* Snapshot for rollback (execute-verify requires marked state that can
     be checkpointed, compared and rolled back, §5). *)
  let snap = Codec.sink ~initial_capacity:4096 () in
  t.app.R.App.write_checkpoint snap;
  let responses = execute_parallel t reqs in
  (* Eve verifies outputs along with application state: conflicting
     requests whose state effects commute still produce divergent
     responses. *)
  let digest =
    Printf.sprintf "%s/%d" (t.app.R.App.digest ())
      (Hashtbl.hash (Array.to_list responses))
  in
  let verdict = await_verdict t instance digest in
  let responses =
    match verdict with
    | Ok_batch -> responses
    | Rollback ->
      Obs.Metric.incr t.c_rollbacks;
      t.app.R.App.read_checkpoint (Codec.source (Codec.contents snap));
      execute_serial t reqs
  in
  let sp = Obs.spans t.obs in
  if Obs.Span.enabled sp then
    Obs.Span.complete sp ~cat:"eve" ~pid:t.node_id ~name:"batch"
      ~ts:batch_start
      ~dur:(Engine.now () -. batch_start)
      ();
  (* Leader answers its clients once the batch outcome is final. *)
  (match Hashtbl.find_opt t.inflight_cbs instance with
  | Some cbs when Array.length cbs = Array.length responses ->
    Hashtbl.remove t.inflight_cbs instance;
    Array.iteri
      (fun i cb ->
        Obs.Metric.incr t.c_replies;
        cb (Some responses.(i)))
      cbs
  | Some _ | None -> ());
  t.applied <- max t.applied instance;
  t.executing <- false;
  wake_readers t

let executor_loop t () =
  let rec next_batch () =
    match Queue.take_opt t.exec_queue with
    | Some b -> b
    | None ->
      Engine.park (fun w -> t.exec_waiters <- w :: t.exec_waiters);
      next_batch ()
  in
  let rec loop () =
    process_batch t (next_batch ());
    loop ()
  in
  loop ()

(* --- Mixer (leader) --- *)

(* Greedy batch formation: a request joins the batch only if none of its
   conflict keys are already claimed; [miss_rate] models an imperfect
   mixer that sometimes fails to see a conflict. *)
let form_batch t =
  let claimed = Hashtbl.create 32 in
  let batch = ref [] and skipped = ref [] in
  let count = ref 0 in
  while !count < t.cfg.batch_max && not (Queue.is_empty t.pending) do
    let (req, cb) = Queue.pop t.pending in
    let keys = t.conflict_keys req in
    let blind = t.cfg.miss_rate > 0. && Rng.float t.rng 1.0 < t.cfg.miss_rate in
    if blind || not (List.exists (Hashtbl.mem claimed) keys) then begin
      List.iter (fun k -> Hashtbl.replace claimed k ()) keys;
      batch := (req, cb) :: !batch;
      incr count
    end
    else skipped := (req, cb) :: !skipped
  done;
  (* conflicting requests wait for a later batch, keeping their order *)
  List.iter (fun r -> Queue.push r t.pending) (List.rev !skipped);
  Array.of_list (List.rev !batch)

let spawn_mixer t =
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"eve.mixer" (fun () ->
         while true do
           Engine.sleep t.cfg.mix_interval;
           if t.leader && not (Queue.is_empty t.pending) then begin
             let pax = Option.get t.pax in
             if Paxos.Replica.is_leader pax && not (Paxos.Replica.in_flight pax)
             then begin
               let items = form_batch t in
               if Array.length items > 0 then begin
                 let reqs = Array.map fst items in
                 let instance = Paxos.Replica.next_instance pax in
                 if Paxos.Replica.propose pax (encode_batch reqs) then
                   Hashtbl.replace t.inflight_cbs instance (Array.map snd items)
                 else Array.iter (fun (_, cb) -> cb None) items
               end
             end
           end
         done))

(* A committed batch enters the execute-verify pipeline in log order. *)
let deliver_batch t i v =
  match decode_batch v with
  | reqs ->
    Queue.push (i, reqs) t.exec_queue;
    wake_executor t
  | exception Codec.Decode_error _ -> ()

(* Rolling-upgrade support: a replacement server created over the old
   server's store re-runs the committed prefix through the mixer to
   rebuild app and session state.  Call between [create] and [start]. *)
let replay t = Paxos.Replica.replay_committed t.pstore (deliver_batch t)

(* --- Construction --- *)

let create net rpc cfg ~node ~paxos_store ~conflict_keys factory =
  let eng = Net.engine net in
  let rt = Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node ~slots:1 in
  let api = R.Api.make rt in
  let session =
    R.Session.Table.create (Engine.obs eng) ~stack:"eve" ~node ()
  in
  (* Batches execute their requests in parallel, so two retries of the
     same request inside one batch would race the duplicate check.  The
     per-client conflict key below keeps a client's requests in distinct
     batches, and batches are processed serially — which makes the
     in-execute check deterministic, mirroring the SMR argument. *)
  let app = R.Session.wrap ~table:session ~dedup_in_execute:true (factory api) in
  let conflict_keys =
    Sched.Conflict.with_session ~obs:(Engine.obs eng) ~subsystem:"eve" ~node
      conflict_keys
  in
  if R.Api.seal api <> [] then
    invalid_arg
      "Eve.create: applications with background timers are not supported by \
       the execute-verify model (batch boundaries are the only \
       consistency-check points, paper §5)";
  let obs = Engine.obs eng in
  let labels = [ ("node", string_of_int node) ] in
  let c name = Obs.counter obs ~subsystem:"eve" ~labels name in
  let t =
    {
      eng;
      net;
      cfg;
      node_id = node;
      pstore = paxos_store;
      app;
      session;
      conflict_keys;
      rng = Rng.split (Engine.rng eng);
      pax = None;
      front = None;
      leader = false;
      pending = Queue.create ();
      inflight_cbs = Hashtbl.create 16;
      exec_queue = Queue.create ();
      exec_waiters = [];
      applied = 0;
      executing = false;
      read_waiters = [];
      collected = Hashtbl.create 64;
      verdicts = Hashtbl.create 64;
      verdict_waiters = [];
      obs;
      c_requests = c "requests_executed";
      c_replies = c "replies_sent";
      c_batches = c "batches";
      c_rollbacks = c "rollbacks";
      c_batched_reqs = c "batched_requests";
      h_batch_size = Obs.histogram obs ~subsystem:"eve" ~labels "batch_size";
    }
  in
  Net.register net ~node ~port:digest_port (fun ~src payload ->
      on_digest t ~src payload);
  Net.register net ~node ~port:verdict_port (fun ~src:_ payload ->
      on_verdict t payload);
  t.front <-
    Some
      (R.Frontend.register rpc ~node ~table:session
         ?admission:
           (if
              cfg.admit_global = 0 && cfg.admit_per_client = 0
              && cfg.admit_queue_soft = 0 && cfg.admit_queue_hard = 0
            then None
            else
              Some
                (R.Frontend.admission ~max_global:cfg.admit_global
                   ~max_per_client:cfg.admit_per_client
                   ~queue_soft:cfg.admit_queue_soft
                   ~queue_hard:cfg.admit_queue_hard
                   ~queue_depth:(fun () -> Queue.length t.pending)
                   ()))
         ~reads:
           {
             R.Frontend.r_peers =
               (fun () ->
                 match t.pax with
                 | Some p -> Paxos.Replica.peers p
                 | None -> t.cfg.replicas);
             r_lease_valid =
               (fun () ->
                 t.leader
                 &&
                 match t.pax with
                 | Some p -> Paxos.Replica.holds_lease p
                 | None -> false);
             r_read_index =
               (fun () ->
                 match t.pax with
                 | Some p -> Paxos.Replica.read_index p
                 | None -> 0);
             r_applied_upto =
               (fun () -> if t.executing then -1 else t.applied);
             r_read_local =
               (fun request cb ->
                 (* Mid-batch state may roll back after a verdict: park
                    until the state is verdict-final again. *)
                 let rec go () =
                   if t.executing then begin
                     Engine.park (fun w ->
                         t.read_waiters <- w :: t.read_waiters);
                     go ()
                   end
                   else cb (Some (t.app.R.App.query ~request))
                 in
                 go ());
             r_lease_unsafe = t.cfg.lease_unsafe;
           }
         {
           R.Frontend.is_leader = (fun () -> t.leader);
           leader_hint =
             (fun () ->
               match t.pax with
               | Some p -> Paxos.Replica.leader_hint p
               | None -> None);
           enqueue = (fun request cb -> Queue.push (request, cb) t.pending);
           query = (fun request -> Some (t.app.R.App.query ~request));
         });
  t

let start t =
  let pax_cfg =
    {
      Paxos.Replica.me = t.node_id;
      peers = t.cfg.replicas;
      heartbeat_period = t.cfg.heartbeat_period;
      election_timeout = t.cfg.election_timeout;
      max_inflight = 1;
      sync_latency = 0.;
      lease_duration = t.cfg.lease_duration;
      lease_drift_bound = t.cfg.lease_drift_bound;
    }
  in
  let cbs =
    {
      Paxos.Replica.on_committed = (fun i v -> deliver_batch t i v);
      on_become_leader = (fun () -> t.leader <- true);
      on_new_leader =
        (fun _ ->
          if t.leader then begin
            t.leader <- false;
            Queue.iter (fun (_, cb) -> cb None) t.pending;
            Queue.clear t.pending;
            (* Batches we proposed may still commit, but a deposed
               leader no longer answers for them: fire their callbacks
               now so the frontend releases its in-flight entries and
               client retries can be served by the new leader. *)
            Hashtbl.iter
              (fun _ cbs -> Array.iter (fun cb -> cb None) cbs)
              t.inflight_cbs;
            Hashtbl.reset t.inflight_cbs
          end);
    }
  in
  let pax = Paxos.Replica.create t.net pax_cfg t.pstore cbs in
  t.pax <- Some pax;
  Paxos.Replica.start pax;
  ignore (Engine.spawn t.eng ~node:t.node_id ~name:"eve.executor" (executor_loop t));
  spawn_mixer t

let submit t request cb =
  if not t.leader then cb None else Queue.push (request, cb) t.pending

let query t request = t.app.R.App.query ~request
