(** An execute-verify replica in the style of Eve (Kapritsos et al.,
    OSDI 2012) — the system paper §5 compares Rex against.

    A {e mixer} on the leader packs incoming requests into batches whose
    members are believed non-conflicting (using an application-supplied
    conflict-key oracle).  The batch itself goes through consensus; every
    replica then executes the batch {e concurrently and independently} on
    its own thread pool, snapshots, and sends a state digest to the
    leader.  If the digests diverge — a conflict the mixer missed — all
    replicas roll the batch back and re-execute it {e sequentially}, which
    is deterministic.

    Faithful to the paper's critique, this implementation:
    - treats a whole request as the unit of parallelism (the f = 100%
      configuration of Fig. 8a): two requests that share any conflict key
      never run in the same batch, no matter how briefly they would have
      held a common lock;
    - rejects applications with background timers — "Eve uses the end of
      processing a request batch as the point to check state consistency,
      assuming that the incoming requests are the only triggers to state
      changes" (§5);
    - supports [miss_rate], the probability that the mixer misses a true
      conflict, to study the cost of imperfect mixers (rollback + serial
      re-execution).

    The same {!Rex_core.App.factory} applications run unchanged: their
    synchronization wrappers take the native path. *)

type t

type config = {
  replicas : int list;
  workers : int;  (** executor threads per replica *)
  batch_max : int;
  mix_interval : float;
  miss_rate : float;  (** P(mixer misses a true conflict) *)
  heartbeat_period : float;
  election_timeout : float;
  lease_duration : float;  (** [<= 0.] disables leases *)
  lease_drift_bound : float;
  lease_unsafe : bool;  (** testing only: skip the lease check on reads *)
  admit_global : int;
      (** frontend admission bounds, mirroring [Rex_core.Config]; the
          queue-depth probe is the mixer's pending queue.  0 = off *)
  admit_per_client : int;
  admit_queue_soft : int;
  admit_queue_hard : int;
}

val default_config : ?workers:int -> ?batch_max:int -> ?miss_rate:float ->
  ?lease_duration:float -> ?lease_drift_bound:float -> ?lease_unsafe:bool ->
  ?admit_global:int -> ?admit_per_client:int -> ?admit_queue_soft:int ->
  ?admit_queue_hard:int -> replicas:int list -> unit -> config

type stats = {
  requests_executed : int;
  replies_sent : int;
  batches : int;
  rollbacks : int;  (** batches that diverged and were re-run serially *)
  avg_batch : float;
}

val create :
  Sim.Net.t ->
  Sim.Rpc.t ->
  config ->
  node:int ->
  paxos_store:Paxos.Store.t ->
  conflict_keys:(string -> string list) ->
  Rex_core.App.factory ->
  t
(** Raises [Invalid_argument] if the application registers background
    timers (unsupported by the execute-verify model, §5). *)

val start : t -> unit

val replay : t -> unit
(** Queue the store's committed prefix for re-execution — the rolling
    upgrade path: a replacement server [create]d over the retired
    server's {!Paxos.Store.t} calls this before {!start} to rebuild app
    and session state (this stack has no checkpoint recovery). *)

val node : t -> int
val is_primary : t -> bool

val session_table : t -> Rex_core.Session.Table.t
(** The replica's client-session table (see {!Rex_core.Session}). *)

val frontend : t -> Rex_core.Frontend.t
(** The replica's client-facing frontend, for history taps. *)

val submit : t -> string -> (string option -> unit) -> unit
val query : t -> string -> string
val app_digest : t -> string
val stats : t -> stats
