(** A fixed pool of OCaml 5 domains draining a shared task queue — the
    domains backend's analogue of the simulator event loop.  One pool
    per backend; its size is the real-parallelism budget (defaults to
    [Domain.recommended_domain_count], i.e. the machine's cores).

    Registers metrics under subsystem ["par"]: [pool_tasks] (tasks
    executed), [queue_depth] / [queue_depth_max] (run-queue length), and
    a per-domain [domain_busy] gauge of cumulative seconds spent running
    tasks (busy ÷ wall-clock = utilization). *)

type t

val create : obs:Obs.t -> clock:Clock.t -> domains:int -> unit -> t

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task; callable from any domain (including pool workers).
    Raises [Invalid_argument] after {!shutdown}. *)

val submit_after : t -> delay:float -> (unit -> unit) -> unit
(** Enqueue a task once [delay] seconds of wall-clock have passed
    (millisecond firing granularity — see the timer-wheel comment). *)

val first_exn : t -> exn option
(** First exception that escaped a task, if any.  Fiber exceptions are
    routed through [Fiber]'s handler and never reach this; a non-[None]
    value indicates a backend bug. *)

val shutdown : t -> unit
(** Stop the timer, let workers drain the queue, join all domains.
    Timers still pending are dropped. *)
