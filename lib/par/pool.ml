module RawM = Stdlib.Mutex

type t = {
  m : RawM.t;
  cv : Condition.t;
  q : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  clock : Clock.t;
  mutable first_exn : exn option;  (* under [m]; backstop, see [Fiber] *)
  (* timer wheel *)
  tm : RawM.t;
  timers : (unit -> unit) Sim.Pqueue.t;
  mutable timer_stop : bool;
  mutable timer : unit Domain.t option;
  (* metrics *)
  c_tasks : Obs.Metric.counter;
  g_depth : Obs.Metric.gauge;
  g_depth_max : Obs.Metric.gauge;
  g_busy : Obs.Metric.gauge array;
}

let size t = Array.length t.g_busy

let record_exn t e =
  RawM.lock t.m;
  if t.first_exn = None then t.first_exn <- Some e;
  RawM.unlock t.m

let first_exn t =
  RawM.lock t.m;
  let e = t.first_exn in
  RawM.unlock t.m;
  e

let rec worker_loop t i =
  RawM.lock t.m;
  while Queue.is_empty t.q && not t.stop do
    Condition.wait t.cv t.m
  done;
  match Queue.take_opt t.q with
  | None ->
    (* stop requested and the queue is drained *)
    RawM.unlock t.m
  | Some task ->
    Obs.Metric.set t.g_depth (float_of_int (Queue.length t.q));
    RawM.unlock t.m;
    Obs.Metric.incr t.c_tasks;
    let t0 = Clock.now t.clock in
    (try task () with e -> record_exn t e);
    let g = t.g_busy.(i) in
    (* only domain [i] writes its own busy gauge *)
    Obs.Metric.set g (Obs.Metric.get g +. (Clock.now t.clock -. t0));
    worker_loop t i

let submit t task =
  RawM.lock t.m;
  if t.stop then begin
    RawM.unlock t.m;
    invalid_arg "Par.Pool.submit: pool is shut down"
  end;
  Queue.push task t.q;
  let d = float_of_int (Queue.length t.q) in
  Obs.Metric.set t.g_depth d;
  Obs.Metric.set_max t.g_depth_max d;
  Condition.signal t.cv;
  RawM.unlock t.m

(* The stdlib [Condition] has no timed wait, so the timer wheel is a
   polling domain: fire everything due, then sleep until the next
   deadline, capped at 1ms so shutdown and freshly-armed earlier timers
   are noticed promptly.  Millisecond wakeup granularity is far below
   the sleeps the stacks use (network timeouts, checkpoint periods). *)
let rec timer_loop t =
  let now = Clock.now t.clock in
  let due = ref [] in
  RawM.lock t.tm;
  let rec collect () =
    match Sim.Pqueue.peek_priority t.timers with
    | Some at when at <= now -> (
      match Sim.Pqueue.pop t.timers with
      | Some (_, f) ->
        due := f :: !due;
        collect ()
      | None -> ())
    | Some _ | None -> ()
  in
  collect ();
  let next = Sim.Pqueue.peek_priority t.timers in
  let stopping = t.timer_stop in
  RawM.unlock t.tm;
  List.iter (fun f -> try submit t f with Invalid_argument _ -> ()) (List.rev !due);
  if not stopping then begin
    let pause =
      match next with
      | Some at -> Float.max 50e-6 (Float.min 1e-3 (at -. now))
      | None -> 1e-3
    in
    Unix.sleepf pause;
    timer_loop t
  end

let submit_after t ~delay task =
  RawM.lock t.tm;
  if t.timer_stop then begin
    RawM.unlock t.tm;
    invalid_arg "Par.Pool.submit_after: pool is shut down"
  end;
  Sim.Pqueue.add t.timers ~priority:(Clock.now t.clock +. Float.max 0. delay) task;
  RawM.unlock t.tm

let create ~obs ~clock ~domains () =
  if domains <= 0 then invalid_arg "Par.Pool.create: domains";
  let label i = [ ("domain", string_of_int i) ] in
  let t =
    {
      m = RawM.create ();
      cv = Condition.create ();
      q = Queue.create ();
      stop = false;
      workers = [];
      clock;
      first_exn = None;
      tm = RawM.create ();
      timers = Sim.Pqueue.create ();
      timer_stop = false;
      timer = None;
      c_tasks = Obs.counter obs ~subsystem:"par" "pool_tasks";
      g_depth = Obs.gauge obs ~subsystem:"par" "queue_depth";
      g_depth_max = Obs.gauge obs ~subsystem:"par" "queue_depth_max";
      g_busy =
        Array.init domains (fun i ->
            Obs.gauge obs ~subsystem:"par" ~labels:(label i) "domain_busy");
    }
  in
  t.workers <- List.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t.timer <- Some (Domain.spawn (fun () -> timer_loop t));
  t

let shutdown t =
  RawM.lock t.tm;
  t.timer_stop <- true;
  RawM.unlock t.tm;
  Option.iter Domain.join t.timer;
  t.timer <- None;
  RawM.lock t.m;
  t.stop <- true;
  Condition.broadcast t.cv;
  RawM.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []
