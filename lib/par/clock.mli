(** Wall-clock time for the domains backend, zeroed at backend creation
    so that readings are comparable with the simulator's virtual time
    (both start at 0). *)

type t

val create : unit -> t

val now : t -> float
(** Seconds since [create]. *)

val spin_for : t -> float -> unit
(** Busy-hold the calling core for the given duration — the wall-clock
    realization of [Engine.work]. *)
