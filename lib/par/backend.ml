open Sim

(* The concrete synchronization objects are uniform closure records so a
   [Rexsync] wrapper holds "a mutex of whatever backend built it" with no
   functor plumbing at every use site.  [mutex_repr] lets a condition
   variable recover the underlying primitive of a mutex from its own
   backend ([Msync.Cond.wait] and [Sync.Cond.wait] both need it), and
   makes cross-backend mixing a loud error instead of a hang. *)

type mutex_repr = ..

type mutex = {
  m_lock : unit -> unit;
  m_try_lock : unit -> bool;
  m_unlock : unit -> unit;
  m_locked : unit -> bool;
  m_repr : mutex_repr;
}

type cond = {
  c_wait : mutex -> unit;
  c_signal : unit -> unit;
  c_broadcast : unit -> unit;
}

type rwlock = {
  rw_rd_lock : unit -> unit;
  rw_rd_unlock : unit -> unit;
  rw_wr_lock : unit -> unit;
  rw_wr_unlock : unit -> unit;
}

type sem = {
  s_acquire : unit -> unit;
  s_try_acquire : unit -> bool;
  s_release : unit -> unit;
  s_value : unit -> int;
}

module type S = sig
  type t

  val name : string

  val deterministic : bool
  (** Whether two runs from the same seed interleave identically.  A
      deterministic backend needs no cross-domain serialization: the
      record/replay [Guard] collapses to a no-op. *)

  val spawn : t -> node:int -> name:string -> (unit -> unit) -> unit
  val mutex : t -> mutex
  val cond : t -> cond
  val rwlock : t -> rwlock
  val sem : t -> int -> sem

  val rng_split : t -> Rng.t
  (** Split an independent stream off the backend's root generator.
      Callable from any domain (the backend serializes the split). *)

  val fresh_uid : t -> int
  val obs : t -> Obs.t

  val clock : t -> float
  (** Current time (virtual or wall), readable outside fibers. *)

  val guard : t -> Guard.t option
  val sim_engine : t -> Engine.t option
end

type t = B : (module S with type t = 'a) * 'a -> t

let name (B ((module M), x)) = ignore x; M.name
let deterministic (B ((module M), _)) = M.deterministic
let spawn (B ((module M), x)) ~node ~name main = M.spawn x ~node ~name main
let mutex (B ((module M), x)) = M.mutex x
let cond (B ((module M), x)) = M.cond x
let rwlock (B ((module M), x)) = M.rwlock x
let sem (B ((module M), x)) n = M.sem x n
let rng_split (B ((module M), x)) = M.rng_split x
let fresh_uid (B ((module M), x)) = M.fresh_uid x
let obs (B ((module M), x)) = M.obs x
let clock (B ((module M), x)) = M.clock x
let guard (B ((module M), x)) = M.guard x
let sim_engine (B ((module M), x)) = M.sim_engine x

let sim_engine_exn b =
  match sim_engine b with
  | Some eng -> eng
  | None ->
    invalid_arg
      (Printf.sprintf
         "Par.Backend: the %s backend has no simulator engine (this code \
          path is sim-only)"
         (name b))

let guarded b f = match guard b with None -> f () | Some g -> Guard.with_ g f

(* --- The simulator as a backend --- *)

type mutex_repr += Sim_mutex of Msync.Mutex.t

let cross_backend () =
  invalid_arg "Par.Backend: condition and mutex come from different backends"

module Sim_backend = struct
  type t = Engine.t

  let name = "sim"
  let deterministic = true
  let spawn eng ~node ~name main = ignore (Engine.spawn eng ~node ~name main)

  let mutex eng =
    let real = Msync.Mutex.create eng in
    {
      m_lock = (fun () -> Msync.Mutex.lock real);
      m_try_lock = (fun () -> Msync.Mutex.try_lock real);
      m_unlock = (fun () -> Msync.Mutex.unlock real);
      m_locked = (fun () -> Msync.Mutex.locked real);
      m_repr = Sim_mutex real;
    }

  let cond eng =
    let real = Msync.Cond.create eng in
    {
      c_wait =
        (fun m ->
          match m.m_repr with
          | Sim_mutex r -> Msync.Cond.wait real r
          | _ -> cross_backend ());
      c_signal = (fun () -> Msync.Cond.signal real);
      c_broadcast = (fun () -> Msync.Cond.broadcast real);
    }

  let rwlock eng =
    let real = Msync.Rwlock.create eng in
    {
      rw_rd_lock = (fun () -> Msync.Rwlock.rd_lock real);
      rw_rd_unlock = (fun () -> Msync.Rwlock.rd_unlock real);
      rw_wr_lock = (fun () -> Msync.Rwlock.wr_lock real);
      rw_wr_unlock = (fun () -> Msync.Rwlock.wr_unlock real);
    }

  let sem eng permits =
    let real = Msync.Sem.create eng permits in
    {
      s_acquire = (fun () -> Msync.Sem.acquire real);
      s_try_acquire = (fun () -> Msync.Sem.try_acquire real);
      s_release = (fun () -> Msync.Sem.release real);
      s_value = (fun () -> Msync.Sem.value real);
    }

  let rng_split eng = Rng.split (Engine.rng eng)
  let fresh_uid = Engine.fresh_uid
  let obs = Engine.obs
  let clock = Engine.clock
  let guard _ = None
  let sim_engine eng = Some eng
end

let of_sim eng = B ((module Sim_backend), eng)
