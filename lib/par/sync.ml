module RawM = Stdlib.Mutex
module Engine = Sim.Engine

(* Fiber-level blocking primitives for the domains backend, mirroring
   [Sim.Msync]'s semantics (direct hand-off on release; ownership errors
   raise [Invalid_argument]; the rwlock batches readers and does not
   starve writers).  One deliberate difference: where Msync picks a
   random waiter (the seeded nondeterminism Rex records), these queues
   are FIFO — on real domains the OS scheduler supplies the
   nondeterminism, in which order waiters reach the queue at all.

   A fiber migrates between pool domains across suspension points, so a
   stdlib [Mutex] cannot be the fiber-level lock (unlocking from a
   thread other than the locker is undefined).  Each primitive instead
   keeps explicit holder/waiter state under a short-lived raw spinlock
   of its own.  Park-register callbacks run in scheduler context on the
   fiber's current domain, where taking that raw lock is safe but
   performing effects is not — hence the [~me] plumbing: the caller's
   tid is captured before parking. *)

module Mutex = struct
  type t = {
    m : RawM.t;
    mutable holder : Engine.tid option;
    waiters : (Engine.tid * Engine.Protocol.waker) Queue.t;
  }

  let create () = { m = RawM.create (); holder = None; waiters = Queue.create () }

  let try_lock_as t me =
    RawM.lock t.m;
    let got = t.holder = None in
    if got then t.holder <- Some me;
    RawM.unlock t.m;
    got

  let try_lock t = try_lock_as t (Engine.self ())

  let lock t =
    let me = Engine.self () in
    if not (try_lock_as t me) then
      Engine.park (fun w ->
          RawM.lock t.m;
          if t.holder = None then begin
            t.holder <- Some me;
            RawM.unlock t.m;
            Engine.wake w
          end
          else begin
            Queue.push (me, w) t.waiters;
            RawM.unlock t.m
          end)

  (* Direct hand-off: the next waiter becomes the holder before it is
     woken, so no barging fiber can sneak in between. *)
  let unlock_as t me =
    RawM.lock t.m;
    (match t.holder with
    | Some h when h = me -> ()
    | _ ->
      RawM.unlock t.m;
      invalid_arg "Par.Sync.Mutex.unlock: calling fiber does not hold the lock");
    match Queue.take_opt t.waiters with
    | Some (tid, w) ->
      t.holder <- Some tid;
      RawM.unlock t.m;
      Engine.wake w
    | None ->
      t.holder <- None;
      RawM.unlock t.m

  let unlock t = unlock_as t (Engine.self ())

  let locked t =
    RawM.lock t.m;
    let l = t.holder <> None in
    RawM.unlock t.m;
    l

  let holder t =
    RawM.lock t.m;
    let h = t.holder in
    RawM.unlock t.m;
    h
end

module Cond = struct
  type t = { m : RawM.t; waiters : Engine.Protocol.waker Queue.t }

  let create () = { m = RawM.create (); waiters = Queue.create () }

  let wait t (mu : Mutex.t) =
    let me = Engine.self () in
    Engine.park (fun w ->
        (* Enqueue before releasing the mutex: a signaller that runs
           between the two already sees this waiter. *)
        RawM.lock t.m;
        Queue.push w t.waiters;
        RawM.unlock t.m;
        Mutex.unlock_as mu me);
    Mutex.lock mu

  let signal t =
    RawM.lock t.m;
    let w = Queue.take_opt t.waiters in
    RawM.unlock t.m;
    Option.iter Engine.wake w

  let broadcast t =
    RawM.lock t.m;
    let ws = Queue.fold (fun acc w -> w :: acc) [] t.waiters in
    Queue.clear t.waiters;
    RawM.unlock t.m;
    List.iter Engine.wake (List.rev ws)
end

module Rwlock = struct
  type t = {
    m : RawM.t;
    mutable writer : Engine.tid option;
    mutable readers : int;
    wr_waiters : (Engine.tid * Engine.Protocol.waker) Queue.t;
    rd_waiters : Engine.Protocol.waker Queue.t;
  }

  let create () =
    {
      m = RawM.create ();
      writer = None;
      readers = 0;
      wr_waiters = Queue.create ();
      rd_waiters = Queue.create ();
    }

  (* Readers barge only while no writer holds or waits (as in Msync);
     when a writer releases into waiting readers, the whole batch is
     admitted at once, then the next writer gets its turn. *)
  let rd_lock t =
    Engine.park (fun w ->
        RawM.lock t.m;
        if t.writer = None && Queue.is_empty t.wr_waiters then begin
          t.readers <- t.readers + 1;
          RawM.unlock t.m;
          Engine.wake w
        end
        else begin
          Queue.push w t.rd_waiters;
          RawM.unlock t.m
        end)

  let rd_unlock t =
    RawM.lock t.m;
    if t.readers <= 0 then begin
      RawM.unlock t.m;
      invalid_arg "Par.Sync.Rwlock.rd_unlock: no reader holds the lock"
    end;
    t.readers <- t.readers - 1;
    if t.readers = 0 && t.writer = None then begin
      match Queue.take_opt t.wr_waiters with
      | Some (tid, w) ->
        t.writer <- Some tid;
        RawM.unlock t.m;
        Engine.wake w
      | None -> RawM.unlock t.m
    end
    else RawM.unlock t.m

  let wr_lock t =
    let me = Engine.self () in
    Engine.park (fun w ->
        RawM.lock t.m;
        if t.writer = None && t.readers = 0 then begin
          t.writer <- Some me;
          RawM.unlock t.m;
          Engine.wake w
        end
        else begin
          Queue.push (me, w) t.wr_waiters;
          RawM.unlock t.m
        end)

  let wr_unlock t =
    let me = Engine.self () in
    RawM.lock t.m;
    (match t.writer with
    | Some h when h = me -> ()
    | _ ->
      RawM.unlock t.m;
      invalid_arg "Par.Sync.Rwlock.wr_unlock: calling fiber is not the writer");
    t.writer <- None;
    if not (Queue.is_empty t.rd_waiters) then begin
      let ws = Queue.fold (fun acc w -> w :: acc) [] t.rd_waiters in
      Queue.clear t.rd_waiters;
      t.readers <- List.length ws;
      RawM.unlock t.m;
      List.iter Engine.wake (List.rev ws)
    end
    else
      match Queue.take_opt t.wr_waiters with
      | Some (tid, w) ->
        t.writer <- Some tid;
        RawM.unlock t.m;
        Engine.wake w
      | None -> RawM.unlock t.m

  let holders t =
    RawM.lock t.m;
    let h =
      match t.writer with
      | Some tid -> `Writer tid
      | None -> if t.readers > 0 then `Readers t.readers else `Free
    in
    RawM.unlock t.m;
    h
end

module Sem = struct
  type t = {
    m : RawM.t;
    mutable permits : int;
    waiters : Engine.Protocol.waker Queue.t;
  }

  let create permits =
    if permits < 0 then invalid_arg "Par.Sync.Sem.create";
    { m = RawM.create (); permits; waiters = Queue.create () }

  let acquire t =
    Engine.park (fun w ->
        RawM.lock t.m;
        if t.permits > 0 then begin
          t.permits <- t.permits - 1;
          RawM.unlock t.m;
          Engine.wake w
        end
        else begin
          Queue.push w t.waiters;
          RawM.unlock t.m
        end)

  let try_acquire t =
    RawM.lock t.m;
    let got = t.permits > 0 in
    if got then t.permits <- t.permits - 1;
    RawM.unlock t.m;
    got

  (* Hand-off: a released permit goes straight to the oldest waiter
     rather than back into [permits], so a barger cannot overtake it. *)
  let release t =
    RawM.lock t.m;
    match Queue.take_opt t.waiters with
    | Some w ->
      RawM.unlock t.m;
      Engine.wake w
    | None ->
      t.permits <- t.permits + 1;
      RawM.unlock t.m

  let value t =
    RawM.lock t.m;
    let v = t.permits in
    RawM.unlock t.m;
    v
end
