(** The execution backend behind the stacks: what [Rexsync.Runtime] and
    everything above it consume from "the engine", abstracted so the same
    record/replay machinery runs on the deterministic simulator or on
    real OCaml 5 domains ([Domains], DESIGN.md §10).

    The split follows the effect protocol ([Sim.Engine.Protocol]):
    {e contextual} operations performed from inside a fiber
    ([Engine.now], [work], [sleep], [park], [yield], [self]) are effects
    handled by whichever backend runs the fiber and need no handle at
    all; {e creation-scoped} operations — spawning fibers, creating
    synchronization objects, splitting rng streams, minting uids — go
    through a {!t} handle. *)

type mutex_repr = ..

type mutex = {
  m_lock : unit -> unit;
  m_try_lock : unit -> bool;
  m_unlock : unit -> unit;
  m_locked : unit -> bool;
  m_repr : mutex_repr;
}
(** A backend's native blocking mutex as a uniform closure record
    ([Msync.Mutex] on sim, [Par.Sync.Mutex] on domains). *)

type cond = {
  c_wait : mutex -> unit;
      (** Raises [Invalid_argument] if the mutex belongs to another
          backend. *)
  c_signal : unit -> unit;
  c_broadcast : unit -> unit;
}

type rwlock = {
  rw_rd_lock : unit -> unit;
  rw_rd_unlock : unit -> unit;
  rw_wr_lock : unit -> unit;
  rw_wr_unlock : unit -> unit;
}

type sem = {
  s_acquire : unit -> unit;
  s_try_acquire : unit -> bool;
  s_release : unit -> unit;
  s_value : unit -> int;
}

(** What a backend implements. *)
module type S = sig
  type t

  val name : string

  val deterministic : bool
  (** Whether two runs from the same seed interleave identically.  A
      deterministic backend needs no cross-domain serialization: the
      record/replay [Guard] collapses to a no-op. *)

  val spawn : t -> node:int -> name:string -> (unit -> unit) -> unit
  val mutex : t -> mutex
  val cond : t -> cond
  val rwlock : t -> rwlock
  val sem : t -> int -> sem

  val rng_split : t -> Sim.Rng.t
  (** Split an independent stream off the backend's root generator.
      Callable from any domain (the backend serializes the split). *)

  val fresh_uid : t -> int
  val obs : t -> Obs.t

  val clock : t -> float
  (** Current time (virtual or wall), readable outside fibers. *)

  val guard : t -> Guard.t option
  val sim_engine : t -> Sim.Engine.t option
end

type t = B : (module S with type t = 'a) * 'a -> t
(** A packed backend instance. *)

val name : t -> string
val deterministic : t -> bool
val spawn : t -> node:int -> name:string -> (unit -> unit) -> unit
val mutex : t -> mutex
val cond : t -> cond
val rwlock : t -> rwlock
val sem : t -> int -> sem
val rng_split : t -> Sim.Rng.t
val fresh_uid : t -> int
val obs : t -> Obs.t
val clock : t -> float
val guard : t -> Guard.t option

val guarded : t -> (unit -> 'a) -> 'a
(** Run [f] under the backend's guard; a plain call when the backend is
    deterministic.  See {!Guard.with_} for what must not happen inside. *)

val sim_engine : t -> Sim.Engine.t option

val sim_engine_exn : t -> Sim.Engine.t
(** The simulator engine, for sim-only code paths (networked consensus,
    fault injection).  Raises [Invalid_argument] on other backends. *)

(** The simulator instance. *)
module Sim_backend : S with type t = Sim.Engine.t

type mutex_repr += Sim_mutex of Sim.Msync.Mutex.t

val of_sim : Sim.Engine.t -> t
