(** Effect-handler fibers mapped onto a {!Pool} of real domains.

    Handles the same [Sim.Engine.Protocol] effects as the simulator, so
    fiber code written against [Engine.now]/[work]/[sleep]/[park]/
    [yield]/[self] runs unchanged.  Differences from the simulator:
    time is wall-clock, [work] spins the core instead of advancing
    virtual time, and the interleaving comes from the OS scheduler
    rather than a seed. *)

type sched = {
  pool : Pool.t;
  clock : Clock.t;
  on_done : unit -> unit;  (** fiber finished (normally or by exception) *)
  on_exn : exn -> unit;  (** called before [on_done] when the fiber raised *)
}

val spawn : sched -> Sim.Engine.Protocol.fiber_info -> (unit -> unit) -> unit
