(** A reentrant mutual-exclusion guard serializing the record/replay
    bookkeeping of [Rexsync.Runtime] when fibers run on real domains.

    The simulator needs no guard (one domain, fibers switch only at
    effect points), so deterministic backends expose [None] and every
    [with_] collapses to a plain call.  On the domains backend the guard
    is a coarse lock around trace, vector-clock, scoreboard and wrapper
    bookkeeping — the same policy as the paper's C++ runtime, which
    serialized appends to the shared log.

    Guarded sections must not perform blocking fiber effects
    ([park]/[sleep]/[yield] or lock acquisition); [work] is safe because
    the domains backend spins it in place. *)

type t

val create : unit -> t

val with_ : t -> (unit -> 'a) -> 'a
(** Run [f] holding the guard.  Reentrant: nested [with_] from the same
    domain proceeds immediately. *)
