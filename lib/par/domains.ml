module RawM = Stdlib.Mutex
open Sim
module P = Engine.Protocol

type t = {
  pool : Pool.t;
  clock : Clock.t;
  obs : Obs.t;
  rng : Rng.t;  (* under [rng_m]: split from any domain, never drawn raw *)
  rng_m : RawM.t;
  uid : int Atomic.t;
  next_tid : int Atomic.t;
  live : int Atomic.t;
  fin_m : RawM.t;
  fin_c : Condition.t;
  mutable first_exn : exn option;  (* under [fin_m] *)
  g : Guard.t;
  c_fibers : Obs.Metric.counter;
  g_live : Obs.Metric.gauge;
}

let create ?(seed = 42) ?domains () =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let obs = Obs.create () in
  let clock = Clock.create () in
  Obs.set_clock obs (fun () -> Clock.now clock);
  let pool = Pool.create ~obs ~clock ~domains () in
  {
    pool;
    clock;
    obs;
    rng = Rng.create seed;
    rng_m = RawM.create ();
    uid = Atomic.make 0;
    next_tid = Atomic.make 0;
    live = Atomic.make 0;
    fin_m = RawM.create ();
    fin_c = Condition.create ();
    first_exn = None;
    g = Guard.create ();
    c_fibers = Obs.counter obs ~subsystem:"par" "fibers_spawned";
    g_live = Obs.gauge obs ~subsystem:"par" "fibers_live";
  }

let obs t = t.obs
let pool t = t.pool
let domains t = Pool.size t.pool
let now t = Clock.now t.clock

let fiber_finished t =
  Obs.Metric.set t.g_live (float_of_int (Atomic.get t.live - 1));
  if Atomic.fetch_and_add t.live (-1) = 1 then begin
    (* last fiber out: wake any joiner *)
    RawM.lock t.fin_m;
    Condition.broadcast t.fin_c;
    RawM.unlock t.fin_m
  end

let fiber_raised t e =
  RawM.lock t.fin_m;
  if t.first_exn = None then t.first_exn <- Some e;
  RawM.unlock t.fin_m

let sched t =
  {
    Fiber.pool = t.pool;
    clock = t.clock;
    on_done = (fun () -> fiber_finished t);
    on_exn = (fun e -> fiber_raised t e);
  }

let spawn t ~node ?(name = "fiber") main =
  Atomic.incr t.live;
  Obs.Metric.incr t.c_fibers;
  Obs.Metric.set t.g_live (float_of_int (Atomic.get t.live));
  let info =
    {
      P.fi_tid = Atomic.fetch_and_add t.next_tid 1;
      fi_node = node;
      fi_name = name;
    }
  in
  Fiber.spawn (sched t) info main

let join t =
  RawM.lock t.fin_m;
  while Atomic.get t.live > 0 do
    Condition.wait t.fin_c t.fin_m
  done;
  let e = t.first_exn in
  t.first_exn <- None;
  RawM.unlock t.fin_m;
  (match Pool.first_exn t.pool with
  | Some e -> raise e  (* a task escaped the fiber handler: backend bug *)
  | None -> ());
  match e with Some e -> raise e | None -> ()

let shutdown t = Pool.shutdown t.pool

let run t main =
  spawn t ~node:0 ~name:"main" main;
  join t

(* --- As a Backend --- *)

type Backend.mutex_repr += Par_mutex of Sync.Mutex.t

module Backend_impl = struct
  type nonrec t = t

  let name = "domains"
  let deterministic = false
  let spawn t ~node ~name main = spawn t ~node ~name main

  let mutex _ =
    let real = Sync.Mutex.create () in
    {
      Backend.m_lock = (fun () -> Sync.Mutex.lock real);
      m_try_lock = (fun () -> Sync.Mutex.try_lock real);
      m_unlock = (fun () -> Sync.Mutex.unlock real);
      m_locked = (fun () -> Sync.Mutex.locked real);
      m_repr = Par_mutex real;
    }

  let cond _ =
    let real = Sync.Cond.create () in
    {
      Backend.c_wait =
        (fun (m : Backend.mutex) ->
          match m.m_repr with
          | Par_mutex r -> Sync.Cond.wait real r
          | _ ->
            invalid_arg
              "Par.Backend: condition and mutex come from different backends");
      c_signal = (fun () -> Sync.Cond.signal real);
      c_broadcast = (fun () -> Sync.Cond.broadcast real);
    }

  let rwlock _ =
    let real = Sync.Rwlock.create () in
    {
      Backend.rw_rd_lock = (fun () -> Sync.Rwlock.rd_lock real);
      rw_rd_unlock = (fun () -> Sync.Rwlock.rd_unlock real);
      rw_wr_lock = (fun () -> Sync.Rwlock.wr_lock real);
      rw_wr_unlock = (fun () -> Sync.Rwlock.wr_unlock real);
    }

  let sem _ permits =
    let real = Sync.Sem.create permits in
    {
      Backend.s_acquire = (fun () -> Sync.Sem.acquire real);
      s_try_acquire = (fun () -> Sync.Sem.try_acquire real);
      s_release = (fun () -> Sync.Sem.release real);
      s_value = (fun () -> Sync.Sem.value real);
    }

  let rng_split t =
    RawM.lock t.rng_m;
    Fun.protect ~finally:(fun () -> RawM.unlock t.rng_m) (fun () -> Rng.split t.rng)

  let fresh_uid t = Atomic.fetch_and_add t.uid 1
  let obs t = t.obs
  let clock t = Clock.now t.clock
  let guard t = Some t.g
  let sim_engine _ = None
end

let backend t = Backend.B ((module Backend_impl), t)
