type t = {
  m : Mutex.t;
  mutable owner : int;  (* domain id, or -1 when free *)
  mutable depth : int;
}

let none = -1

let create () = { m = Mutex.create (); owner = none; depth = 0 }

(* Reentrancy is tracked by domain, which is sound because guarded
   sections never perform fiber effects: a fiber inside one cannot
   suspend, so it cannot migrate off its domain, and no other fiber can
   run on that domain until the section exits. *)
let with_ g f =
  let me = (Domain.self () :> int) in
  if g.owner = me then begin
    g.depth <- g.depth + 1;
    Fun.protect ~finally:(fun () -> g.depth <- g.depth - 1) f
  end
  else begin
    Mutex.lock g.m;
    g.owner <- me;
    g.depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        g.depth <- 0;
        g.owner <- none;
        Mutex.unlock g.m)
      f
  end
