(** The real-parallel backend: fibers multiplexed onto a fixed {!Pool}
    of OCaml 5 domains, wall-clock time, FIFO {!Sync} primitives.

    What it deliberately does not have (DESIGN.md §10): virtual time,
    fault injection ([crash_node]) and the simulated network — consensus
    between replicas stays on the simulator.  This backend exists for
    the paper's Fig. 8 question: how fast the {e execution} stage of one
    replica runs when its worker threads are real. *)

type t

val create : ?seed:int -> ?domains:int -> unit -> t
(** [domains] defaults to [Domain.recommended_domain_count].  [seed]
    seeds the root rng handed out via [Backend.rng_split]. *)

val spawn : t -> node:int -> ?name:string -> (unit -> unit) -> unit
(** Start a fiber on the pool.  [node] is a label (all fibers share the
    one pool — a backend models a single machine). *)

val join : t -> unit
(** Block (from outside any fiber) until every spawned fiber finished.
    Re-raises the first exception any fiber died with. *)

val run : t -> (unit -> unit) -> unit
(** [spawn] + [join]. *)

val shutdown : t -> unit
(** Join the pool's domains.  The backend is unusable afterwards. *)

val obs : t -> Obs.t
val pool : t -> Pool.t
val domains : t -> int
val now : t -> float

val backend : t -> Backend.t
(** This instance packed as a [Backend.t]. *)

module Backend_impl : Backend.S with type t = t

type Backend.mutex_repr += Par_mutex of Sync.Mutex.t
