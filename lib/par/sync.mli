(** Fiber-level blocking synchronization for the domains backend.

    Same contracts as [Sim.Msync] (see that mli): direct hand-off on
    release, [Invalid_argument] on ownership misuse, reader batching
    without writer starvation.  Contended hand-off order is FIFO rather
    than Msync's seeded random pick: on real hardware the OS scheduler
    supplies the nondeterminism Rex records — in which order contenders
    reach the wait queue.

    All blocking operations must run inside a fiber (they park). *)

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val try_lock : t -> bool

  val unlock : t -> unit
  (** Raises [Invalid_argument] if the calling fiber does not hold it. *)

  val locked : t -> bool
  val holder : t -> Sim.Engine.tid option
end

module Cond : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and parks; re-acquires before
      returning.  The caller must hold the mutex. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

module Rwlock : sig
  type t

  val create : unit -> t
  val rd_lock : t -> unit
  val wr_lock : t -> unit
  val rd_unlock : t -> unit
  val wr_unlock : t -> unit
  val holders : t -> [ `Free | `Readers of int | `Writer of Sim.Engine.tid ]
end

module Sem : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val value : t -> int
end
