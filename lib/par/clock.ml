type t = { t0 : float }

let create () = { t0 = Unix.gettimeofday () }

let now c = Unix.gettimeofday () -. c.t0

(* Model [Engine.work]'s "hold a CPU core for d seconds" by actually
   holding the core: a calibrated spin, not a sleep, so a work-heavy
   fiber contends for real CPU exactly as the simulated one contends for
   virtual cores.  [cpu_relax] keeps the spin polite to hyperthread
   siblings. *)
let spin_for c d =
  if d > 0. then begin
    let deadline = now c +. d in
    while now c < deadline do
      Domain.cpu_relax ()
    done
  end
