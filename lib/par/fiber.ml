open Effect.Deep
module P = Sim.Engine.Protocol

type sched = {
  pool : Pool.t;
  clock : Clock.t;
  on_done : unit -> unit;
  on_exn : exn -> unit;
}

(* The domains-side handler for the shared fiber protocol.  A fiber is a
   chain of pool tasks: it starts as one, and every suspension point
   (park, sleep, yield) re-enters the queue as a fresh task when woken —
   possibly on a different domain, which is why fibers must not cache
   domain-local state across effects.  [E_work] holds the current core
   by spinning (no suspension), mirroring the simulator's "a fiber owns
   a core for the duration of [work]". *)
let handler sched info =
  let resubmit (k : (unit, unit) continuation) =
    Pool.submit sched.pool (fun () -> continue k ())
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | P.E_now ->
      Some (fun (k : (float, unit) continuation) -> continue k (Clock.now sched.clock))
    | P.E_self -> Some (fun (k : (P.fiber_info, unit) continuation) -> continue k info)
    | P.E_work d ->
      Some
        (fun (k : (unit, unit) continuation) ->
          Clock.spin_for sched.clock d;
          continue k ())
    | P.E_sleep d ->
      Some
        (fun (k : (unit, unit) continuation) ->
          Pool.submit_after sched.pool ~delay:d (fun () -> continue k ()))
    | P.E_park register ->
      Some
        (fun (k : (unit, unit) continuation) ->
          register (P.make_waker (fun () -> resubmit k)))
    | P.E_yield ->
      Some
        (fun (k : (unit, unit) continuation) ->
          (* go to the back of the shared queue, letting peers run *)
          resubmit k)
    | _ -> None
  in
  {
    retc = (fun () -> sched.on_done ());
    exnc =
      (fun e ->
        sched.on_exn e;
        sched.on_done ());
    effc;
  }

let spawn sched info main =
  Pool.submit sched.pool (fun () -> match_with main () (handler sched info))
