(** The open-loop session fleet runner.

    One dispatcher fiber paces a {!Gen} generator against the backend
    clock; arrivals pass an engine-side admission gate (per-session
    inflight cap, bounded admitted queue) into a FIFO drained by a bounded
    pool of caller fibers that perform the blocking request and record the
    outcome.  Latency is measured from the request's {e scheduled} arrival
    time, so dispatcher or queue lag under overload shows up in the tail
    instead of being coordinated-omission'd away.

    Runs unchanged on either [Par.Backend]: the generator is pure, the
    dispatcher/callers use only backend-portable primitives, and all
    shared state is under one backend mutex. *)

type outcome =
  | Done  (** committed reply *)
  | Rejected  (** shed by frontend admission control ([Busy]) *)
  | Timeout
  | Error

type target = session:int -> seq:int -> key:int -> read:bool -> outcome
(** The blocking call one arrival performs, supplied by the bench (a
    frontend client closure) or a test stub.  [session]/[seq] identify the
    logical request for exactly-once purposes; [key]/[read] pick the
    operation. *)

val null_target : target
(** Completes instantly with [Done]; for generator/determinism tests. *)

type config = private {
  sessions : int;
  profile : Arrivals.profile;
  duration : float;
  keys : int;
  theta : float;
  read_ratio : float;
  session_inflight : int;  (** engine-side per-session cap, 1..255 *)
  queue_cap : int;  (** admitted-FIFO bound; overflow is shed *)
  callers : int;  (** caller-fiber pool size *)
  slo : float;  (** latency SLO threshold (s) for burn counters *)
  seed : int;
  trace_cap : int;  (** how many arrivals to capture in [stats.trace] *)
  wheel_tick : float;
}

val config :
  ?keys:int ->
  ?theta:float ->
  ?read_ratio:float ->
  ?session_inflight:int ->
  ?queue_cap:int ->
  ?callers:int ->
  ?slo:float ->
  ?trace_cap:int ->
  ?wheel_tick:float ->
  sessions:int ->
  profile:Arrivals.profile ->
  duration:float ->
  seed:int ->
  unit ->
  config
(** Defaults: keys 1024, theta 0.99, read_ratio 0.5, session_inflight 1,
    queue_cap 4096, callers 128, slo 50 ms, trace_cap 0, wheel_tick 1 ms.
    @raise Invalid_argument on out-of-range values. *)

type stats = {
  generated : int;
  admitted : int;
  ok : int;
  shed_session : int;  (** engine-side per-session inflight cap *)
  shed_queue : int;  (** engine-side queue bound *)
  busy : int;  (** frontend admission rejections *)
  timeouts : int;
  errors : int;
  slo_ok : int;
  slo_breach : int;  (** completions over SLO, plus timeouts *)
  max_queue : int;
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
  max_lat : float;
  trace : (float * int * int) array;
      (** first [trace_cap] arrivals as (rel time, session, key) — the
          cross-backend determinism witness *)
}

val shed : stats -> int
(** Everything that never reached the target:
    [shed_session + shed_queue + busy]. *)

val run :
  Par.Backend.t ->
  node:int ->
  ?timeline:Obs.Timeline.t ->
  target:target ->
  config ->
  stats
(** Must be called from inside a fiber; blocks until the horizon is
    exhausted and every admitted request completed.  Also feeds the
    backend's obs registry (subsystem ["load"]: generated/admitted/ok/
    shed_*/busy/timeout/error/slo_ok/slo_breach counters, latency
    histogram, queue_depth and inflight gauges) and, when given, a
    {!Obs.Timeline} (completions with latency; sheds via
    [Timeline.shed]). *)
