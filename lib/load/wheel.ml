type 'a item = { at : float; tk : int; seq : int; v : 'a }

type 'a t = {
  tick : float;
  t0 : float;
  slots : int;
  nlevels : int;
  divs : int array;  (* divs.(l) = slots^l: tick-group width of level l *)
  spans : int array;  (* spans.(l) = slots^(l+1): reach of level l *)
  buckets : 'a item list array array;
  counts : int array;  (* per-level populations, for next_due level skip *)
  mutable cur : int;  (* every timer with tk <= cur has fired *)
  mutable n : int;
  mutable seqc : int;
}

let create ?(tick = 1e-3) ?(slots = 256) ?(levels = 4) ~now () =
  if tick <= 0. then invalid_arg "Load.Wheel.create: tick";
  if slots < 2 then invalid_arg "Load.Wheel.create: slots";
  if levels < 1 then invalid_arg "Load.Wheel.create: levels";
  let divs = Array.make levels 1 in
  for l = 1 to levels - 1 do
    divs.(l) <- divs.(l - 1) * slots
  done;
  {
    tick;
    t0 = now;
    slots;
    nlevels = levels;
    divs;
    spans = Array.map (fun d -> d * slots) divs;
    buckets = Array.init levels (fun _ -> Array.make slots []);
    counts = Array.make levels 0;
    cur = 0;
    n = 0;
    seqc = 0;
  }

let length t = t.n

(* Strict [delta < spans.(l)] keeps every in-range timer's slot distinct
   from the cursor's own slot at that level, so a bucket is never both
   "just drained" and "holds the farthest future" — which is what makes
   the circular next_due scan sound at levels below the top. *)
let place t it =
  let delta = it.tk - t.cur in
  let delta = if delta < 1 then 1 else delta in
  let rec pick l =
    if l = t.nlevels - 1 || delta < t.spans.(l) then l else pick (l + 1)
  in
  let l = pick 0 in
  let tk =
    if delta >= t.spans.(l) then t.cur + t.spans.(l) - 1 else t.cur + delta
  in
  let slot = tk / t.divs.(l) mod t.slots in
  t.buckets.(l).(slot) <- it :: t.buckets.(l).(slot);
  t.counts.(l) <- t.counts.(l) + 1

let add t ~at v =
  let tk =
    let k = int_of_float (Float.floor ((at -. t.t0) /. t.tick)) in
    if k <= t.cur then t.cur + 1 else k
  in
  let it = { at; tk; seq = t.seqc; v } in
  t.seqc <- t.seqc + 1;
  t.n <- t.n + 1;
  place t it

let cmp_item a b =
  match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let pop_until t ~now f =
  let target = int_of_float (Float.floor ((now -. t.t0) /. t.tick)) in
  let popped = ref 0 in
  while t.cur < target do
    if t.n = 0 then t.cur <- target
      (* all buckets empty: cascades would be no-ops, jump is exact *)
    else begin
      let c = t.cur + 1 in
      t.cur <- c;
      for l = t.nlevels - 1 downto 1 do
        if c mod t.divs.(l) = 0 then begin
          let slot = c / t.divs.(l) mod t.slots in
          match t.buckets.(l).(slot) with
          | [] -> ()
          | items ->
            t.buckets.(l).(slot) <- [];
            t.counts.(l) <- t.counts.(l) - List.length items;
            List.iter (place t) items
        end
      done;
      let slot = c mod t.slots in
      match t.buckets.(0).(slot) with
      | [] -> ()
      | items ->
        t.buckets.(0).(slot) <- [];
        t.counts.(0) <- t.counts.(0) - List.length items;
        let arr = Array.of_list items in
        Array.sort cmp_item arr;
        t.n <- t.n - Array.length arr;
        Array.iter
          (fun it ->
            incr popped;
            f it.at it.v)
          arr
    end
  done;
  !popped

exception Found of float

let bucket_min best b = List.iter (fun it -> if it.at < !best then best := it.at) b

let next_due t =
  if t.n = 0 then None
  else
    try
      for l = 0 to t.nlevels - 1 do
        if t.counts.(l) > 0 then begin
          let best = ref infinity in
          if l = t.nlevels - 1 then
            (* the top level may hold clamped far-future timers whose slot
               order does not reflect time order: take the global min *)
            Array.iter (bucket_min best) t.buckets.(l)
          else begin
            (* earliest non-empty bucket in circular order from the cursor
               holds the level's earliest timers *)
            let pos = t.cur / t.divs.(l) in
            let i = ref 1 in
            while !best = infinity && !i <= t.slots do
              bucket_min best t.buckets.(l).((pos + !i) mod t.slots);
              incr i
            done
          end;
          raise (Found !best)
        end
      done;
      None
    with Found at -> Some at
