(** Deterministic open-loop event generation: the pure core of the load
    engine.

    A generator is a timing wheel of per-session arrival timers plus one
    seeded rng.  Every random draw (interarrival gap, zipf key, read/write
    coin) happens in wheel pop order as events are pulled — an order fixed
    by (seed, profile, sessions) alone — so the generated arrival/key
    trace is byte-identical however the pulls are sliced and on whichever
    backend the pulling fiber runs.  The runner ({!Engine}) paces pulls
    against the backend clock; tests pull without pacing. *)

type ev = {
  at : float;  (** arrival time, relative to the run start *)
  session : int;
  seq : int;  (** per-session arrival counter *)
  key : int;  (** zipf rank in [0, keys) *)
  read : bool;
}

type t

val create :
  ?wheel_tick:float ->
  sessions:int ->
  duration:float ->
  profile:Arrivals.profile ->
  keys:int ->
  theta:float ->
  read_ratio:float ->
  seed:int ->
  unit ->
  t
(** Seeds every session's first arrival (O(sessions)); sessions whose
    first gap lands past [duration] never arrive.  No arrival is generated
    after [duration]. *)

val pull : t -> until:float -> (ev -> unit) -> int
(** Generate and deliver every arrival due at or before relative time
    [until], in wheel order; each delivery re-arms that session's next
    arrival.  Returns how many were delivered. *)

val next_due : t -> float option
(** Relative time of the next pending arrival; [None] once the horizon is
    exhausted.  May under-estimate (see {!Wheel.next_due}), never
    over-estimates. *)

val generated : t -> int
val finished : t -> bool
