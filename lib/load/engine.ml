module E = Sim.Engine
module B = Par.Backend

type outcome = Done | Rejected | Timeout | Error
type target = session:int -> seq:int -> key:int -> read:bool -> outcome

let null_target ~session:_ ~seq:_ ~key:_ ~read:_ = Done

type config = {
  sessions : int;
  profile : Arrivals.profile;
  duration : float;
  keys : int;
  theta : float;
  read_ratio : float;
  session_inflight : int;
  queue_cap : int;
  callers : int;
  slo : float;
  seed : int;
  trace_cap : int;
  wheel_tick : float;
}

let config ?(keys = 1024) ?(theta = 0.99) ?(read_ratio = 0.5)
    ?(session_inflight = 1) ?(queue_cap = 4096) ?(callers = 128) ?(slo = 0.05)
    ?(trace_cap = 0) ?(wheel_tick = 1e-3) ~sessions ~profile ~duration ~seed ()
    =
  if sessions <= 0 then invalid_arg "Load.Engine.config: sessions";
  if duration <= 0. then invalid_arg "Load.Engine.config: duration";
  if keys <= 0 then invalid_arg "Load.Engine.config: keys";
  if read_ratio < 0. || read_ratio > 1. then
    invalid_arg "Load.Engine.config: read_ratio";
  (* the per-session inflight table is one byte per session *)
  if session_inflight < 1 || session_inflight > 255 then
    invalid_arg "Load.Engine.config: session_inflight";
  if queue_cap < 1 then invalid_arg "Load.Engine.config: queue_cap";
  if callers < 1 then invalid_arg "Load.Engine.config: callers";
  if slo <= 0. then invalid_arg "Load.Engine.config: slo";
  if trace_cap < 0 then invalid_arg "Load.Engine.config: trace_cap";
  Arrivals.validate profile;
  {
    sessions;
    profile;
    duration;
    keys;
    theta;
    read_ratio;
    session_inflight;
    queue_cap;
    callers;
    slo;
    seed;
    trace_cap;
    wheel_tick;
  }

type stats = {
  generated : int;
  admitted : int;
  ok : int;
  shed_session : int;
  shed_queue : int;
  busy : int;
  timeouts : int;
  errors : int;
  slo_ok : int;
  slo_breach : int;
  max_queue : int;
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
  max_lat : float;
  trace : (float * int * int) array;
}

let shed s = s.shed_session + s.shed_queue + s.busy

type job = {
  j_sched : float;  (* absolute scheduled arrival time *)
  j_session : int;
  j_seq : int;
  j_key : int;
  j_read : bool;
}

let run b ~node ?timeline ~target cfg =
  let obs = B.obs b in
  let ctr name = Obs.counter obs ~subsystem:"load" name in
  let c_gen = ctr "generated"
  and c_adm = ctr "admitted"
  and c_ok = ctr "ok"
  and c_shed_session = ctr "shed_session"
  and c_shed_queue = ctr "shed_queue"
  and c_busy = ctr "busy"
  and c_timeout = ctr "timeout"
  and c_error = ctr "error"
  and c_slo_ok = ctr "slo_ok"
  and c_slo_breach = ctr "slo_breach" in
  let g_queue = Obs.gauge obs ~subsystem:"load" "queue_depth"
  and g_inflight = Obs.gauge obs ~subsystem:"load" "inflight" in
  let reg_hist = Obs.histogram obs ~subsystem:"load" "latency" in
  let hist = Obs.Histogram.create () in
  let gen =
    Gen.create ~wheel_tick:cfg.wheel_tick ~sessions:cfg.sessions
      ~duration:cfg.duration ~profile:cfg.profile ~keys:cfg.keys
      ~theta:cfg.theta ~read_ratio:cfg.read_ratio ~seed:cfg.seed ()
  in
  let m = B.mutex b in
  let nonempty = B.cond b in
  let alldone = B.cond b in
  let q : job Queue.t = Queue.create () in
  let inflight = Bytes.make cfg.sessions '\000' in
  let n_inflight = ref 0 in
  let outstanding = ref 0 in
  let gen_done = ref false in
  let generated = ref 0
  and admitted = ref 0
  and ok = ref 0
  and shed_session = ref 0
  and shed_queue = ref 0
  and busy = ref 0
  and timeouts = ref 0
  and errors = ref 0
  and slo_ok = ref 0
  and slo_breach = ref 0
  and max_queue = ref 0 in
  let trace = Array.make cfg.trace_cap (0., 0, 0) in
  let trace_n = ref 0 in
  let tl_record lat now =
    match timeline with
    | None -> ()
    | Some tl -> Obs.Timeline.record tl ?latency:lat now
  in
  let tl_shed now =
    match timeline with None -> () | Some tl -> Obs.Timeline.shed tl now
  in
  let t_start = B.clock b in
  let handle (ev : Gen.ev) =
    incr generated;
    Obs.Metric.incr c_gen;
    if !trace_n < cfg.trace_cap then begin
      trace.(!trace_n) <- (ev.at, ev.session, ev.key);
      incr trace_n
    end;
    m.m_lock ();
    let infl = Char.code (Bytes.get inflight ev.session) in
    if infl >= cfg.session_inflight then begin
      incr shed_session;
      Obs.Metric.incr c_shed_session;
      tl_shed (t_start +. ev.at)
    end
    else if Queue.length q >= cfg.queue_cap then begin
      incr shed_queue;
      Obs.Metric.incr c_shed_queue;
      tl_shed (t_start +. ev.at)
    end
    else begin
      Bytes.set inflight ev.session (Char.chr (infl + 1));
      incr n_inflight;
      incr outstanding;
      incr admitted;
      Obs.Metric.incr c_adm;
      Queue.push
        {
          j_sched = t_start +. ev.at;
          j_session = ev.session;
          j_seq = ev.seq;
          j_key = ev.key;
          j_read = ev.read;
        }
        q;
      let d = Queue.length q in
      if d > !max_queue then max_queue := d;
      Obs.Metric.set g_queue (float_of_int d);
      Obs.Metric.set_max g_inflight (float_of_int !n_inflight);
      nonempty.c_signal ()
    end;
    m.m_unlock ()
  in
  let dispatcher () =
    let rec loop () =
      let rel = E.now () -. t_start in
      ignore (Gen.pull gen ~until:rel handle);
      match Gen.next_due gen with
      | None ->
        m.m_lock ();
        gen_done := true;
        nonempty.c_broadcast ();
        alldone.c_broadcast ();
        m.m_unlock ()
      | Some at ->
        (* never sleep less than a wheel tick: next_due may under-estimate
           while timers sit in upper levels, and a zero sleep would spin *)
        E.sleep (Float.max (t_start +. at -. E.now ()) cfg.wheel_tick);
        loop ()
    in
    loop ()
  in
  let caller () =
    let rec loop () =
      m.m_lock ();
      while Queue.is_empty q && not !gen_done do
        nonempty.c_wait m
      done;
      if Queue.is_empty q then m.m_unlock ()
      else begin
        let j = Queue.pop q in
        Obs.Metric.set g_queue (float_of_int (Queue.length q));
        m.m_unlock ();
        let outcome =
          target ~session:j.j_session ~seq:j.j_seq ~key:j.j_key ~read:j.j_read
        in
        let fin = E.now () in
        let lat = fin -. j.j_sched in
        m.m_lock ();
        Bytes.set inflight j.j_session
          (Char.chr (Char.code (Bytes.get inflight j.j_session) - 1));
        decr n_inflight;
        decr outstanding;
        (match outcome with
        | Done ->
          incr ok;
          Obs.Metric.incr c_ok;
          Obs.Histogram.observe hist lat;
          Obs.Histogram.observe reg_hist lat;
          if lat <= cfg.slo then begin
            incr slo_ok;
            Obs.Metric.incr c_slo_ok
          end
          else begin
            incr slo_breach;
            Obs.Metric.incr c_slo_breach
          end;
          tl_record (Some lat) fin
        | Rejected ->
          incr busy;
          Obs.Metric.incr c_busy;
          tl_shed fin
        | Timeout ->
          incr timeouts;
          Obs.Metric.incr c_timeout;
          incr slo_breach;
          Obs.Metric.incr c_slo_breach
        | Error ->
          incr errors;
          Obs.Metric.incr c_error);
        if !gen_done && !outstanding = 0 && Queue.is_empty q then
          alldone.c_broadcast ();
        m.m_unlock ();
        loop ()
      end
    in
    loop ()
  in
  B.spawn b ~node ~name:"load-dispatcher" dispatcher;
  for i = 0 to cfg.callers - 1 do
    B.spawn b ~node ~name:(Printf.sprintf "load-caller-%d" i) caller
  done;
  m.m_lock ();
  while not (!gen_done && !outstanding = 0 && Queue.is_empty q) do
    alldone.c_wait m
  done;
  m.m_unlock ();
  {
    generated = !generated;
    admitted = !admitted;
    ok = !ok;
    shed_session = !shed_session;
    shed_queue = !shed_queue;
    busy = !busy;
    timeouts = !timeouts;
    errors = !errors;
    slo_ok = !slo_ok;
    slo_breach = !slo_breach;
    max_queue = !max_queue;
    mean = Obs.Histogram.mean hist;
    p50 = Obs.Histogram.p50 hist;
    p99 = Obs.Histogram.p99 hist;
    p999 = Obs.Histogram.quantile hist 0.999;
    max_lat = Obs.Histogram.max_seen hist;
    trace = Array.sub trace 0 !trace_n;
  }
