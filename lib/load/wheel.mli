(** Hierarchical timing wheel: the event queue behind the open-loop load
    engine.

    A binary heap ([Sim.Pqueue]) costs O(log n) per operation with a poor
    constant at fleet sizes of 10^5–10^6 timers; the wheel hashes each
    timer into one of [levels] × [slots] buckets by its due tick, for
    amortized O(1) insert and O(1) per-tick dispatch — per-event cost stays
    flat as the fleet grows (the bechamel series in EXPERIMENTS.md §14
    records both).

    Time is bucketed at [tick] resolution.  Level 0 holds timers due within
    [slots] ticks at exact-tick precision; level [l] covers [slots^(l+1)]
    ticks and cascades its buckets down as the cursor crosses group
    boundaries.  Timers beyond the top level's span are clamped into the
    top level and re-cascade until their true due tick is in range.

    Ordering contract: {!pop_until} delivers timers in due-tick order, and
    within one tick bucket in (due time, insertion seq) order — so two
    timers more than one [tick] apart always fire in time order, and ties
    are deterministic.  Timers added {e during} a pop (e.g. a session
    re-arming its next arrival from inside the callback) land in strictly
    later ticks of the same pop when due within its window. *)

type 'a t

val create : ?tick:float -> ?slots:int -> ?levels:int -> now:float -> unit -> 'a t
(** Defaults: [tick] 1e-3 s, [slots] 256, [levels] 4 — a ~50-day range at
    millisecond resolution.  [now] anchors tick 0.
    @raise Invalid_argument on [tick <= 0], [slots < 2] or [levels < 1]. *)

val add : 'a t -> at:float -> 'a -> unit
(** Schedule a timer at absolute time [at]; past times fire on the next
    tick. *)

val length : 'a t -> int

val next_due : 'a t -> float option
(** Due time of the earliest pending timer ([None] when empty).  May
    {e under}-estimate for timers still parked in upper levels (they
    resolve on cascade), never over-estimates — so it is safe to sleep
    until it. *)

val pop_until : 'a t -> now:float -> (float -> 'a -> unit) -> int
(** Fire every timer due at or before [now] (per the ordering contract
    above), returning how many fired.  The callback may {!add}. *)
