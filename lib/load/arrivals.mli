(** Open-loop arrival processes.

    The fleet is modeled as [sessions] independent Poisson processes of
    aggregate rate λ(t): each session draws exponential interarrival gaps
    at rate λ(t)/sessions (the superposition of the fleet is then Poisson
    at λ(t), the textbook identity the qcheck statistical test leans on).
    Time-varying profiles are sampled by thinning against the profile's
    peak rate, so a single seeded stream drives every draw and the whole
    arrival/key trace is a pure function of (seed, profile, sessions) —
    identical on the sim and domains backends. *)

type profile =
  | Steady of float  (** constant aggregate rate (req/s) *)
  | Burst of { base : float; peak : float; period : float; duty : float }
      (** square wave: [peak] for the first [duty] fraction of each
          [period], [base] otherwise *)
  | Ramp of { lo : float; hi : float; over : float }
      (** linear ramp from [lo] to [hi] across [over] seconds, then [hi] *)
  | Diurnal of { base : float; peak : float; period : float }
      (** sinusoidal day curve: [base] at t=0, [peak] at half-period *)

val validate : profile -> unit
(** @raise Invalid_argument on negative rates, a zero peak, or
    non-positive period/duration parameters. *)

val rate : profile -> float -> float
(** Aggregate rate at relative time [t] (clamped at 0 for [t < 0]). *)

val max_rate : profile -> float

val next_gap : profile -> sessions:int -> Sim.Rng.t -> rel_now:float -> float
(** Gap until one session's next arrival, given the session count and the
    profile clock [rel_now]; draws (exponential proposal + thinning
    accept) come from [rng] in a deterministic order. *)
