type ev = { at : float; session : int; seq : int; key : int; read : bool }

type t = {
  duration : float;
  profile : Arrivals.profile;
  sessions : int;
  read_ratio : float;
  rng : Sim.Rng.t;
  zipf : Workload.Zipf.t;
  wheel : int Wheel.t;
  seqs : int array;
  mutable count : int;
}

let create ?(wheel_tick = 1e-3) ~sessions ~duration ~profile ~keys ~theta
    ~read_ratio ~seed () =
  if sessions <= 0 then invalid_arg "Load.Gen.create: sessions";
  if duration <= 0. then invalid_arg "Load.Gen.create: duration";
  Arrivals.validate profile;
  let rng = Sim.Rng.create seed in
  let t =
    {
      duration;
      profile;
      sessions;
      read_ratio;
      rng;
      zipf = Workload.Zipf.create ~n:keys ~theta;
      wheel = Wheel.create ~tick:wheel_tick ~now:0. ();
      seqs = Array.make sessions 0;
      count = 0;
    }
  in
  for s = 0 to sessions - 1 do
    let gap = Arrivals.next_gap profile ~sessions rng ~rel_now:0. in
    if gap <= duration then Wheel.add t.wheel ~at:gap s
  done;
  t

let pull t ~until f =
  Wheel.pop_until t.wheel ~now:until (fun at s ->
      let seq = t.seqs.(s) in
      t.seqs.(s) <- seq + 1;
      let key = Workload.Zipf.sample t.zipf t.rng in
      let read = Sim.Rng.float t.rng 1.0 < t.read_ratio in
      t.count <- t.count + 1;
      f { at; session = s; seq; key; read };
      let next =
        at +. Arrivals.next_gap t.profile ~sessions:t.sessions t.rng ~rel_now:at
      in
      if next <= t.duration then Wheel.add t.wheel ~at:next s)

let next_due t = Wheel.next_due t.wheel
let generated t = t.count
let finished t = Wheel.length t.wheel = 0
