type profile =
  | Steady of float
  | Burst of { base : float; peak : float; period : float; duty : float }
  | Ramp of { lo : float; hi : float; over : float }
  | Diurnal of { base : float; peak : float; period : float }

let validate = function
  | Steady r -> if r <= 0. then invalid_arg "Arrivals: Steady rate must be > 0"
  | Burst { base; peak; period; duty } ->
    if base < 0. || peak <= 0. then invalid_arg "Arrivals: Burst rates";
    if period <= 0. then invalid_arg "Arrivals: Burst period";
    if duty <= 0. || duty > 1. then invalid_arg "Arrivals: Burst duty"
  | Ramp { lo; hi; over } ->
    if lo < 0. || hi <= 0. then invalid_arg "Arrivals: Ramp rates";
    if over <= 0. then invalid_arg "Arrivals: Ramp over"
  | Diurnal { base; peak; period } ->
    if base < 0. || peak <= 0. then invalid_arg "Arrivals: Diurnal rates";
    if peak < base then invalid_arg "Arrivals: Diurnal peak < base";
    if period <= 0. then invalid_arg "Arrivals: Diurnal period"

let rate p t =
  let t = Float.max 0. t in
  match p with
  | Steady r -> r
  | Burst { base; peak; period; duty } ->
    let ph = Float.rem t period in
    if ph < duty *. period then peak else base
  | Ramp { lo; hi; over } ->
    if t >= over then hi else lo +. ((hi -. lo) *. t /. over)
  | Diurnal { base; peak; period } ->
    base
    +. ((peak -. base) *. 0.5 *. (1. -. cos (2. *. Float.pi *. t /. period)))

let max_rate = function
  | Steady r -> r
  | Burst { base; peak; _ } -> Float.max base peak
  | Ramp { lo; hi; _ } -> Float.max lo hi
  | Diurnal { base; peak; _ } -> Float.max base peak

(* Thinning (Lewis–Shedler): propose gaps at the peak rate, accept each
   proposal with probability rate/peak.  The guard bounds pathological
   profiles (e.g. base 0 with a tiny duty cycle) — after 10^4 rejected
   proposals we just take the next one, an error well below float noise
   for any profile a bench would run. *)
let next_gap p ~sessions rng ~rel_now =
  let peak = max_rate p in
  let lam = peak /. float_of_int sessions in
  let rec go acc guard =
    let acc = acc +. Sim.Rng.exponential rng ~mean:(1. /. lam) in
    if guard = 0 then acc
    else
      let r = rate p (rel_now +. acc) /. peak in
      if r >= 1. || Sim.Rng.float rng 1.0 < r then acc else go acc (guard - 1)
  in
  go 0. 10_000
