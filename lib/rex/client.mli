(** Client library: leader discovery, retries, and the client/replica wire
    format. *)

type reply =
  | Ok_reply of string
  | Not_leader of int option
  | Dropped
  | Busy
      (** Shed by frontend admission control: the replica is the leader
          but over its inflight/queue bounds.  Clients back off and retry
          the {e same} envelope (no leader rotation) — the session table
          makes the retry idempotent. *)

val encode_reply : reply -> string
val decode_reply : string -> reply

val client_port : string
val query_port : string

val read_port : string
(** Quorum-read probe service: replies with the replica's read index
    (see [Paxos.Replica.read_index]) as a varint. *)

type t

val create : Sim.Rpc.t -> me:int -> replicas:int list -> t
(** Allocates a session identity ({!client_id}) from the simulation
    engine; every {!call} is tagged with it so replicas can deduplicate
    retries (see {!Session}). *)

val client_id : t -> int

val peek_seq : t -> int
(** The sequence number the next {!call} will stamp on its envelope.
    [(client_id, peek_seq)] therefore names the upcoming request before
    it is sent — the history recorder (lib/check) uses this to correlate
    a client-side timeout with the frontend tap events that reveal the
    request's fate. *)

val call : ?retries:int -> ?timeout:float -> t -> string -> string option
(** Submit an update request; follows leader hints and retries on
    timeout.  [None] after exhausting retries.  The request travels in a
    {!Session.Envelope} whose [(client, seq)] identity is reused on
    every retry, so an acknowledged request executed exactly once; only
    a [None] return leaves at-most-once ambiguity (the request may or
    may not have executed). *)

type call_outcome =
  | Reply of string
  | Shed
      (** every attempt was answered with a definitive non-admission
          (at least one [Busy], the rest [Not_leader]): the request was
          never enqueued anywhere, so it is certain never to execute —
          the open-loop load engine's rejection accounting relies on
          this *)
  | Gave_up
      (** retries exhausted with at least one ambiguous attempt
          (transport timeout or [Dropped]): the request may or may not
          have executed *)

val call_outcome :
  ?retries:int -> ?timeout:float -> t -> string -> call_outcome
(** {!call}, reporting how a failed attempt ended instead of collapsing
    both failure modes into [None]. *)

val query : ?on:int -> ?retries:int -> ?timeout:float -> t -> string -> string option
(** Read-only request, first tried on [on] (default: the believed
    leader).  Follows [Not_leader] hints and rotates on timeouts exactly
    like {!call}, sharing its leader-guess state.  [None] after
    exhausting [retries]. *)

val leader_guess : t -> int
