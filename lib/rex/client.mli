(** Client library: leader discovery, retries, and the client/replica wire
    format. *)

type reply = Ok_reply of string | Not_leader of int option | Dropped

val encode_reply : reply -> string
val decode_reply : string -> reply

val client_port : string
val query_port : string

type t

val create : Sim.Rpc.t -> me:int -> replicas:int list -> t
(** Allocates a session identity ({!client_id}) from the simulation
    engine; every {!call} is tagged with it so replicas can deduplicate
    retries (see {!Session}). *)

val client_id : t -> int

val peek_seq : t -> int
(** The sequence number the next {!call} will stamp on its envelope.
    [(client_id, peek_seq)] therefore names the upcoming request before
    it is sent — the history recorder (lib/check) uses this to correlate
    a client-side timeout with the frontend tap events that reveal the
    request's fate. *)

val call : ?retries:int -> ?timeout:float -> t -> string -> string option
(** Submit an update request; follows leader hints and retries on
    timeout.  [None] after exhausting retries.  The request travels in a
    {!Session.Envelope} whose [(client, seq)] identity is reused on
    every retry, so an acknowledged request executed exactly once; only
    a [None] return leaves at-most-once ambiguity (the request may or
    may not have executed). *)

val query : ?on:int -> ?timeout:float -> t -> string -> string option
(** Read-only request on a chosen replica (default: the believed
    leader).  Follows a [Not_leader] hint once before giving up. *)

val leader_guess : t -> int
