open Sim

type timer_spec = { t_name : string; t_interval : float; t_callback : unit -> unit }

type t = {
  rt : Rexsync.Runtime.t;
  mutable timers : timer_spec list;  (* reversed *)
  mutable sealed : bool;
  time_rng : Rng.t;
}

let make rt =
  {
    rt;
    timers = [];
    sealed = false;
    time_rng = Par.Backend.rng_split (Rexsync.Runtime.backend rt);
  }

let seal t =
  t.sealed <- true;
  List.rev t.timers

let lock t name = Rexsync.Lock.create t.rt name
let rwlock t name = Rexsync.Rwlock.create t.rt name
let cond t name = Rexsync.Condvar.create t.rt name
let sem t name permits = Rexsync.Sem.create t.rt name permits

let add_timer t ~name ~interval callback =
  if t.sealed then
    invalid_arg "Api.add_timer: timers must be registered at creation time";
  t.timers <-
    { t_name = name; t_interval = interval; t_callback = callback } :: t.timers

let work _t d = Engine.work d
let nondet t f = Rexsync.Runtime.nondet t.rt f

let nondet_int t f =
  int_of_string (Rexsync.Runtime.nondet t.rt (fun () -> string_of_int (f ())))

(* The draw mutates the shared generator: guarded so that concurrent
   callers on real domains do not tear it (the drawn value is recorded
   as a nondet event, so determinism does not depend on the draw). *)
let random_int t bound =
  nondet_int t (fun () ->
      Rexsync.Runtime.guarded t.rt (fun () -> Rng.int t.time_rng bound))

let virtual_now t =
  float_of_string (Rexsync.Runtime.nondet t.rt (fun () -> Fmt.str "%h" (Engine.now ())))

let native t f = Rexsync.Runtime.native_exec t.rt f
let node t = Rexsync.Runtime.node t.rt
let runtime t = t.rt
