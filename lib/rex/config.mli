(** Replica-group configuration. *)

type t = {
  replicas : int list;  (** node ids of the replica group *)
  workers : int;  (** worker thread slots per replica *)
  propose_interval : float;
      (** how often the primary cuts a trace delta into a proposal *)
  checkpoint_interval : float option;  (** [None]: no periodic checkpoints *)
  flow_window : int;
      (** max trace events the primary may run ahead of the slowest
          live secondary's replay *)
  flow_report_interval : float;
  flow_staleness : float;
      (** a secondary silent for this long no longer gates the primary *)
  heartbeat_period : float;
  election_timeout : float;
  reduce_edges : bool;
  partial_order : bool;
  check_versions : bool;
  record_cost : float;
      (** modeled CPU cost of logging one event on the primary *)
  replay_cost : float;  (** modeled CPU cost of replaying one event *)
  ckpt_byte_cost : float;
      (** modeled cost (seconds per byte) of serializing and writing a
          checkpoint on a secondary — the source of Fig. 10's dips *)
  pipeline_depth : int;
      (** concurrent consensus instances; 1 = the paper's
          single-active-instance design, >1 = the §3.1 piggyback
          pipelining *)
  paxos_sync_latency : float;
      (** modeled acceptor fsync before promises/accepts (0 disables) *)
  lease_duration : float;
      (** leader-lease length on each follower's clock; default
          4 × [heartbeat_period]; [<= 0.] disables the lease read path *)
  lease_drift_bound : float;
      (** assumed clock-rate error bound backing the lease safety
          argument (see [Paxos.Replica.config]) *)
  lease_unsafe : bool;
      (** {b testing only}: serve local reads whenever this replica
          believes it is leader, without checking the lease — the
          fencing-disabled canary for lib/check *)
  admit_global : int;
      (** admission control: max node-wide inflight logical requests
          before new work is answered [Busy]; 0 disables (the default —
          all admission knobs off means the frontend hot path is exactly
          the pre-admission one) *)
  admit_per_client : int;  (** max inflight per client session; 0 = off *)
  admit_queue_soft : int;
      (** run-queue depth that triggers intake backpressure; 0 = off *)
  admit_queue_hard : int;
      (** run-queue depth that rejects new work with [Busy]; 0 = off *)
}

val admission :
  t -> queue_depth:(unit -> int) -> Frontend.admission option
(** The {!Frontend.admission} record for these knobs over the stack's own
    [queue_depth] probe; [None] when every knob is 0. *)

val make :
  ?workers:int ->
  ?propose_interval:float ->
  ?checkpoint_interval:float option ->
  ?flow_window:int ->
  ?flow_report_interval:float ->
  ?flow_staleness:float ->
  ?heartbeat_period:float ->
  ?election_timeout:float ->
  ?reduce_edges:bool ->
  ?partial_order:bool ->
  ?check_versions:bool ->
  ?record_cost:float ->
  ?replay_cost:float ->
  ?ckpt_byte_cost:float ->
  ?pipeline_depth:int ->
  ?paxos_sync_latency:float ->
  ?lease_duration:float ->
  ?lease_drift_bound:float ->
  ?lease_unsafe:bool ->
  ?admit_global:int ->
  ?admit_per_client:int ->
  ?admit_queue_soft:int ->
  ?admit_queue_hard:int ->
  replicas:int list ->
  unit ->
  t

val total_slots : t -> n_timers:int -> int
