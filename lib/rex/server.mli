(** A Rex replica server: the execute-agree-follow engine (paper §2–§4).

    Each replica runs one [Server.t].  The Paxos leader doubles as the Rex
    {e primary}: its worker slots pull client requests from a run queue,
    execute them concurrently in record mode, and a proposer fiber
    periodically cuts the grown trace into a delta and drives it through
    consensus.  {e Secondaries} apply committed deltas to their copy of
    the trace and replay them concurrently in follow mode.  The primary
    answers a client once the trace containing its request's completion
    has committed — never waiting for secondary replay, except through the
    flow-control window that keeps secondaries close enough for fast
    failover.

    Checkpoints (paper §3.3) are driven by the primary but written by
    secondaries: the primary pauses all slots at a request boundary,
    records per-slot [Ckpt_mark] events, and ships the cut in its next
    proposal; a secondary replaying up to that cut snapshots the
    application and saves it to its {!Checkpoint.Disk.t}.

    Leadership changes map to role changes: [OnBecomeLeader] finishes
    replaying the committed trace and switches the runtime to record mode
    mid-flight (even mid-request); [OnNewLeader] discards the speculative
    execution by rebuilding the replica from its latest checkpoint plus
    the committed trace — the full-machine rollback of §5.2. *)

type t

type role = Primary | Secondary

type stats = {
  requests_executed : int;  (** handlers completed on this replica *)
  replies_sent : int;  (** requests acknowledged to clients (committed) *)
  queries_served : int;
  proposals_sent : int;
  proposal_bytes : int;  (** trace-delta bytes shipped through consensus *)
  request_payload_bytes : int;  (** request bytes inside those deltas *)
  checkpoints_written : int;
  rollbacks : int;  (** demotions that discarded speculative state *)
}

val create :
  ?make_agreement:(t -> Agreement.callbacks -> Agreement.t) ->
  Sim.Net.t ->
  Sim.Rpc.t ->
  Config.t ->
  node:int ->
  paxos_store:Paxos.Store.t ->
  disk:Checkpoint.Disk.t ->
  App.factory ->
  t
(** [make_agreement] substitutes the agree stage (default: multi-instance
    Paxos per the paper; see {!Chain} for chain replication, §7). *)

val start : t -> unit

val node : t -> int

val session_table : t -> Session.Table.t
(** The replica's client-session table (replicated via {!Session.wrap};
    exposed for tests and tooling). *)

val frontend : t -> Frontend.t
(** The replica's client-facing frontend, for attaching history taps
    ({!Frontend.set_tap}, used by [lib/check]). *)

val role : t -> role
val is_primary : t -> bool

val submit : t -> string -> (string option -> unit) -> unit
(** Enqueue an update request on this replica (primary only — callers
    should route via {!Client} otherwise).  The callback fires with the
    response once committed, or [None] if the request was dropped by a
    role change. *)

val query : t -> string -> string
(** Execute a read-only request natively on this replica: speculative
    state on a primary, committed state on a secondary (paper §6.5). *)

val request_checkpoint : t -> unit
(** Manually trigger a checkpoint (also driven by
    [Config.checkpoint_interval]). *)

val app_digest : t -> string
val committed_cut : t -> Trace.Cut.t
val executed_cut : t -> Trace.Cut.t
val runtime : t -> Rexsync.Runtime.t
val stats : t -> stats
val runtime_stats : t -> Rexsync.Runtime.stats
val queue_length : t -> int
val divergence : t -> string option
(** Set when replay detected divergence (§5 validity checking); the
    replica halts its slots. *)

val divergence_report : t -> string option
(** When diverged: a GraphViz rendering of the trace neighbourhood around
    the replica's replay position, with resource names — the §6.1 race
    debugging workflow. *)

val agreement : t -> Agreement.t

val peers : t -> int list
(** Current replica membership as the agreement layer sees it — the
    static config until a committed reconfiguration changes it. *)

val reconfig : t -> int list -> bool
(** Propose a membership change through the replicated log (single
    replica added or removed per call).  [false] when this replica
    cannot propose right now (not leader, proposal in flight, or the
    transition is not a one-replica change). *)
