module Envelope = struct
  type t = { client : int; seq : int; payload : string }

  let magic = 0xE5

  let encode { client; seq; payload } =
    Codec.encode
      (fun () b ->
        Codec.write_byte b magic;
        Codec.write_uvarint b client;
        Codec.write_uvarint b seq;
        Codec.write_string b payload)
      ()

  let decode s =
    if String.length s = 0 || Char.code s.[0] <> magic then None
    else
      Some
        (Codec.decode
           (fun src ->
             let (_ : int) = Codec.read_byte src in
             let client = Codec.read_uvarint src in
             let seq = Codec.read_uvarint src in
             let payload = Codec.read_string src in
             { client; seq; payload })
           s)
end

module Table = struct
  type entry = {
    mutable last_seq : int;
    mutable replies : (int * string) list; (* sorted by seq, descending *)
  }

  type t = {
    window : int;
    sessions : (int, entry) Hashtbl.t;
    c_dup : Obs.Metric.counter;
    c_evict : Obs.Metric.counter;
    g_sessions : Obs.Metric.gauge;
  }

  type lookup = Hit of string | Stale | Miss

  let create ?(window = 64) obs ~stack ~node () =
    if window <= 0 then invalid_arg "Session.Table.create: window";
    let labels = [ ("stack", stack); ("node", string_of_int node) ] in
    {
      window;
      sessions = Hashtbl.create 64;
      c_dup = Obs.counter obs ~subsystem:"frontend" ~labels "dup_hits";
      c_evict = Obs.counter obs ~subsystem:"frontend" ~labels "cache_evictions";
      g_sessions = Obs.gauge obs ~subsystem:"frontend" ~labels "sessions";
    }

  (* An executed seq missing from the cache was evicted, which requires
     at least [window] distinct higher executed seqs, so [last_seq >= seq
     + window].  Conversely a seq within [window] of [last_seq] that is
     absent was never executed (a concurrency gap: a slower request whose
     later-seq siblings committed first) and must execute now — NOT be
     refused as stale.  Hence the cutoff below, and the requirement that
     [window] exceed a client's concurrent in-flight requests. *)
  let lookup t ~client ~seq =
    match Hashtbl.find_opt t.sessions client with
    | None -> Miss
    | Some e -> (
      match List.assoc_opt seq e.replies with
      | Some reply -> Hit reply
      | None -> if seq <= e.last_seq - t.window then Stale else Miss)

  let entry t client =
    match Hashtbl.find_opt t.sessions client with
    | Some e -> e
    | None ->
      let e = { last_seq = -1; replies = [] } in
      Hashtbl.replace t.sessions client e;
      Obs.Metric.set t.g_sessions (float_of_int (Hashtbl.length t.sessions));
      e

  (* Insert preserving descending-seq order.  Replay on a recovering
     replica can apply records of distinct requests in any order, so this
     must be a commutative merge, not an append. *)
  let insert_sorted seq reply l =
    let rec go = function
      | [] -> [ (seq, reply) ]
      | (s, _) :: _ as rest when seq > s -> (seq, reply) :: rest
      | (s, _) :: rest when seq = s -> (s, reply) :: rest
      | p :: rest -> p :: go rest
    in
    go l

  let record t ~client ~seq ~reply =
    let e = entry t client in
    if seq > e.last_seq then e.last_seq <- seq;
    let replies = insert_sorted seq reply e.replies in
    let rec keep n = function
      | [] -> []
      | _ :: _ when n = 0 -> []
      | x :: rest -> x :: keep (n - 1) rest
    in
    let kept = keep t.window replies in
    let dropped = List.length replies - List.length kept in
    if dropped > 0 then Obs.Metric.add t.c_evict dropped;
    e.replies <- kept

  let note_dup t = Obs.Metric.incr t.c_dup

  let clear t =
    Hashtbl.reset t.sessions;
    Obs.Metric.set t.g_sessions 0.

  let dump t =
    Hashtbl.fold
      (fun client e acc -> (client, e.last_seq, e.replies) :: acc)
      t.sessions []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

  let write sink t =
    let rows = dump t in
    Codec.write_list sink
      (fun b (client, last_seq, replies) ->
        Codec.write_uvarint b client;
        Codec.write_varint b last_seq;
        Codec.write_list b
          (fun b (seq, reply) ->
            Codec.write_uvarint b seq;
            Codec.write_string b reply)
          replies)
      rows

  let read src t =
    let rows =
      Codec.read_list src (fun s ->
          let client = Codec.read_uvarint s in
          let last_seq = Codec.read_varint s in
          let replies =
            Codec.read_list s (fun s ->
                let seq = Codec.read_uvarint s in
                let reply = Codec.read_string s in
                (seq, reply))
          in
          (client, last_seq, replies))
    in
    Hashtbl.reset t.sessions;
    List.iter
      (fun (client, last_seq, replies) ->
        Hashtbl.replace t.sessions client { last_seq; replies })
      rows;
    Obs.Metric.set t.g_sessions (float_of_int (Hashtbl.length t.sessions))

  let digest t =
    let b = Codec.sink () in
    write b t;
    string_of_int (Hashtbl.hash (Codec.contents b))

  let sessions t = Hashtbl.length t.sessions
  let dup_hits t = Obs.Metric.value t.c_dup
  let evictions t = Obs.Metric.value t.c_evict
  let window t = t.window
end

let wrap ~table ~dedup_in_execute (app : App.t) : App.t =
  let execute ~request =
    match Envelope.decode request with
    | None -> app.App.execute ~request
    | Some { Envelope.client; seq; payload } ->
      let fresh () =
        let reply = app.App.execute ~request:payload in
        Table.record table ~client ~seq ~reply;
        reply
      in
      if not dedup_in_execute then fresh ()
      else (
        match Table.lookup table ~client ~seq with
        | Table.Hit reply ->
          Table.note_dup table;
          reply
        | Table.Stale ->
          Table.note_dup table;
          "ERR:duplicate-evicted"
        | Table.Miss -> fresh ())
  in
  let write_checkpoint sink =
    Table.write sink table;
    app.App.write_checkpoint sink
  in
  let read_checkpoint src =
    Table.read src table;
    app.App.read_checkpoint src
  in
  let digest () = app.App.digest () ^ "#s" ^ Table.digest table in
  { app with App.execute; write_checkpoint; read_checkpoint; digest }
