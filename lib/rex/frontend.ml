open Sim

type backend = {
  is_leader : unit -> bool;
  leader_hint : unit -> int option;
  enqueue : string -> (string option -> unit) -> unit;
  query : string -> string option;
}

type tap_event =
  | Tap_enqueue of { client : int; seq : int; payload : string }
  | Tap_commit of { client : int; seq : int; payload : string; response : string }
  | Tap_dup of { client : int; seq : int; payload : string; response : string }
  | Tap_drop of { client : int; seq : int }

type t = { node : int; mutable tap : (tap_event -> unit) option }

let set_tap t tap = t.tap <- tap
let node t = t.node

let register rpc ~node ~table backend =
  let t = { node; tap = None } in
  let tap ev = match t.tap with None -> () | Some f -> f ev in
  (* Logical requests currently in flight: from enqueue until the
     backend's commit/drop callback.  A retry that lands here joins the
     original instead of consulting the reply cache — the cache may hold
     a speculative (executed but uncommitted) reply that must not be
     released yet. *)
  let inflight : (int * int, (string option -> unit) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Rpc.serve_async rpc ~node ~port:Client.client_port
    (fun ~src:_ request ~reply ->
      let answer r = reply (Client.encode_reply r) in
      let finish = function
        | Some resp -> answer (Client.Ok_reply resp)
        | None -> answer Client.Dropped
      in
      if not (backend.is_leader ()) then
        answer (Client.Not_leader (backend.leader_hint ()))
      else
        match Session.Envelope.decode request with
        | exception Codec.Decode_error _ -> answer Client.Dropped
        | None -> backend.enqueue request finish
        | Some { Session.Envelope.client; seq; payload } -> (
          let key = (client, seq) in
          match Hashtbl.find_opt inflight key with
          | Some joiners ->
            Session.Table.note_dup table;
            joiners := finish :: !joiners
          | None -> (
            match Session.Table.lookup table ~client ~seq with
            | Session.Table.Hit resp ->
              Session.Table.note_dup table;
              tap (Tap_dup { client; seq; payload; response = resp });
              answer (Client.Ok_reply resp)
            | Session.Table.Stale ->
              Session.Table.note_dup table;
              tap (Tap_drop { client; seq });
              answer Client.Dropped
            | Session.Table.Miss ->
              let joiners = ref [ finish ] in
              Hashtbl.replace inflight key joiners;
              tap (Tap_enqueue { client; seq; payload });
              backend.enqueue request (fun result ->
                  Hashtbl.remove inflight key;
                  (match result with
                  | Some response ->
                    tap (Tap_commit { client; seq; payload; response })
                  | None -> tap (Tap_drop { client; seq }));
                  List.iter (fun f -> f result) !joiners))));
  Rpc.serve rpc ~node ~port:Client.query_port (fun ~src:_ request ->
      Client.encode_reply
        (match backend.query request with
        | Some resp -> Client.Ok_reply resp
        | None ->
          if backend.is_leader () then Client.Dropped
          else Client.Not_leader (backend.leader_hint ())));
  t

let encode_batch reqs =
  Codec.encode (fun l b -> Codec.write_list b Codec.write_string l) reqs

let decode_batch v =
  Codec.decode (fun s -> Codec.read_list s Codec.read_string) v

module Flow = struct
  type t = {
    eng : Engine.t;
    window : int;
    staleness : float;
    reports : (int, int * float) Hashtbl.t;
    mutable waiters : Engine.waker list;
  }

  let create eng ~window ~staleness =
    { eng; window; staleness; reports = Hashtbl.create 8; waiters = [] }

  let wake t =
    let ws = t.waiters in
    t.waiters <- [];
    List.iter Engine.wake ws

  let note t ~src ~count =
    Hashtbl.replace t.reports src (count, Engine.clock t.eng);
    wake t

  let ok t ~mine =
    let now = Engine.clock t.eng in
    let slow =
      Hashtbl.fold
        (fun _ (count, at) acc ->
          if now -. at <= t.staleness then
            Some (match acc with None -> count | Some m -> min m count)
          else acc)
        t.reports None
    in
    match slow with None -> true | Some s -> mine - s <= t.window

  let park t = Engine.park (fun w -> t.waiters <- w :: t.waiters)
  let reset t = Hashtbl.reset t.reports
end

module Replies = struct
  type entry = {
    id : Event.Id.t;
    t0 : float;
    resp : string;
    cb : string option -> unit;
  }

  type t = { mutable pending : entry list }

  let create () = { pending = [] }

  let add t ~id ~t0 ~resp ~cb =
    t.pending <- { id; t0; resp; cb } :: t.pending

  let release t ~upto =
    let ready, waiting =
      List.partition (fun e -> Trace.Cut.includes upto e.id) t.pending
    in
    t.pending <- waiting;
    List.map (fun e -> (e.t0, e.resp, e.cb)) ready

  let drop t =
    let all = t.pending in
    t.pending <- [];
    List.map (fun e -> (e.t0, e.resp, e.cb)) all

  let length t = List.length t.pending
end
