open Sim

type backend = {
  is_leader : unit -> bool;
  leader_hint : unit -> int option;
  enqueue : string -> (string option -> unit) -> unit;
  query : string -> string option;
}

type reads = {
  r_peers : unit -> int list;
      (* read per probe: membership changes under reconfiguration *)
  r_lease_valid : unit -> bool;
  r_read_index : unit -> int;
  r_applied_upto : unit -> int;
  r_read_local : string -> (string option -> unit) -> unit;
  r_lease_unsafe : bool;
}

(* How long a quorum read waits for probe replies, and then for the local
   executor to reach the probed index, before falling back to the ordered
   path.  Both are generous against the ms-scale protocol timers. *)
let probe_timeout = 0.05
let apply_wait = 0.1

type tap_event =
  | Tap_enqueue of { client : int; seq : int; payload : string }
  | Tap_commit of { client : int; seq : int; payload : string; response : string }
  | Tap_dup of { client : int; seq : int; payload : string; response : string }
  | Tap_drop of { client : int; seq : int }
  | Tap_reject of { client : int; seq : int; payload : string }

type admission = {
  a_max_global : int;
  a_max_per_client : int;
  a_queue_depth : unit -> int;
  a_queue_soft : int;
  a_queue_hard : int;
  a_soft_delay : float;
}

let admission ?(max_global = 0) ?(max_per_client = 0) ?(queue_soft = 0)
    ?(queue_hard = 0) ?(soft_delay = 2e-3) ~queue_depth () =
  if max_global < 0 || max_per_client < 0 || queue_soft < 0 || queue_hard < 0
  then invalid_arg "Frontend.admission: negative bound";
  if soft_delay <= 0. then invalid_arg "Frontend.admission: soft_delay";
  if queue_hard > 0 && queue_soft > queue_hard then
    invalid_arg "Frontend.admission: queue_soft > queue_hard";
  {
    a_max_global = max_global;
    a_max_per_client = max_per_client;
    a_queue_depth = queue_depth;
    a_queue_soft = queue_soft;
    a_queue_hard = queue_hard;
    a_soft_delay = soft_delay;
  }

type t = { node : int; mutable tap : (tap_event -> unit) option }

let set_tap t tap = t.tap <- tap
let node t = t.node

(* Ask every peer for its read index; return the max over a majority
   (counting our own), or None when no majority answered in time.  A
   committed write was accepted by a majority of replicas, so any probe
   majority intersects it: the returned index upper-bounds every write
   acknowledged before the probes were sent. *)
let quorum_read_index rpc ~node reads =
  let eng = Net.engine (Rpc.net rpc) in
  let members = reads.r_peers () in
  let peers = List.filter (fun p -> p <> node) members in
  let majority = (List.length members / 2) + 1 in
  let best = ref (reads.r_read_index ()) in
  let got = ref 1 in
  let done_ = ref 1 in
  let waiters = ref [] in
  let wake_all () =
    let ws = !waiters in
    waiters := [];
    List.iter Engine.wake ws
  in
  List.iter
    (fun p ->
      ignore
        (Engine.spawn eng ~node ~name:"frontend.read_probe" (fun () ->
             (match
                Rpc.call rpc ~src:node ~dst:p ~port:Client.read_port
                  ~timeout:probe_timeout ""
              with
             | Some payload -> (
               match Codec.decode Codec.read_uvarint payload with
               | idx ->
                 incr got;
                 if idx > !best then best := idx
               | exception Codec.Decode_error _ -> ())
             | None -> ());
             incr done_;
             wake_all ())))
    peers;
  let n = List.length members in
  let rec await () =
    if !got >= majority then Some !best
    else if !done_ >= n then None
    else begin
      Engine.park (fun w -> waiters := w :: !waiters);
      await ()
    end
  in
  await ()

let register rpc ~node ~table ?admission:adm ?reads backend =
  let t = { node; tap = None } in
  let tap ev = match t.tap with None -> () | Some f -> f ev in
  (* Logical requests currently in flight: from enqueue until the
     backend's commit/drop callback.  A retry that lands here joins the
     original instead of consulting the reply cache — the cache may hold
     a speculative (executed but uncommitted) reply that must not be
     released yet. *)
  let inflight : (int * int, (string option -> unit) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Per-client inflight counts, maintained only when admission control is
     on.  Logical requests, not RPCs: joiners and cache hits are free. *)
  let client_load : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let load_of client =
    Option.value (Hashtbl.find_opt client_load client) ~default:0
  in
  let obs = Engine.obs (Net.engine (Rpc.net rpc)) in
  let alabels = [ ("node", string_of_int node) ] in
  let actr name = Obs.counter obs ~subsystem:"frontend" ~labels:alabels name in
  let c_admitted = actr "admitted"
  and c_rej_queue = actr "adm_reject_queue"
  and c_rej_global = actr "adm_reject_global"
  and c_rej_client = actr "adm_reject_client"
  and c_backpressure = actr "backpressure_delays" in
  let g_inflight = Obs.gauge obs ~subsystem:"frontend" ~labels:alabels "inflight" in
  Rpc.serve_async rpc ~node ~port:Client.client_port
    (fun ~src:_ request ~reply ->
      let answer r = reply (Client.encode_reply r) in
      let finish = function
        | Some resp -> answer (Client.Ok_reply resp)
        | None -> answer Client.Dropped
      in
      (* Soft backpressure first, before any dedup-state reads: the
         handler fiber (and with it the client's RPC) is delayed while the
         run queue is deep, which slows closed-loop clients down without
         rejecting work.  Sleeping *after* the session-table lookup would
         open a duplicate-enqueue race with concurrent retries. *)
      (match adm with
      | Some a
        when a.a_queue_soft > 0 && a.a_queue_depth () >= a.a_queue_soft ->
        Obs.Metric.incr c_backpressure;
        Engine.sleep a.a_soft_delay
      | _ -> ());
      if not (backend.is_leader ()) then
        answer (Client.Not_leader (backend.leader_hint ()))
      else
        match Session.Envelope.decode request with
        | exception Codec.Decode_error _ -> answer Client.Dropped
        | None -> backend.enqueue request finish
        | Some { Session.Envelope.client; seq; payload } -> (
          let key = (client, seq) in
          match Hashtbl.find_opt inflight key with
          | Some joiners ->
            Session.Table.note_dup table;
            joiners := finish :: !joiners
          | None -> (
            match Session.Table.lookup table ~client ~seq with
            | Session.Table.Hit resp ->
              Session.Table.note_dup table;
              tap (Tap_dup { client; seq; payload; response = resp });
              answer (Client.Ok_reply resp)
            | Session.Table.Stale ->
              Session.Table.note_dup table;
              tap (Tap_drop { client; seq });
              answer Client.Dropped
            | Session.Table.Miss ->
              (* Hard admission: only *new* logical work is bounded —
                 joins and cache hits above cost nothing and keep the
                 exactly-once contract for already-admitted requests. *)
              let rejected =
                match adm with
                | None -> None
                | Some a ->
                  if a.a_queue_hard > 0 && a.a_queue_depth () >= a.a_queue_hard
                  then Some c_rej_queue
                  else if
                    a.a_max_global > 0
                    && Hashtbl.length inflight >= a.a_max_global
                  then Some c_rej_global
                  else if
                    a.a_max_per_client > 0
                    && load_of client >= a.a_max_per_client
                  then Some c_rej_client
                  else None
              in
              match rejected with
              | Some c ->
                Obs.Metric.incr c;
                tap (Tap_reject { client; seq; payload });
                answer Client.Busy
              | None ->
                let joiners = ref [ finish ] in
                Hashtbl.replace inflight key joiners;
                if Option.is_some adm then
                  Hashtbl.replace client_load client (load_of client + 1);
                Obs.Metric.incr c_admitted;
                Obs.Metric.set g_inflight
                  (float_of_int (Hashtbl.length inflight));
                tap (Tap_enqueue { client; seq; payload });
                backend.enqueue request (fun result ->
                    Hashtbl.remove inflight key;
                    if Option.is_some adm then begin
                      match load_of client - 1 with
                      | n when n <= 0 -> Hashtbl.remove client_load client
                      | n -> Hashtbl.replace client_load client n
                    end;
                    (match result with
                    | Some response ->
                      tap (Tap_commit { client; seq; payload; response })
                    | None -> tap (Tap_drop { client; seq }));
                    List.iter (fun f -> f result) !joiners))));
  (match reads with
  | None ->
    (* Legacy path: the stack's own (unfenced) query policy. *)
    Rpc.serve rpc ~node ~port:Client.query_port (fun ~src:_ request ->
        Client.encode_reply
          (match backend.query request with
          | Some resp -> Client.Ok_reply resp
          | None ->
            if backend.is_leader () then Client.Dropped
            else Client.Not_leader (backend.leader_hint ())))
  | Some r ->
    let eng = Net.engine (Rpc.net rpc) in
    let obs = Engine.obs eng in
    let labels = [ ("node", string_of_int node) ] in
    let c name = Obs.counter obs ~subsystem:"frontend" ~labels name in
    let c_lease = c "reads_fast_lease" in
    let c_quorum = c "reads_fast_quorum" in
    let c_unsafe = c "reads_unsafe_local" in
    let c_ordered = c "reads_ordered_fallback" in
    let c_rounds = c "quorum_read_rounds" in
    let c_redirect = c "reads_redirected" in
    (* Serve peers' quorum-read probes with our read index. *)
    Rpc.serve rpc ~node ~port:Client.read_port (fun ~src:_ _request ->
        Codec.encode (Fun.flip Codec.write_uvarint) (r.r_read_index ()));
    Rpc.serve_async rpc ~node ~port:Client.query_port
      (fun ~src:_ request ~reply ->
        let answer rep = reply (Client.encode_reply rep) in
        let serve_local counter =
          Obs.Metric.incr counter;
          r.r_read_local request (function
            | Some resp -> answer (Client.Ok_reply resp)
            | None -> answer Client.Dropped)
        in
        let ordered_fallback () =
          if backend.is_leader () then begin
            Obs.Metric.incr c_ordered;
            backend.enqueue request (function
              | Some resp -> answer (Client.Ok_reply resp)
              | None -> answer Client.Dropped)
          end
          else begin
            Obs.Metric.incr c_redirect;
            answer (Client.Not_leader (backend.leader_hint ()))
          end
        in
        if r.r_lease_unsafe && backend.is_leader () then
          (* Canary mode: trust leadership belief alone, no fence. *)
          serve_local c_unsafe
        else if r.r_lease_valid () then serve_local c_lease
        else begin
          (* Quorum read: any replica, leader or not, can serve once its
             local state covers a majority read index. *)
          Obs.Metric.incr c_rounds;
          match quorum_read_index rpc ~node r with
          | None -> ordered_fallback ()
          | Some idx ->
            let deadline = Engine.clock eng +. apply_wait in
            let rec catch_up () =
              if r.r_applied_upto () >= idx then serve_local c_quorum
              else if Engine.clock eng > deadline then ordered_fallback ()
              else begin
                Engine.sleep 1e-3;
                catch_up ()
              end
            in
            catch_up ()
        end));
  t

let encode_batch reqs =
  Codec.encode (fun l b -> Codec.write_list b Codec.write_string l) reqs

let decode_batch v =
  Codec.decode (fun s -> Codec.read_list s Codec.read_string) v

module Flow = struct
  type t = {
    eng : Engine.t;
    window : int;
    staleness : float;
    reports : (int, int * float) Hashtbl.t;
    mutable waiters : Engine.waker list;
  }

  let create eng ~window ~staleness =
    { eng; window; staleness; reports = Hashtbl.create 8; waiters = [] }

  let wake t =
    let ws = t.waiters in
    t.waiters <- [];
    List.iter Engine.wake ws

  let note t ~src ~count =
    Hashtbl.replace t.reports src (count, Engine.clock t.eng);
    wake t

  let ok t ~mine =
    let now = Engine.clock t.eng in
    let slow =
      Hashtbl.fold
        (fun _ (count, at) acc ->
          if now -. at <= t.staleness then
            Some (match acc with None -> count | Some m -> min m count)
          else acc)
        t.reports None
    in
    match slow with None -> true | Some s -> mine - s <= t.window

  let park t = Engine.park (fun w -> t.waiters <- w :: t.waiters)
  let reset t = Hashtbl.reset t.reports
end

module Replies = struct
  type entry = {
    id : Event.Id.t;
    t0 : float;
    resp : string;
    cb : string option -> unit;
  }

  type t = { mutable pending : entry list }

  let create () = { pending = [] }

  let add t ~id ~t0 ~resp ~cb =
    t.pending <- { id; t0; resp; cb } :: t.pending

  let release t ~upto =
    let ready, waiting =
      List.partition (fun e -> Trace.Cut.includes upto e.id) t.pending
    in
    t.pending <- waiting;
    List.map (fun e -> (e.t0, e.resp, e.cb)) ready

  let drop t =
    let all = t.pending in
    t.pending <- [];
    List.map (fun e -> (e.t0, e.resp, e.cb)) all

  let length t = List.length t.pending
end
