open Sim

type t = {
  eng : Engine.t;
  net_ : Net.t;
  rpc_ : Rpc.t;
  cfg : Config.t;
  factory : App.factory;
  mutable replica_nodes : int array;
      (* every node that ever hosted a replica, in creation order *)
  mutable servers_ : Server.t array; (* parallel to [replica_nodes] *)
  mutable stores : Paxos.Store.t array;
  mutable disks : Checkpoint.Disk.t array;
  mutable members : int list; (* current committed membership *)
  make_agreement :
    (Server.t -> Agreement.callbacks -> Agreement.t) option;
  first_client_node : int;
  mutable on_new_server : (Server.t -> unit) option;
}

let index_of t node =
  let n = Array.length t.replica_nodes in
  let rec go i =
    if i >= n then
      invalid_arg (Printf.sprintf "Cluster: node %d hosts no replica" node)
    else if t.replica_nodes.(i) = node then i
    else go (i + 1)
  in
  go 0

(* Shared construction: wire one replica group into an existing
   engine/network/RPC fabric.  [Config.replicas] holds absolute node ids,
   which need not start at 0 — a sharded fleet packs many groups into one
   simulation with disjoint id ranges. *)
let create_in ?(agreement = `Paxos) ?vm_node ~client_node net rpc cfg factory =
  let eng = Net.engine net in
  let replica_nodes = Array.of_list cfg.Config.replicas in
  let n = Array.length replica_nodes in
  Array.iter
    (fun node ->
      if node < 0 || node >= Engine.num_nodes eng then
        invalid_arg
          (Printf.sprintf "Cluster.create_in: replica node %d outside engine"
             node))
    replica_nodes;
  let stores = Array.init n (fun _ -> Paxos.Store.create ()) in
  let disks = Array.init n (fun _ -> Checkpoint.Disk.create ()) in
  let index_of_node node =
    let rec go i =
      if i >= n then invalid_arg "Cluster: unknown replica node"
      else if replica_nodes.(i) = node then i
      else go (i + 1)
    in
    go 0
  in
  let make_agreement =
    match agreement with
    | `Paxos -> None
    | `Chain ->
      (* the view manager lives on a node the benchmarks never crash:
         the client node unless the caller picks another *)
      let vm_node = Option.value vm_node ~default:client_node in
      Chain.view_manager net ~node:vm_node ~replicas:cfg.Config.replicas ();
      Some
        (fun srv cbs ->
          Chain.make net ~node:(Server.node srv) ~vm_node
            ~store:stores.(index_of_node (Server.node srv))
            cbs)
  in
  let servers_ =
    Array.init n (fun i ->
        Server.create ?make_agreement net rpc cfg ~node:replica_nodes.(i)
          ~paxos_store:stores.(i) ~disk:disks.(i) factory)
  in
  {
    eng;
    net_ = net;
    rpc_ = rpc;
    cfg;
    factory;
    replica_nodes;
    servers_;
    stores;
    disks;
    members = cfg.Config.replicas;
    make_agreement;
    first_client_node = client_node;
    on_new_server = None;
  }

let create ?(seed = 7) ?(cores_per_node = 16) ?(extra_nodes = 1)
    ?(net_latency = 50e-6) ?(agreement = `Paxos) cfg factory =
  let n = List.length cfg.Config.replicas in
  if cfg.Config.replicas <> List.init n Fun.id then
    invalid_arg "Cluster.create: replicas must be nodes 0..n-1";
  let eng =
    Engine.create ~seed ~cores_per_node ~num_nodes:(n + extra_nodes) ()
  in
  let net_ = Net.create ~base_latency:net_latency eng in
  let rpc_ = Rpc.create net_ in
  create_in ~agreement ~vm_node:n ~client_node:n net_ rpc_ cfg factory

let engine t = t.eng
let net t = t.net_
let rpc t = t.rpc_
let server t node = t.servers_.(index_of t node)
let servers t = t.servers_
let replica_nodes t = Array.to_list t.replica_nodes
let client_node t = t.first_client_node
let start t = Array.iter Server.start t.servers_
let run ?until t = Engine.run ?until t.eng
let run_for t d = Engine.run ~until:(Engine.clock t.eng +. d) t.eng

let primary t =
  Array.find_opt
    (fun s -> Engine.node_alive t.eng (Server.node s) && Server.is_primary s)
    t.servers_

let await_primary ?(limit = 30.) t =
  let deadline = Engine.clock t.eng +. limit in
  let rec go () =
    match primary t with
    | Some s -> s
    | None ->
      if Engine.clock t.eng >= deadline then
        failwith "Cluster.await_primary: no primary elected"
      else begin
        run_for t 0.05;
        go ()
      end
  in
  go ()

let crash t node =
  ignore (index_of t node);
  Engine.crash_node t.eng node

let restart t node =
  let i = index_of t node in
  Engine.restart_node t.eng node;
  (* Rejoin under the current membership: the surviving Paxos store's
     group slot takes precedence inside the replica, so this only
     matters for a replica that crashed before any config committed. *)
  let cfg = { t.cfg with Config.replicas = t.members } in
  let s =
    Server.create ?make_agreement:t.make_agreement t.net_ t.rpc_ cfg ~node
      ~paxos_store:t.stores.(i) ~disk:t.disks.(i) t.factory
  in
  t.servers_.(i) <- s;
  Server.start s;
  match t.on_new_server with Some f -> f s | None -> ()

let client t = Client.create t.rpc_ ~me:t.first_client_node ~replicas:t.members

(* --- Live topology: reconfiguration through the replicated log --- *)

let members t = t.members
let set_on_new_server t f = t.on_new_server <- f

let require_paxos t op =
  if t.make_agreement <> None then
    invalid_arg (op ^ ": chain agreement has no reconfiguration")

(* Drive a membership change to commitment: keep (re)proposing through
   whichever replica currently leads until some primary reports the new
   config.  Re-proposing is idempotent — a replica refuses while its own
   proposal is pending, and once the config applies the transition is no
   longer a one-replica change, so duplicates are rejected at the source. *)
let propose_config ?(limit = 30.) t new_members =
  let deadline = Engine.clock t.eng +. limit in
  let target = List.sort_uniq compare new_members in
  let applied () =
    match primary t with
    | Some s -> List.sort_uniq compare (Server.peers s) = target
    | None -> false
  in
  let rec go () =
    if applied () then ()
    else if Engine.clock t.eng >= deadline then
      failwith "Cluster.propose_config: reconfiguration did not commit"
    else begin
      (match primary t with
      | Some s -> ignore (Server.reconfig s new_members)
      | None -> ());
      run_for t 0.05;
      go ()
    end
  in
  go ()

let add_replica ?limit t =
  require_paxos t "Cluster.add_replica";
  let node = Engine.add_node t.eng in
  Rpc.attach_node t.rpc_ ~node;
  let new_members = t.members @ [ node ] in
  (* Commit first, start second: until the config entry commits the
     current leader does not broadcast to the newcomer, so a newcomer
     started early would see silence and campaign against a healthy
     leader.  Messages sent between commit and start are just dropped;
     heartbeat-driven retransmission and checkpoint fast-forward catch
     the newcomer up once it is live. *)
  propose_config ?limit t new_members;
  t.members <- new_members;
  let store = Paxos.Store.create () in
  Paxos.Store.set_group store new_members;
  let disk = Checkpoint.Disk.create () in
  let cfg = { t.cfg with Config.replicas = new_members } in
  let s =
    Server.create ?make_agreement:t.make_agreement t.net_ t.rpc_ cfg ~node
      ~paxos_store:store ~disk t.factory
  in
  t.replica_nodes <- Array.append t.replica_nodes [| node |];
  t.servers_ <- Array.append t.servers_ [| s |];
  t.stores <- Array.append t.stores [| store |];
  t.disks <- Array.append t.disks [| disk |];
  Server.start s;
  (match t.on_new_server with Some f -> f s | None -> ());
  node

let remove_replica ?limit t node =
  require_paxos t "Cluster.remove_replica";
  ignore (index_of t node);
  if not (List.mem node t.members) then
    invalid_arg "Cluster.remove_replica: not a current member";
  if List.length t.members <= 1 then
    invalid_arg "Cluster.remove_replica: cannot empty the group";
  let new_members = List.filter (fun n -> n <> node) t.members in
  propose_config ?limit t new_members;
  t.members <- new_members;
  if Engine.node_alive t.eng node then Engine.crash_node t.eng node

let replace_replica ?limit t node =
  let fresh = add_replica ?limit t in
  remove_replica ?limit t node;
  fresh

let rolling_restart ?(pause = 1.0) t =
  List.iter
    (fun node ->
      if Engine.node_alive t.eng node then begin
        crash t node;
        run_for t pause;
        restart t node;
        ignore (await_primary t);
        run_for t pause
      end)
    t.members

let check_no_divergence t =
  Array.iter
    (fun s ->
      if Engine.node_alive t.eng (Server.node s) then
        match Server.divergence s with
        | Some msg -> failwith ("replica diverged: " ^ msg)
        | None -> ())
    t.servers_

(* --- Builder: the config/launch plumbing every bench used to copy --- *)

let config ?(n_replicas = 3) ?workers ?propose_interval
    ?(checkpoint_interval = None) ?flow_window ?flow_report_interval
    ?flow_staleness ?heartbeat_period ?election_timeout ?reduce_edges
    ?partial_order ?check_versions ?record_cost ?replay_cost ?ckpt_byte_cost
    ?pipeline_depth ?paxos_sync_latency ?lease_duration ?lease_drift_bound
    ?lease_unsafe () =
  if n_replicas <= 0 then invalid_arg "Cluster.config: n_replicas";
  Config.make ?workers ?propose_interval ~checkpoint_interval ?flow_window
    ?flow_report_interval ?flow_staleness ?heartbeat_period ?election_timeout
    ?reduce_edges ?partial_order ?check_versions ?record_cost ?replay_cost
    ?ckpt_byte_cost ?pipeline_depth ?paxos_sync_latency ?lease_duration
    ?lease_drift_bound ?lease_unsafe
    ~replicas:(List.init n_replicas Fun.id) ()

let launch ?seed ?cores_per_node ?extra_nodes ?net_latency ?agreement ?limit
    ?(before_start = fun _ -> ()) cfg factory =
  let t = create ?seed ?cores_per_node ?extra_nodes ?net_latency ?agreement cfg factory in
  before_start t;
  start t;
  ignore (await_primary ?limit t);
  t
