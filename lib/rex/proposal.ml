type t = {
  delta : Trace.Delta.t;
  ckpt : (int * Trace.Cut.t) option;
}

let write b t =
  Trace.Delta.write b t.delta;
  Codec.write_option b
    (fun b (seq, cut) ->
      Codec.write_uvarint b seq;
      Trace.Cut.write b cut)
    t.ckpt

let read s =
  let delta = Trace.Delta.read s in
  let ckpt =
    Codec.read_option s (fun s ->
        let seq = Codec.read_uvarint s in
        let cut = Trace.Cut.read s in
        (seq, cut))
  in
  { delta; ckpt }

let encode t = Codec.encode (Fun.flip write) t
let decode s = Codec.decode read s

let wire_size t =
  let b = Codec.counting_sink () in
  write b t;
  Codec.length b
