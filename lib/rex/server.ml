open Sim
module Runtime = Rexsync.Runtime

let flow_port = "rex.flow"
let fetch_ckpt_port = "rex.fetch_ckpt"
let push_ckpt_port = "rex.push_ckpt"

(* Timer slots beyond the workers; a fixed budget keeps the slot count —
   and hence trace arity — independent of when the factory runs. *)
let timer_slot_budget = 8

type role = Primary | Secondary

type exec = {
  gen : int;
  rt : Runtime.t;
  app : App.t;
  timers : Api.timer_spec array;
}

type pending_ckpt = { pc_seq : int; pc_cut : Trace.Cut.t; pc_instance : int }

type stats = {
  requests_executed : int;
  replies_sent : int;
  queries_served : int;
  proposals_sent : int;
  proposal_bytes : int;
  request_payload_bytes : int;
  checkpoints_written : int;
  rollbacks : int;
}

type t = {
  eng : Engine.t;
  net : Net.t;
  rpc : Rpc.t;
  cfg : Config.t;
  node_id : int;
  factory : App.factory;
  pstore : Paxos.Store.t;
  disk : Checkpoint.Disk.t;
  slots : int;
  mutable agree : Agreement.t option;
  make_agreement : (t -> Agreement.callbacks -> Agreement.t) option;
  mutable exec : exec option;
  mutable role_ : role;
  mutable gen : int;
  mutable rebuilding : bool;
  (* run queue (primary); entries carry their submit time for the
     request-latency histogram *)
  queue : (string * float * (string option -> unit)) Queue.t;
  mutable queue_waiters : Engine.waker list;
  replies : Frontend.Replies.t;
  (* lease-path reads answered from speculative primary state, held until
     the recorded prefix they observed commits (same gate as [replies],
     but keyed by whole cuts — reads have no event of their own) *)
  mutable pending_reads : (Trace.Cut.t * string * (string option -> unit)) list;
  (* client-facing protocol surface; carried for history taps (lib/check) *)
  mutable front : Frontend.t option;
  (* client sessions: replicated via the execution path (Session.wrap),
     consulted at intake by the frontend *)
  session : Session.Table.t;
  (* consensus bookkeeping *)
  mutable proposed_cut : Trace.Cut.t;
  mutable committed_cut_ : Trace.Cut.t;
  mutable committed_instance : int;
  (* checkpointing: primary side *)
  mutable ckpt_flag : bool;
  mutable ckpt_paused : int;
  mutable ckpt_seq : int;
  mutable ckpt_pending_proposal : (int * Trace.Cut.t) option;
  mutable ckpt_resume_waiters : Engine.waker list;
  mutable ckpt_kick : Engine.waker list;
  (* checkpointing: secondary side *)
  mutable ckpt_barrier : pending_ckpt option;
  mutable ckpt_arrived : int;
  mutable ckpt_done_waiters : Engine.waker list;
  (* committed_upto at the last pushed-checkpoint absorption; two
     consecutive blobs with no progress below the blob's base mean the
     entries we still need were GC'd cluster-wide and we must rebuild
     from the blob instead of waiting for a Learn that can never
     succeed. *)
  mutable ckpt_push_upto : int;
  (* flow control *)
  flow : Frontend.Flow.t;
  (* observability (subsystem "rex", labelled by node) *)
  obs : Obs.t;
  c_requests : Obs.Metric.counter;
  c_replies : Obs.Metric.counter;
  c_queries : Obs.Metric.counter;
  c_proposals : Obs.Metric.counter;
  c_proposal_bytes : Obs.Metric.counter;
  c_request_bytes : Obs.Metric.counter;
  c_ckpts : Obs.Metric.counter;
  c_ckpt_bytes : Obs.Metric.counter;
  c_rollbacks : Obs.Metric.counter;
  c_flow_stalls : Obs.Metric.counter;
  c_decode_errors : Obs.Metric.counter;
  h_req_lat_primary : Obs.Histogram.t;
  h_req_lat_secondary : Obs.Histogram.t;
  h_flow_stall : Obs.Histogram.t;
  mutable diverged : string option;
}

let node t = t.node_id
let session_table t = t.session

let frontend t =
  match t.front with
  | Some f -> f
  | None -> invalid_arg "Server.frontend: not registered"
let role t = t.role_
let is_primary t = t.role_ = Primary
let committed_cut t = t.committed_cut_
let queue_length t = Queue.length t.queue
let divergence t = t.diverged
let agreement t = Option.get t.agree

(* Current replica-group membership: dynamic once the agreement layer
   has applied committed config entries, the constructed list before
   [start].  Checkpoint pushes, flow reports and quorum reads all route
   over this so they track live reconfiguration. *)
let peers t =
  match t.agree with
  | Some a -> a.Agreement.peers ()
  | None -> t.cfg.Config.replicas

let reconfig t new_peers = (agreement t).Agreement.reconfig new_peers

let the_exec t =
  match t.exec with
  | Some e -> e
  | None -> invalid_arg "Rex.Server: not started"

let runtime t = (the_exec t).rt
let app_digest t = (the_exec t).app.App.digest ()
let runtime_stats t = Runtime.stats (runtime t)

let executed_cut t =
  let e = the_exec t in
  match Runtime.mode e.rt with
  | Runtime.Replay -> Runtime.executed_cut e.rt
  | Runtime.Record | Runtime.Native -> Runtime.recorded_cut e.rt

let divergence_report t =
  match (t.diverged, t.exec) with
  | Some msg, Some exec ->
    let rt = exec.rt in
    let dot =
      Render.window_to_dot
        ~resource_name:(Runtime.resource_name rt)
        (Runtime.trace rt)
        ~center:(Runtime.executed_cut rt)
        ~radius:6
    in
    Some (msg ^ "\n" ^ dot)
  | _ -> None

(* Thin view over the registry counters so existing callers and tests keep
   working; the registry itself is what the exporters walk. *)
let stats t =
  {
    requests_executed = Obs.Metric.value t.c_requests;
    replies_sent = Obs.Metric.value t.c_replies;
    queries_served = Obs.Metric.value t.c_queries;
    proposals_sent = Obs.Metric.value t.c_proposals;
    proposal_bytes = Obs.Metric.value t.c_proposal_bytes;
    request_payload_bytes = Obs.Metric.value t.c_request_bytes;
    checkpoints_written = Obs.Metric.value t.c_ckpts;
    rollbacks = Obs.Metric.value t.c_rollbacks;
  }

let wake_all waiters = List.iter Engine.wake waiters

let wake_queue t =
  let ws = t.queue_waiters in
  t.queue_waiters <- [];
  wake_all ws

let wake_flow t = Frontend.Flow.wake t.flow

let wake_ckpt_resume t =
  let ws = t.ckpt_resume_waiters in
  t.ckpt_resume_waiters <- [];
  wake_all ws

let wake_ckpt_kick t =
  let ws = t.ckpt_kick in
  t.ckpt_kick <- [];
  wake_all ws

let wake_ckpt_done t =
  let ws = t.ckpt_done_waiters in
  t.ckpt_done_waiters <- [];
  wake_all ws

let active_slots t exec = t.cfg.Config.workers + Array.length exec.timers

let req_latency t =
  match t.role_ with
  | Primary -> t.h_req_lat_primary
  | Secondary -> t.h_req_lat_secondary

let release_replies t =
  let ready = Frontend.Replies.release t.replies ~upto:t.committed_cut_ in
  let now = Engine.clock t.eng in
  let h = req_latency t in
  List.iter
    (fun (t0, resp, cb) ->
      Obs.Metric.incr t.c_replies;
      Obs.Histogram.observe h (now -. t0);
      let sp = Obs.spans t.obs in
      if Obs.Span.enabled sp then
        Obs.Span.complete sp ~cat:"rex" ~pid:t.node_id ~name:"request"
          ~ts:t0 ~dur:(now -. t0) ();
      cb (Some resp))
    ready;
  let ready_reads, waiting_reads =
    List.partition
      (fun (cut, _, _) -> Trace.Cut.leq cut t.committed_cut_)
      t.pending_reads
  in
  t.pending_reads <- waiting_reads;
  List.iter (fun (_, resp, cb) -> cb (Some resp)) ready_reads

let drop_client_state t =
  List.iter (fun (_, _, cb) -> cb None) (Frontend.Replies.drop t.replies);
  List.iter (fun (_, _, cb) -> cb None) t.pending_reads;
  t.pending_reads <- [];
  Queue.iter (fun (_, _, cb) -> cb None) t.queue;
  Queue.clear t.queue

(* --- Flow control (paper §6.3: the primary waits for live secondaries) --- *)

let flow_ok t exec =
  let mine =
    Array.fold_left ( + ) 0 (Trace.Cut.to_array (Runtime.recorded_cut exec.rt))
  in
  Frontend.Flow.ok t.flow ~mine

(* --- Checkpoint: secondary barrier --- *)

let ckpt_arrive t exec seq =
  match t.ckpt_barrier with
  | Some pc when pc.pc_seq = seq ->
    t.ckpt_arrived <- t.ckpt_arrived + 1;
    if t.ckpt_arrived >= active_slots t exec then begin
      (* Every slot is paused at its mark: the state is quiescent. *)
      let ck_start = Engine.now () in
      let sink = Codec.sink ~initial_capacity:4096 () in
      exec.app.App.write_checkpoint sink;
      (* Serializing + writing the snapshot stalls this replica's replay,
         which the flow-control window turns into the primary-side dip of
         Fig. 10. *)
      Engine.work
        (float_of_int (Codec.length sink) *. t.cfg.Config.ckpt_byte_cost);
      let blob =
        {
          Checkpoint.seq = pc.pc_seq;
          instance = pc.pc_instance;
          cut = pc.pc_cut;
          versions = Runtime.version_snapshot exec.rt;
          app_bytes = Codec.contents sink;
        }
      in
      Checkpoint.Disk.save t.disk blob;
      (match t.agree with
      | Some a -> a.Agreement.truncate_below pc.pc_instance
      | None -> ());
      (* The saved checkpoint subsumes everything at or below its cut:
         drop that trace prefix too (the in-memory twin of the log
         truncation above).  Every slot is parked at its mark, so the
         cut is fully executed here. *)
      Runtime.compact_trace exec.rt ~upto:pc.pc_cut;
      Obs.Metric.incr t.c_ckpts;
      Obs.Metric.add t.c_ckpt_bytes (String.length blob.app_bytes);
      let sp = Obs.spans t.obs in
      if Obs.Span.enabled sp then
        Obs.Span.complete sp ~cat:"ckpt" ~pid:t.node_id ~name:"checkpoint"
          ~ts:ck_start
          ~dur:(Engine.now () -. ck_start)
          ();
      t.ckpt_barrier <- None;
      t.ckpt_arrived <- 0;
      wake_ckpt_done t;
      (* Copy the checkpoint to the other replicas in the background
         (§3.3) so every node — the primary included — can roll back or
         recover locally. *)
      let encoded = Checkpoint.encode blob in
      ignore
        (Engine.spawn t.eng ~node:t.node_id ~name:"rex.ckpt-push" (fun () ->
             List.iter
               (fun peer ->
                 if peer <> t.node_id then
                   Net.send t.net ~src:t.node_id ~dst:peer ~port:push_ckpt_port
                     encoded)
               (peers t)))
    end
    else
      while
        match t.ckpt_barrier with
        | Some pc' when pc'.pc_seq = seq -> true
        | Some _ | None -> false
      do
        Engine.park (fun w -> t.ckpt_done_waiters <- w :: t.ckpt_done_waiters)
      done
  | Some _ | None -> () (* stale mark from before our checkpoint *)

(* --- Checkpoint: primary pause (paper §3.3) --- *)

let ckpt_pause_if_needed t exec =
  if t.ckpt_flag then begin
    ignore
      (Runtime.record exec.rt ~kind:Event.Ckpt_mark ~resource:t.ckpt_seq []);
    t.ckpt_paused <- t.ckpt_paused + 1;
    if t.ckpt_paused >= active_slots t exec then begin
      (* All slots are at a request boundary: this trace end is the cut. *)
      t.ckpt_pending_proposal <-
        Some (t.ckpt_seq, Trace.end_cut (Runtime.trace exec.rt));
      t.ckpt_flag <- false;
      t.ckpt_paused <- 0;
      wake_ckpt_resume t
    end
    else
      while t.ckpt_flag do
        Engine.park (fun w ->
            t.ckpt_resume_waiters <- w :: t.ckpt_resume_waiters)
      done
  end

let request_checkpoint t =
  if t.role_ = Primary && (not t.ckpt_flag) && t.exec <> None then begin
    t.ckpt_seq <- t.ckpt_seq + 1;
    t.ckpt_flag <- true;
    wake_queue t;
    wake_flow t;
    wake_ckpt_kick t
  end

(* --- Worker slots --- *)

let current t (exec : exec) = exec.gen = t.gen && t.diverged = None

(* Blocking request intake with checkpoint-pause and flow-control gates. *)
let rec pop_request t exec =
  if not (current t exec) || t.role_ <> Primary then None
  else begin
    ckpt_pause_if_needed t exec;
    if not (flow_ok t exec) then begin
      Obs.Metric.incr t.c_flow_stalls;
      let t0 = Engine.now () in
      Frontend.Flow.park t.flow;
      let stalled = Engine.now () -. t0 in
      Obs.Histogram.observe t.h_flow_stall stalled;
      let sp = Obs.spans t.obs in
      if Obs.Span.enabled sp then
        Obs.Span.complete sp ~cat:"rex" ~pid:t.node_id ~name:"flow_stall"
          ~ts:t0 ~dur:stalled ();
      pop_request t exec
    end
    else
      match Queue.take_opt t.queue with
      | Some r -> Some r
      | None ->
        Engine.park (fun w -> t.queue_waiters <- w :: t.queue_waiters);
        pop_request t exec
  end

let execute_guarded t exec request =
  match exec.app.App.execute ~request with
  | resp -> resp
  | exception ((Runtime.Divergence _ | Runtime.Replay_interrupted | Engine.Killed) as e) ->
    raise e
  | exception exn ->
    Logs.warn (fun m ->
        m "rex[%d]: handler raised %s" t.node_id (Printexc.to_string exn));
    "ERR:handler-exception"

(* Result checking (§5): the primary logs a digest of each response in
   the request's completion event; secondaries compare it against the
   response their own replay computed, catching divergences that version
   checking alone would surface much later. *)
let response_digest resp =
  let b = Codec.sink ~initial_capacity:8 () in
  Codec.write_uvarint b (Hashtbl.hash resp);
  Codec.contents b

let record_iteration t exec =
  match pop_request t exec with
  | None -> ()
  | Some (request, t0, cb) ->
    ignore
      (Runtime.record exec.rt ~kind:Event.Req_start ~resource:0
         ~payload:request []);
    Obs.Metric.add t.c_request_bytes (String.length request);
    let exec_start = Engine.now () in
    let resp = execute_guarded t exec request in
    let src =
      Runtime.record exec.rt ~kind:Event.Req_end ~resource:0
        ~payload:(response_digest resp) []
    in
    Obs.Metric.incr t.c_requests;
    let sp = Obs.spans t.obs in
    if Obs.Span.enabled sp then
      Obs.Span.complete sp ~cat:"rex" ~pid:t.node_id ~tid:(Engine.self ())
        ~name:"execute" ~ts:exec_start
        ~dur:(Engine.now () -. exec_start)
        ();
    Frontend.Replies.add t.replies ~id:(Runtime.source_id src) ~t0 ~resp ~cb

let replay_iteration t exec =
  match Runtime.await_next exec.rt with
  | `Interrupted -> raise Runtime.Replay_interrupted
  | `Record_now -> () (* promotion: the main loop re-dispatches on mode *)
  | `Event e -> (
    match e.Event.kind with
    | Event.Req_start ->
      (* Dispatch events carry no incoming causal edges. *)
      Runtime.complete exec.rt e;
      let resp = execute_guarded t exec e.payload in
      (match Runtime.mode exec.rt with
      | Runtime.Replay -> (
        match Runtime.take exec.rt ~kinds:[ Event.Req_end ] ~resource:0 with
        | `Event e2 ->
          if
            t.cfg.Config.check_versions && e2.payload <> ""
            && e2.payload <> response_digest resp
          then
            raise
              (Runtime.Divergence
                 (Fmt.str
                    "rex[%d]: slot %d computed a different response than the                      primary for %S (result checking, §5)"
                    t.node_id e.id.slot
                    (String.sub e.payload 0 (min 40 (String.length e.payload)))))
          else Runtime.complete exec.rt e2
        | `Record_now ->
          ignore
            (Runtime.record exec.rt ~kind:Event.Req_end ~resource:0
               ~payload:(response_digest resp) []))
      | Runtime.Record | Runtime.Native ->
        (* Promoted mid-request: finish it as the new primary. *)
        ignore
          (Runtime.record exec.rt ~kind:Event.Req_end ~resource:0
             ~payload:(response_digest resp) []));
      Obs.Metric.incr t.c_requests
    | Event.Ckpt_mark ->
      Runtime.complete exec.rt e;
      ckpt_arrive t exec e.resource
    | _ ->
      raise
        (Runtime.Divergence
           (Fmt.str "rex[%d]: worker slot %d found unexpected %s in trace"
              t.node_id e.id.slot
              (Event.kind_to_string e.kind))))

let worker_loop t exec slot () =
  Runtime.bind_slot exec.rt slot;
  let rec loop () =
    if current t exec then begin
      (match Runtime.mode exec.rt with
      | Runtime.Record -> record_iteration t exec
      | Runtime.Replay -> replay_iteration t exec
      | Runtime.Native -> ());
      loop ()
    end
  in
  (try loop () with
  | Runtime.Divergence msg -> t.diverged <- Some msg
  | Runtime.Replay_interrupted -> ());
  Runtime.unbind_slot exec.rt

(* --- Timer slots (background tasks, e.g. compaction) --- *)

(* Wait out the timer period, but stay responsive to checkpoint pauses
   and teardown. *)
let timer_wait t exec interval =
  let deadline = Engine.now () +. interval in
  let rec wait () =
    if not (current t exec) then ()
    else begin
      ckpt_pause_if_needed t exec;
      let now = Engine.now () in
      if now < deadline then begin
        Engine.park (fun w ->
            t.ckpt_kick <- w :: t.ckpt_kick;
            Engine.schedule t.eng ~at:deadline (fun () -> Engine.wake w));
        wait ()
      end
    end
  in
  wait ()

let timer_record_iteration t exec (spec : Api.timer_spec) =
  timer_wait t exec spec.t_interval;
  if current t exec && Runtime.mode exec.rt = Runtime.Record then begin
    ignore
      (Runtime.record exec.rt ~kind:Event.Timer_fire ~resource:0
         ~payload:spec.t_name []);
    spec.t_callback ()
  end

let timer_replay_iteration t exec (spec : Api.timer_spec) =
  match Runtime.await_next exec.rt with
  | `Interrupted -> raise Runtime.Replay_interrupted
  | `Record_now -> ()
  | `Event e -> (
    match e.Event.kind with
    | Event.Timer_fire ->
      Runtime.complete exec.rt e;
      spec.t_callback ()
    | Event.Ckpt_mark ->
      Runtime.complete exec.rt e;
      ckpt_arrive t exec e.resource
    | _ ->
      raise
        (Runtime.Divergence
           (Fmt.str "rex[%d]: timer slot %d found unexpected %s" t.node_id
              e.id.slot
              (Event.kind_to_string e.kind))))

let timer_loop t exec slot (spec : Api.timer_spec) () =
  Runtime.bind_slot exec.rt slot;
  let rec loop () =
    if current t exec then begin
      (match Runtime.mode exec.rt with
      | Runtime.Record -> timer_record_iteration t exec spec
      | Runtime.Replay -> timer_replay_iteration t exec spec
      | Runtime.Native -> ());
      loop ()
    end
  in
  (try loop () with
  | Runtime.Divergence msg -> t.diverged <- Some msg
  | Runtime.Replay_interrupted -> ());
  Runtime.unbind_slot exec.rt

let spawn_slots t exec =
  for slot = 0 to t.cfg.Config.workers - 1 do
    ignore
      (Engine.spawn t.eng ~node:t.node_id
         ~name:(Printf.sprintf "rex.worker%d" slot)
         (worker_loop t exec slot))
  done;
  Array.iteri
    (fun i spec ->
      ignore
        (Engine.spawn t.eng ~node:t.node_id
           ~name:(Printf.sprintf "rex.timer.%s" spec.Api.t_name)
           (timer_loop t exec (t.cfg.Config.workers + i) spec)))
    exec.timers

(* --- Secondary flow reporting --- *)

let spawn_flow_reporter t exec =
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"rex.flow" (fun () ->
         while current t exec do
           Engine.sleep t.cfg.Config.flow_report_interval;
           if current t exec && t.role_ = Secondary then begin
             let count =
               Array.fold_left ( + ) 0
                 (Trace.Cut.to_array (Runtime.executed_cut exec.rt))
             in
             let b = Codec.sink ~initial_capacity:16 () in
             Codec.write_uvarint b count;
             List.iter
               (fun peer ->
                 if peer <> t.node_id then
                   Net.send t.net ~src:t.node_id ~dst:peer ~port:flow_port
                     (Codec.contents b))
               (peers t)
           end
         done))

(* --- Proposer (primary) --- *)

let spawn_proposer t exec =
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"rex.proposer" (fun () ->
         (* Extraction cursor: the steady-state propose path costs
            O(events and edges since the last proposal), independent of
            how much trace has accumulated since the last checkpoint.
            Recreated whenever its position disagrees with
            [proposed_cut] — the first iteration, or after a failed
            propose advanced the cursor without advancing the cut. *)
         let cursor = ref None in
         while current t exec && t.role_ = Primary do
           Engine.sleep t.cfg.Config.propose_interval;
           wake_flow t;
           (* staleness re-check *)
           if current t exec && t.role_ = Primary && not t.ckpt_flag then begin
             let agree = agreement t in
             if agree.Agreement.can_propose () then begin
               let tr = Runtime.trace exec.rt in
               let upto = Trace.end_cut tr in
               let ckpt = t.ckpt_pending_proposal in
               if (not (Trace.Cut.equal upto t.proposed_cut)) || ckpt <> None
               then begin
                 let cur =
                   match !cursor with
                   | Some c
                     when Trace.Cut.equal (Trace.Delta.cursor_base c)
                            t.proposed_cut -> c
                   | Some _ | None ->
                     let c = Trace.Delta.cursor tr ~base:t.proposed_cut in
                     cursor := Some c;
                     c
                 in
                 let delta = Trace.Delta.extract_next ~upto tr cur in
                 let prop = { Proposal.delta; ckpt } in
                 let encoded = Proposal.encode prop in
                 if agree.Agreement.propose encoded then begin
                   t.proposed_cut <- upto;
                   t.ckpt_pending_proposal <- None;
                   Obs.Metric.incr t.c_proposals;
                   Obs.Metric.add t.c_proposal_bytes (String.length encoded)
                 end
               end
             end
           end
         done))

(* --- Checkpoint policy timer (primary) --- *)

let spawn_ckpt_policy t exec =
  match t.cfg.Config.checkpoint_interval with
  | None -> ()
  | Some interval ->
    ignore
      (Engine.spawn t.eng ~node:t.node_id ~name:"rex.ckpt-policy" (fun () ->
           while current t exec && t.role_ = Primary do
             Engine.sleep interval;
             if current t exec && t.role_ = Primary then request_checkpoint t
           done))

(* --- Building / rebuilding the execution context --- *)

let apply_committed t exec instance value =
  match Proposal.decode value with
  | exception Codec.Decode_error msg ->
    Obs.Metric.incr t.c_decode_errors;
    Logs.warn (fun m ->
        m "rex[%d]: dropping undecodable committed value at instance %d: %s"
          t.node_id instance msg)
  | prop -> (
    t.committed_instance <- instance;
    match Trace.Delta.apply_overlapping (Runtime.trace exec.rt) prop.delta with
    | Ok () ->
      t.committed_cut_ <- prop.Proposal.delta.upto;
      (match prop.ckpt with
      | Some (seq, cut) ->
        let have =
          match Checkpoint.Disk.latest t.disk with
          | Some c -> c.seq
          | None -> 0
        in
        if seq > have then begin
          t.ckpt_barrier <- Some { pc_seq = seq; pc_cut = cut; pc_instance = instance };
          t.ckpt_seq <- max t.ckpt_seq seq
        end
      | None -> ());
      Runtime.feed_progress exec.rt
    | Error msg ->
      t.diverged <-
        Some (Fmt.str "rex[%d]: committed delta misaligned: %s" t.node_id msg))

let build_exec t =
  t.rebuilding <- true;
  t.gen <- t.gen + 1;
  (match t.exec with
  | Some old -> Runtime.interrupt_replay old.rt
  | None -> ());
  wake_queue t;
  wake_flow t;
  wake_ckpt_resume t;
  wake_ckpt_kick t;
  wake_ckpt_done t;
  t.ckpt_flag <- false;
  t.ckpt_paused <- 0;
  t.ckpt_pending_proposal <- None;
  t.ckpt_barrier <- None;
  t.ckpt_arrived <- 0;
  let ck = Checkpoint.Disk.latest t.disk in
  let base = Option.map (fun c -> c.Checkpoint.cut) ck in
  let rt =
    Runtime.create ~reduce_edges:t.cfg.Config.reduce_edges
      ~partial_order:t.cfg.Config.partial_order
      ~check_versions:t.cfg.Config.check_versions
      ~record_cost:t.cfg.Config.record_cost
      ~replay_cost:t.cfg.Config.replay_cost ?base (Par.Backend.of_sim t.eng) ~node:t.node_id
      ~slots:t.slots
  in
  Runtime.set_mode rt Runtime.Replay;
  let api = Api.make rt in
  (* The session table is part of the replicated state this context is
     about to rebuild: start empty and let the checkpoint (below) and
     committed-trace replay repopulate it.  [dedup_in_execute] stays off
     for Rex — replay must re-execute exactly what was recorded; the
     frontend's intake check suffices because promotion replays the
     committed trace to its end before accepting requests. *)
  Session.Table.clear t.session;
  let app =
    Session.wrap ~table:t.session ~dedup_in_execute:false (t.factory api)
  in
  let timers = Array.of_list (Api.seal api) in
  if Array.length timers > timer_slot_budget then
    invalid_arg "Rex.Server: too many timers (budget is 8)";
  (match ck with
  | Some c ->
    app.App.read_checkpoint (Codec.source c.app_bytes);
    Runtime.restore_versions rt c.versions;
    t.ckpt_seq <- max t.ckpt_seq c.seq;
    t.committed_cut_ <- c.cut;
    (* The checkpoint subsumes the log prefix up to its instance; a
       rejoiner behind its peers' GC horizon must not wait for entries
       that no longer exist anywhere. *)
    (match t.agree with
    | Some a -> a.Agreement.fast_forward (c.instance - 1)
    | None -> ())
  | None -> t.committed_cut_ <- Trace.Cut.zero ~slots:t.slots);
  let exec = { gen = t.gen; rt; app; timers } in
  t.exec <- Some exec;
  (* Re-apply the committed history this replica already knows. *)
  (match t.agree with
  | None -> ()
  | Some agree ->
    let from_i = match ck with Some c -> c.instance | None -> 1 in
    for i = max 1 from_i to agree.Agreement.committed_upto () do
      match agree.Agreement.committed i with
      | Some v -> apply_committed t exec i v
      | None -> ()
    done);
  spawn_slots t exec;
  spawn_flow_reporter t exec;
  t.rebuilding <- false;
  exec

(* --- Role transitions --- *)

let demote t ~reason =
  if t.role_ = Primary then begin
    Logs.info (fun m -> m "rex[%d]: demoting (%s)" t.node_id reason);
    t.role_ <- Secondary;
    Obs.Metric.incr t.c_rollbacks;
    t.gen <- t.gen + 1;
    (* invalidate old slots immediately *)
    drop_client_state t;
    t.rebuilding <- true;
    ignore
      (Engine.spawn t.eng ~node:t.node_id ~name:"rex.demote" (fun () ->
           ignore (build_exec t)))
  end

let promote t =
  let g = t.gen in
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"rex.promote" (fun () ->
         match t.exec with
         | Some exec when exec.gen = g && t.gen = g ->
           (* Replay the committed trace to its end before leading
              (§3.2: promotion to primary). *)
           let rec wait_caught_up () =
             if t.gen = g && t.diverged = None then
               if
                 Trace.Cut.equal
                   (Runtime.executed_cut exec.rt)
                   (Runtime.recorded_cut exec.rt)
               then ()
               else begin
                 Engine.sleep 2e-4;
                 wait_caught_up ()
               end
           in
           wait_caught_up ();
           if t.gen = g && t.diverged = None then begin
             Runtime.set_mode exec.rt Runtime.Record;
             Runtime.feed_progress exec.rt;
             t.role_ <- Primary;
             t.proposed_cut <- Runtime.recorded_cut exec.rt;
             Frontend.Flow.reset t.flow;
             spawn_proposer t exec;
             spawn_ckpt_policy t exec;
             Logs.info (fun m -> m "rex[%d]: promoted to primary" t.node_id)
           end
         | Some _ | None -> ()))

let on_committed t instance value =
  if not t.rebuilding then
    match t.exec with
    | None -> ()
    | Some exec ->
      if t.role_ = Primary then begin
        match Proposal.decode value with
        | exception Codec.Decode_error msg ->
          Obs.Metric.incr t.c_decode_errors;
          Logs.warn (fun m ->
              m "rex[%d]: dropping undecodable committed value at instance \
                 %d: %s"
                t.node_id instance msg)
        | prop ->
          t.committed_instance <- instance;
          if Trace.Cut.leq prop.delta.upto (Runtime.recorded_cut exec.rt) then begin
            (* our own proposal: the trace already holds it *)
            t.committed_cut_ <- prop.delta.upto;
            release_replies t
          end
          else
            (* a foreign commit while we believe we lead *)
            demote t ~reason:"foreign commit observed"
      end
      else apply_committed t exec instance value

(* A pushed checkpoint blob reaches the nodes that did not run the
   barrier themselves — the primary above all, which otherwise never
   truncates its log or compacts its trace and grows without bound.  Once
   the blob is on our disk the history at or below its cut is recoverable
   from it, so the log prefix and the trace prefix can both go. *)
let absorb_pushed_ckpt t (blob : Checkpoint.t) =
  let have =
    match Checkpoint.Disk.latest t.disk with Some c -> c.seq | None -> 0
  in
  Checkpoint.Disk.save t.disk blob;
  if blob.seq > have && not t.rebuilding then
    match t.exec with
    | None -> ()
    | Some exec ->
      let upto_now =
        match t.agree with
        | Some a -> a.Agreement.committed_upto ()
        | None -> 0
      in
      (* Everyone truncates below the newest blob's base, so a rejoiner
         whose commit point sits below that horizon may be waiting for
         log entries that no longer exist on any replica.  A healthy but
         lagging secondary still makes progress between blobs; one that
         absorbed the previous blob without moving is provably wedged —
         rebuild it from the blob we just saved (the §3.3 fast-forward
         path) rather than truncating under a Learn that can never be
         answered. *)
      let stuck =
        t.role_ = Secondary
        && upto_now < blob.instance - 1
        && upto_now <= t.ckpt_push_upto
      in
      t.ckpt_push_upto <- upto_now;
      if stuck then begin
        Logs.info (fun m ->
            m "rex[%d]: behind GC horizon (committed %d < blob base %d), \
               rebuilding from pushed checkpoint"
              t.node_id upto_now blob.instance);
        t.gen <- t.gen + 1;
        drop_client_state t;
        t.rebuilding <- true;
        ignore
          (Engine.spawn t.eng ~node:t.node_id ~name:"rex.ckpt-rejoin"
             (fun () -> ignore (build_exec t)))
      end
      else begin
        (match t.agree with
        | Some a -> a.Agreement.truncate_below blob.instance
        | None -> ());
        (* The primary must keep its base at or below the last proposed
           cut: the next delta extraction starts there. *)
        let upto =
          if t.role_ = Primary then Trace.Cut.min blob.cut t.proposed_cut
          else blob.cut
        in
        Runtime.compact_trace exec.rt ~upto
      end

(* --- Construction --- *)

let create ?make_agreement net rpc cfg ~node ~paxos_store ~disk factory =
  let eng = Net.engine net in
  let slots = cfg.Config.workers + timer_slot_budget in
  let obs = Engine.obs eng in
  let labels = [ ("node", string_of_int node) ] in
  let c name = Obs.counter obs ~subsystem:"rex" ~labels name in
  let t =
    {
      eng;
      net;
      rpc;
      cfg;
      node_id = node;
      factory;
      pstore = paxos_store;
      disk;
      slots;
      agree = None;
      make_agreement;
      exec = None;
      role_ = Secondary;
      gen = 0;
      rebuilding = false;
      queue = Queue.create ();
      queue_waiters = [];
      replies = Frontend.Replies.create ();
      pending_reads = [];
      front = None;
      session =
        Session.Table.create obs ~stack:"rex" ~node ();
      proposed_cut = Trace.Cut.zero ~slots;
      committed_cut_ = Trace.Cut.zero ~slots;
      committed_instance = 0;
      ckpt_flag = false;
      ckpt_paused = 0;
      ckpt_seq = 0;
      ckpt_pending_proposal = None;
      ckpt_resume_waiters = [];
      ckpt_kick = [];
      ckpt_barrier = None;
      ckpt_arrived = 0;
      ckpt_done_waiters = [];
      ckpt_push_upto = -1;
      flow =
        Frontend.Flow.create eng ~window:cfg.Config.flow_window
          ~staleness:cfg.Config.flow_staleness;
      obs;
      c_requests = c "requests_executed";
      c_replies = c "replies_sent";
      c_queries = c "queries_served";
      c_proposals = c "proposals_sent";
      c_proposal_bytes = c "proposal_bytes";
      c_request_bytes = c "request_payload_bytes";
      c_ckpts = c "checkpoints_written";
      c_ckpt_bytes = c "checkpoint_bytes";
      c_rollbacks = c "rollbacks";
      c_flow_stalls = c "flow_stalls";
      c_decode_errors = c "decode_errors";
      h_req_lat_primary =
        Obs.histogram obs ~subsystem:"rex"
          ~labels:(("role", "primary") :: labels)
          "request_latency";
      h_req_lat_secondary =
        Obs.histogram obs ~subsystem:"rex"
          ~labels:(("role", "secondary") :: labels)
          "request_latency";
      h_flow_stall =
        Obs.histogram obs ~subsystem:"rex" ~labels "flow_stall_time";
      diverged = None;
    }
  in
  (* Client-facing services, shared with the SMR and Eve stacks.  The
     admission probe is the commit-gated reply backlog — the primary's
     natural measure of accepted-but-not-yet-durable work. *)
  t.front <-
    Some
      (Frontend.register rpc ~node ~table:t.session
    ?admission:
      (Config.admission cfg ~queue_depth:(fun () ->
           Frontend.Replies.length t.replies))
    ~reads:
      {
        Frontend.r_peers = (fun () -> peers t);
        r_lease_valid =
          (fun () ->
            t.role_ = Primary && (not t.rebuilding) && t.diverged = None
            &&
            match t.agree with
            | Some a -> a.Agreement.lease_valid ()
            | None -> false);
        r_read_index =
          (fun () ->
            match t.agree with
            | Some a -> a.Agreement.read_index ()
            | None -> 0);
        r_applied_upto =
          (fun () ->
            match t.exec with
            | None -> -1
            | Some _ ->
              if t.rebuilding || t.diverged <> None then -1
              else if t.role_ = Primary then t.committed_instance
              else if
                (* only at fully-caught-up points: a secondary's
                   [committed_instance] advances when the delta is
                   *appended*, not when its events finish replaying *)
                Trace.Cut.leq t.committed_cut_ (executed_cut t)
              then t.committed_instance
              else -1);
        r_read_local =
          (fun request cb ->
            match t.exec with
            | None -> cb None
            | Some exec ->
              if t.rebuilding || t.diverged <> None then cb None
              else begin
                Obs.Metric.incr t.c_queries;
                let resp = exec.app.App.query ~request in
                if t.role_ = Primary then begin
                  (* Speculative state: every write this read observed is
                     in the recorded trace.  Release the answer only once
                     that prefix commits, so a demotion that rolls the
                     state back also drops the read (fencing). *)
                  let cut = executed_cut t in
                  if Trace.Cut.leq cut t.committed_cut_ then cb (Some resp)
                  else t.pending_reads <- (cut, resp, cb) :: t.pending_reads
                end
                else cb (Some resp)
              end);
        r_lease_unsafe = cfg.Config.lease_unsafe;
      }
    {
      Frontend.is_leader = (fun () -> t.role_ = Primary);
      leader_hint =
        (fun () ->
          match t.agree with
          | Some a -> a.Agreement.leader_hint ()
          | None -> None);
      enqueue =
        (fun request cb ->
          Queue.push (request, Engine.clock eng, cb) t.queue;
          wake_queue t);
      query =
        (fun request ->
          match t.exec with
          | None -> None
          | Some exec ->
            Obs.Metric.incr t.c_queries;
            Some (exec.app.App.query ~request));
    });
  Rpc.serve rpc ~node ~port:fetch_ckpt_port (fun ~src:_ _ ->
      match Checkpoint.Disk.latest t.disk with
      | Some c -> Checkpoint.encode c
      | None -> "");
  Net.register net ~node ~port:push_ckpt_port (fun ~src:_ payload ->
      match Checkpoint.decode payload with
      | blob -> absorb_pushed_ckpt t blob
      | exception Codec.Decode_error _ -> ());
  Net.register net ~node ~port:flow_port (fun ~src payload ->
      match Codec.read_uvarint (Codec.source payload) with
      | count -> Frontend.Flow.note t.flow ~src ~count
      | exception Codec.Decode_error _ -> ());
  t

let submit t request cb =
  if t.role_ <> Primary then cb None
  else begin
    Queue.push (request, Engine.clock t.eng, cb) t.queue;
    wake_queue t
  end

let query t request =
  let exec = the_exec t in
  Obs.Metric.incr t.c_queries;
  exec.app.App.query ~request

(* Fetch a fresher checkpoint from peers before first build (a rejoining
   replica whose peers have GC'd their logs needs it). *)
let fetch_better_checkpoint t =
  let mine =
    match Checkpoint.Disk.latest t.disk with Some c -> c.seq | None -> 0
  in
  List.iter
    (fun peer ->
      if peer <> t.node_id then
        match
          Rpc.call t.rpc ~src:t.node_id ~dst:peer ~port:fetch_ckpt_port
            ~timeout:0.05 ""
        with
        | Some blob when blob <> "" -> (
          match Checkpoint.decode blob with
          | c when c.seq > mine -> Checkpoint.Disk.save t.disk c
          | _ -> ()
          | exception Codec.Decode_error _ -> ())
        | Some _ | None -> ())
    (peers t)

let start t =
  let cbs =
    {
      Agreement.on_committed = (fun i v -> on_committed t i v);
      on_become_leader = (fun () -> promote t);
      on_new_leader =
        (fun r ->
          if t.role_ = Primary then
            demote t ~reason:(Printf.sprintf "replica %d took leadership" r));
    }
  in
  let agree =
    match t.make_agreement with
    | Some make -> make t cbs
    | None ->
      let pax_cfg =
        {
          Paxos.Replica.me = t.node_id;
          peers = t.cfg.Config.replicas;
          heartbeat_period = t.cfg.Config.heartbeat_period;
          election_timeout = t.cfg.Config.election_timeout;
          max_inflight = t.cfg.Config.pipeline_depth;
          sync_latency = t.cfg.Config.paxos_sync_latency;
          lease_duration = t.cfg.Config.lease_duration;
          lease_drift_bound = t.cfg.Config.lease_drift_bound;
        }
      in
      let pax_cbs =
        {
          Paxos.Replica.on_committed = cbs.Agreement.on_committed;
          on_become_leader = cbs.Agreement.on_become_leader;
          on_new_leader = cbs.Agreement.on_new_leader;
        }
      in
      Agreement.of_paxos (Paxos.Replica.create t.net pax_cfg t.pstore pax_cbs)
  in
  t.agree <- Some agree;
  ignore
    (Engine.spawn t.eng ~node:t.node_id ~name:"rex.start" (fun () ->
         fetch_better_checkpoint t;
         ignore (build_exec t);
         agree.Agreement.start ()))
