open Sim

let vm_port = "chain.vm"
let view_port = "chain.view"
let data_port = "chain.data"

(* --- Wire --- *)

type msg =
  | Hello of int  (* member announces itself to the VM *)
  | Heartbeat of int
  | View of { view_id : int; chain : int list }
  | Update of { view_id : int; seq : int; value : string }
  | Ack of { view_id : int; upto : int }
  | Sync_req of { from_seq : int }
  | Sync_reply of { entries : (int * string) list }

let write b = function
  | Hello n ->
    Codec.write_byte b 0;
    Codec.write_uvarint b n
  | Heartbeat n ->
    Codec.write_byte b 1;
    Codec.write_uvarint b n
  | View { view_id; chain } ->
    Codec.write_byte b 2;
    Codec.write_uvarint b view_id;
    Codec.write_list b Codec.write_uvarint chain
  | Update { view_id; seq; value } ->
    Codec.write_byte b 3;
    Codec.write_uvarint b view_id;
    Codec.write_uvarint b seq;
    Codec.write_string b value
  | Ack { view_id; upto } ->
    Codec.write_byte b 4;
    Codec.write_uvarint b view_id;
    Codec.write_uvarint b upto
  | Sync_req { from_seq } ->
    Codec.write_byte b 5;
    Codec.write_uvarint b from_seq
  | Sync_reply { entries } ->
    Codec.write_byte b 6;
    Codec.write_list b
      (fun b (i, v) ->
        Codec.write_uvarint b i;
        Codec.write_string b v)
      entries

let read s =
  match Codec.read_byte s with
  | 0 -> Hello (Codec.read_uvarint s)
  | 1 -> Heartbeat (Codec.read_uvarint s)
  | 2 ->
    let view_id = Codec.read_uvarint s in
    let chain = Codec.read_list s Codec.read_uvarint in
    View { view_id; chain }
  | 3 ->
    let view_id = Codec.read_uvarint s in
    let seq = Codec.read_uvarint s in
    let value = Codec.read_string s in
    Update { view_id; seq; value }
  | 4 ->
    let view_id = Codec.read_uvarint s in
    let upto = Codec.read_uvarint s in
    Ack { view_id; upto }
  | 5 -> Sync_req { from_seq = Codec.read_uvarint s }
  | 6 ->
    Sync_reply
      {
        entries =
          Codec.read_list s (fun s ->
              let i = Codec.read_uvarint s in
              let v = Codec.read_string s in
              (i, v));
      }
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad chain msg tag %d" n))

let encode m = Codec.encode (Fun.flip write) m

(* --- View manager --- *)

let view_manager ?(heartbeat_timeout = 50e-3) net ~node ~replicas () =
  let eng = Net.engine net in
  let last_seen : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let chain = ref [] in
  let view_id = ref 0 in
  let publish () =
    incr view_id;
    let v = encode (View { view_id = !view_id; chain = !chain }) in
    List.iter
      (fun r -> Net.send net ~src:node ~dst:r ~port:view_port v)
      replicas
  in
  let admit n =
    if not (List.mem n !chain) then begin
      chain := !chain @ [ n ];
      (* joiners become the new tail *)
      publish ()
    end
  in
  Net.register net ~node ~port:vm_port (fun ~src:_ payload ->
      match Codec.decode read payload with
      | Hello n ->
        Hashtbl.replace last_seen n (Engine.clock eng);
        admit n
      | Heartbeat n -> Hashtbl.replace last_seen n (Engine.clock eng)
      | View _ | Update _ | Ack _ | Sync_req _ | Sync_reply _ -> ()
      | exception Codec.Decode_error _ -> ());
  ignore
    (Engine.spawn eng ~node ~name:"chain.vm" (fun () ->
         while true do
           Engine.sleep (heartbeat_timeout /. 2.);
           let now = Engine.clock eng in
           let dead =
             List.filter
               (fun r ->
                 match Hashtbl.find_opt last_seen r with
                 | Some t -> now -. t > heartbeat_timeout
                 | None -> false)
               !chain
           in
           if dead <> [] then begin
             chain := List.filter (fun r -> not (List.mem r dead)) !chain;
             List.iter (Hashtbl.remove last_seen) dead;
             publish ()
           end
         done))

(* --- Member --- *)

type member = {
  net : Net.t;
  node : int;
  vm_node : int;
  st : Paxos.Store.t;
  cbs : Agreement.callbacks;
  window : int;
  mutable view_id : int;
  mutable chain : int list;
  mutable delivered : int;
  mutable was_head : bool;
  mutable leadership_announced : bool;
  mutable announced_head : int option;
}

let position m = List.find_index (( = ) m.node) m.chain
let is_member m = position m <> None
let is_head m = match m.chain with h :: _ -> h = m.node | [] -> false
let is_tail m =
  match List.rev m.chain with t :: _ -> t = m.node | [] -> false

let successor m =
  match position m with
  | Some i when i + 1 < List.length m.chain -> Some (List.nth m.chain (i + 1))
  | Some _ | None -> None

let predecessor m =
  match position m with
  | Some i when i > 0 -> Some (List.nth m.chain (i - 1))
  | Some _ | None -> None

let send_to m dst msg =
  Net.send m.net ~src:m.node ~dst ~port:data_port (encode msg)

(* Highest sequence present (committed or accepted) contiguously. *)
let contiguous m =
  let rec go i =
    if Paxos.Store.committed m.st (i + 1) <> None
       || Paxos.Store.accepted m.st (i + 1) <> None
    then go (i + 1)
    else i
  in
  go (Paxos.Store.committed_upto m.st)

let deliver m =
  while m.delivered < Paxos.Store.committed_upto m.st do
    let i = m.delivered + 1 in
    m.delivered <- i;
    match Paxos.Store.committed m.st i with
    | Some v -> m.cbs.Agreement.on_committed i v
    | None -> () (* subsumed by a checkpoint fast-forward *)
  done

let commit_upto m upto =
  let rec go i =
    if i <= upto then begin
      (match Paxos.Store.committed m.st i with
      | Some _ -> ()
      | None -> (
        match Paxos.Store.accepted m.st i with
        | Some (_, v) -> Paxos.Store.commit m.st i v
        | None -> ()));
      go (i + 1)
    end
  in
  go (Paxos.Store.committed_upto m.st + 1);
  deliver m

(* A new head leads only once everything it inherited has committed (the
   analogue of Paxos recovery re-proposals). *)
let maybe_announce_leadership m =
  if is_head m then begin
    if
      (not m.leadership_announced)
      && contiguous m = Paxos.Store.committed_upto m.st
    then begin
      m.leadership_announced <- true;
      m.cbs.Agreement.on_become_leader ()
    end
  end

let forward_pending m =
  match successor m with
  | None ->
    (* Tail (or singleton): everything contiguous is committed. *)
    let c = contiguous m in
    commit_upto m c;
    (match predecessor m with
    | Some p -> send_to m p (Ack { view_id = m.view_id; upto = c })
    | None -> ());
    maybe_announce_leadership m
  | Some next ->
    List.iter
      (fun (i, _, v) ->
        send_to m next (Update { view_id = m.view_id; seq = i; value = v }))
      (Paxos.Store.accepted_above m.st (Paxos.Store.committed_upto m.st))

let request_sync m =
  match predecessor m with
  | Some p ->
    send_to m p (Sync_req { from_seq = Paxos.Store.committed_upto m.st + 1 })
  | None -> ()

let on_view m view_id chain =
  if view_id > m.view_id then begin
    m.view_id <- view_id;
    m.chain <- chain;
    let head_now = is_head m in
    if m.was_head && not head_now then begin
      m.leadership_announced <- false;
      match chain with
      | h :: _ when m.announced_head <> Some h ->
        m.announced_head <- Some h;
        m.cbs.Agreement.on_new_leader h
      | _ -> ()
    end;
    (match chain with
    | h :: _ when h <> m.node && m.announced_head <> Some h ->
      m.announced_head <- Some h;
      m.cbs.Agreement.on_new_leader h
    | _ -> ());
    m.was_head <- head_now;
    if is_member m then begin
      (* Uniform repair: push the unacknowledged suffix down the (new)
         chain; tails re-acknowledge; joiners pull what they miss. *)
      forward_pending m;
      if Paxos.Store.committed_upto m.st < contiguous m || not head_now then
        request_sync m;
      maybe_announce_leadership m
    end
  end

let on_update m view_id seq value =
  if view_id >= m.view_id && is_member m && not (is_head m) then begin
    if
      Paxos.Store.committed m.st seq = None
      && Paxos.Store.accepted m.st seq = None
    then
      Paxos.Store.set_accepted m.st seq
        { Paxos.Ballot.round = view_id; replica = 0 }
        value;
    (* A gap means we joined mid-stream: pull the prefix. *)
    if Paxos.Store.committed m.st seq = None && contiguous m < seq then
      request_sync m;
    match successor m with
    | Some next ->
      send_to m next (Update { view_id = m.view_id; seq; value })
    | None ->
      let c = contiguous m in
      commit_upto m c;
      (match predecessor m with
      | Some p -> send_to m p (Ack { view_id = m.view_id; upto = c })
      | None -> ())
  end

let on_ack m view_id upto =
  if view_id >= m.view_id && is_member m then begin
    commit_upto m upto;
    (match predecessor m with
    | Some p -> send_to m p (Ack { view_id = m.view_id; upto })
    | None -> ());
    maybe_announce_leadership m
  end

let on_sync_req m ~src from_seq =
  let upto = contiguous m in
  let rec collect i acc =
    if i < from_seq then acc
    else
      let v =
        match Paxos.Store.committed m.st i with
        | Some v -> Some v
        | None -> Option.map snd (Paxos.Store.accepted m.st i)
      in
      match v with Some v -> collect (i - 1) ((i, v) :: acc) | None -> acc
  in
  let entries = collect upto [] in
  if entries <> [] then send_to m src (Sync_reply { entries })

let on_sync_reply m entries =
  List.iter
    (fun (i, v) ->
      if Paxos.Store.committed m.st i = None && Paxos.Store.accepted m.st i = None
      then
        Paxos.Store.set_accepted m.st i
          { Paxos.Ballot.round = m.view_id; replica = 0 }
          v)
    entries;
  (* What we now hold contiguously is committed below us by definition of
     sync (it came from upstream); if we are tail it commits here. *)
  if is_tail m then begin
    let c = contiguous m in
    commit_upto m c;
    match predecessor m with
    | Some p -> send_to m p (Ack { view_id = m.view_id; upto = c })
    | None -> ()
  end;
  maybe_announce_leadership m

let make ?(window = 8) ?(heartbeat_period = 10e-3) net ~node ~vm_node ~store
    cbs =
  let m =
    {
      net;
      node;
      vm_node;
      st = store;
      cbs;
      window;
      view_id = 0;
      chain = [];
      delivered = Paxos.Store.committed_upto store;
      was_head = false;
      leadership_announced = false;
      announced_head = None;
    }
  in
  Net.register net ~node ~port:view_port (fun ~src:_ payload ->
      match Codec.decode read payload with
      | View { view_id; chain } -> on_view m view_id chain
      | _ -> ()
      | exception Codec.Decode_error _ -> ());
  Net.register net ~node ~port:data_port (fun ~src payload ->
      match Codec.decode read payload with
      | Update { view_id; seq; value } -> on_update m view_id seq value
      | Ack { view_id; upto } -> on_ack m view_id upto
      | Sync_req { from_seq } -> on_sync_req m ~src from_seq
      | Sync_reply { entries } -> on_sync_reply m entries
      | _ -> ()
      | exception Codec.Decode_error _ -> ());
  let start () =
    Net.send net ~src:node ~dst:vm_node ~port:vm_port (encode (Hello node));
    ignore
      (Engine.spawn (Net.engine net) ~node ~name:"chain.hb" (fun () ->
           while true do
             Engine.sleep heartbeat_period;
             Net.send net ~src:node ~dst:vm_node ~port:vm_port
               (encode (Heartbeat node))
           done))
  in
  let pending () = contiguous m - Paxos.Store.committed_upto m.st in
  let can_propose () =
    is_head m && m.leadership_announced && pending () < m.window
  in
  let propose v =
    if not (can_propose ()) then false
    else begin
      let seq = contiguous m + 1 in
      Paxos.Store.set_accepted m.st seq
        { Paxos.Ballot.round = m.view_id; replica = 0 }
        v;
      (match successor m with
      | Some next ->
        send_to m next (Update { view_id = m.view_id; seq; value = v })
      | None ->
        (* singleton chain *)
        commit_upto m seq);
      true
    end
  in
  {
    Agreement.start;
    propose;
    can_propose;
    is_leader = (fun () -> is_head m && m.leadership_announced);
    leader_hint = (fun () -> match m.chain with h :: _ -> Some h | [] -> None);
    committed_upto = (fun () -> Paxos.Store.committed_upto m.st);
    committed = (fun i -> Paxos.Store.committed m.st i);
    truncate_below = (fun i -> Paxos.Store.truncate_below m.st i);
    fast_forward =
      (fun i ->
        Paxos.Store.fast_forward m.st i;
        if m.delivered < i then m.delivered <- i);
    (* Chain replication has no leases; head reads fall back to the
       quorum/ordered paths. *)
    lease_valid = (fun () -> false);
    read_index = (fun () -> Paxos.Store.committed_upto m.st);
    (* Membership is the VM's view; log-driven reconfiguration is a
       Paxos-only feature (the VM already handles joins/failures). *)
    peers = (fun () -> if m.chain = [] then [ m.node ] else m.chain);
    reconfig = (fun _ -> false);
  }
