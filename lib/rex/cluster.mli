(** Harness for a whole Rex deployment inside one simulation: engine,
    network, RPC, the replica group, and the per-node durable state
    (Paxos store + checkpoint disk) that survives crash/restart.  Used by
    tests, benchmarks and examples.

    Two ways to build one:
    - {!create} owns the simulation: it makes a fresh engine whose nodes
      [0 .. n-1] host the replicas;
    - {!create_in} wires a group into an existing engine/network/RPC
      fabric at arbitrary node ids, so several independent groups (a
      sharded fleet, see [lib/shard]) share one virtual clock. *)

type t

val create :
  ?seed:int ->
  ?cores_per_node:int ->
  ?extra_nodes:int ->
  ?net_latency:float ->
  ?agreement:[ `Paxos | `Chain ] ->
  Config.t ->
  App.factory ->
  t
(** Nodes [0 .. n-1] host the replicas listed in [Config.replicas] (which
    must be [0 .. n-1]); [extra_nodes] more nodes (default 1) host clients
    and, for [`Chain], the view manager.  [agreement] picks the agree
    stage: multi-instance Paxos (default) or chain replication
    (paper §7). *)

val create_in :
  ?agreement:[ `Paxos | `Chain ] ->
  ?vm_node:int ->
  client_node:int ->
  Sim.Net.t ->
  Sim.Rpc.t ->
  Config.t ->
  App.factory ->
  t
(** Build the group inside the given fabric.  [Config.replicas] holds
    absolute node ids (any subset of the engine's nodes); [client_node]
    is where {!client} is homed, and hosts the [`Chain] view manager
    unless [vm_node] overrides it. *)

val engine : t -> Sim.Engine.t
val net : t -> Sim.Net.t
val rpc : t -> Sim.Rpc.t

val server : t -> int -> Server.t
(** By replica {e node id} (raises [Invalid_argument] for non-replicas). *)

val servers : t -> Server.t array
val replica_nodes : t -> int list

val client_node : t -> int
(** The node {!client} is homed on. *)

val start : t -> unit
val run : ?until:float -> t -> unit
(** Absolute virtual-time limit. *)

val run_for : t -> float -> unit
(** Relative. *)

val primary : t -> Server.t option

val await_primary : ?limit:float -> t -> Server.t
(** Run the simulation until some replica is primary (raises
    [Failure] after [limit] seconds, default 30). *)

val crash : t -> int -> unit
val restart : t -> int -> unit
(** Recreate the replica server from its surviving Paxos store and
    checkpoint disk, and start it. *)

(** {1 Live topology}

    Membership changes driven through the replicated log (Paxos
    agreement only — [Invalid_argument] under [`Chain]).  Each call
    pumps the simulation from driver context until the config entry
    commits, so these are used between [run] calls like {!crash} and
    {!restart}. *)

val members : t -> int list
(** Current committed membership (initially [Config.replicas]). *)

val set_on_new_server : t -> (Server.t -> unit) option -> unit
(** Hook fired after any server (re)creation — {!restart},
    {!add_replica} — so harnesses can re-wire frontend taps. *)

val add_replica : ?limit:float -> t -> int
(** Grow the engine by one node, commit [members @ [node]] through the
    log, then create and start the newcomer (bootstrapped by Learn
    catch-up and checkpoint fast-forward).  Returns the new node id. *)

val remove_replica : ?limit:float -> t -> int -> unit
(** Commit the shrunk config, then crash the retired node.  The removed
    replica demotes itself when the entry applies, before the crash. *)

val replace_replica : ?limit:float -> t -> int -> int
(** [add_replica] then [remove_replica]: the two single-change entries
    that implement replacement with quorum intersection at each step.
    Returns the replacement's node id. *)

val rolling_restart : ?pause:float -> t -> unit
(** Crash/restart each current member in turn, waiting [pause] (default
    1 s) around each restart and re-electing a primary in between — the
    rolling-upgrade schedule. *)

val client : t -> Client.t
(** A client homed on {!client_node}. *)

val check_no_divergence : t -> unit
(** Raises [Failure] if any live replica detected divergence. *)

(** {1 Builder}

    The construction plumbing shared by the benches, the demo binary and
    the sharded fleet, so they stop copy-pasting it. *)

val config :
  ?n_replicas:int ->
  ?workers:int ->
  ?propose_interval:float ->
  ?checkpoint_interval:float option ->
  ?flow_window:int ->
  ?flow_report_interval:float ->
  ?flow_staleness:float ->
  ?heartbeat_period:float ->
  ?election_timeout:float ->
  ?reduce_edges:bool ->
  ?partial_order:bool ->
  ?check_versions:bool ->
  ?record_cost:float ->
  ?replay_cost:float ->
  ?ckpt_byte_cost:float ->
  ?pipeline_depth:int ->
  ?paxos_sync_latency:float ->
  ?lease_duration:float ->
  ?lease_drift_bound:float ->
  ?lease_unsafe:bool ->
  unit ->
  Config.t
(** A {!Config.t} over replicas [0 .. n_replicas-1] (default 3), with
    every other knob forwarded to {!Config.make}. *)

val launch :
  ?seed:int ->
  ?cores_per_node:int ->
  ?extra_nodes:int ->
  ?net_latency:float ->
  ?agreement:[ `Paxos | `Chain ] ->
  ?limit:float ->
  ?before_start:(t -> unit) ->
  Config.t ->
  App.factory ->
  t
(** [create] + [start] + [await_primary] in one step: returns a running
    cluster with a primary elected.  [before_start] runs between
    construction and start (e.g. to enable tracing on the engine). *)
