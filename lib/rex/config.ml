type t = {
  replicas : int list;
  workers : int;
  propose_interval : float;
  checkpoint_interval : float option;
  flow_window : int;
  flow_report_interval : float;
  flow_staleness : float;
  heartbeat_period : float;
  election_timeout : float;
  reduce_edges : bool;
  partial_order : bool;
  check_versions : bool;
  record_cost : float;
  replay_cost : float;
  ckpt_byte_cost : float;
  pipeline_depth : int;
  paxos_sync_latency : float;
  lease_duration : float;
  lease_drift_bound : float;
  lease_unsafe : bool;
}

let make ?(workers = 8) ?(propose_interval = 1e-3) ?(checkpoint_interval = None)
    ?(flow_window = 20_000) ?(flow_report_interval = 2e-3)
    ?(flow_staleness = 0.2) ?(heartbeat_period = 5e-3)
    ?(election_timeout = 50e-3) ?(reduce_edges = true) ?(partial_order = true)
    ?(check_versions = true) ?(record_cost = 5e-8) ?(replay_cost = 1.5e-7)
    ?(ckpt_byte_cost = 4e-8) ?(pipeline_depth = 1) ?(paxos_sync_latency = 0.)
    ?lease_duration ?(lease_drift_bound = 0.2) ?(lease_unsafe = false)
    ~replicas () =
  if replicas = [] then invalid_arg "Config.make: empty replica set";
  if workers <= 0 then invalid_arg "Config.make: workers";
  {
    replicas;
    workers;
    propose_interval;
    checkpoint_interval;
    flow_window;
    flow_report_interval;
    flow_staleness;
    heartbeat_period;
    election_timeout;
    reduce_edges;
    partial_order;
    check_versions;
    record_cost;
    replay_cost;
    ckpt_byte_cost;
    pipeline_depth;
    paxos_sync_latency;
    (* a lease must outlive a couple of lost heartbeats, yet expire well
       inside the election timeout so failover latency is unchanged *)
    lease_duration =
      (match lease_duration with
      | Some d -> d
      | None -> 4. *. heartbeat_period);
    lease_drift_bound;
    lease_unsafe;
  }

let total_slots t ~n_timers = t.workers + n_timers
