type t = {
  replicas : int list;
  workers : int;
  propose_interval : float;
  checkpoint_interval : float option;
  flow_window : int;
  flow_report_interval : float;
  flow_staleness : float;
  heartbeat_period : float;
  election_timeout : float;
  reduce_edges : bool;
  partial_order : bool;
  check_versions : bool;
  record_cost : float;
  replay_cost : float;
  ckpt_byte_cost : float;
  pipeline_depth : int;
  paxos_sync_latency : float;
  lease_duration : float;
  lease_drift_bound : float;
  lease_unsafe : bool;
  admit_global : int;
  admit_per_client : int;
  admit_queue_soft : int;
  admit_queue_hard : int;
}

let admission t ~queue_depth =
  if
    t.admit_global = 0 && t.admit_per_client = 0 && t.admit_queue_soft = 0
    && t.admit_queue_hard = 0
  then None
  else
    Some
      (Frontend.admission ~max_global:t.admit_global
         ~max_per_client:t.admit_per_client ~queue_soft:t.admit_queue_soft
         ~queue_hard:t.admit_queue_hard ~queue_depth ())

let make ?(workers = 8) ?(propose_interval = 1e-3) ?(checkpoint_interval = None)
    ?(flow_window = 20_000) ?(flow_report_interval = 2e-3)
    ?(flow_staleness = 0.2) ?(heartbeat_period = 5e-3)
    ?(election_timeout = 50e-3) ?(reduce_edges = true) ?(partial_order = true)
    ?(check_versions = true) ?(record_cost = 5e-8) ?(replay_cost = 1.5e-7)
    ?(ckpt_byte_cost = 4e-8) ?(pipeline_depth = 1) ?(paxos_sync_latency = 0.)
    ?lease_duration ?(lease_drift_bound = 0.2) ?(lease_unsafe = false)
    ?(admit_global = 0) ?(admit_per_client = 0) ?(admit_queue_soft = 0)
    ?(admit_queue_hard = 0) ~replicas () =
  if replicas = [] then invalid_arg "Config.make: empty replica set";
  if workers <= 0 then invalid_arg "Config.make: workers";
  if admit_global < 0 || admit_per_client < 0 || admit_queue_soft < 0
     || admit_queue_hard < 0
  then invalid_arg "Config.make: negative admission bound";
  {
    replicas;
    workers;
    propose_interval;
    checkpoint_interval;
    flow_window;
    flow_report_interval;
    flow_staleness;
    heartbeat_period;
    election_timeout;
    reduce_edges;
    partial_order;
    check_versions;
    record_cost;
    replay_cost;
    ckpt_byte_cost;
    pipeline_depth;
    paxos_sync_latency;
    (* a lease must outlive a couple of lost heartbeats, yet expire well
       inside the election timeout so failover latency is unchanged *)
    lease_duration =
      (match lease_duration with
      | Some d -> d
      | None -> 4. *. heartbeat_period);
    lease_drift_bound;
    lease_unsafe;
    admit_global;
    admit_per_client;
    admit_queue_soft;
    admit_queue_hard;
  }

let total_slots t ~n_timers = t.workers + n_timers
