(** The shared client-facing frontend: one implementation of RPC
    registration, envelope decoding, [Not_leader] redirection, duplicate
    short-circuiting and reply emission, used by all three replication
    stacks (Rex, SMR, Eve).

    Before this layer each stack hand-rolled its own intake handler; the
    three copies agreed on the wire format by luck and none of them knew
    about request identity.  The frontend owns the protocol surface —
    stacks supply a small {!backend} vtable and get identical client
    semantics, including exactly-once for enveloped requests (via a
    {!Session.Table.t} that the stack also threads through its execution
    path with {!Session.wrap}). *)

open Sim

type backend = {
  is_leader : unit -> bool;
  leader_hint : unit -> int option;
  enqueue : string -> (string option -> unit) -> unit;
      (** Hand a (still-enveloped) update request to the stack's run
          queue.  The callback must fire exactly once: [Some response]
          when the request's effect is durable (committed/verified), or
          [None] when a role change dropped it. *)
  query : string -> string option;
      (** Serve a read-only request, or [None] when this replica cannot
          (not started / not leader, per stack policy).  Only used when
          {!register} is given no {!reads} record (legacy unfenced
          path). *)
}

(** The linearizable read fast path (leases + quorum reads), supplied by
    stacks that support it.  The frontend picks the cheapest safe route
    per query: local under a live leader lease; otherwise a majority
    read-index round served locally once the executor catches up;
    otherwise the ordered path (enqueue on the leader, redirect
    elsewhere). *)
type reads = {
  r_peers : unit -> int list;
      (** all replica node ids, including this one — a closure because
          reconfiguration changes membership while reads are in flight *)
  r_lease_valid : unit -> bool;
      (** serve locally right now, fenced by a quorum lease *)
  r_read_index : unit -> int;
      (** this replica's highest possibly-chosen sequence number *)
  r_applied_upto : unit -> int;
      (** highest sequence number whose effects are fully queryable in
          local state, or [-1] while mid-replay (not at a clean point) *)
  r_read_local : string -> (string option -> unit) -> unit;
      (** evaluate the query against local state; the callback fires when
          the answer is safe to release ([None]: dropped by a role
          change).  The Rex primary gates it on commit of the observed
          speculative prefix; other stacks answer immediately. *)
  r_lease_unsafe : bool;
      (** {b testing only}: serve local reads whenever [is_leader], with
          no lease check — the fencing-disabled canary *)
}

(** Overload control at the intake (DESIGN.md §14).  Two mechanisms:

    - {e backpressure}: while the stack's run-queue depth is at or above
      [a_queue_soft], every intake handler sleeps [a_soft_delay] before
      touching dedup state — closed-loop clients slow down, and the delay
      happens {e before} the session-table lookup so it cannot race a
      concurrent retry into a duplicate enqueue;
    - {e admission rejection}: a {e new} logical request (session-table
      miss) is answered [Busy] when the run queue is at [a_queue_hard],
      the node-wide inflight set is at [a_max_global], or the client's own
      inflight count is at [a_max_per_client].  Retries of inflight or
      committed requests are never rejected — they join or hit the cache,
      preserving exactly-once for everything already admitted.

    Each bound is disabled at 0.  Obs counters under subsystem [frontend]:
    [admitted], [adm_reject_queue|global|client], [backpressure_delays],
    gauge [inflight]. *)
type admission

val admission :
  ?max_global:int ->
  ?max_per_client:int ->
  ?queue_soft:int ->
  ?queue_hard:int ->
  ?soft_delay:float ->
  queue_depth:(unit -> int) ->
  unit ->
  admission
(** [queue_depth] probes the stack's pending-work measure (proposal queue,
    batch queue, uncommitted replies — each stack supplies its own).
    Defaults: every bound 0 (off), [soft_delay] 2 ms.
    @raise Invalid_argument on negative bounds or [queue_soft] above a
    non-zero [queue_hard]. *)

type t
(** Handle on a registered frontend, for attaching history taps. *)

(** What a history tap observes at the protocol surface, keyed by the
    envelope's [(client, seq)] request identity.  [Tap_commit] fires when
    the backend reports the request durable — the authoritative "this
    request took effect" signal that lets a checker resolve the fate of a
    client-side timeout (see [lib/check]). *)
type tap_event =
  | Tap_enqueue of { client : int; seq : int; payload : string }
  | Tap_commit of { client : int; seq : int; payload : string; response : string }
  | Tap_dup of { client : int; seq : int; payload : string; response : string }
      (** A retry answered from the session table's reply cache. *)
  | Tap_drop of { client : int; seq : int }
      (** Answered [Dropped]: stale retry, or a role change discarded it. *)
  | Tap_reject of { client : int; seq : int; payload : string }
      (** Answered [Busy] by admission control before any enqueue — the
          request had no effect, which is exactly what the open-loop
          checker's rejection accounting asserts. *)

val set_tap : t -> (tap_event -> unit) option -> unit
(** At most one tap per frontend; [None] detaches.  The tap must not
    block (it runs inside the intake handler and commit callbacks). *)

val node : t -> int

val register :
  Rpc.t ->
  node:int ->
  table:Session.Table.t ->
  ?admission:admission ->
  ?reads:reads ->
  backend ->
  t
(** Register the {!Client.client_port} and {!Client.query_port} services
    on [node] — plus, when [reads] is given, the {!Client.read_port}
    probe service and the fast-path query pipeline (obs counters under
    subsystem [frontend]: [reads_fast_lease], [reads_fast_quorum],
    [reads_ordered_fallback], [quorum_read_rounds], …).  Intake pipeline
    for enveloped requests:

    + not leader → [Not_leader] with the backend's hint;
    + a retry of a request currently {e in flight} joins the original's
      callback list (one execution, every retry answered on commit) —
      checked before the session table so an executed-but-uncommitted
      request is never answered early from the cache;
    + a retry of a {e committed} request → cached reply, no execution
      ([frontend/dup_hits]);
    + otherwise enqueue, remembering the in-flight entry until the
      backend's callback fires.

    Raw (non-enveloped) requests skip the dedup steps.  Malformed
    envelopes answer [Dropped]. *)

val encode_batch : string list -> string
val decode_batch : string -> string list
(** The batch wire format shared by the SMR and Eve proposers (formerly
    duplicated in both). Raises {!Codec.Decode_error} on malformed
    input. *)

(** Flow-control bookkeeping (paper §6.3): secondaries report executed
    counts; the primary stalls intake when the slowest live secondary
    falls more than [window] events behind.  Extracted from the Rex
    server so the frontend owns everything between the wire and the run
    queue. *)
module Flow : sig
  type t

  val create : Engine.t -> window:int -> staleness:float -> t
  val note : t -> src:int -> count:int -> unit
  (** Record a secondary's progress report and wake parked fibers. *)

  val ok : t -> mine:int -> bool
  (** May the primary (at [mine] recorded events) admit more work? *)

  val park : t -> unit
  (** Park the calling fiber until the next {!note}/{!wake}. *)

  val wake : t -> unit
  val reset : t -> unit
end

(** Commit-gated reply release: responses computed speculatively on the
    Rex primary wait here until the trace cut containing their request
    commits.  Extracted from the Rex server's reply block. *)
module Replies : sig
  type t

  val create : unit -> t

  val add :
    t -> id:Event.Id.t -> t0:float -> resp:string ->
    cb:(string option -> unit) -> unit
  (** [t0] is the request's submit time, reported back by {!release} for
      latency accounting. *)

  val release :
    t -> upto:Trace.Cut.t ->
    (float * string * (string option -> unit)) list
  (** Detach and return the entries whose event the cut [upto] includes;
      the caller fires their callbacks (and owns metric emission). *)

  val drop : t -> (float * string * (string option -> unit)) list
  (** Detach everything — a demotion dropping speculative replies. *)

  val length : t -> int
end
