open Sim

type reply = Ok_reply of string | Not_leader of int option | Dropped | Busy

let client_port = "rex.client"
let query_port = "rex.query"
let read_port = "rex.read"

let encode_reply r =
  let b = Codec.sink () in
  (match r with
  | Ok_reply s ->
    Codec.write_byte b 0;
    Codec.write_string b s
  | Not_leader hint ->
    Codec.write_byte b 1;
    Codec.write_varint b (Option.value hint ~default:(-1))
  | Dropped -> Codec.write_byte b 2
  | Busy -> Codec.write_byte b 3);
  Codec.contents b

let decode_reply s =
  let src = Codec.source s in
  match Codec.read_byte src with
  | 0 -> Ok_reply (Codec.read_string src)
  | 1 ->
    let h = Codec.read_varint src in
    Not_leader (if h < 0 then None else Some h)
  | 2 -> Dropped
  | 3 -> Busy
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad reply tag %d" n))

type t = {
  rpc : Rpc.t;
  me : int;
  replicas : int array;
  mutable guess : int;  (* index into replicas *)
  uid : int;  (* session identity: allocated once per client endpoint *)
  mutable next_seq : int;
}

let create rpc ~me ~replicas =
  if replicas = [] then invalid_arg "Client.create";
  let uid = Engine.fresh_uid (Net.engine (Rpc.net rpc)) in
  { rpc; me; replicas = Array.of_list replicas; guess = 0; uid; next_seq = 0 }

let client_id t = t.uid
let peek_seq t = t.next_seq

let leader_guess t = t.replicas.(t.guess)

let point_at t node =
  Array.iteri (fun i r -> if r = node then t.guess <- i) t.replicas

let rotate t = t.guess <- (t.guess + 1) mod Array.length t.replicas

type call_outcome = Reply of string | Shed | Gave_up

let call_outcome ?(retries = 8) ?(timeout = 0.1) t request =
  (* One (client, seq) identity per logical request, minted here and
     reused verbatim on every retry below — the replicas' session tables
     key their exactly-once guarantee on it.  A fresh [call] with the
     same payload is a new logical request. *)
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let envelope =
    Session.Envelope.encode
      { Session.Envelope.client = t.uid; seq; payload = request }
  in
  (* [Shed] must certify the request never executed, so it is only
     reported when every attempt got a definitive non-admission answer
     (Busy / Not_leader) and at least one was Busy; any transport
     timeout or Dropped leaves at-most-once ambiguity -> [Gave_up]. *)
  let definitive = ref true and saw_busy = ref false in
  let rec go tries =
    if tries = 0 then
      if !definitive && !saw_busy then Shed else Gave_up
    else
      match
        Rpc.call t.rpc ~src:t.me ~dst:(leader_guess t) ~port:client_port
          ~timeout envelope
      with
      | None ->
        definitive := false;
        rotate t;
        go (tries - 1)
      | Some reply -> (
        match decode_reply reply with
        | Ok_reply resp -> Reply resp
        | Dropped ->
          definitive := false;
          rotate t;
          go (tries - 1)
        | Not_leader hint ->
          (match hint with Some h -> point_at t h | None -> rotate t);
          (* Give an election a moment before hammering the next guess. *)
          Engine.sleep 5e-3;
          go (tries - 1)
        | Busy ->
          (* Admission control shed us: the leader is fine, just
             overloaded.  Back off without rotating and retry the same
             envelope — the session table makes the retry idempotent. *)
          saw_busy := true;
          Engine.sleep 5e-3;
          go (tries - 1))
  in
  go retries

let call ?retries ?timeout t request =
  match call_outcome ?retries ?timeout t request with
  | Reply resp -> Some resp
  | Shed | Gave_up -> None

let query ?on ?(retries = 8) ?(timeout = 0.1) t request =
  (* Reads run the same discovery loop as [call]: follow Not_leader
     hints, rotate on timeout or Dropped.  With the quorum read path any
     caught-up replica can answer, so rotation converges fast; the
     shared [guess] means reads and writes pool their leader hints. *)
  let rec go ~dst tries =
    if tries = 0 then None
    else
      match Rpc.call t.rpc ~src:t.me ~dst ~port:query_port ~timeout request with
      | None ->
        rotate t;
        go ~dst:(leader_guess t) (tries - 1)
      | Some reply -> (
        match decode_reply reply with
        | Ok_reply resp -> Some resp
        | Dropped ->
          rotate t;
          go ~dst:(leader_guess t) (tries - 1)
        | Not_leader hint ->
          (match hint with Some h -> point_at t h | None -> rotate t);
          (* Give an election a moment before hammering the next guess. *)
          Engine.sleep 5e-3;
          go ~dst:(leader_guess t) (tries - 1)
        | Busy ->
          Engine.sleep 5e-3;
          go ~dst:(leader_guess t) (tries - 1))
  in
  go ~dst:(Option.value on ~default:(leader_guess t)) retries
