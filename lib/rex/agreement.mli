(** The agree-stage abstraction.

    Rex's execute-agree-follow does not care {e how} replicas agree on the
    sequence of trace deltas, only that they do — the paper notes the
    approach "can also be applied to other replication protocols, such as
    primary/backup replication and its variations (e.g., chain
    replication)" (§7).  {!Server} is written against this interface;
    {!of_paxos} wraps the default multi-instance Paxos, and {!Chain}
    provides a chain-replicated log. *)

type callbacks = {
  on_committed : int -> string -> unit;
      (** fired in sequence order, exactly once per slot per process
          lifetime *)
  on_become_leader : unit -> unit;
      (** this replica may now propose (it is the Paxos leader / chain
          head) *)
  on_new_leader : int -> unit;  (** another replica took over *)
}

type t = {
  start : unit -> unit;
  propose : string -> bool;
      (** submit the next value; false when not leader or window full *)
  can_propose : unit -> bool;
  is_leader : unit -> bool;
  leader_hint : unit -> int option;
  committed_upto : unit -> int;
  committed : int -> string option;  (** read back for recovery *)
  truncate_below : int -> unit;  (** GC below a checkpointed sequence *)
  fast_forward : int -> unit;
      (** a loaded checkpoint subsumes the prefix up to this sequence *)
  lease_valid : unit -> bool;
      (** leader-side: local reads are fenced by a live quorum lease (see
          [Paxos.Replica.holds_lease]); protocols without leases return
          [false] and reads take the quorum or ordered path *)
  read_index : unit -> int;
      (** this replica's highest possibly-chosen sequence number, for
          quorum reads (see [Paxos.Replica.read_index]) *)
  peers : unit -> int list;
      (** current replica-group membership — dynamic once
          reconfiguration entries commit (see
          [Paxos.Replica.propose_reconfig]) *)
  reconfig : int list -> bool;
      (** propose a single-replica membership change through the log;
          protocols without reconfiguration return [false] *)
}

val of_paxos : Paxos.Replica.t -> t
