type callbacks = {
  on_committed : int -> string -> unit;
  on_become_leader : unit -> unit;
  on_new_leader : int -> unit;
}

type t = {
  start : unit -> unit;
  propose : string -> bool;
  can_propose : unit -> bool;
  is_leader : unit -> bool;
  leader_hint : unit -> int option;
  committed_upto : unit -> int;
  committed : int -> string option;
  truncate_below : int -> unit;
  fast_forward : int -> unit;
  lease_valid : unit -> bool;
  read_index : unit -> int;
  peers : unit -> int list;
  reconfig : int list -> bool;
}

let of_paxos rep =
  {
    start = (fun () -> Paxos.Replica.start rep);
    propose = (fun v -> Paxos.Replica.propose rep v);
    can_propose = (fun () -> Paxos.Replica.can_propose rep);
    is_leader = (fun () -> Paxos.Replica.is_leader rep);
    leader_hint = (fun () -> Paxos.Replica.leader_hint rep);
    committed_upto = (fun () -> Paxos.Replica.committed_upto rep);
    committed = (fun i -> Paxos.Replica.committed_value rep i);
    truncate_below =
      (fun i -> Paxos.Store.truncate_below (Paxos.Replica.store rep) i);
    fast_forward =
      (fun i -> Paxos.Store.fast_forward (Paxos.Replica.store rep) i);
    lease_valid = (fun () -> Paxos.Replica.holds_lease rep);
    read_index = (fun () -> Paxos.Replica.read_index rep);
    peers = (fun () -> Paxos.Replica.peers rep);
    reconfig = (fun peers -> Paxos.Replica.propose_reconfig rep peers);
  }
