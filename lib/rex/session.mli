(** Exactly-once client sessions: request identity, per-client reply
    caches, and the app wrapper that replicates them.

    Every stack in this repo answers clients through retrying RPC, so a
    request whose {e reply} is lost gets retransmitted — and without
    request identity it executes twice, which diverges state for
    non-idempotent applications (lock acquire, file create) exactly in
    the failover window the paper worries about (§4.3).  The classic fix
    is a session table: clients tag each logical request with a stable
    [(client, seq)] identity ({!Envelope}), replicas remember the last
    sequence executed per client plus a bounded cache of recent replies
    ({!Table}), and a retry of an already-executed request is answered
    from the cache instead of re-executed.

    The table is {e replicated state}: it is updated on the execution
    path (via {!wrap}) on every replica, so a new primary after failover
    already knows which requests committed, and it is serialized inside
    the application checkpoint so exactly-once survives checkpoint
    restore, not just steady state.  Updates are commutative per client
    ([last_seq] merges with [max], the cache keeps the highest-seq
    window), so Rex's out-of-order concurrent replay converges to the
    same content the primary recorded. *)

(** {1 Request envelopes} *)

module Envelope : sig
  type t = { client : int; seq : int; payload : string }
  (** [client] is allocated once per client endpoint
      ({!Sim.Engine.fresh_uid}); [seq] is monotone per client and reused
      {e verbatim} on every retry of the same logical request. *)

  val magic : int
  (** First byte of every enveloped request (0xE5).  Raw request strings
      beginning with this byte cannot be submitted through the client
      ports; the application grammars in this repo are ASCII, so the
      byte is free. *)

  val encode : t -> string

  val decode : string -> t option
  (** [None] when the string does not start with {!magic} — a legacy raw
      request, passed through without dedup.  Raises
      {!Codec.Decode_error} when the magic matches but the rest is
      malformed or truncated. *)
end

(** {1 The per-replica session table} *)

module Table : sig
  type t

  type lookup =
    | Hit of string  (** duplicate of an executed request; cached reply *)
    | Stale
        (** [seq] trails [last_seq] by at least [window]: if it ever
            executed its reply has been evicted, and re-executing is not
            safe.  Only reachable when a client overlaps more than
            [window] outstanding requests. *)
    | Miss  (** a fresh request (including a concurrency gap: a not yet
            executed seq below a committed one) *)

  val create :
    ?window:int -> Obs.t -> stack:string -> node:int -> unit -> t
  (** [window] (default 64) bounds the per-client reply cache: the
      [window] highest-seq replies are kept, older ones are evicted
      (counted in [frontend/cache_evictions]).  Registers
      [frontend/dup_hits], [frontend/cache_evictions] (counters) and
      [frontend/sessions] (gauge) under the given [stack]/[node]
      labels. *)

  val lookup : t -> client:int -> seq:int -> lookup

  val record : t -> client:int -> seq:int -> reply:string -> unit
  (** Commutative: [last_seq] merges with [max] and the cache keeps the
      [window] highest sequence numbers, so concurrent replay may apply
      records of distinct requests in any order and converge. *)

  val note_dup : t -> unit
  (** Count an intercepted duplicate in [frontend/dup_hits]. *)

  val clear : t -> unit
  (** Forget everything (a replica rebuilding its execution context). *)

  val write : Codec.sink -> t -> unit
  (** Deterministic (client-sorted) serialization — embedded in
      application checkpoints by {!wrap}. *)

  val read : Codec.source -> t -> unit
  (** Replace the table's content with a previously {!write}n one. *)

  val digest : t -> string
  (** Content hash, independent of insertion order. *)

  val sessions : t -> int
  val dup_hits : t -> int
  val evictions : t -> int
  val window : t -> int
end

(** {1 The replicated execution wrapper} *)

val wrap : table:Table.t -> dedup_in_execute:bool -> App.t -> App.t
(** Wrap an application so enveloped requests execute their payload and
    record their reply in [table]; raw requests pass through untouched.
    The wrapper extends [write_checkpoint]/[read_checkpoint] (table
    first, then the app) and folds the table into [digest].

    [dedup_in_execute] adds a check that skips execution and returns the
    cached reply when [seq] was already executed.  Enable it only where
    the committed execution order is identical on every replica (SMR's
    serial executor; Eve batches, whose mixer must keep one client per
    batch): there a freshly-elected leader whose executor still lags can
    let a duplicate through intake, and the execute-time check is the
    deterministic backstop.  Rex must leave it off — replay is
    deliberately out of order, so a skip decision could differ between
    record and replay; Rex instead finishes replaying the committed
    trace before a promoted primary accepts intake, which makes the
    frontend's intake check sufficient. *)
