(** Virtual-time disk with native command queuing.

    Stands in for the paper's RAID-5 SCSI array (DESIGN.md §2): a random
    access pays a seek, but up to [queue_depth] seeks proceed in parallel
    (the "batched requests allow the underlying disk driver to optimize
    disk accesses" effect of §6.3); transfers then share a serial
    bandwidth stage.

    The disk is {e below} the replication boundary: it contributes only
    virtual time, never state, so its internal synchronization is native
    (unrecorded) and may differ across replicas. *)

type t

val create :
  ?seek_time:float -> ?bandwidth:float -> ?queue_depth:int ->
  Par.Backend.t -> t
(** Defaults: 4.5 ms seek, 200 MB/s, depth 5. *)

val io : t -> bytes_len:int -> unit
(** Block the calling fiber for one random-access I/O of the given size. *)

val ios_completed : t -> int
