module R = Rex_core

let factory ?(n_files = 64) ?disk () : R.App.factory =
 fun api ->
  let bk = Rexsync.Runtime.backend (R.Api.runtime api) in
  let disk = match disk with Some d -> d | None -> Sim_disk.create bk in
  let file_locks =
    Array.init n_files (fun i -> R.Api.lock api (Printf.sprintf "fs.file%d" i))
  in
  (* Block contents as write-generation numbers: (file, off) -> gen. *)
  let blocks : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let execute ~request =
    match Util.words request with
    | [ "READ"; file; off; len ] ->
      let file = int_of_string file
      and off = int_of_string off
      and len = int_of_string len in
      if file < 0 || file >= n_files then "ERR:bad-file"
      else
        Rexsync.Lock.with_lock file_locks.(file) (fun () ->
            Sim_disk.io disk ~bytes_len:len;
            let gen =
              Option.value (Hashtbl.find_opt blocks (file, off)) ~default:0
            in
            Printf.sprintf "DATA %d" gen)
    | [ "WRITE"; file; off; len ] ->
      let file = int_of_string file
      and off = int_of_string off
      and len = int_of_string len in
      if file < 0 || file >= n_files then "ERR:bad-file"
      else
        Rexsync.Lock.with_lock file_locks.(file) (fun () ->
            Sim_disk.io disk ~bytes_len:len;
            let gen =
              1 + Option.value (Hashtbl.find_opt blocks (file, off)) ~default:0
            in
            Hashtbl.replace blocks (file, off) gen;
            Printf.sprintf "OK %d" gen)
    | _ -> "ERR:bad-request"
  in
  let query ~request =
    match Util.words request with
    | [ "STAT"; file; off ] ->
      let file = int_of_string file and off = int_of_string off in
      if file < 0 || file >= n_files then "ERR:bad-file"
      else
        Rexsync.Lock.with_lock file_locks.(file) (fun () ->
            string_of_int
              (Option.value (Hashtbl.find_opt blocks (file, off)) ~default:0))
    | _ -> "ERR:bad-query"
  in
  let bindings () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) blocks [] |> List.sort compare
  in
  {
    R.App.name = "filesys";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b ((file, off), gen) ->
            Codec.write_uvarint b file;
            Codec.write_uvarint b off;
            Codec.write_uvarint b gen)
          (bindings ()));
    read_checkpoint =
      (fun src ->
        Hashtbl.reset blocks;
        let entries =
          Codec.read_list src (fun s ->
              let file = Codec.read_uvarint s in
              let off = Codec.read_uvarint s in
              let gen = Codec.read_uvarint s in
              ((file, off), gen))
        in
        List.iter (fun (k, v) -> Hashtbl.replace blocks k v) entries);
    digest = (fun () -> string_of_int (Hashtbl.hash (bindings ())));
  }
