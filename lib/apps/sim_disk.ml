open Sim

type t = {
  seek_time : float;
  bandwidth : float;
  ncq : Par.Backend.sem;
  transfer : Par.Backend.mutex;
  mutable completed : int;
}

let create ?(seek_time = 4.5e-3) ?(bandwidth = 200e6) ?(queue_depth = 5) bk =
  {
    seek_time;
    bandwidth;
    ncq = Par.Backend.sem bk queue_depth;
    transfer = Par.Backend.mutex bk;
    completed = 0;
  }

let io t ~bytes_len =
  t.ncq.s_acquire ();
  Engine.sleep t.seek_time;
  t.ncq.s_release ();
  t.transfer.m_lock ();
  Engine.sleep (float_of_int bytes_len /. t.bandwidth);
  t.transfer.m_unlock ();
  t.completed <- t.completed + 1

let ios_completed t = t.completed
