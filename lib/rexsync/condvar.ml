type t = {
  rt : Runtime.t;
  uid : int;
  real : Par.Backend.cond;
  pending_signals : Runtime.source Queue.t;
      (* signal events not yet claimed by a woken waiter; under the
         runtime guard on nondeterministic backends *)
  mutable last_broadcast : Runtime.source option;
}

let create rt name =
  {
    rt;
    uid = Runtime.fresh_resource_id rt name;
    real = Par.Backend.cond (Runtime.backend rt);
    pending_signals = Queue.create ();
    last_broadcast = None;
  }

let uid t = t.uid

(* The source ordering a wake: prefer an unclaimed signal (FIFO), falling
   back to the last broadcast.  If two signals race to wake two waiters
   the pairing may swap, which is harmless: the state a waiter observes is
   protected by the mutex, whose own acquire edges capture the true
   order. *)
let claim_wake_src t =
  Runtime.guarded t.rt (fun () ->
      match Queue.take_opt t.pending_signals with
      | Some s -> Some s
      | None -> t.last_broadcast)

let rec wait t (m : Lock.t) =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.c_wait (Lock.real_mutex m)
  | Runtime.Record ->
    (* Going to sleep releases the mutex: log it as this condition's
       [Cond_wait] with the mutex's release bookkeeping. *)
    ignore (Lock.record_release_as m ~kind:Event.Cond_wait ~resource:t.uid);
    t.real.c_wait (Lock.real_mutex m);
    (* Awake and holding the real mutex again. *)
    let extra = Option.to_list (claim_wake_src t) in
    ignore
      (Lock.record_acquire_as m ~kind:Event.Cond_wake ~resource:t.uid
         ~extra_srcs:extra)
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Cond_wait ] ~resource:t.uid with
    | `Record_now -> wait t m
    | `Event e ->
      (Lock.real_mutex m).m_unlock ();
      Lock.replay_note_release m e;
      Runtime.complete t.rt e;
      (* Park until the recorded signal (and the mutex hand-over) have
         replayed, then re-acquire the real mutex — the real condition
         variable is not consulted. *)
      (match Runtime.take t.rt ~kinds:[ Event.Cond_wake ] ~resource:t.uid with
      | `Record_now ->
        (* Promoted while asleep: fall back to the real primitive and
           wake on a genuine signal. *)
        (Lock.real_mutex m).m_lock ();
        t.real.c_wait (Lock.real_mutex m);
        let extra = Option.to_list (claim_wake_src t) in
        ignore
          (Lock.record_acquire_as m ~kind:Event.Cond_wake ~resource:t.uid
             ~extra_srcs:extra)
      | `Event e ->
        (Lock.real_mutex m).m_lock ();
        Lock.replay_note_acquire m e;
        Runtime.complete t.rt e))

let rec signal t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.c_signal ()
  | Runtime.Record ->
    Runtime.guarded t.rt (fun () ->
        let src =
          Runtime.record t.rt ~kind:Event.Cond_signal ~resource:t.uid []
        in
        Queue.push src t.pending_signals);
    t.real.c_signal ()
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Cond_signal ] ~resource:t.uid with
    | `Record_now -> signal t
    | `Event e ->
      (* Replaying waiters watch the scoreboard, but a native fiber might
         be waiting on the real condition variable (hybrid execution). *)
      t.real.c_signal ();
      Runtime.guarded t.rt (fun () ->
          Queue.push (Runtime.replay_source t.rt e) t.pending_signals);
      Runtime.complete t.rt e)

let rec broadcast t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.c_broadcast ()
  | Runtime.Record ->
    Runtime.guarded t.rt (fun () ->
        let src =
          Runtime.record t.rt ~kind:Event.Cond_broadcast ~resource:t.uid []
        in
        t.last_broadcast <- Some src);
    t.real.c_broadcast ()
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Cond_broadcast ] ~resource:t.uid with
    | `Record_now -> broadcast t
    | `Event e ->
      t.real.c_broadcast ();
      Runtime.guarded t.rt (fun () ->
          t.last_broadcast <- Some (Runtime.replay_source t.rt e));
      Runtime.complete t.rt e)
