open Sim

type t = {
  rt : Runtime.t;
  uid : int;
  real : Par.Backend.mutex;
  mutable version : int;  (* successful acquisitions *)
  mutable last_release : Runtime.source option;
  mutable last_acquire : Runtime.source option;
  mutable last_event : Runtime.source option;  (* total-order mode chain *)
  mutable failed_tries : Runtime.source list;  (* since current acquire *)
}

(* Bookkeeping blocks run inside [Runtime.guarded]: on the domains
   backend wrapper fields are shared across real domains (a failed
   try_lock mutates [failed_tries] while the holder runs), and the trace
   append must be atomic with the version bump.  On the simulator the
   guard is a plain call and the event order is exactly the unguarded
   one. *)

let create rt name =
  let t =
    {
      rt;
      uid = Runtime.fresh_resource_id rt name;
      real = Par.Backend.mutex (Runtime.backend rt);
      version = 0;
      last_release = None;
      last_acquire = None;
      last_event = None;
      failed_tries = [];
    }
  in
  Runtime.register_versioned rt t.uid
    ~get:(fun () -> t.version)
    ~set:(fun v -> t.version <- v);
  t

let uid t = t.uid
let locked t = t.real.m_locked ()
let runtime t = t.rt
let real_mutex t = t.real
let remember_event t src = t.last_event <- Some src

let acquire_srcs t =
  if Runtime.partial_order t.rt then Option.to_list t.last_release
  else Option.to_list t.last_event

(* Record/replay bookkeeping, shared with [Condvar]: a condition wait is
   a release of the mutex logged as a [Cond_wait] event against the
   condition's resource, and the subsequent wake is a re-acquisition. *)

let record_acquire_as t ~kind ~resource ~extra_srcs =
  Runtime.guarded t.rt (fun () ->
      let v = t.version in
      t.version <- v + 1;
      let src =
        Runtime.record t.rt ~kind ~resource ~version:v
          (extra_srcs @ acquire_srcs t)
      in
      t.last_acquire <- Some src;
      remember_event t src;
      src)

let record_release_as t ~kind ~resource =
  Runtime.guarded t.rt (fun () ->
      let srcs =
        if Runtime.partial_order t.rt then t.failed_tries
        else Option.to_list t.last_event
      in
      let src = Runtime.record t.rt ~kind ~resource ~version:t.version srcs in
      t.last_release <- Some src;
      remember_event t src;
      t.failed_tries <- [];
      src)

let replay_note_acquire t (e : Event.t) =
  Runtime.guarded t.rt (fun () ->
      Runtime.check_version t.rt e ~actual:t.version;
      t.version <- t.version + 1;
      let src = Runtime.replay_source t.rt e in
      t.last_acquire <- Some src;
      remember_event t src)

let replay_note_release t (e : Event.t) =
  Runtime.guarded t.rt (fun () ->
      let src = Runtime.replay_source t.rt e in
      t.last_release <- Some src;
      remember_event t src;
      t.failed_tries <- [])

let rec lock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.m_lock ()
  | Runtime.Record ->
    t.real.m_lock ();
    ignore
      (record_acquire_as t ~kind:Event.Acquire ~resource:t.uid ~extra_srcs:[])
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Acquire ] ~resource:t.uid with
    | `Record_now -> lock t
    | `Event e ->
      (* The real acquisition may still block briefly behind a native
         (read-only) fiber — the hybrid-execution case of §4.2. *)
      t.real.m_lock ();
      replay_note_acquire t e;
      Runtime.complete t.rt e)

let rec try_lock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.m_try_lock ()
  | Runtime.Record ->
    if t.real.m_try_lock () then begin
      ignore
        (record_acquire_as t ~kind:Event.Try_ok ~resource:t.uid ~extra_srcs:[]);
      true
    end
    else begin
      (* The failure is caused by the current holder: order this event
         after the holder's acquire, and remember it so the holder's
         release is ordered after it (Fig. 4, ground-truth edges). *)
      Runtime.guarded t.rt (fun () ->
          let srcs =
            if Runtime.partial_order t.rt then Option.to_list t.last_acquire
            else Option.to_list t.last_event
          in
          let src =
            Runtime.record t.rt ~kind:Event.Try_fail ~resource:t.uid
              ~version:t.version srcs
          in
          if Runtime.partial_order t.rt then
            t.failed_tries <- src :: t.failed_tries
          else remember_event t src);
      false
    end
  | Runtime.Replay -> (
    match
      Runtime.take t.rt ~kinds:[ Event.Try_ok; Event.Try_fail ] ~resource:t.uid
    with
    | `Record_now -> try_lock t
    | `Event e -> (
      match e.Event.kind with
      | Event.Try_ok ->
        (* Retry through transient native holders until the recorded
           result is reproduced (§4.2, lock state pollution). *)
        while not (t.real.m_try_lock ()) do
          Engine.yield ()
        done;
        replay_note_acquire t e;
        Runtime.complete t.rt e;
        true
      | _ ->
        (* Recorded failure: the lock's state did not change, so the
           equivalent replay changes nothing and returns false.  No
           version check here: under partial order a failed try is only
           ordered against the holder it observed, and a contended
           hand-off can slip an extra acquisition in between — the benign
           reordering the paper's partial-order caveat on version
           checking (§5) anticipates. *)
        Runtime.guarded t.rt (fun () ->
            let src = Runtime.replay_source t.rt e in
            if Runtime.partial_order t.rt then
              t.failed_tries <- src :: t.failed_tries
            else remember_event t src);
        Runtime.complete t.rt e;
        false))

let rec unlock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.m_unlock ()
  | Runtime.Record ->
    ignore (record_release_as t ~kind:Event.Release ~resource:t.uid);
    t.real.m_unlock ()
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Release ] ~resource:t.uid with
    | `Record_now -> unlock t
    | `Event e ->
      Runtime.guarded t.rt (fun () ->
          Runtime.check_version t.rt e ~actual:t.version);
      t.real.m_unlock ();
      replay_note_release t e;
      Runtime.complete t.rt e)

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f
