(** [RexLock]: the mutex wrapper of paper Fig. 3, with [TryLock].

    In record mode each operation appends an event to the trace —
    [Acquire] carries a causal edge from the previous [Release], a failed
    try carries an edge from the current holder's [Acquire], and a
    [Release] carries edges from the failed tries it unblocks (the
    partial-order scheme of Fig. 4; with [partial_order = false] in the
    runtime, a per-lock total order is recorded instead).  In replay mode
    each operation waits for its recorded causal edges, performs the real
    operation, and verifies the resource version.  Unbound (native)
    fibers and [native_exec] scopes go straight to the real lock. *)

type t

val create : Runtime.t -> string -> t
val uid : t -> int
val lock : t -> unit
val try_lock : t -> bool
val unlock : t -> unit

val locked : t -> bool
(** Native inspection of the underlying lock (diagnostics only). *)

val with_lock : t -> (unit -> 'a) -> 'a

(**/**)

(* Internal hooks used by {!Condvar}: perform this lock's record/replay
   bookkeeping for a wait/wake event logged against the condition
   variable's resource, without touching the real mutex. *)

val runtime : t -> Runtime.t
val real_mutex : t -> Par.Backend.mutex

val record_release_as :
  t -> kind:Event.kind -> resource:int -> Runtime.source

val record_acquire_as :
  t -> kind:Event.kind -> resource:int -> extra_srcs:Runtime.source list ->
  Runtime.source

val replay_note_release : t -> Event.t -> unit
val replay_note_acquire : t -> Event.t -> unit
