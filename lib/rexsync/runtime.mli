(** Per-replica record/replay runtime (paper §4).

    One runtime exists per replica process.  Worker and timer fibers bind
    themselves to {e thread slots}; the slot — identical on every replica —
    names the thread in trace events.  Depending on the runtime {!mode},
    the synchronization wrappers ({!Lock}, {!Rwlock}, {!Condvar}, {!Sem})
    route through the record path (append events and causal edges to the
    growing trace) or the replay path (await the next trace event, wait
    for its causal edges on the scoreboard, then perform the real
    operation).  Fibers bound to no slot — or inside {!native_exec} —
    always take the native path, enabling the paper's hybrid execution
    (read-only queries on a replica that is recording or replaying).

    Record-time causal-edge reduction (§4.2) is vector-clock based: an
    edge whose source the destination slot's clock already dominates is
    implied by program order and transitivity, and is dropped. *)

exception Divergence of string
(** Replay observed something other than what the trace prescribes —
    symptom of an unrecorded nondeterminism source (e.g. a data race).
    Carries a diagnostic naming the resource, slot and versions involved,
    mirroring Rex's resource-version checking (§5). *)

exception Replay_interrupted
(** Raised out of a replaying wrapper when {!interrupt_replay} tears the
    replica's execution context down mid-request. *)

type mode = Record | Replay | Native

type t

val create :
  ?reduce_edges:bool ->
  ?partial_order:bool ->
  ?check_versions:bool ->
  ?record_cost:float ->
  ?replay_cost:float ->
  ?base:Trace.Cut.t ->
  Par.Backend.t ->
  node:int ->
  slots:int ->
  t
(** [reduce_edges] (default true): drop causal edges implied by program
    order + transitivity.  [partial_order] (default true): record
    ground-truth edges for try-lock / readers-writer operations rather
    than a per-resource total order (paper Fig. 4).  [check_versions]
    (default true): verify resource versions during replay.
    [record_cost]/[replay_cost] (virtual seconds, default 0) model the
    per-event instruction overhead of logging and of replay dispatch.
    [base]: the checkpoint cut this replica's execution resumes from. *)

val backend : t -> Par.Backend.t

val guarded : t -> (unit -> 'a) -> 'a
(** Run [f] under the backend's record/replay guard (reentrant; a plain
    call on deterministic backends).  Wrappers use this around their
    bookkeeping so that fibers on real domains cannot interleave inside
    it; guarded sections must not block (see [Par.Guard]). *)

val engine : t -> Sim.Engine.t
(** The simulator engine, for sim-only consumers (networked consensus,
    fault injection).  Raises [Invalid_argument] when the runtime sits
    on a non-simulator backend. *)

val node : t -> int
val num_slots : t -> int
val trace : t -> Trace.t
val mode : t -> mode
val set_mode : t -> mode -> unit
val reduce_edges : t -> bool
val partial_order : t -> bool

(** {1 Fiber ↔ slot binding} *)

val bind_slot : t -> int -> unit
(** Bind the calling fiber to a slot (at most one fiber per slot). *)

val unbind_slot : t -> unit

val current_slot : t -> int option
(** The calling fiber's slot, or [None] for unbound fibers and inside
    {!native_exec}. *)

val effective_mode : t -> mode
(** The runtime mode, demoted to [Native] for unbound fibers and inside
    {!native_exec} scopes. *)

val native_exec : t -> (unit -> 'a) -> 'a
(** The paper's [NATIVE_EXEC] macro: run [f] with recording/replaying
    suspended on this fiber, for explicitly-tolerated benign races. *)

(** {1 Resources} *)

val fresh_resource_id : t -> string -> int
(** Deterministic uid for a lock/semaphore/timer.  Uids allocated during
    replica initialization (outside any slot) come from a global counter;
    uids allocated inside a request handler come from a per-slot counter,
    so they coincide across replicas regardless of thread interleaving. *)

val resource_name : t -> int -> string

val register_versioned : t -> int -> get:(unit -> int) -> set:(int -> unit) -> unit
(** Wrappers register their version counter so checkpoints can snapshot
    and restore it. *)

val version_snapshot : t -> (int * int) list
val restore_versions : t -> (int * int) list -> unit

(** {1 Record path} *)

type source
(** An event that may later become the source of a causal edge, together
    with the vector clock it carried (for redundancy elimination). *)

val source_id : source -> Event.Id.t

val record :
  t ->
  kind:Event.kind ->
  resource:int ->
  ?version:int ->
  ?payload:string ->
  source list ->
  source
(** Append an event on the calling fiber's slot, adding a causal edge from
    each source that is not already implied ([reduce_edges]).  Returns the
    event as a potential future source. *)

(** {1 Replay path} *)

val await_next : t -> [ `Event of Event.t | `Record_now | `Interrupted ]
(** Next trace event for the calling fiber's slot, parking until the trace
    has grown enough.  [`Record_now] when the runtime switched to record
    mode while waiting (a secondary being promoted mid-request);
    [`Interrupted] after {!interrupt_replay}. *)

val peek_next : t -> Event.t option

val take :
  t -> kinds:Event.kind list -> resource:int ->
  [ `Event of Event.t | `Record_now ]
(** [await_next] + validate kind and resource + wait for incoming causal
    edges on the scoreboard.  Raises {!Divergence} on mismatch and
    {!Replay_interrupted} on interrupt.  The caller performs the real
    operation, then calls {!complete}. *)

val check_version : t -> Event.t -> actual:int -> unit
(** Raise {!Divergence} if version checking is on and the versions differ. *)

val complete : t -> Event.t -> unit
(** Mark the event replayed: advance the scoreboard and wake dependents. *)

val replay_source : t -> Event.t -> source
(** A {!source} for a replayed event, so wrappers keep their causal-edge
    bookkeeping warm across a replay→record mode switch (promotion). *)

val feed_progress : t -> unit
(** Call after appending to the trace (e.g. applying a committed delta):
    wakes fibers parked in {!await_next}. *)

val interrupt_replay : t -> unit
(** Make all pending and future {!await_next} calls return [None] — used
    when a secondary is promoted and must stop replaying. *)

val resume_replay : t -> unit
val executed_cut : t -> Trace.Cut.t

val recorded_cut : t -> Trace.Cut.t
(** End of the recorded trace ({!Trace.end_cut} of {!trace}). *)

(** {1 Trace memory bounds} *)

val compact_trace : t -> upto:Trace.Cut.t -> unit
(** Reclaim trace memory below a stable checkpoint cut (see
    {!Trace.compact}).  The cut is clamped to what this replica has
    recorded — and, in replay mode, executed — so calling with a cut the
    replica has not fully caught up to performs a partial compaction
    rather than corrupting replay.  Updates the [trace/*] residency
    gauges and the [trace/compactions] counter. *)

val refresh_trace_gauges : t -> unit
(** Re-export the resident event / edge / incoming-index sizes as
    [trace/resident_events], [trace/resident_edges] and
    [trace/incoming_entries] gauges (labelled by node).  Called
    internally on record, feed and compaction; exposed for harnesses
    that sample at other times. *)

(** {1 Nondeterministic functions} *)

val nondet : t -> (unit -> string) -> string
(** Record mode: run the function and record its result in the trace.
    Replay: return the recorded result without running it.  Native: run
    it. *)

(** {1 Statistics (cumulative; sample twice for a window)} *)

type stats = {
  events_recorded : int;
  edges_recorded : int;
  edges_reduced : int;  (** edges dropped as redundant (§4.2) *)
  events_replayed : int;
  waited_events : int;  (** replayed events that had to park — Fig. 7's "waited events" *)
  nondet_recorded : int;
}

val stats : t -> stats
