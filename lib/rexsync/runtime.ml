open Sim

exception Divergence of string
exception Replay_interrupted

type mode = Record | Replay | Native

type fiber_ctx = { slot : int; mutable native_depth : int }

type stats = {
  events_recorded : int;
  edges_recorded : int;
  edges_reduced : int;
  events_replayed : int;
  waited_events : int;
  nondet_recorded : int;
}

type t = {
  bk : Par.Backend.t;
  guard : Par.Guard.t option;
      (* cached from [bk]; [None] on deterministic backends, where
         [guarded] collapses to a plain call *)
  node : int;
  slots : int;
  tr : Trace.t;
  sbd : Scoreboard.t;
  mutable md : mode;
  vcs : Vclock.t array;
  bound : (Engine.tid, fiber_ctx) Hashtbl.t;
  slot_owner : Engine.tid option array;
  resource_names : (int, string) Hashtbl.t;
  versioned : (int, (unit -> int) * (int -> unit)) Hashtbl.t;
  mutable global_res_counter : int;
  slot_res_counter : int array;
  mutable feed_waiters : Engine.waker list;
  mutable interrupted : bool;
  do_reduce_edges : bool;
  do_partial_order : bool;
  do_check_versions : bool;
  record_cost : float;
  replay_cost : float;
  obs : Obs.t;
  c_recorded : Obs.Metric.counter;
  c_edges : Obs.Metric.counter;
  c_reduced : Obs.Metric.counter;
  c_replayed : Obs.Metric.counter;
  c_waited : Obs.Metric.counter;
  c_nondet : Obs.Metric.counter;
  h_replay_wait : Obs.Histogram.t;
  c_compactions : Obs.Metric.counter;
  g_resident_events : Obs.Metric.gauge;
  g_resident_edges : Obs.Metric.gauge;
  g_incoming_entries : Obs.Metric.gauge;
}

(* Resource uid scheme: uids minted during initialization (no slot bound)
   use stripe 0; uids minted inside slot [s] use stripe [s+1].  Stripes
   keep uid assignment deterministic across replicas even when handlers
   on different slots create resources concurrently. *)
let max_slots = 62

let create ?(reduce_edges = true) ?(partial_order = true)
    ?(check_versions = true) ?(record_cost = 0.) ?(replay_cost = 0.) ?base bk
    ~node ~slots =
  if slots <= 0 || slots > max_slots then
    invalid_arg "Runtime.create: slots out of range";
  let guard = Par.Backend.guard bk in
  let sbd = Scoreboard.create ?guard ~slots () in
  (match base with Some b -> Scoreboard.reset sbd b | None -> ());
  let obs = Par.Backend.obs bk in
  (* Counters live in the backend's registry keyed by node, so a runtime
     rebuilt on the same node (e.g. after promotion) keeps accumulating
     into the same series rather than starting a parallel one. *)
  let labels = [ ("node", string_of_int node) ] in
  let c name = Obs.counter obs ~subsystem:"rexsync" ~labels name in
  let tg name = Obs.gauge obs ~subsystem:"trace" ~labels name in
  {
    bk;
    guard;
    node;
    slots;
    tr = Trace.create ?base ~slots ();
    sbd;
    md = Record;
    vcs = Array.init slots (fun _ -> Vclock.create ~slots);
    bound = Hashtbl.create 32;
    slot_owner = Array.make slots None;
    resource_names = Hashtbl.create 64;
    versioned = Hashtbl.create 64;
    global_res_counter = 0;
    slot_res_counter = Array.make slots 0;
    feed_waiters = [];
    interrupted = false;
    do_reduce_edges = reduce_edges;
    do_partial_order = partial_order;
    do_check_versions = check_versions;
    record_cost;
    replay_cost;
    obs;
    c_recorded = c "events_recorded";
    c_edges = c "edges_recorded";
    c_reduced = c "edges_reduced";
    c_replayed = c "events_replayed";
    c_waited = c "waited_events";
    c_nondet = c "nondet_recorded";
    h_replay_wait = Obs.histogram obs ~subsystem:"rexsync" ~labels "replay_wait";
    c_compactions = Obs.counter obs ~subsystem:"trace" ~labels "compactions";
    g_resident_events = tg "resident_events";
    g_resident_edges = tg "resident_edges";
    g_incoming_entries = tg "incoming_entries";
  }

let backend t = t.bk
let engine t = Par.Backend.sim_engine_exn t.bk
let node t = t.node
let num_slots t = t.slots
let trace t = t.tr
let mode t = t.md
let set_mode t m = t.md <- m
let reduce_edges t = t.do_reduce_edges
let partial_order t = t.do_partial_order

let guarded t f = match t.guard with None -> f () | Some g -> Par.Guard.with_ g f

(* --- Trace residency and compaction --- *)

let refresh_gauges_locked t =
  Obs.Metric.set t.g_resident_events (float_of_int (Trace.event_count t.tr));
  Obs.Metric.set t.g_resident_edges (float_of_int (Trace.edge_count t.tr));
  Obs.Metric.set t.g_incoming_entries
    (float_of_int (Trace.incoming_entries t.tr))

let refresh_trace_gauges t = guarded t (fun () -> refresh_gauges_locked t)

let compact_trace t ~upto =
  guarded t (fun () ->
      (* Clamp to what this replica has actually recorded — and, while
         replaying, executed: a replayer must never lose events its
         scoreboard has not passed.  A lagging replica compacts as far as is
         safe now and finishes the job at the next stable checkpoint. *)
      let safe = Trace.Cut.min upto (Trace.end_cut t.tr) in
      let safe =
        match t.md with
        | Replay -> Trace.Cut.min safe (Scoreboard.cut t.sbd)
        | Record | Native -> safe
      in
      let before = Trace.compactions t.tr in
      Trace.compact t.tr ~upto:safe;
      if Trace.compactions t.tr <> before then Obs.Metric.incr t.c_compactions;
      refresh_gauges_locked t)

(* --- Fiber binding ---

   [bound] and [slot_owner] writes are guarded; reads are not.  This is
   safe on the domains backend because the table never resizes (at most
   [max_slots] live bindings against 32 buckets) and a fiber only ever
   looks up its *own* binding, which it wrote itself — the pool's queue
   transfer orders that write before any later read from another
   domain. *)

let bind_slot t slot =
  if slot < 0 || slot >= t.slots then invalid_arg "Runtime.bind_slot";
  let tid = Engine.self () in
  guarded t (fun () ->
      (match t.slot_owner.(slot) with
      | Some _ -> invalid_arg "Runtime.bind_slot: slot already bound"
      | None -> ());
      Hashtbl.replace t.bound tid { slot; native_depth = 0 };
      t.slot_owner.(slot) <- Some tid)

let unbind_slot t =
  let tid = Engine.self () in
  guarded t (fun () ->
      match Hashtbl.find_opt t.bound tid with
      | None -> ()
      | Some ctx ->
        Hashtbl.remove t.bound tid;
        t.slot_owner.(ctx.slot) <- None)

let ctx t =
  match Engine.self_opt () with
  | None -> None
  | Some tid -> Hashtbl.find_opt t.bound tid

let current_slot t =
  match ctx t with
  | Some c when c.native_depth = 0 -> Some c.slot
  | Some _ | None -> None

let effective_mode t =
  match current_slot t with Some _ -> t.md | None -> Native

let native_exec t f =
  match ctx t with
  | None -> f ()
  | Some c ->
    c.native_depth <- c.native_depth + 1;
    Fun.protect ~finally:(fun () -> c.native_depth <- c.native_depth - 1) f

let required_slot t =
  match current_slot t with
  | Some s -> s
  | None -> invalid_arg "Rex runtime: calling fiber is not bound to a slot"

(* --- Resources --- *)

let fresh_resource_id t name =
  let slot = current_slot t in
  guarded t (fun () ->
      let uid =
        match slot with
        | None ->
          let k = t.global_res_counter in
          t.global_res_counter <- k + 1;
          k * (max_slots + 2)
        | Some s ->
          let k = t.slot_res_counter.(s) in
          t.slot_res_counter.(s) <- k + 1;
          (k * (max_slots + 2)) + s + 1
      in
      Hashtbl.replace t.resource_names uid name;
      uid)

let resource_name t uid =
  guarded t (fun () ->
      Option.value
        (Hashtbl.find_opt t.resource_names uid)
        ~default:(Printf.sprintf "resource#%d" uid))

(* Resource-version snapshots ride inside checkpoints so that a replica
   rebuilt from one resumes divergence checking with correct counters. *)
let register_versioned t uid ~get ~set =
  guarded t (fun () -> Hashtbl.replace t.versioned uid (get, set))

let version_snapshot t =
  guarded t (fun () ->
      Hashtbl.fold (fun uid (get, _) acc -> (uid, get ()) :: acc) t.versioned []
      |> List.sort compare)

let restore_versions t versions =
  guarded t (fun () ->
      List.iter
        (fun (uid, v) ->
          match Hashtbl.find_opt t.versioned uid with
          | Some (_, set) -> set v
          | None -> ())
        versions)

(* --- Record path --- *)

type source = { sid : Event.Id.t; svc : Vclock.t }

let source_id s = s.sid

let record t ~kind ~resource ?(version = 0) ?(payload = "") srcs =
  let slot = required_slot t in
  let src =
    guarded t (fun () ->
        if t.md <> Record then
          invalid_arg "Runtime.record: runtime is not in record mode";
        let clock = Trace.slot_end t.tr slot + 1 in
        let id : Event.Id.t = { slot; clock } in
        Trace.append t.tr { Event.id; kind; resource; version; payload };
        Obs.Metric.incr t.c_recorded;
        let vc = t.vcs.(slot) in
        ignore (Vclock.tick vc slot);
        let seen = Hashtbl.create 4 in
        let add_src src =
          if src.sid.slot <> slot && not (Hashtbl.mem seen src.sid) then begin
            Hashtbl.replace seen src.sid ();
            if t.do_reduce_edges && Vclock.dominates vc src.sid then
              Obs.Metric.incr t.c_reduced
            else begin
              Trace.add_edge t.tr ~src:src.sid ~dst:id;
              Obs.Metric.incr t.c_edges
            end;
            Vclock.join vc src.svc
          end
        in
        List.iter add_src srcs;
        refresh_gauges_locked t;
        { sid = id; svc = Vclock.copy vc })
  in
  (* Model the instruction overhead of logging an event (paper §6.3:
     recording costs the primary <= 5%).  Charged after the append so the
     trace bookkeeping itself stays atomic.  Safe even when the caller
     holds the guard: the domains backend spins [work] in place. *)
  if t.record_cost > 0. then Engine.work t.record_cost;
  src

(* --- Replay path --- *)

let feed_progress t =
  let ws =
    guarded t (fun () ->
        (* The trace just grew (a committed delta was applied); keep the
           residency gauges current on replicas that never record. *)
        refresh_gauges_locked t;
        let ws = t.feed_waiters in
        t.feed_waiters <- [];
        ws)
  in
  List.iter Engine.wake ws

let interrupt_replay t =
  t.interrupted <- true;
  feed_progress t

let resume_replay t = t.interrupted <- false

let await_next t =
  let slot = required_slot t in
  let probe () =
    if t.interrupted then `Interrupted
    else if t.md <> Replay then `Record_now
    else
      let clock = Scoreboard.watermark t.sbd slot + 1 in
      match Trace.find t.tr { slot; clock } with
      | Some e -> `Event e
      | None -> `Park
  in
  let rec loop () =
    match guarded t probe with
    | (`Interrupted | `Record_now | `Event _) as r -> r
    | `Park ->
      (* Re-probe inside the park register: on the domains backend a
         feed can land between the probe above and the enqueue, and its
         wake would be lost.  On the simulator nothing runs in between,
         so the wake-immediately branch is dead and the event sequence
         is unchanged. *)
      Engine.park (fun w ->
          guarded t (fun () ->
              match probe () with
              | `Park -> t.feed_waiters <- w :: t.feed_waiters
              | `Interrupted | `Record_now | `Event _ -> Engine.wake w));
      loop ()
  in
  loop ()

let peek_next t =
  let slot = required_slot t in
  guarded t (fun () ->
      let clock = Scoreboard.watermark t.sbd slot + 1 in
      Trace.find t.tr { slot; clock })

let divergence fmt = Fmt.kstr (fun msg -> raise (Divergence msg)) fmt

let take t ~kinds ~resource =
  match await_next t with
  | `Interrupted -> raise Replay_interrupted
  | `Record_now -> `Record_now
  | `Event e ->
    if not (List.mem e.Event.kind kinds) then
      divergence
        "slot %d: trace expects %s on %s, but execution performed %s on %s"
        e.id.slot
        (Event.kind_to_string e.kind)
        (resource_name t e.resource)
        (String.concat "|" (List.map Event.kind_to_string kinds))
        (resource_name t resource)
    else if e.resource <> resource then
      divergence
        "slot %d: trace expects %s on %s, but execution touched %s" e.id.slot
        (Event.kind_to_string e.kind)
        (resource_name t e.resource)
        (resource_name t resource)
    else begin
      let parked = ref false in
      let t0 = Engine.now () in
      let incoming = guarded t (fun () -> Trace.incoming t.tr e.id) in
      List.iter
        (fun src -> if Scoreboard.wait_for t.sbd src then parked := true)
        incoming;
      if !parked then begin
        Obs.Metric.incr t.c_waited;
        let waited = Engine.now () -. t0 in
        Obs.Histogram.observe t.h_replay_wait waited;
        let sp = Obs.spans t.obs in
        if Obs.Span.enabled sp then
          Obs.Span.complete sp ~cat:"rexsync" ~pid:t.node
            ~tid:(Engine.self ()) ~name:"replay_wait" ~ts:t0 ~dur:waited ()
      end;
      `Event e
    end

let check_version t (e : Event.t) ~actual =
  if t.do_check_versions && e.version <> actual then
    divergence
      "slot %d: resource %s version mismatch at %a: recorded %d, replica \
       observed %d (likely an unrecorded data race)"
      e.id.slot
      (resource_name t e.resource)
      Event.Id.pp e.id e.version actual

let complete t (e : Event.t) =
  guarded t (fun () ->
      Scoreboard.advance t.sbd ~slot:e.id.slot ~clock:e.id.clock;
      (* Keep the slot's own vector-clock component in step with its clock so
         edge reduction stays sound after a replay→record switch. *)
      ignore (Vclock.tick t.vcs.(e.id.slot) e.id.slot);
      Obs.Metric.incr t.c_replayed)

let executed_cut t = Scoreboard.cut t.sbd
let recorded_cut t = guarded t (fun () -> Trace.end_cut t.tr)

(* Wrappers keep their edge-source bookkeeping warm during replay so that
   a promoted secondary records correct edges from its very first
   operation.  The vector clock attached is a sound under-approximation
   (just the event itself): reduction keeps more edges than strictly
   needed right after a promotion, never fewer. *)
let replay_source t (e : Event.t) =
  let vc = Vclock.create ~slots:t.slots in
  Vclock.observe vc e.id;
  { sid = e.id; svc = vc }

(* --- Nondet --- *)

let rec nondet t f =
  match effective_mode t with
  | Native -> f ()
  | Record ->
    let v = f () in
    Obs.Metric.incr t.c_nondet;
    ignore (record t ~kind:Event.Nondet ~resource:0 ~payload:v []);
    v
  | Replay -> (
    match take t ~kinds:[ Event.Nondet ] ~resource:0 with
    | `Record_now -> nondet t f
    | `Event e ->
      complete t e;
      e.payload)

(* Thin view over the registry counters (subsystem "rexsync", labelled by
   node).  Cumulative per (backend, node), not per runtime instance. *)
let stats t =
  {
    events_recorded = Obs.Metric.value t.c_recorded;
    edges_recorded = Obs.Metric.value t.c_edges;
    edges_reduced = Obs.Metric.value t.c_reduced;
    events_replayed = Obs.Metric.value t.c_replayed;
    waited_events = Obs.Metric.value t.c_waited;
    nondet_recorded = Obs.Metric.value t.c_nondet;
  }
