(** Replay progress tracking (the follow stage's synchronization core).

    The scoreboard holds, per thread slot, the clock of the last event that
    slot has fully replayed.  A replayer about to execute an event with
    incoming causal edges parks until every source event's slot watermark
    has passed the source clock — implementing the paper's
    [WaitCausalEdgesIfNecessary] (Fig. 3). *)

type t

val create : ?guard:Par.Guard.t -> slots:int -> unit -> t
(** [guard] (from the runtime's backend) serializes watermark and waiter
    state when replay fibers run on real domains; omit it on the
    simulator. *)

val watermark : t -> int -> int
val cut : t -> Trace.Cut.t
(** Snapshot of all watermarks. *)

val advance : t -> slot:int -> clock:int -> unit
(** Mark the event executed and wake satisfied waiters.  Clocks must
    advance by exactly one per slot. *)

val wait_for : t -> Event.Id.t -> bool
(** Park until the watermark of the event's slot reaches its clock.
    Returns [true] if the caller actually had to wait. *)

val reset : t -> Trace.Cut.t -> unit
(** Reset watermarks (used when a replica re-joins from a checkpoint).
    There must be no parked waiters. *)
