open Sim

type t = {
  rt : Runtime.t;
  uid : int;
  real : Par.Backend.sem;
  mutable version : int;  (* acquisitions *)
  releases : Runtime.source Queue.t;  (* unmatched release events, FIFO *)
  mutable last_event : Runtime.source option;  (* total-order chain *)
}

(* Bookkeeping under [Runtime.guarded]: acquirers on different domains
   race for the [releases] queue. *)

let create rt name permits =
  let t =
    {
      rt;
      uid = Runtime.fresh_resource_id rt name;
      real = Par.Backend.sem (Runtime.backend rt) permits;
      version = 0;
      releases = Queue.create ();
      last_event = None;
    }
  in
  Runtime.register_versioned rt t.uid
    ~get:(fun () -> t.version)
    ~set:(fun v -> t.version <- v);
  t

let uid t = t.uid
let remember t src = t.last_event <- Some src

let acquire_srcs t =
  if Runtime.partial_order t.rt then
    Option.to_list (Queue.take_opt t.releases)
  else Option.to_list t.last_event

(* Version checks are skipped in partial-order mode: two acquirers whose
   matched releases have both replayed may legitimately complete in either
   order. *)
let check_sem_version t e =
  if not (Runtime.partial_order t.rt) then
    Runtime.check_version t.rt e ~actual:t.version

let record_acquire t ~kind =
  Runtime.guarded t.rt (fun () ->
      let v = t.version in
      t.version <- v + 1;
      let src =
        Runtime.record t.rt ~kind ~resource:t.uid ~version:v (acquire_srcs t)
      in
      remember t src)

let rec acquire t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.s_acquire ()
  | Runtime.Record ->
    t.real.s_acquire ();
    record_acquire t ~kind:Event.Sem_acquire
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Sem_acquire ] ~resource:t.uid with
    | `Record_now -> acquire t
    | `Event e ->
      t.real.s_acquire ();
      Runtime.guarded t.rt (fun () ->
          check_sem_version t e;
          t.version <- t.version + 1;
          ignore (Queue.take_opt t.releases);
          remember t (Runtime.replay_source t.rt e));
      Runtime.complete t.rt e)

let rec try_acquire t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.s_try_acquire ()
  | Runtime.Record ->
    if t.real.s_try_acquire () then begin
      record_acquire t ~kind:Event.Try_ok;
      true
    end
    else begin
      Runtime.guarded t.rt (fun () ->
          let src =
            Runtime.record t.rt ~kind:Event.Try_fail ~resource:t.uid
              ~version:t.version
              (if Runtime.partial_order t.rt then []
               else Option.to_list t.last_event)
          in
          remember t src);
      false
    end
  | Runtime.Replay -> (
    match
      Runtime.take t.rt ~kinds:[ Event.Try_ok; Event.Try_fail ] ~resource:t.uid
    with
    | `Record_now -> try_acquire t
    | `Event e -> (
      match e.Event.kind with
      | Event.Try_ok ->
        while not (t.real.s_try_acquire ()) do
          Engine.yield ()
        done;
        Runtime.guarded t.rt (fun () ->
            check_sem_version t e;
            t.version <- t.version + 1;
            ignore (Queue.take_opt t.releases);
            remember t (Runtime.replay_source t.rt e));
        Runtime.complete t.rt e;
        true
      | _ ->
        Runtime.guarded t.rt (fun () ->
            remember t (Runtime.replay_source t.rt e));
        Runtime.complete t.rt e;
        false))

let rec release t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.s_release ()
  | Runtime.Record ->
    Runtime.guarded t.rt (fun () ->
        let src =
          Runtime.record t.rt ~kind:Event.Sem_release ~resource:t.uid
            ~version:t.version
            (if Runtime.partial_order t.rt then []
             else Option.to_list t.last_event)
        in
        Queue.push src t.releases;
        remember t src);
    t.real.s_release ()
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Sem_release ] ~resource:t.uid with
    | `Record_now -> release t
    | `Event e ->
      t.real.s_release ();
      Runtime.guarded t.rt (fun () ->
          let src = Runtime.replay_source t.rt e in
          Queue.push src t.releases;
          remember t src);
      Runtime.complete t.rt e)
