open Sim

type t = {
  executed : int array;
  waiters : Engine.waker Pqueue.t array;
      (* per slot, keyed by the clock the waiter needs *)
  guard : Par.Guard.t option;
      (* serializes watermark/waiter state on nondeterministic backends;
         [None] on the simulator, where every helper is a plain call *)
}

let create ?guard ~slots () =
  {
    executed = Array.make slots 0;
    waiters = Array.init slots (fun _ -> Pqueue.create ());
    guard;
  }

let locked t f = match t.guard with None -> f () | Some g -> Par.Guard.with_ g f

let watermark t slot = t.executed.(slot)
let cut t = locked t (fun () -> Trace.Cut.of_array t.executed)

let advance t ~slot ~clock =
  locked t (fun () ->
      if clock <> t.executed.(slot) + 1 then
        invalid_arg
          (Printf.sprintf "Scoreboard.advance: slot %d at %d, got clock %d"
             slot t.executed.(slot) clock);
      t.executed.(slot) <- clock;
      let q = t.waiters.(slot) in
      let rec wake_ready () =
        match Pqueue.peek_priority q with
        | Some threshold when int_of_float threshold <= clock -> (
          match Pqueue.pop q with
          | Some (_, w) ->
            Engine.wake w;
            wake_ready ()
          | None -> ())
        | Some _ | None -> ()
      in
      wake_ready ())

let wait_for t (id : Event.Id.t) =
  if locked t (fun () -> t.executed.(id.slot) >= id.clock) then false
  else begin
    (* The watermark re-check inside the park register closes the
       domains-backend race where [advance] lands between our check and
       the enqueue (a lost wakeup).  On the simulator nothing can run in
       between, so the wake-immediately branch is never taken and the
       event sequence is exactly the pre-backend one. *)
    let passed () = t.executed.(id.slot) >= id.clock in
    while
      Engine.park (fun w ->
          locked t (fun () ->
              if passed () then Engine.wake w
              else
                Pqueue.add t.waiters.(id.slot)
                  ~priority:(float_of_int id.clock) w));
      not (locked t passed)
    do
      ()
    done;
    true
  end

let reset t cut =
  locked t (fun () ->
      let a = Trace.Cut.to_array cut in
      if Array.length a <> Array.length t.executed then
        invalid_arg "Scoreboard.reset";
      Array.blit a 0 t.executed 0 (Array.length a);
      Array.iter
        (fun q ->
          if not (Pqueue.is_empty q) then
            invalid_arg "Scoreboard.reset: waiters present")
        t.waiters)
