type t = {
  rt : Runtime.t;
  uid : int;
  real : Par.Backend.rwlock;
  mutable version : int;  (* writer epochs *)
  mutable last_wr_release : Runtime.source option;
  mutable last_event : Runtime.source option;  (* total-order chain *)
  mutable read_releases : Runtime.source list;  (* since last writer *)
}

(* Bookkeeping is guarded: concurrent readers on different domains
   mutate [read_releases] and read the writer chain at the same time. *)

let create rt name =
  let t =
    {
      rt;
      uid = Runtime.fresh_resource_id rt name;
      real = Par.Backend.rwlock (Runtime.backend rt);
      version = 0;
      last_wr_release = None;
      last_event = None;
      read_releases = [];
    }
  in
  Runtime.register_versioned rt t.uid
    ~get:(fun () -> t.version)
    ~set:(fun v -> t.version <- v);
  t

let uid t = t.uid
let remember t src = t.last_event <- Some src

let rec rd_lock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.rw_rd_lock ()
  | Runtime.Record ->
    t.real.rw_rd_lock ();
    Runtime.guarded t.rt (fun () ->
        let srcs =
          if Runtime.partial_order t.rt then Option.to_list t.last_wr_release
          else Option.to_list t.last_event
        in
        let src =
          Runtime.record t.rt ~kind:Event.Rd_acquire ~resource:t.uid
            ~version:t.version srcs
        in
        remember t src)
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Rd_acquire ] ~resource:t.uid with
    | `Record_now -> rd_lock t
    | `Event e ->
      t.real.rw_rd_lock ();
      Runtime.guarded t.rt (fun () ->
          Runtime.check_version t.rt e ~actual:t.version;
          remember t (Runtime.replay_source t.rt e));
      Runtime.complete t.rt e)

let rec rd_unlock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.rw_rd_unlock ()
  | Runtime.Record ->
    Runtime.guarded t.rt (fun () ->
        let srcs =
          if Runtime.partial_order t.rt then [] else Option.to_list t.last_event
        in
        let src =
          Runtime.record t.rt ~kind:Event.Rd_release ~resource:t.uid
            ~version:t.version srcs
        in
        t.read_releases <- src :: t.read_releases;
        remember t src);
    t.real.rw_rd_unlock ()
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Rd_release ] ~resource:t.uid with
    | `Record_now -> rd_unlock t
    | `Event e ->
      t.real.rw_rd_unlock ();
      Runtime.guarded t.rt (fun () ->
          let src = Runtime.replay_source t.rt e in
          t.read_releases <- src :: t.read_releases;
          remember t src);
      Runtime.complete t.rt e)

let rec wr_lock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.rw_wr_lock ()
  | Runtime.Record ->
    t.real.rw_wr_lock ();
    Runtime.guarded t.rt (fun () ->
        let v = t.version in
        t.version <- v + 1;
        let srcs =
          if Runtime.partial_order t.rt then
            Option.to_list t.last_wr_release @ t.read_releases
          else Option.to_list t.last_event
        in
        let src =
          Runtime.record t.rt ~kind:Event.Wr_acquire ~resource:t.uid ~version:v
            srcs
        in
        t.read_releases <- [];
        remember t src)
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Wr_acquire ] ~resource:t.uid with
    | `Record_now -> wr_lock t
    | `Event e ->
      t.real.rw_wr_lock ();
      Runtime.guarded t.rt (fun () ->
          Runtime.check_version t.rt e ~actual:t.version;
          t.version <- t.version + 1;
          t.read_releases <- [];
          remember t (Runtime.replay_source t.rt e));
      Runtime.complete t.rt e)

let rec wr_unlock t =
  match Runtime.effective_mode t.rt with
  | Runtime.Native -> t.real.rw_wr_unlock ()
  | Runtime.Record ->
    Runtime.guarded t.rt (fun () ->
        let srcs =
          if Runtime.partial_order t.rt then [] else Option.to_list t.last_event
        in
        let src =
          Runtime.record t.rt ~kind:Event.Wr_release ~resource:t.uid
            ~version:t.version srcs
        in
        t.last_wr_release <- Some src;
        remember t src);
    t.real.rw_wr_unlock ()
  | Runtime.Replay -> (
    match Runtime.take t.rt ~kinds:[ Event.Wr_release ] ~resource:t.uid with
    | `Record_now -> wr_unlock t
    | `Event e ->
      t.real.rw_wr_unlock ();
      Runtime.guarded t.rt (fun () ->
          let src = Runtime.replay_source t.rt e in
          t.last_wr_release <- Some src;
          remember t src);
      Runtime.complete t.rt e)

let with_rd t f =
  rd_lock t;
  Fun.protect ~finally:(fun () -> rd_unlock t) f

let with_wr t f =
  wr_lock t;
  Fun.protect ~finally:(fun () -> wr_unlock t) f
