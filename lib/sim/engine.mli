(** Deterministic discrete-event simulator with green threads.

    The simulator stands in for the paper's 12-core/24-hyperthread servers
    (see DESIGN.md §2): each node has a fixed number of CPU cores; a fiber
    consumes a core only while inside {!work}; blocking ({!park}, lock
    waits, message waits) is free.  Virtual time advances only through the
    event queue, so a whole multi-node run is reproducible from its seed.

    Scheduling nondeterminism — the raw material Rex must record and
    replay — comes from a tiny seed-dependent jitter added to every wakeup,
    which perturbs the order of causally unrelated events.

    Fibers are OCaml 5 effect handlers.  The fiber-context operations
    ({!now}, {!self}, {!work}, {!sleep}, {!park}, {!yield}) must only be
    called from inside a fiber started with {!spawn}; calling them outside
    raises [Effect.Unhandled]. *)

type t
type tid = int

exception Killed
(** Raised inside a fiber when its node crashes while it is parked or
    working. *)

(** The fiber-context effect protocol, shared between the simulator and
    the real-parallel domains backend ([lib/par]).  Fiber code performs
    these effects via the top-level wrappers below ({!now}, {!work},
    {!park}, …); whichever scheduler is running the fiber handles them.
    Code written against the wrappers therefore runs unchanged on both
    backends — only fiber {e creation} and resource {e creation} differ
    per backend (see [Par.Backend]). *)
module Protocol : sig
  type fiber_info = { fi_tid : tid; fi_node : int; fi_name : string }

  type waker = { w_fired : bool Atomic.t; w_fire : unit -> unit }
  (** A one-shot wakeup capability.  [w_fire] is backend-private; always
      go through {!wake}, which makes firing idempotent (CAS on
      [w_fired]) and safe from any domain. *)

  type _ Effect.t +=
    | E_now : float Effect.t  (** Current time (virtual or wall). *)
    | E_self : fiber_info Effect.t
    | E_work : float -> unit Effect.t
        (** Consume CPU for the given duration. *)
    | E_sleep : float -> unit Effect.t
        (** Let time pass without consuming CPU. *)
    | E_park : (waker -> unit) -> unit Effect.t
        (** Suspend; the handler passes a fresh waker to the register
            callback.  The callback runs in scheduler context: it must
            not perform effects, only stash or fire the waker. *)
    | E_yield : unit Effect.t  (** Reschedule, letting peers run. *)

  val make_waker : (unit -> unit) -> waker
  val wake : waker -> unit
end

val create : ?seed:int -> ?cores_per_node:int -> num_nodes:int -> unit -> t
(** Default [cores_per_node] is 16, matching the effective parallelism of
    the paper's 12-core hyper-threaded machines (Fig. 8 explicitly uses
    16-core machines). *)

val num_nodes : t -> int
val cores_per_node : t -> int

val add_node : t -> int
(** Grow the fabric by one node on the live simulation and return its id
    (= the previous {!num_nodes}).  The node starts alive with a true
    clock and idle cores; existing nodes, fibers and in-flight events are
    unaffected.  Used by the topology control plane: joining Paxos
    replicas and freshly split shard groups get real simulated hardware
    at runtime instead of being pre-allocated. *)

val fresh_uid : t -> int
(** Engine-scoped monotone id allocator.  Deterministic for a given seed
    and program order — used for client session identities, where a
    process-global counter would leak state across simulations and break
    per-seed reproducibility. *)

val rng : t -> Rng.t
(** The root generator; [Rng.split] it for independent streams. *)

val obs : t -> Obs.t
(** The simulation's observability context.  The engine registers its own
    instruments under subsystem ["sim"] (ready-queue depth, dispatched
    events, per-node fiber spawns and CPU-queue waits) and, when tracing
    is enabled via [Obs.enable_tracing], emits a span per [work] quantum
    and per CPU-queue wait.  Higher layers (net, runtime, paxos, rex, eve)
    hang their instruments off the same context. *)

(** {1 Driving the simulation} *)

val spawn : t -> node:int -> ?name:string -> (unit -> unit) -> tid
(** Start a fiber on [node] (which must be alive). It first runs at the
    current virtual time. *)

val spawn_at : t -> node:int -> at:float -> ?name:string -> (unit -> unit) -> unit
(** Schedule a fiber to start at absolute virtual time [at] (if the node is
    alive then). *)

val spawn_immediate : t -> node:int -> ?name:string -> (unit -> unit) -> unit
(** Start a fiber and run it synchronously up to its first suspension
    point, with no start jitter.  [Net] uses this so that message handlers
    observe deliveries in FIFO order. *)

val run : ?until:float -> t -> unit
(** Execute events in time order until the queue drains or virtual time
    would exceed [until]. Can be called repeatedly to run in slices. *)

val clock : t -> float
(** Current virtual time, readable from outside fibers. *)

val local_clock : t -> int -> float
(** The node's own reading of the clock: [offset + rate × virtual time].
    Rate 1.0 / offset 0.0 unless a nemesis skews it.  Lease timing reads
    this, never {!clock} — a lease must survive only what real clocks
    guarantee (bounded drift), so the simulator lets them lie. *)

val clock_rate : t -> int -> float

val set_clock_rate : t -> node:int -> float -> unit
(** Skew the node's clock to advance at [rate] × virtual time from now
    on.  The local clock stays continuous across the change (the offset
    is re-based), so curing skew never steps a clock backwards.  Raises
    [Invalid_argument] on a non-positive rate. *)

val pending_events : t -> int

(** {1 Failure injection} *)

val crash_node : t -> int -> unit
(** Kill every fiber of the node (parked fibers are resumed with {!Killed})
    and invalidate its in-flight events.  Idempotent. *)

val restart_node : t -> int -> unit
(** Mark the node alive again; the caller spawns fresh fibers for it. *)

val node_alive : t -> int -> bool

(** {1 Fiber context} *)

val now : unit -> float
val self : unit -> tid

val self_opt : unit -> tid option
(** [None] when called outside any fiber (e.g. during test setup or from a
    raw {!schedule} callback). *)

val self_name : unit -> string

val self_node : unit -> int
(** The node the calling fiber runs on. *)

val work : float -> unit
(** Consume [d] seconds of CPU on this fiber's node: waits for a free core,
    holds it for [d] virtual seconds, releases it. *)

val sleep : float -> unit
(** Advance virtual time without consuming CPU. *)

val yield : unit -> unit
(** Reschedule at the current time (with jitter), letting peers run. *)

(** {2 Parking} *)

type waker = Protocol.waker

val park : (waker -> unit) -> unit
(** [park register] suspends the fiber and hands a one-shot {!waker} to
    [register]; the fiber resumes when {!wake} is called on it.  The waker
    may be invoked from any context (another fiber, a timer, a network
    delivery), and invoking it more than once is harmless. *)

val wake : waker -> unit

(** {1 Statistics} *)

val busy_time : t -> int -> float
(** Total core-seconds consumed on a node so far; sample it twice to derive
    utilization over a window. *)

(** {1 Low-level scheduling (used by [Net] and [Timer])} *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Run a raw callback at time [at].  The callback executes outside any
    fiber: it must not use fiber-context operations, only mutate state,
    call {!wake}, or {!spawn}. *)

val jittered : t -> float -> float
(** [jittered t at] = [at] plus a tiny seed-dependent epsilon; use it to
    randomize the order of simultaneous events. *)
