type t = { mutable state : int64; mutable owner : int }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unpinned = -1

let create seed = { state = mix64 (Int64.of_int seed); owner = unpinned }

let pin t = t.owner <- (Domain.self () :> int)

(* The state advance is not atomic: a generator shared across domains
   would silently tear and destroy per-seed reproducibility.  A pinned
   generator (engine roots, backend roots) therefore refuses draws from
   any other domain — [split] on the owning domain is the only supported
   cross-domain handoff. *)
let check t =
  if t.owner >= 0 && t.owner <> (Domain.self () :> int) then
    invalid_arg
      "Rng: pinned generator drawn from another domain; Rng.split on the \
       owning domain is the only cross-domain handoff"

let bits64 t =
  check t;
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t; owner = unpinned }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 2) (Int64.of_int bound))

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)
