type handler = src:int -> string -> unit

type link = {
  l_msgs : Obs.Metric.counter;
  l_bytes : Obs.Metric.counter;
  l_drops : Obs.Metric.counter;
}

type t = {
  eng : Engine.t;
  rng : Rng.t;
  base_latency : float;
  jitter_mean : float;
  mutable latency_factor : float;
  handlers : (int * string, handler) Hashtbl.t;
  last_delivery : (int * int, float) Hashtbl.t;
  blocked : (int * int, unit) Hashtbl.t;
  mutable drop_probability : float;
  c_msgs : Obs.Metric.counter;
  c_bytes : Obs.Metric.counter;
  c_drops : Obs.Metric.counter;
  links : (int * int, link) Hashtbl.t;
  port_bytes : (string, Obs.Metric.counter) Hashtbl.t;
}

let create ?(base_latency = 50e-6) ?(jitter_mean = 20e-6) eng =
  let obs = Engine.obs eng in
  {
    eng;
    rng = Rng.split (Engine.rng eng);
    base_latency;
    jitter_mean;
    latency_factor = 1.;
    handlers = Hashtbl.create 32;
    last_delivery = Hashtbl.create 32;
    blocked = Hashtbl.create 8;
    drop_probability = 0.;
    c_msgs = Obs.counter obs ~subsystem:"net" "messages";
    c_bytes = Obs.counter obs ~subsystem:"net" "bytes";
    c_drops = Obs.counter obs ~subsystem:"net" "drops";
    links = Hashtbl.create 32;
    port_bytes = Hashtbl.create 16;
  }

let engine t = t.eng
let register t ~node ~port h = Hashtbl.replace t.handlers (node, port) h
let set_drop_probability t p = t.drop_probability <- p

let set_latency_factor t f =
  if f <= 0. then invalid_arg "Net.set_latency_factor";
  t.latency_factor <- f

let latency_factor t = t.latency_factor

let link t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l
  | None ->
    let obs = Engine.obs t.eng in
    let labels = [ ("src", string_of_int src); ("dst", string_of_int dst) ] in
    let l =
      {
        l_msgs = Obs.counter obs ~subsystem:"net" ~labels "link_messages";
        l_bytes = Obs.counter obs ~subsystem:"net" ~labels "link_bytes";
        l_drops = Obs.counter obs ~subsystem:"net" ~labels "link_drops";
      }
    in
    Hashtbl.replace t.links (src, dst) l;
    l

let port_counter t port =
  match Hashtbl.find_opt t.port_bytes port with
  | Some c -> c
  | None ->
    let c =
      Obs.counter (Engine.obs t.eng) ~subsystem:"net"
        ~labels:[ ("port", port) ] "port_bytes"
    in
    Hashtbl.replace t.port_bytes port c;
    c

let partition t a b =
  Hashtbl.replace t.blocked (a, b) ();
  Hashtbl.replace t.blocked (b, a) ()

let heal t a b =
  Hashtbl.remove t.blocked (a, b);
  Hashtbl.remove t.blocked (b, a)

let heal_all t = Hashtbl.reset t.blocked
let messages_sent t = Obs.Metric.value t.c_msgs
let bytes_sent t = Obs.Metric.value t.c_bytes
let messages_dropped t = Obs.Metric.value t.c_drops

let bytes_sent_on_port t port =
  match Hashtbl.find_opt t.port_bytes port with
  | Some c -> Obs.Metric.value c
  | None -> 0

let reset_stats t =
  Obs.Metric.reset t.c_msgs;
  Obs.Metric.reset t.c_bytes;
  Obs.Metric.reset t.c_drops;
  Hashtbl.iter (fun _ l ->
      Obs.Metric.reset l.l_msgs;
      Obs.Metric.reset l.l_bytes;
      Obs.Metric.reset l.l_drops)
    t.links;
  Hashtbl.iter (fun _ c -> Obs.Metric.reset c) t.port_bytes

let send t ~src ~dst ~port payload =
  let len = String.length payload in
  let l = link t ~src ~dst in
  Obs.Metric.incr t.c_msgs;
  Obs.Metric.add t.c_bytes len;
  Obs.Metric.incr l.l_msgs;
  Obs.Metric.add l.l_bytes len;
  Obs.Metric.add (port_counter t port) len;
  let dropped =
    Hashtbl.mem t.blocked (src, dst)
    || (t.drop_probability > 0. && Rng.float t.rng 1.0 < t.drop_probability)
  in
  if dropped then begin
    Obs.Metric.incr t.c_drops;
    Obs.Metric.incr l.l_drops
  end
  else begin
    let latency =
      t.latency_factor
      *. (t.base_latency +. Rng.exponential t.rng ~mean:t.jitter_mean)
    in
    let sent = Engine.clock t.eng in
    let arrival = sent +. latency in
    (* FIFO per directed pair: never deliver before an earlier message. *)
    let floor =
      Option.value (Hashtbl.find_opt t.last_delivery (src, dst)) ~default:0.
    in
    let at = Float.max arrival (floor +. 1e-12) in
    Hashtbl.replace t.last_delivery (src, dst) at;
    Engine.schedule t.eng ~at (fun () ->
        if Engine.node_alive t.eng dst then
          match Hashtbl.find_opt t.handlers (dst, port) with
          | None -> ()
          | Some h ->
            let sp = Obs.spans (Engine.obs t.eng) in
            if Obs.Span.enabled sp then
              Obs.Span.complete sp ~cat:"net" ~pid:dst ~name:("net:" ^ port)
                ~ts:sent ~dur:(at -. sent) ();
            Engine.spawn_immediate t.eng ~node:dst ~name:("net:" ^ port)
              (fun () -> h ~src payload))
  end
