type pending = { mutable result : string option; waker : Engine.waker }

type t = {
  net : Net.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_id : int;
}

let reply_port = "rpc.reply"

let on_reply t ~src:_ payload =
  let s = Codec.source payload in
  let id = Codec.read_uvarint s in
  let body = Codec.read_string s in
  match Hashtbl.find_opt t.pending id with
  | None -> () (* Caller already timed out. *)
  | Some p ->
    p.result <- Some body;
    Engine.wake p.waker

let attach_node t ~node = Net.register t.net ~node ~port:reply_port (on_reply t)

let create net =
  let t = { net; pending = Hashtbl.create 64; next_id = 0 } in
  let eng = Net.engine net in
  for node = 0 to Engine.num_nodes eng - 1 do
    attach_node t ~node
  done;
  t

let encode_request id body =
  let b = Codec.sink () in
  Codec.write_uvarint b id;
  Codec.write_string b body;
  Codec.contents b

let serve_async t ~node ~port handler =
  Net.register t.net ~node ~port (fun ~src payload ->
      let s = Codec.source payload in
      let id = Codec.read_uvarint s in
      let body = Codec.read_string s in
      let reply resp =
        Net.send t.net ~src:node ~dst:src ~port:reply_port
          (encode_request id resp)
      in
      handler ~src body ~reply)

let net t = t.net

let serve t ~node ~port handler =
  serve_async t ~node ~port (fun ~src body ~reply -> reply (handler ~src body))

let call t ~src ~dst ~port ?(timeout = 1.0) body =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let eng = Net.engine t.net in
  let result = ref None in
  Engine.park (fun w ->
      let p = { result = None; waker = w } in
      Hashtbl.replace t.pending id p;
      result := Some p;
      Net.send t.net ~src ~dst ~port (encode_request id body);
      Engine.schedule eng
        ~at:(Engine.clock eng +. timeout)
        (fun () -> Engine.wake w));
  match !result with
  | None -> None
  | Some p ->
    Hashtbl.remove t.pending id;
    p.result
