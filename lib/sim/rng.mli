(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Every source of scheduling nondeterminism in the simulator draws from
    one of these generators, so an entire cluster run is a pure function of
    its seed — which is what lets the test suite record a trace under seed
    [a] and replay it under seed [b] to check the determinism property. *)

type t

val create : int -> t
val split : t -> t
(** An independent generator; the parent advances.

    [split] is also the {e only} supported way to hand randomness across
    OCaml domains: the state advance is a plain mutable update, so a
    generator must never be drawn from two domains.  Split on the owning
    domain, hand the child over, never share the parent. *)

val pin : t -> unit
(** Pin the generator to the calling domain: any later draw from another
    domain raises [Invalid_argument].  Engine-scoped root generators are
    pinned at creation; fiber-local splits stay unpinned (a fiber may
    migrate between the domains of a [lib/par] pool, which is safe —
    accesses stay sequential). *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed, for network latency tails. *)
