(** Request/response RPC over {!Net} with correlation ids and timeouts.

    [call] parks the calling fiber until the reply arrives or the timeout
    fires; lost messages (drops, partitions, crashed callee) surface as
    [None].  Servers run each request in its own fiber and may block. *)

type t

val create : Net.t -> t
val net : t -> Net.t

val attach_node : t -> node:int -> unit
(** Register the reply port on a node added to the engine after
    {!create} (see {!Sim.Engine.add_node}) so RPC calls issued from it
    can complete. *)

val serve : t -> node:int -> port:string -> (src:int -> string -> string) -> unit
(** Register a service; the handler's return value is the reply. *)

val serve_async :
  t -> node:int -> port:string ->
  (src:int -> string -> reply:(string -> unit) -> unit) -> unit
(** Like {!serve} but the handler replies explicitly (possibly never — the
    caller then times out). *)

val call :
  t -> src:int -> dst:int -> port:string -> ?timeout:float -> string ->
  string option
(** Default timeout: 1 s of virtual time. *)
