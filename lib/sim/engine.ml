open Effect
open Effect.Deep

type tid = int

exception Killed

(* The fiber-context protocol is shared with the real-parallel backend
   (lib/par): any scheduler that handles these effects and mints wakers
   can run the same fiber code.  The simulator below is one handler; the
   domains task pool is the other. *)
module Protocol = struct
  type fiber_info = { fi_tid : tid; fi_node : int; fi_name : string }

  type waker = { w_fired : bool Atomic.t; w_fire : unit -> unit }

  type _ Effect.t +=
    | E_now : float Effect.t
    | E_self : fiber_info Effect.t
    | E_work : float -> unit Effect.t
    | E_sleep : float -> unit Effect.t
    | E_park : (waker -> unit) -> unit Effect.t
    | E_yield : unit Effect.t

  let make_waker fire = { w_fired = Atomic.make false; w_fire = fire }

  (* Idempotent from any domain: exactly one caller wins the CAS. *)
  let wake w =
    if Atomic.compare_and_set w.w_fired false true then w.w_fire ()
end

type waker = Protocol.waker

type fiber = {
  info : Protocol.fiber_info;
  inc : int;
  mutable parked : (unit, unit) continuation option;
  mutable park_gen : int;
}

let tid_of fiber = fiber.info.Protocol.fi_tid
let node_of fiber = fiber.info.Protocol.fi_node
let name_of fiber = fiber.info.Protocol.fi_name

(* Per-node state lives in arrays indexed by node id; [add_node] grows
   them in place (the control plane adds replicas to a live fabric), so
   the fields are mutable and must only be read through [t]. *)
type t = {
  mutable time : float;
  events : (unit -> unit) Pqueue.t;
  root_rng : Rng.t;
  jitter_rng : Rng.t;
  mutable nodes : int;
  cores : int;
  mutable alive : bool array;
  mutable node_inc : int array;
  mutable clock_rate : float array;
      (* per-node local-clock rate relative to virtual time (1.0 = true) *)
  mutable clock_offset : float array;
  mutable free_cores : int array;
  mutable cpu_wait :
    (fiber * float * float * (unit, unit) continuation) Queue.t array;
      (* (fiber, work duration, enqueue time, continuation) *)
  mutable busy : float array;
  fibers : (tid, fiber) Hashtbl.t;
  mutable next_tid : int;
  next_uid : int Atomic.t;
  mutable running : fiber option;
  (* observability *)
  obs : Obs.t;
  g_ready : Obs.Metric.gauge;
  g_ready_max : Obs.Metric.gauge;
  c_dispatched : Obs.Metric.counter;
  mutable c_spawned : Obs.Metric.counter array;
  mutable h_cpu_wait : Obs.Histogram.t array;
}

let create ?(seed = 42) ?(cores_per_node = 16) ~num_nodes () =
  if num_nodes <= 0 then invalid_arg "Engine.create: num_nodes";
  if cores_per_node <= 0 then invalid_arg "Engine.create: cores_per_node";
  let root = Rng.create seed in
  (* The engine's generators advance on every scheduling decision; pin
     them so a stray cross-domain draw fails loudly instead of tearing
     the seed stream (Rng.split is the only supported handoff). *)
  Rng.pin root;
  let jitter = Rng.split root in
  Rng.pin jitter;
  let obs = Obs.create () in
  let node_label n = [ ("node", string_of_int n) ] in
  let t =
    {
      time = 0.;
      events = Pqueue.create ();
      jitter_rng = jitter;
      root_rng = root;
      nodes = num_nodes;
      cores = cores_per_node;
      alive = Array.make num_nodes true;
      node_inc = Array.make num_nodes 0;
      clock_rate = Array.make num_nodes 1.;
      clock_offset = Array.make num_nodes 0.;
      free_cores = Array.make num_nodes cores_per_node;
      cpu_wait = Array.init num_nodes (fun _ -> Queue.create ());
      busy = Array.make num_nodes 0.;
      fibers = Hashtbl.create 64;
      next_tid = 0;
      next_uid = Atomic.make 0;
      running = None;
      obs;
      g_ready = Obs.gauge obs ~subsystem:"sim" "ready_events";
      g_ready_max = Obs.gauge obs ~subsystem:"sim" "ready_events_max";
      c_dispatched = Obs.counter obs ~subsystem:"sim" "events_dispatched";
      c_spawned =
        Array.init num_nodes (fun n ->
            Obs.counter obs ~subsystem:"sim" ~labels:(node_label n)
              "fibers_spawned");
      h_cpu_wait =
        Array.init num_nodes (fun n ->
            Obs.histogram obs ~subsystem:"sim" ~labels:(node_label n)
              "cpu_queue_wait");
    }
  in
  Obs.set_clock obs (fun () -> t.time);
  t

let num_nodes t = t.nodes
let cores_per_node t = t.cores

(* Grow the fabric by one node (alive, true clock, idle cores).  Fibers,
   nets and RPC served on existing nodes are untouched: every per-node
   array is extended in place and the new id is returned.  This is the
   substrate for live topology changes — a joining Paxos replica or a
   freshly split shard group gets real simulated hardware. *)
let add_node t =
  let n = t.nodes in
  let grow a v = Array.append a [| v |] in
  t.alive <- grow t.alive true;
  t.node_inc <- grow t.node_inc 0;
  t.clock_rate <- grow t.clock_rate 1.;
  t.clock_offset <- grow t.clock_offset 0.;
  t.free_cores <- grow t.free_cores t.cores;
  t.cpu_wait <- grow t.cpu_wait (Queue.create ());
  t.busy <- grow t.busy 0.;
  let labels = [ ("node", string_of_int n) ] in
  t.c_spawned <-
    grow t.c_spawned
      (Obs.counter t.obs ~subsystem:"sim" ~labels "fibers_spawned");
  t.h_cpu_wait <-
    grow t.h_cpu_wait
      (Obs.histogram t.obs ~subsystem:"sim" ~labels "cpu_queue_wait");
  t.nodes <- n + 1;
  n

(* Atomic so engine-scoped uid allocation stays safe if a handle leaks
   into backend-shared code; single-domain allocation order (and thus
   per-seed reproducibility) is unchanged. *)
let fresh_uid t = Atomic.fetch_and_add t.next_uid 1
let obs t = t.obs
let rng t = t.root_rng
let clock t = t.time
let pending_events t = Pqueue.length t.events

(* Per-node skewed clocks.  Virtual time is the one true timeline; each
   node reads [offset + rate * time].  Only lease logic consults these —
   event scheduling always runs on true time, so skew perturbs what a
   node *believes*, never what the simulator *does*. *)
let local_clock t n = t.clock_offset.(n) +. (t.clock_rate.(n) *. t.time)

let clock_rate t n = t.clock_rate.(n)

(* Changing the rate keeps the local clock continuous (no step), so a
   cure never makes a node's clock jump backwards. *)
let set_clock_rate t ~node rate =
  if rate <= 0. then invalid_arg "Engine.set_clock_rate: rate";
  let local_now = local_clock t node in
  t.clock_rate.(node) <- rate;
  t.clock_offset.(node) <- local_now -. (rate *. t.time)
let node_alive t n = t.alive.(n)
let busy_time t n = t.busy.(n)

let jittered t at = at +. Rng.float t.jitter_rng 1e-9

let schedule t ~at cb = Pqueue.add t.events ~priority:(max at t.time) cb

let valid t fiber = t.alive.(node_of fiber) && fiber.inc = t.node_inc.(node_of fiber)

let fiber_done t fiber = Hashtbl.remove t.fibers (tid_of fiber)

(* Resume a suspended fiber from the event loop, tracking the "currently
   running fiber" so that [self]-style effects can answer.  A fiber whose
   node died while it was suspended is resumed with [Killed] instead. *)
let resume t fiber k v =
  let prev = t.running in
  t.running <- Some fiber;
  Fun.protect
    ~finally:(fun () -> t.running <- prev)
    (fun () -> if valid t fiber then continue k v else discontinue k Killed)

let kill t fiber k =
  let prev = t.running in
  t.running <- Some fiber;
  Fun.protect
    ~finally:(fun () -> t.running <- prev)
    (fun () -> discontinue k Killed)

(* CPU core accounting: a fiber holds a core exactly for the duration of an
   [E_work] effect; waiters queue FIFO per node. *)
let rec start_work t fiber d k =
  let n = node_of fiber in
  let started = t.time in
  t.free_cores.(n) <- t.free_cores.(n) - 1;
  schedule t ~at:(jittered t (t.time +. d)) (fun () ->
      if fiber.inc = t.node_inc.(n) && t.alive.(n) then begin
        t.busy.(n) <- t.busy.(n) +. d;
        let sp = Obs.spans t.obs in
        if Obs.Span.enabled sp then
          Obs.Span.complete sp ~cat:"work" ~pid:n ~tid:(tid_of fiber)
            ~name:(name_of fiber) ~ts:started ~dur:d ();
        release_core t n;
        resume t fiber k ()
      end
      else
        (* The node crashed (resetting core counts) after this work began:
           do not release a core that was already reclaimed. *)
        kill t fiber k)

and release_core t n =
  t.free_cores.(n) <- t.free_cores.(n) + 1;
  match Queue.take_opt t.cpu_wait.(n) with
  | None -> ()
  | Some (fiber, d, enq, k) ->
    if valid t fiber then begin
      let waited = t.time -. enq in
      Obs.Histogram.observe t.h_cpu_wait.(n) waited;
      let sp = Obs.spans t.obs in
      if Obs.Span.enabled sp then
        Obs.Span.complete sp ~cat:"cpu_wait" ~pid:n ~tid:(tid_of fiber)
          ~name:"cpu_wait" ~ts:enq ~dur:waited ();
      start_work t fiber d k
    end
    else kill t fiber k

let do_park t fiber register k =
  fiber.park_gen <- fiber.park_gen + 1;
  fiber.parked <- Some k;
  let gen = fiber.park_gen in
  (* The generation check guards against a stale waker firing after the
     fiber has parked again on a newer waker. *)
  let w =
    Protocol.make_waker (fun () ->
        if gen = fiber.park_gen then
          match fiber.parked with
          | None -> ()
          | Some k ->
            fiber.parked <- None;
            schedule t ~at:(jittered t t.time) (fun () -> resume t fiber k ()))
  in
  register w

let wake = Protocol.wake

let handler t fiber =
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Protocol.E_now ->
      Some (fun (k : (float, unit) continuation) -> continue k t.time)
    | Protocol.E_self ->
      Some
        (fun (k : (Protocol.fiber_info, unit) continuation) ->
          continue k fiber.info)
    | Protocol.E_work d ->
      Some
        (fun (k : (unit, unit) continuation) ->
          if not (valid t fiber) then discontinue k Killed
          else if t.free_cores.(node_of fiber) > 0 then start_work t fiber d k
          else Queue.push (fiber, d, t.time, k) t.cpu_wait.(node_of fiber))
    | Protocol.E_sleep d ->
      Some
        (fun (k : (unit, unit) continuation) ->
          if not (valid t fiber) then discontinue k Killed
          else
            schedule t
              ~at:(jittered t (t.time +. d))
              (fun () -> resume t fiber k ()))
    | Protocol.E_park register ->
      Some
        (fun (k : (unit, unit) continuation) ->
          if not (valid t fiber) then discontinue k Killed
          else do_park t fiber register k)
    | Protocol.E_yield ->
      Some
        (fun (k : (unit, unit) continuation) ->
          if not (valid t fiber) then discontinue k Killed
          else
            do_park t fiber
              (fun w ->
                schedule t ~at:(jittered t t.time) (fun () -> Protocol.wake w))
              k)
    | _ -> None
  in
  {
    retc = (fun () -> fiber_done t fiber);
    exnc =
      (fun e ->
        match e with
        | Killed -> fiber_done t fiber
        | e ->
          fiber_done t fiber;
          raise e);
    effc;
  }

let exec_fiber t fiber main =
  let prev = t.running in
  t.running <- Some fiber;
  Fun.protect
    ~finally:(fun () -> t.running <- prev)
    (fun () -> match_with main () (handler t fiber))

let make_fiber t ~node ~name =
  let fiber =
    {
      info = { Protocol.fi_tid = t.next_tid; fi_node = node; fi_name = name };
      inc = t.node_inc.(node);
      parked = None;
      park_gen = 0;
    }
  in
  t.next_tid <- t.next_tid + 1;
  Obs.Metric.incr t.c_spawned.(node);
  Hashtbl.replace t.fibers (tid_of fiber) fiber;
  fiber

let spawn_fiber t ~node ~at ~name main =
  if node < 0 || node >= t.nodes then invalid_arg "Engine.spawn: bad node";
  let fiber = make_fiber t ~node ~name in
  schedule t ~at:(jittered t at) (fun () ->
      if valid t fiber then exec_fiber t fiber main else fiber_done t fiber);
  tid_of fiber

let spawn t ~node ?(name = "fiber") main =
  if not t.alive.(node) then invalid_arg "Engine.spawn: node is down";
  spawn_fiber t ~node ~at:t.time ~name main

let spawn_immediate t ~node ?(name = "fiber") main =
  if node < 0 || node >= t.nodes then invalid_arg "Engine.spawn_immediate";
  if not t.alive.(node) then invalid_arg "Engine.spawn_immediate: node is down";
  let fiber = make_fiber t ~node ~name in
  exec_fiber t fiber main

let spawn_at t ~node ~at ?(name = "fiber") main =
  ignore (spawn_fiber t ~node ~at ~name main)

let run ?(until = infinity) t =
  let rec loop () =
    match Pqueue.peek_priority t.events with
    | None -> ()
    | Some at when at > until -> t.time <- until
    | Some _ -> (
      match Pqueue.pop t.events with
      | None -> ()
      | Some (at, cb) ->
        if at > t.time then t.time <- at;
        Obs.Metric.incr t.c_dispatched;
        let depth = float_of_int (Pqueue.length t.events) in
        Obs.Metric.set t.g_ready depth;
        Obs.Metric.set_max t.g_ready_max depth;
        cb ();
        loop ())
  in
  loop ()

let crash_node t n =
  if t.alive.(n) then begin
    t.alive.(n) <- false;
    t.node_inc.(n) <- t.node_inc.(n) + 1;
    t.free_cores.(n) <- t.cores;
    let waiting = Queue.create () in
    Queue.transfer t.cpu_wait.(n) waiting;
    Queue.iter (fun (fiber, _, _, k) -> kill t fiber k) waiting;
    let victims =
      Hashtbl.fold
        (fun _ fiber acc -> if node_of fiber = n then fiber :: acc else acc)
        t.fibers []
    in
    let kill_parked fiber =
      match fiber.parked with
      | Some k ->
        fiber.parked <- None;
        kill t fiber k
      | None -> ()
    in
    List.iter kill_parked victims
  end

let restart_node t n = t.alive.(n) <- true

(* Fiber-context operations. *)
let now () = perform Protocol.E_now
let self () = (perform Protocol.E_self).Protocol.fi_tid

let self_opt () =
  match perform Protocol.E_self with
  | info -> Some info.Protocol.fi_tid
  | exception Effect.Unhandled _ -> None
let self_name () = (perform Protocol.E_self).Protocol.fi_name
let self_node () = (perform Protocol.E_self).Protocol.fi_node
let work d = perform (Protocol.E_work d)
let sleep d = perform (Protocol.E_sleep d)
let park register = perform (Protocol.E_park register)
let yield () = perform Protocol.E_yield
