(** Simulated message-passing network between simulator nodes.

    Stands in for the paper's 40 Gbps interconnect: messages are byte
    strings delivered after a configurable latency (base + exponential
    jitter), FIFO per directed pair, with optional loss and partitions.
    Handlers run in a fresh fiber on the destination node and may block.

    Byte counters let the benchmark harness reproduce the paper's trace
    log-size overhead measurements (§6.3). *)

type t

type handler = src:int -> string -> unit

val create :
  ?base_latency:float -> ?jitter_mean:float -> Engine.t -> t
(** Defaults: 50 µs base latency, 20 µs mean jitter. *)

val engine : t -> Engine.t

val register : t -> node:int -> port:string -> handler -> unit
(** Replaces any previous handler for [(node, port)]. *)

val send : t -> src:int -> dst:int -> port:string -> string -> unit
(** Fire-and-forget.  Silently dropped if the destination is down or
    partitioned away, if the loss process fires, or if no handler is
    registered at delivery time. *)

(** {1 Fault injection} *)

val set_drop_probability : t -> float -> unit

val set_latency_factor : t -> float -> unit
(** Multiply every subsequent delivery's latency (base and jitter) by
    this factor — the nemesis knob for slow links and message reordering
    (a larger jitter reorders more messages across directed pairs).
    1.0 restores normal service; raises [Invalid_argument] if the factor
    is not positive. *)

val latency_factor : t -> float

val partition : t -> int -> int -> unit
(** Symmetric: blocks both directions. *)

val heal : t -> int -> int -> unit
val heal_all : t -> unit

(** {1 Statistics}

    Thin views over the engine's {!Obs} registry (subsystem ["net"]):
    totals plus per-link ([src]/[dst]-labelled) and per-port counters are
    registered there, so exporters see them without extra plumbing. *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_dropped : t -> int
(** Messages lost to partitions or the random loss process. *)

val bytes_sent_on_port : t -> string -> int
val reset_stats : t -> unit
