(* Contended hand-off picks a uniformly random waiter, modelling the OS
   scheduler's freedom; this is the nondeterminism source Rex records.

   A subtlety exploited throughout: the simulator only switches fibers at
   effect points, and the only effects below are [park] and the immediate
   [self]; every state update between two blocking points is atomic, so no
   extra latching is needed. *)

let pick_out rng l =
  match l with
  | [] -> None
  | l ->
    let i = Rng.int rng (List.length l) in
    let rec split k acc = function
      | [] -> assert false
      | x :: rest ->
        if k = i then Some (x, List.rev_append acc rest)
        else split (k + 1) (x :: acc) rest
    in
    split 0 [] l

module Mutex = struct
  type t = {
    rng : Rng.t;
    obs : Obs.t;
    h_wait : Obs.Histogram.t;
    mutable holder : Engine.tid option;
    mutable waiters : (Engine.tid * Engine.waker) list;
  }

  let create eng =
    let obs = Engine.obs eng in
    {
      rng = Rng.split (Engine.rng eng);
      obs;
      h_wait = Obs.histogram obs ~subsystem:"sim" "lock_wait";
      holder = None;
      waiters = [];
    }

  let lock m =
    let me = Engine.self () in
    match m.holder with
    | None -> m.holder <- Some me
    | Some _ ->
      let t0 = Engine.now () in
      Engine.park (fun w -> m.waiters <- (me, w) :: m.waiters);
      let waited = Engine.now () -. t0 in
      Obs.Histogram.observe m.h_wait waited;
      let sp = Obs.spans m.obs in
      if Obs.Span.enabled sp then
        Obs.Span.complete sp ~cat:"lock" ~pid:(Engine.self_node ()) ~tid:me
          ~name:"lock_wait" ~ts:t0 ~dur:waited ()

  let try_lock m =
    match m.holder with
    | None ->
      m.holder <- Some (Engine.self ());
      true
    | Some _ -> false

  let unlock m =
    let me = Engine.self () in
    match m.holder with
    | Some h when h = me -> (
      match pick_out m.rng m.waiters with
      | None -> m.holder <- None
      | Some ((tid, w), rest) ->
        (* Direct hand-off: the woken fiber already owns the lock when its
           [lock] call returns. *)
        m.waiters <- rest;
        m.holder <- Some tid;
        Engine.wake w)
    | _ -> invalid_arg "Msync.Mutex.unlock: caller does not hold the lock"

  let locked m = m.holder <> None
  let holder m = m.holder
end

module Cond = struct
  type t = { rng : Rng.t; mutable waiters : Engine.waker list }

  let create eng = { rng = Rng.split (Engine.rng eng); waiters = [] }

  let wait c m =
    Mutex.unlock m;
    Engine.park (fun w -> c.waiters <- w :: c.waiters);
    Mutex.lock m

  let signal c =
    match pick_out c.rng c.waiters with
    | None -> ()
    | Some (w, rest) ->
      c.waiters <- rest;
      Engine.wake w

  let broadcast c =
    let ws = c.waiters in
    c.waiters <- [];
    List.iter Engine.wake ws
end

module Rwlock = struct
  type kind = R | W

  type t = {
    rng : Rng.t;
    mutable readers : int;
    mutable writer : Engine.tid option;
    mutable waiters : (kind * Engine.tid * Engine.waker) list;
  }

  let create eng =
    { rng = Rng.split (Engine.rng eng); readers = 0; writer = None; waiters = [] }

  let rd_lock l =
    let me = Engine.self () in
    (* A reader barges only when no writer holds or waits, so writers are
       not starved under a read-heavy workload. *)
    if l.writer = None && l.waiters = [] then l.readers <- l.readers + 1
    else Engine.park (fun w -> l.waiters <- (R, me, w) :: l.waiters)

  let wr_lock l =
    let me = Engine.self () in
    if l.writer = None && l.readers = 0 then l.writer <- Some me
    else Engine.park (fun w -> l.waiters <- (W, me, w) :: l.waiters)

  let dispatch l =
    match pick_out l.rng l.waiters with
    | None -> ()
    | Some ((W, tid, w), rest) ->
      l.waiters <- rest;
      l.writer <- Some tid;
      Engine.wake w
    | Some ((R, _, w), rest) ->
      (* Admitting one reader admits every waiting reader. *)
      let readers, writers =
        List.partition (fun (kind, _, _) -> kind = R) rest
      in
      l.waiters <- writers;
      l.readers <- 1 + List.length readers;
      Engine.wake w;
      List.iter (fun (_, _, w) -> Engine.wake w) readers

  let rd_unlock l =
    if l.readers <= 0 then invalid_arg "Msync.Rwlock.rd_unlock: not read-held";
    l.readers <- l.readers - 1;
    if l.readers = 0 then dispatch l

  let wr_unlock l =
    let me = Engine.self () in
    match l.writer with
    | Some h when h = me ->
      l.writer <- None;
      dispatch l
    | _ -> invalid_arg "Msync.Rwlock.wr_unlock: caller is not the writer"

  let holders l =
    match l.writer with
    | Some tid -> `Writer tid
    | None -> if l.readers = 0 then `Free else `Readers l.readers
end

module Sem = struct
  type t = { rng : Rng.t; mutable count : int; mutable waiters : Engine.waker list }

  let create eng n =
    if n < 0 then invalid_arg "Msync.Sem.create: negative count";
    { rng = Rng.split (Engine.rng eng); count = n; waiters = [] }

  let acquire s =
    if s.count > 0 then s.count <- s.count - 1
    else Engine.park (fun w -> s.waiters <- w :: s.waiters)

  let try_acquire s =
    if s.count > 0 then begin
      s.count <- s.count - 1;
      true
    end
    else false

  let release s =
    match pick_out s.rng s.waiters with
    | None -> s.count <- s.count + 1
    | Some (w, rest) ->
      (* Hand-off: the permit passes directly to the woken fiber. *)
      s.waiters <- rest;
      Engine.wake w

  let value s = s.count
end
