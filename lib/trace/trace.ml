module Cut = struct
  type t = int array

  let zero ~slots = Array.make slots 0

  let of_array a =
    if Array.exists (fun w -> w < 0) a then invalid_arg "Cut.of_array";
    Array.copy a

  let to_array = Array.copy
  let slots = Array.length
  let watermark c s = c.(s)
  let includes c (id : Event.Id.t) = id.clock <= c.(id.slot)

  let leq a b =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
    Array.length b = n && go 0

  let equal a b = a = b
  let min a b = Array.mapi (fun i v -> Stdlib.min v b.(i)) a
  let pp = Fmt.(brackets (array ~sep:comma int))
  let write b c = Codec.write_array b Codec.write_uvarint c
  let read s = Codec.read_array s Codec.read_uvarint
end

type slot_data = {
  events : Event.t Vec.t;
  edges : (Event.Id.t * Event.Id.t) Vec.t;
      (* edges whose destination lies in this slot, destination clock
         nondecreasing *)
}

type t = {
  base : int array;
      (* clocks at or below the base are before this trace object's
         horizon (a checkpoint cut); their events are not materialized.
         Advanced in place by [compact]. *)
  slot_data : slot_data array;
  incoming_tbl : (int * int, Event.Id.t list) Hashtbl.t;
  mutable n_events : int;
  mutable n_edges : int;
  mutable n_compactions : int;
      (* bumped by [compact]; extraction cursors use it to notice that
         vec indices shifted under them *)
}

let create ?base ~slots () =
  if slots <= 0 then invalid_arg "Trace.create";
  let base =
    match base with
    | None -> Array.make slots 0
    | Some b ->
      if Array.length b <> slots then invalid_arg "Trace.create: base arity";
      Array.copy b
  in
  {
    base;
    slot_data =
      Array.init slots (fun _ -> { events = Vec.create (); edges = Vec.create () });
    incoming_tbl = Hashtbl.create 256;
    n_events = 0;
    n_edges = 0;
    n_compactions = 0;
  }

let num_slots t = Array.length t.slot_data
let base_cut t = Array.copy t.base
let slot_end t s = t.base.(s) + Vec.length t.slot_data.(s).events

let append t (e : Event.t) =
  let s = e.id.slot in
  if s < 0 || s >= num_slots t then invalid_arg "Trace.append: bad slot";
  if e.id.clock <> slot_end t s + 1 then
    invalid_arg
      (Printf.sprintf "Trace.append: clock %d in slot %d, expected %d"
         e.id.clock s (slot_end t s + 1));
  Vec.push t.slot_data.(s).events e;
  t.n_events <- t.n_events + 1

(* A source may predate the trace's horizon: the event itself is gone (a
   checkpoint subsumed it) but referring to it in an edge is legal — a
   replayer's scoreboard starts at the base, so such edges are trivially
   satisfied. *)
let valid_src t (id : Event.Id.t) =
  id.slot >= 0 && id.slot < num_slots t && id.clock >= 1
  && id.clock <= slot_end t id.slot

let contains t (id : Event.Id.t) =
  valid_src t id && id.clock > t.base.(id.slot)

let add_edge t ~src ~dst =
  if not (valid_src t src) then invalid_arg "Trace.add_edge: src not in trace";
  if not (contains t dst) then invalid_arg "Trace.add_edge: dst not in trace";
  if src.Event.Id.slot = dst.Event.Id.slot then
    invalid_arg "Trace.add_edge: intra-slot edge (program order is implicit)";
  let sd = t.slot_data.(dst.slot) in
  (match Vec.last sd.edges with
  | Some (_, prev_dst) when prev_dst.Event.Id.clock > dst.clock ->
    invalid_arg "Trace.add_edge: destination clocks must be nondecreasing"
  | _ -> ());
  Vec.push sd.edges (src, dst);
  t.n_edges <- t.n_edges + 1;
  let key = (dst.slot, dst.clock) in
  let prev = Option.value (Hashtbl.find_opt t.incoming_tbl key) ~default:[] in
  Hashtbl.replace t.incoming_tbl key (src :: prev)

let find t (id : Event.Id.t) =
  if contains t id then
    Some (Vec.get t.slot_data.(id.slot).events (id.clock - t.base.(id.slot) - 1))
  else None

let incoming t (id : Event.Id.t) =
  Option.value (Hashtbl.find_opt t.incoming_tbl (id.slot, id.clock)) ~default:[]

let end_cut t = Array.init (num_slots t) (slot_end t)

let event_count t = t.n_events
let edge_count t = t.n_edges
let incoming_entries t = Hashtbl.length t.incoming_tbl
let compactions t = t.n_compactions

let iter_events t f =
  Array.iter (fun sd -> Vec.iter f sd.events) t.slot_data

let iter_edges t f =
  Array.iter (fun sd -> Vec.iter (fun (src, dst) -> f ~src ~dst) sd.edges)
    t.slot_data

let pp ppf t =
  Fmt.pf ppf "trace<%d slots, %d events, %d edges, end %a>" (num_slots t)
    (event_count t) (edge_count t) Cut.pp (end_cut t)

let is_consistent t cut =
  let ok = ref true in
  iter_edges t (fun ~src ~dst ->
      if Cut.includes cut dst && not (Cut.includes cut src) then ok := false);
  !ok

let last_consistent t cut =
  let c = Array.copy cut in
  let changed = ref true in
  while !changed do
    changed := false;
    iter_edges t (fun ~src ~dst ->
        if
          dst.Event.Id.clock <= c.(dst.slot)
          && src.Event.Id.clock > c.(src.slot)
        then begin
          c.(dst.slot) <- dst.clock - 1;
          changed := true
        end)
  done;
  c

(* First index in [edges] whose destination clock exceeds [wm]; edges are
   sorted by destination clock. *)
let edge_lower_bound edges wm =
  let n = Vec.length edges in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let _, dst = Vec.get edges mid in
      if dst.Event.Id.clock <= wm then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

(* Drop everything at or below [upto] in place: a checkpoint at that cut
   subsumes those events, and edges pointing below the new horizon are
   trivially satisfied during replay (see [valid_src]).  Watermarks below
   the current base are clamped, so compacting with a stale cut is a
   no-op rather than an error — a lagging replica compacts as far as it
   safely can now and catches up at the next checkpoint. *)
let compact t ~upto =
  if Cut.slots upto <> num_slots t then invalid_arg "Trace.compact: cut arity";
  if not (Cut.leq upto (end_cut t)) then
    invalid_arg "Trace.compact: cut beyond trace end";
  let dropped = ref false in
  for s = 0 to num_slots t - 1 do
    let wm = Stdlib.max (Cut.watermark upto s) t.base.(s) in
    let sd = t.slot_data.(s) in
    let n_ev = wm - t.base.(s) in
    if n_ev > 0 then begin
      Vec.drop_front sd.events n_ev;
      t.n_events <- t.n_events - n_ev;
      (* All edges into a given destination share one table entry, and all
         of them drop together (same destination clock), so removing the
         key once per dropped edge is exact. *)
      let n_ed = edge_lower_bound sd.edges wm in
      if n_ed > 0 then begin
        for i = 0 to n_ed - 1 do
          let _, (dst : Event.Id.t) = Vec.get sd.edges i in
          Hashtbl.remove t.incoming_tbl (dst.slot, dst.clock)
        done;
        Vec.drop_front sd.edges n_ed;
        t.n_edges <- t.n_edges - n_ed
      end;
      t.base.(s) <- wm;
      dropped := true
    end
  done;
  if !dropped then t.n_compactions <- t.n_compactions + 1

let is_prefix t ~of_ =
  num_slots t = num_slots of_
  && t.base = of_.base
  && Cut.leq (end_cut t) (end_cut of_)
  &&
  let ok = ref true in
  for s = 0 to num_slots t - 1 do
    let a = t.slot_data.(s) and b = of_.slot_data.(s) in
    for i = 0 to Vec.length a.events - 1 do
      if Vec.get a.events i <> Vec.get b.events i then ok := false
    done;
    (* Edges of the prefix must be exactly the larger trace's edges whose
       destination falls inside the prefix. *)
    let wm = slot_end t s in
    let expected = edge_lower_bound b.edges wm in
    if Vec.length a.edges <> expected then ok := false
    else
      for i = 0 to expected - 1 do
        if Vec.get a.edges i <> Vec.get b.edges i then ok := false
      done
  done;
  !ok

module Delta = struct
  type trace = t

  type t = {
    base : Cut.t;
    upto : Cut.t;
    events : Event.t list;
    edges : (Event.Id.t * Event.Id.t) list;
  }

  let extract ?upto (tr : trace) ~base =
    if Cut.slots base <> num_slots tr then invalid_arg "Delta.extract";
    let upto = Option.value upto ~default:(end_cut tr) in
    if not (Cut.leq base upto) || not (Cut.leq upto (end_cut tr)) then
      invalid_arg "Delta.extract: cuts out of range";
    if not (Cut.leq tr.base base) then
      invalid_arg "Delta.extract: base below trace horizon";
    (* Cons in reverse traversal order — slots and indices descending — so
       the result is ascending with no intermediate lists. *)
    let events = ref [] in
    let edges = ref [] in
    for s = num_slots tr - 1 downto 0 do
      let sd = tr.slot_data.(s) in
      let lo = Cut.watermark base s - tr.base.(s)
      and hi = Cut.watermark upto s - tr.base.(s) in
      for i = hi - 1 downto lo do
        events := Vec.get sd.events i :: !events
      done;
      (* Edge slicing is by absolute destination clock, not vec index —
         the two differ on a trace with a checkpoint base. *)
      let e_lo = edge_lower_bound sd.edges (Cut.watermark base s)
      and e_hi = edge_lower_bound sd.edges (Cut.watermark upto s) in
      for i = e_hi - 1 downto e_lo do
        edges := Vec.get sd.edges i :: !edges
      done
    done;
    { base; upto; events = !events; edges = !edges }

  (* A cursor remembers where the previous extraction stopped — the cut
     and, crucially, the per-slot vec index of the first unconsumed edge —
     so the steady-state proposer pays O(new events + new edges) per
     interval instead of re-binary-searching a history that grows without
     bound between checkpoints. *)
  type cursor = {
    mutable cur_base : int array;  (* where the next extraction starts *)
    cur_edge_idx : int array;  (* per-slot index of first unconsumed edge *)
    mutable cur_gen : int;  (* trace compaction generation for the indices *)
  }

  let cursor (tr : trace) ~base =
    if Cut.slots base <> num_slots tr then invalid_arg "Delta.cursor: arity";
    if not (Cut.leq tr.base base) then
      invalid_arg "Delta.cursor: base below trace horizon";
    if not (Cut.leq base (end_cut tr)) then
      invalid_arg "Delta.cursor: base beyond trace end";
    {
      cur_base = Cut.to_array base;
      cur_edge_idx =
        Array.init (num_slots tr) (fun s ->
            edge_lower_bound tr.slot_data.(s).edges (Cut.watermark base s));
      cur_gen = tr.n_compactions;
    }

  let cursor_base c = Array.copy c.cur_base

  let extract_next ?upto (tr : trace) (c : cursor) =
    let slots = num_slots tr in
    if Array.length c.cur_base <> slots then
      invalid_arg "Delta.extract_next: arity";
    let base = c.cur_base in
    if not (Cut.leq tr.base base) then
      invalid_arg "Delta.extract_next: cursor base below trace horizon";
    let upto = Option.value upto ~default:(end_cut tr) in
    if not (Cut.leq base upto) || not (Cut.leq upto (end_cut tr)) then
      invalid_arg "Delta.extract_next: cuts out of range";
    if c.cur_gen <> tr.n_compactions then begin
      (* A compaction shifted the vec indices under us (at most once per
         checkpoint); re-derive edge positions from the absolute clocks. *)
      for s = 0 to slots - 1 do
        c.cur_edge_idx.(s) <- edge_lower_bound tr.slot_data.(s).edges base.(s)
      done;
      c.cur_gen <- tr.n_compactions
    end;
    let events = ref [] in
    let edges = ref [] in
    let stops = Array.make slots 0 in
    for s = slots - 1 downto 0 do
      let sd = tr.slot_data.(s) in
      let lo = base.(s) - tr.base.(s)
      and hi = Cut.watermark upto s - tr.base.(s) in
      for i = hi - 1 downto lo do
        events := Vec.get sd.events i :: !events
      done;
      (* Walk forward from the cached index: O(edges in this delta), no
         search over the accumulated history. *)
      let wm = Cut.watermark upto s in
      let n = Vec.length sd.edges in
      let j = ref c.cur_edge_idx.(s) in
      while !j < n && (snd (Vec.get sd.edges !j)).Event.Id.clock <= wm do
        incr j
      done;
      stops.(s) <- !j;
      for i = !j - 1 downto c.cur_edge_idx.(s) do
        edges := Vec.get sd.edges i :: !edges
      done
    done;
    let d =
      { base = Array.copy base; upto; events = !events; edges = !edges }
    in
    c.cur_base <- Cut.to_array upto;
    Array.blit stops 0 c.cur_edge_idx 0 slots;
    d

  let is_empty d = d.events = [] && d.edges = []

  (* Validate fully before mutating so a malformed delta leaves the trace
     untouched. *)
  let validate (tr : trace) (d : t) =
    let slots = num_slots tr in
    if Cut.slots d.base <> slots || Cut.slots d.upto <> slots then
      Error "delta cut arity mismatch"
    else if not (Cut.equal (end_cut tr) d.base) then
      Error
        (Fmt.str "delta base %a does not match trace end %a" Cut.pp d.base
           Cut.pp (end_cut tr))
    else if not (Cut.leq d.base d.upto) then Error "delta upto below base"
    else begin
      let next = Array.init slots (fun s -> Cut.watermark d.base s + 1) in
      let events_ok =
        List.for_all
          (fun (e : Event.t) ->
            let s = e.id.slot in
            s >= 0 && s < slots && e.id.clock = next.(s)
            && begin
                 next.(s) <- next.(s) + 1;
                 e.id.clock <= Cut.watermark d.upto s
               end)
          d.events
      in
      let reached =
        Array.for_all2 (fun n w -> n = w + 1) next (Cut.to_array d.upto)
      in
      let last_dst = Array.make slots 0 in
      let edges_ok =
        List.for_all
          (fun ((src : Event.Id.t), (dst : Event.Id.t)) ->
            src.slot <> dst.slot && Cut.includes d.upto src
            && Cut.includes d.upto dst
            && dst.clock > Cut.watermark d.base dst.slot
            && dst.clock >= last_dst.(dst.slot)
            && begin
                 last_dst.(dst.slot) <- dst.clock;
                 true
               end)
          d.edges
      in
      if not events_ok then Error "delta events not contiguous"
      else if not reached then Error "delta events do not reach its upto cut"
      else if not edges_ok then Error "delta edges malformed"
      else Ok ()
    end

  let apply (tr : trace) (d : t) =
    match validate tr d with
    | Error _ as e -> e
    | Ok () ->
      List.iter (append tr) d.events;
      List.iter (fun (src, dst) -> add_edge tr ~src ~dst) d.edges;
      Ok ()

  (* Clock-aligned apply for recovery: a replica rebuilding its trace from
     a checkpoint replays committed deltas whose ranges may partly overlap
     what it already holds (or what the checkpoint subsumed).  Events at
     or below the current end are skipped; gaps are an error. *)
  let apply_overlapping (tr : trace) (d : t) =
    if Cut.slots d.upto <> num_slots tr then Error "delta arity mismatch"
    else begin
      let before = end_cut tr in
      let bad = ref None in
      List.iter
        (fun (e : Event.t) ->
          if !bad = None then
            let s = e.Event.id.slot in
            if s < 0 || s >= num_slots tr then bad := Some "bad slot"
            else if e.id.clock <= slot_end tr s then ()
            else if e.id.clock = slot_end tr s + 1 then append tr e
            else
              bad :=
                Some
                  (Printf.sprintf "gap in slot %d: at %d, delta gives %d" s
                     (slot_end tr s) e.id.clock))
        d.events;
      match !bad with
      | Some msg -> Error msg
      | None ->
        List.iter
          (fun ((src : Event.Id.t), (dst : Event.Id.t)) ->
            (* Only edges whose destination was appended just now. *)
            if
              dst.clock > Cut.watermark before dst.slot
              && contains tr dst && valid_src tr src
              && src.slot <> dst.slot
            then add_edge tr ~src ~dst)
          d.edges;
        Ok ()
    end

  (* Wire format v1 (magic 0xD7): slot-grouped with implied ids.

       0xD7
       base cut
       per slot s: uvarint (upto(s) - base(s))
       per slot s: that many event bodies, clocks implied contiguous
       per slot s: uvarint edge count, then for each edge whose dst is s:
         uvarint dst-clock delta (from the previous dst; first from base(s))
         uvarint src slot
         varint  (dst clock - src clock)

     Ids are never spelled out: event ids follow from position, edge
     destination clocks are deltas along the nondecreasing per-slot order,
     and source clocks ride as small signed offsets from their destination
     (causal edges point backwards a short causal distance, not a short
     absolute clock).

     The legacy v0 format (base cut, upto cut, explicit-id event list,
     explicit-endpoint edge list) begins with the base cut's slot-count
     uvarint, which can collide with the magic only for >= 87 slots —
     far above the runtime's slot cap — so [read] dispatches on the first
     byte and still accepts v0 streams from older nodes. *)

  let magic_v1 = 0xd7

  let write b d =
    let slots = Cut.slots d.base in
    if Cut.slots d.upto <> slots then invalid_arg "Delta.write: cut arity";
    Codec.write_byte b magic_v1;
    Cut.write b d.base;
    for s = 0 to slots - 1 do
      let n = Cut.watermark d.upto s - Cut.watermark d.base s in
      if n < 0 then invalid_arg "Delta.write: upto below base";
      Codec.write_uvarint b n
    done;
    let next = Array.init slots (fun s -> Cut.watermark d.base s + 1) in
    let ev_by_slot = Array.make slots [] in
    List.iter
      (fun (e : Event.t) ->
        let s = e.id.slot in
        if s < 0 || s >= slots then invalid_arg "Delta.write: bad event slot";
        if e.id.clock <> next.(s) then
          invalid_arg "Delta.write: events not contiguous";
        next.(s) <- next.(s) + 1;
        ev_by_slot.(s) <- e :: ev_by_slot.(s))
      d.events;
    for s = 0 to slots - 1 do
      if next.(s) <> Cut.watermark d.upto s + 1 then
        invalid_arg "Delta.write: events do not reach the upto cut";
      List.iter (Event.write_body b) (List.rev ev_by_slot.(s))
    done;
    let ed_by_slot = Array.make slots [] in
    let ed_count = Array.make slots 0 in
    List.iter
      (fun ((_, (dst : Event.Id.t)) as e) ->
        let s = dst.slot in
        if s < 0 || s >= slots then invalid_arg "Delta.write: bad edge slot";
        ed_by_slot.(s) <- e :: ed_by_slot.(s);
        ed_count.(s) <- ed_count.(s) + 1)
      d.edges;
    for s = 0 to slots - 1 do
      Codec.write_uvarint b ed_count.(s);
      let prev = ref (Cut.watermark d.base s) in
      List.iter
        (fun ((src : Event.Id.t), (dst : Event.Id.t)) ->
          let dd = dst.clock - !prev in
          if dd < 0 then invalid_arg "Delta.write: edge dst clocks decreasing";
          Codec.write_uvarint b dd;
          prev := dst.clock;
          Codec.write_uvarint b src.slot;
          Codec.write_varint b (dst.clock - src.clock))
        (List.rev ed_by_slot.(s))
    done

  let read_v0 s =
    let base = Cut.read s in
    let upto = Cut.read s in
    let events = Codec.read_list s Event.read in
    let edges =
      Codec.read_list s (fun s ->
          let src = Event.Id.read s in
          let dst = Event.Id.read s in
          (src, dst))
    in
    { base; upto; events; edges }

  let read_v1 s =
    let base = Cut.read s in
    let slots = Cut.slots base in
    let counts = Array.make slots 0 in
    for sl = 0 to slots - 1 do
      counts.(sl) <- Codec.read_uvarint s
    done;
    let upto = Array.mapi (fun sl b -> b + counts.(sl)) base in
    let events = ref [] in
    for sl = 0 to slots - 1 do
      let b = Cut.watermark base sl in
      for i = 1 to counts.(sl) do
        events := Event.read_body s ~slot:sl ~clock:(b + i) :: !events
      done
    done;
    let edges = ref [] in
    for sl = 0 to slots - 1 do
      let n = Codec.read_uvarint s in
      let prev = ref (Cut.watermark base sl) in
      for _ = 1 to n do
        let dd = Codec.read_uvarint s in
        prev := !prev + dd;
        let src_slot = Codec.read_uvarint s in
        let diff = Codec.read_varint s in
        edges :=
          ( { Event.Id.slot = src_slot; clock = !prev - diff },
            { Event.Id.slot = sl; clock = !prev } )
          :: !edges
      done
    done;
    { base; upto; events = List.rev !events; edges = List.rev !edges }

  let read s =
    if Codec.peek_byte s = magic_v1 then begin
      ignore (Codec.read_byte s : int);
      read_v1 s
    end
    else read_v0 s

  let wire_size d =
    let b = Codec.counting_sink () in
    write b d;
    Codec.length b
end
