type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.arr.(i)

let push v x =
  if v.len = Array.length v.arr then begin
    let cap = max 8 (2 * Array.length v.arr) in
    let arr = Array.make cap x in
    Array.blit v.arr 0 arr 0 v.len;
    v.arr <- arr
  end;
  v.arr.(v.len) <- x;
  v.len <- v.len + 1

let drop_front v n =
  if n < 0 || n > v.len then invalid_arg "Vec.drop_front";
  if n > 0 then
    if n = v.len then begin
      v.arr <- [||];
      v.len <- 0
    end
    else begin
      let len = v.len - n in
      let cap = Array.length v.arr in
      if len * 4 <= cap && cap > 8 then begin
        (* Shrink, which also releases references to dropped elements. *)
        let arr = Array.make (max 8 len) v.arr.(n) in
        Array.blit v.arr n arr 0 len;
        v.arr <- arr
      end
      else begin
        Array.blit v.arr n v.arr 0 len;
        (* Overwrite the vacated tail so dropped elements can be GC'd. *)
        Array.fill v.arr len n v.arr.(len - 1)
      end;
      v.len <- len
    end

let iter f v =
  for i = 0 to v.len - 1 do
    f v.arr.(i)
  done

let iter_from start f v =
  for i = max 0 start to v.len - 1 do
    f v.arr.(i)
  done

let to_list v = List.init v.len (fun i -> v.arr.(i))
let last v = if v.len = 0 then None else Some v.arr.(v.len - 1)
