module Id = struct
  type t = { slot : int; clock : int }

  let compare a b =
    match compare a.slot b.slot with 0 -> compare a.clock b.clock | c -> c

  let equal a b = a.slot = b.slot && a.clock = b.clock
  let pp ppf { slot; clock } = Fmt.pf ppf "(%d,%d)" slot clock

  let write b { slot; clock } =
    Codec.write_uvarint b slot;
    Codec.write_uvarint b clock

  let read s =
    let slot = Codec.read_uvarint s in
    let clock = Codec.read_uvarint s in
    { slot; clock }
end

type kind =
  | Req_start
  | Req_end
  | Timer_fire
  | Acquire
  | Release
  | Try_ok
  | Try_fail
  | Rd_acquire
  | Rd_release
  | Wr_acquire
  | Wr_release
  | Sem_acquire
  | Sem_release
  | Cond_wait
  | Cond_wake
  | Cond_signal
  | Cond_broadcast
  | Nondet
  | Ckpt_mark

type t = {
  id : Id.t;
  kind : kind;
  resource : int;
  version : int;
  payload : string;
}

let kind_tag = function
  | Req_start -> 0
  | Req_end -> 1
  | Timer_fire -> 2
  | Acquire -> 3
  | Release -> 4
  | Try_ok -> 5
  | Try_fail -> 6
  | Rd_acquire -> 7
  | Rd_release -> 8
  | Wr_acquire -> 9
  | Wr_release -> 10
  | Sem_acquire -> 11
  | Sem_release -> 12
  | Cond_wait -> 13
  | Cond_wake -> 14
  | Cond_signal -> 15
  | Cond_broadcast -> 16
  | Nondet -> 17
  | Ckpt_mark -> 18

let kind_of_tag = function
  | 0 -> Req_start
  | 1 -> Req_end
  | 2 -> Timer_fire
  | 3 -> Acquire
  | 4 -> Release
  | 5 -> Try_ok
  | 6 -> Try_fail
  | 7 -> Rd_acquire
  | 8 -> Rd_release
  | 9 -> Wr_acquire
  | 10 -> Wr_release
  | 11 -> Sem_acquire
  | 12 -> Sem_release
  | 13 -> Cond_wait
  | 14 -> Cond_wake
  | 15 -> Cond_signal
  | 16 -> Cond_broadcast
  | 17 -> Nondet
  | 18 -> Ckpt_mark
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad event kind %d" n))

let kind_to_string = function
  | Req_start -> "req_start"
  | Req_end -> "req_end"
  | Timer_fire -> "timer_fire"
  | Acquire -> "acquire"
  | Release -> "release"
  | Try_ok -> "try_ok"
  | Try_fail -> "try_fail"
  | Rd_acquire -> "rd_acquire"
  | Rd_release -> "rd_release"
  | Wr_acquire -> "wr_acquire"
  | Wr_release -> "wr_release"
  | Sem_acquire -> "sem_acquire"
  | Sem_release -> "sem_release"
  | Cond_wait -> "cond_wait"
  | Cond_wake -> "cond_wake"
  | Cond_signal -> "cond_signal"
  | Cond_broadcast -> "cond_broadcast"
  | Nondet -> "nondet"
  | Ckpt_mark -> "ckpt_mark"

let pp ppf e =
  Fmt.pf ppf "%a %s r%d v%d" Id.pp e.id (kind_to_string e.kind) e.resource
    e.version

let write b e =
  Id.write b e.id;
  Codec.write_byte b (kind_tag e.kind);
  Codec.write_uvarint b e.resource;
  Codec.write_uvarint b e.version;
  Codec.write_string b e.payload

let read s =
  let id = Id.read s in
  let kind = kind_of_tag (Codec.read_byte s) in
  let resource = Codec.read_uvarint s in
  let version = Codec.read_uvarint s in
  let payload = Codec.read_string s in
  { id; kind; resource; version; payload }

(* Body-only codec for slot-grouped containers (the v1 delta wire format):
   the id is implied by position, saving its 2-4 bytes per event. *)
let write_body b e =
  Codec.write_byte b (kind_tag e.kind);
  Codec.write_uvarint b e.resource;
  Codec.write_uvarint b e.version;
  Codec.write_string b e.payload

let read_body s ~slot ~clock =
  let kind = kind_of_tag (Codec.read_byte s) in
  let resource = Codec.read_uvarint s in
  let version = Codec.read_uvarint s in
  let payload = Codec.read_string s in
  { id = { Id.slot; clock }; kind; resource; version; payload }

let wire_size e =
  let b = Codec.counting_sink () in
  write b e;
  Codec.length b
