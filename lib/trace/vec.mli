(** Growable arrays (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val push : 'a t -> 'a -> unit

val drop_front : 'a t -> int -> unit
(** [drop_front v n] removes the first [n] elements in place (indices
    shift down by [n]).  Shrinks the backing array when three quarters
    empty; dropped elements are unreferenced either way. *)

val iter : ('a -> unit) -> 'a t -> unit
val iter_from : int -> ('a -> unit) -> 'a t -> unit
(** [iter_from i f v] applies [f] to elements [i .. length-1]. *)

val to_list : 'a t -> 'a list
val last : 'a t -> 'a option
