(** Partially-ordered execution traces (paper §2.1).

    A trace is, per thread slot, a sequence of {!Event.t}s in local-clock
    order, plus directed causal edges between events of different slots.
    The primary appends to its trace while executing; consensus proposals
    carry {!Delta}s of a growing trace; secondaries re-assemble the same
    trace and replay it.

    Appending is strict: event clocks must be contiguous per slot, and an
    edge may only point at events already present (the source may be in
    any slot, the destination must be the latest event of its slot or
    earlier).  This keeps every materialized trace well-formed; the
    paper's "inconsistent cut" phenomenon (§3.2, asynchronous logging) is
    modelled by taking {e cuts} that may slice between an edge's source
    and destination, and repaired with {!last_consistent}. *)

type t

module Cut : sig
  (** A cut assigns each slot a watermark: events with [clock <= watermark]
      are inside the cut. *)

  type t

  val zero : slots:int -> t
  val of_array : int array -> t
  val to_array : t -> int array
  val slots : t -> int
  val watermark : t -> int -> int
  val includes : t -> Event.Id.t -> bool
  val leq : t -> t -> bool
  val equal : t -> t -> bool
  val min : t -> t -> t
  val pp : t Fmt.t
  val write : Codec.sink -> t -> unit
  val read : Codec.source -> t
end

val create : ?base:Cut.t -> slots:int -> unit -> t
(** [base] (default: all zeros) is the trace's horizon: a checkpoint cut
    below which events are not materialized.  A replica recovering from a
    checkpoint replays only events above the base; causal-edge sources at
    or below it are considered already executed. *)

val num_slots : t -> int
val base_cut : t -> Cut.t

(** {1 Growing} *)

val append : t -> Event.t -> unit
(** Raises [Invalid_argument] unless the event's clock is exactly one past
    the slot's current end. *)

val add_edge : t -> src:Event.Id.t -> dst:Event.Id.t -> unit
(** Raises [Invalid_argument] if either endpoint is not in the trace or
    the edge is intra-slot (program order is implicit). *)

(** {1 Reading} *)

val slot_end : t -> int -> int
(** Clock of the last event of the slot (0 if none). *)

val find : t -> Event.Id.t -> Event.t option
val incoming : t -> Event.Id.t -> Event.Id.t list
(** Sources of edges into this event (possibly not yet in the trace). *)

val end_cut : t -> Cut.t

val event_count : t -> int
(** Resident (materialized) events — O(1); excludes anything compacted
    away below the base. *)

val edge_count : t -> int
(** Resident edges — O(1). *)

val incoming_entries : t -> int
(** Number of live entries in the incoming-edge index — O(1); with
    {!event_count} and {!edge_count} this is the trace's resident-memory
    footprint, exported as gauges by the runtime. *)

val iter_events : t -> (Event.t -> unit) -> unit
val iter_edges : t -> (src:Event.Id.t -> dst:Event.Id.t -> unit) -> unit
val pp : t Fmt.t

(** {1 Compaction} *)

val compact : t -> upto:Cut.t -> unit
(** [compact t ~upto] drops, in place, every event and edge whose
    destination lies at or below [upto], and advances the trace's base to
    (the per-slot maximum of the old base and) [upto].  Call it with a
    stable checkpoint cut — one every replica has executed and persisted —
    and the trace's resident size becomes O(window since last checkpoint)
    instead of O(history).

    Edges from below the new base into live events remain, and remain
    legal: a replayer's scoreboard starts at the base, so such sources
    count as already executed.  Per-slot watermarks below the current
    base are clamped (compacting with a stale or partly-stale cut is a
    partial compaction, not an error).  Raises [Invalid_argument] if the
    cut has the wrong arity or lies beyond the trace end.  [upto] should
    be a consistent cut the replica has fully executed; compacting beyond
    either breaks replay. *)

val compactions : t -> int
(** How many calls to {!compact} actually dropped something (the
    compaction generation; extraction cursors key their cached indices
    on it). *)

(** {1 Cut algebra} *)

val is_consistent : t -> Cut.t -> bool
(** No edge crosses out of the cut into it. *)

val last_consistent : t -> Cut.t -> Cut.t
(** Greatest consistent cut below the given one — "the last consistent cut
    contained in a trace [is] the meaning of the proposal" (§3.2). *)

val is_prefix : t -> of_:t -> bool
(** Is this trace a cut of [of_] with identical events and edges?  The
    prefix property of §2.2. *)

(** {1 Deltas: what consensus proposals carry} *)

module Delta : sig
  type trace := t

  type t = {
    base : Cut.t;  (** the already-agreed prefix this extends *)
    upto : Cut.t;  (** the new end *)
    events : Event.t list;  (** per-slot contiguous, clock order *)
    edges : (Event.Id.t * Event.Id.t) list;
  }

  val extract : ?upto:Cut.t -> trace -> base:Cut.t -> t
  (** Everything appended after [base], up to [upto] (default: the current
      end).  [upto] must be a consistent cut, or the delta will fail to
      apply.  Costs a binary search per slot over the resident edge vecs;
      for the repeated steady-state extraction on the proposer path use a
      {!cursor}. *)

  type cursor
  (** Incremental-extraction state: remembers where the previous
      extraction stopped so the next one touches only the new window.
      Tied to the trace it was created from; surviving a {!compact} of
      that trace is handled internally (indices are re-derived), but the
      cursor's base must stay at or above the trace's base — create
      cursors from cuts the compactor is guaranteed not to pass, such as
      the proposer's proposed cut. *)

  val cursor : trace -> base:Cut.t -> cursor
  (** A cursor positioned at [base].  Raises [Invalid_argument] if [base]
      is below the trace's horizon or beyond its end. *)

  val cursor_base : cursor -> Cut.t
  (** The cut the next {!extract_next} will use as its delta base. *)

  val extract_next : ?upto:Cut.t -> trace -> cursor -> t
  (** Like {!extract} with [base = cursor_base c], in O(events + edges of
      the returned delta) — no per-call search over the accumulated
      history.  Advances the cursor to [upto] (default: the trace end). *)

  val apply : trace -> t -> (unit, string) result
  (** Append the delta; fails (leaving the trace unchanged) unless
      [delta.base] equals the trace's current end. *)

  val apply_overlapping : trace -> t -> (unit, string) result
  (** Clock-aligned apply for checkpoint recovery: events at or below the
      trace's current end are skipped, later ones appended; a gap is an
      error (the trace may then be partly extended). *)

  val is_empty : t -> bool

  val write : Codec.sink -> t -> unit
  (** Compact wire format (v1): events grouped by slot with ids implied by
      position, edge clocks delta-encoded.  Only well-formed deltas (as
      {!extract} produces: per-slot contiguous events reaching [upto],
      per-slot nondecreasing edge destinations) can be written; raises
      [Invalid_argument] otherwise. *)

  val read : Codec.source -> t
  (** Decodes both the v1 format and the legacy explicit-id v0 format
      (dispatching on the leading magic byte), so deltas written by older
      nodes still apply.  v1 decoding normalizes event and edge order to
      slot-ascending, which is how {!extract} emits them. *)

  val wire_size : t -> int
  (** Encoded size in bytes, computed with a counting sink — no buffer is
      materialized. *)
end
