(** Synchronization events: the vertices of a Rex trace.

    An event is identified by its thread slot and a local logical clock
    that increases by one for each event the slot logs (paper §2.1).
    Slots — not OS thread ids — name threads, because every replica runs
    the same fixed pool of worker and timer threads and slot [i] on a
    secondary replays slot [i] of the primary. *)

module Id : sig
  type t = { slot : int; clock : int }

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : t Fmt.t
  val write : Codec.sink -> t -> unit
  val read : Codec.source -> t
end

type kind =
  | Req_start  (** a request was assigned to this slot; payload = request bytes *)
  | Req_end  (** the request handler returned *)
  | Timer_fire  (** a background task fired; resource = timer id *)
  | Acquire  (** mutex acquired *)
  | Release  (** mutex released *)
  | Try_ok  (** try_lock succeeded *)
  | Try_fail  (** try_lock failed *)
  | Rd_acquire
  | Rd_release
  | Wr_acquire
  | Wr_release
  | Sem_acquire
  | Sem_release
  | Cond_wait  (** released the mutex and went to sleep *)
  | Cond_wake  (** woken by a signal/broadcast (edge from that event) *)
  | Cond_signal
  | Cond_broadcast
  | Nondet  (** recorded nondeterministic value; payload = the value *)
  | Ckpt_mark  (** checkpoint cut point for this slot *)

type t = {
  id : Id.t;
  kind : kind;
  resource : int;
      (** uid of the lock/semaphore/timer involved; 0 when meaningless *)
  version : int;
      (** resource version (count of state changes) observed at this
          event; used by resource-version divergence checking (§5) *)
  payload : string;  (** request bytes / recorded nondet value; often empty *)
}

val kind_to_string : kind -> string
val pp : t Fmt.t
val write : Codec.sink -> t -> unit
val read : Codec.source -> t

val write_body : Codec.sink -> t -> unit
(** Encode everything but the id, for slot-grouped containers where the id
    is implied by position (the compact delta wire format). *)

val read_body : Codec.source -> slot:int -> clock:int -> t

val wire_size : t -> int
(** Encoded size in bytes — reproduces the paper's "each synchronization
    event adds around 16 bytes to the trace" measurement. *)
