open Sim

type kind =
  | Crash of int
  | Kill_leader
  | Isolate of int
  | Drop of float
  | Slow of float
  | Skew of { node : int; rate : float }
  | Stale_leader of { rate : float }
  | Reconfig
  | Split_merge
  | Upgrade

type fault = { kind : kind; at : float; dur : float }
type schedule = { horizon : float; faults : fault list }

type profile =
  | Crashes
  | Partitions
  | Drops
  | Clock_skew
  | Leader_kills
  | Leases
  | Mixed
  | Reconfigs
  | Splits
  | Upgrades

let profiles =
  [
    ("crash", Crashes);
    ("partition", Partitions);
    ("drop", Drops);
    ("skew", Clock_skew);
    ("leader", Leader_kills);
    ("lease", Leases);
    ("mixed", Mixed);
    ("reconfig", Reconfigs);
    ("split", Splits);
    ("upgrade", Upgrades);
  ]

let profile_of_string s = List.assoc_opt s profiles
let profile_name p = fst (List.find (fun (_, q) -> q = p) profiles)

(* Clock-drift rates stay inside the default lease drift bound (0.2):
   leases must survive any skew the bound admits.  Beyond-bound skew is
   the canary's job ({!Stale_leader}), never a safe-sweep fault. *)
let in_bound_rate rng = 0.8 +. Rng.float rng 0.4

let generate rng profile ~nodes ~allow_restart ~horizon =
  match profile with
  | Reconfigs | Splits | Upgrades ->
    (* Topology profiles: one control-plane operation mid-horizon (it
       pumps the simulation itself, so it occupies a wide window) plus
       light message loss as background stress.  No node crashes: the
       operation is the fault under test, and the checker owns the
       verdict on what it does to the history. *)
    let kind =
      match profile with
      | Reconfigs -> Reconfig
      | Splits -> Split_merge
      | _ -> Upgrade
    in
    let at = horizon *. (0.15 +. Rng.float rng 0.2) in
    let dur = horizon *. (0.2 +. Rng.float rng 0.2) in
    (* The loss window spans the operation: retries (and, under
       --dedup-off, their fresh identities) land mid-migration, which is
       exactly the interleaving the canary must stay able to flag. *)
    let noise =
      {
        kind = Drop (0.05 +. Rng.float rng 0.2);
        at = horizon *. 0.05;
        dur = horizon *. 0.85;
      }
    in
    { horizon; faults = [ noise; { kind; at; dur } ] }
  | Crashes | Partitions | Drops | Clock_skew | Leader_kills | Leases | Mixed
    ->
  let n_faults = 2 + Rng.int rng 3 in
  (* One fault per disjoint time window: a fault's outage ends before the
     next one begins, so a 2f+1 group never loses two nodes at once. *)
  let window = horizon /. float_of_int n_faults in
  let crash_budget = ref (if allow_restart then max_int else 1) in
  let crash_kind victim =
    if !crash_budget > 0 then begin
      decr crash_budget;
      match victim with Some v -> Crash v | None -> Kill_leader
    end
    else Isolate (match victim with Some v -> v | None -> Rng.pick rng nodes)
  in
  let faults =
    List.init n_faults (fun i ->
        let base = float_of_int i *. window in
        let at = base +. (window *. (0.15 +. Rng.float rng 0.4)) in
        let dur = window *. (0.2 +. Rng.float rng 0.35) in
        let kind =
          match profile with
          | Crashes -> crash_kind (Some (Rng.pick rng nodes))
          | Leader_kills -> crash_kind None
          | Partitions -> Isolate (Rng.pick rng nodes)
          | Drops -> Drop (0.05 +. Rng.float rng 0.25)
          | Clock_skew ->
            Skew { node = Rng.pick rng nodes; rate = in_bound_rate rng }
          | Leases -> (
            (* The lease machinery's own trouble: drifting clocks, lost
               heartbeats (isolation), and leader churn racing renewal. *)
            match Rng.int rng 3 with
            | 0 -> Skew { node = Rng.pick rng nodes; rate = in_bound_rate rng }
            | 1 -> Isolate (Rng.pick rng nodes)
            | _ -> crash_kind None)
          | Mixed -> (
            match Rng.int rng 6 with
            | 0 -> crash_kind (Some (Rng.pick rng nodes))
            | 1 -> crash_kind None
            | 2 -> Isolate (Rng.pick rng nodes)
            | 3 -> Drop (0.05 +. Rng.float rng 0.25)
            | 4 -> Skew { node = Rng.pick rng nodes; rate = in_bound_rate rng }
            | _ -> Slow (2. +. Rng.float rng 6.))
          | Reconfigs | Splits | Upgrades -> assert false
        in
        { kind; at; dur })
  in
  { horizon; faults }

let fault_to_string f =
  let kind =
    match f.kind with
    | Crash v -> Printf.sprintf "crash(%d)" v
    | Kill_leader -> "kill-leader"
    | Isolate v -> Printf.sprintf "isolate(%d)" v
    | Drop p -> Printf.sprintf "drop(p=%.3f)" p
    | Slow x -> Printf.sprintf "slow(x%.2f)" x
    | Skew { node; rate } -> Printf.sprintf "skew(%d,x%.2f)" node rate
    | Stale_leader { rate } -> Printf.sprintf "stale-leader(x%.2f)" rate
    | Reconfig -> "reconfig"
    | Split_merge -> "split+merge"
    | Upgrade -> "rolling-upgrade"
  in
  Printf.sprintf "t=%.3f +%.3f %s" f.at f.dur kind

let describe s =
  Printf.sprintf "horizon=%.3f, %d faults" s.horizon (List.length s.faults)
  :: List.map fault_to_string s.faults

let without s i =
  { s with faults = List.filteri (fun j _ -> j <> i) s.faults }

type topo = {
  t_reconfig : (unit -> unit) option;
  t_split : (unit -> int) option;
  t_merge : (int -> unit) option;
  t_upgrade : (unit -> unit) option;
}

let no_topo =
  { t_reconfig = None; t_split = None; t_merge = None; t_upgrade = None }

type target = {
  net : Net.t;
  mutable nodes : int list;
  others : int list;
  crash : int -> unit;
  restart : (int -> unit) option;
  leader : unit -> int option;
  mutable down : int list;
  mutable topo : topo;
}

type action = { at : float; what : string; run : unit -> unit }

let do_crash t v =
  if not (List.mem v t.down) then begin
    t.crash v;
    t.down <- v :: t.down
  end

let do_restart t v =
  match t.restart with
  | Some restart when List.mem v t.down ->
    restart v;
    t.down <- List.filter (fun n -> n <> v) t.down
  | _ -> ()

let actions t schedule =
  let acts = ref [] in
  let add at what run = acts := { at; what; run } :: !acts in
  List.iter
    (fun (f : fault) ->
      let t_end = f.at +. f.dur in
      match f.kind with
      | Crash v ->
        add f.at (Printf.sprintf "crash %d" v) (fun () -> do_crash t v);
        if t.restart <> None then
          add t_end (Printf.sprintf "restart %d" v) (fun () -> do_restart t v)
      | Kill_leader ->
        let victim = ref None in
        add f.at "kill leader" (fun () ->
            match t.leader () with
            | Some l when not (List.mem l t.down) ->
              victim := Some l;
              do_crash t l
            | _ -> ());
        if t.restart <> None then
          add t_end "restart killed leader" (fun () ->
              match !victim with
              | Some v ->
                victim := None;
                do_restart t v
              | None -> ())
      | Isolate v ->
        let peers () =
          List.filter (fun n -> n <> v) (t.nodes @ t.others)
        in
        add f.at (Printf.sprintf "isolate %d" v) (fun () ->
            List.iter (fun p -> Net.partition t.net v p) (peers ()));
        add t_end (Printf.sprintf "reconnect %d" v) (fun () ->
            List.iter (fun p -> Net.heal t.net v p) (peers ()))
      | Drop p ->
        add f.at (Printf.sprintf "drop p=%.3f" p) (fun () ->
            Net.set_drop_probability t.net p);
        add t_end "drop off" (fun () -> Net.set_drop_probability t.net 0.)
      | Slow x ->
        add f.at (Printf.sprintf "slow x%.2f" x) (fun () ->
            Net.set_latency_factor t.net x);
        add t_end "slow off" (fun () -> Net.set_latency_factor t.net 1.)
      | Skew { node; rate } ->
        let eng = Net.engine t.net in
        add f.at (Printf.sprintf "skew %d x%.2f" node rate) (fun () ->
            Engine.set_clock_rate eng ~node rate);
        add t_end (Printf.sprintf "skew %d off" node) (fun () ->
            Engine.set_clock_rate eng ~node 1.0)
      | Stale_leader { rate } ->
        (* The lease-unsafe canary's fault: slow the leader's clock past
           the drift bound so its lease outlives the grants, then cut it
           off from the other replicas only — client links stay up, so a
           fencing-free leader keeps serving reads it can no longer
           defend while the rest of the group elects a successor and
           commits writes. *)
        let eng = Net.engine t.net in
        let victim = ref None in
        add f.at (Printf.sprintf "stale-leader x%.2f" rate) (fun () ->
            match t.leader () with
            | Some l when not (List.mem l t.down) ->
              victim := Some l;
              Engine.set_clock_rate eng ~node:l rate;
              List.iter
                (fun p -> if p <> l then Net.partition t.net l p)
                t.nodes
            | _ -> ());
        add t_end "stale-leader off" (fun () ->
            match !victim with
            | Some l ->
              victim := None;
              Engine.set_clock_rate eng ~node:l 1.0;
              List.iter (fun p -> if p <> l then Net.heal t.net l p) t.nodes
            | None -> ())
      (* Topology operations pump the simulation from driver context
         (where actions fire), so traffic keeps flowing while they run.
         On deployments without the hook they no-op — every profile is
         runnable on every stack.  A Failure (e.g. a migration that
         cannot finish under the ambient faults) is swallowed here: the
         damage, if real, is the checker's to report — frozen keys stall
         the probes, lost writes break linearizability. *)
      | Reconfig ->
        add f.at "reconfig: replace one replica" (fun () ->
            match t.topo.t_reconfig with
            | Some rc -> ( try rc () with Failure _ -> ())
            | None -> ())
      | Split_merge ->
        let group = ref None in
        add f.at "live split" (fun () ->
            match t.topo.t_split with
            | Some split -> ( try group := Some (split ()) with Failure _ -> ())
            | None -> ());
        add t_end "merge the split group back" (fun () ->
            match (t.topo.t_merge, !group) with
            | Some merge, Some g -> (
              group := None;
              try merge g with Failure _ -> ())
            | _ -> ())
      | Upgrade ->
        add f.at "rolling upgrade" (fun () ->
            match t.topo.t_upgrade with
            | Some up -> ( try up () with Failure _ -> ())
            | None -> ()))
    schedule.faults;
  List.stable_sort (fun a b -> compare a.at b.at) (List.rev !acts)

let cure t =
  Net.heal_all t.net;
  Net.set_drop_probability t.net 0.;
  Net.set_latency_factor t.net 1.;
  let eng = Net.engine t.net in
  List.iter
    (fun n -> Engine.set_clock_rate eng ~node:n 1.0)
    (t.nodes @ t.others);
  List.iter (fun v -> do_restart t v) t.down
