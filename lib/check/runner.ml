open Sim
module R = Rex_core

type stack = Rex | Smr | Eve | Sharded | Cbase | Early
type app = Kv | Counter

let stacks =
  [
    ("rex", Rex);
    ("smr", Smr);
    ("eve", Eve);
    ("shard", Sharded);
    ("cbase", Cbase);
    ("early", Early);
  ]
let stack_of_string s = List.assoc_opt s stacks
let stack_name s = fst (List.find (fun (_, x) -> x = s) stacks)
let apps = [ ("kv", Kv); ("counter", Counter) ]
let app_of_string s = List.assoc_opt s apps
let app_name a = fst (List.find (fun (_, x) -> x = a) apps)

type config = {
  stack : stack;
  app : app;
  nemesis : Nemesis.profile;
  seed : int;
  clients : int;
  ops_per_client : int;
  dedup_off : bool;
  reads_via_query : bool;
  lease_unsafe : bool;
  read_ratio : float option;
  checkpoint_interval : float option;
  horizon : float;
  max_steps : int;
}

let default_config ?(clients = 3) ?(ops_per_client = 8) ?(dedup_off = false)
    ?(reads_via_query = false) ?(lease_unsafe = false) ?read_ratio
    ?(checkpoint_interval = None) ?(horizon = 3.0) ?(max_steps = 5_000_000)
    ~stack ~app ~nemesis ~seed () =
  {
    stack;
    app;
    nemesis;
    seed;
    clients;
    ops_per_client;
    dedup_off;
    reads_via_query;
    lease_unsafe;
    read_ratio;
    checkpoint_interval;
    horizon;
    max_steps;
  }

type outcome = {
  config : config;
  schedule : Nemesis.schedule;
  hstats : History.stats;
  result : Lin.result;
  converged : bool;
  live_probe_ok : bool;
  elapsed_virtual : float;
  history_lines : string list;
}

let passed o =
  (match o.result.Lin.verdict with
  | Lin.Linearizable -> true
  | Lin.Non_linearizable _ | Lin.Limit -> false)
  && o.converged && o.live_probe_ok

(* {1 Applications} *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* INC/GET counter guarded by a Rex lock (Rex executes concurrently; the
   recorded lock order keeps replay deterministic).  Unlike the dedup
   smoke's counter, GET does not increment, and INC carries an ignored
   idempotency tag that makes each logical increment's payload unique. *)
let counter_factory () : R.App.factory =
 fun api ->
  let n = ref 0 in
  let lock = R.Api.lock api "ctr" in
  {
    R.App.name = "ctr";
    execute =
      (fun ~request ->
        Rexsync.Lock.with_lock lock (fun () ->
            if starts_with ~prefix:"INC" request then incr n;
            string_of_int !n));
    query = (fun ~request:_ -> string_of_int !n);
    write_checkpoint = (fun sink -> Codec.write_uvarint sink !n);
    read_checkpoint = (fun src -> n := Codec.read_uvarint src);
    digest = (fun () -> string_of_int !n);
  }

(* Timer-less kv store for Eve (which rejects background timers), wire-
   compatible with the register spec. *)
let plain_kv_factory () : R.App.factory =
 fun api ->
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let lock = R.Api.lock api "kv" in
  let execute ~request =
    Rexsync.Lock.with_lock lock (fun () ->
        match Spec.words request with
        | [ "SET"; k; v ] ->
          Hashtbl.replace tbl k v;
          "OK"
        | [ "DEL"; k ] ->
          Hashtbl.remove tbl k;
          "OK"
        | [ "GET"; k ] ->
          Option.value (Hashtbl.find_opt tbl k) ~default:"NOTFOUND"
        | _ -> "ERR:bad-request")
  in
  let bindings () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  {
    R.App.name = "plainkv";
    execute;
    query =
      (fun ~request ->
        match Spec.words request with
        | [ "GET"; k ] ->
          Option.value (Hashtbl.find_opt tbl k) ~default:"NOTFOUND"
        | _ -> "ERR:bad-query");
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b (k, v) ->
            Codec.write_string b k;
            Codec.write_string b v)
          (bindings ()));
    read_checkpoint =
      (fun src ->
        Hashtbl.reset tbl;
        Codec.read_list src (fun s ->
            let k = Codec.read_string s in
            let v = Codec.read_string s in
            (k, v))
        |> List.iter (fun (k, v) -> Hashtbl.replace tbl k v));
    digest = (fun () -> string_of_int (Hashtbl.hash (bindings ())));
  }

let key_of_request req =
  match Spec.words req with
  | "SET" :: k :: _ | "GET" :: k :: _ | "DEL" :: k :: _ -> Some k
  | _ -> None

let spec_of cfg =
  match cfg.app with Kv -> Spec.register | Counter -> Spec.counter

let n_keys = 6

let gen_request cfg rng ~cidx ~opidx =
  match cfg.app with
  | Counter ->
    if opidx mod 4 = 3 then "GET"
    else Printf.sprintf "INC %d.%d" cidx opidx
  | Kv -> (
    let key = Printf.sprintf "k%d" (Rng.int rng n_keys) in
    match cfg.read_ratio with
    | Some r ->
      if Rng.float rng 1.0 < r then Printf.sprintf "GET %s" key
      else Printf.sprintf "SET %s v%d.%d" key cidx opidx
    | None -> (
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 -> Printf.sprintf "SET %s v%d.%d" key cidx opidx
      | 5 -> Printf.sprintf "DEL %s" key
      | _ -> Printf.sprintf "GET %s" key))

let probe_requests cfg =
  match cfg.app with
  | Counter -> [ "GET" ]
  | Kv -> List.init n_keys (fun i -> Printf.sprintf "GET k%d" i)

(* {1 Deployments} *)

type deploy = {
  eng : Engine.t;
  target : Nemesis.target;
  (* [call cidx ~retries req]: update-path request from client [cidx],
     one request identity per invocation of the underlying client's call
     (so [retries:1] in a loop defeats dedup — the canary). *)
  call : int -> retries:int -> string -> string option;
  (* [query cidx req]: read-path request — the lease/quorum fast path
     when the stack has one, exercised when [config.reads_via_query]. *)
  query : int -> string -> string option;
  (* One inner list per replica group; convergence means each group's
     live replicas agree internally (groups hold disjoint key ranges, so
     cross-group digests never match by design). *)
  digests : unit -> string list list;
  diverged : unit -> bool;
}

let allow_restart cfg =
  match cfg.stack with
  | Rex | Sharded -> true
  | Smr | Eve | Cbase | Early -> false

(* The sched stacks run kyoto like the recording stacks: their timer
   barriers replay the autosync tick at a fixed log position, so the
   full timer-bearing app is in scope (Eve still needs the timer-less
   kv). *)
let factory_for cfg =
  match (cfg.stack, cfg.app) with
  | (Rex | Smr | Sharded | Cbase | Early), Kv -> Apps.Kyoto.factory ()
  | Eve, Kv -> plain_kv_factory ()
  | _, Counter -> counter_factory ()

(* Conflict oracles come from the shared module ({!Sched.Conflict}):
   the same key extraction drives Eve's mixer, both sched stacks and
   this harness. *)
let conflict_keys_for cfg =
  match cfg.app with
  | Counter -> Sched.Conflict.counter
  | Kv -> Sched.Conflict.kv

let deploy_rex history_of cfg =
  let ccfg =
    R.Cluster.config ~workers:4
      ~checkpoint_interval:cfg.checkpoint_interval
      ~lease_unsafe:cfg.lease_unsafe ()
  in
  let cluster = R.Cluster.create ~seed:cfg.seed ccfg (factory_for cfg) in
  R.Cluster.start cluster;
  ignore (R.Cluster.await_primary cluster);
  let eng = R.Cluster.engine cluster in
  let history = history_of eng in
  let wire_node n =
    History.wire history [ R.Server.frontend (R.Cluster.server cluster n) ]
  in
  List.iter wire_node (R.Cluster.replica_nodes cluster);
  (* Every later server — restarts, reconfiguration newcomers — gets its
     history tap from this hook (so the restart action below must not
     wire again). *)
  R.Cluster.set_on_new_server cluster
    (Some (fun s -> History.wire history [ R.Server.frontend s ]));
  let target =
    {
      Nemesis.net = R.Cluster.net cluster;
      nodes = R.Cluster.replica_nodes cluster;
      others = [ R.Cluster.client_node cluster ];
      crash = R.Cluster.crash cluster;
      restart = Some (fun n -> R.Cluster.restart cluster n);
      leader =
        (fun () -> Option.map R.Server.node (R.Cluster.primary cluster));
      down = [];
      topo = Nemesis.no_topo;
    }
  in
  target.Nemesis.topo <-
    {
      Nemesis.no_topo with
      Nemesis.t_reconfig =
        Some
          (fun () ->
            (* Replace a live non-primary member through the log. *)
            let primary_node =
              Option.map R.Server.node (R.Cluster.primary cluster)
            in
            match
              R.Cluster.members cluster
              |> List.filter (fun n ->
                     Some n <> primary_node
                     && not (List.mem n target.Nemesis.down))
            with
            | [] -> ()
            | victim :: _ ->
              ignore (R.Cluster.replace_replica cluster victim);
              target.Nemesis.nodes <- R.Cluster.members cluster);
      t_upgrade = Some (fun () -> R.Cluster.rolling_restart cluster);
    };
  let clients =
    Array.init cfg.clients (fun _ -> R.Cluster.client cluster)
  in
  let live_servers () =
    R.Cluster.servers cluster |> Array.to_list
    |> List.filter (fun s -> Engine.node_alive eng (R.Server.node s))
  in
  {
    eng;
    target;
    call =
      (fun cidx ~retries req -> R.Client.call ~retries clients.(cidx) req);
    query = (fun cidx req -> R.Client.query clients.(cidx) req);
    digests = (fun () -> [ List.map R.Server.app_digest (live_servers ()) ]);
    diverged =
      (fun () ->
        match R.Cluster.check_no_divergence cluster with
        | () -> false
        | exception Failure _ -> true);
  }

let deploy_single history_of cfg =
  (* SMR, Eve and the sched stacks share a harness: three replicas on
     nodes 0-2, clients on node 3, no restart path (these stacks have no
     recovery-from-disk). *)
  let eng = Engine.create ~seed:cfg.seed ~cores_per_node:8 ~num_nodes:4 () in
  let history = history_of eng in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let replicas = [ 0; 1; 2 ] in
  (* Each maker returns (fronts, digests, leader, upgrade_node): the
     server arrays are mutable so [upgrade_node] can replace one replica
     in place — crash the node, re-create the server over the {e same}
     Paxos store, replay the committed prefix to rebuild app and session
     state, start, and re-wire the history tap.  That is the rolling
     upgrade path for stacks without checkpoint recovery. *)
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let make_smr () =
    let config =
      R.Config.make ~workers:1 ~replicas ~lease_unsafe:cfg.lease_unsafe ()
    in
    let mk i =
      Smr.create net rpc config ~node:i ~paxos_store:stores.(i)
        (factory_for cfg)
    in
    let servers = Array.init 3 mk in
    Array.iter Smr.start servers;
    let live s = Engine.node_alive eng (Smr.node s) in
    ( (fun () ->
        List.map Smr.frontend (Array.to_list servers)),
      (fun () ->
        Array.to_list servers |> List.filter live
        |> List.map Smr.app_digest),
      (fun () ->
        Array.to_list servers
        |> List.find_opt (fun s -> live s && Smr.is_primary s)
        |> Option.map Smr.node),
      fun i ->
        Engine.crash_node eng i;
        Engine.restart_node eng i;
        let s = mk i in
        Smr.replay s;
        Smr.start s;
        servers.(i) <- s;
        History.wire history [ Smr.frontend s ] )
  in
  let make_eve () =
    let ecfg =
      Eve.default_config ~workers:4 ~replicas
        ~lease_unsafe:cfg.lease_unsafe ()
    in
    let mk i =
      Eve.create net rpc ecfg ~node:i ~paxos_store:stores.(i)
        ~conflict_keys:(conflict_keys_for cfg) (factory_for cfg)
    in
    let servers = Array.init 3 mk in
    Array.iter Eve.start servers;
    let live s = Engine.node_alive eng (Eve.node s) in
    ( (fun () ->
        List.map Eve.frontend (Array.to_list servers)),
      (fun () ->
        Array.to_list servers |> List.filter live
        |> List.map Eve.app_digest),
      (fun () ->
        Array.to_list servers
        |> List.find_opt (fun s -> live s && Eve.is_primary s)
        |> Option.map Eve.node),
      fun i ->
        Engine.crash_node eng i;
        Engine.restart_node eng i;
        let s = mk i in
        Eve.replay s;
        Eve.start s;
        servers.(i) <- s;
        History.wire history [ Eve.frontend s ] )
  in
  let make_sched mode =
    let config =
      R.Config.make ~workers:4 ~replicas ~lease_unsafe:cfg.lease_unsafe ()
    in
    let mk i =
      Sched.Server.create net rpc config ~node:i ~paxos_store:stores.(i)
        ~mode ~conflict:(conflict_keys_for cfg) (factory_for cfg)
    in
    let servers = Array.init 3 mk in
    Array.iter Sched.Server.start servers;
    let live s = Engine.node_alive eng (Sched.Server.node s) in
    ( (fun () -> List.map Sched.Server.frontend (Array.to_list servers)),
      (fun () ->
        Array.to_list servers |> List.filter live
        |> List.map Sched.Server.app_digest),
      (fun () ->
        Array.to_list servers
        |> List.find_opt (fun s -> live s && Sched.Server.is_primary s)
        |> Option.map Sched.Server.node),
      fun i ->
        Engine.crash_node eng i;
        Engine.restart_node eng i;
        let s = mk i in
        Sched.Server.replay s;
        Sched.Server.start s;
        servers.(i) <- s;
        History.wire history [ Sched.Server.frontend s ] )
  in
  let fronts, digests, leader, upgrade_node =
    match cfg.stack with
    | Smr -> make_smr ()
    | Cbase -> make_sched Sched.Exec.Cbase
    | Early -> make_sched Sched.Exec.Early
    | _ -> make_eve ()
  in
  Engine.run ~until:1.0 eng;
  if leader () = None then Engine.run ~until:3.0 eng;
  History.wire history (fronts ());
  let clients =
    Array.init cfg.clients (fun _ -> R.Client.create rpc ~me:3 ~replicas)
  in
  let target =
    {
      Nemesis.net = net;
      nodes = replicas;
      others = [ 3 ];
      crash = Engine.crash_node eng;
      restart = None;
      leader;
      down = [];
      topo = Nemesis.no_topo;
    }
  in
  target.Nemesis.topo <-
    {
      Nemesis.no_topo with
      Nemesis.t_upgrade =
        Some
          (fun () ->
            (* One replica at a time, pumping between restarts so the
               group re-elects before the next one goes down. *)
            List.iter
              (fun i ->
                if not (List.mem i target.Nemesis.down) then begin
                  upgrade_node i;
                  Engine.run ~until:(Engine.clock eng +. 0.3) eng;
                  let deadline = Engine.clock eng +. 5. in
                  while leader () = None && Engine.clock eng < deadline do
                    Engine.run ~until:(Engine.clock eng +. 0.1) eng
                  done
                end)
              replicas);
    };
  {
    eng;
    target;
    call =
      (fun cidx ~retries req -> R.Client.call ~retries clients.(cidx) req);
    query = (fun cidx req -> R.Client.query clients.(cidx) req);
    digests = (fun () -> [ digests () ]);
    diverged = (fun () -> false);
  }

let deploy_sharded history_of cfg =
  let fleet =
    Shard.Fleet.create ~seed:cfg.seed ~groups:2
      ~config:(fun ~group:_ ~replicas ->
        R.Config.make ~workers:4 ~replicas
          ?checkpoint_interval:
            (Option.map Option.some cfg.checkpoint_interval)
          ~lease_unsafe:cfg.lease_unsafe ())
      (fun ~map ~group ->
        Shard.Partition.factory ~map ~group (factory_for cfg))
  in
  Shard.Fleet.start fleet;
  Shard.Fleet.await_primaries fleet;
  let eng = Shard.Fleet.engine fleet in
  let history = history_of eng in
  let clusters = Array.to_list (Shard.Fleet.clusters fleet) in
  let cluster_of n =
    List.find (fun c -> List.mem n (R.Cluster.replica_nodes c)) clusters
  in
  let wire_node n =
    History.wire history
      [ R.Server.frontend (R.Cluster.server (cluster_of n) n) ]
  in
  let nodes = List.concat_map R.Cluster.replica_nodes clusters in
  List.iter wire_node nodes;
  (* Restarts and reconfiguration newcomers are wired through this hook
     (so the restart action below must not wire again). *)
  let wire_server s = History.wire history [ R.Server.frontend s ] in
  List.iter
    (fun c -> R.Cluster.set_on_new_server c (Some wire_server))
    clusters;
  let kills = ref 0 in
  let reconfigs = ref 0 in
  let router = Shard.Fleet.router fleet in
  let target =
    {
      Nemesis.net = Shard.Fleet.net fleet;
      nodes;
      others = [ Shard.Fleet.client_node fleet ];
      crash = (fun n -> R.Cluster.crash (cluster_of n) n);
      restart = Some (fun n -> Shard.Fleet.restart fleet n);
      leader =
        (fun () ->
          let g = !kills mod Shard.Fleet.n_groups fleet in
          incr kills;
          Option.map R.Server.node (Shard.Fleet.primary fleet g));
      down = [];
      topo = Nemesis.no_topo;
    }
  in
  target.Nemesis.topo <-
    {
      Nemesis.t_reconfig =
        Some
          (fun () ->
            let groups = Shard.Fleet.active_groups fleet in
            let g = List.nth groups (!reconfigs mod List.length groups) in
            incr reconfigs;
            ignore (Shard.Fleet.reconfig_group fleet g);
            target.Nemesis.nodes <-
              List.concat_map R.Cluster.replica_nodes
                (Array.to_list (Shard.Fleet.clusters fleet)));
      t_split =
        Some
          (fun () ->
            let g = Shard.Fleet.split fleet in
            let c = Shard.Fleet.cluster fleet g in
            R.Cluster.set_on_new_server c (Some wire_server);
            Array.iter wire_server (R.Cluster.servers c);
            target.Nemesis.nodes <-
              target.Nemesis.nodes @ R.Cluster.members c;
            g);
      t_merge = Some (fun g -> Shard.Fleet.merge fleet g);
      t_upgrade = Some (fun () -> Shard.Fleet.rolling_upgrade fleet);
    };
  {
    eng;
    target;
    call =
      (fun _cidx ~retries req ->
        match key_of_request req with
        | Some key -> Shard.Router.call ~retries router ~key req
        | None -> None);
    query =
      (fun _cidx req ->
        match key_of_request req with
        | Some key -> Shard.Router.query router ~key req
        | None -> None);
    digests =
      (fun () ->
        List.init (Shard.Fleet.n_groups fleet) (Shard.Fleet.digests fleet));
    diverged =
      (fun () ->
        match Shard.Fleet.check_no_divergence fleet with
        | () -> not (Shard.Fleet.converged fleet)
        | exception Failure _ -> true);
  }

let deploy history_of cfg =
  match cfg.stack with
  | Rex -> deploy_rex history_of cfg
  | Smr | Eve | Cbase | Early -> deploy_single history_of cfg
  | Sharded ->
    if cfg.app <> Kv then
      invalid_arg "Runner: the sharded stack checks the kv app only";
    deploy_sharded history_of cfg

(* {1 The run} *)

let normal_retries = 12
let dedup_off_attempts = 30

let do_call d cfg cidx req =
  if cfg.reads_via_query && (spec_of cfg).Spec.is_read req then
    (* Read fast path under test: leases / quorum reads.  A [None] from
       the query loop retries once through the ordered path — harmless
       for a read, and it keeps the workload from starving on probes
       during long outages. *)
    match d.query cidx req with
    | Some r -> Some r
    | None -> d.call cidx ~retries:normal_retries req
  else if cfg.dedup_off then begin
    (* Fresh request identity per attempt: retries are no longer
       deduplicatable.  This is the harness's own fault injection — a
       correct stack under this client is genuinely at-least-once, and
       the checker must notice. *)
    let rec go k =
      if k = 0 then None
      else
        match d.call cidx ~retries:1 req with
        | Some r -> Some r
        | None -> go (k - 1)
    in
    go dedup_off_attempts
  end
  else d.call cidx ~retries:normal_retries req

let run_one ?schedule cfg =
  let sched =
    match schedule with
    | Some s -> s
    | None ->
      let rng = Rng.create ((cfg.seed * 31) + 7) in
      Nemesis.generate rng cfg.nemesis
        ~nodes:(match cfg.stack with Sharded -> [ 0; 1; 2; 3; 4; 5 ] | _ -> [ 0; 1; 2 ])
        ~allow_restart:(allow_restart cfg) ~horizon:cfg.horizon
  in
  (* The engine is created inside [deploy], but the recorder needs the
     engine's clock: hand deploy a memoizing constructor it calls as soon
     as its engine exists. *)
  let history_ref = ref None in
  let history_of eng =
    match !history_ref with
    | Some h -> h
    | None ->
      let h = History.create eng in
      history_ref := Some h;
      h
  in
  let d = deploy history_of cfg in
  let h = match !history_ref with Some h -> h | None -> assert false in
  let eng = d.eng in
  let t0 = Engine.clock eng in
  (* Nemesis actions, shifted to workload-relative time. *)
  let pending_actions =
    ref
      (List.map
         (fun (a : Nemesis.action) -> { a with Nemesis.at = t0 +. a.at })
         (Nemesis.actions d.target sched))
  in
  let obs = Engine.obs eng in
  let c_faults = Obs.counter obs ~subsystem:"check" "faults_injected" in
  let total = cfg.clients * cfg.ops_per_client in
  let done_ops = ref 0 in
  (* Client fibers: generate, record, call, pace. *)
  for cidx = 0 to cfg.clients - 1 do
    let wl = Rng.create ((cfg.seed * 7919) + (13 * cidx) + 1) in
    Engine.spawn_immediate eng ~node:(List.hd d.target.Nemesis.others)
      ~name:(Printf.sprintf "check-client-%d" cidx) (fun () ->
        for opidx = 0 to cfg.ops_per_client - 1 do
          Engine.sleep (Rng.float wl (cfg.horizon /. float_of_int cfg.ops_per_client));
          let req = gen_request cfg wl ~cidx ~opidx in
          ignore
            (History.record h ~client:cidx ~request:req (fun () ->
                 do_call d cfg cidx req));
          incr done_ops
        done)
  done;
  (* Drive: run the simulation in slices, firing nemesis actions as the
     virtual clock passes them, healing everything at the horizon. *)
  let deadline = t0 +. cfg.horizon +. 60. in
  let cured = ref false in
  let fire_due () =
    let rec go () =
      match !pending_actions with
      | a :: rest when a.Nemesis.at <= Engine.clock eng ->
        pending_actions := rest;
        Obs.Metric.incr c_faults;
        a.Nemesis.run ();
        go ()
      | _ -> ()
    in
    go ()
  in
  let stalled = ref false in
  while (not !stalled) && !done_ops < total && Engine.clock eng < deadline do
    let now = Engine.clock eng in
    let next_action =
      match !pending_actions with
      | a :: _ -> a.Nemesis.at
      | [] -> infinity
    in
    let horizon_at = t0 +. cfg.horizon in
    let until =
      Float.min deadline
        (Float.min (now +. 0.25)
           (Float.min
              (if next_action > now then next_action else now +. 0.01)
              (if !cured then infinity else Float.max horizon_at (now +. 1e-9))))
    in
    let until = Float.max until (now +. 1e-9) in
    Engine.run ~until eng;
    fire_due ();
    if (not !cured) && Engine.clock eng >= horizon_at then begin
      Nemesis.cure d.target;
      cured := true
    end;
    (* An empty event queue leaves the clock short of [until]: nothing
       will ever happen again, stop driving. *)
    if Engine.clock eng < until then stalled := true
  done;
  if not !cured then begin
    Nemesis.cure d.target;
    cured := true
  end;
  Engine.run ~until:(Engine.clock eng +. 2.) eng;
  (* Post-heal probes: committed reads that pin the final state and prove
     the group still makes progress (the wedge detector). *)
  let probe_ok = ref true and probes_done = ref false in
  Engine.spawn_immediate eng ~node:(List.hd d.target.Nemesis.others)
    ~name:"check-probe" (fun () ->
      List.iter
        (fun req ->
          match
            History.record h ~client:(-1) ~request:req (fun () ->
                d.call 0 ~retries:dedup_off_attempts req)
          with
          | Some _ -> ()
          | None -> probe_ok := false)
        (probe_requests cfg);
      probes_done := true);
  let probe_deadline = Engine.clock eng +. 30. in
  let stalled = ref false in
  while
    (not !stalled) && (not !probes_done)
    && Engine.clock eng < probe_deadline
  do
    let until = Engine.clock eng +. 0.5 in
    Engine.run ~until eng;
    if Engine.clock eng < until then stalled := true
  done;
  if not !probes_done then probe_ok := false;
  Engine.run ~until:(Engine.clock eng +. 1.) eng;
  History.resolve h;
  let hstats = History.stats h in
  let entries = History.entries h in
  let result = Lin.check ~max_steps:cfg.max_steps (spec_of cfg) entries in
  let converged =
    (not (d.diverged ()))
    && List.for_all
         (function
           | [] -> false
           | d0 :: rest -> List.for_all (fun x -> x = d0) rest)
         (d.digests ())
  in
  let wedged = (not !probe_ok) || !done_ops < total in
  (* Publish check/* summary counters on the engine's registry so metric
     exports carry the harness verdict alongside the stacks' own
     subsystems. *)
  let bump name v = Obs.Metric.add (Obs.counter obs ~subsystem:"check" name) v in
  bump "ops" hstats.History.ops;
  bump "timeouts" hstats.History.timeouts;
  bump "fates_resolved" hstats.History.resolved;
  bump "double_commits" hstats.History.double_commits;
  bump "violations"
    (match result.Lin.verdict with
    | Lin.Non_linearizable w -> List.length w
    | _ -> 0);
  {
    config = cfg;
    schedule = sched;
    hstats;
    result;
    converged;
    live_probe_ok = not wedged;
    elapsed_virtual = Engine.clock eng -. t0;
    history_lines = History.to_lines h;
  }

let describe_outcome o =
  let verdict =
    match o.result.Lin.verdict with
    | Lin.Linearizable -> "linearizable"
    | Lin.Non_linearizable w -> "NON-LINEARIZABLE: " ^ String.concat "; " w
    | Lin.Limit -> "UNDECIDED (step budget)"
  in
  [
    Printf.sprintf "config: stack=%s app=%s nemesis=%s seed=%d%s"
      (stack_name o.config.stack) (app_name o.config.app)
      (Nemesis.profile_name o.config.nemesis)
      o.config.seed
      (String.concat ""
         [
           (if o.config.dedup_off then " dedup-off" else "");
           (if o.config.reads_via_query then " reads" else "");
           (if o.config.lease_unsafe then " lease-unsafe" else "");
         ]);
    Printf.sprintf "verdict: %s" verdict;
    Printf.sprintf "converged=%b live=%b" o.converged o.live_probe_ok;
    Printf.sprintf
      "ops=%d completed=%d timeouts=%d resolved=%d double_commits=%d \
       (virtual %.2fs)"
      o.hstats.History.ops o.hstats.History.completed
      o.hstats.History.timeouts o.hstats.History.resolved
      o.hstats.History.double_commits o.elapsed_virtual;
  ]
  @ Nemesis.describe o.schedule

let shrink cfg sched o0 =
  let fails s =
    let o = run_one ~schedule:s cfg in
    if passed o then None else Some o
  in
  let rec fixpoint sched o =
    let n = List.length sched.Nemesis.faults in
    let rec try_drop i =
      if i >= n then None
      else
        let cand = Nemesis.without sched i in
        match fails cand with
        | Some o' -> Some (cand, o')
        | None -> try_drop (i + 1)
    in
    match try_drop 0 with
    | Some (s', o') -> fixpoint s' o'
    | None -> (sched, o)
  in
  fixpoint sched o0

type sweep_result = { runs : int; failed : (int * outcome) list }

let sweep ?(progress = fun _ _ -> ()) ~base ~seeds () =
  let failed = ref [] in
  for i = 0 to seeds - 1 do
    let cfg = { base with seed = base.seed + i } in
    let o = run_one cfg in
    progress cfg.seed o;
    if not (passed o) then begin
      let _, o' = shrink cfg o.schedule o in
      failed := (cfg.seed, o') :: !failed
    end
  done;
  { runs = seeds; failed = List.rev !failed }
