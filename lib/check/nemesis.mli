(** Fault-schedule generation, application and shrinking.

    A schedule is a small list of timed faults drawn from the primitives
    the simulator and cluster harnesses already expose — crash/restart,
    leader kill, network isolation, message loss, latency inflation
    (clock skew / reordering) — generated from a seed so any run can be
    replayed bit-for-bit.  The runner interleaves the resulting timed
    {!action}s with the client workload; on a failed check it shrinks the
    schedule by dropping faults one at a time and replaying. *)

type kind =
  | Crash of int  (** crash the node; restarts after [dur] when possible *)
  | Kill_leader  (** crash whoever is primary at fire time *)
  | Isolate of int  (** partition the node from everyone for [dur] *)
  | Drop of float  (** message loss probability for [dur] *)
  | Slow of float  (** latency × factor for [dur]: delay and reordering *)
  | Skew of { node : int; rate : float }
      (** run the node's local clock at [rate] × true time for [dur];
          safe-sweep rates stay inside the lease drift bound *)
  | Stale_leader of { rate : float }
      (** the lease canary: slow the current leader's clock {e past} the
          drift bound and partition it from the other replicas only —
          clients can still reach it, so without fencing it serves reads
          against a lease it can no longer defend *)
  | Reconfig
      (** replace one replica through the replicated log (group
          reconfiguration); no-op on targets without the hook *)
  | Split_merge
      (** live shard split at [at], merge the new group back at
          [at + dur]; no-op on unsharded targets *)
  | Upgrade  (** rolling restart of every replica, one at a time *)

type fault = { kind : kind; at : float; dur : float }

type schedule = { horizon : float; faults : fault list }
(** Faults fire inside [\[0, horizon)]; the runner heals everything at
    [horizon] and lets the workload drain. *)

type profile =
  | Crashes
  | Partitions
  | Drops
  | Clock_skew  (** per-node drift within the lease bound *)
  | Leader_kills
  | Leases  (** drift + isolation + leader churn: lease trouble *)
  | Mixed
  | Reconfigs  (** one replica replacement + light message loss *)
  | Splits  (** one live split-then-merge + light message loss *)
  | Upgrades  (** one rolling restart + light message loss *)

val profiles : (string * profile) list
val profile_of_string : string -> profile option
val profile_name : profile -> string

val generate :
  Sim.Rng.t -> profile -> nodes:int list -> allow_restart:bool ->
  horizon:float -> schedule
(** 2–4 faults in disjoint time windows (so compounded outages never
    exceed one node at a time by construction).  With
    [allow_restart:false] (stacks without a recovery path) at most one
    crash is generated and it is permanent; further crash draws degrade
    to isolations. *)

val describe : schedule -> string list
val fault_to_string : fault -> string

val without : schedule -> int -> schedule
(** Drop the i-th fault (shrinking step). *)

(** Control-plane hooks: how to run live-topology operations on a
    concrete deployment.  Every hook is optional — the topology kinds
    no-op where a hook is [None], so every profile runs on every stack.
    Hooks fire from driver context and may pump the simulation (the
    operations run under traffic). *)
type topo = {
  t_reconfig : (unit -> unit) option;
      (** replace one replica through the replicated log *)
  t_split : (unit -> int) option;
      (** live shard split; returns the new group id *)
  t_merge : (int -> unit) option;  (** merge the group back out *)
  t_upgrade : (unit -> unit) option;  (** rolling restart, one at a time *)
}

val no_topo : topo

(** How to apply faults to a concrete deployment. *)
type target = {
  net : Sim.Net.t;
  mutable nodes : int list;
      (** replica node ids; a reconfig hook updates this as membership
          changes (scheduled faults keep naming the original ids) *)
  others : int list;  (** client/router nodes sharing the fabric *)
  crash : int -> unit;
  restart : (int -> unit) option;  (** [None]: crashes are permanent *)
  leader : unit -> int option;
  mutable down : int list;
      (** bookkeeping maintained by the actions; start it at [[]] *)
  mutable topo : topo;
      (** start at {!no_topo}; deployments with a control plane fill it
          in after construction (hooks may close over the target) *)
}

type action = { at : float; what : string; run : unit -> unit }

val actions : target -> schedule -> action list
(** Timed actions, sorted; the caller fires each once the virtual clock
    passes [at]. *)

val cure : target -> unit
(** Heal all partitions, stop message loss, restore latency, restart
    every crashed node (when the target can) — run at the horizon. *)
