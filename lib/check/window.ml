type op = {
  o_req : string;
  o_resp : string option;
  o_must : bool;
  o_inv : float;
  o_ret : float;
}

(* Model state within a configuration; Bot = unknown (late-tracked key),
   resolvable only through Spec.pin. *)
type mstate = Bot | St of string

type cset = {
  next_id : int;  (* ids handed to ops of the next window *)
  pool : (int * op) list;  (* undecided ops referenced by some cfg *)
  cfgs : (mstate * int list) list;  (* pending ids sorted ascending *)
}

type error = Nonlin of string | Limit of string

let make ?(bot = false) (model : Spec.t) =
  {
    next_id = 0;
    pool = [];
    cfgs = [ ((if bot then Bot else St model.Spec.init), []) ];
  }

let cardinal t = List.length t.cfgs

let max_pending t =
  List.fold_left (fun a (_, p) -> max a (List.length p)) 0 t.cfgs

let state_key = function Bot -> "\001" | St s -> "\000" ^ s

exception Out_of_steps

let default_max_steps = 2_000_000
let default_max_configs = 4096
let pending_cap = 48

(* Exhaustive Wing–Gill search over one window from one start
   configuration, emitting every reachable configuration in which all
   finite-return ops have been linearized.  The classic rule: op [o] may
   linearize next iff no not-yet-linearized op returned strictly before
   [o] was invoked (returns tie-broken after invokes, as in Lin). *)
let run_from (model : Spec.t) ~steps ~max_steps ~emit st0
    (all : (int * op) array) =
  let n = Array.length all in
  let donev = Array.make n false in
  let finite = Array.map (fun (_, o) -> o.o_ret < Float.infinity) all in
  let rem0 = Array.fold_left (fun a f -> if f then a + 1 else a) 0 finite in
  let bits = Bytes.make ((n + 7) / 8) '\000' in
  let set_bit i =
    let b = Char.code (Bytes.get bits (i lsr 3)) in
    Bytes.set bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))
  and clear_bit i =
    let b = Char.code (Bytes.get bits (i lsr 3)) in
    Bytes.set bits (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7))))
  in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let emit_here st =
    let ids = ref [] in
    for i = n - 1 downto 0 do
      if not donev.(i) then ids := fst all.(i) :: !ids
    done;
    emit st (List.sort compare !ids)
  in
  let rec go st rem =
    incr steps;
    if !steps > max_steps then raise Out_of_steps;
    if rem = 0 then emit_here st;
    let min_ret = ref Float.infinity in
    for i = 0 to n - 1 do
      if not donev.(i) then begin
        let _, o = all.(i) in
        if o.o_ret < !min_ret then min_ret := o.o_ret
      end
    done;
    for i = 0 to n - 1 do
      if not donev.(i) then begin
        let _, o = all.(i) in
        if o.o_inv <= !min_ret then begin
          let next =
            match st with
            | St s -> (
              match model.Spec.apply s o.o_req with
              | None -> None  (* unrecognized: filtered by callers *)
              | Some (s', resp) ->
                let ok =
                  match o.o_resp with None -> true | Some r -> r = resp
                in
                if ok then Some (St s') else None)
            | Bot -> (
              (* Unknown state: only an op whose observed response pins
                 the post-state can linearize. *)
              match o.o_resp with
              | Some r -> (
                match model.Spec.pin o.o_req r with
                | Some s' -> Some (St s')
                | None -> None)
              | None -> None)
          in
          match next with
          | None -> ()
          | Some st' ->
            donev.(i) <- true;
            set_bit i;
            let key = Bytes.to_string bits ^ state_key st' in
            if not (Hashtbl.mem visited key) then begin
              Hashtbl.add visited key ();
              go st' (rem - if finite.(i) then 1 else 0)
            end;
            donev.(i) <- false;
            clear_bit i
        end
      end
    done
  in
  go st0 rem0

let advance ?(max_steps = default_max_steps)
    ?(max_configs = default_max_configs) (model : Spec.t) cs
    (window : op array) =
  let nw = Array.length window in
  if nw = 0 then Ok cs
  else begin
    let base = cs.next_id in
    let out : (string, mstate * int list) Hashtbl.t = Hashtbl.create 64 in
    let steps = ref 0 in
    let emit st ids =
      let k =
        state_key st ^ "\000"
        ^ String.concat "," (List.map string_of_int ids)
      in
      if not (Hashtbl.mem out k) then Hashtbl.replace out k (st, ids)
    in
    match
      List.iter
        (fun (st, pend) ->
          let pend_ops =
            List.map (fun id -> (id, List.assoc id cs.pool)) pend
          in
          let all =
            Array.append
              (Array.mapi (fun i o -> (base + i, o)) window)
              (Array.of_list pend_ops)
          in
          run_from model ~steps ~max_steps ~emit st all)
        cs.cfgs
    with
    | exception Out_of_steps ->
      Error
        (Limit
           (Printf.sprintf "step budget %d exhausted on a %d-op window"
              max_steps nw))
    | () ->
      if Hashtbl.length out = 0 then
        Error
          (Nonlin
             (Printf.sprintf
                "window of %d ops (first invoke t=%g): no linearization \
                 from any of %d carried configs"
                nw window.(0).o_inv (List.length cs.cfgs)))
      else begin
        let cfgs =
          Hashtbl.fold (fun _ c acc -> c :: acc) out [] |> List.sort compare
        in
        let worst =
          List.fold_left (fun a (_, p) -> max a (List.length p)) 0 cfgs
        in
        if List.length cfgs > max_configs then
          Error
            (Limit
               (Printf.sprintf "carried config set %d exceeds cap %d"
                  (List.length cfgs) max_configs))
        else if worst > pending_cap then
          Error
            (Limit
               (Printf.sprintf "undecided-op carry %d exceeds cap %d" worst
                  pending_cap))
        else begin
          let used : (int, unit) Hashtbl.t = Hashtbl.create 32 in
          List.iter
            (fun (_, p) -> List.iter (fun id -> Hashtbl.replace used id ()) p)
            cfgs;
          let pool =
            List.filter
              (fun (id, _) -> Hashtbl.mem used id)
              (List.append
                 (List.init nw (fun i -> (base + i, window.(i))))
                 cs.pool)
          in
          Ok { next_id = base + nw; pool; cfgs }
        end
      end
  end

let close cs =
  let free (_, pend) =
    List.for_all (fun id -> not (List.assoc id cs.pool).o_must) pend
  in
  if List.exists free cs.cfgs then Ok ()
  else
    Error
      (Nonlin
         "end of history: every carried config retains a \
          committed-but-unreturned op that never linearized")

(* ------------------------------------------------------------------ *)
(* Whole-history sweep: Lin.check's preprocessing, windowed search.    *)

type result_ = {
  verdict : Lin.verdict;
  checked_ops : int;
  dropped_ambiguous_reads : int;
  skipped_unrecognized : int;
  partitions : int;
  windows : int;
  max_window_ops : int;
  max_configs_carried : int;
}

let check ?(max_steps = default_max_steps)
    ?(max_configs = default_max_configs) (model : Spec.t) entries =
  let skipped = ref 0 and dropped_reads = ref 0 and checked = ref 0 in
  let parts : (string, op list ref) Hashtbl.t = Hashtbl.create 16 in
  let add key o =
    match Hashtbl.find_opt parts key with
    | Some l -> l := o :: !l
    | None -> Hashtbl.replace parts key (ref [ o ])
  in
  List.iter
    (fun (e : History.entry) ->
      match model.Spec.apply model.Spec.init e.request with
      | None -> incr skipped
      | Some _ -> (
        let key = Option.value (model.Spec.key_of e.request) ~default:"" in
        match e.fate with
        | History.Returned r ->
          incr checked;
          add key
            { o_req = e.request; o_resp = Some r; o_must = true;
              o_inv = e.invoke; o_ret = e.return_ }
        | History.Resolved r ->
          incr checked;
          add key
            { o_req = e.request; o_resp = Some r; o_must = true;
              o_inv = e.invoke; o_ret = Float.infinity }
        | History.Timed_out ->
          if model.Spec.is_read e.request then incr dropped_reads
          else begin
            incr checked;
            add key
              { o_req = e.request; o_resp = None; o_must = false;
                o_inv = e.invoke; o_ret = Float.infinity }
          end))
    entries;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) parts [] |> List.sort compare
  in
  let windows = ref 0 and max_win = ref 0 and max_cfgs = ref 0 in
  let witnesses = ref [] and limited = ref false in
  List.iter
    (fun k ->
      if not !limited then begin
        let ops =
          List.sort
            (fun a b -> compare (a.o_inv, a.o_ret) (b.o_inv, b.o_ret))
            !(Hashtbl.find parts k)
          |> Array.of_list
        in
        let n = Array.length ops in
        let cs = ref (make model) in
        let fail = ref false in
        let witness msg =
          let label = if k = "" then model.Spec.name else k in
          witnesses := Printf.sprintf "partition %S: %s" label msg :: !witnesses;
          fail := true
        in
        let flush lo hi =
          (* window = ops[lo..hi-1] *)
          if hi > lo && not !fail then begin
            let w = Array.sub ops lo (hi - lo) in
            incr windows;
            max_win := max !max_win (Array.length w);
            match advance ~max_steps ~max_configs model !cs w with
            | Ok cs' ->
              cs := cs';
              max_cfgs := max !max_cfgs (cardinal cs')
            | Error (Nonlin msg) -> witness msg
            | Error (Limit _) ->
              limited := true;
              fail := true
          end
        in
        let start = ref 0 in
        let frontier = ref Float.neg_infinity in
        for i = 0 to n - 1 do
          if (not !fail) && i > !start && ops.(i).o_inv > !frontier then begin
            flush !start i;
            start := i
          end;
          if ops.(i).o_ret < Float.infinity then
            frontier := Float.max !frontier ops.(i).o_ret
        done;
        flush !start n;
        if not !fail then begin
          match close !cs with
          | Ok () -> ()
          | Error (Nonlin msg) -> witness msg
          | Error (Limit _) -> limited := true
        end
      end)
    keys;
  let verdict =
    if !limited then Lin.Limit
    else if !witnesses = [] then Lin.Linearizable
    else Lin.Non_linearizable (List.rev !witnesses)
  in
  {
    verdict;
    checked_ops = !checked;
    dropped_ambiguous_reads = !dropped_reads;
    skipped_unrecognized = !skipped;
    partitions = List.length keys;
    windows = !windows;
    max_window_ops = !max_win;
    max_configs_carried = !max_cfgs;
  }

let pp_result ppf r =
  let v =
    match r.verdict with
    | Lin.Linearizable -> "linearizable"
    | Lin.Non_linearizable w ->
      Printf.sprintf "NON-LINEARIZABLE (%d partition%s)" (List.length w)
        (if List.length w = 1 then "" else "s")
    | Lin.Limit -> "UNDECIDED (budget exhausted)"
  in
  Format.fprintf ppf
    "%s: %d ops, %d partitions, %d windows (max %d ops, %d configs carried)"
    v r.checked_ops r.partitions r.windows r.max_window_ops
    r.max_configs_carried
