module F = Rex_core.Frontend

type violation = { v_key : string; v_kind : string; v_detail : string }

type stats = {
  seen_keys : int;
  tracked_keys : int;
  evicted_keys : int;
  recorded_ops : int;
  skipped_ops : int;
  dropped_ambiguous_reads : int;
  rejected_ops : int;
  windows : int;
  resets : int;
  max_live_ops : int;
  commits_seen : int;
  double_commits : int;
  limited : bool;
}

type cell = {
  cl_id : int;
  cl_client : int;
  cl_key : string;
  cl_req : string;
  cl_inv : float;
  mutable cl_commits : int;
  mutable cl_resp : string option;  (* first committed response seen *)
}

type kt = {
  mutable k_cset : Window.cset;
  mutable k_buf : Window.op list;  (* reversed *)
  mutable k_nbuf : int;
  mutable k_inflight : int;
}

(* Terminally shed payloads watched for the must-never-commit invariant;
   beyond this the set stops growing (accounting turns best-effort). *)
let reject_watch_cap = 1 lsl 16

type t = {
  spec : Spec.t;
  rng : Sim.Rng.t;
  keys_cap : int;
  window_cap : int;
  flush_min : int;
  max_steps : int option;
  max_configs : int option;
  mu : Mutex.t;
  tracked : (string, kt) Hashtbl.t;
  slots : string array;  (* reservoir: slot -> tracked key *)
  decided : (string, unit) Hashtbl.t;  (* every distinct key seen *)
  cells : (int, cell) Hashtbl.t;  (* in-flight ops *)
  live : (string, int) Hashtbl.t;  (* payload -> live cell id *)
  rejected : (string, unit) Hashtbl.t;
  mutable next_id : int;
  mutable violations : violation list;
  mutable seen_keys : int;
  mutable evicted : int;
  mutable recorded : int;
  mutable skipped : int;
  mutable dropped_reads : int;
  mutable rejected_n : int;
  mutable windows : int;
  mutable resets : int;
  mutable live_n : int;  (* in-flight cells + buffered ops *)
  mutable live_hw : int;
  mutable commits : int;
  mutable doubles : int;
  mutable limited : bool;
}

let create ?(keys_cap = 64) ?(window_cap = 512) ?(flush_min = 1) ?max_steps
    ?max_configs ~seed (spec : Spec.t) =
  if keys_cap < 1 then invalid_arg "Sample.create: keys_cap < 1";
  if window_cap < 2 then invalid_arg "Sample.create: window_cap < 2";
  if flush_min < 1 then invalid_arg "Sample.create: flush_min < 1";
  {
    spec;
    rng = Sim.Rng.create seed;
    keys_cap;
    window_cap;
    flush_min;
    max_steps;
    max_configs;
    mu = Mutex.create ();
    tracked = Hashtbl.create (2 * keys_cap);
    slots = Array.make keys_cap "";
    decided = Hashtbl.create 256;
    cells = Hashtbl.create 1024;
    live = Hashtbl.create 1024;
    rejected = Hashtbl.create 256;
    next_id = 0;
    violations = [];
    seen_keys = 0;
    evicted = 0;
    recorded = 0;
    skipped = 0;
    dropped_reads = 0;
    rejected_n = 0;
    windows = 0;
    resets = 0;
    live_n = 0;
    live_hw = 0;
    commits = 0;
    doubles = 0;
    limited = false;
  }

let with_lock t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let violate t ~key ~kind ~detail =
  t.violations <- { v_key = key; v_kind = kind; v_detail = detail } :: t.violations

let key_of t req = Option.value (t.spec.Spec.key_of req) ~default:""

let fresh_kt t = {
  k_cset = Window.make t.spec;
  k_buf = [];
  k_nbuf = 0;
  k_inflight = 0;
}

(* Reservoir decision, made exactly once per distinct key, at its first
   occurrence (Algorithm R over the key stream): tracked keys therefore
   have complete histories from a known initial state. *)
let tracked_kt t key =
  match Hashtbl.find_opt t.tracked key with
  | Some kt -> Some kt
  | None ->
    if Hashtbl.mem t.decided key then None
    else begin
      Hashtbl.replace t.decided key ();
      t.seen_keys <- t.seen_keys + 1;
      let ntracked = Hashtbl.length t.tracked in
      let slot =
        if ntracked < t.keys_cap then Some ntracked
        else begin
          let j = Sim.Rng.int t.rng t.seen_keys in
          if j < t.keys_cap then Some j else None
        end
      in
      match slot with
      | None -> None
      | Some j ->
        (match Hashtbl.find_opt t.tracked t.slots.(j) with
        | Some old ->
          (* Evict: the displaced key's pending work is discarded. *)
          t.skipped <- t.skipped + old.k_nbuf;
          t.live_n <- t.live_n - old.k_nbuf;
          Hashtbl.remove t.tracked t.slots.(j);
          t.evicted <- t.evicted + 1
        | None -> ());
        t.slots.(j) <- key;
        let kt = fresh_kt t in
        Hashtbl.replace t.tracked key kt;
        Some kt
    end

let reanchor t kt =
  kt.k_cset <- Window.make ~bot:true t.spec;
  t.skipped <- t.skipped + kt.k_nbuf;
  t.live_n <- t.live_n - kt.k_nbuf;
  kt.k_buf <- [];
  kt.k_nbuf <- 0

let flush t key kt =
  if kt.k_nbuf > 0 then begin
    let w = Array.of_list (List.rev kt.k_buf) in
    t.live_n <- t.live_n - kt.k_nbuf;
    kt.k_buf <- [];
    kt.k_nbuf <- 0;
    match
      Window.advance ?max_steps:t.max_steps ?max_configs:t.max_configs
        t.spec kt.k_cset w
    with
    | Ok cs ->
      kt.k_cset <- cs;
      t.windows <- t.windows + 1
    | Error (Window.Nonlin msg) ->
      violate t ~key ~kind:"non-linearizable" ~detail:msg;
      kt.k_cset <- Window.make ~bot:true t.spec
    | Error (Window.Limit _) ->
      t.limited <- true;
      kt.k_cset <- Window.make ~bot:true t.spec
  end

let maybe_flush t key kt =
  if kt.k_inflight = 0 && kt.k_nbuf >= t.flush_min then flush t key kt
  else if kt.k_nbuf >= t.window_cap then begin
    (* The key refuses to quiesce: bound memory by re-anchoring at ⊥. *)
    reanchor t kt;
    t.resets <- t.resets + 1
  end

let bump_live t =
  t.live_n <- t.live_n + 1;
  if t.live_n > t.live_hw then t.live_hw <- t.live_n

let invoke t ~now ~client ~request =
  with_lock t (fun () ->
      match t.spec.Spec.apply t.spec.Spec.init request with
      | None ->
        t.skipped <- t.skipped + 1;
        -1
      | Some _ -> (
        let key = key_of t request in
        match tracked_kt t key with
        | None ->
          t.skipped <- t.skipped + 1;
          -1
        | Some kt ->
          let id = t.next_id in
          t.next_id <- id + 1;
          Hashtbl.replace t.cells id
            {
              cl_id = id;
              cl_client = client;
              cl_key = key;
              cl_req = request;
              cl_inv = now;
              cl_commits = 0;
              cl_resp = None;
            };
          Hashtbl.replace t.live request id;
          kt.k_inflight <- kt.k_inflight + 1;
          t.recorded <- t.recorded + 1;
          bump_live t;
          id))

let drop_cell t (c : cell) =
  Hashtbl.remove t.cells c.cl_id;
  (match Hashtbl.find_opt t.live c.cl_req with
  | Some id when id = c.cl_id -> Hashtbl.remove t.live c.cl_req
  | _ -> ());
  t.live_n <- t.live_n - 1

(* Turn a completed (or abandoned) cell into a Window op; None when the
   op imposes no constraint (ambiguous read). *)
let op_of t (c : cell) resp ~now =
  match resp with
  | Some r ->
    Some
      { Window.o_req = c.cl_req; o_resp = Some r; o_must = true;
        o_inv = c.cl_inv; o_ret = now }
  | None ->
    if t.spec.Spec.is_read c.cl_req then begin
      t.dropped_reads <- t.dropped_reads + 1;
      None
    end
    else if c.cl_commits > 0 then
      (* A tap saw it execute: committed, response never delivered. *)
      Some
        { Window.o_req = c.cl_req; o_resp = c.cl_resp; o_must = true;
          o_inv = c.cl_inv; o_ret = Float.infinity }
    else
      Some
        { Window.o_req = c.cl_req; o_resp = None; o_must = false;
          o_inv = c.cl_inv; o_ret = Float.infinity }

let settle t (c : cell) resp ~now =
  drop_cell t c;
  match Hashtbl.find_opt t.tracked c.cl_key with
  | None -> t.skipped <- t.skipped + 1  (* evicted while in flight *)
  | Some kt ->
    kt.k_inflight <- kt.k_inflight - 1;
    (match op_of t c resp ~now with
    | None -> ()
    | Some op ->
      kt.k_buf <- op :: kt.k_buf;
      kt.k_nbuf <- kt.k_nbuf + 1;
      bump_live t);
    maybe_flush t c.cl_key kt

let finish t ~now id resp =
  if id >= 0 then
    with_lock t (fun () ->
        match Hashtbl.find_opt t.cells id with
        | None -> ()
        | Some c -> settle t c resp ~now)

let reject t ~now:_ id =
  with_lock t (fun () ->
      t.rejected_n <- t.rejected_n + 1;
      if id >= 0 then
        match Hashtbl.find_opt t.cells id with
        | None -> ()
        | Some c ->
          drop_cell t c;
          (match Hashtbl.find_opt t.tracked c.cl_key with
          | Some kt -> kt.k_inflight <- kt.k_inflight - 1
          | None -> ());
          if c.cl_commits > 0 then
            violate t ~key:c.cl_key ~kind:"rejected-op-committed"
              ~detail:c.cl_req
          else if Hashtbl.length t.rejected < reject_watch_cap then
            Hashtbl.replace t.rejected c.cl_req ())

let tap t ev =
  with_lock t (fun () ->
      match ev with
      | F.Tap_commit { payload; response; _ } ->
        if Hashtbl.mem t.tracked (key_of t payload) then begin
          t.commits <- t.commits + 1;
          match Hashtbl.find_opt t.live payload with
          | Some id ->
            let c = Hashtbl.find t.cells id in
            c.cl_commits <- c.cl_commits + 1;
            if c.cl_resp = None then c.cl_resp <- Some response;
            if c.cl_commits = 2 then begin
              t.doubles <- t.doubles + 1;
              violate t ~key:c.cl_key ~kind:"double-commit" ~detail:payload
            end
          | None ->
            if Hashtbl.mem t.rejected payload then
              violate t ~key:(key_of t payload) ~kind:"rejected-op-committed"
                ~detail:payload
        end
      | F.Tap_dup { payload; response; _ } -> (
        (* Reply-cache hit: proof of one earlier commit, not a double. *)
        match Hashtbl.find_opt t.live payload with
        | Some id ->
          let c = Hashtbl.find t.cells id in
          if c.cl_resp = None then c.cl_resp <- Some response;
          if c.cl_commits = 0 then c.cl_commits <- 1
        | None -> ())
      | F.Tap_enqueue _ | F.Tap_drop _ | F.Tap_reject _ -> ())

let wire t fronts =
  List.iter (fun f -> F.set_tap f (Some (fun ev -> tap t ev))) fronts

let finalize t =
  with_lock t (fun () ->
      (* Abandon every still-in-flight op: the run was cut off while the
         client waited, which is the ambiguous (or commit-resolved)
         fate. *)
      let pending = Hashtbl.fold (fun _ c acc -> c :: acc) t.cells [] in
      let pending =
        List.sort (fun a b -> compare a.cl_id b.cl_id) pending
      in
      List.iter
        (fun c ->
          drop_cell t c;
          match Hashtbl.find_opt t.tracked c.cl_key with
          | None -> t.skipped <- t.skipped + 1
          | Some kt ->
            kt.k_inflight <- kt.k_inflight - 1;
            (match op_of t c None ~now:Float.infinity with
            | None -> ()
            | Some op ->
              kt.k_buf <- op :: kt.k_buf;
              kt.k_nbuf <- kt.k_nbuf + 1;
              bump_live t))
        pending;
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) t.tracked []
        |> List.sort compare
      in
      List.iter
        (fun key ->
          let kt = Hashtbl.find t.tracked key in
          flush t key kt;
          match Window.close kt.k_cset with
          | Ok () -> ()
          | Error (Window.Nonlin msg) ->
            violate t ~key ~kind:"unresolved-commit" ~detail:msg
          | Error (Window.Limit _) -> t.limited <- true)
        keys)

let violations t = with_lock t (fun () -> List.rev t.violations)
let ok t = with_lock t (fun () -> t.violations = [] && not t.limited)

let stats t =
  with_lock t (fun () ->
      {
        seen_keys = t.seen_keys;
        tracked_keys = Hashtbl.length t.tracked;
        evicted_keys = t.evicted;
        recorded_ops = t.recorded;
        skipped_ops = t.skipped;
        dropped_ambiguous_reads = t.dropped_reads;
        rejected_ops = t.rejected_n;
        windows = t.windows;
        resets = t.resets;
        max_live_ops = t.live_hw;
        commits_seen = t.commits;
        double_commits = t.doubles;
        limited = t.limited;
      })

let pp_stats ppf s =
  Format.fprintf ppf
    "%d/%d keys tracked (%d evicted), %d ops recorded (%d skipped, %d \
     ambiguous reads, %d rejected), %d windows (%d resets), live high-water \
     %d, %d commits (%d doubles)%s"
    s.tracked_keys s.seen_keys s.evicted_keys s.recorded_ops s.skipped_ops
    s.dropped_ambiguous_reads s.rejected_ops s.windows s.resets
    s.max_live_ops s.commits_seen s.double_commits
    (if s.limited then " [LIMITED]" else "")
