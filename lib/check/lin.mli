(** Wing–Gill linearizability checker over recorded histories, in the
    style of Knossos / porcupine: a backtracking search over the "next
    operation to linearize", pruned by a memoized configuration cache
    (set of linearized ops × model state) and made tractable by checking
    each partition of commuting operations independently.

    Ambiguity handling (see {!History.fate}):
    - [Returned r]: must linearize between invoke and return, and the
      model must produce exactly [r];
    - [Resolved r]: did execute but the client never saw it — must
      linearize some time after invoke (return +∞), response must be [r];
    - [Timed_out] writes: may or may not have executed — free to
      linearize (any time after invoke, any response) or to be omitted;
    - [Timed_out] reads: vacuous (no effect, no observed value) —
      dropped before the search. *)

type verdict =
  | Linearizable
  | Non_linearizable of string list
      (** one human-readable witness message per failed partition *)
  | Limit  (** search budget exhausted before a decision *)

type result = {
  verdict : verdict;
  checked_ops : int;  (** ops the search actually constrained *)
  dropped_ambiguous_reads : int;
  skipped_unrecognized : int;  (** requests the model does not know *)
  partitions : int;
  configs_explored : int;  (** distinct configurations memoized *)
}

val check : ?max_steps:int -> Spec.t -> History.entry list -> result
(** [max_steps] bounds total search iterations across all partitions
    (default 5_000_000 — far above anything a passing history needs). *)

val pp_result : Format.formatter -> result -> unit
