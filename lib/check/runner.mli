(** End-to-end correctness runs: build a stack inside the simulator,
    drive a recorded client workload while a seeded fault schedule plays
    out, then heal, drain, and check the history against its sequential
    spec.  Everything is a pure function of [config.seed]: the same
    config replays byte-for-byte ({!outcome.history_lines}), which is
    what makes {!shrink} possible. *)

type stack = Rex | Smr | Eve | Sharded | Cbase | Early
(** [Cbase] / [Early] are the conflict-aware parallel SMR stacks of
    {!Sched.Server} (DESIGN.md §12). *)

type app = Kv | Counter

val stack_of_string : string -> stack option
val stack_name : stack -> string
val app_of_string : string -> app option
val app_name : app -> string

type config = {
  stack : stack;
  app : app;  (** [Sharded] supports [Kv] only (a counter is one key) *)
  nemesis : Nemesis.profile;
  seed : int;
  clients : int;
  ops_per_client : int;
  dedup_off : bool;
      (** fault injection into the harness itself: retries mint a fresh
          request identity, disabling exactly-once — a canary the checker
          must flag as non-linearizable (counter app) *)
  reads_via_query : bool;
      (** route read-only ops through the read fast path (leases / quorum
          reads) instead of the ordered client path *)
  lease_unsafe : bool;
      (** disable lease fencing on every replica: with a beyond-bound
          {!Nemesis.Stale_leader} fault this is the canary the checker
          must flag as non-linearizable *)
  read_ratio : float option;
      (** Kv only: override the default op mix with [GET] at this
          probability and [SET] otherwise — read-heavy mixes keep
          clients parked on a stale leader whose reads still answer *)
  checkpoint_interval : float option;  (** Rex/Sharded only *)
  horizon : float;  (** fault window; healing and drain follow *)
  max_steps : int;  (** checker search budget *)
}

val default_config :
  ?clients:int -> ?ops_per_client:int -> ?dedup_off:bool ->
  ?reads_via_query:bool -> ?lease_unsafe:bool -> ?read_ratio:float ->
  ?checkpoint_interval:float option -> ?horizon:float -> ?max_steps:int ->
  stack:stack -> app:app -> nemesis:Nemesis.profile -> seed:int -> unit ->
  config

type outcome = {
  config : config;
  schedule : Nemesis.schedule;
  hstats : History.stats;
  result : Lin.result;
  converged : bool;  (** live replicas agree (digests, no divergence) *)
  live_probe_ok : bool;
      (** a post-heal request committed: the group is not wedged *)
  elapsed_virtual : float;
  history_lines : string list;
}

val passed : outcome -> bool
(** Linearizable and converged and live. *)

val describe_outcome : outcome -> string list
(** Failure report: verdict, schedule, stats — for repro artifacts. *)

val run_one : ?schedule:Nemesis.schedule -> config -> outcome
(** [schedule] overrides the seed-generated one (used when replaying a
    shrunk schedule; the workload stays a function of the seed). *)

val shrink : config -> Nemesis.schedule -> outcome -> Nemesis.schedule * outcome
(** Greedy one-at-a-time fault removal, replaying by seed, until no
    single fault can be dropped without the failure disappearing.
    [outcome] is the original failing run; returns the minimal failing
    schedule and its outcome. *)

type sweep_result = {
  runs : int;
  failed : (int * outcome) list;  (** (seed, shrunk failing outcome) *)
}

val sweep :
  ?progress:(int -> outcome -> unit) -> base:config -> seeds:int -> unit ->
  sweep_result
(** Seeds [base.seed .. base.seed + seeds - 1]; every failure is shrunk
    before being reported. *)
