module F = Rex_core.Frontend

type fate = Returned of string | Timed_out | Resolved of string

type entry = {
  id : int;
  client : int;
  request : string;
  invoke : float;
  return_ : float;
  fate : fate;
}

type stats = {
  ops : int;
  completed : int;
  timeouts : int;
  resolved : int;
  double_commits : int;
}

type cell = {
  c_id : int;
  c_client : int;
  c_request : string;
  c_invoke : float;
  mutable c_return : float;  (* nan while pending *)
  mutable c_resp : string option;  (* what the client saw *)
}

type t = {
  eng : Sim.Engine.t;
  cells : (int, cell) Hashtbl.t;  (* id -> cell, ids dense from 0 *)
  mutable n : int;
  (* payload -> (first committed response, number of commits observed) *)
  commits : (string, string * int) Hashtbl.t;
  (* payloads answered from a reply cache: proof of an earlier commit *)
  dups : (string, string) Hashtbl.t;
  (* payload -> Busy rejections seen at the frontend *)
  rejects : (string, int) Hashtbl.t;
  resolved_cells : (int, string) Hashtbl.t;
}

let create eng =
  {
    eng;
    cells = Hashtbl.create 256;
    n = 0;
    commits = Hashtbl.create 256;
    dups = Hashtbl.create 64;
    rejects = Hashtbl.create 64;
    resolved_cells = Hashtbl.create 16;
  }

let tap t = function
  | F.Tap_commit { payload; response; _ } ->
    (match Hashtbl.find_opt t.commits payload with
    | None -> Hashtbl.replace t.commits payload (response, 1)
    | Some (first, k) -> Hashtbl.replace t.commits payload (first, k + 1))
  | F.Tap_dup { payload; response; _ } ->
    if not (Hashtbl.mem t.dups payload) then
      Hashtbl.replace t.dups payload response
  | F.Tap_reject { payload; _ } ->
    Hashtbl.replace t.rejects payload
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.rejects payload))
  | F.Tap_enqueue _ | F.Tap_drop _ -> ()

let wire t fronts =
  List.iter (fun f -> F.set_tap f (Some (fun ev -> tap t ev))) fronts

let invoke t ~client ~request =
  let id = t.n in
  t.n <- id + 1;
  Hashtbl.replace t.cells id
    {
      c_id = id;
      c_client = client;
      c_request = request;
      c_invoke = Sim.Engine.clock t.eng;
      c_return = Float.nan;
      c_resp = None;
    };
  id

let finish t id resp =
  match Hashtbl.find_opt t.cells id with
  | None -> invalid_arg "History.finish: unknown op"
  | Some c ->
    c.c_return <- Sim.Engine.clock t.eng;
    c.c_resp <- resp

let record t ~client ~request f =
  let id = invoke t ~client ~request in
  let resp = f () in
  finish t id resp;
  resp

let iter_cells t f =
  for id = 0 to t.n - 1 do
    f (Hashtbl.find t.cells id)
  done

let resolve t =
  (* Payload multiplicity across the whole history: resolution is only
     sound for payloads a single logical op used. *)
  let uses = Hashtbl.create 256 in
  iter_cells t (fun c ->
      let k = c.c_request in
      Hashtbl.replace uses k
        (1 + Option.value ~default:0 (Hashtbl.find_opt uses k)));
  iter_cells t (fun c ->
      if c.c_resp = None && not (Hashtbl.mem t.resolved_cells c.c_id) then
        if Hashtbl.find_opt uses c.c_request = Some 1 then begin
          match Hashtbl.find_opt t.commits c.c_request with
          | Some (resp, _) -> Hashtbl.replace t.resolved_cells c.c_id resp
          | None -> (
            match Hashtbl.find_opt t.dups c.c_request with
            | Some resp -> Hashtbl.replace t.resolved_cells c.c_id resp
            | None -> ())
        end)

let entry_of t c =
  let pending = Float.is_nan c.c_return in
  let return_ = if pending then Float.infinity else c.c_return in
  let fate =
    match c.c_resp with
    | Some r -> Returned r
    | None -> (
      match Hashtbl.find_opt t.resolved_cells c.c_id with
      | Some r -> Resolved r
      | None -> Timed_out)
  in
  { id = c.c_id; client = c.c_client; request = c.c_request;
    invoke = c.c_invoke; return_; fate }

let entries t = List.init t.n (fun id -> entry_of t (Hashtbl.find t.cells id))

let stats t =
  let completed = ref 0 and timeouts = ref 0 and resolved = ref 0 in
  iter_cells t (fun c ->
      match (entry_of t c).fate with
      | Returned _ -> incr completed
      | Resolved _ -> incr resolved
      | Timed_out -> incr timeouts);
  let doubles =
    Hashtbl.fold (fun _ (_, k) acc -> acc + max 0 (k - 1)) t.commits 0
  in
  {
    ops = t.n;
    completed = !completed;
    timeouts = !timeouts;
    resolved = !resolved;
    double_commits = doubles;
  }

let to_lines t =
  List.map
    (fun e ->
      let fate =
        match e.fate with
        | Returned r -> Printf.sprintf "ok %S" r
        | Resolved r -> Printf.sprintf "exec %S" r
        | Timed_out -> "timeout"
      in
      Printf.sprintf "%04d c%d [%.9f, %.9f] %S -> %s" e.id e.client e.invoke
        e.return_ e.request fate)
    (entries t)
