(** Windowed Wing–Gill linearizability checking for open-loop histories.

    The full checker ({!Lin}) keeps the entire history in memory and
    searches it in one piece — fine for the closed-loop correctness
    harness (thousands of ops), hopeless for an open-loop run with 10^5+
    sessions.  This module splits each per-key partition at {e quiescent
    cuts} — instants at which every operation invoked earlier has already
    returned — and checks window by window, carrying across each cut the
    exact set of reachable {e configurations}: a model state plus the
    still-undecided operations (return time +∞: the client gave up, or a
    commit tap resolved the fate but the response was never delivered).

    Within its budgets the procedure is {e exact}: a history is accepted
    by the windowed pass iff the full checker accepts it.  Quiescent
    cuts are sound cut points because an operation that returned before
    the cut must linearize before anything invoked after it, and
    undecided (+∞) operations never constrain a cut — they ride along in
    the carried configurations until some window consumes them (or the
    history ends).  {!test} validates this equivalence against {!Lin} on
    randomly generated small histories.

    Unknown initial state (⊥): a key the sampling recorder ({!Sample})
    was forced to re-anchor mid-stream starts from the ⊥ configuration.
    The first operation whose response {e pins} the state
    ({!Spec.t.pin}) re-anchors the model; operations before that which
    cannot pin are not linearizable from ⊥, so ⊥ checking is
    best-effort: it never accepts a non-linearizable window, but can
    reject contrived schedules whose only linearizations lead with an
    unpinnable op.  With known init the pass stays exact. *)

type op = {
  o_req : string;
  o_resp : string option;  (** [None]: any response acceptable *)
  o_must : bool;  (** must appear in the linearization *)
  o_inv : float;
  o_ret : float;  (** [infinity] when the return never happened *)
}

type cset
(** A set of carried configurations (abstract, persistent). *)

type error =
  | Nonlin of string  (** witness: no linearization of some window *)
  | Limit of string  (** a budget (steps / configs / pending) tripped *)

val make : ?bot:bool -> Spec.t -> cset
(** The singleton configuration set for one partition: the model's
    initial state, or the ⊥ sentinel when [bot] (state unknown —
    late-tracked key). *)

val advance :
  ?max_steps:int -> ?max_configs:int -> Spec.t -> cset -> op array ->
  (cset, error) result
(** Check one window — operations whose invocations all fall after the
    previous cut, with every finite return inside the window — from each
    carried configuration, and return the deduplicated set of reachable
    configurations at the next cut.  +∞-return ops in the window join
    the carry.  Budgets: [max_steps] (default 2e6) bounds search nodes,
    [max_configs] (default 4096) bounds the carried set, and a fixed cap
    bounds undecided ops per configuration. *)

val close : cset -> (unit, error) result
(** End of history: some carried configuration must have no undecided
    {e must} op left (a commit-resolved op that can never linearize is a
    linearizability violation, exactly as in {!Lin}). *)

val cardinal : cset -> int
(** Configurations currently carried. *)

val max_pending : cset -> int
(** Largest undecided-op set across carried configurations. *)

(** {1 Whole-history convenience}

    Same entry preprocessing as {!Lin.check} (fate handling, ambiguous
    reads dropped, per-key partitions), but each partition is swept
    through quiescent cuts instead of searched whole — the reference
    implementation the sampling recorder's online variant is tested
    against, and itself testable against {!Lin} for equivalence. *)

type result_ = {
  verdict : Lin.verdict;
  checked_ops : int;
  dropped_ambiguous_reads : int;
  skipped_unrecognized : int;
  partitions : int;
  windows : int;  (** total windows advanced across partitions *)
  max_window_ops : int;
  max_configs_carried : int;
}

val check :
  ?max_steps:int -> ?max_configs:int -> Spec.t -> History.entry list ->
  result_

val pp_result : Format.formatter -> result_ -> unit
