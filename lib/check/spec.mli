(** Sequential specifications the linearizability checker tests histories
    against.

    A model is a deterministic sequential machine over string requests and
    string responses — the same wire-level requests the replicated apps
    execute.  State is kept {e serialized} (a plain [string]) because the
    checker memoizes visited configurations keyed on it; models must
    therefore serialize canonically (equal states ⇒ equal strings). *)

type t = {
  name : string;
  init : string;  (** serialized initial state (of one partition) *)
  key_of : string -> string option;
      (** Partition key of a request, if the model is partitionable: ops on
          different keys commute, so each key is checked independently
          (Wing–Gill is exponential in concurrent ops).  [None] puts the
          request in the single unnamed partition. *)
  apply : string -> string -> (string * string) option;
      (** [apply state request] is [Some (state', response)], or [None] if
          the model does not recognise the request (such entries are
          skipped by the checker and counted). *)
  is_read : string -> bool;
      (** Read-only requests: a timed-out read imposes no constraint on
          the history and is dropped outright (it neither changed state
          nor revealed any). *)
  pin : string -> string -> string option;
      (** [pin request response] is the partition state {e after} applying
          [request], reconstructed from the observed [response] alone —
          or [None] when the response does not determine it.  Lets the
          windowed checker ({!Window}) recover from an unknown (⊥)
          initial state: the first pinnable op of a late-tracked key
          re-anchors the model.  Soundness requirement: if
          [apply s request = Some (s', response)] for {e any} [s], then
          [pin request response] is [None] or [Some s']. *)
}

val register : t
(** Per-key read/write register over the kv wire format used by the
    bundled stores ([lib/apps] kyoto / leveldb):
    ["SET k v"] → ["OK"], ["GET k"] → value or ["NOTFOUND"],
    ["DEL k"] → ["OK"].  Partitioned by key. *)

val counter : t
(** Single shared counter matching the counter app used by the dedup
    smoke and the check runner: any request starting with ["INC"]
    increments and returns the new value; ["GET"] returns the current
    value.  (The suffix after ["INC"] is an idempotency tag the app
    ignores — it makes every logical increment's payload unique so the
    history recorder can resolve the fate of timed-out requests.)
    Unpartitioned. *)

val keyed_counter : t
(** Per-key counters, ["INC k tag"] / ["GET k"]: the partitionable
    variant of {!counter} the open-loop load checker uses.  [INC]
    returns the key's new value; the tag keeps payloads globally unique
    for fate resolution.  Partitioned by key. *)

val of_string : string -> t option
val name : t -> string

val words : string -> string list
(** Whitespace-split, empty tokens dropped — the request grammar all the
    bundled apps share. *)
