(** Complete-history recorder for the correctness harness.

    Runs inside the deterministic simulator: client drivers bracket every
    call with {!invoke}/{!finish} (or use {!record}), and frontend taps
    ({!wire}) report what the replicas actually committed, so a
    client-side timeout whose request did execute can be {e resolved}
    instead of staying ambiguous.

    Fate resolution is keyed on the request {e payload} and is only
    applied when the payload is unique across the whole history — the
    runner makes every effectful request unique (values / idempotency
    tags embed the op id), reads need no resolution.  This sidesteps
    [(client, seq)] bookkeeping across client retries and sharded
    routers, and is sound: a commit tap for a unique payload proves that
    exact logical request took effect. *)

type fate =
  | Returned of string  (** the client saw this response *)
  | Timed_out
      (** the client gave up and no tap resolved the fate: the request
          may or may not have executed (at-most-once ambiguity) *)
  | Resolved of string
      (** the client timed out, but a frontend tap saw the request
          commit with this response: it {e did} execute, and for
          linearization purposes it never returned (return time +∞) *)

type entry = {
  id : int;  (** dense, in invocation order *)
  client : int;
  request : string;
  invoke : float;
  return_ : float;
      (** when the client saw the response or gave up; [infinity] for an
          operation still pending when the run was cut off *)
  fate : fate;
}

type stats = {
  ops : int;
  completed : int;  (** [Returned] *)
  timeouts : int;  (** [Timed_out] after resolution *)
  resolved : int;  (** [Resolved] *)
  double_commits : int;
      (** extra commits observed for a payload beyond the first — in a
          correct stack always 0; the dedup-off injection makes it
          positive *)
}

type t

val create : Sim.Engine.t -> t

val wire : t -> Rex_core.Frontend.t list -> unit
(** Attach this recorder's tap to each frontend (replacing any previous
    tap).  Call again after a replica restart: the recreated server has a
    fresh frontend. *)

val invoke : t -> client:int -> request:string -> int
(** Timestamp and record an invocation; returns the op id. *)

val finish : t -> int -> string option -> unit
(** Timestamp the response ([Some resp]) or the client giving up
    ([None]). *)

val record :
  t -> client:int -> request:string -> (unit -> string option) ->
  string option
(** [invoke] / run the thunk / [finish], returning the thunk's result. *)

val resolve : t -> unit
(** Fold tap observations into the entries: every [Timed_out] entry whose
    payload is globally unique and was seen committing becomes
    [Resolved].  Idempotent; call after the run settles, before
    {!entries}. *)

val entries : t -> entry list
(** In id order. *)

val stats : t -> stats

val to_lines : t -> string list
(** Deterministic one-line-per-op rendering (same seed ⇒ byte-identical
    output), for repro artifacts and golden comparisons. *)
