type verdict = Linearizable | Non_linearizable of string list | Limit

type result = {
  verdict : verdict;
  checked_ops : int;
  dropped_ambiguous_reads : int;
  skipped_unrecognized : int;
  partitions : int;
  configs_explored : int;
}

(* One operation, preprocessed for the search. *)
type op = {
  req : string;
  expected : string option;  (* None: any response acceptable *)
  must : bool;  (* must appear in the linearization *)
  t_inv : float;
  t_ret : float;  (* infinity when the return never happened *)
}

(* Dancing-links node in the event list. *)
type node = {
  op : int;
  is_ret : bool;
  mutable prev : node option;
  mutable next : node option;
}

let unlink n =
  (match n.prev with Some p -> p.next <- n.next | None -> ());
  match n.next with Some s -> s.prev <- n.prev | None -> ()

let relink n =
  (match n.prev with Some p -> p.next <- Some n | None -> ());
  match n.next with Some s -> s.prev <- Some n | None -> ()

exception Out_of_steps

(* Check one partition.  Returns [Ok configs] or [Error (witness, configs)]. *)
let check_partition ~steps ~max_steps (model : Spec.t) (ops : op array) =
  let n = Array.length ops in
  if n = 0 then Ok 0
  else begin
    (* Event list: invokes and (for must ops) returns, time-ordered,
       invokes before returns on ties so a response observed at the same
       instant as another op's invoke is treated as concurrent. *)
    let events = ref [] in
    Array.iteri
      (fun i o ->
        events := (o.t_inv, false, i) :: !events;
        if o.must && o.t_ret < Float.infinity then
          events := (o.t_ret, true, i) :: !events)
      ops;
    let events =
      List.sort
        (fun (t1, r1, i1) (t2, r2, i2) ->
          match compare t1 t2 with
          | 0 -> ( match compare r1 r2 with 0 -> compare i1 i2 | c -> c)
          | c -> c)
        !events
    in
    let head = { op = -1; is_ret = false; prev = None; next = None } in
    let inv_node = Array.make n head and ret_node = Array.make n None in
    let tail =
      List.fold_left
        (fun at (_, is_ret, i) ->
          let nd = { op = i; is_ret; prev = Some at; next = None } in
          at.next <- Some nd;
          if is_ret then ret_node.(i) <- Some nd else inv_node.(i) <- nd;
          nd)
        head events
    in
    ignore tail;
    let lin = Bytes.make ((n + 7) / 8) '\000' in
    let set_bit i =
      let b = Char.code (Bytes.get lin (i lsr 3)) in
      Bytes.set lin (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))
    and clear_bit i =
      let b = Char.code (Bytes.get lin (i lsr 3)) in
      Bytes.set lin (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7))))
    in
    let cache : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
    let remaining_must =
      ref (Array.fold_left (fun a o -> if o.must then a + 1 else a) 0 ops)
    in
    let state = ref model.Spec.init in
    let stack : (int * string) list ref = ref [] in
    let entry = ref head.next in
    let failed = ref false in
    while !remaining_must > 0 && not !failed do
      incr steps;
      if !steps > max_steps then raise Out_of_steps;
      match !entry with
      | None | Some { is_ret = true; _ } -> (
        (* End of list, or blocked on the return of an op we have not
           linearized: undo the most recent choice and scan on past
           it. *)
        match !stack with
        | [] -> failed := true
        | (i, prev_state) :: rest ->
          stack := rest;
          Option.iter relink ret_node.(i);
          relink inv_node.(i);
          clear_bit i;
          if ops.(i).must then incr remaining_must;
          state := prev_state;
          entry := inv_node.(i).next)
      | Some nd ->
        let i = nd.op in
        let o = ops.(i) in
        let advance () = entry := nd.next in
        (match model.Spec.apply !state o.req with
        | None -> advance ()  (* unrecognized: filtered earlier *)
        | Some (state', resp) ->
          let resp_ok =
            match o.expected with None -> true | Some r -> r = resp
          in
          if not resp_ok then advance ()
          else begin
            set_bit i;
            let key = Bytes.to_string lin ^ "\000" ^ state' in
            if Hashtbl.mem cache key then begin
              clear_bit i;
              advance ()
            end
            else begin
              Hashtbl.add cache key ();
              stack := (i, !state) :: !stack;
              unlink inv_node.(i);
              Option.iter unlink ret_node.(i);
              if o.must then decr remaining_must;
              state := state';
              entry := head.next
            end
          end)
    done;
    if !failed then Error (Hashtbl.length cache) else Ok (Hashtbl.length cache)
  end

let default_max_steps = 5_000_000

let check ?(max_steps = default_max_steps) (model : Spec.t) entries =
  let skipped = ref 0 and dropped_reads = ref 0 and checked = ref 0 in
  (* Partition by model key. *)
  let parts : (string, op list ref) Hashtbl.t = Hashtbl.create 16 in
  let add key op =
    match Hashtbl.find_opt parts key with
    | Some l -> l := op :: !l
    | None -> Hashtbl.replace parts key (ref [ op ])
  in
  List.iter
    (fun (e : History.entry) ->
      match model.Spec.apply model.Spec.init e.request with
      | None -> incr skipped
      | Some _ -> (
        let key = Option.value (model.Spec.key_of e.request) ~default:"" in
        match e.fate with
        | History.Returned r ->
          incr checked;
          add key
            { req = e.request; expected = Some r; must = true;
              t_inv = e.invoke; t_ret = e.return_ }
        | History.Resolved r ->
          incr checked;
          add key
            { req = e.request; expected = Some r; must = true;
              t_inv = e.invoke; t_ret = Float.infinity }
        | History.Timed_out ->
          if model.Spec.is_read e.request then incr dropped_reads
          else begin
            incr checked;
            add key
              { req = e.request; expected = None; must = false;
                t_inv = e.invoke; t_ret = Float.infinity }
          end))
    entries;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) parts [] |> List.sort compare
  in
  let steps = ref 0 in
  let configs = ref 0 in
  let witnesses = ref [] in
  let limited = ref false in
  List.iter
    (fun k ->
      if not !limited then
        let ops = Array.of_list (List.rev !(Hashtbl.find parts k)) in
        match check_partition ~steps ~max_steps model ops with
        | Ok c -> configs := !configs + c
        | Error c ->
          configs := !configs + c;
          let label = if k = "" then model.Spec.name else k in
          witnesses :=
            Printf.sprintf
              "partition %S: no linearization of %d ops exists" label
              (Array.length ops)
            :: !witnesses
        | exception Out_of_steps -> limited := true)
    keys;
  let verdict =
    if !limited then Limit
    else if !witnesses = [] then Linearizable
    else Non_linearizable (List.rev !witnesses)
  in
  {
    verdict;
    checked_ops = !checked;
    dropped_ambiguous_reads = !dropped_reads;
    skipped_unrecognized = !skipped;
    partitions = List.length keys;
    configs_explored = !configs;
  }

let pp_result ppf r =
  let v =
    match r.verdict with
    | Linearizable -> "linearizable"
    | Non_linearizable w ->
      Printf.sprintf "NON-LINEARIZABLE (%d partition%s)" (List.length w)
        (if List.length w = 1 then "" else "s")
    | Limit -> "UNDECIDED (step budget exhausted)"
  in
  Format.fprintf ppf
    "%s: %d ops over %d partitions, %d configs explored (%d ambiguous reads dropped, %d unrecognized skipped)"
    v r.checked_ops r.partitions r.configs_explored r.dropped_ambiguous_reads
    r.skipped_unrecognized
