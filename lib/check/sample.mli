(** Bounded-memory history recorder for open-loop load runs.

    {!History} keeps every cell of every operation — the right tool for
    the closed-loop harness, unusable at 10^5–10^6 sessions.  This
    recorder keeps memory bounded by two levers and still produces a
    sound linearizability verdict for what it watched:

    - {e key reservoir}: Algorithm-R sampling over distinct partition
      keys at first occurrence, so at most [keys_cap] keys are ever
      tracked and each tracked key's history is complete from its first
      op (known initial state).  Ops on untracked keys are counted and
      dropped.
    - {e online windowed checking}: each tracked key buffers completed
      ops only until a quiescent cut, then advances the {!Window}
      configuration set and discards the buffer.  If a key refuses to
      quiesce before [window_cap] buffered ops, its state is re-anchored
      at the ⊥ configuration (buffer dropped, counted in
      [stats.resets]) — memory stays bounded at the cost of checking
      that segment best-effort from an unknown state.

    Rejection accounting: an op the load engine reports terminally shed
    (every attempt answered [Busy]) was never admitted, so it must never
    commit.  {!reject} records the payload; a later commit tap for it —
    or one observed before the client gave up — is flagged as a
    violation.  Commit taps ({!wire}) also catch double execution
    directly: two commits for one live payload is the dedup-off
    signature, reported without waiting for the windowed search to
    notice the state skew.

    Thread-safe: every entry point takes an internal lock, so callers on
    the domains backend may record concurrently.  Timestamps are passed
    in explicitly ([~now]) — the recorder never touches an engine
    clock. *)

type t

type violation = { v_key : string; v_kind : string; v_detail : string }
(** [v_kind] is one of ["non-linearizable"], ["double-commit"],
    ["rejected-op-committed"], ["unresolved-commit"]. *)

type stats = {
  seen_keys : int;  (** distinct partition keys observed *)
  tracked_keys : int;
  evicted_keys : int;  (** tracked keys displaced by the reservoir *)
  recorded_ops : int;
  skipped_ops : int;  (** untracked key, evicted mid-flight, or ⊥ reset *)
  dropped_ambiguous_reads : int;
  rejected_ops : int;
  windows : int;
  resets : int;  (** ⊥ re-anchors forced by [window_cap] *)
  max_live_ops : int;
      (** high-water mark of in-flight + buffered ops — the memory bound *)
  commits_seen : int;
  double_commits : int;
  limited : bool;  (** some window tripped a search budget *)
}

val create :
  ?keys_cap:int ->
  ?window_cap:int ->
  ?flush_min:int ->
  ?max_steps:int ->
  ?max_configs:int ->
  seed:int ->
  Spec.t ->
  t
(** Defaults: [keys_cap] 64 tracked keys, [window_cap] 512 buffered ops
    per key before a ⊥ reset, [flush_min] 1 (advance at every quiescent
    cut). [seed] drives the reservoir's coin only. *)

val wire : t -> Rex_core.Frontend.t list -> unit
(** Attach commit/dup taps (replacing any previous tap) — enables fate
    resolution, double-commit detection, and rejection accounting. *)

val invoke : t -> now:float -> client:int -> request:string -> int
(** Record an invocation; returns an op token, or [-1] if the key is
    untracked (pass it to {!finish}/{!reject} anyway — they ignore it). *)

val finish : t -> now:float -> int -> string option -> unit
(** [Some resp]: the client saw [resp].  [None]: the client gave up; a
    write becomes ambiguous (or commit-resolved if a tap saw it). *)

val reject : t -> now:float -> int -> unit
(** The op was terminally refused admission (shed): excluded from
    linearization, watched for the must-never-commit invariant. *)

val finalize : t -> unit
(** Flush every residual buffer (ops still in flight become ambiguous)
    and close every tracked key's configuration set.  Call once, after
    the run settles and before {!violations}/{!ok}. *)

val violations : t -> violation list
val ok : t -> bool
(** No violations and no budget tripped. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
