type t = {
  name : string;
  init : string;
  key_of : string -> string option;
  apply : string -> string -> (string * string) option;
  is_read : string -> bool;
}

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Register state: "N" = absent, "A<value>" = present with <value>.  The
   prefix byte keeps the empty value distinguishable from absence. *)
let register =
  let key_of req =
    match words req with
    | [ "SET"; k; _ ] | [ "GET"; k ] | [ "DEL"; k ] -> Some k
    | _ -> None
  in
  let apply state req =
    match words req with
    | [ "SET"; _; v ] -> Some ("A" ^ v, "OK")
    | [ "DEL"; _ ] -> Some ("N", "OK")
    | [ "GET"; _ ] ->
      let resp =
        if state = "N" then "NOTFOUND"
        else String.sub state 1 (String.length state - 1)
      in
      Some (state, resp)
    | _ -> None
  in
  let is_read req =
    match words req with [ "GET"; _ ] -> true | _ -> false
  in
  { name = "register"; init = "N"; key_of; apply; is_read }

let counter =
  let apply state req =
    let n = int_of_string state in
    if String.length req >= 3 && String.sub req 0 3 = "INC" then
      let n' = n + 1 in
      Some (string_of_int n', string_of_int n')
    else if req = "GET" || String.length req >= 4 && String.sub req 0 4 = "GET "
    then Some (state, string_of_int n)
    else None
  in
  let is_read req = String.length req >= 3 && String.sub req 0 3 = "GET" in
  {
    name = "counter";
    init = "0";
    key_of = (fun _ -> None);
    apply;
    is_read;
  }

let of_string = function
  | "register" | "kv" -> Some register
  | "counter" -> Some counter
  | _ -> None

let name t = t.name
