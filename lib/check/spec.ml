type t = {
  name : string;
  init : string;
  key_of : string -> string option;
  apply : string -> string -> (string * string) option;
  is_read : string -> bool;
  pin : string -> string -> string option;
}

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Register state: "N" = absent, "A<value>" = present with <value>.  The
   prefix byte keeps the empty value distinguishable from absence. *)
let register =
  let key_of req =
    match words req with
    | [ "SET"; k; _ ] | [ "GET"; k ] | [ "DEL"; k ] -> Some k
    | _ -> None
  in
  let apply state req =
    match words req with
    | [ "SET"; _; v ] -> Some ("A" ^ v, "OK")
    | [ "DEL"; _ ] -> Some ("N", "OK")
    | [ "GET"; _ ] ->
      let resp =
        if state = "N" then "NOTFOUND"
        else String.sub state 1 (String.length state - 1)
      in
      Some (state, resp)
    | _ -> None
  in
  let is_read req =
    match words req with [ "GET"; _ ] -> true | _ -> false
  in
  let pin req resp =
    match words req with
    | [ "SET"; _; v ] -> Some ("A" ^ v)
    | [ "DEL"; _ ] -> Some "N"
    | [ "GET"; _ ] -> Some (if resp = "NOTFOUND" then "N" else "A" ^ resp)
    | _ -> None
  in
  { name = "register"; init = "N"; key_of; apply; is_read; pin }

let counter =
  let apply state req =
    let n = int_of_string state in
    if String.length req >= 3 && String.sub req 0 3 = "INC" then
      let n' = n + 1 in
      Some (string_of_int n', string_of_int n')
    else if req = "GET" || String.length req >= 4 && String.sub req 0 4 = "GET "
    then Some (state, string_of_int n)
    else None
  in
  let is_read req = String.length req >= 3 && String.sub req 0 3 = "GET" in
  let pin req resp =
    (* Both INC (returns the new value) and GET (returns the value)
       reveal the post-state exactly. *)
    match int_of_string_opt resp with
    | Some _
      when String.length req >= 3
           && (String.sub req 0 3 = "INC" || String.sub req 0 3 = "GET") ->
      Some resp
    | _ -> None
  in
  {
    name = "counter";
    init = "0";
    key_of = (fun _ -> None);
    apply;
    is_read;
    pin;
  }

(* Per-key counters over the open-loop wire format: ["INC k tag"] bumps
   key [k] and returns its new value (the tag is an ignored idempotency
   marker that keeps payloads globally unique), ["GET k"] reads it.
   Partitioned by key, so Wing–Gill search cost scales with per-key — not
   global — concurrency: the model the million-session load checker
   uses. *)
let keyed_counter =
  let key_of req =
    match words req with
    | "INC" :: k :: _ -> Some k
    | [ "GET"; k ] -> Some k
    | _ -> None
  in
  let apply state req =
    match int_of_string_opt state with
    | None -> None
    | Some n -> (
      match words req with
      | "INC" :: _ :: _ ->
        let n' = n + 1 in
        Some (string_of_int n', string_of_int n')
      | [ "GET"; _ ] -> Some (state, string_of_int n)
      | _ -> None)
  in
  let is_read req = match words req with [ "GET"; _ ] -> true | _ -> false in
  let pin req resp =
    match int_of_string_opt resp with
    | None -> None
    | Some _ -> (
      match words req with
      | "INC" :: _ :: _ | [ "GET"; _ ] -> Some resp
      | _ -> None)
  in
  { name = "keyed-counter"; init = "0"; key_of; apply; is_read; pin }

let of_string = function
  | "register" | "kv" -> Some register
  | "counter" -> Some counter
  | "keyed-counter" | "keyed_counter" -> Some keyed_counter
  | _ -> None

let name t = t.name
