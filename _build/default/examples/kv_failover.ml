(* Failover demo: a replicated LevelDB-style store survives losing its
   primary mid-load, and a restarted replica rejoins from a checkpoint.

   Run with:  dune exec examples/kv_failover.exe *)

open Sim
module R = Rex_core

let () =
  let cfg =
    R.Config.make ~workers:6 ~checkpoint_interval:(Some 0.5)
      ~replicas:[ 0; 1; 2 ] ()
  in
  let cluster =
    R.Cluster.create ~seed:21 cfg (Apps.Leveldb.factory ~memtable_limit:16 ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  Printf.printf "primary: replica %d\n" (R.Server.node primary);
  let eng = R.Cluster.engine cluster in

  (* Continuous client load that survives the failover by retrying. *)
  let gen = Workload.Mix.kv ~n_keys:500 ~read_ratio:0.3 () in
  let rng = Rng.create 7 in
  let oks = ref 0 and drops = ref 0 in
  let stop = ref false in
  for _ = 1 to 8 do
    ignore
      (Engine.spawn eng ~node:(R.Cluster.client_node cluster) (fun () ->
           let client = R.Cluster.client cluster in
           while not !stop do
             match R.Client.call client (gen rng) with
             | Some _ -> incr oks
             | None -> incr drops
           done))
  done;
  R.Cluster.run_for cluster 2.0;
  Printf.printf "phase 1: %d requests served, %d retried-out\n" !oks !drops;

  (* Kill the primary. *)
  let victim = R.Server.node primary in
  Printf.printf "\n*** crashing primary (replica %d) ***\n" victim;
  R.Cluster.crash cluster victim;
  R.Cluster.run_for cluster 2.0;
  let new_primary = R.Cluster.await_primary cluster in
  Printf.printf "new primary: replica %d\n" (R.Server.node new_primary);
  Printf.printf "phase 2: %d requests served so far\n" !oks;

  (* Restart the old primary: it fetches a checkpoint if needed, replays
     the committed trace, and rejoins as a secondary. *)
  Printf.printf "\n*** restarting replica %d ***\n" victim;
  R.Cluster.restart cluster victim;
  R.Cluster.run_for cluster 5.0;
  stop := true;
  R.Cluster.run_for cluster 1.0;

  Printf.printf "\nfinal: %d requests served, %d dropped during transitions\n"
    !oks !drops;
  Array.iter
    (fun s ->
      Printf.printf "replica %d digest: %s%s%s\n" (R.Server.node s)
        (R.Server.app_digest s)
        (if R.Server.is_primary s then "  (primary)" else "")
        (match R.Server.divergence s with
        | Some _ -> "  DIVERGED!"
        | None -> ""))
    (R.Cluster.servers cluster);
  let ckpts =
    Array.fold_left
      (fun acc s -> acc + (R.Server.stats s).R.Server.checkpoints_written)
      0 (R.Cluster.servers cluster)
  in
  Printf.printf "checkpoints written by secondaries: %d\n" ckpts
