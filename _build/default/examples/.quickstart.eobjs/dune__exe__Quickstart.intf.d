examples/quickstart.mli:
