examples/build_your_own.mli:
