examples/kv_failover.ml: Apps Array Engine Printf Rex_core Rng Sim Workload
