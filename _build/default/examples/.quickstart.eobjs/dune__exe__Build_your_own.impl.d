examples/build_your_own.ml: Array Codec Engine Hashtbl List Option Printf Queue Rex_core Rexsync Sim String
