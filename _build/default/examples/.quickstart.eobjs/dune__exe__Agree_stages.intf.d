examples/agree_stages.mli:
