examples/lock_service.ml: Apps Array Engine List Printf Rex_core Sim
