examples/agree_stages.ml: Array Codec Engine Eve List Net Option Paxos Printf Rex_core Rexsync Rng Rpc Sim String
