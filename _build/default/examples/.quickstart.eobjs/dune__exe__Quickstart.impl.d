examples/quickstart.ml: Array Codec Engine Printf Rex_core Rexsync Sim String
