(* One application, three replication models:

   - Rex over Paxos       (execute-agree-follow, the paper's design)
   - Rex over a chain     (same execute/follow, different agree stage, §7)
   - Eve-style            (execute-verify: batch, run independently,
                           compare digests, §5)

   All three replicate the same sharded-counter app; the run prints each
   model's throughput for the same 2 000-request workload and shows all
   replicas converging.

   Run with:  dune exec examples/agree_stages.exe *)

open Sim
module R = Rex_core

let counter_app : R.App.factory =
 fun api ->
  let shards = 8 in
  let counters = Array.make shards 0 in
  let locks =
    Array.init shards (fun i -> R.Api.lock api (Printf.sprintf "c%d" i))
  in
  let execute ~request =
    match String.split_on_char ' ' request with
    | [ "INC"; s ] ->
      let i = int_of_string s mod shards in
      R.Api.work api 1e-5;
      Rexsync.Lock.with_lock locks.(i) (fun () ->
          counters.(i) <- counters.(i) + 1;
          string_of_int counters.(i))
    | _ -> "ERR"
  in
  {
    R.App.name = "counter";
    execute;
    query = (fun ~request:_ -> "");
    write_checkpoint = (fun sink -> Array.iter (Codec.write_uvarint sink) counters);
    read_checkpoint =
      (fun src ->
        for i = 0 to shards - 1 do
          counters.(i) <- Codec.read_uvarint src
        done);
    digest =
      (fun () ->
        String.concat "," (Array.to_list (Array.map string_of_int counters)));
  }

let n_requests = 2000

let run_rex_cluster name agreement =
  let cfg = R.Config.make ~workers:8 ~replicas:[ 0; 1; 2 ] () in
  let cluster = R.Cluster.create ~seed:5 ~agreement cfg counter_app in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let t0 = Engine.clock eng in
  let completed = ref 0 and launched = ref 0 in
  let rng = Rng.create 9 in
  let rec submit_one () =
    if !launched < n_requests then begin
      incr launched;
      R.Server.submit primary
        (Printf.sprintf "INC %d" (Rng.int rng 1000))
        (fun _ ->
          incr completed;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to 64 do
           submit_one ()
         done));
  while !completed < n_requests do
    Engine.run ~until:(Engine.clock eng +. 0.1) eng
  done;
  let dt = Engine.clock eng -. t0 in
  R.Cluster.run_for cluster 0.5;
  let digests =
    Array.to_list (R.Cluster.servers cluster) |> List.map R.Server.app_digest
  in
  Printf.printf "%-14s %8.0f req/s   replicas agree: %b\n%!" name
    (float_of_int n_requests /. dt)
    (List.for_all (( = ) (List.hd digests)) digests)

let run_eve () =
  let eng = Engine.create ~seed:5 ~cores_per_node:16 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = Eve.default_config ~workers:8 ~replicas:[ 0; 1; 2 ] () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let conflict_keys req =
    match String.split_on_char ' ' req with [ "INC"; s ] -> [ s ] | _ -> []
  in
  let servers =
    Array.init 3 (fun i ->
        Eve.create net rpc cfg ~node:i ~paxos_store:stores.(i) ~conflict_keys
          counter_app)
  in
  Array.iter Eve.start servers;
  Engine.run ~until:1.0 eng;
  let primary = Option.get (Array.find_opt Eve.is_primary servers) in
  let t0 = Engine.clock eng in
  let completed = ref 0 and launched = ref 0 in
  let rng = Rng.create 9 in
  let rec submit_one () =
    if !launched < n_requests then begin
      incr launched;
      Eve.submit primary
        (Printf.sprintf "INC %d" (Rng.int rng 1000))
        (fun _ ->
          incr completed;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         for _ = 1 to 64 do
           submit_one ()
         done));
  while !completed < n_requests do
    Engine.run ~until:(Engine.clock eng +. 0.1) eng
  done;
  let dt = Engine.clock eng -. t0 in
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  let digests = Array.to_list servers |> List.map Eve.app_digest in
  Printf.printf "%-14s %8.0f req/s   replicas agree: %b   (batches avg %.1f)\n%!"
    "eve"
    (float_of_int n_requests /. dt)
    (List.for_all (( = ) (List.hd digests)) digests)
    (Eve.stats primary).Eve.avg_batch

let () =
  Printf.printf "replicating the same app under three models (%d requests):\n"
    n_requests;
  run_rex_cluster "rex/paxos" `Paxos;
  run_rex_cluster "rex/chain" `Chain;
  run_eve ()
