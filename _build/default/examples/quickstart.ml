(* Quickstart: replicate a tiny multi-threaded counter service with Rex.

   Run with:  dune exec examples/quickstart.exe

   It shows the whole API surface in ~60 lines of application code:
   - write a handler that uses Rex locks for concurrency;
   - stand up a 3-replica cluster inside the simulator;
   - submit requests through the client library;
   - observe that all replicas converge to the same state. *)

open Sim
module R = Rex_core

(* 1. The application: a counter service with 4 lock-sharded counters.
   Handlers run concurrently on every worker thread of the primary and
   are replayed with identical interleavings on the secondaries. *)
let counter_app : R.App.factory =
 fun api ->
  let shards = 4 in
  let counters = Array.make shards 0 in
  let locks =
    Array.init shards (fun i -> R.Api.lock api (Printf.sprintf "counter%d" i))
  in
  let execute ~request =
    match String.split_on_char ' ' request with
    | [ "INC"; shard ] ->
      let i = int_of_string shard mod shards in
      R.Api.work api 1e-5 (* some computation outside the lock *);
      Rexsync.Lock.with_lock locks.(i) (fun () ->
          counters.(i) <- counters.(i) + 1;
          string_of_int counters.(i))
    | _ -> "ERR"
  in
  let query ~request =
    match String.split_on_char ' ' request with
    | [ "READ"; shard ] ->
      let i = int_of_string shard mod shards in
      Rexsync.Lock.with_lock locks.(i) (fun () -> string_of_int counters.(i))
    | _ -> "ERR"
  in
  {
    R.App.name = "quickstart-counter";
    execute;
    query;
    write_checkpoint =
      (fun sink -> Array.iter (Codec.write_uvarint sink) counters);
    read_checkpoint =
      (fun src ->
        for i = 0 to shards - 1 do
          counters.(i) <- Codec.read_uvarint src
        done);
    digest =
      (fun () ->
        String.concat "," (Array.to_list (Array.map string_of_int counters)));
  }

let () =
  (* 2. A three-replica group (nodes 0-2) plus one client node. *)
  let cfg = R.Config.make ~workers:4 ~replicas:[ 0; 1; 2 ] () in
  let cluster = R.Cluster.create cfg counter_app in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  Printf.printf "primary elected: replica %d\n" (R.Server.node primary);

  (* 3. Drive 100 increments from a client fiber. *)
  let eng = R.Cluster.engine cluster in
  let client = R.Cluster.client cluster in
  ignore
    (Engine.spawn eng ~node:(R.Cluster.client_node cluster) (fun () ->
         for i = 1 to 100 do
           match R.Client.call client (Printf.sprintf "INC %d" (i mod 4)) with
           | Some reply ->
             if i mod 25 = 0 then
               Printf.printf "request %3d -> counter value %s\n" i reply
           | None -> Printf.printf "request %d dropped\n" i
         done));
  R.Cluster.run_for cluster 10.0;

  (* 4. Every replica reached the same state, via different thread
     interleavings replayed from the same trace. *)
  Array.iter
    (fun s ->
      Printf.printf "replica %d state: [%s]%s\n" (R.Server.node s)
        (R.Server.app_digest s)
        (if R.Server.is_primary s then "  (primary)" else ""))
    (R.Cluster.servers cluster);
  let st = R.Server.runtime_stats primary in
  Printf.printf
    "trace recorded by primary: %d events, %d causal edges (%d made \
     redundant by reduction)\n"
    st.Rexsync.Runtime.events_recorded st.Rexsync.Runtime.edges_recorded
    st.Rexsync.Runtime.edges_reduced
