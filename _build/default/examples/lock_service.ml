(* A Chubby-style replicated lock service (the paper's headline use case):
   clients create locked files and renew leases against the primary, and
   read-only queries are served by a secondary on committed state — the
   two query semantics of §6.5.

   Run with:  dune exec examples/lock_service.exe *)

open Sim
module R = Rex_core

let () =
  let cfg = R.Config.make ~workers:8 ~replicas:[ 0; 1; 2 ] () in
  let cluster = R.Cluster.create ~seed:33 cfg (Apps.Lock_server.factory ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let secondary =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find (fun s -> not (R.Server.is_primary s))
  in
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  let finished = ref false in
  ignore
    (Engine.spawn eng ~node:cnode (fun () ->
         let client = R.Cluster.client cluster in
         let call req =
           match R.Client.call client req with
           | Some r -> r
           | None -> "TIMEOUT"
         in
         (* Create a lock file, renew its lease a few times. *)
         Printf.printf "CREATE /svc/leader-election/master -> %s\n"
           (call "CREATE /svc/leader-election/master 512 x");
         for _ = 1 to 3 do
           Printf.printf "RENEW -> %s\n" (call "RENEW /svc/leader-election/master")
         done;
         Printf.printf "UPDATE (new epoch data) -> %s\n"
           (call "UPDATE /svc/leader-election/master 1024 x");
         (* Linearizable read through replication. *)
         Printf.printf "replicated READ -> %s\n"
           (call "READ /svc/leader-election/master");
         finished := true));
  R.Cluster.run_for cluster 5.0;
  assert !finished;

  (* Query semantics: committed state on a secondary vs (possibly
     speculative) state on the primary. *)
  ignore
    (Engine.spawn eng ~node:(R.Server.node secondary) (fun () ->
         Printf.printf "query on SECONDARY (committed): %s\n"
           (R.Server.query secondary "READ /svc/leader-election/master")));
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         Printf.printf "query on PRIMARY (speculative): %s\n"
           (R.Server.query primary "READ /svc/leader-election/master")));
  R.Cluster.run_for cluster 1.0;
  Printf.printf "all replicas digest-equal: %b\n"
    (let ds =
       Array.to_list (R.Cluster.servers cluster)
       |> List.map R.Server.app_digest
     in
     List.for_all (( = ) (List.hd ds)) ds)
