(* Building your own Rex application: a worked tour of the programming
   model (paper Fig. 6) — every synchronization primitive, background
   timers, recorded nondeterminism, and NATIVE_EXEC.

   The app is a small job queue: producers submit jobs with randomly
   assigned ids (recorded nondeterminism), a bounded buffer coordinates
   with a condition variable, a semaphore rate-limits "expensive" jobs,
   and a background janitor timer retires finished jobs.

   Run with:  dune exec examples/build_your_own.exe *)

open Sim
module R = Rex_core

let job_queue_app : R.App.factory =
 fun api ->
  (* Rex primitives: identical on every replica; the ordering of
     operations on them is the only nondeterminism Rex must agree on. *)
  let m = R.Api.lock api "jq.mutex" in
  let nonfull = R.Api.cond api "jq.nonfull" in
  let heavy_slots = R.Api.sem api "jq.heavy" 2 in
  let capacity = 8 in
  let buffer : (int * string) Queue.t = Queue.create () in
  let done_jobs = ref [] in
  let retired = ref 0 in
  (* The paper's Fig. 5 pattern: a lazily-created singleton whose
     initializing thread may differ across replicas — explicitly excluded
     from record/replay with NATIVE_EXEC. *)
  let config_singleton = ref None in
  let get_config () =
    R.Api.native api (fun () ->
        (match !config_singleton with
        | None -> config_singleton := Some "jq-config-v1"
        | Some _ -> ());
        Option.get !config_singleton)
  in
  (* A background task, replicated like any thread. *)
  R.Api.add_timer api ~name:"janitor" ~interval:5e-3 (fun () ->
      Rexsync.Lock.with_lock m (fun () ->
          retired := !retired + List.length !done_jobs;
          done_jobs := []));
  let execute ~request =
    ignore (get_config ());
    match String.split_on_char ' ' request with
    | [ "SUBMIT"; payload ] ->
      (* Recorded nondeterminism: the id is drawn on the primary and
         replayed verbatim on secondaries. *)
      let id = R.Api.random_int api 1_000_000 in
      Rexsync.Lock.with_lock m (fun () ->
          while Queue.length buffer >= capacity do
            Rexsync.Condvar.wait nonfull m
          done;
          Queue.push (id, payload) buffer);
      Printf.sprintf "QUEUED %d" id
    | [ "WORK" ] -> (
      let job =
        Rexsync.Lock.with_lock m (fun () ->
            let j = Queue.take_opt buffer in
            if j <> None then Rexsync.Condvar.signal nonfull;
            j)
      in
      match job with
      | None -> "IDLE"
      | Some (id, payload) ->
        let heavy = String.length payload > 5 in
        if heavy then Rexsync.Sem.acquire heavy_slots;
        R.Api.work api (if heavy then 2e-4 else 2e-5);
        if heavy then Rexsync.Sem.release heavy_slots;
        Rexsync.Lock.with_lock m (fun () ->
            done_jobs := id :: !done_jobs);
        Printf.sprintf "DONE %d" id)
    | _ -> "ERR"
  in
  let query ~request =
    match String.split_on_char ' ' request with
    | [ "DEPTH" ] ->
      Rexsync.Lock.with_lock m (fun () ->
          Printf.sprintf "queued=%d done=%d retired=%d" (Queue.length buffer)
            (List.length !done_jobs) !retired)
    | _ -> "ERR"
  in
  {
    R.App.name = "job-queue";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b (id, p) ->
            Codec.write_uvarint b id;
            Codec.write_string b p)
          (List.of_seq (Queue.to_seq buffer));
        Codec.write_list sink Codec.write_uvarint !done_jobs;
        Codec.write_uvarint sink !retired);
    read_checkpoint =
      (fun src ->
        Queue.clear buffer;
        Codec.read_list src (fun s ->
            let id = Codec.read_uvarint s in
            let p = Codec.read_string s in
            (id, p))
        |> List.iter (fun j -> Queue.push j buffer);
        done_jobs := Codec.read_list src Codec.read_uvarint;
        retired := Codec.read_uvarint src);
    digest =
      (fun () ->
        string_of_int
          (Hashtbl.hash
             (List.of_seq (Queue.to_seq buffer), !done_jobs, !retired)));
  }

let () =
  let cfg = R.Config.make ~workers:4 ~replicas:[ 0; 1; 2 ] () in
  let cluster = R.Cluster.create ~seed:55 cfg job_queue_app in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  ignore
    (Engine.spawn eng ~node:(R.Cluster.client_node cluster) (fun () ->
         let client = R.Cluster.client cluster in
         let call req = Option.value (R.Client.call client req) ~default:"TIMEOUT" in
         (* Interleave producers and consumers so the bounded buffer
            (capacity 8) never wedges the worker pool. *)
         for i = 1 to 12 do
           let payload = if i mod 3 = 0 then "heavy-payload" else "job" in
           Printf.printf "%-22s -> %s\n"
             (Printf.sprintf "SUBMIT %s" payload)
             (call (Printf.sprintf "SUBMIT %s" payload));
           if i mod 4 = 0 then
             for _ = 1 to 4 do
               Printf.printf "WORK                   -> %s\n" (call "WORK")
             done
         done;
         Printf.printf "state: %s\n" (R.Server.query primary "DEPTH")));
  R.Cluster.run_for cluster 10.0;
  Array.iter
    (fun s ->
      Printf.printf "replica %d digest: %s\n" (R.Server.node s)
        (R.Server.app_digest s))
    (R.Cluster.servers cluster);
  (* The recorded random ids were replayed, not re-drawn: digests match. *)
  let ds = Array.map R.Server.app_digest (R.Cluster.servers cluster) in
  assert (Array.for_all (( = ) ds.(0)) ds);
  print_endline "replicas agree (recorded nondeterminism replayed faithfully)"
