(* Unit and property tests for the binary wire format. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let roundtrip_uvarint () =
  let values = [ 0; 1; 127; 128; 300; 16384; 1 lsl 30; max_int / 2 ] in
  let round n =
    let b = Codec.sink () in
    Codec.write_uvarint b n;
    check_int (Printf.sprintf "uvarint %d" n) n
      (Codec.read_uvarint (Codec.source (Codec.contents b)))
  in
  List.iter round values

let roundtrip_varint () =
  let values = [ 0; 1; -1; 63; -64; 1000; -1000; max_int / 4; -(max_int / 4) ] in
  let round n =
    let b = Codec.sink () in
    Codec.write_varint b n;
    check_int (Printf.sprintf "varint %d" n) n
      (Codec.read_varint (Codec.source (Codec.contents b)))
  in
  List.iter round values

let varint_compactness () =
  (* Small magnitudes must stay small on the wire: the paper's ~16 B/event
     trace overhead depends on it. *)
  let size n =
    let b = Codec.sink () in
    Codec.write_varint b n;
    Codec.length b
  in
  check_int "0 is 1 byte" 1 (size 0);
  check_int "-1 is 1 byte" 1 (size (-1));
  check_int "63 is 1 byte" 1 (size 63);
  check_int "64 is 2 bytes" 2 (size 64)

let roundtrip_float () =
  let values = [ 0.; 1.5; -3.25; Float.pi; 1e300; -1e-300; Float.infinity ] in
  let round f =
    let b = Codec.sink () in
    Codec.write_float b f;
    Alcotest.(check (float 0.0))
      "float" f
      (Codec.read_float (Codec.source (Codec.contents b)))
  in
  List.iter round values

let roundtrip_string_list_option () =
  let b = Codec.sink () in
  Codec.write_string b "hello";
  Codec.write_list b Codec.write_string [ "a"; ""; "bc" ];
  Codec.write_option b Codec.write_uvarint (Some 7);
  Codec.write_option b Codec.write_uvarint None;
  Codec.write_pair b Codec.write_uvarint Codec.write_string (3, "x");
  let s = Codec.source (Codec.contents b) in
  Alcotest.(check string) "string" "hello" (Codec.read_string s);
  Alcotest.(check (list string))
    "list" [ "a"; ""; "bc" ]
    (Codec.read_list s Codec.read_string);
  Alcotest.(check (option int)) "some" (Some 7) (Codec.read_option s Codec.read_uvarint);
  Alcotest.(check (option int)) "none" None (Codec.read_option s Codec.read_uvarint);
  Alcotest.(check (pair int string))
    "pair" (3, "x")
    (Codec.read_pair s Codec.read_uvarint Codec.read_string);
  check_bool "fully consumed" true (Codec.at_end s)

let decode_errors () =
  let truncated = "\x05ab" in
  Alcotest.check_raises "truncated string"
    (Codec.Decode_error "read_string: truncated (5 bytes)") (fun () ->
      ignore (Codec.read_string (Codec.source truncated)));
  Alcotest.check_raises "empty byte"
    (Codec.Decode_error "read_byte: end of input") (fun () ->
      ignore (Codec.read_byte (Codec.source "")));
  let b = Codec.sink () in
  Codec.write_uvarint b 5;
  Codec.write_uvarint b 6;
  match Codec.decode Codec.read_uvarint (Codec.contents b) with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected trailing-bytes error"

let read_array_order () =
  let b = Codec.sink () in
  Codec.write_array b Codec.write_uvarint [| 10; 20; 30; 40 |];
  let a = Codec.read_array (Codec.source (Codec.contents b)) Codec.read_uvarint in
  Alcotest.(check (array int)) "order preserved" [| 10; 20; 30; 40 |] a

let substring_source () =
  let b = Codec.sink () in
  Codec.write_uvarint b 99;
  let payload = "XX" ^ Codec.contents b ^ "YY" in
  let s = Codec.source_of_substring payload ~pos:2 ~len:(String.length payload - 4) in
  check_int "value" 99 (Codec.read_uvarint s);
  check_bool "at end" true (Codec.at_end s)

(* Property: encode/decode roundtrip for an arbitrary nested value. *)
let value_gen =
  QCheck.Gen.(
    list_size (int_bound 20)
      (pair (int_range (-1000000) 1000000) (string_size (int_bound 30))))

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip (int*string) list" ~count:200
    (QCheck.make value_gen) (fun l ->
      let write v b =
        Codec.write_list b
          (fun b p -> Codec.write_pair b Codec.write_varint Codec.write_string p)
          v
      in
      let read s =
        Codec.read_list s (fun s ->
            Codec.read_pair s Codec.read_varint Codec.read_string)
      in
      Codec.decode read (Codec.encode write l) = l)

let prop_uvarint_monotone_size =
  QCheck.Test.make ~name:"uvarint size is monotone" ~count:200
    QCheck.(pair (int_bound 1000000) (int_bound 1000000))
    (fun (a, b) ->
      let size n =
        let s = Codec.sink () in
        Codec.write_uvarint s n;
        Codec.length s
      in
      if a <= b then size a <= size b else size b <= size a)

let suite =
  [
    Alcotest.test_case "uvarint roundtrip" `Quick roundtrip_uvarint;
    Alcotest.test_case "varint roundtrip" `Quick roundtrip_varint;
    Alcotest.test_case "varint compactness" `Quick varint_compactness;
    Alcotest.test_case "float roundtrip" `Quick roundtrip_float;
    Alcotest.test_case "string/list/option/pair" `Quick roundtrip_string_list_option;
    Alcotest.test_case "decode errors" `Quick decode_errors;
    Alcotest.test_case "array order" `Quick read_array_order;
    Alcotest.test_case "substring source" `Quick substring_source;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_uvarint_monotone_size;
  ]

(* Fuzz: arbitrary bytes never crash the decoder with anything but
   Decode_error. *)
let prop_decode_fuzz =
  QCheck.Test.make ~name:"decoder total on garbage" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun garbage ->
      let try_read reader =
        match reader (Codec.source garbage) with
        | (_ : int) -> true
        | exception Codec.Decode_error _ -> true
      in
      let try_read_s reader =
        match reader (Codec.source garbage) with
        | (_ : string) -> true
        | exception Codec.Decode_error _ -> true
      in
      try_read Codec.read_uvarint && try_read Codec.read_varint
      && try_read_s Codec.read_string
      &&
      match Event.read (Codec.source garbage) with
      | (_ : Event.t) -> true
      | exception Codec.Decode_error _ -> true)

let prop_paxos_msg_fuzz =
  QCheck.Test.make ~name:"paxos msg decoder total on garbage" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 128))
    (fun garbage ->
      match Paxos.Msg.decode garbage with
      | (_ : Paxos.Msg.t) -> true
      | exception Codec.Decode_error _ -> true)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_decode_fuzz;
      QCheck_alcotest.to_alcotest prop_paxos_msg_fuzz;
    ]
