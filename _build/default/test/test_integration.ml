(* Full-stack integration: each evaluation application replicated under
   Rex with its paper workload — digests must converge across replicas
   with no divergence; plus checkpointing and failover under the richest
   app (LevelDB, with its background compaction timer). *)

open Sim
module R = Rex_core

let cfg ?(workers = 6) ?(checkpoint_interval = None) () =
  R.Config.make ~workers ~checkpoint_interval ~replicas:[ 0; 1; 2 ] ()

(* Drive [n] requests into the given server through the local submit API,
   keeping up to [window] outstanding.  Returns (completed, dropped). *)
let drive cluster server ~n ~window gen =
  let eng = R.Cluster.engine cluster in
  let rng = Rng.create 1234 in
  let completed = ref 0 and dropped = ref 0 and launched = ref 0 in
  let rec submit_one () =
    if !launched < n then begin
      incr launched;
      R.Server.submit server (gen rng) (fun result ->
          (match result with Some _ -> incr completed | None -> incr dropped);
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node server) (fun () ->
         for _ = 1 to min window n do
           submit_one ()
         done));
  let deadline = Engine.clock eng +. 120. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed + !dropped < n && Engine.clock eng < deadline then pump ()
  in
  pump ();
  (!completed, !dropped)

let live_digests cluster =
  Array.to_list (R.Cluster.servers cluster)
  |> List.filter (fun s ->
         Engine.node_alive (R.Cluster.engine cluster) (R.Server.node s))
  |> List.map (fun s -> (R.Server.node s, R.Server.app_digest s))

let check_converged what cluster =
  R.Cluster.run_for cluster 1.0;
  R.Cluster.check_no_divergence cluster;
  match live_digests cluster with
  | [] -> Alcotest.fail "no live replicas"
  | (_, d0) :: rest ->
    List.iter
      (fun (node, d) ->
        Alcotest.(check string) (Printf.sprintf "%s: replica %d" what node) d0 d)
      rest

let replicate_app ?(seed = 13) ?(n = 300) name factory gen =
  let cluster = R.Cluster.create ~seed (cfg ()) factory in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let completed, dropped = drive cluster primary ~n ~window:48 gen in
  Alcotest.(check int) (name ^ ": all completed") n completed;
  Alcotest.(check int) (name ^ ": none dropped") 0 dropped;
  check_converged name cluster

let thumbnail_replicated () =
  replicate_app "thumbnail"
    (Apps.Thumbnail.factory ~compute_cost:2e-4 ())
    (Workload.Mix.thumbnail ~n_images:50)

let lock_server_replicated () =
  replicate_app "lock-server"
    (Apps.Lock_server.factory ())
    (Workload.Mix.lock_server ~n_files:64)

let filesys_replicated () =
  replicate_app ~n:120 "filesys"
    (Apps.Filesys.factory ())
    (Workload.Mix.filesystem ~n_files:8)

let leveldb_replicated () =
  replicate_app "leveldb"
    (Apps.Leveldb.factory ~memtable_limit:8 ())
    (Workload.Mix.kv ~n_keys:200 ~read_ratio:0.3 ())

let kyoto_replicated () =
  replicate_app "kyoto"
    (Apps.Kyoto.factory ())
    (Workload.Mix.kv ~n_keys:200 ~read_ratio:0.3 ())

let memcache_replicated () =
  replicate_app "memcached"
    (Apps.Memcache.factory ~capacity:64 ())
    (Workload.Mix.kv ~n_keys:200 ~read_ratio:0.3 ())

let leveldb_with_checkpoints () =
  let cluster =
    R.Cluster.create ~seed:17
      (cfg ~checkpoint_interval:(Some 0.2) ())
      (Apps.Leveldb.factory ~memtable_limit:8 ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let gen = Workload.Mix.kv ~n_keys:100 ~read_ratio:0.2 () in
  let completed, _ = drive cluster primary ~n:400 ~window:32 gen in
  Alcotest.(check int) "all completed" 400 completed;
  R.Cluster.run_for cluster 1.0;
  let ckpts =
    Array.fold_left
      (fun acc s -> acc + (R.Server.stats s).R.Server.checkpoints_written)
      0 (R.Cluster.servers cluster)
  in
  Alcotest.(check bool) "checkpoints written under load" true (ckpts > 0);
  check_converged "leveldb+ckpt" cluster

let leveldb_failover_under_load () =
  let cluster =
    R.Cluster.create ~seed:19 (cfg ())
      (Apps.Leveldb.factory ~memtable_limit:8 ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let gen = Workload.Mix.kv ~n_keys:100 ~read_ratio:0.2 () in
  let completed1, _ = drive cluster primary ~n:150 ~window:32 gen in
  Alcotest.(check bool) "phase 1 progressed" true (completed1 > 0);
  R.Cluster.crash cluster (R.Server.node primary);
  R.Cluster.run_for cluster 1.0;
  let primary2 = R.Cluster.await_primary cluster in
  Alcotest.(check bool) "new primary" true
    (R.Server.node primary2 <> R.Server.node primary);
  let completed2, _ = drive cluster primary2 ~n:150 ~window:32 gen in
  Alcotest.(check int) "phase 2 completed" 150 completed2;
  (* Bring the old primary back; it must rebuild and converge. *)
  R.Cluster.restart cluster (R.Server.node primary);
  R.Cluster.run_for cluster 5.0;
  check_converged "leveldb failover" cluster

let hybrid_queries_during_load () =
  (* Native read-only queries run on primary and secondary while update
     handlers are recording/replaying — the hybrid execution of §4. *)
  let cluster =
    R.Cluster.create ~seed:23 (cfg ()) (Apps.Kyoto.factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let secondary =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find (fun s -> not (R.Server.is_primary s))
  in
  let queries_ok = ref 0 in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to 50 do
           Engine.sleep 1e-3;
           if R.Server.query primary "COUNT" <> "" then incr queries_ok
         done));
  ignore
    (Engine.spawn eng ~node:(R.Server.node secondary) (fun () ->
         for _ = 1 to 50 do
           Engine.sleep 1e-3;
           if R.Server.query secondary "COUNT" <> "" then incr queries_ok
         done));
  let gen = Workload.Mix.kv ~n_keys:100 ~read_ratio:0.0 () in
  let completed, _ = drive cluster primary ~n:300 ~window:32 gen in
  Alcotest.(check int) "updates completed" 300 completed;
  Alcotest.(check int) "all queries served" 100 !queries_ok;
  check_converged "hybrid queries" cluster

let suite =
  [
    Alcotest.test_case "thumbnail replicated" `Quick thumbnail_replicated;
    Alcotest.test_case "lock server replicated" `Quick lock_server_replicated;
    Alcotest.test_case "filesys replicated" `Quick filesys_replicated;
    Alcotest.test_case "leveldb replicated" `Quick leveldb_replicated;
    Alcotest.test_case "kyoto replicated" `Quick kyoto_replicated;
    Alcotest.test_case "memcached replicated" `Quick memcache_replicated;
    Alcotest.test_case "leveldb + checkpoints" `Quick leveldb_with_checkpoints;
    Alcotest.test_case "leveldb failover under load" `Quick leveldb_failover_under_load;
    Alcotest.test_case "hybrid queries" `Quick hybrid_queries_during_load;
  ]

(* --- Cluster-level properties --- *)

(* The prefix property (§2.2) observed end-to-end: the committed cut only
   ever grows, and each secondary's executed cut trails it. *)
let committed_cuts_monotone () =
  let cluster = R.Cluster.create ~seed:41 (cfg ()) (Apps.Kyoto.factory ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let gen = Workload.Mix.kv ~n_keys:50 ~read_ratio:0.2 () in
  let rng = Rng.create 4 in
  let launched = ref 0 in
  let rec submit_one () =
    if !launched < 300 then begin
      incr launched;
      R.Server.submit primary (gen rng) (fun _ -> submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to 32 do
           submit_one ()
         done));
  let secondary =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find (fun s -> not (R.Server.is_primary s))
  in
  let prev = ref (R.Server.committed_cut secondary) in
  let violations = ref 0 in
  for _ = 1 to 200 do
    R.Cluster.run_for cluster 2e-3;
    let c = R.Server.committed_cut secondary in
    if not (Trace.Cut.leq !prev c) then incr violations;
    if not (Trace.Cut.leq (R.Server.executed_cut secondary) c) then
      incr violations;
    prev := c
  done;
  Alcotest.(check int) "no monotonicity violations" 0 !violations

(* Determinism at cluster level: the same seed reproduces the exact same
   run; different seeds still converge to *some* consistent state. *)
let cluster_deterministic_per_seed () =
  let digest_of seed =
    let cluster = R.Cluster.create ~seed (cfg ()) (Apps.Kyoto.factory ()) in
    R.Cluster.start cluster;
    let primary = R.Cluster.await_primary cluster in
    let completed, _ =
      drive cluster primary ~n:200 ~window:32
        (Workload.Mix.kv ~n_keys:40 ~read_ratio:0.3 ())
    in
    Alcotest.(check int) "all done" 200 completed;
    R.Cluster.run_for cluster 1.0;
    R.Cluster.check_no_divergence cluster;
    R.Server.app_digest (R.Cluster.server cluster 0)
  in
  Alcotest.(check string) "same seed, same digest" (digest_of 99) (digest_of 99)

(* Random fault schedules: crash/restart random replicas at random times
   under load; the cluster must converge with no divergence. *)
let prop_random_fault_schedule =
  QCheck.Test.make ~name:"cluster survives random fault schedules" ~count:6
    QCheck.(pair (int_range 0 1000) (list_of_size (QCheck.Gen.int_range 1 3) (int_range 0 2)))
    (fun (seed, victims) ->
      let cluster =
        R.Cluster.create ~seed:(seed + 1)
          (cfg ~checkpoint_interval:(Some 0.3) ())
          (Apps.Kyoto.factory ())
      in
      R.Cluster.start cluster;
      let primary = R.Cluster.await_primary cluster in
      let eng = R.Cluster.engine cluster in
      let gen = Workload.Mix.kv ~n_keys:60 ~read_ratio:0.2 () in
      let rng = Rng.create seed in
      (* continuous load against whichever replica currently leads *)
      let stop = ref false in
      ignore
        (Engine.spawn eng ~node:3 (fun () ->
             while not !stop do
               (match R.Cluster.primary cluster with
               | Some p ->
                 for _ = 1 to 16 do
                   R.Server.submit p (gen rng) (fun _ -> ())
                 done
               | None -> ());
               Engine.sleep 5e-3
             done));
      ignore primary;
      (* fault schedule *)
      List.iter
        (fun v ->
          R.Cluster.run_for cluster 0.4;
          if Engine.node_alive eng v then begin
            R.Cluster.crash cluster v;
            R.Cluster.run_for cluster 0.6;
            R.Cluster.restart cluster v
          end)
        victims;
      R.Cluster.run_for cluster 3.0;
      stop := true;
      R.Cluster.run_for cluster 3.0;
      R.Cluster.check_no_divergence cluster;
      match live_digests cluster with
      | [] -> false
      | (_, d) :: rest -> List.for_all (fun (_, d') -> d' = d) rest)

let extra_suite =
  [
    Alcotest.test_case "committed cuts monotone" `Quick committed_cuts_monotone;
    Alcotest.test_case "cluster deterministic per seed" `Quick
      cluster_deterministic_per_seed;
    QCheck_alcotest.to_alcotest prop_random_fault_schedule;
  ]

let suite = suite @ extra_suite

(* Result checking (§5): an app whose response depends on UNRECORDED
   nondeterminism (a genuine bug) is caught when a secondary's recomputed
   response differs from the primary's logged digest. *)
let result_checking_catches_race () =
  let buggy : R.App.factory =
   fun api ->
    let lock = R.Api.lock api "b.lock" in
    let counter = ref 0 in
    let execute ~request:_ =
      Rexsync.Lock.with_lock lock (fun () -> incr counter);
      (* BUG: reads the engine clock without Api.nondet — differs between
         record and replay. *)
      Printf.sprintf "%d@%.9f" !counter (Engine.now ())
    in
    {
      R.App.name = "buggy";
      execute;
      query = (fun ~request:_ -> "");
      write_checkpoint = (fun sink -> Codec.write_uvarint sink !counter);
      read_checkpoint = (fun src -> counter := Codec.read_uvarint src);
      digest = (fun () -> string_of_int !counter);
    }
  in
  let cluster = R.Cluster.create ~seed:61 (cfg ()) buggy in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let _ = drive cluster primary ~n:50 ~window:8 (fun _ -> "go") in
  R.Cluster.run_for cluster 1.0;
  let caught =
    Array.exists
      (fun s -> R.Server.divergence s <> None)
      (R.Cluster.servers cluster)
  in
  Alcotest.(check bool) "secondary caught the divergent response" true caught

let suite = suite @ [ Alcotest.test_case "result checking catches race" `Quick result_checking_catches_race ]

(* §3.3: checkpoints propagate in the background, so even the primary —
   which never snapshots itself — ends up holding one, enabling local
   rollback on demotion. *)
let checkpoint_propagates_to_primary () =
  let cluster =
    R.Cluster.create ~seed:47
      (cfg ~checkpoint_interval:(Some 0.2) ())
      (Apps.Kyoto.factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let completed, _ =
    drive cluster primary ~n:300 ~window:32
      (Workload.Mix.kv ~n_keys:50 ~read_ratio:0.2 ())
  in
  Alcotest.(check int) "all done" 300 completed;
  R.Cluster.run_for cluster 1.0;
  (* Crash the primary and restart it: it must recover from its own
     pushed checkpoint even though its peers have GC'd old instances. *)
  let p = R.Server.node primary in
  R.Cluster.crash cluster p;
  R.Cluster.run_for cluster 0.5;
  R.Cluster.restart cluster p;
  R.Cluster.run_for cluster 3.0;
  check_converged "primary recovered via pushed checkpoint" cluster

let suite =
  suite
  @ [
      Alcotest.test_case "checkpoint propagates to primary" `Quick
        checkpoint_propagates_to_primary;
    ]

(* Pipelined consensus (§3.1): a Rex cluster with several open instances
   still preserves the prefix condition and converges. *)
let pipelined_rex_cluster () =
  let cfg =
    R.Config.make ~workers:6 ~pipeline_depth:4 ~replicas:[ 0; 1; 2 ] ()
  in
  let cluster = R.Cluster.create ~seed:67 cfg (Apps.Kyoto.factory ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let completed, dropped =
    drive cluster primary ~n:400 ~window:64
      (Workload.Mix.kv ~n_keys:100 ~read_ratio:0.3 ())
  in
  Alcotest.(check int) "all completed" 400 completed;
  Alcotest.(check int) "none dropped" 0 dropped;
  check_converged "pipelined rex" cluster;
  (* Failover with open pipelined proposals. *)
  R.Cluster.crash cluster (R.Server.node primary);
  R.Cluster.run_for cluster 1.0;
  let primary2 = R.Cluster.await_primary cluster in
  let completed2, _ =
    drive cluster primary2 ~n:200 ~window:64
      (Workload.Mix.kv ~n_keys:100 ~read_ratio:0.3 ())
  in
  Alcotest.(check int) "post-failover completed" 200 completed2;
  R.Cluster.restart cluster (R.Server.node primary);
  R.Cluster.run_for cluster 5.0;
  check_converged "pipelined rex after failover" cluster

let suite =
  suite
  @ [ Alcotest.test_case "pipelined rex cluster" `Quick pipelined_rex_cluster ]

(* --- Chain replication agree stage (§7) --- *)

let chain_cluster ?(seed = 83) ?(checkpoint_interval = None) () =
  let cluster =
    R.Cluster.create ~seed ~agreement:`Chain
      (cfg ~checkpoint_interval ())
      (Apps.Kyoto.factory ())
  in
  R.Cluster.start cluster;
  cluster

let chain_basic_replication () =
  let cluster = chain_cluster () in
  let primary = R.Cluster.await_primary cluster in
  let completed, dropped =
    drive cluster primary ~n:300 ~window:48
      (Workload.Mix.kv ~n_keys:100 ~read_ratio:0.3 ())
  in
  Alcotest.(check int) "all completed" 300 completed;
  Alcotest.(check int) "none dropped" 0 dropped;
  check_converged "chain replication" cluster

let chain_head_failover () =
  let cluster = chain_cluster ~seed:89 () in
  let primary = R.Cluster.await_primary cluster in
  let gen = Workload.Mix.kv ~n_keys:100 ~read_ratio:0.3 () in
  let completed1, _ = drive cluster primary ~n:150 ~window:32 gen in
  Alcotest.(check int) "phase 1" 150 completed1;
  (* Kill the head: the second node must take over after the VM times
     it out, with any unacknowledged deltas re-driven first. *)
  R.Cluster.crash cluster (R.Server.node primary);
  R.Cluster.run_for cluster 1.0;
  let primary2 = R.Cluster.await_primary cluster in
  Alcotest.(check bool) "new head" true
    (R.Server.node primary2 <> R.Server.node primary);
  let completed2, _ = drive cluster primary2 ~n:150 ~window:32 gen in
  Alcotest.(check int) "phase 2" 150 completed2;
  (* The old head rejoins as the new tail and must converge. *)
  R.Cluster.restart cluster (R.Server.node primary);
  R.Cluster.run_for cluster 5.0;
  check_converged "chain head failover" cluster

let chain_tail_failover_with_checkpoints () =
  let cluster = chain_cluster ~seed:97 ~checkpoint_interval:(Some 0.3) () in
  let primary = R.Cluster.await_primary cluster in
  let gen = Workload.Mix.kv ~n_keys:100 ~read_ratio:0.3 () in
  let completed1, _ = drive cluster primary ~n:200 ~window:32 gen in
  Alcotest.(check int) "phase 1" 200 completed1;
  R.Cluster.run_for cluster 1.0;
  (* Kill a non-head member. *)
  let victim =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find (fun s -> not (R.Server.is_primary s))
    |> R.Server.node
  in
  R.Cluster.crash cluster victim;
  R.Cluster.run_for cluster 0.5;
  let completed2, _ = drive cluster primary ~n:200 ~window:32 gen in
  Alcotest.(check int) "phase 2 (chain healed around the gap)" 200 completed2;
  R.Cluster.restart cluster victim;
  R.Cluster.run_for cluster 5.0;
  check_converged "chain tail failover" cluster

let suite =
  suite
  @ [
      Alcotest.test_case "chain: basic replication" `Quick chain_basic_replication;
      Alcotest.test_case "chain: head failover" `Quick chain_head_failover;
      Alcotest.test_case "chain: member failover + ckpt" `Quick
        chain_tail_failover_with_checkpoints;
    ]
