(* Tests for the discrete-event engine, synchronization primitives,
   network, timers and RPC. *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_sim ?(seed = 1) ?(cores = 4) ?(nodes = 1) f =
  let eng = Engine.create ~seed ~cores_per_node:cores ~num_nodes:nodes () in
  f eng;
  Engine.run eng;
  eng

(* --- Engine basics --- *)

let work_advances_time () =
  let finished = ref 0. in
  let eng =
    run_sim (fun eng ->
        ignore
          (Engine.spawn eng ~node:0 (fun () ->
               Engine.work 1.0;
               Engine.work 0.5;
               finished := Engine.now ())))
  in
  Alcotest.(check bool) "took 1.5s" true (abs_float (!finished -. 1.5) < 1e-6);
  Alcotest.(check bool)
    "busy time" true
    (abs_float (Engine.busy_time eng 0 -. 1.5) < 1e-6)

let cores_limit_parallelism () =
  (* 8 fibers x 1s of work on 4 cores must take ~2s. *)
  let finish = ref 0. in
  ignore
    (run_sim ~cores:4 (fun eng ->
         for _ = 1 to 8 do
           ignore
             (Engine.spawn eng ~node:0 (fun () ->
                  Engine.work 1.0;
                  finish := Float.max !finish (Engine.now ())))
         done));
  Alcotest.(check bool)
    (Printf.sprintf "8x1s on 4 cores ends at ~2s (got %f)" !finish)
    true
    (abs_float (!finish -. 2.0) < 1e-3)

let sleep_needs_no_core () =
  (* Sleepers do not occupy cores: 8 sleepers + 1 worker on 1 core finish
     together at ~1s. *)
  let finish = ref 0. in
  ignore
    (run_sim ~cores:1 (fun eng ->
         for _ = 1 to 8 do
           ignore
             (Engine.spawn eng ~node:0 (fun () ->
                  Engine.sleep 1.0;
                  finish := Float.max !finish (Engine.now ())))
         done;
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Engine.work 1.0;
                finish := Float.max !finish (Engine.now ())))));
  Alcotest.(check bool) "ends ~1s" true (abs_float (!finish -. 1.0) < 1e-3)

let park_wake () =
  let log = ref [] in
  ignore
    (run_sim (fun eng ->
         let saved = ref None in
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                log := "parking" :: !log;
                Engine.park (fun w -> saved := Some w);
                log := "woken" :: !log));
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Engine.sleep 1.0;
                match !saved with
                | Some w ->
                  Engine.wake w;
                  Engine.wake w (* double wake is harmless *)
                | None -> Alcotest.fail "waker not registered"))));
  Alcotest.(check (list string)) "order" [ "woken"; "parking" ] !log

let run_until_slices () =
  let eng = Engine.create ~num_nodes:1 () in
  let ticks = ref 0 in
  ignore
    (Engine.spawn eng ~node:0 (fun () ->
         for _ = 1 to 10 do
           Engine.sleep 1.0;
           incr ticks
         done));
  Engine.run ~until:3.5 eng;
  check_int "3 ticks at t=3.5" 3 !ticks;
  Engine.run ~until:10.5 eng;
  check_int "all ticks" 10 !ticks

let determinism_same_seed () =
  let trace_of seed =
    let log = ref [] in
    ignore
      (run_sim ~seed ~cores:2 (fun eng ->
           for i = 1 to 6 do
             ignore
               (Engine.spawn eng ~node:0 (fun () ->
                    Engine.work 0.1;
                    log := i :: !log))
           done));
    !log
  in
  Alcotest.(check (list int)) "same seed, same order" (trace_of 7) (trace_of 7);
  (* Different seeds typically yield different interleavings; do not assert
     inequality (it is not guaranteed), just that both complete. *)
  check_int "all ran" 6 (List.length (trace_of 8))

let crash_kills_fibers () =
  let eng = Engine.create ~num_nodes:2 () in
  let cleanup_ran = ref false in
  let survived = ref false in
  ignore
    (Engine.spawn eng ~node:0 (fun () ->
         Fun.protect
           ~finally:(fun () -> cleanup_ran := true)
           (fun () ->
             Engine.sleep 100.;
             survived := true)));
  ignore
    (Engine.spawn eng ~node:1 (fun () ->
         Engine.sleep 1.0;
         Engine.crash_node eng 0));
  Engine.run eng;
  check_bool "fiber did not survive" false !survived;
  check_bool "Fun.protect cleanup ran" true !cleanup_ran;
  check_bool "node marked dead" false (Engine.node_alive eng 0)

let restart_allows_new_fibers () =
  let eng = Engine.create ~num_nodes:1 () in
  let ran_after_restart = ref false in
  ignore
    (Engine.spawn eng ~node:0 (fun () -> Engine.sleep 1000.));
  Engine.run ~until:1.0 eng;
  Engine.crash_node eng 0;
  Engine.restart_node eng 0;
  ignore (Engine.spawn eng ~node:0 (fun () -> ran_after_restart := true));
  Engine.run eng;
  check_bool "new fiber ran" true !ran_after_restart

(* --- Msync --- *)

let mutex_exclusion () =
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  ignore
    (run_sim ~cores:8 (fun eng ->
         let m = Msync.Mutex.create eng in
         for _ = 1 to 20 do
           ignore
             (Engine.spawn eng ~node:0 (fun () ->
                  Msync.Mutex.lock m;
                  incr inside;
                  max_inside := max !max_inside !inside;
                  Engine.work 0.01;
                  decr inside;
                  incr total;
                  Msync.Mutex.unlock m))
         done));
  check_int "mutual exclusion" 1 !max_inside;
  check_int "all critical sections ran" 20 !total

let mutex_try_lock () =
  ignore
    (run_sim (fun eng ->
         let m = Msync.Mutex.create eng in
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                check_bool "first try succeeds" true (Msync.Mutex.try_lock m);
                check_bool "second try fails" false (Msync.Mutex.try_lock m);
                Msync.Mutex.unlock m;
                check_bool "after unlock succeeds" true (Msync.Mutex.try_lock m);
                Msync.Mutex.unlock m))))

let mutex_unlock_not_holder () =
  ignore
    (run_sim (fun eng ->
         let m = Msync.Mutex.create eng in
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                match Msync.Mutex.unlock m with
                | exception Invalid_argument _ -> ()
                | () -> Alcotest.fail "unlock without holding must raise"))))

let cond_signal_wakes_one () =
  let woken = ref 0 in
  ignore
    (run_sim (fun eng ->
         let m = Msync.Mutex.create eng in
         let c = Msync.Cond.create eng in
         for _ = 1 to 3 do
           ignore
             (Engine.spawn eng ~node:0 (fun () ->
                  Msync.Mutex.lock m;
                  Msync.Cond.wait c m;
                  incr woken;
                  Msync.Mutex.unlock m))
         done;
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Engine.sleep 1.0;
                Msync.Mutex.lock m;
                Msync.Cond.signal c;
                Msync.Mutex.unlock m;
                Engine.sleep 1.0;
                Msync.Mutex.lock m;
                Msync.Cond.broadcast c;
                Msync.Mutex.unlock m))));
  check_int "1 + 2 woken" 3 !woken

let rwlock_readers_share () =
  let concurrent_readers = ref 0 and max_readers = ref 0 in
  let writer_alone = ref true in
  ignore
    (run_sim ~cores:8 (fun eng ->
         let l = Msync.Rwlock.create eng in
         for _ = 1 to 5 do
           ignore
             (Engine.spawn eng ~node:0 (fun () ->
                  Msync.Rwlock.rd_lock l;
                  incr concurrent_readers;
                  max_readers := max !max_readers !concurrent_readers;
                  Engine.work 0.1;
                  decr concurrent_readers;
                  Msync.Rwlock.rd_unlock l))
         done;
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Msync.Rwlock.wr_lock l;
                if !concurrent_readers > 0 then writer_alone := false;
                Engine.work 0.1;
                Msync.Rwlock.wr_unlock l))));
  check_bool "readers overlapped" true (!max_readers > 1);
  check_bool "writer excluded readers" true !writer_alone

let sem_counting () =
  let inside = ref 0 and max_inside = ref 0 in
  ignore
    (run_sim ~cores:8 (fun eng ->
         let s = Msync.Sem.create eng 2 in
         for _ = 1 to 10 do
           ignore
             (Engine.spawn eng ~node:0 (fun () ->
                  Msync.Sem.acquire s;
                  incr inside;
                  max_inside := max !max_inside !inside;
                  Engine.work 0.05;
                  decr inside;
                  Msync.Sem.release s))
         done));
  check_int "at most 2 inside" 2 !max_inside

(* --- Net / Timer / Rpc --- *)

let net_delivery () =
  let got = ref None in
  ignore
    (run_sim ~nodes:2 (fun eng ->
         let net = Net.create eng in
         Net.register net ~node:1 ~port:"echo" (fun ~src payload ->
             got := Some (src, payload));
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Net.send net ~src:0 ~dst:1 ~port:"echo" "hi"))));
  Alcotest.(check (option (pair int string))) "delivered" (Some (0, "hi")) !got

let net_partition_drops () =
  let got = ref 0 in
  ignore
    (run_sim ~nodes:2 (fun eng ->
         let net = Net.create eng in
         Net.register net ~node:1 ~port:"p" (fun ~src:_ _ -> incr got);
         Net.partition net 0 1;
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Net.send net ~src:0 ~dst:1 ~port:"p" "x";
                Engine.sleep 1.0;
                Net.heal net 0 1;
                Net.send net ~src:0 ~dst:1 ~port:"p" "y"))));
  check_int "only post-heal message" 1 !got

let net_fifo_per_pair () =
  let order = ref [] in
  ignore
    (run_sim ~nodes:2 (fun eng ->
         let net = Net.create eng in
         Net.register net ~node:1 ~port:"f" (fun ~src:_ p ->
             order := p :: !order);
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                for i = 1 to 10 do
                  Net.send net ~src:0 ~dst:1 ~port:"f" (string_of_int i)
                done))));
  Alcotest.(check (list string))
    "FIFO order"
    (List.map string_of_int [ 10; 9; 8; 7; 6; 5; 4; 3; 2; 1 ])
    !order

let net_crashed_node_drops () =
  let got = ref 0 in
  ignore
    (run_sim ~nodes:2 (fun eng ->
         let net = Net.create eng in
         Net.register net ~node:1 ~port:"c" (fun ~src:_ _ -> incr got);
         Engine.crash_node eng 1;
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                Net.send net ~src:0 ~dst:1 ~port:"c" "x"))));
  check_int "no delivery to dead node" 0 !got

let timer_after_and_every () =
  let fired = ref 0 and periodic_count = ref 0 in
  let eng = Engine.create ~num_nodes:1 () in
  Timer.after eng ~node:0 ~delay:1.0 (fun () -> incr fired);
  let p = Timer.every eng ~node:0 ~period:1.0 (fun () -> incr periodic_count) in
  Engine.run ~until:5.5 eng;
  Timer.cancel p;
  Engine.run ~until:10.0 eng;
  check_int "one-shot fired once" 1 !fired;
  check_int "periodic fired 5 times then cancelled" 5 !periodic_count

let rpc_roundtrip () =
  let answer = ref None in
  ignore
    (run_sim ~nodes:2 (fun eng ->
         let net = Net.create eng in
         let rpc = Rpc.create net in
         Rpc.serve rpc ~node:1 ~port:"double" (fun ~src:_ s ->
             string_of_int (2 * int_of_string s));
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                answer := Rpc.call rpc ~src:0 ~dst:1 ~port:"double" "21"))));
  Alcotest.(check (option string)) "rpc reply" (Some "42") !answer

let rpc_timeout () =
  let answer = ref (Some "sentinel") in
  let finish = ref 0. in
  ignore
    (run_sim ~nodes:2 (fun eng ->
         let net = Net.create eng in
         let rpc = Rpc.create net in
         (* No handler registered on node 1: the call must time out. *)
         ignore
           (Engine.spawn eng ~node:0 (fun () ->
                answer := Rpc.call rpc ~src:0 ~dst:1 ~port:"void" ~timeout:0.5 "x";
                finish := Engine.now ()))));
  Alcotest.(check (option string)) "timed out" None !answer;
  check_bool "timed out at ~0.5s" true (abs_float (!finish -. 0.5) < 0.01)

(* --- Pqueue and Rng --- *)

let pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.add q ~priority:3.0 "c";
  Pqueue.add q ~priority:1.0 "a1";
  Pqueue.add q ~priority:2.0 "b";
  Pqueue.add q ~priority:1.0 "a2";
  let rec drain acc =
    match Pqueue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string))
    "priority then insertion order"
    [ "a1"; "a2"; "b"; "c" ]
    (drain [])

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:100
    QCheck.(list (float_range 0. 1000.))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.add q ~priority:p ()) prios;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, ()) -> p >= last && drain p
      in
      drain neg_infinity)

let rng_deterministic () =
  let a = Rng.create 5 and b = Rng.create 5 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done;
  let c = Rng.split a and d = Rng.split b in
  check_bool "split streams agree" true (Rng.bits64 c = Rng.bits64 d)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng int respects bound" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "work advances virtual time" `Quick work_advances_time;
    Alcotest.test_case "cores limit parallelism" `Quick cores_limit_parallelism;
    Alcotest.test_case "sleep needs no core" `Quick sleep_needs_no_core;
    Alcotest.test_case "park/wake" `Quick park_wake;
    Alcotest.test_case "run in slices" `Quick run_until_slices;
    Alcotest.test_case "determinism per seed" `Quick determinism_same_seed;
    Alcotest.test_case "crash kills fibers" `Quick crash_kills_fibers;
    Alcotest.test_case "restart allows new fibers" `Quick restart_allows_new_fibers;
    Alcotest.test_case "mutex exclusion" `Quick mutex_exclusion;
    Alcotest.test_case "mutex try_lock" `Quick mutex_try_lock;
    Alcotest.test_case "mutex unlock checks holder" `Quick mutex_unlock_not_holder;
    Alcotest.test_case "cond signal/broadcast" `Quick cond_signal_wakes_one;
    Alcotest.test_case "rwlock semantics" `Quick rwlock_readers_share;
    Alcotest.test_case "semaphore counting" `Quick sem_counting;
    Alcotest.test_case "net delivery" `Quick net_delivery;
    Alcotest.test_case "net partition" `Quick net_partition_drops;
    Alcotest.test_case "net FIFO per pair" `Quick net_fifo_per_pair;
    Alcotest.test_case "net drops to dead node" `Quick net_crashed_node_drops;
    Alcotest.test_case "timers" `Quick timer_after_and_every;
    Alcotest.test_case "rpc roundtrip" `Quick rpc_roundtrip;
    Alcotest.test_case "rpc timeout" `Quick rpc_timeout;
    Alcotest.test_case "pqueue order" `Quick pqueue_order;
    QCheck_alcotest.to_alcotest prop_pqueue_sorted;
    Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_bounds;
  ]
