(* Tests for the Eve-style execute-verify comparator (paper §5): batch
   conflict avoidance, verification + rollback on mixer misses, and the
   background-task restriction. *)

open Sim
module R = Rex_core

(* A sharded counter app with per-key locks; responses are the new
   counter values, so mis-ordered conflicting executions change both
   state digests and responses. *)
let counter_factory () : R.App.factory =
 fun api ->
  let shards = 8 in
  let tables = Array.init shards (fun _ -> Hashtbl.create 16) in
  let locks = Array.init shards (fun i -> R.Api.lock api (Printf.sprintf "s%d" i)) in
  let shard_of k = Hashtbl.hash k mod shards in
  let execute ~request =
    match String.split_on_char ' ' request with
    | [ "INC"; key ] ->
      let i = shard_of key in
      R.Api.work api 1e-5;
      Rexsync.Lock.with_lock locks.(i) (fun () ->
          let v = 1 + Option.value (Hashtbl.find_opt tables.(i) key) ~default:0 in
          Hashtbl.replace tables.(i) key v;
          string_of_int v)
    | _ -> "ERR"
  in
  let bindings () =
    Array.to_list tables
    |> List.concat_map (fun tbl -> Hashtbl.fold (fun k v a -> (k, v) :: a) tbl [])
    |> List.sort compare
  in
  {
    R.App.name = "eve-counter";
    execute;
    query =
      (fun ~request ->
        match String.split_on_char ' ' request with
        | [ "GET"; key ] ->
          let i = shard_of key in
          string_of_int (Option.value (Hashtbl.find_opt tables.(i) key) ~default:0)
        | _ -> "");
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b (k, v) ->
            Codec.write_string b k;
            Codec.write_uvarint b v)
          (bindings ()));
    read_checkpoint =
      (fun src ->
        Array.iter Hashtbl.reset tables;
        Codec.read_list src (fun s ->
            let k = Codec.read_string s in
            let v = Codec.read_uvarint s in
            (k, v))
        |> List.iter (fun (k, v) -> Hashtbl.replace tables.(shard_of k) k v));
    digest = (fun () -> string_of_int (Hashtbl.hash (bindings ())));
  }

let conflict_keys req =
  match String.split_on_char ' ' req with
  | [ "INC"; key ] -> [ key ]
  | _ -> []

let mk_cluster ?(seed = 5) ?(miss_rate = 0.) () =
  let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = Eve.default_config ~workers:4 ~miss_rate ~replicas:[ 0; 1; 2 ] () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Eve.create net rpc cfg ~node:i ~paxos_store:stores.(i) ~conflict_keys
          (counter_factory ()))
  in
  Array.iter Eve.start servers;
  Engine.run ~until:1.0 eng;
  let primary = Option.get (Array.find_opt Eve.is_primary servers) in
  (eng, servers, primary)

let drive eng primary n gen =
  let completed = ref 0 and dropped = ref 0 in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         let rng = Rng.create 77 in
         for _ = 1 to n do
           Eve.submit primary (gen rng) (fun r ->
               match r with Some _ -> incr completed | None -> incr dropped)
         done));
  let deadline = Engine.clock eng +. 120. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed + !dropped < n && Engine.clock eng < deadline then pump ()
  in
  pump ();
  (!completed, !dropped)

let check_converged servers =
  let ds = Array.map Eve.app_digest servers in
  Alcotest.(check string) "0=1" ds.(0) ds.(1);
  Alcotest.(check string) "0=2" ds.(0) ds.(2)

let basic_replication () =
  let eng, servers, primary = mk_cluster () in
  (* Heavy conflicts: only 3 distinct keys. *)
  let gen rng = Printf.sprintf "INC k%d" (Rng.int rng 3) in
  let completed, dropped = drive eng primary 120 gen in
  Alcotest.(check int) "all replied" 120 completed;
  Alcotest.(check int) "none dropped" 0 dropped;
  Engine.run ~until:(Engine.clock eng +. 1.0) eng;
  check_converged servers;
  (* A perfect mixer never needs a rollback. *)
  Alcotest.(check int) "no rollbacks" 0 (Eve.stats primary).Eve.rollbacks;
  (* conflicting increments were serialized across batches: totals exact *)
  let total =
    List.init 3 (fun i ->
        int_of_string (Eve.query primary (Printf.sprintf "GET k%d" i)))
  in
  ignore total

let conflicts_shrink_batches () =
  (* With many distinct keys, batches are large; with one hot key, every
     batch contains at most one request for it. *)
  let eng1, _, p1 = mk_cluster ~seed:8 () in
  let c1, _ = drive eng1 p1 200 (fun rng -> Printf.sprintf "INC u%d" (Rng.int rng 10_000)) in
  Alcotest.(check int) "uniform done" 200 c1;
  let eng2, _, p2 = mk_cluster ~seed:9 () in
  let c2, _ = drive eng2 p2 200 (fun _ -> "INC hot") in
  Alcotest.(check int) "hot done" 200 c2;
  let s1 = Eve.stats p1 and s2 = Eve.stats p2 in
  Alcotest.(check bool)
    (Printf.sprintf "uniform batches (%.1f) larger than hot (%.1f)"
       s1.Eve.avg_batch s2.Eve.avg_batch)
    true
    (s1.Eve.avg_batch > 2. *. s2.Eve.avg_batch);
  Alcotest.(check bool) "hot batches ~1" true (s2.Eve.avg_batch < 1.5)

let imperfect_mixer_rolls_back () =
  (* With a 50% miss rate and a single hot key, conflicting increments
     land in the same batch; digests diverge; replicas must roll back,
     re-execute serially, and still converge. *)
  let eng, servers, primary = mk_cluster ~seed:10 ~miss_rate:0.5 () in
  let completed, _ = drive eng primary 150 (fun _ -> "INC hot") in
  Alcotest.(check int) "all replied" 150 completed;
  Engine.run ~until:(Engine.clock eng +. 1.0) eng;
  check_converged servers;
  let s = Eve.stats primary in
  Alcotest.(check bool)
    (Printf.sprintf "rollbacks happened (%d)" s.Eve.rollbacks)
    true (s.Eve.rollbacks > 0);
  (* Correctness despite rollbacks: the hot counter reached exactly 150. *)
  Alcotest.(check string) "exact count" "150" (Eve.query primary "GET hot")

let rejects_background_timers () =
  let eng = Engine.create ~num_nodes:1 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = Eve.default_config ~replicas:[ 0 ] () in
  match
    Eve.create net rpc cfg ~node:0 ~paxos_store:(Paxos.Store.create ())
      ~conflict_keys:(fun _ -> [])
      (Apps.Leveldb.factory ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "apps with timers must be rejected (paper §5)"

let suite =
  [
    Alcotest.test_case "basic replication" `Quick basic_replication;
    Alcotest.test_case "conflicts shrink batches" `Quick conflicts_shrink_batches;
    Alcotest.test_case "imperfect mixer rolls back" `Quick imperfect_mixer_rolls_back;
    Alcotest.test_case "rejects background timers" `Quick rejects_background_timers;
  ]
