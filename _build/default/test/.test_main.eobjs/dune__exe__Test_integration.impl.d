test/test_integration.ml: Alcotest Apps Array Codec Engine List Printf QCheck QCheck_alcotest Rex_core Rexsync Rng Sim Trace Workload
