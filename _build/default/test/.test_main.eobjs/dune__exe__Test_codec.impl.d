test/test_codec.ml: Alcotest Codec Event Float List Paxos Printf QCheck QCheck_alcotest String
