test/test_trace.ml: Alcotest Array Codec Event Fun List Printf QCheck QCheck_alcotest Render String Trace Vclock
