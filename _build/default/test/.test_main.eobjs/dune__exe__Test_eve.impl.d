test/test_eve.ml: Alcotest Apps Array Codec Engine Eve Hashtbl List Net Option Paxos Printf Rex_core Rexsync Rng Rpc Sim String
