test/test_main.ml: Alcotest Test_apps Test_codec Test_eve Test_integration Test_paxos Test_rex Test_rexsync Test_sim Test_trace
