test/test_rexsync.ml: Alcotest Array Condvar Engine Hashtbl List Lock Printf QCheck QCheck_alcotest Queue Rexsync Runtime Rwlock Sem Sim Trace
