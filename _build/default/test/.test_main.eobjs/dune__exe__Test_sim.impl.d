test/test_sim.ml: Alcotest Engine Float Fun List Msync Net Pqueue Printf QCheck QCheck_alcotest Rng Rpc Sim Timer
