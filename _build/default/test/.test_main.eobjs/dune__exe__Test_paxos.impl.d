test/test_paxos.ml: Alcotest Array Engine Fun List Msg Net Obj Option Paxos Printf Sim Store
