test/test_apps.ml: Alcotest Apps Array Codec Engine Float List Printf QCheck QCheck_alcotest Rex_core Rexsync Rng Sim String Workload
