test/test_rex.ml: Alcotest Apps Array Codec Engine Fun Hashtbl List Net Option Paxos Printf Rex_core Rexsync Rpc Sim Smr String
