(* Rex vs execute-verify (Eve-style): the paper's §5 comparison made
   quantitative.  The Fig. 8 micro-benchmark runs under both frameworks:
   Rex preserves the application's 10%-in-lock granularity, while Eve's
   mixer must treat the whole request as the unit of parallelism — the
   f = 100% configuration — so its throughput collapses with contention
   much earlier.  A second sweep shows the cost of an imperfect mixer
   (missed conflicts → rollback + serial re-execution). *)

open Sim
module R = Rex_core

let threads = 16

let conflict_keys req =
  match Apps.Util.words req with [ "REQ"; i ] -> [ i ] | _ -> []

let run_eve ?(seed = 42) ?(miss_rate = 0.) ~locks ~frac ~warmup ~measure () =
  let eng = Engine.create ~seed ~cores_per_node:16 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = Eve.default_config ~workers:threads ~miss_rate ~replicas:[ 0; 1; 2 ] () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Eve.create net rpc cfg ~node:i ~paxos_store:stores.(i) ~conflict_keys
          (Fig8.micro_factory ~frac ~locks ()))
  in
  Array.iter Eve.start servers;
  Engine.run ~until:1.0 eng;
  let primary =
    match Array.find_opt Eve.is_primary servers with
    | Some p -> p
    | None ->
      Engine.run ~until:5.0 eng;
      Option.get (Array.find_opt Eve.is_primary servers)
  in
  let total = warmup + measure in
  let completed = ref 0 in
  let t_warm = ref 0. and t_end = ref 0. in
  let launched = ref 0 in
  let rng = Rng.create (seed + 13) in
  let rec submit_one () =
    if !launched < total + 512 then begin
      incr launched;
      Eve.submit primary (Fig8.gen ~locks rng) (fun _ ->
          incr completed;
          if !completed = warmup then t_warm := Engine.clock eng;
          if !completed = total then t_end := Engine.clock eng;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         for _ = 1 to 512 do
           submit_one ()
         done));
  let deadline = Engine.clock eng +. 600. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed < total && Engine.clock eng < deadline then pump ()
  in
  pump ();
  let throughput =
    if !completed >= total then float_of_int measure /. (!t_end -. !t_warm)
    else 0.
  in
  (throughput, Eve.stats primary)

let run ?(quick = false) () =
  let warmup = if quick then 30 else 100 in
  let measure = if quick then 100 else 400 in
  Printf.printf
    "\n== Rex vs execute-verify (Eve-style), Fig. 8 micro-benchmark ==\n";
  Printf.printf
    "(10 ms requests, 10%% of compute in a lock for Rex; Eve parallelizes \
     whole requests)\n";
  Printf.printf "contention_p\tnative\tRex\tEve\tEve_avg_batch\n%!";
  List.iter
    (fun p ->
      let locks = max 1 (int_of_float (1. /. p)) in
      let native = Fig8.point ~quick ~mode:Harness.Native ~frac:0.1 ~locks () in
      let rex = Fig8.point ~quick ~mode:Harness.Rex ~frac:0.1 ~locks () in
      let eve_tp, eve_stats = run_eve ~locks ~frac:0.1 ~warmup ~measure () in
      Printf.printf "%g\t%.0f\t%.0f\t%.0f\t%.1f\n%!" p
        native.Harness.throughput rex.Harness.throughput eve_tp
        eve_stats.Eve.avg_batch)
    [ 0.001; 0.01; 0.05; 0.1; 0.2; 0.5 ];
  Printf.printf "\n== Cost of an imperfect mixer (p = 0.1) ==\n";
  Printf.printf "miss_rate\tEve/s\trollbacks\tbatches\n%!";
  List.iter
    (fun miss_rate ->
      let tp, st = run_eve ~miss_rate ~locks:10 ~frac:0.1 ~warmup ~measure () in
      Printf.printf "%.2f\t%.0f\t%d\t%d\n%!" miss_rate tp st.Eve.rollbacks
        st.Eve.batches)
    [ 0.0; 0.1; 0.3; 0.6 ]
