(* Paxos vs chain replication as the agree stage (paper §7): same Rex
   execute/follow machinery, different agreement.  Chains trade commit
   latency (a full traversal) for head bandwidth (each delta sent once
   instead of n-1 times). *)

let threads = 16

let run_one ~agreement ~net_latency ~warmup ~measure =
  Harness.run_rex ~agreement ~net_latency ~min_window:0.03 ~threads
    ~factory:(Apps.Lock_server.factory ())
    ~gen:(Workload.Mix.lock_server ~n_files:100_000)
    ~warmup ~measure ()

let run ?(quick = false) () =
  let warmup = if quick then 300 else 1000 in
  let measure = if quick then 1000 else 4000 in
  Printf.printf "\n== Agree-stage comparison: Paxos vs chain replication (§7) ==\n";
  Printf.printf "net_latency(us)\tagree\tRex/s\tmean_lat(us)\tp99_lat(us)\n%!";
  List.iter
    (fun net_latency ->
      List.iter
        (fun (name, agreement) ->
          let r = run_one ~agreement ~net_latency ~warmup ~measure in
          Printf.printf "%.0f\t%s\t%.0f\t%.0f\t%.0f\n%!" (net_latency *. 1e6)
            name r.Harness.throughput
            (r.Harness.mean_latency *. 1e6)
            (r.Harness.p99_latency *. 1e6))
        [ ("paxos", `Paxos); ("chain", `Chain) ])
    [ 50e-6; 500e-6 ]
