(* Figure 7: throughput of the six real-world applications in native,
   Rex and RSM modes as worker threads sweep 1..32, with the "waited
   events" series on the secondary (paper §6.3). *)

module R = Rex_core

type app_spec = {
  key : string;
  title : string;
  factory : unit -> R.App.factory;
  gen : unit -> Workload.Mix.gen;
  warmup : int;
  measure : int;
  unit_ : string;  (* throughput unit in the paper's plot *)
}

let specs =
  [
    {
      key = "thumbnail";
      title = "Thumbnail Server (Fig. 7a)";
      factory = (fun () -> Apps.Thumbnail.factory ());
      gen = (fun () -> Workload.Mix.thumbnail ~n_images:1_000_000);
      warmup = 100;
      measure = 500;
      unit_ = "req/s";
    };
    {
      key = "lockserver";
      title = "Lock Server (Fig. 7b)";
      factory = (fun () -> Apps.Lock_server.factory ());
      gen = (fun () -> Workload.Mix.lock_server ~n_files:100_000);
      warmup = 1000;
      measure = 6000;
      unit_ = "req/s";
    };
    {
      key = "leveldb";
      title = "LevelDB (Fig. 7c)";
      factory = (fun () -> Apps.Leveldb.factory ());
      gen = (fun () -> Workload.Mix.kv ~read_ratio:0.5 ());
      warmup = 4000;
      measure = 20000;
      unit_ = "req/s";
    };
    {
      key = "kyoto";
      title = "Kyoto Cabinet (Fig. 7d)";
      factory = (fun () -> Apps.Kyoto.factory ());
      gen = (fun () -> Workload.Mix.kv ~read_ratio:0.5 ());
      warmup = 4000;
      measure = 20000;
      unit_ = "req/s";
    };
    {
      key = "filesys";
      title = "File System (Fig. 7e)";
      factory = (fun () -> Apps.Filesys.factory ());
      gen = (fun () -> Workload.Mix.filesystem ~n_files:64);
      warmup = 50;
      measure = 250;
      unit_ = "req/s";
    };
    {
      key = "memcache";
      title = "Memcached (Fig. 7f)";
      factory = (fun () -> Apps.Memcache.factory ());
      gen = (fun () -> Workload.Mix.kv ~read_ratio:0.5 ());
      warmup = 800;
      measure = 4000;
      unit_ = "req/s";
    };
  ]

let spec_of key = List.find_opt (fun s -> s.key = key) specs
let default_threads = [ 1; 2; 4; 8; 16; 24; 32 ]

let scale quick n = if quick then max 100 (n / 2) else n

let run_app ?(quick = false) ?(threads = default_threads) spec =
  Printf.printf "\n== %s  [throughput in %s] ==\n" spec.title spec.unit_;
  Printf.printf "threads\tnative\tRex\tRSM\twaited_events/s\n%!";
  let warmup = scale quick spec.warmup and measure = scale quick spec.measure in
  (* RSM is serial: one point, repeated for reference on every row. *)
  let rsm =
    Harness.run_rsm ~factory:(spec.factory ()) ~gen:(spec.gen ()) ~warmup
      ~measure ()
  in
  List.iter
    (fun threads ->
      let native =
        Harness.run_native ~cores:16 ~threads ~factory:(spec.factory ())
          ~gen:(spec.gen ()) ~warmup ~measure ()
      in
      let rex =
        Harness.run_rex ~threads ~factory:(spec.factory ()) ~gen:(spec.gen ())
          ~warmup ~measure ()
      in
      Printf.printf "%d\t%s\t%s\t%s\t%s\n%!" threads
        (Harness.fmt_rate native.Harness.throughput)
        (Harness.fmt_rate rex.Harness.throughput)
        (Harness.fmt_rate rsm.Harness.throughput)
        (Harness.fmt_rate rex.Harness.waited_per_sec))
    threads

let run ?(quick = false) ?app () =
  match app with
  | Some key -> (
    match spec_of key with
    | Some spec -> run_app ~quick spec
    | None ->
      Printf.eprintf "unknown app %s (have: %s)\n" key
        (String.concat ", " (List.map (fun s -> s.key) specs)))
  | None -> List.iter (run_app ~quick) specs
