(* Figure 9: query throughput under the two read semantics (paper §6.5).
   The lock-server runs 24 query threads on either a secondary
   (committed state) or the primary (speculative state) while the number
   of update threads sweeps 1..32. *)

open Sim
module R = Rex_core

let query_threads = 24

let run_case ?(quick = false) ~on_secondary update_threads =
  let warm = if quick then 0.01 else 0.02 in
  let window = if quick then 0.04 else 0.1 in
  let cfg = Harness.rex_config ~threads:update_threads () in
  let cluster =
    R.Cluster.create ~seed:77 ~cores_per_node:16 cfg
      (Apps.Lock_server.factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let target =
    if on_secondary then
      Array.to_list (R.Cluster.servers cluster)
      |> List.find (fun s -> not (R.Server.is_primary s))
    else primary
  in
  (* Pre-populate so renewals succeed. *)
  let n_files = 10_000 in
  let populated = ref 0 in
  for i = 0 to 499 do
    R.Server.submit primary
      (Printf.sprintf "CREATE %s 1000" (Workload.Keygen.path (i * 20)))
      (fun _ -> incr populated)
  done;
  ignore
    (Harness.pump eng ~done_p:(fun () -> !populated >= 500) ~virtual_deadline:60.);
  (* Update load, open loop. *)
  let gen = Workload.Mix.lock_server ~n_files in
  let rng = Rng.create 5 in
  let updates = ref 0 in
  let rec submit_one () =
    R.Server.submit primary (gen rng) (fun _ ->
        incr updates;
        submit_one ())
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to 4 * update_threads do
           submit_one ()
         done));
  (* Query load: 24 native read fibers on the target replica. *)
  let queries = ref 0 in
  let stop = ref false in
  let qrng = Rng.create 99 in
  for _ = 1 to query_threads do
    ignore
      (Engine.spawn eng ~node:(R.Server.node target) (fun () ->
           while not !stop do
             let path = Workload.Keygen.path (Sim.Rng.int qrng n_files) in
             ignore (R.Server.query target (Printf.sprintf "READ %s" path));
             incr queries
           done))
  done;
  Engine.run ~until:(Engine.clock eng +. warm) eng;
  let u0 = !updates and q0 = !queries in
  Engine.run ~until:(Engine.clock eng +. window) eng;
  stop := true;
  let du = !updates - u0 and dq = !queries - q0 in
  ( float_of_int du /. window,
    float_of_int dq /. window )

let run ?(quick = false) () =
  let threads = [ 1; 2; 4; 8; 16; 24; 32 ] in
  Printf.printf "\n== Fig. 9(a): queries on a SECONDARY (committed state) ==\n";
  Printf.printf "update_threads\tupdate/s\tquery/s\n%!";
  List.iter
    (fun t ->
      let u, q = run_case ~quick ~on_secondary:true t in
      Printf.printf "%d\t%.0f\t%.0f\n%!" t u q)
    threads;
  Printf.printf "\n== Fig. 9(b): queries on the PRIMARY (speculative state) ==\n";
  Printf.printf "update_threads\tupdate/s\tquery/s\n%!";
  List.iter
    (fun t ->
      let u, q = run_case ~quick ~on_secondary:false t in
      Printf.printf "%d\t%.0f\t%.0f\n%!" t u q)
    threads
