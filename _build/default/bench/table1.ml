(* Table 1: synchronization primitives used by each application (static —
   it documents how the ports are built; the test suite exercises the
   actual primitives). *)

let rows =
  [
    ("Thumbnail Server", "Lock");
    ("File System", "Lock");
    ("Lock Server", "ReadWriteLock");
    ("LevelDB", "Lock, Cond");
    ("Memcached", "Lock, Cond");
    ("Kyoto Cabinet", "Lock, Cond, ReadWriteLock");
  ]

let run () =
  Printf.printf "\n== Table 1: synchronization primitives used ==\n";
  Printf.printf "%-18s %s\n" "Application" "Synchronization Primitives";
  List.iter (fun (app, prims) -> Printf.printf "%-18s %s\n" app prims) rows;
  Printf.printf "%!"
