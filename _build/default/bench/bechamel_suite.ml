(* Wall-clock micro-benchmarks (Bechamel): the constant factors of this
   OCaml implementation — one Test.make per core operation underlying the
   paper's tables and figures (trace recording for Fig. 7's record
   overhead, delta codec for the §6.3 byte counts, scoreboard and vclock
   ops for replay cost, Paxos message codec for the agree stage). *)

open Bechamel
open Toolkit

let mk_event slot clock : Event.t =
  {
    id = { slot; clock };
    kind = Event.Acquire;
    resource = 42;
    version = clock;
    payload = "";
  }

let test_event_encode =
  Test.make ~name:"event encode (16B target)"
    (Staged.stage (fun () ->
         let b = Codec.sink ~initial_capacity:32 () in
         Event.write b (mk_event 3 123456)))

let encoded_event =
  let b = Codec.sink () in
  Event.write b (mk_event 3 123456);
  Codec.contents b

let test_event_decode =
  Test.make ~name:"event decode"
    (Staged.stage (fun () -> ignore (Event.read (Codec.source encoded_event))))

let test_trace_append =
  Test.make ~name:"trace append 1k events + edges"
    (Staged.stage (fun () ->
         let t = Trace.create ~slots:4 () in
         for c = 1 to 250 do
           for s = 0 to 3 do
             Trace.append t (mk_event s c)
           done;
           if c > 1 then
             Trace.add_edge t ~src:{ slot = 0; clock = c - 1 }
               ~dst:{ slot = 1; clock = c }
         done))

let big_trace =
  let t = Trace.create ~slots:4 () in
  for c = 1 to 250 do
    for s = 0 to 3 do
      Trace.append t (mk_event s c)
    done;
    if c > 1 then
      Trace.add_edge t ~src:{ slot = 0; clock = c - 1 } ~dst:{ slot = 1; clock = c }
  done;
  t

let test_delta_roundtrip =
  Test.make ~name:"delta extract+encode+decode (1k events)"
    (Staged.stage (fun () ->
         let d = Trace.Delta.extract big_trace ~base:(Trace.Cut.zero ~slots:4) in
         let b = Codec.sink () in
         Trace.Delta.write b d;
         ignore (Trace.Delta.read (Codec.source (Codec.contents b)))))

let test_vclock =
  Test.make ~name:"vclock join+dominates (32 slots)"
    (Staged.stage
       (let a = Vclock.create ~slots:32 and b = Vclock.create ~slots:32 in
        fun () ->
          Vclock.join a b;
          ignore (Vclock.dominates a { slot = 7; clock = 3 })))

let test_paxos_msg =
  Test.make ~name:"paxos accept encode+decode"
    (Staged.stage (fun () ->
         let m =
           Paxos.Msg.Accept
             {
               ballot = { round = 7; replica = 2 };
               instance = 123456;
               value = String.make 256 'x';
               prior = [];
             }
         in
         ignore (Paxos.Msg.decode (Paxos.Msg.encode m))))

let test_last_consistent =
  Test.make ~name:"last_consistent cut (1k events)"
    (Staged.stage (fun () ->
         ignore (Trace.last_consistent big_trace (Trace.end_cut big_trace))))

let tests =
  [
    test_event_encode;
    test_event_decode;
    test_trace_append;
    test_delta_roundtrip;
    test_vclock;
    test_paxos_msg;
    test_last_consistent;
  ]

let run () =
  Printf.printf "\n== Bechamel wall-clock micro-benchmarks ==\n%!";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-45s (no estimate)\n%!" name)
        stats)
    tests
