(* YCSB core workloads on the replicated key/value stores: standard
   cloud-serving mixes exercising the same Rex machinery with different
   read/write balances, skew, scans and read-modify-writes. *)

let threads = 16

let stores :
    (string * (unit -> Rex_core.App.factory)) list =
  [
    ("leveldb", fun () -> Apps.Leveldb.factory ());
    ("kyoto", fun () -> Apps.Kyoto.factory ());
  ]

let run ?(quick = false) () =
  let warmup = if quick then 500 else 2000 in
  let measure = if quick then 2000 else 8000 in
  Printf.printf "\n== YCSB core workloads under Rex (16 threads, req/s) ==\n";
  Printf.printf "workload\t%s\n%!"
    (String.concat "\t" (List.map fst stores));
  List.iter
    (fun w ->
      let row =
        List.map
          (fun (_, factory) ->
            let r =
              Harness.run_rex ~threads ~factory:(factory ())
                ~gen:(Workload.Mix.ycsb ~n_keys:100_000 w)
                ~warmup ~measure ()
            in
            Harness.fmt_rate r.Harness.throughput)
          stores
      in
      Printf.printf "%-22s\t%s\n%!" (Workload.Mix.ycsb_name w)
        (String.concat "\t" row))
    [ Workload.Mix.A; B; C; D; E; F ]
