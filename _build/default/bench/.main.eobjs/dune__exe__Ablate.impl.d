bench/ablate.ml: Apps Harness List Printf Rex_core Workload
