bench/fig10.ml: Apps Array Engine Float Option Printf Rex_core Rng Sim Workload
