bench/harness.ml: Array Engine List Net Option Paxos Printf Rex_core Rexsync Rng Rpc Sim Smr String
