bench/main.mli:
