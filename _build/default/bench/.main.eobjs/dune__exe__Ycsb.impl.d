bench/ycsb.ml: Apps Harness List Printf Rex_core String Workload
