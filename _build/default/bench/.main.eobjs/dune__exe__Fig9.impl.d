bench/fig9.ml: Apps Array Engine Harness List Printf Rex_core Rng Sim Workload
