bench/bechamel_suite.ml: Analyze Bechamel Benchmark Codec Event Hashtbl Instance List Measure Paxos Printf Staged String Test Time Toolkit Trace Vclock
