bench/fig8.ml: Apps Array Codec Harness Hashtbl List Printf Rex_core Rexsync Sim String
