bench/main.ml: Ablate Arg Bechamel_suite Chain_bench Cmd Cmdliner Eve_bench Fig10 Fig7 Fig8 Fig9 Overhead Table1 Term Ycsb
