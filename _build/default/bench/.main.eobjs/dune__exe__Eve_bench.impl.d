bench/eve_bench.ml: Apps Array Engine Eve Fig8 Harness List Net Option Paxos Printf Rex_core Rng Rpc Sim
