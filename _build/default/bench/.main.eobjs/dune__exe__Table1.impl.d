bench/table1.ml: List Printf
