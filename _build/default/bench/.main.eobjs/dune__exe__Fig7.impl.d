bench/fig7.ml: Apps Harness List Printf Rex_core String Workload
