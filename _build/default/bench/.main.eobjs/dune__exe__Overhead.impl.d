bench/overhead.ml: Apps Engine Harness List Printf Rex_core Rng Sim Workload
