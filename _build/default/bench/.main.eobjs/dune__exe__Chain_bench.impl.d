bench/chain_bench.ml: Apps Harness List Printf Workload
