(* Figure 8: lock-granularity and lock-contention micro-benchmark
   (paper §6.4).  Each request computes for ~10 ms, a fraction of it
   inside one lock drawn from a pool of [l] locks; the contention
   probability is p = 1/l.  Run with 16 worker threads on 16 cores, as in
   the paper. *)

module R = Rex_core

let compute = 10e-3
let threads = 16

(* The lock index is chosen by the workload generator so that the request
   itself is deterministic. *)
let micro_factory ~frac ~locks () : R.App.factory =
 fun api ->
  let pool =
    Array.init locks (fun i -> R.Api.lock api (Printf.sprintf "micro%d" i))
  in
  let counters = Array.make locks 0 in
  let execute ~request =
    match Apps.Util.words request with
    | [ "REQ"; idx ] ->
      let i = int_of_string idx mod locks in
      R.Api.work api (compute *. (1. -. frac));
      Rexsync.Lock.with_lock pool.(i) (fun () ->
          R.Api.work api (compute *. frac);
          counters.(i) <- counters.(i) + 1;
          (* order-sensitive response: conflicting executions differ *)
          string_of_int counters.(i))
    | _ -> "ERR"
  in
  {
    R.App.name = "micro";
    execute;
    query = (fun ~request:_ -> "OK");
    write_checkpoint =
      (fun sink ->
        Codec.write_array sink Codec.write_uvarint counters);
    read_checkpoint =
      (fun src ->
        let a = Codec.read_array src Codec.read_uvarint in
        Array.blit a 0 counters 0 (min (Array.length a) locks));
    digest = (fun () -> string_of_int (Hashtbl.hash (Array.to_list counters)));
  }

let gen ~locks rng = Printf.sprintf "REQ %d" (Sim.Rng.int rng locks)

let point ?(quick = false) ~mode ~frac ~locks () =
  let warmup = if quick then 30 else 100 in
  let measure = if quick then 100 else 400 in
  let factory = micro_factory ~frac ~locks () in
  match mode with
  | Harness.Native ->
    Harness.run_native ~cores:16 ~threads ~factory ~gen:(gen ~locks) ~warmup
      ~measure ()
  | Harness.Rex ->
    Harness.run_rex ~threads ~factory ~gen:(gen ~locks) ~warmup ~measure ()
  | Harness.Rsm -> Harness.run_rsm ~factory ~gen:(gen ~locks) ~warmup ~measure ()

let run_a ?(quick = false) () =
  Printf.printf
    "\n== Fig. 8(a): Rex throughput vs contention, by lock granularity ==\n";
  Printf.printf "contention_p\tf=10%%\tf=60%%\tf=80%%\tf=100%%\n%!";
  let probs = [ 0.001; 0.01; 0.05; 0.1 ] in
  List.iter
    (fun p ->
      let locks = max 1 (int_of_float (1. /. p)) in
      let row =
        List.map
          (fun frac ->
            let r = point ~quick ~mode:Harness.Rex ~frac ~locks () in
            Harness.fmt_rate r.Harness.throughput)
          [ 0.1; 0.6; 0.8; 1.0 ]
      in
      Printf.printf "%g\t%s\n%!" p (String.concat "\t" row))
    probs

let run_b ?(quick = false) () =
  Printf.printf "\n== Fig. 8(b): native vs Rex, 10%% of compute in locks ==\n";
  Printf.printf "contention_p\tnative\tRex\n%!";
  let probs = [ 0.001; 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ] in
  List.iter
    (fun p ->
      let locks = max 1 (int_of_float (1. /. p)) in
      let native = point ~quick ~mode:Harness.Native ~frac:0.1 ~locks () in
      let rex = point ~quick ~mode:Harness.Rex ~frac:0.1 ~locks () in
      Printf.printf "%g\t%s\t%s\n%!" p
        (Harness.fmt_rate native.Harness.throughput)
        (Harness.fmt_rate rex.Harness.throughput))
    probs
