package "apps" (
  directory = "apps"
  description = ""
  requires =
  "fmt rex.codec rex.core rex.rexsync rex.sim rex.trace rex.workload"
  archive(byte) = "apps.cma"
  archive(native) = "apps.cmxa"
  plugin(byte) = "apps.cma"
  plugin(native) = "apps.cmxs"
)
package "codec" (
  directory = "codec"
  description = ""
  requires = "fmt"
  archive(byte) = "codec.cma"
  archive(native) = "codec.cmxa"
  plugin(byte) = "codec.cma"
  plugin(native) = "codec.cmxs"
)
package "core" (
  directory = "core"
  description = ""
  requires = "fmt logs rex.codec rex.paxos rex.rexsync rex.sim rex.trace"
  archive(byte) = "rex_core.cma"
  archive(native) = "rex_core.cmxa"
  plugin(byte) = "rex_core.cma"
  plugin(native) = "rex_core.cmxs"
)
package "eve" (
  directory = "eve"
  description = ""
  requires =
  "fmt logs rex.codec rex.core rex.paxos rex.rexsync rex.sim rex.trace"
  archive(byte) = "eve.cma"
  archive(native) = "eve.cmxa"
  plugin(byte) = "eve.cma"
  plugin(native) = "eve.cmxs"
)
package "paxos" (
  directory = "paxos"
  description = ""
  requires = "fmt logs rex.codec rex.sim"
  archive(byte) = "paxos.cma"
  archive(native) = "paxos.cmxa"
  plugin(byte) = "paxos.cma"
  plugin(native) = "paxos.cmxs"
)
package "rexsync" (
  directory = "rexsync"
  description = ""
  requires = "fmt logs rex.codec rex.sim rex.trace"
  archive(byte) = "rexsync.cma"
  archive(native) = "rexsync.cmxa"
  plugin(byte) = "rexsync.cma"
  plugin(native) = "rexsync.cmxs"
)
package "sim" (
  directory = "sim"
  description = ""
  requires = "fmt logs rex.codec"
  archive(byte) = "sim.cma"
  archive(native) = "sim.cmxa"
  plugin(byte) = "sim.cma"
  plugin(native) = "sim.cmxs"
)
package "smr" (
  directory = "smr"
  description = ""
  requires =
  "fmt logs rex.codec rex.core rex.paxos rex.rexsync rex.sim rex.trace"
  archive(byte) = "smr.cma"
  archive(native) = "smr.cmxa"
  plugin(byte) = "smr.cma"
  plugin(native) = "smr.cmxs"
)
package "trace" (
  directory = "trace"
  description = ""
  requires = "fmt rex.codec"
  archive(byte) = "trace.cma"
  archive(native) = "trace.cmxa"
  plugin(byte) = "trace.cma"
  plugin(native) = "trace.cmxs"
)
package "workload" (
  directory = "workload"
  description = ""
  requires = "fmt rex.sim"
  archive(byte) = "workload.cma"
  archive(native) = "workload.cmxa"
  plugin(byte) = "workload.cma"
  plugin(native) = "workload.cmxs"
)