(** Node-local timers, each running its callback inside a fresh fiber (so
    callbacks may take locks, do CPU work, and block).  A timer dies with
    its node: after a crash its fiber is killed and it never fires again,
    matching the fate of the paper's background-task threads. *)

type periodic

val after :
  Engine.t -> node:int -> ?name:string -> delay:float -> (unit -> unit) -> unit
(** Run the callback once, [delay] seconds from now. *)

val every :
  Engine.t -> node:int -> ?name:string -> period:float -> (unit -> unit) ->
  periodic
(** Run the callback every [period] seconds (first firing after one
    period) until {!cancel} or node crash. *)

val cancel : periodic -> unit
