type handler = src:int -> string -> unit

type t = {
  eng : Engine.t;
  rng : Rng.t;
  base_latency : float;
  jitter_mean : float;
  handlers : (int * string, handler) Hashtbl.t;
  last_delivery : (int * int, float) Hashtbl.t;
  blocked : (int * int, unit) Hashtbl.t;
  mutable drop_probability : float;
  mutable messages : int;
  mutable bytes : int;
  port_bytes : (string, int) Hashtbl.t;
}

let create ?(base_latency = 50e-6) ?(jitter_mean = 20e-6) eng =
  {
    eng;
    rng = Rng.split (Engine.rng eng);
    base_latency;
    jitter_mean;
    handlers = Hashtbl.create 32;
    last_delivery = Hashtbl.create 32;
    blocked = Hashtbl.create 8;
    drop_probability = 0.;
    messages = 0;
    bytes = 0;
    port_bytes = Hashtbl.create 16;
  }

let engine t = t.eng
let register t ~node ~port h = Hashtbl.replace t.handlers (node, port) h
let set_drop_probability t p = t.drop_probability <- p

let partition t a b =
  Hashtbl.replace t.blocked (a, b) ();
  Hashtbl.replace t.blocked (b, a) ()

let heal t a b =
  Hashtbl.remove t.blocked (a, b);
  Hashtbl.remove t.blocked (b, a)

let heal_all t = Hashtbl.reset t.blocked
let messages_sent t = t.messages
let bytes_sent t = t.bytes

let bytes_sent_on_port t port =
  Option.value (Hashtbl.find_opt t.port_bytes port) ~default:0

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0;
  Hashtbl.reset t.port_bytes

let send t ~src ~dst ~port payload =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + String.length payload;
  Hashtbl.replace t.port_bytes port
    (bytes_sent_on_port t port + String.length payload);
  let dropped =
    Hashtbl.mem t.blocked (src, dst)
    || (t.drop_probability > 0. && Rng.float t.rng 1.0 < t.drop_probability)
  in
  if not dropped then begin
    let latency = t.base_latency +. Rng.exponential t.rng ~mean:t.jitter_mean in
    let arrival = Engine.clock t.eng +. latency in
    (* FIFO per directed pair: never deliver before an earlier message. *)
    let floor =
      Option.value (Hashtbl.find_opt t.last_delivery (src, dst)) ~default:0.
    in
    let at = Float.max arrival (floor +. 1e-12) in
    Hashtbl.replace t.last_delivery (src, dst) at;
    Engine.schedule t.eng ~at (fun () ->
        if Engine.node_alive t.eng dst then
          match Hashtbl.find_opt t.handlers (dst, port) with
          | None -> ()
          | Some h ->
            Engine.spawn_immediate t.eng ~node:dst ~name:("net:" ^ port)
              (fun () -> h ~src payload))
  end
