(** Blocking synchronization primitives for simulator fibers.

    These model the pthread primitives of the paper's C++ runtime and are
    the "real locks" wrapped by the Rex record/replay layer.  Contended
    hand-off picks a *random* waiter (seeded by the engine), which is
    precisely the scheduling nondeterminism Rex must capture: two runs with
    different seeds acquire locks in different orders.

    All blocking operations must be called from inside a fiber. *)

module Mutex : sig
  type t

  val create : Engine.t -> t
  val lock : t -> unit
  val try_lock : t -> bool
  val unlock : t -> unit
  (** Raises [Invalid_argument] if the caller does not hold the lock. *)

  val locked : t -> bool
  val holder : t -> Engine.tid option
end

module Cond : sig
  type t

  val create : Engine.t -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and parks; re-acquires before
      returning.  The caller must hold the mutex. *)

  val signal : t -> unit
  (** Wake one random waiter (no-op if none). *)

  val broadcast : t -> unit
end

module Rwlock : sig
  type t

  val create : Engine.t -> t
  val rd_lock : t -> unit
  val wr_lock : t -> unit
  val rd_unlock : t -> unit
  val wr_unlock : t -> unit
  val holders : t -> [ `Free | `Readers of int | `Writer of Engine.tid ]
end

module Sem : sig
  type t

  val create : Engine.t -> int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val value : t -> int
end
