type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy_of v = { prio = 0.; seq = 0; value = v }

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let ensure_capacity q =
  if q.size >= Array.length q.heap then begin
    let cap = max 16 (2 * Array.length q.heap) in
    let heap = Array.make cap (dummy_of q.heap.(0).value) in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let add q ~priority value =
  let entry = { prio = priority; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 entry;
  ensure_capacity q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.prio, top.value)
  end

let peek_priority q = if q.size = 0 then None else Some q.heap.(0).prio

let clear q =
  q.size <- 0;
  q.next_seq <- 0
