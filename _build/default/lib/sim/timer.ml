type periodic = { mutable active : bool }

let after eng ~node ?(name = "timer") ~delay f =
  Engine.spawn_at eng ~node ~at:(Engine.clock eng +. delay) ~name f

let every eng ~node ?(name = "periodic") ~period f =
  let p = { active = true } in
  let rec loop () =
    Engine.sleep period;
    if p.active then begin
      f ();
      loop ()
    end
  in
  ignore (Engine.spawn eng ~node ~name loop);
  p

let cancel p = p.active <- false
