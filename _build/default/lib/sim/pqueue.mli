(** Binary min-heap keyed by [(priority : float, seq : int)].

    The sequence number makes the pop order total and deterministic: two
    entries with equal priority pop in insertion order.  This is the event
    queue of the discrete-event {!Engine}. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> priority:float -> 'a -> unit
(** Insertion order among equal priorities is remembered. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum entry. *)

val peek_priority : 'a t -> float option

val clear : 'a t -> unit
