lib/sim/pqueue.mli:
