lib/sim/rng.mli:
