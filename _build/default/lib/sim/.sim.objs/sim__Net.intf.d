lib/sim/net.mli: Engine
