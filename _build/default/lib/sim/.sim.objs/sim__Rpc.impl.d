lib/sim/rpc.ml: Codec Engine Hashtbl Net
