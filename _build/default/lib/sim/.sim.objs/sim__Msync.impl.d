lib/sim/msync.ml: Engine List Rng
