lib/sim/net.ml: Engine Float Hashtbl Option Rng String
