lib/sim/engine.ml: Array Effect Fun Hashtbl List Pqueue Queue Rng
