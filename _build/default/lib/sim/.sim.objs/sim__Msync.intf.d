lib/sim/msync.mli: Engine
