(** [RexReadWriteLock]: readers-writer lock wrapper.

    Record mode keeps the partial order of Fig. 4's spirit: a reader's
    acquire is ordered only after the last writer's release, so concurrent
    readers replay concurrently; a writer's acquire is ordered after every
    read release of the preceding epoch.  The resource version counts
    writer epochs. *)

type t

val create : Runtime.t -> string -> t
val uid : t -> int
val rd_lock : t -> unit
val rd_unlock : t -> unit
val wr_lock : t -> unit
val wr_unlock : t -> unit
val with_rd : t -> (unit -> 'a) -> 'a
val with_wr : t -> (unit -> 'a) -> 'a
