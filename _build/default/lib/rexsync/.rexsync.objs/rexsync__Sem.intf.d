lib/rexsync/sem.mli: Runtime
