lib/rexsync/scoreboard.mli: Event Trace
