lib/rexsync/rwlock.ml: Event Fun Msync Option Runtime Sim
