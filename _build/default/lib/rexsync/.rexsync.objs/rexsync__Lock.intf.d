lib/rexsync/lock.mli: Event Runtime Sim
