lib/rexsync/scoreboard.ml: Array Engine Event Pqueue Printf Sim Trace
