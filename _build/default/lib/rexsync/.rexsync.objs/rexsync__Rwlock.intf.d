lib/rexsync/rwlock.mli: Runtime
