lib/rexsync/condvar.mli: Lock Runtime
