lib/rexsync/runtime.mli: Event Sim Trace
