lib/rexsync/lock.ml: Engine Event Fun Msync Option Runtime Sim
