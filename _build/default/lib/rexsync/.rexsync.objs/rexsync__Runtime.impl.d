lib/rexsync/runtime.ml: Array Engine Event Fmt Fun Hashtbl List Option Printf Scoreboard Sim String Trace Vclock
