lib/rexsync/sem.ml: Engine Event Msync Option Queue Runtime Sim
