lib/rexsync/condvar.ml: Event Lock Msync Option Queue Runtime Sim
