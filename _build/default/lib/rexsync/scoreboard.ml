open Sim

type t = {
  executed : int array;
  waiters : Engine.waker Pqueue.t array;
      (* per slot, keyed by the clock the waiter needs *)
}

let create ~slots =
  {
    executed = Array.make slots 0;
    waiters = Array.init slots (fun _ -> Pqueue.create ());
  }

let watermark t slot = t.executed.(slot)
let cut t = Trace.Cut.of_array t.executed

let advance t ~slot ~clock =
  if clock <> t.executed.(slot) + 1 then
    invalid_arg
      (Printf.sprintf "Scoreboard.advance: slot %d at %d, got clock %d" slot
         t.executed.(slot) clock);
  t.executed.(slot) <- clock;
  let q = t.waiters.(slot) in
  let rec wake_ready () =
    match Pqueue.peek_priority q with
    | Some threshold when int_of_float threshold <= clock -> (
      match Pqueue.pop q with
      | Some (_, w) ->
        Engine.wake w;
        wake_ready ()
      | None -> ())
    | Some _ | None -> ()
  in
  wake_ready ()

let wait_for t (id : Event.Id.t) =
  if t.executed.(id.slot) >= id.clock then false
  else begin
    (* Loop: a waker can fire spuriously early relative to our threshold
       only if watermarks regressed, which [advance] forbids — but the
       loop keeps the invariant obvious. *)
    while t.executed.(id.slot) < id.clock do
      Engine.park (fun w ->
          Pqueue.add t.waiters.(id.slot) ~priority:(float_of_int id.clock) w)
    done;
    true
  end

let reset t cut =
  let a = Trace.Cut.to_array cut in
  if Array.length a <> Array.length t.executed then
    invalid_arg "Scoreboard.reset";
  Array.blit a 0 t.executed 0 (Array.length a);
  Array.iter
    (fun q ->
      if not (Pqueue.is_empty q) then
        invalid_arg "Scoreboard.reset: waiters present")
    t.waiters
