(** Counting-semaphore wrapper.

    Record mode matches each acquisition to a specific earlier release
    (FIFO over release events) so that replayed acquisitions wait only for
    the release that actually freed their permit — the partial-order
    treatment the paper extends to semaphores (§4.2).  Because two cleared
    acquirers may then race benignly during replay, resource-version
    checking for semaphores is only meaningful (and only performed) in
    total-order mode. *)

type t

val create : Runtime.t -> string -> int -> t
val uid : t -> int
val acquire : t -> unit
val try_acquire : t -> bool
val release : t -> unit
