(** [RexCond]: condition-variable wrapper.

    A recorded wait produces two trace events against the condition's
    resource: [Cond_wait] (the mutex release going to sleep) and
    [Cond_wake] (the wake-up, with a causal edge from the signal or
    broadcast that caused it, plus the mutex re-acquisition edges).

    During replay the real condition variable is bypassed entirely: the
    waiter parks on the scoreboard until its recorded signal has executed,
    then re-acquires the real mutex.  There are therefore no lost wakeups
    in replay, and after a promotion the primitive switches back to the
    real condition variable seamlessly. *)

type t

val create : Runtime.t -> string -> t
val uid : t -> int

val wait : t -> Lock.t -> unit
(** Caller must hold the lock. *)

val signal : t -> unit
val broadcast : t -> unit
