module Cut = struct
  type t = int array

  let zero ~slots = Array.make slots 0

  let of_array a =
    if Array.exists (fun w -> w < 0) a then invalid_arg "Cut.of_array";
    Array.copy a

  let to_array = Array.copy
  let slots = Array.length
  let watermark c s = c.(s)
  let includes c (id : Event.Id.t) = id.clock <= c.(id.slot)

  let leq a b =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
    Array.length b = n && go 0

  let equal a b = a = b
  let min a b = Array.mapi (fun i v -> Stdlib.min v b.(i)) a
  let pp = Fmt.(brackets (array ~sep:comma int))
  let write b c = Codec.write_array b Codec.write_uvarint c
  let read s = Codec.read_array s Codec.read_uvarint
end

type slot_data = {
  events : Event.t Vec.t;
  edges : (Event.Id.t * Event.Id.t) Vec.t;
      (* edges whose destination lies in this slot, destination clock
         nondecreasing *)
}

type t = {
  base : int array;
      (* clocks at or below the base are before this trace object's
         horizon (a checkpoint cut); their events are not materialized *)
  slot_data : slot_data array;
  incoming_tbl : (int * int, Event.Id.t list) Hashtbl.t;
  mutable n_edges : int;
}

let create ?base ~slots () =
  if slots <= 0 then invalid_arg "Trace.create";
  let base =
    match base with
    | None -> Array.make slots 0
    | Some b ->
      if Array.length b <> slots then invalid_arg "Trace.create: base arity";
      Array.copy b
  in
  {
    base;
    slot_data =
      Array.init slots (fun _ -> { events = Vec.create (); edges = Vec.create () });
    incoming_tbl = Hashtbl.create 256;
    n_edges = 0;
  }

let num_slots t = Array.length t.slot_data
let base_cut t = Array.copy t.base
let slot_end t s = t.base.(s) + Vec.length t.slot_data.(s).events

let append t (e : Event.t) =
  let s = e.id.slot in
  if s < 0 || s >= num_slots t then invalid_arg "Trace.append: bad slot";
  if e.id.clock <> slot_end t s + 1 then
    invalid_arg
      (Printf.sprintf "Trace.append: clock %d in slot %d, expected %d"
         e.id.clock s (slot_end t s + 1));
  Vec.push t.slot_data.(s).events e

(* A source may predate the trace's horizon: the event itself is gone (a
   checkpoint subsumed it) but referring to it in an edge is legal — a
   replayer's scoreboard starts at the base, so such edges are trivially
   satisfied. *)
let valid_src t (id : Event.Id.t) =
  id.slot >= 0 && id.slot < num_slots t && id.clock >= 1
  && id.clock <= slot_end t id.slot

let contains t (id : Event.Id.t) =
  valid_src t id && id.clock > t.base.(id.slot)

let add_edge t ~src ~dst =
  if not (valid_src t src) then invalid_arg "Trace.add_edge: src not in trace";
  if not (contains t dst) then invalid_arg "Trace.add_edge: dst not in trace";
  if src.Event.Id.slot = dst.Event.Id.slot then
    invalid_arg "Trace.add_edge: intra-slot edge (program order is implicit)";
  let sd = t.slot_data.(dst.slot) in
  (match Vec.last sd.edges with
  | Some (_, prev_dst) when prev_dst.Event.Id.clock > dst.clock ->
    invalid_arg "Trace.add_edge: destination clocks must be nondecreasing"
  | _ -> ());
  Vec.push sd.edges (src, dst);
  t.n_edges <- t.n_edges + 1;
  let key = (dst.slot, dst.clock) in
  let prev = Option.value (Hashtbl.find_opt t.incoming_tbl key) ~default:[] in
  Hashtbl.replace t.incoming_tbl key (src :: prev)

let find t (id : Event.Id.t) =
  if contains t id then
    Some (Vec.get t.slot_data.(id.slot).events (id.clock - t.base.(id.slot) - 1))
  else None

let incoming t (id : Event.Id.t) =
  Option.value (Hashtbl.find_opt t.incoming_tbl (id.slot, id.clock)) ~default:[]

let end_cut t = Array.init (num_slots t) (slot_end t)

let event_count t =
  Array.fold_left (fun acc sd -> acc + Vec.length sd.events) 0 t.slot_data

let edge_count t = t.n_edges

let iter_events t f =
  Array.iter (fun sd -> Vec.iter f sd.events) t.slot_data

let iter_edges t f =
  Array.iter (fun sd -> Vec.iter (fun (src, dst) -> f ~src ~dst) sd.edges)
    t.slot_data

let pp ppf t =
  Fmt.pf ppf "trace<%d slots, %d events, %d edges, end %a>" (num_slots t)
    (event_count t) (edge_count t) Cut.pp (end_cut t)

let is_consistent t cut =
  let ok = ref true in
  iter_edges t (fun ~src ~dst ->
      if Cut.includes cut dst && not (Cut.includes cut src) then ok := false);
  !ok

let last_consistent t cut =
  let c = Array.copy cut in
  let changed = ref true in
  while !changed do
    changed := false;
    iter_edges t (fun ~src ~dst ->
        if
          dst.Event.Id.clock <= c.(dst.slot)
          && src.Event.Id.clock > c.(src.slot)
        then begin
          c.(dst.slot) <- dst.clock - 1;
          changed := true
        end)
  done;
  c

(* First index in [edges] whose destination clock exceeds [wm]; edges are
   sorted by destination clock. *)
let edge_lower_bound edges wm =
  let n = Vec.length edges in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let _, dst = Vec.get edges mid in
      if dst.Event.Id.clock <= wm then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

let is_prefix t ~of_ =
  num_slots t = num_slots of_
  && t.base = of_.base
  && Cut.leq (end_cut t) (end_cut of_)
  &&
  let ok = ref true in
  for s = 0 to num_slots t - 1 do
    let a = t.slot_data.(s) and b = of_.slot_data.(s) in
    for i = 0 to Vec.length a.events - 1 do
      if Vec.get a.events i <> Vec.get b.events i then ok := false
    done;
    (* Edges of the prefix must be exactly the larger trace's edges whose
       destination falls inside the prefix. *)
    let wm = slot_end t s in
    let expected = edge_lower_bound b.edges wm in
    if Vec.length a.edges <> expected then ok := false
    else
      for i = 0 to expected - 1 do
        if Vec.get a.edges i <> Vec.get b.edges i then ok := false
      done
  done;
  !ok

module Delta = struct
  type trace = t

  type t = {
    base : Cut.t;
    upto : Cut.t;
    events : Event.t list;
    edges : (Event.Id.t * Event.Id.t) list;
  }

  let extract ?upto (tr : trace) ~base =
    if Cut.slots base <> num_slots tr then invalid_arg "Delta.extract";
    let upto = Option.value upto ~default:(end_cut tr) in
    if not (Cut.leq base upto) || not (Cut.leq upto (end_cut tr)) then
      invalid_arg "Delta.extract: cuts out of range";
    if not (Cut.leq (base_cut tr) base) then
      invalid_arg "Delta.extract: base below trace horizon";
    let events = ref [] in
    let edges = ref [] in
    for s = num_slots tr - 1 downto 0 do
      let sd = tr.slot_data.(s) in
      let lo = Cut.watermark base s - tr.base.(s)
      and hi = Cut.watermark upto s - tr.base.(s) in
      let evs = ref [] in
      for i = lo to hi - 1 do
        evs := Vec.get sd.events i :: !evs
      done;
      events := List.rev_append !evs !events;
      let eds = ref [] in
      (* Edge slicing is by absolute destination clock, not vec index —
         the two differ on a trace with a checkpoint base. *)
      let e_lo = edge_lower_bound sd.edges (Cut.watermark base s)
      and e_hi = edge_lower_bound sd.edges (Cut.watermark upto s) in
      for i = e_lo to e_hi - 1 do
        eds := Vec.get sd.edges i :: !eds
      done;
      edges := List.rev_append !eds !edges
    done;
    { base; upto; events = !events; edges = !edges }

  let is_empty d = d.events = [] && d.edges = []

  (* Validate fully before mutating so a malformed delta leaves the trace
     untouched. *)
  let validate (tr : trace) (d : t) =
    let slots = num_slots tr in
    if Cut.slots d.base <> slots || Cut.slots d.upto <> slots then
      Error "delta cut arity mismatch"
    else if not (Cut.equal (end_cut tr) d.base) then
      Error
        (Fmt.str "delta base %a does not match trace end %a" Cut.pp d.base
           Cut.pp (end_cut tr))
    else if not (Cut.leq d.base d.upto) then Error "delta upto below base"
    else begin
      let next = Array.init slots (fun s -> Cut.watermark d.base s + 1) in
      let events_ok =
        List.for_all
          (fun (e : Event.t) ->
            let s = e.id.slot in
            s >= 0 && s < slots && e.id.clock = next.(s)
            && begin
                 next.(s) <- next.(s) + 1;
                 e.id.clock <= Cut.watermark d.upto s
               end)
          d.events
      in
      let reached =
        Array.for_all2 (fun n w -> n = w + 1) next (Cut.to_array d.upto)
      in
      let last_dst = Array.make slots 0 in
      let edges_ok =
        List.for_all
          (fun ((src : Event.Id.t), (dst : Event.Id.t)) ->
            src.slot <> dst.slot && Cut.includes d.upto src
            && Cut.includes d.upto dst
            && dst.clock > Cut.watermark d.base dst.slot
            && dst.clock >= last_dst.(dst.slot)
            && begin
                 last_dst.(dst.slot) <- dst.clock;
                 true
               end)
          d.edges
      in
      if not events_ok then Error "delta events not contiguous"
      else if not reached then Error "delta events do not reach its upto cut"
      else if not edges_ok then Error "delta edges malformed"
      else Ok ()
    end

  let apply (tr : trace) (d : t) =
    match validate tr d with
    | Error _ as e -> e
    | Ok () ->
      List.iter (append tr) d.events;
      List.iter (fun (src, dst) -> add_edge tr ~src ~dst) d.edges;
      Ok ()

  (* Clock-aligned apply for recovery: a replica rebuilding its trace from
     a checkpoint replays committed deltas whose ranges may partly overlap
     what it already holds (or what the checkpoint subsumed).  Events at
     or below the current end are skipped; gaps are an error. *)
  let apply_overlapping (tr : trace) (d : t) =
    if Cut.slots d.upto <> num_slots tr then Error "delta arity mismatch"
    else begin
      let before = end_cut tr in
      let bad = ref None in
      List.iter
        (fun (e : Event.t) ->
          if !bad = None then
            let s = e.Event.id.slot in
            if s < 0 || s >= num_slots tr then bad := Some "bad slot"
            else if e.id.clock <= slot_end tr s then ()
            else if e.id.clock = slot_end tr s + 1 then append tr e
            else
              bad :=
                Some
                  (Printf.sprintf "gap in slot %d: at %d, delta gives %d" s
                     (slot_end tr s) e.id.clock))
        d.events;
      match !bad with
      | Some msg -> Error msg
      | None ->
        List.iter
          (fun ((src : Event.Id.t), (dst : Event.Id.t)) ->
            (* Only edges whose destination was appended just now. *)
            if
              dst.clock > Cut.watermark before dst.slot
              && contains tr dst && valid_src tr src
              && src.slot <> dst.slot
            then add_edge tr ~src ~dst)
          d.edges;
        Ok ()
    end

  let write b d =
    Cut.write b d.base;
    Cut.write b d.upto;
    Codec.write_list b Event.write d.events;
    Codec.write_list b
      (fun b (src, dst) ->
        Event.Id.write b src;
        Event.Id.write b dst)
      d.edges

  let read s =
    let base = Cut.read s in
    let upto = Cut.read s in
    let events = Codec.read_list s Event.read in
    let edges =
      Codec.read_list s (fun s ->
          let src = Event.Id.read s in
          let dst = Event.Id.read s in
          (src, dst))
    in
    { base; upto; events; edges }

  let wire_size d =
    let b = Codec.sink () in
    write b d;
    Codec.length b
end
