lib/trace/vclock.ml: Array Event Fmt
