lib/trace/render.ml: Buffer Event Fmt List Printf Trace
