lib/trace/render.mli: Event Trace
