lib/trace/event.mli: Codec Fmt
