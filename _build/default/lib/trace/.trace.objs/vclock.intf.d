lib/trace/vclock.mli: Event Fmt
