lib/trace/event.ml: Codec Fmt Printf
