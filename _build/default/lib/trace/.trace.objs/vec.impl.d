lib/trace/vec.ml: Array List
