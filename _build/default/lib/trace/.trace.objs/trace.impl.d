lib/trace/trace.ml: Array Codec Event Fmt Hashtbl List Option Printf Stdlib Vec
