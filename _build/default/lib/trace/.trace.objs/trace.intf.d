lib/trace/trace.mli: Codec Event Fmt
