lib/trace/vec.mli:
