type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.arr.(i)

let push v x =
  if v.len = Array.length v.arr then begin
    let cap = max 8 (2 * Array.length v.arr) in
    let arr = Array.make cap x in
    Array.blit v.arr 0 arr 0 v.len;
    v.arr <- arr
  end;
  v.arr.(v.len) <- x;
  v.len <- v.len + 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.arr.(i)
  done

let iter_from start f v =
  for i = max 0 start to v.len - 1 do
    f v.arr.(i)
  done

let to_list v = List.init v.len (fun i -> v.arr.(i))
let last v = if v.len = 0 then None else Some v.arr.(v.len - 1)
