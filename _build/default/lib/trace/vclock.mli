(** Vector clocks over thread slots.

    Used at record time to drop causal edges already implied by program
    order and transitivity (paper §4.2 "remove unnecessary causal edges"),
    and in tests to state reachability properties. *)

type t = private int array

val create : slots:int -> t
val copy : t -> t
val get : t -> int -> int
val slots : t -> int

val tick : t -> int -> t
(** [tick v slot] bumps [slot]'s component (in place) and returns [v]. *)

val observe : t -> Event.Id.t -> unit
(** Join a single event into the clock (in place). *)

val join : t -> t -> unit
(** [join v u] merges [u] into [v] (in place). *)

val dominates : t -> Event.Id.t -> bool
(** Does the clock already know of this event (i.e. an edge to it would be
    redundant)? *)

val leq : t -> t -> bool
val pp : t Fmt.t
