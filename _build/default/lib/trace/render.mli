(** Rendering traces for humans — the debugging workflow of paper §6.1:
    "by extracting and visualizing the causal edges from the transmitted
    trace, and comparing against the current in-memory state, we find
    [the unexpected event] on the secondary".

    {!to_dot} emits GraphViz (one cluster per thread slot, causal edges
    across); {!window} cuts a bounded neighbourhood around a point of
    interest (e.g. where replay diverged) so the graph stays readable;
    {!dump} is a plain-text listing. *)

val to_dot :
  ?resource_name:(int -> string) ->
  ?highlight:Event.Id.t list ->
  Trace.t ->
  string

val window :
  Trace.t -> center:Trace.Cut.t -> radius:int ->
  (Event.t list * (Event.Id.t * Event.Id.t) list)
(** Events within [radius] clocks of each slot's center watermark, plus
    every causal edge touching them. *)

val window_to_dot :
  ?resource_name:(int -> string) ->
  ?highlight:Event.Id.t list ->
  Trace.t -> center:Trace.Cut.t -> radius:int ->
  string

val dump : ?limit_per_slot:int -> Trace.t -> string
