let default_resource_name r = Printf.sprintf "r%d" r

let node_id (id : Event.Id.t) = Printf.sprintf "e_%d_%d" id.slot id.clock

let node_label resource_name (e : Event.t) =
  let res =
    match e.kind with
    | Event.Req_start | Event.Req_end | Event.Timer_fire | Event.Nondet
    | Event.Ckpt_mark ->
      ""
    | _ -> " " ^ resource_name e.resource
  in
  Printf.sprintf "%d: %s%s" e.id.clock (Event.kind_to_string e.kind) res

let emit_dot ~resource_name ~highlight events edges =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph trace {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  let slots =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.id.slot) events)
  in
  List.iter
    (fun slot ->
      pr "  subgraph cluster_slot%d {\n    label=\"slot %d\";\n" slot slot;
      let mine =
        List.filter (fun (e : Event.t) -> e.id.slot = slot) events
        |> List.sort (fun (a : Event.t) (b : Event.t) ->
               compare a.id.clock b.id.clock)
      in
      List.iter
        (fun (e : Event.t) ->
          let hl =
            if List.exists (Event.Id.equal e.id) highlight then
              ", style=filled, fillcolor=red"
            else ""
          in
          pr "    %s [label=\"%s\"%s];\n" (node_id e.id)
            (node_label resource_name e)
            hl)
        mine;
      (* program order, drawn invisibly heavy to keep columns *)
      let rec chain = function
        | (a : Event.t) :: (b : Event.t) :: rest ->
          pr "    %s -> %s [style=dotted, arrowhead=none];\n" (node_id a.id)
            (node_id b.id);
          chain (b :: rest)
        | _ -> ()
      in
      chain mine;
      pr "  }\n")
    slots;
  List.iter
    (fun (src, dst) ->
      pr "  %s -> %s [color=blue, constraint=false];\n" (node_id src)
        (node_id dst))
    edges;
  pr "}\n";
  Buffer.contents buf

let all_events t =
  let acc = ref [] in
  Trace.iter_events t (fun e -> acc := e :: !acc);
  List.rev !acc

let all_edges t =
  let acc = ref [] in
  Trace.iter_edges t (fun ~src ~dst -> acc := (src, dst) :: !acc);
  List.rev !acc

let to_dot ?(resource_name = default_resource_name) ?(highlight = []) t =
  emit_dot ~resource_name ~highlight (all_events t) (all_edges t)

let window t ~center ~radius =
  let keep (id : Event.Id.t) =
    abs (id.clock - Trace.Cut.watermark center id.slot) <= radius
  in
  let events = List.filter (fun (e : Event.t) -> keep e.id) (all_events t) in
  let edges =
    List.filter (fun (src, dst) -> keep src || keep dst) (all_edges t)
    |> List.filter (fun (src, dst) ->
           (* both endpoints must be drawable *)
           Trace.find t src <> None && Trace.find t dst <> None && keep src
           && keep dst)
  in
  (events, edges)

let window_to_dot ?(resource_name = default_resource_name) ?(highlight = []) t
    ~center ~radius =
  let events, edges = window t ~center ~radius in
  emit_dot ~resource_name ~highlight events edges

let dump ?(limit_per_slot = 50) t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s\n" (Fmt.str "%a" Trace.pp t);
  for slot = 0 to Trace.num_slots t - 1 do
    let hi = Trace.slot_end t slot in
    let lo = max (Trace.Cut.watermark (Trace.base_cut t) slot + 1)
        (hi - limit_per_slot + 1) in
    pr "slot %d (%d..%d):\n" slot lo hi;
    for c = lo to hi do
      match Trace.find t { slot; clock = c } with
      | None -> ()
      | Some e ->
        let incoming = Trace.incoming t e.id in
        pr "  %s%s\n"
          (Fmt.str "%a" Event.pp e)
          (if incoming = [] then ""
           else
             Fmt.str " <= [%a]"
               Fmt.(list ~sep:(any ";") Event.Id.pp)
               incoming)
    done
  done;
  Buffer.contents buf
