(** Partially-ordered execution traces (paper §2.1).

    A trace is, per thread slot, a sequence of {!Event.t}s in local-clock
    order, plus directed causal edges between events of different slots.
    The primary appends to its trace while executing; consensus proposals
    carry {!Delta}s of a growing trace; secondaries re-assemble the same
    trace and replay it.

    Appending is strict: event clocks must be contiguous per slot, and an
    edge may only point at events already present (the source may be in
    any slot, the destination must be the latest event of its slot or
    earlier).  This keeps every materialized trace well-formed; the
    paper's "inconsistent cut" phenomenon (§3.2, asynchronous logging) is
    modelled by taking {e cuts} that may slice between an edge's source
    and destination, and repaired with {!last_consistent}. *)

type t

module Cut : sig
  (** A cut assigns each slot a watermark: events with [clock <= watermark]
      are inside the cut. *)

  type t

  val zero : slots:int -> t
  val of_array : int array -> t
  val to_array : t -> int array
  val slots : t -> int
  val watermark : t -> int -> int
  val includes : t -> Event.Id.t -> bool
  val leq : t -> t -> bool
  val equal : t -> t -> bool
  val min : t -> t -> t
  val pp : t Fmt.t
  val write : Codec.sink -> t -> unit
  val read : Codec.source -> t
end

val create : ?base:Cut.t -> slots:int -> unit -> t
(** [base] (default: all zeros) is the trace's horizon: a checkpoint cut
    below which events are not materialized.  A replica recovering from a
    checkpoint replays only events above the base; causal-edge sources at
    or below it are considered already executed. *)

val num_slots : t -> int
val base_cut : t -> Cut.t

(** {1 Growing} *)

val append : t -> Event.t -> unit
(** Raises [Invalid_argument] unless the event's clock is exactly one past
    the slot's current end. *)

val add_edge : t -> src:Event.Id.t -> dst:Event.Id.t -> unit
(** Raises [Invalid_argument] if either endpoint is not in the trace or
    the edge is intra-slot (program order is implicit). *)

(** {1 Reading} *)

val slot_end : t -> int -> int
(** Clock of the last event of the slot (0 if none). *)

val find : t -> Event.Id.t -> Event.t option
val incoming : t -> Event.Id.t -> Event.Id.t list
(** Sources of edges into this event (possibly not yet in the trace). *)

val end_cut : t -> Cut.t
val event_count : t -> int
val edge_count : t -> int
val iter_events : t -> (Event.t -> unit) -> unit
val iter_edges : t -> (src:Event.Id.t -> dst:Event.Id.t -> unit) -> unit
val pp : t Fmt.t

(** {1 Cut algebra} *)

val is_consistent : t -> Cut.t -> bool
(** No edge crosses out of the cut into it. *)

val last_consistent : t -> Cut.t -> Cut.t
(** Greatest consistent cut below the given one — "the last consistent cut
    contained in a trace [is] the meaning of the proposal" (§3.2). *)

val is_prefix : t -> of_:t -> bool
(** Is this trace a cut of [of_] with identical events and edges?  The
    prefix property of §2.2. *)

(** {1 Deltas: what consensus proposals carry} *)

module Delta : sig
  type trace := t

  type t = {
    base : Cut.t;  (** the already-agreed prefix this extends *)
    upto : Cut.t;  (** the new end *)
    events : Event.t list;  (** per-slot contiguous, clock order *)
    edges : (Event.Id.t * Event.Id.t) list;
  }

  val extract : ?upto:Cut.t -> trace -> base:Cut.t -> t
  (** Everything appended after [base], up to [upto] (default: the current
      end).  [upto] must be a consistent cut, or the delta will fail to
      apply. *)

  val apply : trace -> t -> (unit, string) result
  (** Append the delta; fails (leaving the trace unchanged) unless
      [delta.base] equals the trace's current end. *)

  val apply_overlapping : trace -> t -> (unit, string) result
  (** Clock-aligned apply for checkpoint recovery: events at or below the
      trace's current end are skipped, later ones appended; a gap is an
      error (the trace may then be partly extended). *)

  val is_empty : t -> bool
  val write : Codec.sink -> t -> unit
  val read : Codec.source -> t
  val wire_size : t -> int
end
