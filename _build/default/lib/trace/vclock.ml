type t = int array

let create ~slots = Array.make slots 0
let copy = Array.copy
let get v i = v.(i)
let slots = Array.length

let tick v slot =
  v.(slot) <- v.(slot) + 1;
  v

let observe v (id : Event.Id.t) =
  if id.clock > v.(id.slot) then v.(id.slot) <- id.clock

let join v u =
  for i = 0 to Array.length v - 1 do
    if u.(i) > v.(i) then v.(i) <- u.(i)
  done

let dominates v (id : Event.Id.t) = v.(id.slot) >= id.clock

let leq v u =
  let n = Array.length v in
  let rec go i = i >= n || (v.(i) <= u.(i) && go (i + 1)) in
  go 0

let pp = Fmt.(brackets (array ~sep:comma int))
