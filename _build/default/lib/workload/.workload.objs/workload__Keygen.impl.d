lib/workload/keygen.ml: Char Printf Sim String
