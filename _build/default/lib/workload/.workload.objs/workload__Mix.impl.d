lib/workload/mix.ml: Keygen List Printf Sim String Zipf
