lib/workload/zipf.ml: Array Float Sim
