(** Deterministic key and value material for the paper's workloads:
    "1 million entries where each operation has a 16-byte key and a
    100-byte value" (§6.3). *)

val key : int -> string
(** 16-byte key for an index. *)

val value : Sim.Rng.t -> int -> string
(** Pseudo-random printable value of the given length. *)

val path : int -> string
(** Lock-server style file path for an index. *)
