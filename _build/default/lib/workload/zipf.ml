type t = { cdf : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Sim.Rng.float rng 1.0 in
  (* binary search for the first index with cdf >= u *)
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bs lo mid else bs (mid + 1) hi
  in
  bs 0 (Array.length t.cdf - 1)
