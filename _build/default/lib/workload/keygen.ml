let key i = Printf.sprintf "user%012d" i

let value rng len =
  String.init len (fun _ -> Char.chr (97 + Sim.Rng.int rng 26))

let path i = Printf.sprintf "/locks/cell-%d/file-%d" (i mod 64) i
