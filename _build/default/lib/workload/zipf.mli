(** Zipfian rank sampling (rejection-inversion-free, precomputed CDF) for
    skewed key popularity in the key/value workloads. *)

type t

val create : n:int -> theta:float -> t
(** Ranks [0 .. n-1]; [theta = 0] is uniform, [theta ~ 0.99] is the
    classic YCSB skew. *)

val sample : t -> Sim.Rng.t -> int
