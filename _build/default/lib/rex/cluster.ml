open Sim

type t = {
  eng : Engine.t;
  net_ : Net.t;
  rpc_ : Rpc.t;
  cfg : Config.t;
  factory : App.factory;
  servers_ : Server.t array;
  stores : Paxos.Store.t array;
  disks : Checkpoint.Disk.t array;
  make_agreement :
    (Server.t -> Agreement.callbacks -> Agreement.t) option;
  first_client_node : int;
}

let create ?(seed = 7) ?(cores_per_node = 16) ?(extra_nodes = 1)
    ?(net_latency = 50e-6) ?(agreement = `Paxos) cfg factory =
  let n = List.length cfg.Config.replicas in
  if cfg.Config.replicas <> List.init n Fun.id then
    invalid_arg "Cluster.create: replicas must be nodes 0..n-1";
  let eng =
    Engine.create ~seed ~cores_per_node ~num_nodes:(n + extra_nodes) ()
  in
  let net_ = Net.create ~base_latency:net_latency eng in
  let rpc_ = Rpc.create net_ in
  let stores = Array.init n (fun _ -> Paxos.Store.create ()) in
  let disks = Array.init n (fun _ -> Checkpoint.Disk.create ()) in
  let make_agreement =
    match agreement with
    | `Paxos -> None
    | `Chain ->
      (* the view manager lives on the first extra node, which the
         benchmarks never crash *)
      let vm_node = n in
      Chain.view_manager net_ ~node:vm_node ~replicas:cfg.Config.replicas ();
      Some
        (fun srv cbs ->
          Chain.make net_ ~node:(Server.node srv) ~vm_node
            ~store:stores.(Server.node srv) cbs)
  in
  let servers_ =
    Array.init n (fun i ->
        Server.create ?make_agreement net_ rpc_ cfg ~node:i
          ~paxos_store:stores.(i) ~disk:disks.(i) factory)
  in
  {
    eng;
    net_;
    rpc_;
    cfg;
    factory;
    servers_;
    stores;
    disks;
    make_agreement;
    first_client_node = n;
  }

let engine t = t.eng
let net t = t.net_
let rpc t = t.rpc_
let server t i = t.servers_.(i)
let servers t = t.servers_
let client_node t = t.first_client_node
let start t = Array.iter Server.start t.servers_
let run ?until t = Engine.run ?until t.eng
let run_for t d = Engine.run ~until:(Engine.clock t.eng +. d) t.eng

let primary t =
  Array.find_opt
    (fun s -> Engine.node_alive t.eng (Server.node s) && Server.is_primary s)
    t.servers_

let await_primary ?(limit = 30.) t =
  let deadline = Engine.clock t.eng +. limit in
  let rec go () =
    match primary t with
    | Some s -> s
    | None ->
      if Engine.clock t.eng >= deadline then
        failwith "Cluster.await_primary: no primary elected"
      else begin
        run_for t 0.05;
        go ()
      end
  in
  go ()

let crash t i = Engine.crash_node t.eng i

let restart t i =
  Engine.restart_node t.eng i;
  let s =
    Server.create ?make_agreement:t.make_agreement t.net_ t.rpc_ t.cfg ~node:i
      ~paxos_store:t.stores.(i) ~disk:t.disks.(i) t.factory
  in
  t.servers_.(i) <- s;
  Server.start s

let client t = Client.create t.rpc_ ~me:t.first_client_node ~replicas:t.cfg.Config.replicas

let check_no_divergence t =
  Array.iter
    (fun s ->
      if Engine.node_alive t.eng (Server.node s) then
        match Server.divergence s with
        | Some msg -> failwith ("replica diverged: " ^ msg)
        | None -> ())
    t.servers_
