(** Checkpoints and the per-node "disk" that stores them.

    A checkpoint records the application snapshot at a cut, the resource
    versions at that cut, and the Paxos instance whose proposal carried
    the checkpoint request — recovery re-fetches committed trace deltas
    from that instance on.  The {!Disk.t} object is owned by the harness
    and survives {!Sim.Engine.crash_node}, modelling local stable
    storage. *)

type t = {
  seq : int;  (** checkpoint sequence number *)
  instance : int;  (** Paxos instance carrying the checkpoint request *)
  cut : Trace.Cut.t;
  versions : (int * int) list;  (** resource uid, version *)
  app_bytes : string;
}

val encode : t -> string
val decode : string -> t

module Disk : sig
  type ckpt := t
  type t

  val create : unit -> t
  val save : t -> ckpt -> unit
  val latest : t -> ckpt option
end
