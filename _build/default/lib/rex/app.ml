type t = {
  name : string;
  execute : request:string -> string;
  query : request:string -> string;
  write_checkpoint : Codec.sink -> unit;
  read_checkpoint : Codec.source -> unit;
  digest : unit -> string;
}

type factory = Api.t -> t
