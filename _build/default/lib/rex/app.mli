(** Application interface (the [RexRSM]/[RexRequest] of paper Fig. 6).

    An application is a factory: given an {!Api.t}, it builds replica-local
    state (allocating its locks and timers through the API, in
    deterministic order) and returns its handlers.  The factory is invoked
    at replica start and again whenever a replica rebuilds itself from a
    checkpoint. *)

type t = {
  name : string;
  execute : request:string -> string;
      (** update-request handler; runs concurrently on worker slots using
          Rex synchronization primitives.  The returned bytes are the
          client's response (sent once the request's trace commits). *)
  query : request:string -> string;
      (** read-only handler; runs natively (hybrid execution, §4) on the
          primary (speculative state) or a secondary (committed state) *)
  write_checkpoint : Codec.sink -> unit;
  read_checkpoint : Codec.source -> unit;
  digest : unit -> string;
      (** cheap state fingerprint, used by tests and validity checking *)
}

type factory = Api.t -> t
