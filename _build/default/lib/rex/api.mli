(** What a Rex application sees: the programming API of paper Fig. 6.

    An application factory ({!App.factory}) receives an [Api.t] and builds
    its replica-local state with it: synchronization primitives
    ([RexLock], [RexReadWriteLock], [RexCond], semaphores), background
    timers ([AddTimer]) and recorded nondeterministic functions.  Request
    handlers then use the same handle for CPU work and synchronization.

    The ordering of synchronization events must be the only source of
    nondeterminism in handlers (§2): ambient randomness or time must go
    through {!nondet}/{!nondet_int}/{!random_int}, and deliberately
    race-tolerant sections through {!native} (the [NATIVE_EXEC] macro). *)

type t

val lock : t -> string -> Rexsync.Lock.t
val rwlock : t -> string -> Rexsync.Rwlock.t
val cond : t -> string -> Rexsync.Condvar.t
val sem : t -> string -> int -> Rexsync.Sem.t

val add_timer : t -> name:string -> interval:float -> (unit -> unit) -> unit
(** Register a background task (e.g. LevelDB compaction).  Only legal
    while the application factory runs; each timer gets its own thread
    slot, replicated like any worker. *)

val work : t -> float -> unit
(** Consume CPU (virtual seconds) — how handlers model computation. *)

val nondet : t -> (unit -> string) -> string
val nondet_int : t -> (unit -> int) -> int
val random_int : t -> int -> int
(** Recorded random number: drawn on the primary, replayed on
    secondaries. *)

val virtual_now : t -> float
(** Recorded wall-clock reading. *)

val native : t -> (unit -> 'a) -> 'a
(** [NATIVE_EXEC]: run without recording/replaying (benign races). *)

val node : t -> int
val runtime : t -> Rexsync.Runtime.t

(**/**)

(* Internal: used by [Server]. *)

type timer_spec = { t_name : string; t_interval : float; t_callback : unit -> unit }

val make : Rexsync.Runtime.t -> t
val seal : t -> timer_spec list
(** End of the factory phase: further [add_timer] calls raise. Returns
    timers in registration order. *)
