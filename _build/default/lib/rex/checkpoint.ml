type t = {
  seq : int;
  instance : int;
  cut : Trace.Cut.t;
  versions : (int * int) list;
  app_bytes : string;
}

let write b t =
  Codec.write_uvarint b t.seq;
  Codec.write_uvarint b t.instance;
  Trace.Cut.write b t.cut;
  Codec.write_list b
    (fun b (uid, v) ->
      Codec.write_uvarint b uid;
      Codec.write_uvarint b v)
    t.versions;
  Codec.write_string b t.app_bytes

let read s =
  let seq = Codec.read_uvarint s in
  let instance = Codec.read_uvarint s in
  let cut = Trace.Cut.read s in
  let versions =
    Codec.read_list s (fun s ->
        let uid = Codec.read_uvarint s in
        let v = Codec.read_uvarint s in
        (uid, v))
  in
  let app_bytes = Codec.read_string s in
  { seq; instance; cut; versions; app_bytes }

let encode t = Codec.encode (Fun.flip write) t
let decode s = Codec.decode read s

module Disk = struct
  type ckpt = t
  type nonrec t = { mutable latest : ckpt option }

  let create () = { latest = None }

  let save d c =
    match d.latest with
    | Some prev when prev.seq >= c.seq -> ()
    | Some _ | None -> d.latest <- Some c

  let latest d = d.latest
end
