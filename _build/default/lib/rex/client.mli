(** Client library: leader discovery, retries, and the client/replica wire
    format. *)

type reply = Ok_reply of string | Not_leader of int option | Dropped

val encode_reply : reply -> string
val decode_reply : string -> reply

val client_port : string
val query_port : string

type t

val create : Sim.Rpc.t -> me:int -> replicas:int list -> t

val call : ?retries:int -> ?timeout:float -> t -> string -> string option
(** Submit an update request; follows leader hints and retries on
    timeout.  [None] after exhausting retries.  At-least-once semantics:
    a request may execute even when [None] is returned. *)

val query : ?on:int -> ?timeout:float -> t -> string -> string option
(** Read-only request on a chosen replica (default: the believed
    leader). *)

val leader_guess : t -> int
