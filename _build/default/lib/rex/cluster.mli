(** Harness for a whole Rex deployment inside one simulation: engine,
    network, RPC, the replica group, and the per-node durable state
    (Paxos store + checkpoint disk) that survives crash/restart.  Used by
    tests, benchmarks and examples. *)

type t

val create :
  ?seed:int ->
  ?cores_per_node:int ->
  ?extra_nodes:int ->
  ?net_latency:float ->
  ?agreement:[ `Paxos | `Chain ] ->
  Config.t ->
  App.factory ->
  t
(** Nodes [0 .. n-1] host the replicas listed in [Config.replicas] (which
    must be [0 .. n-1]); [extra_nodes] more nodes (default 1) host clients
    and, for [`Chain], the view manager.  [agreement] picks the agree
    stage: multi-instance Paxos (default) or chain replication
    (paper §7). *)

val engine : t -> Sim.Engine.t
val net : t -> Sim.Net.t
val rpc : t -> Sim.Rpc.t
val server : t -> int -> Server.t
val servers : t -> Server.t array
val client_node : t -> int
(** First non-replica node. *)

val start : t -> unit
val run : ?until:float -> t -> unit
(** Absolute virtual-time limit. *)

val run_for : t -> float -> unit
(** Relative. *)

val primary : t -> Server.t option

val await_primary : ?limit:float -> t -> Server.t
(** Run the simulation until some replica is primary (raises
    [Failure] after [limit] seconds, default 30). *)

val crash : t -> int -> unit
val restart : t -> int -> unit
(** Recreate the replica server from its surviving Paxos store and
    checkpoint disk, and start it. *)

val client : t -> Client.t
(** A client homed on {!client_node}. *)

val check_no_divergence : t -> unit
(** Raises [Failure] if any live replica detected divergence. *)
