(** Consensus values: what Rex proposes to Paxos instances — a trace delta
    plus an optional checkpoint request (paper §3.3). *)

type t = {
  delta : Trace.Delta.t;
  ckpt : (int * Trace.Cut.t) option;
      (** checkpoint sequence number and the cut at which secondaries
          should snapshot *)
}

val encode : t -> string
val decode : string -> t
val wire_size : t -> int
