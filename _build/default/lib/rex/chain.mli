(** Chain replication as an alternative agree stage (paper §7: "the Rex
    approach can also be applied to other replication protocols, such as
    primary/backup replication and its variations (e.g., chain
    replication)").

    Replicas form a chain ordered by a {!view_manager}: the head is the
    Rex primary; trace deltas flow head → … → tail; cumulative
    acknowledgements flow back, committing entries at each hop.  Compared
    to Paxos, the head sends each delta once (not n−1 times) and commits
    take one full chain traversal.

    Failure model: fail-stop replicas detected by view-manager heartbeat
    timeouts; links are reliable FIFO (the simulator's default).  The view
    manager itself is assumed reliable — in the original protocol it is a
    Paxos-replicated master; here it runs on a dedicated node the
    benchmarks never crash.

    Repair is uniform: on every view change each member re-sends its
    accepted-but-uncommitted suffix to its (possibly new) successor, and a
    joining replica pulls the missing prefix from its predecessor before
    acknowledging. *)

val view_manager :
  ?heartbeat_timeout:float -> Sim.Net.t -> node:int -> replicas:int list ->
  unit -> unit
(** Start the view manager service on [node]. *)

val make :
  ?window:int ->
  ?heartbeat_period:float ->
  Sim.Net.t ->
  node:int ->
  vm_node:int ->
  store:Paxos.Store.t ->
  Agreement.callbacks ->
  Agreement.t
(** An agree stage for {!Server.create}'s [make_agreement].  [window]
    bounds the head's unacknowledged pipeline (default 8).  The
    {!Paxos.Store.t} provides the durable log, as in the Paxos stage. *)
