lib/rex/checkpoint.mli: Trace
