lib/rex/api.mli: Rexsync
