lib/rex/api.ml: Engine Fmt List Rexsync Rng Sim
