lib/rex/proposal.mli: Trace
