lib/rex/server.mli: Agreement App Checkpoint Config Paxos Rexsync Sim Trace
