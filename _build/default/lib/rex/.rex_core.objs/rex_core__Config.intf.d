lib/rex/config.mli:
