lib/rex/agreement.mli: Paxos
