lib/rex/client.ml: Array Codec Engine Option Printf Rpc Sim
