lib/rex/checkpoint.ml: Codec Fun Trace
