lib/rex/app.mli: Api Codec
