lib/rex/proposal.ml: Codec Fun String Trace
