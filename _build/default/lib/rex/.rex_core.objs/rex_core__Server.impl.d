lib/rex/server.ml: Agreement Api App Array Checkpoint Client Codec Config Engine Event Fmt Hashtbl List Logs Net Option Paxos Printexc Printf Proposal Queue Render Rexsync Rpc Sim String Trace
