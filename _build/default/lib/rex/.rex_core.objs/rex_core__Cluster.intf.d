lib/rex/cluster.mli: App Client Config Server Sim
