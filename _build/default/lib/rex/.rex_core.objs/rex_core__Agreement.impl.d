lib/rex/agreement.ml: Paxos
