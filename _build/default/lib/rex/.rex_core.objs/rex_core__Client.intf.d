lib/rex/client.mli: Sim
