lib/rex/cluster.ml: Agreement App Array Chain Checkpoint Client Config Engine Fun List Net Paxos Rpc Server Sim
