lib/rex/app.ml: Api Codec
