lib/rex/chain.ml: Agreement Codec Engine Fun Hashtbl List Net Option Paxos Printf Sim
