lib/rex/chain.mli: Agreement Paxos Sim
