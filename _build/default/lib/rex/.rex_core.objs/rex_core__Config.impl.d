lib/rex/config.ml:
