(** Distributed lock service à la Chubby (paper §6.3, Fig. 7b): 90% of
    requests renew leases on locked files, the rest create or update
    locked files of 100 B – 5 KB.

    Requests: ["RENEW <path>"], ["CREATE <path> <size>"],
    ["UPDATE <path> <size>"], ["READ <path>"].
    Synchronization: [ReadWriteLock] (Table 1) — a namespace
    readers-writer lock (creates take it in write mode) over per-slice
    readers-writer locks. *)

val factory :
  ?slices:int -> ?op_cost:float -> ?byte_cost:float -> unit ->
  Rex_core.App.factory
(** Defaults: 128 slices, 8 µs per op, 1 ns per payload byte. *)
