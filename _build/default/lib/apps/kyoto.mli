(** Kyoto Cabinet HashDB-style store (paper §6.3, Fig. 7d): "key space is
    divided into 1024 slices with each slice protected by a readers-writer
    lock", plus one mutex protecting the metadata (record count, free
    space), touched on every update — the serial fraction that caps its
    scaling around 8 cores.

    Requests: ["SET <key> <value>"], ["GET <key>"], ["DEL <key>"].
    Synchronization: [Lock], [Cond], [ReadWriteLock] (Table 1). *)

val factory :
  ?slices:int -> ?op_cost:float -> ?meta_cost:float -> unit ->
  Rex_core.App.factory
(** Defaults: 1024 slices, 7 µs per op, 1.5 µs under the metadata lock. *)
