module R = Rex_core

type entry = { mutable size : int; mutable lease : int; mutable generation : int }

let factory ?(slices = 128) ?(op_cost = 8e-6) ?(byte_cost = 1e-9) () :
    R.App.factory =
 fun api ->
  let namespace = R.Api.rwlock api "ls.namespace" in
  let slice_locks =
    Array.init slices (fun i -> R.Api.rwlock api (Printf.sprintf "ls.slice%d" i))
  in
  let tables : (string, entry) Hashtbl.t array =
    Array.init slices (fun _ -> Hashtbl.create 64)
  in
  let slice_of path = Hashtbl.hash path mod slices in
  let execute ~request =
    R.Api.work api op_cost;
    match Util.words request with
    | [ "RENEW"; path ] ->
      let i = slice_of path in
      Rexsync.Rwlock.with_rd namespace (fun () ->
          Rexsync.Rwlock.with_wr slice_locks.(i) (fun () ->
              match Hashtbl.find_opt tables.(i) path with
              | Some e ->
                e.lease <- e.lease + 1;
                Printf.sprintf "LEASE %d" e.lease
              | None -> "ERR:no-such-lock"))
    | [ "CREATE"; path; size ] | [ "CREATE"; path; size; _ ] ->
      let i = slice_of path in
      let size = int_of_string size in
      R.Api.work api (byte_cost *. float_of_int size);
      Rexsync.Rwlock.with_wr namespace (fun () ->
          Rexsync.Rwlock.with_wr slice_locks.(i) (fun () ->
              if Hashtbl.mem tables.(i) path then "ERR:exists"
              else begin
                Hashtbl.replace tables.(i) path
                  { size; lease = 1; generation = 1 };
                "OK"
              end))
    | [ "UPDATE"; path; size ] | [ "UPDATE"; path; size; _ ] ->
      let i = slice_of path in
      let size = int_of_string size in
      R.Api.work api (byte_cost *. float_of_int size);
      Rexsync.Rwlock.with_rd namespace (fun () ->
          Rexsync.Rwlock.with_wr slice_locks.(i) (fun () ->
              match Hashtbl.find_opt tables.(i) path with
              | Some e ->
                e.size <- size;
                e.generation <- e.generation + 1;
                Printf.sprintf "GEN %d" e.generation
              | None ->
                Hashtbl.replace tables.(i) path
                  { size; lease = 1; generation = 1 };
                "GEN 1"))
    | [ "READ"; path ] ->
      let i = slice_of path in
      Rexsync.Rwlock.with_rd namespace (fun () ->
          Rexsync.Rwlock.with_rd slice_locks.(i) (fun () ->
              match Hashtbl.find_opt tables.(i) path with
              | Some e -> Printf.sprintf "SIZE %d GEN %d" e.size e.generation
              | None -> "ERR:no-such-lock"))
    | _ -> "ERR:bad-request"
  in
  (* Read-only requests take the same readers-writer locks natively
     (hybrid execution, §4), so query throughput interacts with the
     update load exactly as in Fig. 9. *)
  let query ~request =
    match Util.words request with
    | [ "READ"; path ] | [ "GET"; path ] ->
      R.Api.work api op_cost;
      let i = slice_of path in
      Rexsync.Rwlock.with_rd namespace (fun () ->
          Rexsync.Rwlock.with_rd slice_locks.(i) (fun () ->
              match Hashtbl.find_opt tables.(i) path with
              | Some e ->
                Printf.sprintf "SIZE %d GEN %d LEASE %d" e.size e.generation
                  e.lease
              | None -> "ERR:no-such-lock"))
    | _ -> "ERR:bad-query"
  in
  let bindings () =
    Array.to_list tables
    |> List.concat_map (fun tbl ->
           Hashtbl.fold
             (fun k e acc -> (k, (e.size, e.lease, e.generation)) :: acc)
             tbl [])
    |> List.sort compare
  in
  {
    R.App.name = "lock-server";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b (k, (size, lease, generation)) ->
            Codec.write_string b k;
            Codec.write_uvarint b size;
            Codec.write_uvarint b lease;
            Codec.write_uvarint b generation)
          (bindings ()));
    read_checkpoint =
      (fun src ->
        Array.iter Hashtbl.reset tables;
        let entries =
          Codec.read_list src (fun s ->
              let k = Codec.read_string s in
              let size = Codec.read_uvarint s in
              let lease = Codec.read_uvarint s in
              let generation = Codec.read_uvarint s in
              (k, (size, lease, generation)))
        in
        List.iter
          (fun (k, (size, lease, generation)) ->
            Hashtbl.replace tables.(slice_of k) k { size; lease; generation })
          entries);
    digest = (fun () -> string_of_int (Hashtbl.hash (bindings ())));
  }
