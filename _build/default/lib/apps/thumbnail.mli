(** Thumbnail server (paper §6.3, Fig. 7a): computation-heavy requests —
    decode + scale a picture — with brief critical sections updating an
    in-memory metadata table and a thumbnail cache.  "Shows perfect
    scalability until the number of threads exceeds the number of CPU
    cores."

    Requests: ["THUMB <img> <dim>"].  Synchronization: [Lock] (Table 1). *)

val factory :
  ?shards:int -> ?compute_cost:float -> unit -> Rex_core.App.factory
(** Defaults: 64 lock shards, 3 ms of CPU per thumbnail. *)
