lib/apps/kyoto.ml: Array Codec Hashtbl List Option Printf Rex_core Rexsync String Util
