lib/apps/thumbnail.mli: Rex_core
