lib/apps/leveldb.ml: Array Codec Hashtbl List Printf Rex_core Rexsync String Util
