lib/apps/kyoto.mli: Rex_core
