lib/apps/memcache.mli: Rex_core
