lib/apps/filesys.mli: Rex_core Sim_disk
