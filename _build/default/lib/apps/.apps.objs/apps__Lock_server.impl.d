lib/apps/lock_server.ml: Array Codec Hashtbl List Printf Rex_core Rexsync Util
