lib/apps/sim_disk.mli: Sim
