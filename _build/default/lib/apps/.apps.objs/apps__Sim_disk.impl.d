lib/apps/sim_disk.ml: Engine Msync Sim
