lib/apps/util.ml: Array Codec Hashtbl List String
