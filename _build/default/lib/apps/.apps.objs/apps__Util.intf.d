lib/apps/util.mli: Codec Hashtbl
