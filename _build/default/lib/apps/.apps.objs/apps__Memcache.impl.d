lib/apps/memcache.ml: Codec Hashtbl List Option Printf Queue Rex_core Rexsync Util
