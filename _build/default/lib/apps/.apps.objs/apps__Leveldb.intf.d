lib/apps/leveldb.mli: Rex_core
