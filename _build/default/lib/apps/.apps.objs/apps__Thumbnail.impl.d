lib/apps/thumbnail.ml: Array Hashtbl Option Printf Rex_core Rexsync Util
