lib/apps/filesys.ml: Array Codec Hashtbl List Option Printf Rex_core Rexsync Sim_disk Util
