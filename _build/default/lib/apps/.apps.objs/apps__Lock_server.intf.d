lib/apps/lock_server.mli: Rex_core
