open Sim

type t = {
  seek_time : float;
  bandwidth : float;
  ncq : Msync.Sem.t;
  transfer : Msync.Mutex.t;
  mutable completed : int;
}

let create ?(seek_time = 4.5e-3) ?(bandwidth = 200e6) ?(queue_depth = 5) eng =
  {
    seek_time;
    bandwidth;
    ncq = Msync.Sem.create eng queue_depth;
    transfer = Msync.Mutex.create eng;
    completed = 0;
  }

let io t ~bytes_len =
  Msync.Sem.acquire t.ncq;
  Engine.sleep t.seek_time;
  Msync.Sem.release t.ncq;
  Msync.Mutex.lock t.transfer;
  Engine.sleep (float_of_int bytes_len /. t.bandwidth);
  Msync.Mutex.unlock t.transfer;
  t.completed <- t.completed + 1

let ios_completed t = t.completed
