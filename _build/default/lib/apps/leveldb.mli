(** LevelDB-style ordered key/value store (paper §6.3, Fig. 7c): the
    database is divided into 256 slices, each slice guarded by one
    lightweight mutex; writes land in per-slice memtables that a
    background compaction task — registered with [AddTimer] and replicated
    like any thread — migrates to on-"disk" tables.  Writers stall on a
    condition variable when memtables run too far ahead of compaction,
    exercising [Lock] + [Cond] (Table 1).

    Also reproduces the paper's Figure 5 benign race: a lazily
    initialized singleton (the comparator) is constructed under
    [NATIVE_EXEC], so a different thread may initialize it on each
    replica.

    Requests: ["SET <key> <value>"], ["GET <key>"], ["DEL <key>"]. *)

val factory :
  ?slices:int ->
  ?memtable_limit:int ->
  ?stall_limit:int ->
  ?compaction_interval:float ->
  ?op_cost:float ->
  unit ->
  Rex_core.App.factory
(** Defaults: 256 slices, 64-entry memtables, stall at 4096 total resident
    entries, compaction every 2 ms, 6 µs per op. *)
