module R = Rex_core

let factory ?(shards = 64) ?(compute_cost = 3e-3) () : R.App.factory =
 fun api ->
  (* metadata: img -> hit count; cache: "img:dim" -> thumbnail tag *)
  let meta = Array.init shards (fun _ -> Hashtbl.create 64) in
  let cache = Array.init shards (fun _ -> Hashtbl.create 64) in
  let locks =
    Array.init shards (fun i -> R.Api.lock api (Printf.sprintf "thumb.shard%d" i))
  in
  let shard_of key = Hashtbl.hash key mod shards in
  let lookup_cache key =
    let i = shard_of key in
    Rexsync.Lock.with_lock locks.(i) (fun () ->
        Hashtbl.find_opt cache.(i) key)
  in
  let fill key img thumbnail =
    let i = shard_of key in
    Rexsync.Lock.with_lock locks.(i) (fun () ->
        Hashtbl.replace cache.(i) key thumbnail);
    let j = shard_of img in
    Rexsync.Lock.with_lock locks.(j) (fun () ->
        let hits =
          1
          + int_of_string
              (Option.value (Hashtbl.find_opt meta.(j) img) ~default:"0")
        in
        Hashtbl.replace meta.(j) img (string_of_int hits))
  in
  let execute ~request =
    match Util.words request with
    | [ "THUMB"; img; dim ] ->
      let key = img ^ ":" ^ dim in
      (match lookup_cache key with
      | Some thumb -> thumb
      | None ->
        (* The expensive part — decoding and scaling — runs outside any
           lock, exactly the structure Rex preserves. *)
        R.Api.work api compute_cost;
        let thumb = Printf.sprintf "tn-%s-%s" img dim in
        fill key img thumb;
        thumb)
    | _ -> "ERR:bad-request"
  in
  let query ~request =
    match Util.words request with
    | [ "HITS"; img ] ->
      let i = shard_of img in
      Rexsync.Lock.with_lock locks.(i) (fun () ->
          Option.value (Hashtbl.find_opt meta.(i) img) ~default:"0")
    | _ -> "ERR:bad-query"
  in
  {
    R.App.name = "thumbnail";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Util.write_tables sink meta;
        Util.write_tables sink cache);
    read_checkpoint =
      (fun src ->
        Util.read_tables src ~shard_of meta;
        Util.read_tables src ~shard_of cache);
    digest =
      (fun () -> Util.digest_of_tables meta ^ "/" ^ Util.digest_of_tables cache);
  }
