(** Shared helpers for the evaluation applications. *)

val words : string -> string list

val digest_of_tables : (string, string) Hashtbl.t array -> string
(** Order-independent fingerprint of a sharded string table. *)

val write_tables : Codec.sink -> (string, string) Hashtbl.t array -> unit
val read_tables :
  Codec.source -> shard_of:(string -> int) -> (string, string) Hashtbl.t array -> unit
(** Clears the tables and reloads them, re-sharding each binding. *)
